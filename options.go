package mctop

import "repro/internal/place"

// Option configures an inference in the client API — the functional
// replacement for filling the raw Options struct by hand. Options built
// this way hash stably into registry cache keys: the registry normalizes
// before keying, so NewOptions(WithReps(201)) and a hand-built
// Options{Reps: 201} share one cache entry.
type Option func(*Options)

// WithReps sets the repetitions per context pair (the paper's n; its
// default is 2000, the facade's fast default is 201).
func WithReps(n int) Option {
	return func(o *Options) { o.Reps = n }
}

// WithParallelism bounds the worker pool of the measurement phase on
// fork-capable machines. It never changes the inferred topology — only how
// fast it is inferred — and is therefore excluded from registry cache keys.
func WithParallelism(n int) Option {
	return func(o *Options) { o.Parallelism = n }
}

// WithForkedEnrich selects the fork-per-probe enrichment phase
// (plugins.EnrichForked): deterministic for a fixed seed and independent
// of parallelism, but its measurements differ from the sequential default
// by the noise amplitude, so it is part of the cache key.
func WithForkedEnrich() Option {
	return func(o *Options) { o.ForkedEnrich = true }
}

// WithSkipMemoryProbe disables the local-node assignment probe (sockets
// then map to memory nodes by index).
func WithSkipMemoryProbe() Option {
	return func(o *Options) { o.SkipMemoryProbe = true }
}

// WithSampling enables the sub-O(N²) sampled measurement phase on
// fork-capable machines with at least 64 hardware contexts: latency
// signatures against a small pilot set cluster the contexts, one verified
// representative pair is measured per cluster pair, and the rest of each
// block is filled with its value — falling back to exhaustive measurement
// per block (or wholesale, on noisy platforms) whenever verification
// disagrees. The mode is part of the cache key; on platforms below the
// context floor it changes nothing.
func WithSampling() Option {
	return func(o *Options) { o.Sampling.Enabled = true }
}

// WithSamplingParams is WithSampling with explicit tuning: pilots is the
// pilot-set size, minContexts the machine size floor below which inference
// stays exhaustive, and verifyPerBlock the probe pairs measured per cluster
// block (0 picks each parameter's default).
func WithSamplingParams(pilots, minContexts, verifyPerBlock int) Option {
	return func(o *Options) {
		o.Sampling.Enabled = true
		o.Sampling.Pilots = pilots
		o.Sampling.MinContexts = minContexts
		o.Sampling.VerifyPerBlock = verifyPerBlock
	}
}

// NewOptions builds an inference Options value from functional options.
// Unset fields keep their zero values, which the pipeline (and the
// registry's key normalization) resolves to the paper defaults.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// PlaceOptions tunes a placement — the options a Policy's Order method
// receives (see internal/place.Options). Exported so applications can
// implement Policy outside this module's internal packages.
type PlaceOptions = place.Options

// PlaceOption configures a placement or Alloc.
type PlaceOption func(*place.Options)

// WithThreads sets how many threads to place (0 = as many as the policy
// allows).
func WithThreads(n int) PlaceOption {
	return func(o *place.Options) { o.NThreads = n }
}

// WithSockets limits how many sockets the placement may use (0 = all).
func WithSockets(n int) PlaceOption {
	return func(o *place.Options) { o.NSockets = n }
}
