package mctop

import "repro/internal/mctoperr"

// The sentinel errors of the client API. Every user-correctable failure
// the library returns wraps exactly one of these, so callers branch with
// errors.Is instead of string matching:
//
//	_, err := reg.PlaceContext(ctx, "Nope", 42, opt, "RR_CORE", 8)
//	switch {
//	case errors.Is(err, mctop.ErrUnknownPlatform): // 404-shaped
//	case errors.Is(err, mctop.ErrInvalidRequest):  // 400-shaped
//	}
//
// cmd/mctopd maps them to HTTP statuses in one place (400, 404, 413, 503).
var (
	// ErrUnknownPlatform: the platform is not one of the five simulated
	// machines (returned by Infer, the Registry, and sim.ByName).
	ErrUnknownPlatform = mctoperr.ErrUnknownPlatform
	// ErrUnknownPolicy: the policy name is neither a Table 2 builtin nor a
	// registered custom policy.
	ErrUnknownPolicy = mctoperr.ErrUnknownPolicy
	// ErrInvalidRequest: a malformed or unsatisfiable request the caller
	// can correct (negative threads, POWER without power data, …).
	ErrInvalidRequest = mctoperr.ErrInvalidRequest
	// ErrTooLarge: the request exceeds a configured size bound.
	ErrTooLarge = mctoperr.ErrTooLarge
	// ErrSaturated: the server shed the request under backpressure;
	// retry later.
	ErrSaturated = mctoperr.ErrSaturated
)
