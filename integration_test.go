package mctop

// Cross-module integration tests: the full pipeline — simulate, infer,
// enrich, serialize, place, and run every case study — per platform,
// exercising only the public facade plus the case-study packages, the way
// a downstream user would.

import (
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/contend"
	"repro/internal/exec"
	"repro/internal/locks"
	"repro/internal/mapreduce"
	"repro/internal/msort"
	"repro/internal/omp"
	"repro/internal/place"
	"repro/internal/reduce"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/worksteal"
)

func TestIntegrationAllPlatforms(t *testing.T) {
	for _, name := range Platforms() {
		name := name
		t.Run(name, func(t *testing.T) {
			top, res, err := InferPlatformDetailed(name, 1, Options{Reps: 31})
			if err != nil {
				t.Fatal(err)
			}
			p, err := sim.ByName(name)
			if err != nil {
				t.Fatal(err)
			}

			// Structure vs ground truth (spot checks; exhaustive pair
			// validation lives in internal/mctopalg's tests).
			if top.NumHWContexts() != p.NumContexts() ||
				top.NumSockets() != p.Sockets || top.SMTWays() != p.SMT {
				t.Fatalf("dims: %d/%d/%d", top.NumHWContexts(), top.NumSockets(), top.SMTWays())
			}
			if res.SMT != (p.SMT > 1) {
				t.Errorf("SMT detection = %v", res.SMT)
			}
			for s := 0; s < p.Sockets; s++ {
				ctx := p.ContextOf(s*p.Cores, 0)
				if got := top.GetLocalNode(ctx).ID; got != p.LocalNode(s) {
					t.Errorf("socket %d local node = %d, want %d", s, got, p.LocalNode(s))
				}
			}

			// Serialization round trip.
			path := filepath.Join(t.TempDir(), name+".mct")
			if err := Save(path, top); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.MaxLatency() != top.MaxLatency() {
				t.Error("round trip changed MaxLatency")
			}

			// Every policy places cleanly.
			for _, pol := range place.Policies() {
				if pol == place.PowerPolicy && !top.Power().Available() {
					continue
				}
				if _, err := place.New(loaded, pol, place.Options{NThreads: 8}); err != nil {
					t.Errorf("policy %v: %v", pol, err)
				}
			}

			// Educated backoff on the contention simulator.
			threads := make([]int, 8)
			for i := range threads {
				threads[i] = i
			}
			_, _, ratio, err := contend.RelativeThroughput(contend.Config{
				Platform: p, Threads: threads, Alg: locks.AlgTicket,
				CSWork: 1000, PauseWork: 100, Horizon: 1_000_000,
			}, top.MaxLatency())
			if err != nil {
				t.Fatal(err)
			}
			if ratio <= 0 {
				t.Errorf("lock ratio = %f", ratio)
			}

			// Real sort through the topology.
			rng := rand.New(rand.NewSource(7))
			data := make([]int32, 50_000)
			for i := range data {
				data[i] = int32(rng.Int63())
			}
			if err := msort.MCTOPSort(data, loaded, 6, 0); err != nil {
				t.Fatal(err)
			}
			if !msort.SortedInt32(data) {
				t.Fatal("sort broken")
			}

			// Reduction tree across all sockets.
			var sockets []int
			for _, s := range loaded.Sockets() {
				sockets = append(sockets, s.ID)
			}
			plan, err := reduce.Tree(loaded, sockets, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Validate(sockets); err != nil {
				t.Fatal(err)
			}

			// MapReduce with a placement.
			pl, err := place.New(loaded, place.RRCore, place.Options{NThreads: 4})
			if err != nil {
				t.Fatal(err)
			}
			counts, err := mapreduce.WordCount([]string{"x y x"}, 0, pl)
			if err != nil || counts["x"] != 2 {
				t.Fatalf("wordcount: %v %v", counts, err)
			}

			// Work stealing.
			wsPl, _ := place.New(loaded, place.ConHWC, place.Options{NThreads: 4})
			pool, err := worksteal.New(loaded, wsPl)
			if err != nil {
				t.Fatal(err)
			}
			var done int64
			var tasks []worksteal.Task
			for i := 0; i < 64; i++ {
				tasks = append(tasks, func() { atomic.AddInt64(&done, 1) })
			}
			if err := pool.Run(pool.Distribute(tasks)); err != nil {
				t.Fatal(err)
			}
			if atomic.LoadInt64(&done) != 64 {
				t.Errorf("work-stealing ran %d/64 tasks", done)
			}

			// Scheduler admits and removes on the enriched topology.
			sc, err := sched.New(loaded)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sc.Admit(sched.App{Name: "a", Threads: 2, Workload: exec.Workload{
				Name: "a", Phases: []exec.Phase{{WorkCycles: 1e6}},
			}}); err != nil {
				t.Fatal(err)
			}
			if err := sc.Remove("a"); err != nil {
				t.Fatal(err)
			}

			// The OpenMP runtime re-binds between regions.
			rt, err := omp.New(loaded)
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.SetBindingPolicy(place.ConCoreHWC, place.Options{NThreads: 4}); err != nil {
				t.Fatal(err)
			}
			sum := make([]int, 4)
			rt.Parallel(func(tid, n, _ int) { sum[tid] = tid })
			if sum[3] != 3 {
				t.Error("parallel region did not run all members")
			}
		})
	}
}

// TestIntegrationDataRaceSurface runs the concurrent pieces together under
// one roof so `go test -race ./...` sweeps their interactions.
func TestIntegrationDataRaceSurface(t *testing.T) {
	top := MustInfer("Ivy", 3)
	pl, err := place.New(top, place.BalanceCore, place.Options{NThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		data := make([]int32, 80_000)
		for i := range data {
			data[i] = int32(len(data) - i)
		}
		if err := msort.MCTOPSortSSE(data, top, 6, 1); err != nil {
			t.Error(err)
		}
	}()
	counts, err := mapreduce.WordCount([]string{"a b a b c"}, 0, pl)
	if err != nil || counts["a"] != 2 {
		t.Fatalf("wordcount under concurrency: %v %v", counts, err)
	}
	<-doneCh
}
