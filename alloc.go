package mctop

import (
	"fmt"
	"sync"

	"repro/internal/mctoperr"
	"repro/internal/place"
)

// Alloc mirrors MCTOP-LIB's mctop_alloc (Section 5): a topology-aware
// thread allocator built from a topology and a policy, which application
// threads query and pin against. Where a Placement is the raw slot order,
// an Alloc is the object an application holds: thread i calls Pin(i) to
// claim its hardware context, Unpin(i) to release it, and the allocator
// answers the Figure 7 questions (cores used, sockets, bandwidth, power,
// latency) about the set as a whole.
//
// The thread-to-context mapping is deterministic: Pin(i) always returns
// slot i of the policy's order, so restarts and replicas agree on who runs
// where. All methods are safe for concurrent use.
type Alloc struct {
	top *Topology
	pl  *Placement
	// order caches the placement's slot order once: Pin is the per-thread
	// hot path, and Placement.Contexts copies the whole slice per call.
	order []int

	mu     sync.Mutex
	pinned []bool
}

// NewAlloc builds an allocator from a topology and a policy — a Table 2
// builtin, a combinator chain, or a custom Policy implementation:
//
//	alloc, err := mctop.NewAlloc(top, mctop.OnSockets(mctop.RRCore, 0).Limit(8))
//	ctx, _ := alloc.Pin(0) // thread 0's hardware context
//
// Correctable failures (nil policy, POWER without power data, negative
// options) wrap ErrInvalidRequest.
func NewAlloc(t *Topology, p Policy, opts ...PlaceOption) (*Alloc, error) {
	var po place.Options
	for _, f := range opts {
		f(&po)
	}
	pl, err := place.NewFrom(t, p, po)
	if err != nil {
		return nil, err
	}
	return &Alloc{top: t, pl: pl, order: pl.Contexts(), pinned: make([]bool, pl.NThreads())}, nil
}

// NumHWContexts returns how many hardware contexts the allocator hands out
// — the number of threads it can pin (mctop_alloc's n_hwcs).
func (a *Alloc) NumHWContexts() int { return a.pl.NThreads() }

// NumCores returns the distinct physical cores behind the allocator's
// contexts.
func (a *Alloc) NumCores() int { return a.pl.NCores() }

// Pin claims thread threadID's hardware context and returns it (-1 means
// "run unpinned", the None policy). Pin is idempotent — pinning an
// already-pinned thread returns the same context — and deterministic:
// thread i always gets slot i of the policy's order. A threadID outside
// [0, NumHWContexts) wraps ErrInvalidRequest.
func (a *Alloc) Pin(threadID int) (hwContext int, err error) {
	if threadID < 0 || threadID >= a.pl.NThreads() {
		return -1, fmt.Errorf("%w: thread id %d outside [0, %d)",
			mctoperr.ErrInvalidRequest, threadID, a.pl.NThreads())
	}
	a.mu.Lock()
	a.pinned[threadID] = true
	a.mu.Unlock()
	return a.order[threadID], nil
}

// Unpin releases thread threadID's claim (a no-op when not pinned). A
// threadID outside [0, NumHWContexts) wraps ErrInvalidRequest.
func (a *Alloc) Unpin(threadID int) error {
	if threadID < 0 || threadID >= a.pl.NThreads() {
		return fmt.Errorf("%w: thread id %d outside [0, %d)",
			mctoperr.ErrInvalidRequest, threadID, a.pl.NThreads())
	}
	a.mu.Lock()
	a.pinned[threadID] = false
	a.mu.Unlock()
	return nil
}

// NumPinned returns how many threads currently hold their context.
func (a *Alloc) NumPinned() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, p := range a.pinned {
		if p {
			n++
		}
	}
	return n
}

// Contexts returns the full thread-to-context order (a copy): entry i is
// what Pin(i) returns.
func (a *Alloc) Contexts() []int { return a.pl.Contexts() }

// PolicyName returns the identity of the policy the allocator was built
// from (e.g. "MCTOP_PLACE_RR_CORE.ON_SOCKETS(0).LIMIT(8)").
func (a *Alloc) PolicyName() string { return a.pl.PolicyName() }

// Topology returns the allocator's topology.
func (a *Alloc) Topology() *Topology { return a.top }

// Placement exposes the underlying placement for the Figure 7 accessors
// (MaxLatency, MinBandwidth, MaxPower, CtxPerSocket, …). Treat it as
// read-only; the Alloc owns the pin state.
func (a *Alloc) Placement() *Placement { return a.pl }

// Report renders the placement report of Figure 7.
func (a *Alloc) Report() string { return a.pl.String() }
