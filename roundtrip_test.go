package mctop

// Description-file round-trip property: the spool tier (internal/spool)
// serves decoded description files in place of the topologies it encoded,
// so Decode(Encode(t)) must be lossless — not just structurally, but for
// every observable the serving path exposes: the query-index results
// (GetLatency, MaxLatencyBetween, PowerEstimate) and all 12 policy
// placements must be byte-identical to the original's, with and without
// enrichment. The five golden fixtures pin the enriched inputs; the
// stripped variants cover pre-enrichment topologies (no memory, cache or
// power payloads).

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/place"
	"repro/internal/topo"
)

// stripEnrichment rebuilds a topology without the plugin payloads.
func stripEnrichment(t *testing.T, top *Topology) *Topology {
	t.Helper()
	spec := top.Spec()
	spec.MemLat, spec.MemBW, spec.SocketBW = nil, nil, nil
	spec.StreamCoreBW = 0
	spec.Cache, spec.Power = nil, nil
	out, err := topo.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// reDecode runs a topology through Encode → Decode → FromSpec, asserting
// the re-encoding is byte-identical on the way.
func reDecode(t *testing.T, top *Topology) *Topology {
	t.Helper()
	first := encodeSpec(t, top)
	spec, err := topo.Decode(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := topo.FromSpec(*spec)
	if err != nil {
		t.Fatal(err)
	}
	if second := encodeSpec(t, rt); !bytes.Equal(first, second) {
		t.Fatalf("re-encoding after a decode differs:\n--- first\n%s\n--- second\n%s", first, second)
	}
	return rt
}

func TestDescriptionRoundTripLossless(t *testing.T) {
	for _, name := range Platforms() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			enriched, err := topo.LoadFile(goldenPath(name))
			if err != nil {
				t.Fatal(err)
			}
			for _, variant := range []struct {
				label string
				top   *Topology
			}{
				{"enriched", enriched},
				{"unenriched", stripEnrichment(t, enriched)},
			} {
				t.Run(variant.label, func(t *testing.T) {
					orig := variant.top
					rt := reDecode(t, orig)
					checkQueryResults(t, orig, rt)
					checkAllPlacements(t, orig, rt)
				})
			}
		})
	}
}

// checkQueryResults compares every query-index observable of the serving
// path between the original and round-tripped topology.
func checkQueryResults(t *testing.T, orig, rt *Topology) {
	t.Helper()
	n := orig.NumHWContexts()
	if rt.NumHWContexts() != n {
		t.Fatalf("contexts %d != %d", rt.NumHWContexts(), n)
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if a, b := orig.GetLatency(x, y), rt.GetLatency(x, y); a != b {
				t.Fatalf("GetLatency(%d,%d): %d != %d", x, y, a, b)
			}
		}
	}
	if a, b := orig.MaxLatency(), rt.MaxLatency(); a != b {
		t.Fatalf("MaxLatency: %d != %d", a, b)
	}
	// Random participant subsets for the bucketed queries; the seed is
	// fixed so a failure replays.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 32; trial++ {
		k := rng.Intn(n) + 1
		ctxs := make([]int, k)
		for i := range ctxs {
			ctxs[i] = rng.Intn(n)
		}
		if a, b := orig.MaxLatencyBetween(ctxs), rt.MaxLatencyBetween(ctxs); a != b {
			t.Fatalf("MaxLatencyBetween(%v): %d != %d", ctxs, a, b)
		}
		for _, withDRAM := range []bool{false, true} {
			perA, totalA := orig.PowerEstimate(ctxs, withDRAM)
			perB, totalB := rt.PowerEstimate(ctxs, withDRAM)
			if totalA != totalB {
				t.Fatalf("PowerEstimate(%v, %v) total: %v != %v", ctxs, withDRAM, totalA, totalB)
			}
			for s := range perA {
				if perA[s] != perB[s] {
					t.Fatalf("PowerEstimate(%v, %v) socket %d: %v != %v", ctxs, withDRAM, s, perA[s], perB[s])
				}
			}
		}
	}
}

// checkAllPlacements builds all 12 builtin policies on both topologies and
// asserts byte-identical results — assignment orders and the full Figure 7
// report (which folds in latencies, bandwidths and the power model).
func checkAllPlacements(t *testing.T, orig, rt *Topology) {
	t.Helper()
	for _, pol := range place.Policies() {
		for _, threads := range []int{0, 7} {
			plA, errA := place.New(orig, pol, place.Options{NThreads: threads})
			plB, errB := place.New(rt, pol, place.Options{NThreads: threads})
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%v/%d: error mismatch: %v vs %v", pol, threads, errA, errB)
			}
			if errA != nil {
				// POWER on machines without power measurements fails on
				// both sides identically.
				if errA.Error() != errB.Error() {
					t.Fatalf("%v/%d: errors differ: %q vs %q", pol, threads, errA, errB)
				}
				continue
			}
			ctxA, ctxB := plA.Contexts(), plB.Contexts()
			if len(ctxA) != len(ctxB) {
				t.Fatalf("%v/%d: %d vs %d slots", pol, threads, len(ctxA), len(ctxB))
			}
			for i := range ctxA {
				if ctxA[i] != ctxB[i] {
					t.Fatalf("%v/%d: slot %d: %d != %d", pol, threads, i, ctxA[i], ctxB[i])
				}
			}
			if plA.String() != plB.String() {
				t.Fatalf("%v/%d: Figure 7 report differs:\n%s\nvs\n%s", pol, threads, plA, plB)
			}
		}
	}
}
