package mctop

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured values). The full paper-style tables are
// printed by cmd/mctop-bench; these benchmarks regenerate the same numbers
// under `go test -bench` and expose the headline values as custom metrics.

import (
	"sync"
	"testing"

	"repro/internal/contend"
	"repro/internal/locks"
	"repro/internal/machine"
	"repro/internal/mapreduce"
	"repro/internal/mctopalg"
	"repro/internal/msort"
	"repro/internal/omp"
	"repro/internal/place"
	"repro/internal/reduce"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

var (
	benchMu    sync.Mutex
	benchTopos = map[string]*topo.Topology{}
)

func benchTopo(b *testing.B, name string) *topo.Topology {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if t, ok := benchTopos[name]; ok {
		return t
	}
	t, _, err := InferPlatformDetailed(name, 42, Options{Reps: 51})
	if err != nil {
		b.Fatal(err)
	}
	benchTopos[name] = t
	return t
}

// benchInferTopology runs a full infer+enrich cycle per iteration — the
// figures 1-3 pipeline (topology graphs are pure functions of the result).
func benchInferTopology(b *testing.B, platform string) {
	for i := 0; i < b.N; i++ {
		top, _, err := InferPlatformDetailed(platform, uint64(i+1), Options{Reps: 21})
		if err != nil {
			b.Fatal(err)
		}
		if top.DotIntraSocket(0) == "" || top.DotCrossSocket() == "" {
			b.Fatal("empty graphs")
		}
	}
}

// BenchmarkFig1_OpteronTopology regenerates Figure 1: the Opteron's MCTOP
// with its three cross-socket levels and the OS-defying node mapping.
func BenchmarkFig1_OpteronTopology(b *testing.B) { benchInferTopology(b, "Opteron") }

// BenchmarkFig2_WestmereTopology regenerates Figure 2 (8-socket Westmere,
// level 4 at ~458 cycles).
func BenchmarkFig2_WestmereTopology(b *testing.B) { benchInferTopology(b, "Westmere") }

// BenchmarkFig3_SPARCTopology regenerates Figure 3 (SPARC T4-4 socket
// graph, 8 cores x 8 contexts).
func BenchmarkFig3_SPARCTopology(b *testing.B) { benchInferTopology(b, "SPARC") }

// BenchmarkFig6_AlgSteps runs the four steps of MCTOP-ALG on Ivy and
// reports the three detected latency levels as metrics.
func BenchmarkFig6_AlgSteps(b *testing.B) {
	var res *InferResult
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = InferPlatformDetailed("Ivy", uint64(i+1), Options{Reps: 51})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil && len(res.Clusters) == 3 {
		b.ReportMetric(float64(res.Clusters[0].Median), "smt_cycles")
		b.ReportMetric(float64(res.Clusters[1].Median), "intra_cycles")
		b.ReportMetric(float64(res.Clusters[2].Median), "cross_cycles")
	}
}

// BenchmarkSec35_InferenceCost measures the simulated inference runtime
// with the paper's full n=2000 repetitions on Ivy (paper: ~3 s) and
// reports it as a metric. Westmere's 96 s figure is reproduced by
// cmd/mctop-bench (it is too slow for a default benchmark loop).
func BenchmarkSec35_InferenceCost(b *testing.B) {
	var simSeconds float64
	for i := 0; i < b.N; i++ {
		p := sim.Ivy()
		m, err := machine.NewSim(p, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := mctopalg.Infer(m, mctopalg.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		simSeconds = m.S.SimulatedSeconds(res.Cycles)
	}
	b.ReportMetric(simSeconds, "sim_seconds")
}

// BenchmarkFig7_Placement builds the CON_HWC / 30-thread placement of
// Figure 7 and reports its derived values.
func BenchmarkFig7_Placement(b *testing.B) {
	top := benchTopo(b, "Ivy")
	var pl *Placement
	for i := 0; i < b.N; i++ {
		var err error
		pl, err = Place(top, "CON_HWC", 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pl.NCores()), "cores")
	b.ReportMetric(float64(pl.MaxLatency()), "max_latency_cycles")
	b.ReportMetric(pl.MinBandwidth(), "min_bw_gbs")
	_, total := pl.MaxPower(false)
	b.ReportMetric(total, "max_power_w")
}

// BenchmarkFig8_Locks runs the educated-backoff lock sweep on Ivy and
// reports the average educated/baseline throughput ratio per algorithm
// (paper: TAS +12%, TTAS +11%, TICKET +39% across all platforms).
func BenchmarkFig8_Locks(b *testing.B) {
	top := benchTopo(b, "Ivy")
	p := sim.Ivy()
	quantum := top.MaxLatency()
	ratios := map[locks.Algorithm]float64{}
	for i := 0; i < b.N; i++ {
		for _, alg := range locks.Algorithms() {
			var sum float64
			var count int
			for n := 2; n <= p.NumContexts(); n *= 2 {
				threads := make([]int, n)
				for t := range threads {
					threads[t] = t
				}
				cfg := contend.Config{
					Platform: p, Threads: threads, Alg: alg,
					CSWork: 1000, PauseWork: 100, Horizon: 2_000_000,
				}
				_, _, ratio, err := contend.RelativeThroughput(cfg, quantum)
				if err != nil {
					b.Fatal(err)
				}
				sum += ratio
				count++
			}
			ratios[alg] = sum / float64(count)
		}
	}
	b.ReportMetric(ratios[locks.AlgTAS], "tas_ratio")
	b.ReportMetric(ratios[locks.AlgTTAS], "ttas_ratio")
	b.ReportMetric(ratios[locks.AlgTicket], "ticket_ratio")
}

// BenchmarkFig9_Sort evaluates the Figure 9 model (1 GB sort, full machine)
// on Ivy and reports gnu vs mctop vs mctop_sse totals.
func BenchmarkFig9_Sort(b *testing.B) {
	top := benchTopo(b, "Ivy")
	var gnu, mct, sse msort.Fig9Row
	for i := 0; i < b.N; i++ {
		var err error
		gnu, err = msort.ModelFig9(top, msort.VariantGNU, top.NumHWContexts())
		if err != nil {
			b.Fatal(err)
		}
		mct, _ = msort.ModelFig9(top, msort.VariantMCTOP, top.NumHWContexts())
		sse, _ = msort.ModelFig9(top, msort.VariantMCTOPSSE, top.NumHWContexts())
	}
	b.ReportMetric(gnu.TotalSec(), "gnu_sec")
	b.ReportMetric(mct.TotalSec(), "mctop_sec")
	b.ReportMetric(sse.TotalSec(), "mctop_sse_sec")
}

// BenchmarkFig9_RealSort sorts real data with the actual mctop_sort
// implementation (correctness-bearing counterpart of the model).
func BenchmarkFig9_RealSort(b *testing.B) {
	top := benchTopo(b, "Ivy")
	base := make([]int32, 1<<20)
	s := uint32(2463534242)
	for i := range base {
		s ^= s << 13
		s ^= s >> 17
		s ^= s << 5
		base[i] = int32(s)
	}
	data := make([]int32, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, base)
		if err := msort.MCTOPSort(data, top, 8, 0); err != nil {
			b.Fatal(err)
		}
	}
	if !msort.SortedInt32(data) {
		b.Fatal("not sorted")
	}
}

// BenchmarkFig10_Metis evaluates the Figure 10 model on Ivy and reports
// the mean relative time of the four workloads.
func BenchmarkFig10_Metis(b *testing.B) {
	top := benchTopo(b, "Ivy")
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := mapreduce.ModelFig10(top)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.RelTime
		}
		avg = sum / float64(len(rows))
	}
	b.ReportMetric(avg, "rel_time_avg")
}

// BenchmarkFig11_EnergyPlacement evaluates the POWER-policy trade on Ivy.
func BenchmarkFig11_EnergyPlacement(b *testing.B) {
	top := benchTopo(b, "Ivy")
	var rows []mapreduce.Fig11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = mapreduce.ModelFig11(top)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].RelTime, "kmeans_rel_time")
		b.ReportMetric(rows[0].RelEnergy, "kmeans_rel_energy")
		b.ReportMetric(rows[0].EnergyEfficiency, "kmeans_efficiency")
	}
}

// BenchmarkFig12_OpenMP evaluates the MCTOP MP model on Ivy and reports
// the average relative time over the six graph workloads.
func BenchmarkFig12_OpenMP(b *testing.B) {
	top := benchTopo(b, "Ivy")
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := omp.ModelFig12(top)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.RelTime
		}
		avg = sum / float64(len(rows))
	}
	b.ReportMetric(avg, "rel_time_avg")
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblation_Clustering compares the gap-based clusterer against a
// fixed-width bucketing alternative on the Opteron's tricky level set
// (197 vs 217 cycles), reporting how many levels each finds (truth: 4).
func BenchmarkAblation_Clustering(b *testing.B) {
	_, res, err := InferPlatformDetailed("Opteron", 9, Options{Reps: 51})
	if err != nil {
		b.Fatal(err)
	}
	var offDiag []int64
	for i := range res.RawTable {
		for j := i + 1; j < len(res.RawTable); j++ {
			offDiag = append(offDiag, res.RawTable[i][j])
		}
	}
	var gap, fixed int
	for i := 0; i < b.N; i++ {
		gap = len(stats.Cluster(offDiag, stats.ClusterOptions{RelGap: 0.04, AbsGap: 10}))
		// Fixed-width buckets of 64 cycles (a naive alternative): merges
		// the 197/217 levels.
		fixed = len(stats.Cluster(offDiag, stats.ClusterOptions{RelGap: 1e-9, AbsGap: 64}))
	}
	b.ReportMetric(float64(gap), "gap_levels")
	b.ReportMetric(float64(fixed), "fixedwidth_levels")
}

// BenchmarkAblation_Repetitions measures inference success rates at
// different repetition counts under noise (the n=2000 / 7% stdev choice of
// Section 3.5).
func BenchmarkAblation_Repetitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, reps := range []int{5, 51, 201} {
			p := sim.Ivy()
			p.SpuriousRate = 0.02
			m, err := machine.NewSim(p, uint64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			o := mctopalg.DefaultOptions()
			o.Reps = reps
			_, _ = mctopalg.Infer(m, o) // low reps may legitimately fail
		}
	}
}

// BenchmarkAblation_BackoffQuantum sweeps the ticket-lock backoff quantum
// around the educated value (paper policy: the max latency between
// participants) and reports throughput at 0.5x/1x/4x on Ivy, 40 threads.
func BenchmarkAblation_BackoffQuantum(b *testing.B) {
	top := benchTopo(b, "Ivy")
	p := sim.Ivy()
	threads := make([]int, 40)
	for t := range threads {
		threads[t] = t
	}
	educated := top.MaxLatency()
	results := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for name, q := range map[string]int64{
			"half": educated / 2, "educated": educated, "quad": educated * 4,
		} {
			res, err := contend.Run(contend.Config{
				Platform: p, Threads: threads, Alg: locks.AlgTicket,
				Quantum: q, CSWork: 1000, PauseWork: 100, Horizon: 2_000_000,
			})
			if err != nil {
				b.Fatal(err)
			}
			results[name] = res.Throughput
		}
	}
	b.ReportMetric(results["half"], "half_thpt")
	b.ReportMetric(results["educated"], "educated_thpt")
	b.ReportMetric(results["quad"], "quad_thpt")
}

// BenchmarkAblation_MergeTree compares the paper's greedy reduction tree,
// the exhaustive optimal tree, and naive adjacent pairing on the Opteron's
// asymmetric interconnect (cost in cycles for 128 MB per socket).
func BenchmarkAblation_MergeTree(b *testing.B) {
	top := benchTopo(b, "Opteron")
	sockets := []int{0, 3, 5, 6, 1, 2, 7, 4}
	var cGreedy, cOpt, cNaive int64
	for i := 0; i < b.N; i++ {
		greedy, err := reduce.Tree(top, sockets, 0)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := reduce.OptimalTree(top, sockets, 0, 1<<27)
		if err != nil {
			b.Fatal(err)
		}
		naive, err := reduce.NaiveTree(top, sockets, 0)
		if err != nil {
			b.Fatal(err)
		}
		cGreedy = reduce.Cost(top, greedy, 1<<27)
		cOpt = reduce.Cost(top, opt, 1<<27)
		cNaive = reduce.Cost(top, naive, 1<<27)
	}
	b.ReportMetric(float64(cGreedy), "greedy_cycles")
	b.ReportMetric(float64(cOpt), "optimal_cycles")
	b.ReportMetric(float64(cNaive), "naive_cycles")
}

// BenchmarkAblation_MergeKernel measures the real scalar vs bitonic 8-wide
// merge kernels on in-memory data (the mctop_sort_sse design choice).
func BenchmarkAblation_MergeKernel(b *testing.B) {
	n := 1 << 16
	a := make([]int32, n)
	c := make([]int32, n)
	for i := range a {
		a[i] = int32(2 * i)
		c[i] = int32(2*i + 1)
	}
	dst := make([]int32, 2*n)
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			msort.MergeScalarForBench(dst, a, c)
		}
	})
	b.Run("bitonic8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			msort.MergeBitonicForBench(dst, a, c)
		}
	})
}

// BenchmarkPlacementPolicies measures placement construction across all 12
// policies (Table 2).
func BenchmarkPlacementPolicies(b *testing.B) {
	top := benchTopo(b, "Westmere")
	for i := 0; i < b.N; i++ {
		for _, pol := range place.Policies() {
			if pol == place.PowerPolicy && !top.Power().Available() {
				continue
			}
			if _, err := place.New(top, pol, place.Options{NThreads: 64}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDescriptionFile measures encode+decode of a description file
// (Table 1's structures on disk).
func BenchmarkDescriptionFile(b *testing.B) {
	top := benchTopo(b, "SPARC")
	spec := top.Spec()
	for i := 0; i < b.N; i++ {
		path := b.TempDir() + "/t.mct"
		if err := topo.SaveFile(path, top); err != nil {
			b.Fatal(err)
		}
		if _, err := topo.LoadFile(path); err != nil {
			b.Fatal(err)
		}
	}
	_ = spec
}
