// Package mctop is a Go reproduction of "Abstracting Multi-Core Topologies
// with MCTOP" (Chatzopoulos, Guerraoui, Harris, Trigonakis — EuroSys 2017).
//
// MCTOP is a portable multi-core topology abstraction enriched with
// measured communication latencies, memory latencies and bandwidths, cache
// parameters and power figures. It is generated automatically by
// MCTOP-ALG, which infers the machine's structure from nothing but
// context-to-context latency measurements, exploiting the determinism of
// cache-coherence protocols.
//
// This package is the client API — the Go shape of the paper's MCTOP-LIB
// (Section 5). Its pieces:
//
//   - Infer / InferDetailed — context-aware inference of one of the five
//     simulated platforms, tuned by functional options (WithReps,
//     WithParallelism, WithForkedEnrich); cancelling the context aborts
//     the O(N²) measurement phase.
//   - Policy — the composable placement-policy interface. The 12 builtin
//     policies of Table 2 (ConHWC, RRCore, …) implement it; combinators
//     (Limit, OnSockets, Reverse) wrap any Policy into a new one; custom
//     policies register by name (RegisterPolicy) and are then placeable
//     through the Registry and mctopd like builtins.
//   - Alloc — the mctop_alloc mirror: a topology-aware thread allocator
//     applications hold, offering Pin/Unpin per thread id and the
//     Figure 7 report.
//   - Registry — the concurrency-safe, LRU-bounded topology service layer
//     with context-aware lookups (TopologyContext, PlaceContext,
//     PlaceBatchContext), the backend of cmd/mctopd. Its cache is a
//     tiered Store: WithSpoolDir chains the in-memory LRU over a
//     description-file spool, so a restarted process warm-starts from
//     disk with zero re-inferences.
//   - Structured errors — ErrUnknownPlatform, ErrUnknownPolicy,
//     ErrInvalidRequest, ErrTooLarge, ErrSaturated — that errors.Is
//     matches through every layer; cmd/mctopd maps them to HTTP statuses
//     in one place.
//
// Quick start:
//
//	top, err := mctop.Infer(ctx, "Ivy", 42)                 // simulate + infer + enrich
//	pol := mctop.OnSockets(mctop.RRCore, 0).Limit(8)        // compose a policy
//	alloc, err := mctop.NewAlloc(top, pol)                  // the mctop_alloc object
//	hwc, err := alloc.Pin(0)                                // thread 0's context
//	fmt.Print(alloc.Report())                               // the Figure 7 report
//
// Serving topologies (what cmd/mctopd builds on). Note the registry keeps
// the zero-value Options semantics — paper defaults, n = 2000 reps — so
// pass WithReps explicitly for the facade's fast 201-rep configuration
// (and to share cache entries with Infer's results):
//
//	reg := mctop.NewRegistry(256)                           // LRU bound
//	opt := mctop.NewOptions(mctop.WithReps(201))
//	top, err := reg.TopologyContext(ctx, "Ivy", 42, opt)
//	pl, err := reg.PlaceContext(ctx, "Ivy", 42, opt, "RR_CORE", 8)
//
// The pre-redesign facade (InferPlatform, Place, string-keyed policies,
// the raw Options struct) is kept below as thin deprecated shims over the
// new API; see README.md for the migration table.
//
// The heavy lifting lives in the internal packages:
//
//   - internal/sim       — deterministic simulators of the paper's five
//     machines (Ivy, Westmere, Haswell, Opteron, SPARC T4-4)
//   - internal/mesi      — the MESI coherence engine beneath the simulator
//   - internal/machine   — the OS-facing measurement interface (simulator
//     and best-effort Linux host backends)
//   - internal/mctopalg  — the inference algorithm (Section 3)
//   - internal/topo      — the MCTOP representation, description files,
//     Graphviz output (Section 2)
//   - internal/plugins   — memory/cache/power enrichment (Section 4)
//   - internal/place     — MCTOP-PLACE: the 12 placement policies, the
//     Policy interface and combinators (Section 6)
//   - internal/mctoperr  — the sentinel errors of the client API
//   - internal/registry  — the topology service layer (the paper's
//     "created once, then used to load the topology" deployment model,
//     Section 2) over a pluggable tiered store
//   - internal/spool     — the description-file persistence tier behind
//     WithSpoolDir and mctopd's -spool-dir
//   - internal/remote    — the fleet tier behind WithUpstream and mctopd's
//     -upstream: an edge daemon pulls description files from an origin
//     instead of inferring locally
//   - internal/locks, internal/contend, internal/msort, internal/reduce,
//     internal/mapreduce, internal/graph, internal/omp,
//     internal/worksteal — the portable-optimization case studies
//     (Sections 5 and 7)
package mctop

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/registry"
	"repro/internal/remote"
	"repro/internal/sim"
	"repro/internal/spool"
	"repro/internal/taskmap"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Topology is the MCTOP abstraction (see internal/topo for the full API).
type Topology = topo.Topology

// Placement is an MCTOP-PLACE thread placement (see internal/place).
type Placement = place.Placement

// InferResult carries an inference's topology and the intermediate
// artifacts of the algorithm's four steps.
type InferResult = mctopalg.Result

// Platforms lists the names of the five simulated machines of the paper's
// evaluation.
func Platforms() []string {
	var out []string
	for _, p := range sim.Platforms() {
		out = append(out, p.Name)
	}
	return out
}

// Options tunes inference; see mctopalg.Options. The zero value uses the
// paper's defaults (n = 2000 repetitions, 7%-14% stdev thresholds).
// Prefer building it with NewOptions and the With* functional options.
type Options = mctopalg.Options

// SamplingOptions configures the sub-O(N²) sampled measurement mode (see
// mctopalg.SamplingOptions); enable it with WithSampling or
// WithSamplingParams.
type SamplingOptions = mctopalg.SamplingOptions

// InferPlatform simulates one of the paper's machines with the given noise
// seed, runs MCTOP-ALG on it, enriches the result with all four plugins,
// and returns the topology.
//
// Deprecated: use Infer, which takes a context and functional options.
func InferPlatform(name string, seed uint64) (*Topology, error) {
	t, _, err := InferPlatformDetailed(name, seed, Options{Reps: 201})
	return t, err
}

// InferPlatformDetailed is InferPlatform with explicit options and access
// to the intermediate artifacts (the latency table, clusters, normalized
// table — everything Figure 6 shows).
//
// Deprecated: use InferDetailed, which takes a context and functional
// options.
func InferPlatformDetailed(name string, seed uint64, opt Options) (*Topology, *InferResult, error) {
	return inferPlatform(context.Background(), name, seed, opt)
}

// InferHost runs MCTOP-ALG on the real host, best effort (see
// InferHostContext, which this delegates to with a background context).
func InferHost(opt Options) (*Topology, *InferResult, error) {
	return inferHost(context.Background(), opt)
}

// Load reads a topology from an MCTOP description file.
func Load(path string) (*Topology, error) { return topo.LoadFile(path) }

// Save writes a topology's description file ("created once, then used to
// load the topology", Section 2).
func Save(path string, t *Topology) error { return topo.SaveFile(path, t) }

// Place builds a thread placement using one of the 12 policies of Table 2,
// named as in the paper (e.g. "CON_HWC", "RR_CORE", "POWER"); nThreads = 0
// uses every context the policy allows.
//
// Deprecated: use NewAlloc with a typed Policy (ResolvePolicy turns a name
// into one), which also supports combinators and custom policies.
func Place(t *Topology, policy string, nThreads int) (*Placement, error) {
	pol, err := place.Resolve(policy)
	if err != nil {
		return nil, err
	}
	return place.NewFrom(t, pol, place.Options{NThreads: nThreads})
}

// PolicyNames lists the 12 builtin placement policies.
func PolicyNames() []string {
	var out []string
	for _, p := range place.Policies() {
		out = append(out, p.String())
	}
	return out
}

// RegisteredPolicyNames lists the names of the registered custom policies,
// sorted.
func RegisteredPolicyNames() []string { return place.RegisteredNames() }

// Validate cross-checks a topology against an OS view (Section 3.6) and
// returns human-readable divergences; empty means agreement.
func Validate(t *Topology, osCoreOfCtx, osSocketOfCtx, osNodeOfSocket []int) []string {
	return t.CompareOS(osCoreOfCtx, osSocketOfCtx, osNodeOfSocket)
}

// Describe renders the textual summary plus both Graphviz graphs of a
// topology (the visualization of Figures 1-3).
func Describe(t *Topology) string {
	out := t.String()
	out += "\n--- intra-socket graph (socket 0) ---\n" + t.DotIntraSocket(0)
	out += "\n--- cross-socket graph ---\n" + t.DotCrossSocket()
	return out
}

// Registry is a concurrency-safe, LRU-bounded cache of inferred topologies
// and derived placements, keyed by (platform, seed, options). Concurrent
// misses on one key collapse into a single inference (singleflight); hits
// are lock-cheap map lookups, orders of magnitude faster than re-running
// MCTOP-ALG. The *Context methods honor cancellation and deadlines. See
// internal/registry for the full API and semantics.
type Registry = registry.Registry

// RegistryStats is a snapshot of a Registry's hit/miss/eviction counters.
type RegistryStats = registry.Stats

// PlaceRequest is one (policy, threads) pair of a Registry.PlaceBatch call:
// many placement requests answered against a single topology lookup (what
// mctopd's POST /v1/place/batch endpoint builds on).
type PlaceRequest = registry.PlaceRequest

// BatchResult is one Registry.PlaceBatch answer: a placement or the
// per-request error that produced none.
type BatchResult = registry.BatchResult

// Store is one cache tier of a Registry (see internal/registry): the
// in-memory LRU every registry has, the description-file spool
// (OpenSpool), or any custom tier. Tiers compose via WithSpoolDir /
// WithStore into a read-through/write-through chain.
type Store = registry.Store

// StoreStats is one store tier's counter snapshot, exposed per tier in
// RegistryStats.Tiers.
type StoreStats = registry.StoreStats

// InferCtxFunc is the registry's compute path: the context-aware
// simulate → infer → enrich pipeline a Registry falls back to when every
// cache tier misses.
type InferCtxFunc = registry.InferCtxFunc

// TaskDAG is a task graph for the mapping service (see internal/graph):
// nodes carry compute weights in cycles, edges carry communication volumes
// in bytes.
type TaskDAG = graph.TaskDAG

// Mapping is a task-graph → hardware-context assignment with its
// estimated completion time (see internal/taskmap).
type Mapping = taskmap.Mapping

// MapFunc is the registry's mapping compute path, called on a mapping
// cache miss (default taskmap.Map).
type MapFunc = registry.MapFunc

// MapOptions tunes a mapping compute (see taskmap.Options).
type MapOptions = taskmap.Options

// RegistryOption configures NewRegistry beyond the entry bound.
type RegistryOption func(*registryConfig)

type registryConfig struct {
	store         Store
	spoolDir      string
	spoolMaxBytes int64
	spoolMaxAge   time.Duration
	upstream      string
	inferWrap     func(InferCtxFunc) InferCtxFunc
	mapWrap       func(MapFunc) MapFunc
	tracer        *Tracer
}

// WithStore installs a custom cache store — typically a NewTieredStore
// chain ending in a persistent tier. The maxEntries argument of
// NewRegistry is ignored when a store is supplied (bound the tiers you
// pass in instead), and WithStore takes precedence over WithSpoolDir.
func WithStore(s Store) RegistryOption {
	return func(c *registryConfig) { c.store = s }
}

// WithSpoolDir chains the registry's LRU (bounded by NewRegistry's
// maxEntries) over a description-file spool in dir (created if needed):
// every inferred topology and computed placement is persisted as it is
// cached, and a future registry over the same dir — a restarted daemon —
// serves them from disk with zero re-inferences. The spool is opened
// inside NewRegistry, which panics if the directory cannot be created or
// scanned; use OpenSpool plus WithStore to handle that error instead.
func WithSpoolDir(dir string) RegistryOption {
	return func(c *registryConfig) { c.spoolDir = dir }
}

// WithSpoolLimits bounds the spool WithSpoolDir opens: maxBytes caps the
// directory's total size and maxAge evicts files older than it (<= 0 =
// unlimited for either). Bounds are enforced at the startup scan and after
// every Flush/Close, oldest-mtime files first — the hygiene story for
// long-lived daemons whose spool would otherwise only grow. Evictions
// surface in the spool tier's StoreStats. No-op without WithSpoolDir.
func WithSpoolLimits(maxBytes int64, maxAge time.Duration) RegistryOption {
	return func(c *registryConfig) {
		c.spoolMaxBytes, c.spoolMaxAge = maxBytes, maxAge
	}
}

// WithUpstream chains a remote tier under the registry's local tiers: a
// key that misses the LRU (and the spool, if any) is fetched from the
// mctopd at originURL via its /v1/export endpoint before falling back to
// local inference — the fleet deployment where one origin infers and every
// edge serves cached description files. The remote tier never fails: a
// down, slow or corrupt origin degrades to local re-inference, with
// negative caching and backoff so an unreachable origin costs one failed
// dial per window rather than per-request latency.
func WithUpstream(originURL string) RegistryOption {
	return func(c *registryConfig) { c.upstream = originURL }
}

// WithInferWrapper interposes on the registry's compute path: wrap
// receives the default inference pipeline and returns the InferCtxFunc
// the registry will actually call on a full-chain miss. Use it to add
// cross-cutting behavior — latency injection for chaos testing, tracing,
// admission control — without reimplementing inference:
//
//	reg := mctop.NewRegistry(256, mctop.WithInferWrapper(
//		func(next mctop.InferCtxFunc) mctop.InferCtxFunc {
//			return func(ctx context.Context, p string, s uint64, o mctop.Options) (*mctop.Topology, error) {
//				log.Printf("inferring %s/%d", p, s)
//				return next(ctx, p, s, o)
//			}
//		}))
func WithInferWrapper(wrap func(InferCtxFunc) InferCtxFunc) RegistryOption {
	return func(c *registryConfig) { c.inferWrap = wrap }
}

// WithMapWrapper is WithInferWrapper for the task-graph mapping compute
// path: wrap receives the default mapper (taskmap.Map) and returns the
// MapFunc the registry calls on a mapping cache miss — the seam mctopd's
// registry.map fault-injection point uses.
func WithMapWrapper(wrap func(MapFunc) MapFunc) RegistryOption {
	return func(c *registryConfig) { c.mapWrap = wrap }
}

// Tracer is the span plane of internal/trace: a sampling, bounded,
// dependency-free request tracer. Registry and store instrumentation emit
// spans into whatever tracer the request context carries; WithRegistryTracer
// additionally hands the tracer to tiers that run work outside any request
// (the spool's background writer).
type Tracer = trace.Tracer

// TracerOption configures NewTracer (see internal/trace's With* options).
type TracerOption = trace.Option

// NewTracer creates a Tracer; without options it is disabled (sample rate
// 0) and every instrumentation call is a no-op.
func NewTracer(opts ...TracerOption) *Tracer { return trace.New(opts...) }

// WithTraceSampleRate sets the head-sampling probability in [0, 1].
func WithTraceSampleRate(r float64) TracerOption { return trace.WithSampleRate(r) }

// WithTraceSlowThreshold keeps every trace whose root span lasts at least
// d, regardless of the sampling decision (0 disables slow-keeping).
func WithTraceSlowThreshold(d time.Duration) TracerOption { return trace.WithSlowThreshold(d) }

// WithRegistryTracer hands tr to the storage tiers NewRegistry builds that
// do work outside any request context — today the spool, whose write-behind
// goroutine opens its own root spans for background persists and
// quarantines. Request-path spans need no option: they follow the context.
// No-op when the tiers are supplied ready-made via WithStore.
func WithRegistryTracer(tr *Tracer) RegistryOption {
	return func(c *registryConfig) { c.tracer = tr }
}

// OpenSpool opens (creating if needed) a description-file spool directory
// as a Store tier — the error-returning path behind WithSpoolDir. Wire it
// in with WithStore:
//
//	sp, err := mctop.OpenSpool("/var/lib/mctop/spool")
//	reg := mctop.NewRegistry(0, mctop.WithStore(
//		mctop.NewTieredStore(mctop.NewLRUStore(256, 0), sp)))
func OpenSpool(dir string) (Store, error) {
	return spool.New(dir)
}

// OpenSpoolWithLimits is OpenSpool with the WithSpoolLimits bounds
// (<= 0 = unlimited for either).
func OpenSpoolWithLimits(dir string, maxBytes int64, maxAge time.Duration) (Store, error) {
	return spool.New(dir, spoolLimitOptions(maxBytes, maxAge)...)
}

func spoolLimitOptions(maxBytes int64, maxAge time.Duration) []spool.Option {
	var opts []spool.Option
	if maxBytes > 0 {
		opts = append(opts, spool.WithMaxBytes(maxBytes))
	}
	if maxAge > 0 {
		opts = append(opts, spool.WithMaxAge(maxAge))
	}
	return opts
}

// NewRemoteStore creates the fleet tier: a read-only Store fetching
// `#key`-headed description files from the mctopd at originURL (its
// /v1/export endpoint). See WithUpstream for the degradation semantics;
// use it directly to compose custom chains with NewTieredStore.
func NewRemoteStore(originURL string) Store {
	return remote.New(originURL)
}

// NewLRUStore creates the in-memory sharded LRU tier (<= 0 arguments pick
// the defaults: 256 entries, 8 shards).
func NewLRUStore(maxEntries, shards int) Store {
	return registry.NewLRU(maxEntries, shards)
}

// NewTieredStore chains stores, fastest first, into one read-through/
// write-through Store (see registry.NewTiered).
func NewTieredStore(tiers ...Store) Store {
	return registry.NewTiered(tiers...)
}

// NewRegistry creates a topology registry bounded to maxEntries cached
// values (topologies and placements each count as one; <= 0 uses the
// default of 256). Misses run the full simulate → infer → enrich pipeline
// under the caller's context. Options add storage tiers, composing the
// chain LRU → spool → remote (each optional tier only if requested):
// WithSpoolDir persists the cache as description files so a restart
// warm-starts from disk (bounded via WithSpoolLimits); WithUpstream
// fetches misses from an origin mctopd before inferring locally;
// WithStore installs any custom tier chain (and overrides the others).
// Registries with a persistent tier should be Flush()ed (or Close()d)
// before process exit.
func NewRegistry(maxEntries int, opts ...RegistryOption) *Registry {
	var c registryConfig
	for _, o := range opts {
		o(&c)
	}
	if c.store == nil && (c.spoolDir != "" || c.upstream != "") {
		tiers := []Store{registry.NewLRU(maxEntries, 0)}
		if c.spoolDir != "" {
			sopts := spoolLimitOptions(c.spoolMaxBytes, c.spoolMaxAge)
			if c.tracer.Enabled() {
				sopts = append(sopts, spool.WithTracer(c.tracer))
			}
			sp, err := spool.New(c.spoolDir, sopts...)
			if err != nil {
				panic(fmt.Sprintf("mctop: opening spool: %v", err))
			}
			tiers = append(tiers, sp)
		}
		if c.upstream != "" {
			tiers = append(tiers, remote.New(c.upstream))
		}
		c.store = registry.NewTiered(tiers...)
	}
	infer := InferCtxFunc(func(ctx context.Context, platform string, seed uint64, opt Options) (*Topology, error) {
		t, _, err := inferPlatform(ctx, platform, seed, opt)
		return t, err
	})
	if c.inferWrap != nil {
		infer = c.inferWrap(infer)
	}
	var mapFn MapFunc
	if c.mapWrap != nil {
		mapFn = c.mapWrap(taskmap.Map)
	}
	return registry.New(registry.Options{
		MaxEntries: maxEntries,
		Store:      c.store,
		InferCtx:   infer,
		MapFn:      mapFn,
	})
}

// MustInfer is InferPlatform for examples and tests that cannot proceed
// without a topology.
func MustInfer(name string, seed uint64) *Topology {
	t, err := InferPlatform(name, seed)
	if err != nil {
		panic(fmt.Sprintf("mctop: inferring %s: %v", name, err))
	}
	return t
}
