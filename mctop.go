// Package mctop is a Go reproduction of "Abstracting Multi-Core Topologies
// with MCTOP" (Chatzopoulos, Guerraoui, Harris, Trigonakis — EuroSys 2017).
//
// MCTOP is a portable multi-core topology abstraction enriched with
// measured communication latencies, memory latencies and bandwidths, cache
// parameters and power figures. It is generated automatically by
// MCTOP-ALG, which infers the machine's structure from nothing but
// context-to-context latency measurements, exploiting the determinism of
// cache-coherence protocols.
//
// This package is the library facade. The heavy lifting lives in the
// internal packages:
//
//   - internal/sim       — deterministic simulators of the paper's five
//     machines (Ivy, Westmere, Haswell, Opteron, SPARC T4-4)
//   - internal/mesi      — the MESI coherence engine beneath the simulator
//   - internal/machine   — the OS-facing measurement interface (simulator
//     and best-effort Linux host backends)
//   - internal/mctopalg  — the inference algorithm (Section 3)
//   - internal/topo      — the MCTOP representation, description files,
//     Graphviz output (Section 2)
//   - internal/plugins   — memory/cache/power enrichment (Section 4)
//   - internal/place     — MCTOP-PLACE, the 12 placement policies
//     (Section 6)
//   - internal/registry — the topology service layer: a sharded,
//     singleflight-deduplicated, LRU-bounded cache that memoizes inference
//     results and derived placements (the paper's "created once, then used
//     to load the topology" deployment model, Section 2)
//   - internal/locks, internal/contend, internal/msort, internal/reduce,
//     internal/mapreduce, internal/graph, internal/omp,
//     internal/worksteal — the portable-optimization case studies
//     (Sections 5 and 7)
//
// Inference parallelism: on simulated machines the O(N²) measurement phase
// of MCTOP-ALG fans out over a bounded worker pool (Options.Parallelism),
// measuring each context pair on an independent deterministic fork — the
// inferred topology is byte-identical to a sequential run for a fixed seed.
//
// Quick start:
//
//	top, err := mctop.InferPlatform("Ivy", 42)   // simulate + infer + enrich
//	node := top.GetLocalNode(0)                  // query the abstraction
//	pl, err := mctop.Place(top, "CON_HWC", 30)   // place 30 threads
//	fmt.Print(pl)                                // the Figure 7 report
//
// Serving topologies (what cmd/mctopd builds on):
//
//	reg := mctop.NewRegistry(256)                        // LRU bound
//	top, err := reg.Topology("Ivy", 42, mctop.Options{}) // infers once
//	pl, err := reg.Place("Ivy", 42, mctop.Options{}, "RR_CORE", 8)
package mctop

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Topology is the MCTOP abstraction (see internal/topo for the full API).
type Topology = topo.Topology

// Placement is an MCTOP-PLACE thread placement (see internal/place).
type Placement = place.Placement

// InferResult carries an inference's topology and the intermediate
// artifacts of the algorithm's four steps.
type InferResult = mctopalg.Result

// Platforms lists the names of the five simulated machines of the paper's
// evaluation.
func Platforms() []string {
	var out []string
	for _, p := range sim.Platforms() {
		out = append(out, p.Name)
	}
	return out
}

// Options tunes inference; see mctopalg.Options. The zero value uses the
// paper's defaults (n = 2000 repetitions, 7%-14% stdev thresholds).
type Options = mctopalg.Options

// InferPlatform simulates one of the paper's machines with the given noise
// seed, runs MCTOP-ALG on it, enriches the result with all four plugins,
// and returns the topology.
func InferPlatform(name string, seed uint64) (*Topology, error) {
	t, _, err := InferPlatformDetailed(name, seed, Options{Reps: 201})
	return t, err
}

// InferPlatformDetailed is InferPlatform with explicit options and access
// to the intermediate artifacts (the latency table, clusters, normalized
// table — everything Figure 6 shows).
func InferPlatformDetailed(name string, seed uint64, opt Options) (*Topology, *InferResult, error) {
	p, err := sim.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	m, err := machine.NewSim(p, seed)
	if err != nil {
		return nil, nil, err
	}
	res, err := mctopalg.Infer(m, opt)
	if err != nil {
		return nil, nil, err
	}
	var enriched *Topology
	if opt.ForkedEnrich {
		// Fork-per-probe enrichment: deterministic for the seed and
		// byte-identical for every Parallelism, like the measurement
		// phase (see mctopalg.Options.ForkedEnrich for why it is opt-in).
		enriched, err = plugins.EnrichForked(m, res.Topology, nil, opt.Parallelism)
	} else {
		enriched, err = plugins.Enrich(m, res.Topology, nil)
	}
	if err != nil {
		return nil, nil, err
	}
	res.Topology = enriched
	return enriched, res, nil
}

// InferHost runs MCTOP-ALG on the real host, best effort: the Go runtime
// adds far more noise than the paper's C implementation tolerates, so the
// result is illustrative (and may fail with a clustering error on noisy
// machines — retry, as Section 3.5 prescribes).
func InferHost(opt Options) (*Topology, *InferResult, error) {
	m := machine.NewHost()
	res, err := mctopalg.Infer(m, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Topology, res, nil
}

// Load reads a topology from an MCTOP description file.
func Load(path string) (*Topology, error) { return topo.LoadFile(path) }

// Save writes a topology's description file ("created once, then used to
// load the topology", Section 2).
func Save(path string, t *Topology) error { return topo.SaveFile(path, t) }

// Place builds a thread placement using one of the 12 policies of Table 2,
// named as in the paper (e.g. "CON_HWC", "RR_CORE", "POWER"); nThreads = 0
// uses every context the policy allows.
func Place(t *Topology, policy string, nThreads int) (*Placement, error) {
	pol, err := place.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	return place.New(t, pol, place.Options{NThreads: nThreads})
}

// PolicyNames lists the 12 placement policies.
func PolicyNames() []string {
	var out []string
	for _, p := range place.Policies() {
		out = append(out, p.String())
	}
	return out
}

// Validate cross-checks a topology against an OS view (Section 3.6) and
// returns human-readable divergences; empty means agreement.
func Validate(t *Topology, osCoreOfCtx, osSocketOfCtx, osNodeOfSocket []int) []string {
	return t.CompareOS(osCoreOfCtx, osSocketOfCtx, osNodeOfSocket)
}

// Describe renders the textual summary plus both Graphviz graphs of a
// topology (the visualization of Figures 1-3).
func Describe(t *Topology) string {
	out := t.String()
	out += "\n--- intra-socket graph (socket 0) ---\n" + t.DotIntraSocket(0)
	out += "\n--- cross-socket graph ---\n" + t.DotCrossSocket()
	return out
}

// Registry is a concurrency-safe, LRU-bounded cache of inferred topologies
// and derived placements, keyed by (platform, seed, options). Concurrent
// misses on one key collapse into a single inference (singleflight); hits
// are lock-cheap map lookups, orders of magnitude faster than re-running
// MCTOP-ALG. See internal/registry for the full API and semantics.
type Registry = registry.Registry

// RegistryStats is a snapshot of a Registry's hit/miss/eviction counters.
type RegistryStats = registry.Stats

// PlaceRequest is one (policy, threads) pair of a Registry.PlaceBatch call:
// many placement requests answered against a single topology lookup (what
// mctopd's POST /v1/place/batch endpoint builds on).
type PlaceRequest = registry.PlaceRequest

// BatchResult is one Registry.PlaceBatch answer: a placement or the
// per-request error that produced none.
type BatchResult = registry.BatchResult

// NewRegistry creates a topology registry bounded to maxEntries cached
// values (topologies and placements each count as one; <= 0 uses the
// default of 256). Misses run the full InferPlatformDetailed pipeline:
// simulate, infer, enrich.
func NewRegistry(maxEntries int) *Registry {
	return registry.New(registry.Options{
		MaxEntries: maxEntries,
		Infer: func(platform string, seed uint64, opt Options) (*Topology, error) {
			t, _, err := InferPlatformDetailed(platform, seed, opt)
			return t, err
		},
	})
}

// MustInfer is InferPlatform for examples and tests that cannot proceed
// without a topology.
func MustInfer(name string, seed uint64) *Topology {
	t, err := InferPlatform(name, seed)
	if err != nil {
		panic(fmt.Sprintf("mctop: inferring %s: %v", name, err))
	}
	return t
}
