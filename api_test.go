package mctop_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	mctop "repro"
)

// testOptions keeps inference fast in tests (the facade's full default of
// 201 reps is still ~10x slower than needed for a 20-context Ivy).
func fastOpts() []mctop.Option { return []mctop.Option{mctop.WithReps(51)} }

func TestInferContextAware(t *testing.T) {
	ctx := context.Background()
	top, err := mctop.Infer(ctx, "Ivy", 42, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumHWContexts() != 40 {
		t.Fatalf("Ivy has %d contexts, want 40", top.NumHWContexts())
	}

	// Unknown platforms wrap the sentinel.
	if _, err := mctop.Infer(ctx, "Nope", 42, fastOpts()...); !errors.Is(err, mctop.ErrUnknownPlatform) {
		t.Errorf("err = %v, want ErrUnknownPlatform", err)
	}

	// A pre-cancelled context aborts before measuring.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := mctop.Infer(cancelled, "Ivy", 43, fastOpts()...); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestAllocPinUnpin(t *testing.T) {
	top, err := mctop.Infer(context.Background(), "Ivy", 42, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := mctop.NewAlloc(top, mctop.RRCore, mctop.WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	if alloc.NumHWContexts() != 8 {
		t.Fatalf("NumHWContexts = %d, want 8", alloc.NumHWContexts())
	}
	order := alloc.Contexts()
	// Pin is deterministic and idempotent.
	for i := 0; i < 8; i++ {
		c, err := alloc.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		if c != order[i] {
			t.Fatalf("Pin(%d) = %d, want slot %d", i, c, order[i])
		}
		again, _ := alloc.Pin(i)
		if again != c {
			t.Fatalf("re-Pin(%d) = %d, want %d", i, again, c)
		}
	}
	if alloc.NumPinned() != 8 {
		t.Fatalf("NumPinned = %d, want 8", alloc.NumPinned())
	}
	if err := alloc.Unpin(3); err != nil {
		t.Fatal(err)
	}
	if alloc.NumPinned() != 7 {
		t.Fatalf("NumPinned after Unpin = %d, want 7", alloc.NumPinned())
	}
	// Out-of-range ids wrap ErrInvalidRequest.
	if _, err := alloc.Pin(8); !errors.Is(err, mctop.ErrInvalidRequest) {
		t.Errorf("Pin(8) err = %v, want ErrInvalidRequest", err)
	}
	if err := alloc.Unpin(-1); !errors.Is(err, mctop.ErrInvalidRequest) {
		t.Errorf("Unpin(-1) err = %v, want ErrInvalidRequest", err)
	}
	if !strings.Contains(alloc.Report(), "MCTOP_PLACE_RR_CORE") {
		t.Errorf("report does not name the policy:\n%s", alloc.Report())
	}
}

// TestComposedPolicyThroughLibrary is the acceptance scenario: a custom
// composed policy (RR_CORE restricted to socket 0, capped at 8) placed
// through the library — NewAlloc directly and the Registry by registered
// name.
func TestComposedPolicyThroughLibrary(t *testing.T) {
	ctx := context.Background()
	top, err := mctop.Infer(ctx, "Ivy", 42, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	pol := mctop.OnSockets(mctop.RRCore, 0).Limit(8)

	alloc, err := mctop.NewAlloc(top, pol)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.NumHWContexts() != 8 {
		t.Fatalf("NumHWContexts = %d, want 8", alloc.NumHWContexts())
	}
	for _, c := range alloc.Contexts() {
		if s := top.Context(c).Socket.ID; s != 0 {
			t.Fatalf("context %d on socket %d, want 0", c, s)
		}
	}

	// Registered under a name, the same composition is placeable through
	// the registry's string-keyed API (what mctopd serves).
	named := registeredPolicy{name: "SOCKET0_RR8", impl: pol}
	if err := mctop.RegisterPolicy(named); err != nil {
		t.Fatal(err)
	}
	defer mctop.UnregisterPolicy("SOCKET0_RR8")

	reg := mctop.NewRegistry(16)
	pl, err := reg.PlaceContext(ctx, "Ivy", 42, mctop.NewOptions(fastOpts()...), "socket0_rr8", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PolicyName() != "SOCKET0_RR8" {
		t.Errorf("PolicyName = %q", pl.PolicyName())
	}
	got, want := pl.Contexts(), alloc.Contexts()
	if len(got) != len(want) {
		t.Fatalf("registry placement %v, alloc %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("slot %d: registry %d, alloc %d", i, got[i], want[i])
		}
	}

	// And typed, unregistered policies place through PlaceWithContext.
	pl2, err := reg.PlaceWithContext(ctx, "Ivy", 42, mctop.NewOptions(fastOpts()...), pol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl2.PolicyName() != pol.Name() {
		t.Errorf("PolicyName = %q, want %q", pl2.PolicyName(), pol.Name())
	}
}

// registeredPolicy names an existing Policy for registration.
type registeredPolicy struct {
	name string
	impl mctop.Policy
}

func (r registeredPolicy) Name() string { return r.name }
func (r registeredPolicy) Order(t *mctop.Topology, opt mctop.PlaceOptions) ([]int, error) {
	return r.impl.Order(t, opt)
}

func TestFunctionalOptionsHashStably(t *testing.T) {
	// The same configuration expressed as a raw struct and as functional
	// options must share one registry cache entry.
	reg := mctop.NewRegistry(16)
	ctx := context.Background()
	if _, err := reg.TopologyContext(ctx, "Ivy", 42, mctop.Options{Reps: 51}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.TopologyContext(ctx, "Ivy", 42, mctop.NewOptions(mctop.WithReps(51))); err != nil {
		t.Fatal(err)
	}
	if got := reg.Stats().Inferences; got != 1 {
		t.Fatalf("inferences = %d, want 1 (options must hash identically)", got)
	}
	// Parallelism is excluded from the key by design.
	if _, err := reg.TopologyContext(ctx, "Ivy", 42, mctop.NewOptions(mctop.WithReps(51), mctop.WithParallelism(2))); err != nil {
		t.Fatal(err)
	}
	if got := reg.Stats().Inferences; got != 1 {
		t.Fatalf("inferences = %d, want 1 (parallelism must not change the key)", got)
	}
	// ForkedEnrich changes results and therefore the key.
	if _, err := reg.TopologyContext(ctx, "Ivy", 42, mctop.NewOptions(mctop.WithReps(51), mctop.WithForkedEnrich())); err != nil {
		t.Fatal(err)
	}
	if got := reg.Stats().Inferences; got != 2 {
		t.Fatalf("inferences = %d, want 2 (forked enrich is part of the key)", got)
	}
}

// TestErrorsRoundTripThroughRegistry: errors.Is works on errors that
// travelled through the registry's singleflight and caching layers.
func TestErrorsRoundTripThroughRegistry(t *testing.T) {
	reg := mctop.NewRegistry(16)
	ctx := context.Background()
	if _, err := reg.TopologyContext(ctx, "Atari", 1, mctop.NewOptions(fastOpts()...)); !errors.Is(err, mctop.ErrUnknownPlatform) {
		t.Errorf("topology err = %v, want ErrUnknownPlatform", err)
	}
	if _, err := reg.PlaceContext(ctx, "Ivy", 42, mctop.NewOptions(fastOpts()...), "NOT_A_POLICY", 4); !errors.Is(err, mctop.ErrUnknownPolicy) {
		t.Errorf("place err = %v, want ErrUnknownPolicy", err)
	}
	if _, err := reg.PlaceContext(ctx, "SPARC", 42, mctop.NewOptions(fastOpts()...), "POWER", 4); !errors.Is(err, mctop.ErrInvalidRequest) {
		t.Errorf("power-on-SPARC err = %v, want ErrInvalidRequest", err)
	}
	// Batch items carry typed errors too.
	res, err := reg.PlaceBatchContext(ctx, "Ivy", 42, mctop.NewOptions(fastOpts()...), []mctop.PlaceRequest{
		{Policy: "RR_CORE", NThreads: 4},
		{Policy: "NOT_A_POLICY", NThreads: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[1].Err == nil || !errors.Is(res[1].Err, mctop.ErrUnknownPolicy) {
		t.Errorf("batch errors: %v / %v", res[0].Err, res[1].Err)
	}
}

func TestDeprecatedShimsStillWork(t *testing.T) {
	// The pre-redesign facade delegates to the new API and behaves
	// identically.
	top, err := mctop.InferPlatform("Ivy", 42)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := mctop.Place(top, "CON_HWC", 10)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NThreads() != 10 {
		t.Fatalf("NThreads = %d", pl.NThreads())
	}
	alloc, err := mctop.NewAlloc(top, mctop.ConHWC, mctop.WithThreads(10))
	if err != nil {
		t.Fatal(err)
	}
	shim, modern := pl.Contexts(), alloc.Contexts()
	for i := range shim {
		if shim[i] != modern[i] {
			t.Fatalf("slot %d: shim %d, new API %d", i, shim[i], modern[i])
		}
	}
}

// TestWithSpoolDirWarmStart: the facade option wires the tiered store the
// way mctopd's -spool-dir does — a second registry over the same dir
// serves spooled entries with zero inferences, and the LRU tier honors
// NewRegistry's entry bound.
func TestWithSpoolDirWarmStart(t *testing.T) {
	dir := t.TempDir()
	opt := mctop.NewOptions(fastOpts()...)

	r1 := mctop.NewRegistry(64, mctop.WithSpoolDir(dir))
	top1, err := r1.Topology("Ivy", 42, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	if st := r1.Stats(); st.Inferences != 1 {
		t.Fatalf("inferring registry ran %d inferences", st.Inferences)
	}

	r2 := mctop.NewRegistry(64, mctop.WithSpoolDir(dir))
	defer r2.Close()
	top2, err := r2.Topology("Ivy", 42, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Inferences != 0 {
		t.Fatalf("warm registry ran %d inferences, want 0", st.Inferences)
	}
	if top2.Name() != top1.Name() || top2.NumHWContexts() != top1.NumHWContexts() {
		t.Fatal("warm topology differs")
	}
	if len(st.Tiers) != 2 || st.Tiers[0].Tier != "lru" || st.Tiers[1].Tier != "spool" {
		t.Fatalf("tiers = %+v, want lru over spool", st.Tiers)
	}
}
