package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const prevJSON = `{"results": [
  {"pkg": "repro/internal/place", "name": "PowerOrder", "ns_per_op": 1000},
  {"pkg": "repro/internal/topo", "name": "GetLatency", "ns_per_op": 10},
  {"pkg": "repro/internal/topo", "name": "Removed", "ns_per_op": 5}
]}`

const curJSON = `{"results": [
  {"pkg": "repro/internal/place", "name": "PowerOrder", "ns_per_op": 1500},
  {"pkg": "repro/internal/topo", "name": "GetLatency", "ns_per_op": 9},
  {"pkg": "repro/internal/topo", "name": "Added", "ns_per_op": 7}
]}`

func TestReportDeltas(t *testing.T) {
	dir := t.TempDir()
	prevPath := filepath.Join(dir, "prev.json")
	curPath := filepath.Join(dir, "cur.json")
	if err := os.WriteFile(prevPath, []byte(prevJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(curPath, []byte(curJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	prev, err := load(prevPath)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := load(curPath)
	if err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "out.txt")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	report(f, prev, cur, 20)
	f.Close()
	text, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(text)

	for _, want := range []string{
		"+50.0%  WARN", // PowerOrder regressed past the threshold
		"-10.0%",       // GetLatency improved, no warning
		"new",          // Added has no previous row
		"gone",         // Removed has no current row
		"1 benchmark(s) regressed",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	// The improved benchmark's row must not be flagged.
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "GetLatency") && strings.Contains(line, "WARN") {
			t.Errorf("GetLatency improvement flagged WARN: %q", line)
		}
	}
}

// TestWorstRegression: report returns the worst regression percentage —
// what -max-regress-pct gates on. New and gone benchmarks never count.
func TestWorstRegression(t *testing.T) {
	parse := func(doc string) map[string]Result {
		dir := t.TempDir()
		path := filepath.Join(dir, "doc.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := load(path)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	prev := parse(prevJSON)
	cur := parse(curJSON)

	worst := report(io.Discard, prev, cur, 20)
	if worst < 49.9 || worst > 50.1 {
		t.Fatalf("worst regression = %.1f%%, want ~50%% (PowerOrder 1000 -> 1500)", worst)
	}
	// An all-improved run gates clean.
	if worst := report(io.Discard, cur, cur, 20); worst != 0 {
		t.Fatalf("identical runs report worst regression %.1f%%, want 0", worst)
	}
}

// TestMetricGate: -gate-metric fails on any growth of the named custom
// metric across matched benchmarks, ignores other metrics, and never
// counts new or vanished benchmarks.
func TestMetricGate(t *testing.T) {
	parse := func(doc string) map[string]Result {
		path := filepath.Join(t.TempDir(), "doc.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := load(path)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	prev := parse(`{"results": [
	  {"pkg": "cmd/mctop-bench", "name": "LoadOverall", "ns_per_op": 100, "metrics": {"errors": 0, "rps": 500}},
	  {"pkg": "cmd/mctop-bench", "name": "Load/v1/place", "ns_per_op": 50, "metrics": {"errors": 2}},
	  {"pkg": "cmd/mctop-bench", "name": "Gone", "ns_per_op": 1, "metrics": {"errors": 0}}
	]}`)
	cur := parse(`{"results": [
	  {"pkg": "cmd/mctop-bench", "name": "LoadOverall", "ns_per_op": 90, "metrics": {"errors": 3, "rps": 200}},
	  {"pkg": "cmd/mctop-bench", "name": "Load/v1/place", "ns_per_op": 60, "metrics": {"errors": 1}},
	  {"pkg": "cmd/mctop-bench", "name": "New", "ns_per_op": 1, "metrics": {"errors": 9}}
	]}`)

	got := metricRegressions(prev, cur, "errors")
	if len(got) != 1 {
		t.Fatalf("violations = %+v, want exactly LoadOverall (errors 0 -> 3)", got)
	}
	if got[0].key != "cmd/mctop-bench/LoadOverall" || got[0].prev != 0 || got[0].cur != 3 {
		t.Fatalf("violation = %+v, want LoadOverall 0 -> 3", got[0])
	}
	// rps fell but is not the gated metric; an absent metric is 0.
	if v := metricRegressions(prev, cur, "rps"); len(v) != 0 {
		t.Fatalf("rps fell yet gated: %+v", v)
	}
	if v := metricRegressions(prev, cur, "absent"); len(v) != 0 {
		t.Fatalf("absent metric gated: %+v", v)
	}
	// Identical runs gate clean.
	if v := metricRegressions(cur, cur, "errors"); len(v) != 0 {
		t.Fatalf("identical runs gated: %+v", v)
	}
}

func TestLoadRejectsBadJSON(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(bad); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
	if _, err := load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
