// Command benchdelta compares two BENCH_*.json files (the cmd/bench2json
// output CI archives) and prints a per-benchmark delta table — the
// regression report of the CI benchmark trajectory:
//
//	benchdelta [-warn-pct 20] [-max-regress-pct 0] previous.json current.json
//
// Benchmarks are matched by (pkg, name). By default the report only warns
// (exit code 0) — single-iteration CI benchmarks are too noisy to fail a
// build on; the table is for humans (and future tooling) reading the run.
// Setting -max-regress-pct to a positive threshold turns the report into a
// gate: the exit code is 1 when any benchmark regressed past it, so CI can
// flip the warning into a real regression gate by changing one flag once
// enough BENCH_ci.json history exists to pick a trustworthy threshold.
//
// -gate-metric gates a custom metric instead of latency: `-gate-metric
// errors` fails (exit 1) when any matched benchmark's "errors" metric grew
// over the previous run. Unlike ns/op, custom metrics gate on any increase
// — they are counters with a correct value (usually 0), not noisy timings.
//
// -baseline pins the comparison to a checked-in reference file instead of
// the rolling previous run:
//
//	benchdelta -baseline bench/baseline.json -max-regress-pct 30 current.json
//
// With -baseline only the current file is a positional argument; the
// previous-vs-current two-argument form is unchanged. A pinned baseline
// gates drift against a reviewed snapshot — a slow regression spread over
// many runs cannot hide inside per-run noise the way it can when each run
// is only compared with its immediate predecessor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// Result mirrors cmd/bench2json's per-benchmark record; fields the delta
// does not use are ignored by the decoder.
type Result struct {
	Pkg     string             `json:"pkg"`
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics"`
}

type document struct {
	Results []Result `json:"results"`
}

func main() {
	warnPct := flag.Float64("warn-pct", 20, "flag benchmarks slower than this percentage as WARN")
	maxRegressPct := flag.Float64("max-regress-pct", 0,
		"fail (exit 1) when any benchmark regresses more than this percentage (<= 0 disables the gate)")
	gateMetric := flag.String("gate-metric", "",
		"fail (exit 1) when any matched benchmark's named custom metric (e.g. errors) grew over the previous run (empty disables)")
	baseline := flag.String("baseline", "",
		"compare against this pinned baseline file instead of a previous-run argument; the single positional argument is then the current file")
	flag.Parse()
	prevPath, curPath := "", ""
	switch {
	case *baseline != "" && flag.NArg() == 1:
		prevPath, curPath = *baseline, flag.Arg(0)
	case *baseline == "" && flag.NArg() == 2:
		prevPath, curPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdelta [-warn-pct N] [-max-regress-pct N] [-gate-metric NAME] previous.json current.json")
		fmt.Fprintln(os.Stderr, "       benchdelta -baseline baseline.json [flags] current.json")
		os.Exit(2)
	}
	prev, err := load(prevPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %v\n", err)
		os.Exit(2)
	}
	worst := report(os.Stdout, prev, cur, *warnPct)
	fail := false
	if *maxRegressPct > 0 && worst > *maxRegressPct {
		fmt.Printf("\nFAIL: worst regression %+.1f%% exceeds -max-regress-pct %.0f%%\n", worst, *maxRegressPct)
		fail = true
	}
	if *gateMetric != "" {
		for _, v := range metricRegressions(prev, cur, *gateMetric) {
			fmt.Printf("\nFAIL: %s metric %q grew %g -> %g\n", v.key, *gateMetric, v.prev, v.cur)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}

// metricViolation is one benchmark whose gated custom metric grew.
type metricViolation struct {
	key       string
	prev, cur float64
}

// metricRegressions lists the matched benchmarks whose named custom metric
// grew over the previous run, sorted by key. An absent metric counts as 0
// on either side; benchmarks only one side has never count.
func metricRegressions(prev, cur map[string]Result, metric string) []metricViolation {
	var out []metricViolation
	for k, c := range cur {
		p, ok := prev[k]
		if !ok {
			continue
		}
		if cv, pv := c.Metrics[metric], p.Metrics[metric]; cv > pv {
			out = append(out, metricViolation{key: k, prev: pv, cur: cv})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]Result, len(doc.Results))
	for _, r := range doc.Results {
		out[r.Pkg+"/"+r.Name] = r
	}
	return out, nil
}

// report writes the delta table — matched benchmarks with their ns/op
// change, then benchmarks only one side has — and returns the worst
// regression percentage (0 when nothing regressed). Rows are sorted by key
// so two runs over the same data produce identical reports.
func report(w io.Writer, prev, cur map[string]Result, warnPct float64) (worst float64) {
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	warned := 0
	fmt.Fprintf(w, "%-72s %14s %14s %9s\n", "benchmark", "prev ns/op", "cur ns/op", "delta")
	for _, k := range keys {
		c := cur[k]
		p, ok := prev[k]
		if !ok || p.NsPerOp == 0 {
			fmt.Fprintf(w, "%-72s %14s %14.1f %9s\n", k, "-", c.NsPerOp, "new")
			continue
		}
		delta := (c.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
		if delta > worst {
			worst = delta
		}
		mark := ""
		if delta > warnPct {
			mark = "  WARN"
			warned++
		}
		fmt.Fprintf(w, "%-72s %14.1f %14.1f %+8.1f%%%s\n", k, p.NsPerOp, c.NsPerOp, delta, mark)
	}
	gone := make([]string, 0)
	for k := range prev {
		if _, ok := cur[k]; !ok {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		fmt.Fprintf(w, "%-72s %14.1f %14s %9s\n", k, prev[k].NsPerOp, "-", "gone")
	}
	if warned > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed more than %.0f%% (warning only; 1x CI iterations are noisy)\n", warned, warnPct)
	}
	return worst
}
