package main

// The `load` subcommand: flag parsing and rendering around
// internal/loadgen's closed loop. Exit status is the SLO verdict (0 pass,
// 1 fail), so a CI step can gate on it directly.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func loadMain(args []string) int {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	var (
		target   = fs.String("target", "http://127.0.0.1:8077", "mctopd base URL")
		workers  = fs.Int("workers", 4, "closed-loop workers (each has one request in flight)")
		duration = fs.Duration("duration", 10*time.Second, "run length")
		maxReqs  = fs.Int64("max-requests", 0, "stop after this many requests, if > 0 (whichever of this and -duration comes first)")
		warmup   = fs.Duration("warmup", 0, "discard observations made before this elapses")
		mixFlag  = fs.String("mix", "topology=1,place=1",
			"route mix weights: topology=N,place=N,mapdag=N,batch=N,stream=N")
		platforms = fs.String("platforms", "", "comma-separated platforms, gen: specs included (default: all five)")
		reps      = fs.Int("reps", 0, "inference repetitions sent with every request (0 = daemon default)")
		sampling  = fs.Bool("sampling", false, "send sampling=1 with every request (the sampled measurement mode, for large gen: platforms)")
		warmSeeds = fs.Int("warm-seeds", 2, "warm seed pool size (seeds 1..N repeat, so they cache-hit after first use)")
		cold      = fs.Float64("cold", 0, "fraction of requests with a never-repeated seed (forces a full-chain miss)")
		policies  = fs.String("policies", "", "comma-separated placement policies (default RR_CORE,RR_HWC)")
		batch     = fs.Int("batch", 8, "items per batch/stream request")
		threads   = fs.Int("max-threads", 16, "random per-request thread count upper bound")
		seed      = fs.Int64("seed", 1, "RNG seed for a reproducible request sequence")
		jsonOut   = fs.String("json", "", "also write the report as bench2json-shaped JSON to this file (for benchdelta)")
		chaos     = fs.Bool("chaos", false,
			"verify every 200 body against first-seen goldens and bound each request's duration: corrupt bytes or hangs fail the run (pair with a daemon started with -faults)")
		chaosTO = fs.Duration("chaos-timeout", 15*time.Second, "per-request hang budget in -chaos mode")
		traces  = fs.Bool("traces", false,
			"scrape the daemon's /v1/debug/traces after the run and report per-span latency attribution (needs mctopd -trace-sample > 0)")

		sloErr = fs.Float64("slo-max-error-rate", 0, "fail if errors/requests exceeds this (0 = unchecked)")
		sloRPS = fs.Float64("slo-min-rps", 0, "fail if overall throughput is below this (0 = unchecked)")
		sloP99 sloP99Flag
	)
	fs.Var(&sloP99, "slo-p99",
		"per-route p99 bound, route=duration (repeatable), e.g. /v1/place=50ms")
	fs.Parse(args)

	cfg := loadgen.Config{
		Target:       strings.TrimRight(*target, "/"),
		Workers:      *workers,
		Duration:     *duration,
		MaxRequests:  *maxReqs,
		Warmup:       *warmup,
		Reps:         *reps,
		Sampling:     *sampling,
		WarmSeeds:    *warmSeeds,
		ColdRatio:    *cold,
		BatchSize:    *batch,
		MaxThreads:   *threads,
		Seed:         *seed,
		Chaos:        *chaos,
		ChaosTimeout: *chaosTO,
		Traces:       *traces,
		SLO: loadgen.SLO{
			MaxErrorRate:  *sloErr,
			MinThroughput: *sloRPS,
			P99:           sloP99.bounds,
		},
	}
	var err error
	if cfg.Mix, err = parseMix(*mixFlag); err != nil {
		fmt.Fprintf(os.Stderr, "mctop-bench load: %v\n", err)
		return 2
	}
	if *platforms != "" {
		cfg.Platforms = splitList(*platforms)
	}
	if *policies != "" {
		cfg.Policies = splitList(*policies)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mctop-bench load: %v\n", err)
		return 2
	}
	fmt.Print(rep.String())
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err == nil {
			err = rep.WriteBenchJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mctop-bench load: writing %s: %v\n", *jsonOut, err)
			return 2
		}
	}
	if !rep.OK() {
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range splitList(s) {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad mix element %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch name {
		case "topology":
			m.Topology = w
		case "place":
			m.Place = w
		case "mapdag":
			m.MapDAG = w
		case "batch":
			m.Batch = w
		case "stream":
			m.Stream = w
		default:
			return m, fmt.Errorf("unknown mix route %q (topology, place, mapdag, batch, stream)", name)
		}
	}
	if m.Topology+m.Place+m.MapDAG+m.Batch+m.Stream == 0 {
		return m, fmt.Errorf("mix %q has no positive weight", s)
	}
	return m, nil
}

// sloP99Flag accumulates repeatable route=duration bounds.
type sloP99Flag struct {
	bounds map[string]time.Duration
}

func (f *sloP99Flag) String() string {
	var parts []string
	for r, d := range f.bounds {
		parts = append(parts, r+"="+d.String())
	}
	return strings.Join(parts, ",")
}

func (f *sloP99Flag) Set(s string) error {
	route, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want route=duration, e.g. /v1/place=50ms")
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return err
	}
	if f.bounds == nil {
		f.bounds = make(map[string]time.Duration)
	}
	f.bounds[route] = d
	return nil
}
