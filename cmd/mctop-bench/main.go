// Command mctop-bench is the repo's benchmark driver, with two modes:
//
//   - `mctop-bench figures` (also the default with no subcommand, for
//     compatibility) regenerates every table and figure of the MCTOP
//     paper's evaluation (Section 7) on the simulated platforms and
//     prints them as markdown — the source of EXPERIMENTS.md.
//   - `mctop-bench load` is a closed-loop load generator against a live
//     mctopd: N workers, a configurable route mix and warm/cold ratio,
//     per-route p50/p95/p99 and SLO pass/fail, with -json emitting the
//     bench2json document shape so cmd/benchdelta can diff runs.
//
// Usage:
//
//	mctop-bench                            # all figures
//	mctop-bench figures -only fig8         # one experiment: fig1to3, fig6,
//	                                       # sec35, fig7..fig12, ablations
//	mctop-bench load -target http://127.0.0.1:8077 -workers 8 -duration 30s \
//	    -mix topology=2,place=2,batch=1,stream=1 -cold 0.01 \
//	    -slo-p99 /v1/place=50ms -json load.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	mctop "repro"
	"repro/internal/contend"
	"repro/internal/locks"
	"repro/internal/machine"
	"repro/internal/mapreduce"
	"repro/internal/mctopalg"
	"repro/internal/msort"
	"repro/internal/omp"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/reduce"
	"repro/internal/sim"
	"repro/internal/topo"
)

var topoCache = map[string]*topo.Topology{}

func enriched(name string) *topo.Topology {
	if t, ok := topoCache[name]; ok {
		return t
	}
	t, err := mctop.InferPlatform(name, 42)
	fail(err)
	topoCache[name] = t
	return t
}

func main() {
	// Subcommand dispatch; a bare or flag-leading invocation stays the
	// legacy figures mode so existing scripts keep working.
	args := os.Args[1:]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "figures":
			args = args[1:]
		case "load":
			os.Exit(loadMain(args[1:]))
		default:
			fmt.Fprintf(os.Stderr, "mctop-bench: unknown subcommand %q (figures, load)\n", args[0])
			os.Exit(2)
		}
	}
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	only := fs.String("only", "", "run a single experiment")
	fs.Parse(args)
	run := func(name string, f func()) {
		if *only == "" || *only == name {
			f()
		}
	}
	run("fig1to3", figs1to3)
	run("fig6", fig6)
	run("sec35", sec35)
	run("fig7", fig7)
	run("fig8", fig8)
	run("fig9", fig9)
	run("fig10", fig10)
	run("fig11", fig11)
	run("fig12", fig12)
	run("ablations", ablations)
}

func header(s string) { fmt.Printf("\n## %s\n\n", s) }

// figs1to3: inferred topologies of the five platforms (Figures 1-3 show
// three of them as graphs).
func figs1to3() {
	header("Figures 1-3 — inferred topologies (all five platforms)")
	fmt.Println("| platform | ctx | cores | sockets | SMT | levels (median cycles) | local node of socket 0 | OS agrees? |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, name := range mctop.Platforms() {
		p, err := sim.ByName(name)
		fail(err)
		m, err := machine.NewSim(p, 42)
		fail(err)
		o := mctopalg.DefaultOptions()
		o.Reps = 201
		res, err := mctopalg.Infer(m, o)
		fail(err)
		t, err := plugins.Enrich(m, res.Topology, nil)
		fail(err)
		topoCache[name] = t
		var levels []string
		for _, c := range res.Clusters {
			levels = append(levels, fmt.Sprintf("%d", c.Median))
		}
		v := m.OSView()
		diffs := t.CompareOS(v.CoreOfCtx, v.SocketOfCtx, v.NodeOfSocket)
		agrees := "yes"
		if len(diffs) > 0 {
			agrees = "NO: " + diffs[0]
		}
		fmt.Printf("| %s | %d | %d | %d | %d | %s | %d | %s |\n",
			name, t.NumHWContexts(), t.NumCores(), t.NumSockets(), t.SMTWays(),
			strings.Join(levels, " / "), t.Socket(0).Local.ID, agrees)
	}
}

// fig6: the four algorithm steps on Ivy.
func fig6() {
	header("Figure 6 — MCTOP-ALG steps on Ivy")
	_, res, err := mctop.InferPlatformDetailed("Ivy", 42, mctop.Options{Reps: 201})
	fail(err)
	fmt.Printf("raw table: %dx%d, %d pairs measured, %d retries, rdtsc overhead %d cycles\n",
		len(res.RawTable), len(res.RawTable), res.Pairs, res.Retries, res.RdtscOverhead)
	fmt.Printf("sample raw latencies: [0][20]=%d (SMT), [0][1]=%d (intra), [0][10]=%d (cross)\n",
		res.RawTable[0][20], res.RawTable[0][1], res.RawTable[0][10])
	fmt.Println("\n| cluster | min | median | max | paper |")
	fmt.Println("|---|---|---|---|---|")
	paper := []string{"28 (SMT)", "~112 (intra-socket)", "~308 (cross-socket)"}
	for i, c := range res.Clusters {
		p := ""
		if i < len(paper) {
			p = paper[i]
		}
		fmt.Printf("| %d | %d | %d | %d | %s |\n", i+1, c.Min, c.Median, c.Max, p)
	}
	fmt.Printf("\nSMT detected: %v (ways=%d); grouping levels: %d cores of %d, %d sockets of %d contexts\n",
		res.SMT, res.SMTWays,
		len(res.LevelGroups[0]), len(res.LevelGroups[0][0]),
		len(res.LevelGroups[1]), len(res.LevelGroups[1][0]))
}

// sec35: inference cost with the paper's full n=2000.
func sec35() {
	header("Section 3.5 — inference cost (n=2000 repetitions)")
	fmt.Println("| platform | simulated seconds | paper |")
	fmt.Println("|---|---|---|")
	for _, row := range []struct{ name, paper string }{
		{"Ivy", "~3 s"},
		{"Westmere", "96 s"},
	} {
		p, err := sim.ByName(row.name)
		fail(err)
		m, err := machine.NewSim(p, 42)
		fail(err)
		res, err := mctopalg.Infer(m, mctopalg.DefaultOptions())
		fail(err)
		fmt.Printf("| %s | %.1f | %s |\n", row.name, m.S.SimulatedSeconds(res.Cycles), row.paper)
	}
}

// fig7: the placement report.
func fig7() {
	header("Figure 7 — MCTOP-PLACE output (Ivy, CON_HWC, 30 threads)")
	t := enriched("Ivy")
	pl, err := mctop.Place(t, "CON_HWC", 30)
	fail(err)
	fmt.Println("```")
	fmt.Print(pl.String())
	fmt.Println("```")
	fmt.Println("paper: 15 cores, 20/10 ctx per socket, BW 0.655/0.345, 66.7+43.4=110.1 W,")
	fmt.Println("111.9+88.7=200.6 W with DRAM, max latency 308 cycles, min bandwidth 24.28 GB/s")
}

// fig8: lock throughput with educated backoffs.
func fig8() {
	header("Figure 8 — educated lock backoffs (relative throughput, educated/baseline)")
	fmt.Println("| platform | algorithm | per-thread-count ratios | average |")
	fmt.Println("|---|---|---|---|")
	type agg struct {
		sum float64
		n   int
	}
	algAgg := map[locks.Algorithm]*agg{}
	for _, alg := range locks.Algorithms() {
		algAgg[alg] = &agg{}
	}
	for _, name := range mctop.Platforms() {
		p, err := sim.ByName(name)
		fail(err)
		t := enriched(name)
		quantum := t.MaxLatency()
		for _, alg := range locks.Algorithms() {
			var cells []string
			var sum float64
			var count int
			for n := 2; n <= p.NumContexts(); n *= 2 {
				threads := make([]int, n)
				for i := range threads {
					threads[i] = i
				}
				cfg := contend.Config{Platform: p, Threads: threads, Alg: alg,
					CSWork: 1000, PauseWork: 100, Horizon: 3_000_000}
				_, _, ratio, err := contend.RelativeThroughput(cfg, quantum)
				fail(err)
				cells = append(cells, fmt.Sprintf("%d:%.2f", n, ratio))
				sum += ratio
				count++
			}
			avg := sum / float64(count)
			algAgg[alg].sum += avg
			algAgg[alg].n++
			fmt.Printf("| %s | %s | %s | %.3f |\n", name, alg, strings.Join(cells, " "), avg)
		}
	}
	fmt.Println()
	for _, alg := range locks.Algorithms() {
		a := algAgg[alg]
		fmt.Printf("overall %s average: %.3f (paper: TAS +12%%, TTAS +11%%, TICKET +39%%)\n",
			alg, a.sum/float64(a.n))
	}
}

// fig9: the sort breakdown.
func fig9() {
	header("Figure 9 — sorting 1 GB of integers (modeled seconds, seq + merge)")
	fmt.Println("| platform | threads | gnu | mctop | mctop_sse | mctop vs gnu |")
	fmt.Println("|---|---|---|---|---|---|")
	var relSum float64
	var relN int
	for _, name := range mctop.Platforms() {
		t := enriched(name)
		for _, threads := range []int{16, t.NumHWContexts()} {
			rows := map[msort.Variant]msort.Fig9Row{}
			for _, v := range []msort.Variant{msort.VariantGNU, msort.VariantMCTOP, msort.VariantMCTOPSSE} {
				r, err := msort.ModelFig9(t, v, threads)
				fail(err)
				rows[v] = r
			}
			rel := rows[msort.VariantMCTOP].TotalSec() / rows[msort.VariantGNU].TotalSec()
			relSum += rel
			relN++
			fmt.Printf("| %s | %d | %.2f (%.2f+%.2f) | %.2f (%.2f+%.2f) | %.2f | %.2f |\n",
				name, threads,
				rows[msort.VariantGNU].TotalSec(), rows[msort.VariantGNU].SeqSec, rows[msort.VariantGNU].MergeSec,
				rows[msort.VariantMCTOP].TotalSec(), rows[msort.VariantMCTOP].SeqSec, rows[msort.VariantMCTOP].MergeSec,
				rows[msort.VariantMCTOPSSE].TotalSec(), rel)
		}
	}
	fmt.Printf("\naverage mctop/gnu = %.3f (paper: mctop_sort 17%% faster on average)\n", relSum/float64(relN))
}

// fig10: Metis with MCTOP-PLACE.
func fig10() {
	header("Figure 10 — Metis with MCTOP placement (relative time/energy vs stock Metis)")
	fmt.Println("| workload | platform | policy | threads (vs default) | rel time | rel energy |")
	fmt.Println("|---|---|---|---|---|---|")
	var sum float64
	var n int
	var eSum float64
	var eN int
	for _, name := range mctop.Platforms() {
		t := enriched(name)
		rows, err := mapreduce.ModelFig10(t)
		fail(err)
		for _, r := range rows {
			energy := "n/a"
			if r.RelEnergy > 0 {
				energy = fmt.Sprintf("%.3f", r.RelEnergy)
				eSum += r.RelEnergy
				eN++
			}
			fmt.Printf("| %s | %s | %v | %d (%d) | %.3f | %s |\n",
				r.Workload, r.Platform, r.Policy, r.Threads, r.DefaultThreads, r.RelTime, energy)
			sum += r.RelTime
			n++
		}
	}
	fmt.Printf("\naverage rel time = %.3f (paper: 0.83); average rel energy on Intel = %.3f (paper: 0.86)\n",
		sum/float64(n), eSum/float64(eN))
}

// fig11: energy-oriented placement.
func fig11() {
	header("Figure 11 — energy-oriented placement on Ivy (POWER vs performance)")
	t := enriched("Ivy")
	rows, err := mapreduce.ModelFig11(t)
	fail(err)
	fmt.Println("| workload | rel time | rel energy | energy efficiency | paper (time/energy/eff) |")
	fmt.Println("|---|---|---|---|---|")
	paper := map[mapreduce.WorkloadName]string{
		mapreduce.WLKMeans: "1.186 / 0.774 / 1.089",
		mapreduce.WLMean:   "1.045 / 0.915 / 1.046",
	}
	for _, r := range rows {
		fmt.Printf("| %s | %.3f | %.3f | %.3f | %s |\n",
			r.Workload, r.RelTime, r.RelEnergy, r.EnergyEfficiency, paper[r.Workload])
	}
}

// fig12: MCTOP MP vs OpenMP.
func fig12() {
	header("Figure 12 — MCTOP MP vs default OpenMP (graph workloads, x86 platforms)")
	fmt.Println("| workload | platform | chosen policy | threads | rel time |")
	fmt.Println("|---|---|---|---|---|")
	var sum float64
	var n int
	for _, name := range []string{"Ivy", "Opteron", "Haswell", "Westmere"} {
		t := enriched(name)
		rows, err := omp.ModelFig12(t)
		fail(err)
		for _, r := range rows {
			fmt.Printf("| %s | %s | %v | %d | %.3f |\n", r.Kernel, r.Platform, r.Chosen, r.Threads, r.RelTime)
			sum += r.RelTime
			n++
		}
	}
	fmt.Printf("\naverage rel time = %.3f (paper: ~0.78, i.e. 22%% faster)\n", sum/float64(n))
	ivy := enriched("Ivy")
	fixed, err := omp.BestFixed(ivy)
	fail(err)
	adaptive, err := omp.AdaptiveCombination(ivy)
	fail(err)
	fmt.Printf("Combination on Ivy: best fixed placement %.3g cycles vs adaptive re-binding %.3g (%.1f%% better)\n",
		float64(fixed), float64(adaptive), 100*(1-float64(adaptive)/float64(fixed)))
}

// ablations: the design-choice benchmarks of DESIGN.md.
func ablations() {
	header("Ablations")
	// Merge tree.
	t := enriched("Opteron")
	sockets := []int{0, 3, 5, 6, 1, 2, 7, 4}
	greedy, err := reduce.Tree(t, sockets, 0)
	fail(err)
	opt, err := reduce.OptimalTree(t, sockets, 0, 1<<27)
	fail(err)
	naive, err := reduce.NaiveTree(t, sockets, 0)
	fail(err)
	fmt.Printf("merge tree on Opteron (128 MB/socket): naive %.3g cycles, greedy (paper) %.3g, optimal %.3g\n",
		float64(reduce.Cost(t, naive, 1<<27)), float64(reduce.Cost(t, greedy, 1<<27)),
		float64(reduce.Cost(t, opt, 1<<27)))

	// Backoff quantum.
	ivy := enriched("Ivy")
	p, err := sim.ByName("Ivy")
	fail(err)
	threads := make([]int, 40)
	for i := range threads {
		threads[i] = i
	}
	educated := ivy.MaxLatency()
	fmt.Printf("ticket backoff quantum sweep (Ivy, 40 threads, acquisitions/Mcycle):")
	for _, mul := range []struct {
		label string
		q     int64
	}{{"0", 0}, {"x0.5", educated / 2}, {"x1 (educated)", educated}, {"x2", educated * 2}, {"x4", educated * 4}} {
		res, err := contend.Run(contend.Config{Platform: p, Threads: threads,
			Alg: locks.AlgTicket, Quantum: mul.q, CSWork: 1000, PauseWork: 100, Horizon: 3_000_000})
		fail(err)
		fmt.Printf("  %s=%.1f", mul.label, res.Throughput)
	}
	fmt.Println()

	// Placement policies overview on one big machine.
	wes := enriched("Westmere")
	fmt.Println("\nplacement policies on Westmere (64 threads): cores used / sockets used / max latency")
	for _, pol := range place.Policies() {
		pl, err := place.New(wes, pol, place.Options{NThreads: 64})
		if err != nil {
			fmt.Printf("  %-32v unavailable (%v)\n", pol, err)
			continue
		}
		fmt.Printf("  %-32v %3d cores, %d sockets, %4d cycles\n",
			pol, pl.NCores(), len(pl.SocketsUsed()), pl.MaxLatency())
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctop-bench:", err)
		os.Exit(1)
	}
}
