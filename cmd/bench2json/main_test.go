package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/topo
cpu: AMD EPYC
BenchmarkQueryIndex_GetLatency-8   	95212609	         3.771 ns/op
BenchmarkQueryIndex_MaxLatencyBetween64-8   	  459612	       819.8 ns/op	     120 B/op	       4 allocs/op
PASS
ok  	repro/internal/topo	2.376s
pkg: repro
BenchmarkFig6_AlgSteps-8	1	51803000 ns/op	        46.00 smt_cycles	       122.0 intra_cycles	       276.0 cross_cycles
BenchmarkOddNoProcs	100	12 ns/op
--- BENCH: some stray line
FAIL	repro/internal/broken	0.1s
`

func TestParse(t *testing.T) {
	out, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(out.Results), out.Results)
	}

	r := out.Results[0]
	if r.Pkg != "repro/internal/topo" || r.Name != "QueryIndex_GetLatency" || r.Procs != 8 {
		t.Errorf("result 0 identity wrong: %+v", r)
	}
	if r.Iters != 95212609 || r.NsPerOp != 3.771 {
		t.Errorf("result 0 values wrong: %+v", r)
	}

	r = out.Results[1]
	if r.BytesOp != 120 || r.AllocsOp != 4 {
		t.Errorf("result 1 mem stats wrong: %+v", r)
	}

	r = out.Results[2]
	if r.Pkg != "repro" || r.Name != "Fig6_AlgSteps" {
		t.Errorf("result 2 identity wrong: %+v", r)
	}
	if r.Metrics["smt_cycles"] != 46 || r.Metrics["intra_cycles"] != 122 || r.Metrics["cross_cycles"] != 276 {
		t.Errorf("result 2 metrics wrong: %+v", r.Metrics)
	}

	r = out.Results[3]
	if r.Name != "OddNoProcs" || r.Procs != 0 || r.Iters != 100 {
		t.Errorf("result 3 wrong: %+v", r)
	}
}

func TestParseEmpty(t *testing.T) {
	out, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil || len(out.Results) != 0 {
		t.Fatalf("(%v, %v)", out, err)
	}
	if out.Results == nil {
		t.Fatal("results must encode as [], not null")
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"Foo-8", "Foo", 8},
		{"Foo", "Foo", 0},
		{"Foo-bar", "Foo-bar", 0},
		{"Foo-bar-16", "Foo-bar", 16},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}
