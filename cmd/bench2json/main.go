// Command bench2json converts `go test -bench` text output into the
// BENCH_*.json format CI archives: one record per benchmark with its
// package, iteration count, ns/op and any custom metrics (the paper-figure
// values the benchmarks report, e.g. smt_cycles or min_bw_gbs). Reading
// from stdin and writing to stdout keeps it pipeline-shaped:
//
//	go test -bench . -benchtime=1x ./... | bench2json > BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed line.
type Result struct {
	Pkg      string             `json:"pkg,omitempty"`
	Name     string             `json:"name"`
	Procs    int                `json:"procs,omitempty"`
	Iters    int64              `json:"iterations"`
	NsPerOp  float64            `json:"ns_per_op,omitempty"`
	BytesOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsOp float64            `json:"allocs_per_op,omitempty"`
	MBPerSec float64            `json:"mb_per_sec,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole document.
type Output struct {
	Results []Result `json:"results"`
}

func main() {
	out, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
}

// parse scans go-test output. Package clauses ("pkg: repro/internal/topo")
// attribute the benchmarks that follow; anything that is not a benchmark
// line is ignored, so the tool accepts the raw `go test ./...` stream.
func parse(r io.Reader) (*Output, error) {
	out := &Output{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... [no test files]" noise
		}
		res := Result{Pkg: pkg, Iters: iters, Metrics: map[string]float64{}}
		res.Name, res.Procs = splitProcs(strings.TrimPrefix(fields[0], "Benchmark"))
		// The remainder is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesOp = v
			case "allocs/op":
				res.AllocsOp = v
			case "MB/s":
				res.MBPerSec = v
			default:
				res.Metrics[fields[i+1]] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out.Results = append(out.Results, res)
	}
	return out, sc.Err()
}

// splitProcs separates the -N GOMAXPROCS suffix go test appends to
// benchmark names ("QueryIndex_GetLatency-8").
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}
