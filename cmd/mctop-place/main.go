// Command mctop-place computes MCTOP-PLACE thread placements and prints the
// report of the paper's Figure 7.
//
// Usage:
//
//	mctop-place -platform Ivy -policy CON_HWC -threads 30
//	mctop-place -load ivy.mct -policy RR_CORE -threads 16
//	mctop-place -platform Opteron -all
package main

import (
	"flag"
	"fmt"
	"os"

	mctop "repro"
	"repro/internal/place"
)

func main() {
	var (
		platform = flag.String("platform", "Ivy", "simulated platform to infer")
		seed     = flag.Uint64("seed", 42, "simulator noise seed")
		load     = flag.String("load", "", "load a description file instead of inferring")
		policy   = flag.String("policy", "CON_HWC", "placement policy (see -all for the list)")
		threads  = flag.Int("threads", 0, "threads to place (0 = as many as the policy allows)")
		sockets  = flag.Int("sockets", 0, "sockets to use (0 = all)")
		all      = flag.Bool("all", false, "print every policy's placement")
	)
	flag.Parse()

	var top *mctop.Topology
	var err error
	if *load != "" {
		top, err = mctop.Load(*load)
	} else {
		top, err = mctop.InferPlatform(*platform, *seed)
	}
	fail(err)

	if *all {
		for _, pol := range place.Policies() {
			pl, err := place.New(top, pol, place.Options{NThreads: *threads, NSockets: *sockets})
			if err != nil {
				fmt.Printf("## %v: %v\n\n", pol, err)
				continue
			}
			fmt.Print(pl.String())
			fmt.Println()
		}
		return
	}

	pol, err := place.ParsePolicy(*policy)
	fail(err)
	pl, err := place.New(top, pol, place.Options{NThreads: *threads, NSockets: *sockets})
	fail(err)
	fmt.Print(pl.String())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctop-place:", err)
		os.Exit(1)
	}
}
