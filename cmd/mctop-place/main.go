// Command mctop-place computes MCTOP-PLACE thread placements and prints the
// report of the paper's Figure 7. It is a thin shell around the client
// API's Alloc: infer (or load) a topology, resolve or compose a policy,
// build the allocator, print its report.
//
// Usage:
//
//	mctop-place -platform Ivy -policy CON_HWC -threads 30
//	mctop-place -load ivy.mct -policy RR_CORE -threads 16
//	mctop-place -platform Ivy -policy RR_CORE -on-sockets 0 -limit 8
//	mctop-place -platform Opteron -all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	mctop "repro"
	"repro/internal/place"
)

func main() {
	var (
		platform  = flag.String("platform", "Ivy", "simulated platform to infer")
		seed      = flag.Uint64("seed", 42, "simulator noise seed")
		load      = flag.String("load", "", "load a description file instead of inferring")
		policy    = flag.String("policy", "CON_HWC", "placement policy (see -all for the list)")
		threads   = flag.Int("threads", 0, "threads to place (0 = as many as the policy allows)")
		sockets   = flag.Int("sockets", 0, "sockets to use (0 = all)")
		onSockets = flag.String("on-sockets", "", "comma-separated socket ids to restrict the policy to")
		limit     = flag.Int("limit", 0, "cap the placement at this many slots (0 = no cap)")
		reverse   = flag.Bool("reverse", false, "invert the policy's order (least-preferred contexts first)")
		all       = flag.Bool("all", false, "print every builtin policy's placement")
	)
	flag.Parse()
	ctx := context.Background()

	var top *mctop.Topology
	var err error
	if *load != "" {
		top, err = mctop.Load(*load)
	} else {
		top, err = mctop.Infer(ctx, *platform, *seed)
	}
	fail(err)

	opts := []mctop.PlaceOption{mctop.WithThreads(*threads), mctop.WithSockets(*sockets)}
	if *all {
		for _, pol := range place.Policies() {
			alloc, err := mctop.NewAlloc(top, pol, opts...)
			if err != nil {
				fmt.Printf("## %v: %v\n\n", pol, err)
				continue
			}
			fmt.Print(alloc.Report())
			fmt.Println()
		}
		return
	}

	pol, err := mctop.ResolvePolicy(*policy)
	fail(err)
	composed, err := compose(pol, *onSockets, *limit, *reverse)
	fail(err)
	alloc, err := mctop.NewAlloc(top, composed, opts...)
	fail(err)
	fmt.Print(alloc.Report())
}

// compose applies the combinator flags to the base policy. Reverse wraps
// before Limit so -reverse -limit N yields the N least-preferred contexts
// (matching the library's Reverse + NThreads semantics), not the N
// most-preferred ones reversed.
func compose(pol mctop.Policy, onSockets string, limit int, reverse bool) (mctop.Policy, error) {
	if onSockets != "" {
		var ids []int
		for _, part := range strings.Split(onSockets, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad -on-sockets %q: %v", onSockets, err)
			}
			ids = append(ids, id)
		}
		pol = mctop.OnSockets(pol, ids...)
	}
	if reverse {
		pol = mctop.Reverse(pol)
	}
	if limit > 0 {
		pol = mctop.Limit(pol, limit)
	}
	return pol, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctop-place:", err)
		os.Exit(1)
	}
}
