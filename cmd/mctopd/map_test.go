package main

// Tests for POST /v1/map: single and batch mapping answers, the
// memoization contract (a repeated DAG is a cache hit — zero extra
// mapping computes on /v1/stats), the error statuses, and the /v1/export
// branch that serves warm mappings as .map sidecar bytes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	mctop "repro"
	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/spool"
)

// mapTestDAG is a small diamond: 0 fans out to 1 and 2, which join at 3.
// Comm volumes are large enough that the mapper's answer is not trivially
// "anywhere".
func mapTestDAG() *mctop.TaskDAG {
	return &mctop.TaskDAG{
		Name: "diamond",
		Nodes: []graph.TaskNode{
			{ID: 0, Work: 1000}, {ID: 1, Work: 4000},
			{ID: 2, Work: 4000}, {ID: 3, Work: 1000},
		},
		Edges: []graph.TaskEdge{
			{From: 0, To: 1, Volume: 1 << 16},
			{From: 0, To: 2, Volume: 1 << 16},
			{From: 1, To: 3, Volume: 1 << 16},
			{From: 2, To: 3, Volume: 1 << 16},
		},
	}
}

func postMap(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func mapBody(t *testing.T, req mapRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func mappingsComputed(t *testing.T, ts *httptest.Server) int64 {
	t.Helper()
	_, body := get(t, ts, "/v1/stats")
	var st struct{ Mappings int64 }
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st.Mappings
}

func TestMapSingleAndWarmCache(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	d := mapTestDAG()
	body := mapBody(t, mapRequest{Platform: "Ivy", Refine: 200, DAG: d})
	resp, raw := postMap(t, ts, body)
	if resp.StatusCode != 200 {
		t.Fatalf("map: %d %s", resp.StatusCode, raw)
	}
	var mr mapResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Platform != "Ivy" || mr.Seed != 42 || mr.Result == nil {
		t.Fatalf("response = %+v", mr)
	}
	res := mr.Result
	if res.DAG != "diamond" || res.Nodes != 4 || res.Edges != 4 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Assignment) != 4 || res.CostCycles <= 0 || res.Algo == "" {
		t.Fatalf("result = %+v", res)
	}
	if res.DAGHash != fmt.Sprintf("%016x", d.Hash()) {
		t.Fatalf("dag_hash = %q, want the canonical hash of the posted DAG", res.DAGHash)
	}

	if got := mappingsComputed(t, ts); got != 1 {
		t.Fatalf("after first map: %d computes, want 1", got)
	}

	// The same DAG under a different name must be a cache hit: the key
	// carries the canonical hash, not the name.
	renamed := mapTestDAG()
	renamed.Name = "diamond-again"
	resp2, raw2 := postMap(t, ts, mapBody(t, mapRequest{Platform: "Ivy", Refine: 200, DAG: renamed}))
	if resp2.StatusCode != 200 {
		t.Fatalf("second map: %d %s", resp2.StatusCode, raw2)
	}
	var mr2 mapResponse
	if err := json.Unmarshal(raw2, &mr2); err != nil {
		t.Fatal(err)
	}
	if mr2.Result.CostCycles != res.CostCycles {
		t.Fatalf("warm cost %d != cold cost %d", mr2.Result.CostCycles, res.CostCycles)
	}
	if fmt.Sprint(mr2.Result.Assignment) != fmt.Sprint(res.Assignment) {
		t.Fatalf("warm assignment %v != cold %v", mr2.Result.Assignment, res.Assignment)
	}
	if got := mappingsComputed(t, ts); got != 1 {
		t.Fatalf("warm request recomputed: %d computes, want 1", got)
	}
}

func TestMapBatchInlineErrors(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	good := mapTestDAG()
	// Edge references a node that does not exist: structurally invalid,
	// rejected by the mapper, reported inline without failing the batch.
	bad := &mctop.TaskDAG{
		Name:  "dangling",
		Nodes: []graph.TaskNode{{ID: 0, Work: 100}},
		Edges: []graph.TaskEdge{{From: 0, To: 7, Volume: 64}},
	}
	resp, raw := postMap(t, ts, mapBody(t, mapRequest{Platform: "Ivy", DAGs: []*mctop.TaskDAG{good, bad}}))
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}
	var mr mapResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(mr.Results))
	}
	if mr.Results[0].Error != "" || len(mr.Results[0].Assignment) != 4 {
		t.Fatalf("good item = %+v", mr.Results[0])
	}
	if mr.Results[1].Error == "" || mr.Results[1].DAG != "dangling" {
		t.Fatalf("bad item = %+v", mr.Results[1])
	}
}

func TestMapErrorStatuses(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	okDAG := `{"nodes":[{"id":0,"work":100}]}`
	bigNodes := make([]string, maxMapNodes+1)
	for i := range bigNodes {
		bigNodes[i] = fmt.Sprintf(`{"id":%d,"work":1}`, i)
	}
	bigDAGs := make([]string, maxMapDAGs+1)
	for i := range bigDAGs {
		bigDAGs[i] = okDAG
	}

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"bad json", `{`, 400},
		{"unknown field", `{"platform":"Ivy","dag":` + okDAG + `,"bogus":1}`, 400},
		{"unknown platform", `{"platform":"VAX","dag":` + okDAG + `}`, 404},
		{"neither dag nor dags", `{"platform":"Ivy"}`, 400},
		{"both dag and dags", `{"platform":"Ivy","dag":` + okDAG + `,"dags":[` + okDAG + `]}`, 400},
		{"negative refine", `{"platform":"Ivy","refine":-1,"dag":` + okDAG + `}`, 400},
		{"oversized refine", fmt.Sprintf(`{"platform":"Ivy","refine":%d,"dag":%s}`, maxMapRefine+1, okDAG), 400},
		{"cyclic dag", `{"platform":"Ivy","dag":{"nodes":[{"id":0,"work":1},{"id":1,"work":1}],` +
			`"edges":[{"from":0,"to":1,"volume":64},{"from":1,"to":0,"volume":64}]}}`, 400},
		{"too many nodes", `{"platform":"Ivy","dag":{"nodes":[` + strings.Join(bigNodes, ",") + `]}}`, 413},
		{"too many dags", `{"platform":"Ivy","dags":[` + strings.Join(bigDAGs, ",") + `]}`, 413},
	}
	for _, c := range cases {
		resp, body := postMap(t, ts, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.status)
		}
	}

	resp, _ := get(t, ts, "/v1/map")
	if resp.StatusCode != 405 {
		t.Fatalf("GET /v1/map = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}

func TestExportMappingSidecar(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	d := mapTestDAG()
	opt := mctop.NewOptions(mctop.WithReps(51))
	key := registry.MapKey("Ivy", 42, opt, d, 200)

	// Cold: a mapping key names a DAG only by hash, so the origin cannot
	// recompute it from the key — an honest 404, not a silent compute.
	resp, _ := get(t, ts, exportPath(key))
	if resp.StatusCode != 404 {
		t.Fatalf("cold mapping export = %d, want 404", resp.StatusCode)
	}

	// Malformed mapping keys are a 400: they could never name an entry.
	resp, _ = get(t, ts, exportPath("map|topo|Ivy|42|r51|deadbeef"))
	if resp.StatusCode != 400 {
		t.Fatalf("malformed mapping export = %d, want 400", resp.StatusCode)
	}

	// Warm the cache through the public endpoint, then export.
	if r, raw := postMap(t, ts, mapBody(t, mapRequest{Platform: "Ivy", Refine: 200, DAG: d})); r.StatusCode != 200 {
		t.Fatalf("map: %d %s", r.StatusCode, raw)
	}
	resp, body := get(t, ts, exportPath(key))
	if resp.StatusCode != 200 {
		t.Fatalf("warm mapping export = %d %s", resp.StatusCode, body)
	}
	side, err := spool.DecodeMapSidecar(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exported mapping sidecar does not decode: %v", err)
	}
	if side.Key != key || side.DAGHash != d.Hash() || side.Nodes != 4 {
		t.Fatalf("sidecar = %+v", side)
	}
	if len(side.Assign) != 4 || side.Cost <= 0 {
		t.Fatalf("sidecar = %+v", side)
	}
}
