package main

// BenchmarkQueryIndex_BatchPlace vs BenchmarkQueryIndex_SinglePlaces: the
// same 12-policy placement sweep served by one POST /v1/place/batch versus
// twelve GET /v1/place round trips. Both run against a warm registry, so
// the difference is pure per-request overhead (HTTP round trips, parsing,
// key assembly) — the batch endpoint's reason to exist.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	mctop "repro"
)

// benchSweep is the 12-policy sweep (POWER included: Ivy has power data).
var benchSweep = func() []string {
	names := mctop.PolicyNames()
	out := make([]string, len(names))
	copy(out, names)
	return out
}()

func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	ts := httptest.NewServer(testServer().routes())
	// Warm the topology so neither benchmark times the one-off inference.
	resp, err := http.Get(ts.URL + "/v1/topology?platform=Ivy&seed=42&reps=51")
	if err != nil || resp.StatusCode != 200 {
		b.Fatalf("warmup failed: %v %v", err, resp)
	}
	resp.Body.Close()
	return ts
}

func BenchmarkQueryIndex_SinglePlaces(b *testing.B) {
	ts := benchServer(b)
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t, pol := range benchSweep {
			resp, err := http.Get(ts.URL + "/v1/place?platform=Ivy&seed=42&reps=51&policy=" + pol +
				"&threads=" + string(rune('1'+t%8)))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("policy %s: status %d", pol, resp.StatusCode)
			}
		}
	}
}

func BenchmarkQueryIndex_BatchPlace(b *testing.B) {
	ts := benchServer(b)
	defer ts.Close()
	var sb strings.Builder
	sb.WriteString(`{"platform": "Ivy", "seed": 42, "reps": 51, "requests": [`)
	for t, pol := range benchSweep {
		if t > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"policy": "` + pol + `", "threads": ` + string(rune('1'+t%8)) + `}`)
	}
	sb.WriteString(`]}`)
	body := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/place/batch", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
