// The task-graph mapping endpoint: POST /v1/map takes a DAG (or a batch
// of DAGs) plus the usual platform/seed/reps parameters and answers with a
// topology-aware task → hardware-context assignment and its estimated
// completion time, computed by internal/taskmap over the memoized topology
// and memoized itself (the registry's third cached kind — a repeated DAG
// is a cache hit whatever it is called, because the cache key carries the
// DAG's canonical hash, not its name).
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	mctop "repro"
	"repro/internal/mctoperr"
)

const (
	// maxMapNodes / maxMapEdges bound one DAG: Estimate is O(nodes +
	// edges) per refinement probe, so an unbounded DAG times an unbounded
	// refine budget is an unbounded amount of work behind one response
	// deadline.
	maxMapNodes = 512
	maxMapEdges = 8192
	// maxMapDAGs bounds one batch, like maxBatchRequests bounds placements.
	maxMapDAGs = 64
	// maxMapRefine bounds the refinement budget a request can demand
	// (cost-model evaluations, each O(nodes + edges)).
	maxMapRefine = 100000
)

// mapRequest is the POST /v1/map body. Exactly one of DAG (single) or
// DAGs (batch) must be set. Seed is a pointer so an absent field gets the
// same default (42) the GET endpoints use.
type mapRequest struct {
	Platform string           `json:"platform"`
	Seed     *uint64          `json:"seed"`
	Reps     int              `json:"reps,omitempty"`
	Refine   int              `json:"refine,omitempty"`
	DAG      *mctop.TaskDAG   `json:"dag,omitempty"`
	DAGs     []*mctop.TaskDAG `json:"dags,omitempty"`
}

// mapItemResponse is one mapping answer: the assignment and its cost, or
// an inline error (batch items fail individually, like place/batch items).
type mapItemResponse struct {
	DAG        string `json:"dag,omitempty"`
	Error      string `json:"error,omitempty"`
	DAGHash    string `json:"dag_hash,omitempty"`
	Nodes      int    `json:"nodes,omitempty"`
	Edges      int    `json:"edges,omitempty"`
	Algo       string `json:"algo,omitempty"`
	CostCycles int64  `json:"cost_cycles,omitempty"`
	Assignment []int  `json:"assignment,omitempty"`
}

type mapResponse struct {
	Platform string            `json:"platform"`
	Seed     uint64            `json:"seed"`
	Refine   int               `json:"refine"`
	Result   *mapItemResponse  `json:"result,omitempty"`  // single
	Results  []mapItemResponse `json:"results,omitempty"` // batch
	ServedIn string            `json:"served_in"`
}

// validateMapDAG applies the daemon's size bounds before the registry sees
// the DAG; structural validity (dense IDs, acyclicity, ...) is the
// registry's job and reports ErrInvalidRequest itself.
func validateMapDAG(d *mctop.TaskDAG) error {
	if d == nil {
		return fmt.Errorf("%w: missing dag", mctoperr.ErrInvalidRequest)
	}
	if len(d.Nodes) > maxMapNodes {
		return fmt.Errorf("%w: DAG of %d nodes exceeds the limit of %d", mctoperr.ErrTooLarge, len(d.Nodes), maxMapNodes)
	}
	if len(d.Edges) > maxMapEdges {
		return fmt.Errorf("%w: DAG of %d edges exceeds the limit of %d", mctoperr.ErrTooLarge, len(d.Edges), maxMapEdges)
	}
	return nil
}

func mapItem(d *mctop.TaskDAG, m *mctop.Mapping, err error) mapItemResponse {
	item := mapItemResponse{}
	if d != nil {
		item.DAG = d.Name
	}
	if err != nil {
		item.Error = err.Error()
		return item
	}
	item.DAGHash = fmt.Sprintf("%016x", m.DAGHash())
	item.Nodes = m.NumNodes()
	item.Edges = m.NumEdges()
	item.Algo = m.Algo()
	item.CostCycles = m.Cost()
	item.Assignment = m.Assignment()
	return item
}

func (s *server) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("mapping is POST-only"))
		return
	}
	var req mapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErrStatus(w, fmt.Errorf("%w: map body over %d bytes", mctoperr.ErrTooLarge, tooBig.Limit))
			return
		}
		writeErrStatus(w, fmt.Errorf("%w: bad map body: %v", mctoperr.ErrInvalidRequest, err))
		return
	}
	if err := s.validatePlatform(req.Platform); err != nil {
		writeErrStatus(w, err)
		return
	}
	var opt mctop.Options
	opt.Reps = s.defaultReps
	if req.Reps != 0 {
		if err := validateReps(req.Reps); err != nil {
			writeErrStatus(w, err)
			return
		}
		opt.Reps = req.Reps
	}
	if req.Refine < 0 || req.Refine > maxMapRefine {
		writeErrStatus(w, fmt.Errorf("%w: bad refine %d (want 0..%d)", mctoperr.ErrInvalidRequest, req.Refine, maxMapRefine))
		return
	}
	if (req.DAG == nil) == (len(req.DAGs) == 0) {
		writeErrStatus(w, fmt.Errorf("%w: provide exactly one of \"dag\" or \"dags\"", mctoperr.ErrInvalidRequest))
		return
	}
	if len(req.DAGs) > maxMapDAGs {
		writeErrStatus(w, fmt.Errorf("%w: batch of %d DAGs exceeds the limit of %d", mctoperr.ErrTooLarge, len(req.DAGs), maxMapDAGs))
		return
	}
	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}

	start := time.Now()
	resp := mapResponse{Platform: req.Platform, Seed: seed, Refine: req.Refine}
	if req.DAG != nil {
		// Single: failures carry a status, like /v1/place.
		if err := validateMapDAG(req.DAG); err != nil {
			writeErrStatus(w, err)
			return
		}
		m, err := s.reg.MapDAGContext(r.Context(), req.Platform, seed, opt, req.DAG, req.Refine)
		if err != nil {
			writeErrStatus(w, err)
			return
		}
		item := mapItem(req.DAG, m, nil)
		resp.Result = &item
	} else {
		// Batch: per-DAG failures are inline, the batch itself succeeds.
		resp.Results = make([]mapItemResponse, len(req.DAGs))
		for i, d := range req.DAGs {
			if r.Context().Err() != nil {
				writeErrStatus(w, r.Context().Err())
				return
			}
			err := validateMapDAG(d)
			var m *mctop.Mapping
			if err == nil {
				m, err = s.reg.MapDAGContext(r.Context(), req.Platform, seed, opt, d, req.Refine)
			}
			resp.Results[i] = mapItem(d, m, err)
		}
	}
	resp.ServedIn = time.Since(start).String()
	writeJSON(w, http.StatusOK, resp)
}
