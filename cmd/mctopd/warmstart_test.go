package main

// Warm-start integration test: a daemon with a spool dir is exercised
// across all five golden platforms, "restarted" (a second server over a
// fresh registry and the same spool dir — exactly what a new process
// sees), and must answer every topology and placement byte-identically
// while performing zero inferences.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"

	mctop "repro"
)

// spoolServer builds a server whose registry chains the LRU over a spool
// in dir — the -spool-dir wiring of main().
func spoolServer(t *testing.T, dir string) (*server, *mctop.Registry) {
	t.Helper()
	sp, err := mctop.OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := mctop.NewRegistry(0, mctop.WithStore(
		mctop.NewTieredStore(mctop.NewLRUStore(256, 0), sp)))
	t.Cleanup(func() { reg.Close() })
	return newServerWith(reg, 51, 4*runtime.GOMAXPROCS(0)), reg
}

// normalizePlace strips the timing field from a place response so two runs
// compare on content (context assignment, report, derived metrics).
func normalizePlace(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad place response %q: %v", body, err)
	}
	delete(m, "served_in")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestWarmStartServesSpoolWithZeroInferences(t *testing.T) {
	dir := t.TempDir()
	platforms := mctop.Platforms()
	if len(platforms) != 5 {
		t.Fatalf("expected the five golden platforms, got %v", platforms)
	}
	policies := []string{"RR_CORE", "CON_HWC"}

	topoURL := func(p string) string {
		return fmt.Sprintf("/v1/topology?platform=%s&seed=42&format=mctop", p)
	}
	placeURL := func(p, pol string) string {
		return fmt.Sprintf("/v1/place?platform=%s&seed=42&policy=%s&threads=8", p, pol)
	}

	// Process 1: infer everything, then shut down gracefully (Close
	// flushes the spool, as main() does on SIGTERM).
	topoBytes := map[string][]byte{}
	placeBytes := map[string]string{}
	func() {
		s, reg := spoolServer(t, dir)
		ts := httptest.NewServer(s.routes())
		defer ts.Close()
		for _, p := range platforms {
			resp, body := get(t, ts, topoURL(p))
			if resp.StatusCode != 200 {
				t.Fatalf("%s: %d %s", p, resp.StatusCode, body)
			}
			topoBytes[p] = body
			for _, pol := range policies {
				resp, body := get(t, ts, placeURL(p, pol))
				if resp.StatusCode != 200 {
					t.Fatalf("%s/%s: %d %s", p, pol, resp.StatusCode, body)
				}
				placeBytes[p+"/"+pol] = normalizePlace(t, body)
			}
		}
		if st := reg.Stats(); st.Inferences != int64(len(platforms)) {
			t.Fatalf("inferring run: %d inferences for %d platforms", st.Inferences, len(platforms))
		}
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	// Process 2: a fresh registry over the same spool dir.
	s2, reg2 := spoolServer(t, dir)
	ts2 := httptest.NewServer(s2.routes())
	defer ts2.Close()
	for _, p := range platforms {
		// Placements first: they must warm-start on their own (decoding
		// the topology they reference), not ride a prior topology request.
		for _, pol := range policies {
			resp, body := get(t, ts2, placeURL(p, pol))
			if resp.StatusCode != 200 {
				t.Fatalf("warm %s/%s: %d %s", p, pol, resp.StatusCode, body)
			}
			if got := normalizePlace(t, body); got != placeBytes[p+"/"+pol] {
				t.Fatalf("warm %s/%s placement differs:\n%s\nvs\n%s", p, pol, got, placeBytes[p+"/"+pol])
			}
		}
		resp, body := get(t, ts2, topoURL(p))
		if resp.StatusCode != 200 {
			t.Fatalf("warm %s: %d %s", p, resp.StatusCode, body)
		}
		if !bytes.Equal(body, topoBytes[p]) {
			t.Fatalf("warm %s description differs from the inferring run's", p)
		}
	}

	// The acceptance bar: the restarted daemon served everything with
	// zero inferences (and zero placement recomputes).
	st := reg2.Stats()
	if st.Inferences != 0 {
		t.Fatalf("warm start ran %d inferences, want 0 (stats: %+v)", st.Inferences, st)
	}
	if st.Placements != 0 {
		t.Fatalf("warm start recomputed %d placements, want 0", st.Placements)
	}
	if st.Hits == 0 {
		t.Fatalf("warm start reported no cache hits: %+v", st)
	}

	// /v1/stats exposes the per-tier breakdown, spool hits included.
	resp, body := get(t, ts2, "/v1/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var stats struct {
		Inferences int64
		Tiers      []struct {
			Tier string
			Hits int64
		}
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Inferences != 0 {
		t.Fatalf("/v1/stats shows %d inferences on the warm daemon", stats.Inferences)
	}
	if len(stats.Tiers) != 2 || stats.Tiers[1].Tier != "spool" || stats.Tiers[1].Hits == 0 {
		t.Fatalf("/v1/stats tiers = %+v, want a spool tier with hits", stats.Tiers)
	}
}
