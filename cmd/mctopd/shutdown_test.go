package main

// Graceful shutdown under fire: a real SIGTERM lands while an NDJSON
// streaming placement is mid-flight. The contract: the in-flight stream
// runs to completion (Shutdown drains, it does not cut connections), run
// returns cleanly, and the spool holds the flushed entries so the next
// start warm-starts.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestSIGTERMDrainsStreamAndFlushesSpool(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a full daemon lifecycle")
	}
	spoolDir := t.TempDir()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	cfg := daemonConfig{
		addr:        "127.0.0.1:0",
		cache:       64,
		reps:        51,
		spoolDir:    spoolDir,
		maxInflight: 16,
	}
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, func(addr string) { addrCh <- addr }) }()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// A long batch: enough lines that the SIGTERM below lands with most of
	// the stream still unwritten.
	const items = 200
	var reqs []string
	for i := 0; i < items; i++ {
		reqs = append(reqs, fmt.Sprintf(`{"policy":"RR_CORE","threads":%d}`, 1+i%16))
	}
	body := fmt.Sprintf(`{"platform":"Ivy","seed":7,"requests":[%s]}`, strings.Join(reqs, ","))
	resp, err := http.Post(base+"/v1/place/batch?stream=1", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	// First line in hand — the stream is mid-flight. Terminate the daemon.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first stream line: %v", sc.Err())
	}
	lines := 1
	checkLine := func(line []byte) {
		var item struct {
			Policy string `json:"policy"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(line, &item); err != nil {
			t.Fatalf("line %d undecodable: %v\n%s", lines, err, line)
		}
		if item.Error != "" {
			t.Fatalf("line %d carries an error: %s", lines, item.Error)
		}
	}
	checkLine(sc.Bytes())
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The rest of the stream must arrive intact: Shutdown stops the
	// listener but drains in-flight requests.
	for sc.Scan() {
		lines++
		checkLine(sc.Bytes())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broken after %d lines: %v", lines, err)
	}
	if lines != items {
		t.Fatalf("stream truncated: %d of %d lines", lines, items)
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run never returned after SIGTERM")
	}

	// The drain flushed the spool: the topology (and sidecars) the stream
	// touched are durable.
	mctops, err := filepath.Glob(filepath.Join(spoolDir, "*.mctop"))
	if err != nil {
		t.Fatal(err)
	}
	if len(mctops) == 0 {
		t.Fatal("spool holds no description files after graceful shutdown")
	}
}
