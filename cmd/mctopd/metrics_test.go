package main

// GET /metrics contract tests: the exposition is format-valid under
// internal/metrics.ParseText (every line parses, HELP/TYPE precede
// samples, histogram buckets are cumulative with +Inf == _count), and a
// scripted request sequence — cache miss, cache hit, 404, shed 503 —
// moves exactly the counters it should. A parallel-request test gives the
// race detector a workload over the middleware (this package is in CI's
// -race step).

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mctopalg"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/topo"
)

// scrapeMetrics fetches /metrics and parses it strictly.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	samples, err := metrics.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[s.Key()] = s.Value
	}
	return m
}

func wantSample(t *testing.T, m map[string]float64, key string, want float64) {
	t.Helper()
	if got, ok := m[key]; !ok {
		t.Errorf("sample %s missing", key)
	} else if got != want {
		t.Errorf("%s = %g, want %g", key, got, want)
	}
}

// TestMetricsExpositionValid: a server that has seen traffic serves a
// parseable exposition carrying every family the Operations docs promise.
func TestMetricsExpositionValid(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()
	get(t, ts, "/v1/topology?platform=Ivy&seed=42&reps=51")
	get(t, ts, "/v1/place?platform=Ivy&seed=42&reps=51&policy=RR_CORE&threads=8")
	get(t, ts, "/v1/nope") // unknown routes fold into route="other"

	m := scrapeMetrics(t, ts)
	for _, name := range []string{
		`mctopd_http_requests_total{code="200",method="GET",route="/v1/topology"}`,
		`mctopd_http_requests_total{code="404",method="GET",route="other"}`,
		`mctopd_http_request_duration_seconds_count{route="/v1/place"}`,
		`mctopd_requests_served_by_tier_total{tier="computed"}`,
		"mctopd_registry_hits_total",
		"mctopd_registry_misses_total",
		"mctopd_registry_inferences_total",
		"mctopd_registry_entries",
		"mctopd_inference_duration_seconds_count",
		"mctopd_placement_duration_seconds_count",
		"mctopd_http_inflight_limit",
		`mctopd_store_gets_total{kind="topology",result="hit",tier="lru"}`,
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// scriptServer is a server with a controllable inference: seeds < 90
// resolve instantly from a description file, seed 99 blocks until release
// — what the script uses to hold the single in-flight slot open.
func scriptServer() (s *server, release func()) {
	releaseCh := make(chan struct{})
	reg := registry.New(registry.Options{
		MaxEntries: 16,
		InferCtx: func(ctx context.Context, platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
			if seed == 99 {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-releaseCh:
				}
			}
			return topo.LoadFile("../../internal/topo/testdata/ivy.mctop")
		},
	})
	var once sync.Once
	return newServerWith(reg, 51, 1), func() { once.Do(func() { close(releaseCh) }) }
}

// TestMetricsScriptedSequence drives one request of each outcome — cold
// miss (computed), warm hit (lru), 404, shed 503 — and asserts the exact
// counter movement of each.
func TestMetricsScriptedSequence(t *testing.T) {
	s, release := scriptServer()
	defer release()
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// 1: cold — registry miss, inference runs, tier "computed".
	if resp, body := get(t, ts, "/v1/topology?platform=Ivy&seed=1"); resp.StatusCode != 200 {
		t.Fatalf("cold: %d %s", resp.StatusCode, body)
	}
	// 2: warm — registry hit served by the lru tier.
	if resp, _ := get(t, ts, "/v1/topology?platform=Ivy&seed=1"); resp.StatusCode != 200 {
		t.Fatalf("warm: %d", resp.StatusCode)
	}
	// 3: unknown platform — 404 before any registry lookup.
	if resp, _ := get(t, ts, "/v1/topology?platform=Nope&seed=1"); resp.StatusCode != 404 {
		t.Fatalf("404: %d", resp.StatusCode)
	}
	// 4: occupy the single in-flight slot with a blocked inference, then
	// shed the next request with 503.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/topology?platform=Ivy&seed=99")
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.inflight) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight slot never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, _ := get(t, ts, "/v1/topology?platform=Ivy&seed=1"); resp.StatusCode != 503 {
		t.Fatalf("saturated: %d, want 503", resp.StatusCode)
	}

	// Scrape while saturated — /metrics is exempt from backpressure. The
	// blocked request is mid-flight: its miss and inference start are
	// counted, its completion (200, duration observation) is not.
	m := scrapeMetrics(t, ts)
	wantSample(t, m, `mctopd_http_requests_total{code="200",method="GET",route="/v1/topology"}`, 2)
	wantSample(t, m, `mctopd_http_requests_total{code="404",method="GET",route="/v1/topology"}`, 1)
	wantSample(t, m, `mctopd_http_requests_total{code="503",method="GET",route="/v1/topology"}`, 1)
	wantSample(t, m, "mctopd_http_shed_total", 1)
	wantSample(t, m, `mctopd_requests_served_by_tier_total{tier="computed"}`, 1)
	wantSample(t, m, `mctopd_requests_served_by_tier_total{tier="lru"}`, 1)
	wantSample(t, m, "mctopd_registry_hits_total", 1)
	wantSample(t, m, "mctopd_registry_misses_total", 2)     // cold + the blocked request
	wantSample(t, m, "mctopd_registry_inferences_total", 2) // counted at inference start
	wantSample(t, m, "mctopd_inference_duration_seconds_count", 1)
	wantSample(t, m, "mctopd_http_inflight_requests", 1)
	wantSample(t, m, "mctopd_http_inflight_limit", 1)
	wantSample(t, m, `mctopd_store_gets_total{kind="topology",result="hit",tier="lru"}`, 1)

	// Release and drain; the blocked request completes as a third 200 with
	// a second observed inference duration.
	release()
	<-done
	m = scrapeMetrics(t, ts)
	wantSample(t, m, `mctopd_http_requests_total{code="200",method="GET",route="/v1/topology"}`, 3)
	wantSample(t, m, "mctopd_inference_duration_seconds_count", 2)
	wantSample(t, m, `mctopd_requests_served_by_tier_total{tier="computed"}`, 2)
	wantSample(t, m, "mctopd_http_inflight_requests", 0)
}

// TestMiddlewareParallelRequests hammers mixed routes (scrapes included)
// from many goroutines: the workload the race detector checks the
// middleware, the Served attribution and the scrape-time mirror over.
func TestMiddlewareParallelRequests(t *testing.T) {
	s, release := scriptServer()
	s.inflight = nil // unbounded: this test wants contention, not shedding
	release()
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	paths := []string{
		"/v1/topology?platform=Ivy&seed=1",
		"/v1/topology?platform=Ivy&seed=2",
		"/v1/topology?platform=Nope",
		"/healthz",
		"/v1/stats",
		"/metrics",
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Get(ts.URL + paths[(id+i)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	m := scrapeMetrics(t, ts) // still parses after the storm
	var total float64
	for key, v := range m {
		if strings.HasPrefix(key, "mctopd_http_requests_total{") {
			total += v
		}
	}
	// All 320 storm requests land in the counter (plus this test's own
	// scrapes, so the bound is a floor).
	if total < 8*40 {
		t.Errorf("http_requests_total sums to %g, want >= %d", total, 8*40)
	}
}
