package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	mctop "repro"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/registry"
	"repro/internal/topo"
)

// TestErrorContract is the error-contract table: every sentinel error of
// the client API maps to its HTTP status through statusOf, exercised
// end-to-end through the handlers.
func TestErrorContract(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	bigBatch := `{"platform": "Ivy", "requests": [` +
		strings.Repeat(`{"policy": "RR_CORE"},`, 1024) + `{"policy": "RR_CORE"}]}`

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		// ErrInvalidRequest → 400
		{"missing platform", "GET", "/v1/topology", "", 400},
		{"bad seed", "GET", "/v1/topology?platform=Ivy&seed=xyz", "", 400},
		{"bad reps", "GET", "/v1/topology?platform=Ivy&reps=0", "", 400},
		{"bad format", "GET", "/v1/topology?platform=Ivy&reps=51&format=yaml", "", 400},
		{"missing policy", "GET", "/v1/place?platform=Ivy&reps=51", "", 400},
		{"negative threads", "GET", "/v1/place?platform=Ivy&reps=51&policy=RR_CORE&threads=-3", "", 400},
		{"power without power data", "GET", "/v1/place?platform=SPARC&reps=51&policy=POWER", "", 400},
		{"malformed batch body", "POST", "/v1/place/batch", `{not json`, 400},
		{"empty batch", "POST", "/v1/place/batch", `{"platform": "Ivy", "requests": []}`, 400},
		// ErrUnknownPlatform / ErrUnknownPolicy → 404
		{"unknown platform", "GET", "/v1/topology?platform=Atari&reps=51", "", 404},
		{"unknown policy", "GET", "/v1/place?platform=Ivy&reps=51&policy=NOPE", "", 404},
		{"unknown batch platform", "POST", "/v1/place/batch", `{"platform": "Atari", "requests": [{"policy": "RR_CORE"}]}`, 404},
		// ErrTooLarge → 413
		{"oversized batch", "POST", "/v1/place/batch", bigBatch, 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.method == "POST" {
				resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			} else {
				resp, err = http.Get(ts.URL + tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

// blockingServer builds a server whose registry blocks every inference
// until release is called, bounded to maxInflight concurrent requests.
func blockingServer(maxInflight int) (s *server, release func()) {
	releaseCh := make(chan struct{})
	reg := registry.New(registry.Options{
		MaxEntries: 16,
		InferCtx: func(ctx context.Context, platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-releaseCh:
				return topo.LoadFile("../../internal/topo/testdata/ivy.mctop")
			}
		},
	})
	var once sync.Once
	return newServerWith(reg, 51, maxInflight), func() { once.Do(func() { close(releaseCh) }) }
}

// TestBackpressureSheds saturates the in-flight bound and asserts the
// daemon sheds with 503 + Retry-After (ErrSaturated → 503 is the last row
// of the error-contract table), while /healthz stays exempt.
func TestBackpressureSheds(t *testing.T) {
	const bound = 2
	s, release := blockingServer(bound)
	defer release()
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// Fill every slot with requests that block inside the handler. Each
	// uses a distinct seed so they do not collapse into one singleflight.
	errs := make(chan error, bound)
	for i := 0; i < bound; i++ {
		go func(i int) {
			resp, err := http.Get(ts.URL + "/v1/topology?platform=Ivy&seed=" + string(rune('1'+i)))
			if err == nil {
				resp.Body.Close()
			}
			errs <- err
		}(i)
	}
	// Wait until both slots are actually occupied.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.inflight) < bound {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight slots never filled: %d/%d", len(s.inflight), bound)
		}
		time.Sleep(time.Millisecond)
	}

	// The next request is shed, with the retry hint.
	resp, err := http.Get(ts.URL + "/v1/topology?platform=Ivy&seed=9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("saturated response missing Retry-After")
	}

	// The liveness probe is exempt from shedding.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz under saturation: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// Release the blocked inferences; the saturated daemon drains and
	// serves again.
	release()
	for i := 0; i < bound; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if resp, _ := get(t, ts, "/v1/topology?platform=Ivy&seed=1"); resp.StatusCode != 200 {
		t.Fatalf("post-drain: status %d, want 200", resp.StatusCode)
	}
}

// TestCustomPolicyEndToEnd is the acceptance scenario's server half: a
// registered composed policy (RR_CORE on socket 0, capped at 8) is
// placeable through a mctopd endpoint by name.
func TestCustomPolicyEndToEnd(t *testing.T) {
	pol := namedPolicy{"SOCKET0_RR8", place.OnSockets(place.RRCore, 0).Limit(8)}
	if err := place.Register(pol); err != nil {
		t.Fatal(err)
	}
	defer place.Unregister("SOCKET0_RR8")

	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/place?platform=Ivy&reps=51&policy=socket0_rr8")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr placeResponse
	mustUnmarshal(t, body, &pr)
	if pr.Policy != "SOCKET0_RR8" {
		t.Errorf("policy = %q", pr.Policy)
	}
	if pr.NThreads != 8 {
		t.Errorf("n_threads = %d, want 8", pr.NThreads)
	}

	// The registered name shows up in the policy listing.
	_, body = get(t, ts, "/v1/policies")
	var pols struct{ Registered []string }
	mustUnmarshal(t, body, &pols)
	found := false
	for _, n := range pols.Registered {
		if n == "SOCKET0_RR8" {
			found = true
		}
	}
	if !found {
		t.Errorf("registered policies = %v, want SOCKET0_RR8", pols.Registered)
	}

	// The batch endpoint resolves it too.
	resp, body = postBatch(t, ts, `{"platform": "Ivy", "reps": 51, "requests": [{"policy": "SOCKET0_RR8"}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	mustUnmarshal(t, body, &br)
	if len(br.Results) != 1 || br.Results[0].Error != "" || br.Results[0].NThreads != 8 {
		t.Errorf("batch results = %+v", br.Results)
	}

	// Library and endpoint agree on the placement.
	top := mctop.MustInfer("Ivy", 42)
	alloc, err := mctop.NewAlloc(top, pol)
	if err != nil {
		t.Fatal(err)
	}
	want := alloc.Contexts()
	if len(pr.Contexts) != len(want) {
		t.Fatalf("endpoint %v, library %v", pr.Contexts, want)
	}
	for i := range want {
		if pr.Contexts[i] != want[i] {
			t.Fatalf("slot %d: endpoint %d, library %d", i, pr.Contexts[i], want[i])
		}
	}
}

func mustUnmarshal(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
}

type namedPolicy struct {
	name string
	impl place.Orderer
}

func (p namedPolicy) Name() string { return p.name }
func (p namedPolicy) Order(t *topo.Topology, opt place.Options) ([]int, error) {
	return p.impl.Order(t, opt)
}
