package main

// Two-daemon fleet integration test — the acceptance bar of the remote
// tier: an origin daemon with a spool, and an edge daemon whose store
// chains its LRU over a remote tier pointing at the origin (the -upstream
// wiring). The edge must serve topology and placement queries for all five
// golden platforms byte-identically to the origin with zero local
// inferences (remote-tier hits > 0 on /v1/stats), and must keep serving —
// via local re-inference — once the origin is killed mid-run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	mctop "repro"
	"repro/internal/remote"
)

// edgeServer builds a server whose registry chains an LRU over a remote
// tier against originURL — what `mctopd -upstream` wires up in main().
func edgeServer(t *testing.T, originURL string) (*server, *mctop.Registry) {
	t.Helper()
	rm := remote.New(originURL,
		remote.WithTimeout(30*time.Second),
		// A short negative-cache so the killed-origin phase of the test
		// does not idle in a backoff window.
		remote.WithNegTTL(10*time.Millisecond),
		remote.WithLogf(t.Logf))
	reg := mctop.NewRegistry(0, mctop.WithStore(
		mctop.NewTieredStore(mctop.NewLRUStore(256, 0), rm)))
	return newServerWith(reg, 51, 4*runtime.GOMAXPROCS(0)), reg
}

// tierStats decodes /v1/stats far enough to read per-tier counters.
func tierStats(t *testing.T, ts *httptest.Server) (inferences, placements int64, tiers map[string]int64) {
	t.Helper()
	resp, body := get(t, ts, "/v1/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var stats struct {
		Inferences int64
		Placements int64
		Tiers      []struct {
			Tier string
			Hits int64
		}
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	tiers = map[string]int64{}
	for _, tier := range stats.Tiers {
		tiers[tier.Tier] += tier.Hits
	}
	return stats.Inferences, stats.Placements, tiers
}

func TestFleetEdgeServesOriginByteIdentically(t *testing.T) {
	platforms := mctop.Platforms()
	if len(platforms) != 5 {
		t.Fatalf("expected the five golden platforms, got %v", platforms)
	}
	policies := []string{"RR_CORE", "CON_HWC"}
	topoURL := func(p string) string {
		return fmt.Sprintf("/v1/topology?platform=%s&seed=42&format=mctop", p)
	}
	placeURL := func(p, pol string) string {
		return fmt.Sprintf("/v1/place?platform=%s&seed=42&policy=%s&threads=8", p, pol)
	}

	// Origin: a spool-backed daemon, warmed across every platform.
	originSrv, originReg := spoolServer(t, t.TempDir())
	origin := httptest.NewServer(originSrv.routes())
	defer origin.Close()
	topoBytes := map[string][]byte{}
	placeBytes := map[string]string{}
	for _, p := range platforms {
		resp, body := get(t, origin, topoURL(p))
		if resp.StatusCode != 200 {
			t.Fatalf("origin %s: %d %s", p, resp.StatusCode, body)
		}
		topoBytes[p] = body
		for _, pol := range policies {
			resp, body := get(t, origin, placeURL(p, pol))
			if resp.StatusCode != 200 {
				t.Fatalf("origin %s/%s: %d %s", p, pol, resp.StatusCode, body)
			}
			placeBytes[p+"/"+pol] = normalizePlace(t, body)
		}
	}
	originInferences := originReg.Stats().Inferences

	// Edge: no spool, remote tier against the origin.
	edgeSrv, _ := edgeServer(t, origin.URL)
	edge := httptest.NewServer(edgeSrv.routes())
	defer edge.Close()
	for _, p := range platforms {
		// Placements first: each must warm-start through a sidecar fetch
		// (plus its referenced topology), not ride a prior topology query.
		for _, pol := range policies {
			resp, body := get(t, edge, placeURL(p, pol))
			if resp.StatusCode != 200 {
				t.Fatalf("edge %s/%s: %d %s", p, pol, resp.StatusCode, body)
			}
			if got := normalizePlace(t, body); got != placeBytes[p+"/"+pol] {
				t.Fatalf("edge %s/%s placement differs from origin:\n%s\nvs\n%s", p, pol, got, placeBytes[p+"/"+pol])
			}
		}
		resp, body := get(t, edge, topoURL(p))
		if resp.StatusCode != 200 {
			t.Fatalf("edge %s: %d %s", p, resp.StatusCode, body)
		}
		if !bytes.Equal(body, topoBytes[p]) {
			t.Fatalf("edge %s description differs from origin's", p)
		}
	}

	// The acceptance bar: every query served from the origin's entries —
	// zero local inferences, zero local placement computes, remote hits.
	inferences, placements, tiers := tierStats(t, edge)
	if inferences != 0 {
		t.Fatalf("edge ran %d local inferences, want 0", inferences)
	}
	if placements != 0 {
		t.Fatalf("edge computed %d placements locally, want 0", placements)
	}
	if tiers["remote"] == 0 {
		t.Fatalf("edge /v1/stats shows no remote-tier hits: %v", tiers)
	}
	if got := originReg.Stats().Inferences; got != originInferences {
		t.Fatalf("serving the edge cost the origin %d extra inferences", got-originInferences)
	}

	// Kill the origin mid-run: a query the edge has never seen must now
	// degrade to local inference — the edge keeps serving.
	origin.Close()
	time.Sleep(20 * time.Millisecond) // let the edge's negative-cache window lapse
	resp, body := get(t, edge, "/v1/topology?platform=Ivy&seed=7&format=mctop")
	if resp.StatusCode != 200 {
		t.Fatalf("edge with dead origin: %d %s", resp.StatusCode, body)
	}
	inferences, _, _ = tierStats(t, edge)
	if inferences != 1 {
		t.Fatalf("edge with dead origin ran %d inferences, want 1 (local re-inference)", inferences)
	}
	// And the already-fetched entries keep serving from the edge's LRU.
	resp, body = get(t, edge, topoURL("Ivy"))
	if resp.StatusCode != 200 || !bytes.Equal(body, topoBytes["Ivy"]) {
		t.Fatalf("edge LRU no longer serves origin bytes after origin death: %d", resp.StatusCode)
	}
}

// TestFleetEdgeServesMappingFromOrigin: the mapping kind rides the same
// fleet plumbing. An origin warmed through POST /v1/map serves the .map
// sidecar over /v1/export; an edge posting the same DAG answers with the
// identical assignment and cost while running zero local mapping computes.
func TestFleetEdgeServesMappingFromOrigin(t *testing.T) {
	originSrv, originReg := spoolServer(t, t.TempDir())
	origin := httptest.NewServer(originSrv.routes())
	defer origin.Close()

	d := mapTestDAG()
	body := mapBody(t, mapRequest{Platform: "Haswell", Refine: 200, DAG: d})
	resp, raw := postMap(t, origin, body)
	if resp.StatusCode != 200 {
		t.Fatalf("origin map: %d %s", resp.StatusCode, raw)
	}
	var originResp mapResponse
	if err := json.Unmarshal(raw, &originResp); err != nil {
		t.Fatal(err)
	}
	if got := originReg.Stats().Mappings; got != 1 {
		t.Fatalf("origin ran %d mapping computes, want 1", got)
	}

	edgeSrv, edgeReg := edgeServer(t, origin.URL)
	edge := httptest.NewServer(edgeSrv.routes())
	defer edge.Close()
	resp, raw = postMap(t, edge, body)
	if resp.StatusCode != 200 {
		t.Fatalf("edge map: %d %s", resp.StatusCode, raw)
	}
	var edgeResp mapResponse
	if err := json.Unmarshal(raw, &edgeResp); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(edgeResp.Result.Assignment) != fmt.Sprint(originResp.Result.Assignment) ||
		edgeResp.Result.CostCycles != originResp.Result.CostCycles {
		t.Fatalf("edge mapping differs from origin:\n%+v\nvs\n%+v", edgeResp.Result, originResp.Result)
	}
	st := edgeReg.Stats()
	if st.Mappings != 0 {
		t.Fatalf("edge ran %d local mapping computes, want 0 (remote fetch)", st.Mappings)
	}
	if _, _, tiers := tierStats(t, edge); tiers["remote"] == 0 {
		t.Fatalf("edge /v1/stats shows no remote-tier hits: %v", tiers)
	}
	if got := originReg.Stats().Mappings; got != 1 {
		t.Fatalf("serving the edge cost the origin %d extra mapping computes", got-1)
	}
}

// TestFleetEdgeWithSpoolPersistsFetchedEntries: an edge with its own spool
// write-through-promotes fetched description files to disk, so a restarted
// edge serves them with zero inferences AND zero origin fetches — the
// fleet tier composes with the warm-start story.
func TestFleetEdgeWithSpoolPersistsFetchedEntries(t *testing.T) {
	originSrv, _ := spoolServer(t, t.TempDir())
	origin := httptest.NewServer(originSrv.routes())
	defer origin.Close()

	edgeDir := t.TempDir()
	newEdge := func(originURL string) (*server, *mctop.Registry) {
		sp, err := mctop.OpenSpool(edgeDir)
		if err != nil {
			t.Fatal(err)
		}
		reg := mctop.NewRegistry(0, mctop.WithStore(mctop.NewTieredStore(
			mctop.NewLRUStore(256, 0), sp,
			remote.New(originURL, remote.WithLogf(t.Logf)))))
		return newServerWith(reg, 51, 4*runtime.GOMAXPROCS(0)), reg
	}

	// Placement-only traffic is the hard case: the sidecar promotes into
	// the edge's spool via the tier chain, and the spool must persist the
	// referenced topology alongside it (the edge never Puts it itself) or
	// the restart below re-infers.
	placePath := "/v1/place?platform=Westmere&seed=42&policy=RR_CORE&threads=8"
	edgeSrv, edgeReg := newEdge(origin.URL)
	edge := httptest.NewServer(edgeSrv.routes())
	resp, body := get(t, edge, placePath)
	if resp.StatusCode != 200 {
		t.Fatalf("edge: %d %s", resp.StatusCode, body)
	}
	if err := edgeReg.Close(); err != nil {
		t.Fatal(err)
	}
	edge.Close()
	origin.Close() // the restarted edge must not need the origin at all

	edgeSrv2, edgeReg2 := newEdge(origin.URL)
	defer edgeReg2.Close()
	edge2 := httptest.NewServer(edgeSrv2.routes())
	defer edge2.Close()
	resp, body2 := get(t, edge2, placePath)
	if resp.StatusCode != 200 {
		t.Fatalf("restarted edge: %d %s", resp.StatusCode, body2)
	}
	if normalizePlace(t, body) != normalizePlace(t, body2) {
		t.Fatal("restarted edge serves a different placement than the fetched original")
	}
	if st := edgeReg2.Stats(); st.Inferences != 0 {
		t.Fatalf("restarted edge ran %d inferences, want 0 (spool warm-start)", st.Inferences)
	}
}
