// Command mctopd is the MCTOP topology daemon: a long-running HTTP server
// that answers topology and placement queries over JSON, backed by the
// registry's memoization — the paper's "infer once, reuse everywhere"
// deployment model (Section 2) turned into a service. The first query for a
// (platform, seed, options) triple runs MCTOP-ALG; every later query is a
// cache hit, and concurrent first queries collapse into one inference.
//
// Usage:
//
//	mctopd -addr :8077 -cache 256 -max-inflight 64 -spool-dir /var/lib/mctop/spool
//
// With -spool-dir, every inferred topology and computed placement is also
// persisted as a description file (write-behind, crash-safe temp+rename),
// and a restarted daemon warm-starts from the spool: it serves every
// previously seen platform byte-identically with zero re-inferences. On
// SIGTERM/SIGINT the daemon drains in-flight requests and flushes the
// spool before exiting. -spool-max-bytes / -spool-max-age bound the
// directory, evicting oldest-mtime files first at startup and after
// flushes.
//
// With -upstream, the daemon is a fleet edge: a local cache miss is
// fetched from the origin mctopd's /v1/export endpoint (the tier chain
// becomes LRU → spool → remote → infer), so one warm origin feeds a fleet
// of edges that serve its description files byte-identically with zero
// local inferences — and any edge keeps serving through its own inference
// when the origin is down. Every daemon serves /v1/export, so edges can
// themselves feed further edges:
//
//	mctopd -addr :8078 -upstream http://origin:8077 -spool-dir /var/lib/mctop/edge
//
// Endpoints:
//
//	GET  /healthz                          liveness probe (exempt from backpressure)
//	GET  /readyz                           readiness probe: 503 while a tier
//	                                       is degraded (spool read-only,
//	                                       origin backoff open), 200 once
//	                                       every tier heals
//	GET  /v1/platforms                     the five simulated platforms (any
//	                                       endpoint also accepts generated
//	                                       gen:<kind>:s<S>:c<C>:t<T> specs,
//	                                       e.g. gen:circulant:s64:c8:t2)
//	GET  /v1/policies                      builtin + registered placement policies
//	GET  /v1/topology?platform=Ivy&seed=42[&reps=201][&sampling=1][&format=mctop|dot]
//	GET  /v1/place?platform=Ivy&seed=42&policy=RR_CORE&threads=8
//	POST /v1/place/batch                   many placements, one topology lookup
//	POST /v1/map                           topology-aware task-graph mapping:
//	                                       a DAG (or batch of DAGs) in, a
//	                                       task → hardware-context assignment
//	                                       and its estimated completion time
//	                                       out, memoized by DAG hash
//	POST /v1/place/batch?stream=1          the same, as NDJSON: one line per
//	                                       placement as each completes,
//	                                       per-item errors inline
//	GET  /v1/export?key=<registry key>     the entry's interchange file: a
//	                                       #key-headed .mctop description
//	                                       file or a .place sidecar — what
//	                                       fleet edges fetch
//	GET  /v1/stats                         registry hit/miss/eviction counters
//	GET  /v1/debug/traces                  finished request traces (with
//	                                       -trace-sample > 0): JSON, or one
//	                                       trace per line with ?format=ndjson
//	GET  /metrics                          Prometheus text exposition (exempt
//	                                       from backpressure)
//	GET  /debug/pprof/                     net/http/pprof, with -pprof
//
// Platforms can be the paper's five machines or synthetic generated ones
// (internal/sim's gen: specs) — dozens of sockets, thousands of contexts.
// Since inference cost grows with the square of the context count,
// -max-contexts bounds how large a platform a request may name (413 beyond
// it), and -sampling defaults requests to the sampled sub-O(N²)
// measurement mode (?sampling=0/1 and the batch "sampling" field override
// per request; results are byte-identical to exhaustive inference, see
// internal/mctopalg).
//
// Failures carry the client API's sentinel errors, mapped to HTTP statuses
// in one place (statusOf): ErrInvalidRequest → 400, ErrUnknownPlatform and
// ErrUnknownPolicy → 404, ErrTooLarge → 413, ErrSaturated → 503. Handlers
// run under the request context, so a disconnected client cancels a cold
// O(N²) inference, and -max-inflight bounds concurrent requests — beyond
// it the daemon sheds load with 503 + Retry-After instead of queueing
// into timeout.
//
// The batch endpoint answers many {policy, threads} requests against one
// topology in a single call — runtime systems resolving a whole sweep of
// placement configurations pay the registry lookup (and, cold, the O(N²)
// inference) once, and every placement is built from the topology's
// precomputed query index. Requests that fail (unknown policy, POWER on a
// machine without power measurements) report their error inline without
// failing the batch:
//
//	curl -s -X POST localhost:8077/v1/place/batch -d '{
//	  "platform": "Ivy", "seed": 42,
//	  "requests": [
//	    {"policy": "RR_CORE",  "threads": 8},
//	    {"policy": "CON_HWC",  "threads": 30},
//	    {"policy": "POWER",    "threads": 16}
//	  ]
//	}'
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	mctop "repro"
	"repro/internal/faultinject"
	"repro/internal/mctoperr"
	"repro/internal/registry"
	"repro/internal/remote"
	"repro/internal/sim"
	"repro/internal/spool"
	"repro/internal/topo"
	"repro/internal/trace"
)

// daemonConfig is everything the flags decide, decoupled from the flag
// package so tests can run a complete daemon in-process (run is the whole
// lifecycle: listen, serve, drain, flush).
type daemonConfig struct {
	addr           string
	cache          int
	reps           int
	spoolDir       string
	spoolMaxBytes  int64
	spoolMaxAge    time.Duration
	upstream       string
	maxInflight    int
	maxContexts    int
	sampling       bool
	pprof          bool
	faults         string
	faultsSeed     uint64
	requestTimeout time.Duration
	traceSample    float64
	traceSlow      time.Duration
	traceRing      int
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", ":8077", "listen address")
	flag.IntVar(&cfg.cache, "cache", 256, "maximum cached topologies + placements (LRU beyond)")
	flag.IntVar(&cfg.reps, "reps", 201, "default repetitions per context pair")
	flag.StringVar(&cfg.spoolDir, "spool-dir", "",
		"persist inferred topologies and placements as description files here; a restarted daemon warm-starts from them (empty = memory only)")
	flag.Int64Var(&cfg.spoolMaxBytes, "spool-max-bytes", 0,
		"bound the spool directory's total size, evicting oldest-mtime files first at startup and after flushes (<= 0 = unlimited)")
	flag.DurationVar(&cfg.spoolMaxAge, "spool-max-age", 0,
		"evict spool files older than this at startup and after flushes (0 = unlimited)")
	flag.StringVar(&cfg.upstream, "upstream", "",
		"origin mctopd base URL (e.g. http://origin:8077): misses are fetched from its /v1/export before inferring locally, making this daemon a fleet edge")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 4*runtime.GOMAXPROCS(0),
		"maximum concurrent in-flight requests before shedding with 503 (<= 0 disables)")
	flag.IntVar(&cfg.maxContexts, "max-contexts", 0,
		"refuse platforms with more hardware contexts than this with 413 — the size bound for generated gen: platforms, whose inference cost grows with the square of the context count (<= 0 disables)")
	flag.BoolVar(&cfg.sampling, "sampling", false,
		"default requests to the sampled sub-O(N²) measurement mode on large platforms; per-request ?sampling=0/1 overrides")
	flag.BoolVar(&cfg.pprof, "pprof", false,
		"mount net/http/pprof under /debug/pprof/ (exempt from backpressure, like /metrics)")
	flag.StringVar(&cfg.faults, "faults", "",
		"arm deterministic fault injection: semicolon-separated point:mode=...,prob=...,count=... rules (see internal/faultinject), e.g. 'remote.fetch:mode=refused,count=3;spool.write:mode=enospc,prob=0.1'")
	flag.Uint64Var(&cfg.faultsSeed, "faults-seed", 1,
		"seed for the fault-injection probability stream (same seed + same request sequence = same faults)")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", 0,
		"per-request server-side deadline for buffered routes; a wedged tier becomes an honest 504 instead of a hung connection (0 = off; streaming and observability routes are exempt)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0,
		"head-sampling probability in [0,1] for request traces served at /v1/debug/traces; 0 disables tracing entirely (traces with errors, and with -trace-slow traces over the threshold, are kept regardless of the head decision)")
	flag.DurationVar(&cfg.traceSlow, "trace-slow", 0,
		"keep every trace whose request runs at least this long, regardless of the sampling decision (0 = off; only meaningful with -trace-sample > 0)")
	flag.IntVar(&cfg.traceRing, "trace-ring", 0,
		"bound on finished traces held in memory for /v1/debug/traces (<= 0 = default 128)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, func(addr string) {
		log.Printf("mctopd: serving topology queries on %s (cache %d entries, %d in-flight)",
			addr, cfg.cache, cfg.maxInflight)
	}); err != nil {
		log.Fatal(err)
	}
}

// run is the daemon's whole lifecycle: build the tier chain, listen, call
// onReady with the bound address, serve until ctx is cancelled (SIGTERM in
// main), then drain in-flight requests and flush the spool. Splitting it
// from main makes graceful shutdown testable with a real signal.
func run(ctx context.Context, cfg daemonConfig, onReady func(addr string)) error {
	var faults *faultinject.Set
	if cfg.faults != "" {
		var err error
		if faults, err = faultinject.Parse(cfg.faultsSeed, cfg.faults); err != nil {
			return fmt.Errorf("mctopd: -faults: %w", err)
		}
		log.Printf("mctopd: fault injection armed (seed %d): %s", cfg.faultsSeed, cfg.faults)
	}

	// The span plane. Seeded from the listen address so two daemons of one
	// fleet draw distinct ID streams yet each is reproducible run to run;
	// with -trace-sample 0 the tracer is disabled and every instrumentation
	// call below it is a no-op.
	tracerOpts := []trace.Option{
		trace.WithSampleRate(cfg.traceSample),
		trace.WithSlowThreshold(cfg.traceSlow),
		trace.WithSeed(traceSeed(cfg.addr)),
	}
	if cfg.traceRing > 0 {
		tracerOpts = append(tracerOpts, trace.WithRingSize(cfg.traceRing))
	}
	tracer := trace.New(tracerOpts...)
	if tracer.Enabled() {
		log.Printf("mctopd: tracing %.3g of requests (slow threshold %v) at /v1/debug/traces",
			cfg.traceSample, cfg.traceSlow)
	}

	// Tier chain, fastest first: LRU → spool (optional) → remote
	// (optional) — any daemon is an origin to its downstreams and, with
	// -upstream, an edge to its origin at the same time. With neither
	// extra tier, NewRegistry builds its plain LRU itself.
	var (
		regOpts []mctop.RegistryOption
		s       *server // assigned below; the remote observer closes over it
		rs      *remote.Remote
		sp      *spool.Spool
	)
	if cfg.spoolDir != "" || cfg.upstream != "" {
		tiers := []mctop.Store{mctop.NewLRUStore(cfg.cache, 0)}
		if cfg.spoolDir != "" {
			var spOpts []spool.Option
			if cfg.spoolMaxBytes > 0 {
				spOpts = append(spOpts, spool.WithMaxBytes(cfg.spoolMaxBytes))
			}
			if cfg.spoolMaxAge > 0 {
				spOpts = append(spOpts, spool.WithMaxAge(cfg.spoolMaxAge))
			}
			if faults != nil {
				spOpts = append(spOpts, spool.WithFaults(faults))
			}
			if tracer.Enabled() {
				// The spool's write-behind goroutine runs outside any
				// request; the tracer lets it open its own root spans for
				// persists and quarantines.
				spOpts = append(spOpts, spool.WithTracer(tracer))
			}
			var err error
			if sp, err = spool.New(cfg.spoolDir, spOpts...); err != nil {
				return fmt.Errorf("mctopd: %w", err)
			}
			tiers = append(tiers, sp)
			log.Printf("mctopd: spooling to %s (%d entries on disk)", cfg.spoolDir, sp.Len())
		}
		if cfg.upstream != "" {
			// Built directly (not through the facade) so the daemon keeps a
			// handle for the backoff gauges; the observer reads s.metrics,
			// which is assigned before the first request can fetch.
			rOpts := []remote.Option{remote.WithObserver(func(d time.Duration, outcome string) {
				s.metrics.fetchObserver(cfg.upstream)(d, outcome)
			})}
			if faults != nil {
				rOpts = append(rOpts, remote.WithHTTPClient(&http.Client{
					Transport: faultinject.Transport(faults, faultinject.RemoteFetch, http.DefaultTransport),
				}))
			}
			rs = remote.New(cfg.upstream, rOpts...)
			tiers = append(tiers, rs)
			log.Printf("mctopd: edge mode, pulling misses from %s", cfg.upstream)
		}
		regOpts = append(regOpts, mctop.WithStore(mctop.NewTieredStore(tiers...)))
	}
	var mapperFailed atomic.Bool
	if faults != nil {
		// The registry.infer point: a fired rule delays and/or fails the
		// compute path itself, the slowest thing a request can wait on.
		regOpts = append(regOpts, mctop.WithInferWrapper(func(next mctop.InferCtxFunc) mctop.InferCtxFunc {
			return func(ctx context.Context, platform string, seed uint64, opt mctop.Options) (*mctop.Topology, error) {
				if o, fired := faults.Eval(faultinject.RegistryInfer); fired {
					if err := o.Delay(ctx); err != nil {
						return nil, err
					}
					if o.Mode != "slow" {
						return nil, o.Err(faultinject.RegistryInfer)
					}
				}
				return next(ctx, platform, seed, opt)
			}
		}))
		// The registry.map point: same shape on the mapping compute path.
		// An injected failure wraps ErrSaturated (an honest 503 +
		// Retry-After, never a wrong assignment) and flips the mapper
		// readiness probe until a mapping computes cleanly again.
		regOpts = append(regOpts, mctop.WithMapWrapper(func(next mctop.MapFunc) mctop.MapFunc {
			return func(ctx context.Context, t *mctop.Topology, d *mctop.TaskDAG, opt mctop.MapOptions) (*mctop.Mapping, error) {
				if o, fired := faults.Eval(faultinject.RegistryMap); fired {
					if err := o.Delay(ctx); err != nil {
						return nil, err
					}
					if o.Mode != "slow" {
						mapperFailed.Store(true)
						return nil, fmt.Errorf("%w: mapper: %v", mctoperr.ErrSaturated, o.Err(faultinject.RegistryMap))
					}
				}
				m, err := next(ctx, t, d, opt)
				if err == nil {
					mapperFailed.Store(false)
				}
				return m, err
			}
		}))
	}
	reg := mctop.NewRegistry(cfg.cache, regOpts...)
	s = newServerWith(reg, cfg.reps, cfg.maxInflight)
	s.tracer = tracer
	s.maxContexts = cfg.maxContexts
	s.defaultSampling = cfg.sampling
	s.pprof = cfg.pprof
	s.reqTimeout = cfg.requestTimeout
	s.logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	if sp != nil {
		s.readiness = append(s.readiness, readyProbe{tier: "spool", check: sp.Degraded})
	}
	if faults != nil {
		s.readiness = append(s.readiness, readyProbe{tier: "mapper", check: func() (bool, string) {
			if mapperFailed.Load() {
				return true, "last mapping compute failed; mappings are degraded until one succeeds"
			}
			return false, ""
		}})
	}
	if rs != nil {
		s.metrics.observeRemote(cfg.upstream, rs)
		s.readiness = append(s.readiness, readyProbe{tier: "remote", check: func() (bool, string) {
			b := rs.Backoff()
			if !b.DownUntil.IsZero() && time.Now().Before(b.DownUntil) {
				return true, fmt.Sprintf("origin backoff window open (%d consecutive failures)", b.ConsecutiveFails)
			}
			return false, ""
		}})
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("mctopd: %w", err)
	}
	srv := &http.Server{
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute, // a cold SPARC inference at paper reps is slow
		IdleTimeout:       2 * time.Minute,
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	// Graceful shutdown: on ctx cancellation stop accepting, drain
	// in-flight requests, then flush the registry so every entry the
	// process served is durable in the spool — the next start answers them
	// with zero re-inferences.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("mctopd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("mctopd: shutdown: %v", err)
	}
	if err := reg.Close(); err != nil {
		return fmt.Errorf("mctopd: flushing spool: %w", err)
	}
	return nil
}

// traceSeed derives the tracer's ID-stream seed from the listen address
// (FNV-1a), so each daemon of a fleet draws distinct trace/span IDs while
// any one daemon's stream is reproducible across restarts. Never zero.
func traceSeed(addr string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// server holds the daemon's registry and defaults; split from main so tests
// can drive the handlers through httptest.
type server struct {
	reg         *mctop.Registry
	defaultReps int
	// maxContexts refuses platforms larger than this with 413 (0 = no
	// bound); defaultSampling turns the sampled measurement mode on for
	// requests that do not say ?sampling= themselves.
	maxContexts     int
	defaultSampling bool
	// inflight is the backpressure semaphore: one slot per in-flight
	// request (healthz, /metrics and pprof excepted). nil disables
	// shedding.
	inflight chan struct{}
	// metrics is the daemon's Prometheus instrument set (always present;
	// scraped at /metrics). logger writes one structured line per request
	// (io.Discard by default so handler tests stay quiet; main installs a
	// real one).
	metrics *daemonMetrics
	logger  *slog.Logger
	// pprof mounts net/http/pprof under /debug/pprof/ when set.
	pprof bool
	// readiness lists the per-tier degradation probes behind /readyz (and
	// the ready/degraded fields of /v1/stats and /metrics). Empty = always
	// ready.
	readiness []readyProbe
	// reqTimeout, when > 0, bounds buffered handlers with a server-side
	// deadline (withDeadlines); streaming and observability routes are
	// exempt.
	reqTimeout time.Duration
	// tracer is the span plane behind /v1/debug/traces. Never nil: the
	// default is a disabled tracer (sample rate 0) that still mints
	// request IDs; -trace-sample arms it in main.
	tracer *trace.Tracer
}

// readyProbe is one tier's degradation check: degraded=true with a
// human-readable reason means the tier is unhealthy but the daemon keeps
// serving what it can — readiness (route traffic elsewhere), not liveness
// (restart me).
type readyProbe struct {
	tier  string
	check func() (degraded bool, reason string)
}

func newServer(cacheEntries, defaultReps int) *server {
	return newServerWith(mctop.NewRegistry(cacheEntries), defaultReps, 4*runtime.GOMAXPROCS(0))
}

// newServerWith injects the registry and the in-flight bound, so tests can
// substitute blocking inference functions and tiny bounds.
func newServerWith(reg *mctop.Registry, defaultReps, maxInflight int) *server {
	s := &server{
		reg:         reg,
		defaultReps: defaultReps,
		metrics:     newDaemonMetrics(),
		logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		tracer:      trace.New(),
	}
	if maxInflight > 0 {
		s.inflight = make(chan struct{}, maxInflight)
	}
	s.metrics.observeServer(s)
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/platforms", s.handlePlatforms)
	mux.HandleFunc("/v1/policies", s.handlePolicies)
	mux.HandleFunc("/v1/topology", s.handleTopology)
	mux.HandleFunc("/v1/place", s.handlePlace)
	mux.HandleFunc("/v1/place/batch", s.handlePlaceBatch)
	mux.HandleFunc("/v1/map", s.handleMap)
	mux.HandleFunc("/v1/export", s.handleExport)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/debug/traces", s.handleTraces)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(s.withBackpressure(s.withDeadlines(mux)))
}

// exemptFromBackpressure lists the observability endpoints that must answer
// even when the daemon sheds serving load: an orchestrator must see a
// saturated daemon as alive, and a saturated daemon is exactly when an
// operator needs its metrics and profiles.
func exemptFromBackpressure(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/metrics" ||
		path == "/v1/debug/traces" || strings.HasPrefix(path, "/debug/pprof/")
}

// exemptFromTracing lists the routes that never open spans: probe and
// scrape traffic would otherwise occupy ring slots and skew sampling
// toward the orchestrator's polling cadence, and reading the trace dump
// must not create traces. Today the set coincides with the backpressure
// exemptions; the separate name keeps the two contracts independent.
func exemptFromTracing(path string) bool {
	return exemptFromBackpressure(path)
}

// withDeadlines bounds every buffered route with a server-side request
// deadline (s.reqTimeout), so a wedged tier becomes an honest 504 instead
// of a connection that hangs until the client gives up. Streaming
// responses are exempt — a long NDJSON stream is progress, not a hang —
// as are the observability routes.
func (s *server) withDeadlines(next http.Handler) http.Handler {
	if s.reqTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromDeadline(r) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func exemptFromDeadline(r *http.Request) bool {
	if exemptFromBackpressure(r.URL.Path) {
		return true
	}
	return r.URL.Path == "/v1/place/batch" && r.URL.Query().Get("stream") == "1"
}

// withBackpressure sheds requests beyond the in-flight bound with 503 +
// Retry-After instead of queueing them behind a saturated CPU: an
// inference-heavy burst would otherwise pile onto the registry's compute
// semaphore until every response deadline is blown.
func (s *server) withBackpressure(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromBackpressure(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			s.metrics.shed.Inc()
			w.Header().Set("Retry-After", "1")
			writeErrStatus(w, fmt.Errorf("%w: %d requests in flight", mctoperr.ErrSaturated, cap(s.inflight)))
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusOf is the single place the daemon maps the client API's sentinel
// errors to HTTP statuses; handlers never pick a status by hand.
func statusOf(err error) int {
	switch {
	case errors.Is(err, mctoperr.ErrSaturated):
		return http.StatusServiceUnavailable // 503
	case errors.Is(err, mctoperr.ErrTooLarge):
		return http.StatusRequestEntityTooLarge // 413
	case errors.Is(err, mctoperr.ErrUnknownPlatform),
		errors.Is(err, mctoperr.ErrUnknownPolicy):
		return http.StatusNotFound // 404
	case errors.Is(err, mctoperr.ErrInvalidRequest):
		return http.StatusBadRequest // 400
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504
	case errors.Is(err, context.Canceled):
		// The requester went away (healthy waiters are re-promoted by the
		// registry, so a Canceled here is this request's own); 499 is the
		// de-facto "client closed request" status. Nobody reads the
		// response, but logs and metrics should not count it as a 500.
		return 499
	default:
		return http.StatusInternalServerError // 500
	}
}

// writeErrStatus maps err through statusOf and writes it. 503s and 504s —
// the honest refusals of the SLO contract — always carry a Retry-After,
// so a well-behaved client backs off instead of hammering a degraded
// daemon.
func writeErrStatus(w http.ResponseWriter, err error) {
	status := statusOf(err)
	if status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	writeErr(w, status, err)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok\n"))
}

// degradedTier names one unhealthy tier in /readyz and /v1/stats.
type degradedTier struct {
	Tier   string `json:"tier"`
	Reason string `json:"reason"`
}

// readyState runs every readiness probe; ready means none is degraded.
func (s *server) readyState() (bool, []degradedTier) {
	var out []degradedTier
	for _, p := range s.readiness {
		if bad, reason := p.check(); bad {
			out = append(out, degradedTier{Tier: p.tier, Reason: reason})
		}
	}
	return len(out) == 0, out
}

// handleReadyz is readiness, distinct from /healthz liveness: a daemon
// that is alive but degraded (spool effectively read-only after a write
// failure, origin inside a backoff window) answers 503 here so an
// orchestrator routes traffic elsewhere while the process keeps serving
// what it can. /healthz stays 200 the whole time — degraded is not a
// reason to restart.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, degraded := s.readyState()
	if ready {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"ready":    false,
		"degraded": degraded,
	})
}

func (s *server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"platforms": mctop.Platforms()})
}

func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"policies":   mctop.PolicyNames(),
		"registered": mctop.RegisteredPolicyNames(),
	})
}

// validatePlatform sorts platform failures: an absent parameter is a
// malformed request (ErrInvalidRequest, 400), a malformed gen: spec is too
// (sim.ParseGenName's contract), a named-but-unknown platform is a miss on
// the platform namespace (ErrUnknownPlatform, 404), and a platform over the
// -max-contexts bound is an honest refusal of quadratic work this daemon is
// not sized for (ErrTooLarge, 413 — a client fault, so no Retry-After:
// retrying the same platform can never succeed here).
func (s *server) validatePlatform(platform string) error {
	if platform == "" {
		return fmt.Errorf("%w: missing platform (one of: %s; or a gen: spec)", mctoperr.ErrInvalidRequest, strings.Join(mctop.Platforms(), ", "))
	}
	p, err := sim.ByName(platform)
	if err != nil {
		return err
	}
	if n := p.NumContexts(); s.maxContexts > 0 && n > s.maxContexts {
		return fmt.Errorf("%w: platform %q has %d hardware contexts, over this daemon's limit of %d",
			mctoperr.ErrTooLarge, platform, n, s.maxContexts)
	}
	return nil
}

// validateReps bounds the work one request can demand: inference is
// O(N² · reps) and runs to completion once started, beyond any response
// timeout. 10000 is 5x the paper's n = 2000.
func validateReps(reps int) error {
	if reps < 1 || reps > 10000 {
		return fmt.Errorf("%w: bad reps %d (want 1..10000)", mctoperr.ErrInvalidRequest, reps)
	}
	return nil
}

// query pulls the common platform/seed/options parameters. seed defaults to
// 42, reps to the daemon default; every failure wraps a sentinel error
// (ErrUnknownPlatform, ErrInvalidRequest) for statusOf.
func (s *server) query(r *http.Request) (platform string, seed uint64, opt mctop.Options, err error) {
	q := r.URL.Query()
	platform = q.Get("platform")
	if err := s.validatePlatform(platform); err != nil {
		return "", 0, opt, err
	}
	seed = 42
	if v := q.Get("seed"); v != "" {
		if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return "", 0, opt, fmt.Errorf("%w: bad seed %q: %v", mctoperr.ErrInvalidRequest, v, err)
		}
	}
	opt.Reps = s.defaultReps
	if v := q.Get("reps"); v != "" {
		reps, perr := strconv.Atoi(v)
		if perr != nil {
			return "", 0, opt, fmt.Errorf("%w: bad reps %q: %v", mctoperr.ErrInvalidRequest, v, perr)
		}
		if err := validateReps(reps); err != nil {
			return "", 0, opt, err
		}
		opt.Reps = reps
	}
	opt.Sampling.Enabled = s.defaultSampling
	if v := q.Get("sampling"); v != "" {
		b, perr := strconv.ParseBool(v)
		if perr != nil {
			return "", 0, opt, fmt.Errorf("%w: bad sampling %q (want 0 or 1)", mctoperr.ErrInvalidRequest, v)
		}
		opt.Sampling.Enabled = b
	}
	return platform, seed, opt, nil
}

// topologyResponse is the JSON view of a topology: the full spec (the same
// data the .mctop description file carries) plus summary dimensions.
type topologyResponse struct {
	Platform string    `json:"platform"`
	Seed     uint64    `json:"seed"`
	Contexts int       `json:"contexts"`
	Cores    int       `json:"cores"`
	Sockets  int       `json:"sockets"`
	Nodes    int       `json:"nodes"`
	SMTWays  int       `json:"smt_ways"`
	Spec     topo.Spec `json:"spec"`
	Cached   bool      `json:"cached"`
	ServedIn string    `json:"served_in"`
}

func (s *server) handleTopology(w http.ResponseWriter, r *http.Request) {
	platform, seed, opt, err := s.query(r)
	if err != nil {
		writeErrStatus(w, err)
		return
	}
	// Validate the format before paying for an inference: a typo must not
	// cost an O(N²) measurement run.
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "mctop", "dot":
	default:
		writeErrStatus(w, fmt.Errorf("%w: unknown format %q (json, mctop, dot)", mctoperr.ErrInvalidRequest, format))
		return
	}
	start := time.Now()
	// The request context bounds the inference: a client that disconnects
	// (or whose deadline fires) cancels a cold O(N²) measurement run
	// instead of leaving it to burn CPU for nobody.
	top, cached, err := s.reg.LookupTopologyContext(r.Context(), platform, seed, opt)
	if err != nil {
		writeErrStatus(w, err)
		return
	}
	switch format {
	case "mctop":
		// Encode to a buffer first: writing straight to w would commit a
		// 200 before an encoding failure could surface.
		var buf bytes.Buffer
		spec := top.Spec()
		if err := topo.Encode(&buf, &spec); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(buf.Bytes())
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, top.DotCrossSocket())
	default: // json
		writeJSON(w, http.StatusOK, topologyResponse{
			Platform: platform,
			Seed:     seed,
			Contexts: top.NumHWContexts(),
			Cores:    top.NumCores(),
			Sockets:  top.NumSockets(),
			Nodes:    top.NumNodes(),
			SMTWays:  top.SMTWays(),
			Spec:     top.Spec(),
			Cached:   cached,
			ServedIn: time.Since(start).String(),
		})
	}
}

// placeResponse carries the placement's context assignment plus the derived
// Figure 7 report.
type placeResponse struct {
	Platform     string  `json:"platform"`
	Seed         uint64  `json:"seed"`
	Policy       string  `json:"policy"`
	NThreads     int     `json:"n_threads"`
	Contexts     []int   `json:"contexts"`
	NCores       int     `json:"n_cores"`
	CtxPerSocket []int   `json:"ctx_per_socket"`
	MaxLatency   int64   `json:"max_latency_cycles"`
	MinBandwidth float64 `json:"min_bandwidth_gbs"`
	Report       string  `json:"report"`
	ServedIn     string  `json:"served_in"`
}

func (s *server) handlePlace(w http.ResponseWriter, r *http.Request) {
	platform, seed, opt, err := s.query(r)
	if err != nil {
		writeErrStatus(w, err)
		return
	}
	q := r.URL.Query()
	policy := q.Get("policy")
	if policy == "" {
		writeErrStatus(w, fmt.Errorf("%w: missing ?policy= (one of: %s)", mctoperr.ErrInvalidRequest, strings.Join(mctop.PolicyNames(), ", ")))
		return
	}
	threads := 0
	if v := q.Get("threads"); v != "" {
		threads, err = strconv.Atoi(v)
		if err != nil || threads < 0 {
			writeErrStatus(w, fmt.Errorf("%w: bad threads %q", mctoperr.ErrInvalidRequest, v))
			return
		}
	}
	start := time.Now()
	pl, err := s.reg.PlaceContext(r.Context(), platform, seed, opt, policy, threads)
	if err != nil {
		// statusOf sorts the client's faults (unknown policy → 404, power
		// policy without power measurements or unsatisfiable options →
		// 400) from the server's (500).
		writeErrStatus(w, err)
		return
	}
	writeJSON(w, http.StatusOK, placeResponse{
		Platform:     platform,
		Seed:         seed,
		Policy:       pl.PolicyName(),
		NThreads:     pl.NThreads(),
		Contexts:     pl.Contexts(),
		NCores:       pl.NCores(),
		CtxPerSocket: pl.CtxPerSocket(),
		MaxLatency:   pl.MaxLatency(),
		MinBandwidth: pl.MinBandwidth(),
		Report:       pl.String(),
		ServedIn:     time.Since(start).String(),
	})
}

// maxBatchRequests bounds the placements one POST can demand, the
// connection-level backpressure of the batch API: a placement is cheap, but
// an unbounded batch is still an unbounded amount of work behind a single
// response deadline.
const maxBatchRequests = 1024

// batchRequest is the POST /v1/place/batch body. Seed is a pointer so an
// absent field gets the same default (42) the GET endpoints use.
type batchRequest struct {
	Platform string  `json:"platform"`
	Seed     *uint64 `json:"seed"`
	Reps     int     `json:"reps,omitempty"`
	Sampling *bool   `json:"sampling,omitempty"`
	Requests []struct {
		Policy  string `json:"policy"`
		Threads int    `json:"threads"`
	} `json:"requests"`
}

// batchItemResponse is one element of the batch answer: a placeResponse
// without the request-level fields, or an inline error.
type batchItemResponse struct {
	Policy       string  `json:"policy"`
	Error        string  `json:"error,omitempty"`
	NThreads     int     `json:"n_threads,omitempty"`
	Contexts     []int   `json:"contexts,omitempty"`
	NCores       int     `json:"n_cores,omitempty"`
	CtxPerSocket []int   `json:"ctx_per_socket,omitempty"`
	MaxLatency   int64   `json:"max_latency_cycles,omitempty"`
	MinBandwidth float64 `json:"min_bandwidth_gbs,omitempty"`
}

type batchResponse struct {
	Platform string              `json:"platform"`
	Seed     uint64              `json:"seed"`
	Results  []batchItemResponse `json:"results"`
	ServedIn string              `json:"served_in"`
}

// batchItem renders one batch answer — the buffered and streaming
// endpoints share it so their per-item shape cannot diverge.
func batchItem(requestedPolicy string, pl *mctop.Placement, err error) batchItemResponse {
	item := batchItemResponse{Policy: requestedPolicy}
	if err != nil {
		item.Error = err.Error()
		return item
	}
	item.Policy = pl.PolicyName()
	item.NThreads = pl.NThreads()
	item.Contexts = pl.Contexts()
	item.NCores = pl.NCores()
	item.CtxPerSocket = pl.CtxPerSocket()
	item.MaxLatency = pl.MaxLatency()
	item.MinBandwidth = pl.MinBandwidth()
	return item
}

func (s *server) handlePlaceBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("batch placement is POST-only"))
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErrStatus(w, fmt.Errorf("%w: batch body over %d bytes", mctoperr.ErrTooLarge, tooBig.Limit))
			return
		}
		writeErrStatus(w, fmt.Errorf("%w: bad batch body: %v", mctoperr.ErrInvalidRequest, err))
		return
	}
	if err := s.validatePlatform(req.Platform); err != nil {
		writeErrStatus(w, err)
		return
	}
	if len(req.Requests) == 0 {
		writeErrStatus(w, fmt.Errorf("%w: empty batch: provide at least one {policy, threads} request", mctoperr.ErrInvalidRequest))
		return
	}
	if len(req.Requests) > maxBatchRequests {
		writeErrStatus(w, fmt.Errorf("%w: batch of %d requests exceeds the limit of %d", mctoperr.ErrTooLarge, len(req.Requests), maxBatchRequests))
		return
	}
	var opt mctop.Options
	opt.Reps = s.defaultReps
	if req.Reps != 0 {
		if err := validateReps(req.Reps); err != nil {
			writeErrStatus(w, err)
			return
		}
		opt.Reps = req.Reps
	}
	opt.Sampling.Enabled = s.defaultSampling
	if req.Sampling != nil {
		opt.Sampling.Enabled = *req.Sampling
	}
	for i := range req.Requests {
		if req.Requests[i].Threads < 0 {
			writeErrStatus(w, fmt.Errorf("%w: request %d: bad threads %d", mctoperr.ErrInvalidRequest, i, req.Requests[i].Threads))
			return
		}
	}

	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	reqs := make([]mctop.PlaceRequest, len(req.Requests))
	for i, item := range req.Requests {
		reqs[i] = mctop.PlaceRequest{Policy: item.Policy, NThreads: item.Threads}
	}
	if r.URL.Query().Get("stream") == "1" {
		s.streamPlaceBatch(w, r, req.Platform, seed, opt, reqs)
		return
	}
	start := time.Now()
	results, err := s.reg.PlaceBatchContext(r.Context(), req.Platform, seed, opt, reqs)
	if err != nil {
		writeErrStatus(w, err)
		return
	}
	resp := batchResponse{
		Platform: req.Platform,
		Seed:     seed,
		Results:  make([]batchItemResponse, len(results)),
	}
	for i, res := range results {
		resp.Results[i] = batchItem(req.Requests[i].Policy, res.Placement, res.Err)
	}
	resp.ServedIn = time.Since(start).String()
	writeJSON(w, http.StatusOK, resp)
}

// streamPlaceBatch is the NDJSON variant of the batch endpoint
// (POST /v1/place/batch?stream=1): one batchItemResponse per line, written
// and flushed as each placement completes, so a client sweeping many
// configurations consumes results as they land instead of waiting for the
// slowest. Per-item failures are inline error objects; only a failure to
// resolve the topology itself — detected before the first line — fails
// the request with a status.
func (s *server) streamPlaceBatch(w http.ResponseWriter, r *http.Request, platform string, seed uint64, opt mctop.Options, reqs []mctop.PlaceRequest) {
	// Resolve the topology first: its failure (unknown platform, cancelled
	// cold inference) is request-level and must carry a status, which is
	// only possible before the 200 and the first line are committed.
	if _, _, err := s.reg.LookupTopologyContext(r.Context(), platform, seed, opt); err != nil {
		writeErrStatus(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // one compact JSON object per Encode call, newline-terminated
	for _, req := range reqs {
		if r.Context().Err() != nil {
			return // client gone; the stream is already truncated for them
		}
		pl, err := s.reg.PlaceContext(r.Context(), platform, seed, opt, req.Policy, req.NThreads)
		if err := enc.Encode(batchItem(req.Policy, pl, err)); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleExport is the fleet endpoint: GET /v1/export?key=<registry key>
// serves the entry as its interchange file — a `#key`-headed .mctop
// description file for topology keys, a .place sidecar for placement keys
// — exactly the bytes the spool tier persists, which is what the remote
// store tier on an edge daemon consumes. The key is parsed back into the
// request it encodes and resolved through the registry, so an origin
// serves from its cache/spool when warm and infers (singleflight, compute
// semaphore and all) when cold: one origin can feed a fleet of edges that
// never infer. Keys that do not round-trip through the registry's own key
// builder are 404s — they cannot name a cache entry this daemon could
// ever produce.
func (s *server) handleExport(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErrStatus(w, fmt.Errorf("%w: missing ?key= (a registry topology or placement key)", mctoperr.ErrInvalidRequest))
		return
	}
	var buf bytes.Buffer
	switch {
	case strings.HasPrefix(key, "topo|"):
		platform, seed, opt, err := registry.ParseTopoKey(key)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		if err := s.validateExport(platform, opt); err != nil {
			writeErrStatus(w, err)
			return
		}
		top, _, err := s.reg.LookupTopologyContext(r.Context(), platform, seed, opt)
		if err != nil {
			writeErrStatus(w, err)
			return
		}
		if err := spool.EncodeTopology(&buf, key, top); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	case strings.HasPrefix(key, "place|"):
		topoKey, policy, threads, err := registry.ParsePlaceKey(key)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		platform, seed, opt, err := registry.ParseTopoKey(topoKey)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		if err := s.validateExport(platform, opt); err != nil {
			writeErrStatus(w, err)
			return
		}
		pl, err := s.reg.PlaceContext(r.Context(), platform, seed, opt, policy, threads)
		if err != nil {
			writeErrStatus(w, err)
			return
		}
		if err := spool.EncodeSidecar(&buf, key, topoKey, pl); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	case strings.HasPrefix(key, "map|"):
		// Mapping keys identify the DAG by hash alone — the key cannot
		// reconstruct the DAG, so an origin serves mappings warm-only: a
		// mapping somebody POSTed to /v1/map is exportable; one nobody
		// computed is an honest 404 (the edge then computes locally). A
		// key that could never name an entry is a 400, per ParseMapKey's
		// ErrInvalidRequest contract.
		topoKey, _, _, _, _, err := registry.ParseMapKey(key)
		if err != nil {
			writeErrStatus(w, err)
			return
		}
		v, ok := s.reg.Store().Get(registry.KindMapping, key)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("mapping %q is not cached on this daemon", key))
			return
		}
		if err := spool.EncodeMapSidecar(&buf, key, topoKey, v.(*mctop.Mapping)); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	default:
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("%w: key %q is not a topology, placement or mapping key", mctoperr.ErrInvalidRequest, key))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.Bytes())
}

// validateExport applies the same request bounds to a parsed key that the
// query endpoints apply to their parameters: an edge's key must not demand
// work a direct request could not.
func (s *server) validateExport(platform string, opt mctop.Options) error {
	if err := s.validatePlatform(platform); err != nil {
		return err
	}
	return validateReps(opt.Normalized().Reps)
}

// statsResponse is registry.Stats plus the daemon's readiness view —
// additive fields, so clients decoding into registry.Stats keep working.
type statsResponse struct {
	registry.Stats
	Ready    bool           `json:"ready"`
	Degraded []degradedTier `json:"degraded,omitempty"`
}

// handleTraces dumps the tracer's bounded ring of finished, kept traces —
// oldest first, the local root leading each trace. JSON by default;
// ?format=ndjson emits one trace per line (what mctop-bench load and the
// CI stitching smoke scrape). The route is exempt from tracing itself, so
// reading traces never creates them. With -trace-sample 0 the ring is
// simply empty, not an error.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.tracer.Snapshot()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteJSON(w, traces)
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		trace.WriteNDJSON(w, traces)
	default:
		writeErrStatus(w, fmt.Errorf("%w: unknown format %q (json, ndjson)", mctoperr.ErrInvalidRequest, format))
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One snapshot, taken before any response byte is written: Stats()
	// reads every counter exactly once in a fixed order (see its doc), so
	// a response scraped under load is internally consistent and two
	// successive scrapes never show a counter moving backwards — the same
	// snapshot discipline the /metrics mirror uses.
	st := s.reg.Stats()
	ready, degraded := s.readyState()
	writeJSON(w, http.StatusOK, statsResponse{Stats: st, Ready: ready, Degraded: degraded})
}
