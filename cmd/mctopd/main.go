// Command mctopd is the MCTOP topology daemon: a long-running HTTP server
// that answers topology and placement queries over JSON, backed by the
// registry's memoization — the paper's "infer once, reuse everywhere"
// deployment model (Section 2) turned into a service. The first query for a
// (platform, seed, options) triple runs MCTOP-ALG; every later query is a
// cache hit, and concurrent first queries collapse into one inference.
//
// Usage:
//
//	mctopd -addr :8077 -cache 256
//
// Endpoints:
//
//	GET  /healthz                          liveness probe
//	GET  /v1/platforms                     the five simulated platforms
//	GET  /v1/policies                      the 12 placement policies
//	GET  /v1/topology?platform=Ivy&seed=42[&reps=201][&format=mctop|dot]
//	GET  /v1/place?platform=Ivy&seed=42&policy=RR_CORE&threads=8
//	POST /v1/place/batch                   many placements, one topology lookup
//	GET  /v1/stats                         registry hit/miss/eviction counters
//
// The batch endpoint answers many {policy, threads} requests against one
// topology in a single call — runtime systems resolving a whole sweep of
// placement configurations pay the registry lookup (and, cold, the O(N²)
// inference) once, and every placement is built from the topology's
// precomputed query index. Requests that fail (unknown policy, POWER on a
// machine without power measurements) report their error inline without
// failing the batch:
//
//	curl -s -X POST localhost:8077/v1/place/batch -d '{
//	  "platform": "Ivy", "seed": 42,
//	  "requests": [
//	    {"policy": "RR_CORE",  "threads": 8},
//	    {"policy": "CON_HWC",  "threads": 30},
//	    {"policy": "POWER",    "threads": 16}
//	  ]
//	}'
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	mctop "repro"
	"repro/internal/place"
	"repro/internal/topo"
)

func main() {
	var (
		addr  = flag.String("addr", ":8077", "listen address")
		cache = flag.Int("cache", 256, "maximum cached topologies + placements (LRU beyond)")
		reps  = flag.Int("reps", 201, "default repetitions per context pair")
	)
	flag.Parse()

	s := newServer(*cache, *reps)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute, // a cold SPARC inference at paper reps is slow
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("mctopd: serving topology queries on %s (cache %d entries)", *addr, *cache)
	log.Fatal(srv.ListenAndServe())
}

// server holds the daemon's registry and defaults; split from main so tests
// can drive the handlers through httptest.
type server struct {
	reg         *mctop.Registry
	defaultReps int
}

func newServer(cacheEntries, defaultReps int) *server {
	return &server{reg: mctop.NewRegistry(cacheEntries), defaultReps: defaultReps}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/platforms", s.handlePlatforms)
	mux.HandleFunc("/v1/policies", s.handlePolicies)
	mux.HandleFunc("/v1/topology", s.handleTopology)
	mux.HandleFunc("/v1/place", s.handlePlace)
	mux.HandleFunc("/v1/place/batch", s.handlePlaceBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok\n"))
}

func (s *server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"platforms": mctop.Platforms()})
}

func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"policies": mctop.PolicyNames()})
}

// validatePlatform rejects unknown platform names (the client's fault).
func validatePlatform(platform string) error {
	for _, p := range mctop.Platforms() {
		if p == platform {
			return nil
		}
	}
	return fmt.Errorf("unknown platform %q (one of: %s)", platform, strings.Join(mctop.Platforms(), ", "))
}

// validateReps bounds the work one request can demand: inference is
// O(N² · reps) and runs to completion once started, beyond any response
// timeout. 10000 is 5x the paper's n = 2000.
func validateReps(reps int) error {
	if reps < 1 || reps > 10000 {
		return fmt.Errorf("bad reps %d (want 1..10000)", reps)
	}
	return nil
}

// query pulls the common platform/seed/options parameters. seed defaults to
// 42, reps to the daemon default; a missing or unknown platform and every
// parse error are the client's fault (400).
func (s *server) query(r *http.Request) (platform string, seed uint64, opt mctop.Options, err error) {
	q := r.URL.Query()
	platform = q.Get("platform")
	if err := validatePlatform(platform); err != nil {
		return "", 0, opt, err
	}
	seed = 42
	if v := q.Get("seed"); v != "" {
		if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return "", 0, opt, fmt.Errorf("bad seed %q: %v", v, err)
		}
	}
	opt.Reps = s.defaultReps
	if v := q.Get("reps"); v != "" {
		reps, perr := strconv.Atoi(v)
		if perr != nil {
			return "", 0, opt, fmt.Errorf("bad reps %q: %v", v, perr)
		}
		if err := validateReps(reps); err != nil {
			return "", 0, opt, err
		}
		opt.Reps = reps
	}
	return platform, seed, opt, nil
}

// topologyResponse is the JSON view of a topology: the full spec (the same
// data the .mctop description file carries) plus summary dimensions.
type topologyResponse struct {
	Platform string    `json:"platform"`
	Seed     uint64    `json:"seed"`
	Contexts int       `json:"contexts"`
	Cores    int       `json:"cores"`
	Sockets  int       `json:"sockets"`
	Nodes    int       `json:"nodes"`
	SMTWays  int       `json:"smt_ways"`
	Spec     topo.Spec `json:"spec"`
	Cached   bool      `json:"cached"`
	ServedIn string    `json:"served_in"`
}

func (s *server) handleTopology(w http.ResponseWriter, r *http.Request) {
	platform, seed, opt, err := s.query(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Validate the format before paying for an inference: a typo must not
	// cost an O(N²) measurement run.
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "mctop", "dot":
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json, mctop, dot)", format))
		return
	}
	start := time.Now()
	top, cached, err := s.reg.LookupTopology(platform, seed, opt)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	switch format {
	case "mctop":
		// Encode to a buffer first: writing straight to w would commit a
		// 200 before an encoding failure could surface.
		var buf bytes.Buffer
		spec := top.Spec()
		if err := topo.Encode(&buf, &spec); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(buf.Bytes())
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, top.DotCrossSocket())
	default: // json
		writeJSON(w, http.StatusOK, topologyResponse{
			Platform: platform,
			Seed:     seed,
			Contexts: top.NumHWContexts(),
			Cores:    top.NumCores(),
			Sockets:  top.NumSockets(),
			Nodes:    top.NumNodes(),
			SMTWays:  top.SMTWays(),
			Spec:     top.Spec(),
			Cached:   cached,
			ServedIn: time.Since(start).String(),
		})
	}
}

// placeResponse carries the placement's context assignment plus the derived
// Figure 7 report.
type placeResponse struct {
	Platform     string  `json:"platform"`
	Seed         uint64  `json:"seed"`
	Policy       string  `json:"policy"`
	NThreads     int     `json:"n_threads"`
	Contexts     []int   `json:"contexts"`
	NCores       int     `json:"n_cores"`
	CtxPerSocket []int   `json:"ctx_per_socket"`
	MaxLatency   int64   `json:"max_latency_cycles"`
	MinBandwidth float64 `json:"min_bandwidth_gbs"`
	Report       string  `json:"report"`
	ServedIn     string  `json:"served_in"`
}

func (s *server) handlePlace(w http.ResponseWriter, r *http.Request) {
	platform, seed, opt, err := s.query(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	policy := q.Get("policy")
	if policy == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing ?policy= (one of: %s)", strings.Join(mctop.PolicyNames(), ", ")))
		return
	}
	threads := 0
	if v := q.Get("threads"); v != "" {
		threads, err = strconv.Atoi(v)
		if err != nil || threads < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad threads %q", v))
			return
		}
	}
	start := time.Now()
	pl, err := s.reg.Place(platform, seed, opt, policy, threads)
	if err != nil {
		// Client-correctable placement errors (unknown policy, power
		// policy without power measurements, unsatisfiable options) are
		// 400s; inference failures are the server's.
		if errors.Is(err, place.ErrInvalid) {
			writeErr(w, http.StatusBadRequest, err)
		} else {
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, placeResponse{
		Platform:     platform,
		Seed:         seed,
		Policy:       pl.Policy().String(),
		NThreads:     pl.NThreads(),
		Contexts:     pl.Contexts(),
		NCores:       pl.NCores(),
		CtxPerSocket: pl.CtxPerSocket(),
		MaxLatency:   pl.MaxLatency(),
		MinBandwidth: pl.MinBandwidth(),
		Report:       pl.String(),
		ServedIn:     time.Since(start).String(),
	})
}

// maxBatchRequests bounds the placements one POST can demand, the
// connection-level backpressure of the batch API: a placement is cheap, but
// an unbounded batch is still an unbounded amount of work behind a single
// response deadline.
const maxBatchRequests = 1024

// batchRequest is the POST /v1/place/batch body. Seed is a pointer so an
// absent field gets the same default (42) the GET endpoints use.
type batchRequest struct {
	Platform string  `json:"platform"`
	Seed     *uint64 `json:"seed"`
	Reps     int     `json:"reps,omitempty"`
	Requests []struct {
		Policy  string `json:"policy"`
		Threads int    `json:"threads"`
	} `json:"requests"`
}

// batchItemResponse is one element of the batch answer: a placeResponse
// without the request-level fields, or an inline error.
type batchItemResponse struct {
	Policy       string  `json:"policy"`
	Error        string  `json:"error,omitempty"`
	NThreads     int     `json:"n_threads,omitempty"`
	Contexts     []int   `json:"contexts,omitempty"`
	NCores       int     `json:"n_cores,omitempty"`
	CtxPerSocket []int   `json:"ctx_per_socket,omitempty"`
	MaxLatency   int64   `json:"max_latency_cycles,omitempty"`
	MinBandwidth float64 `json:"min_bandwidth_gbs,omitempty"`
}

type batchResponse struct {
	Platform string              `json:"platform"`
	Seed     uint64              `json:"seed"`
	Results  []batchItemResponse `json:"results"`
	ServedIn string              `json:"served_in"`
}

func (s *server) handlePlaceBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("batch placement is POST-only"))
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %v", err))
		return
	}
	if err := validatePlatform(req.Platform); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty batch: provide at least one {policy, threads} request"))
		return
	}
	if len(req.Requests) > maxBatchRequests {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch of %d requests exceeds the limit of %d", len(req.Requests), maxBatchRequests))
		return
	}
	var opt mctop.Options
	opt.Reps = s.defaultReps
	if req.Reps != 0 {
		if err := validateReps(req.Reps); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		opt.Reps = req.Reps
	}
	for i := range req.Requests {
		if req.Requests[i].Threads < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("request %d: bad threads %d", i, req.Requests[i].Threads))
			return
		}
	}

	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	reqs := make([]mctop.PlaceRequest, len(req.Requests))
	for i, item := range req.Requests {
		reqs[i] = mctop.PlaceRequest{Policy: item.Policy, NThreads: item.Threads}
	}
	start := time.Now()
	results, err := s.reg.PlaceBatch(req.Platform, seed, opt, reqs)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := batchResponse{
		Platform: req.Platform,
		Seed:     seed,
		Results:  make([]batchItemResponse, len(results)),
	}
	for i, res := range results {
		item := &resp.Results[i]
		item.Policy = req.Requests[i].Policy
		if res.Err != nil {
			item.Error = res.Err.Error()
			continue
		}
		pl := res.Placement
		item.Policy = pl.Policy().String()
		item.NThreads = pl.NThreads()
		item.Contexts = pl.Contexts()
		item.NCores = pl.NCores()
		item.CtxPerSocket = pl.CtxPerSocket()
		item.MaxLatency = pl.MaxLatency()
		item.MinBandwidth = pl.MinBandwidth()
	}
	resp.ServedIn = time.Since(start).String()
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Stats())
}
