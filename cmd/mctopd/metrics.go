// mctopd's Prometheus instrumentation: every handler runs under one
// middleware (instrument) that counts and times the request per route,
// attributes the tier that served it, and writes a structured request log
// line. Registry and store-tier counters are not double-counted on the
// request path — a BeforeScrape hook mirrors their atomic snapshots into
// the exposition, so /metrics and /v1/stats always agree.
package main

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/remote"
	"repro/internal/trace"
)

// daemonMetrics is mctopd's metric set over internal/metrics.
type daemonMetrics struct {
	reg *metrics.Registry

	httpRequests *metrics.CounterVec   // route, method, code
	httpDuration *metrics.HistogramVec // route
	shed         *metrics.Counter
	servedByTier *metrics.CounterVec // tier ("lru", "spool", "remote", "computed", "coalesced")
	inferDur     *metrics.Histogram
	placeDur     *metrics.Histogram
	mapDur       *metrics.Histogram

	// Mirrored from registry.Stats() at scrape time (BeforeScrape).
	regHits        *metrics.Counter
	regMisses      *metrics.Counter
	regInferences  *metrics.Counter
	regPlacements  *metrics.Counter
	regMappings    *metrics.Counter
	regEvictions   *metrics.Counter
	regEntries     *metrics.Gauge
	storeGets      *metrics.CounterVec // tier, kind, result ("hit" | "miss")
	storeEvictions *metrics.CounterVec // tier, kind
	storeEntries   *metrics.GaugeVec   // tier, kind
	storePuts      *metrics.CounterVec // tier
	storeErrors    *metrics.CounterVec // tier

	// Readiness and corruption accounting (mirrored at scrape time).
	ready            *metrics.Gauge
	tierDegraded     *metrics.GaugeVec // tier — 1 while the tier's probe reports degraded
	spoolQuarantined *metrics.Gauge

	// Remote tier (edge mode only; families exist either way so the
	// exposition shape is stable).
	remoteFetchDur   *metrics.HistogramVec // origin, outcome
	remoteBackoff    *metrics.GaugeVec     // origin — 1 while the backoff window is open
	remoteFails      *metrics.GaugeVec     // origin — consecutive origin-level failures
	remoteNegEntries *metrics.GaugeVec     // origin — live negative-cache keys
}

func newDaemonMetrics() *daemonMetrics {
	r := metrics.NewRegistry()
	d := &daemonMetrics{
		reg: r,
		httpRequests: r.NewCounterVec("mctopd_http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code"),
		httpDuration: r.NewHistogramVec("mctopd_http_request_duration_seconds",
			"HTTP request wall time, by route.",
			metrics.DefDurationBuckets, "route"),
		shed: r.NewCounter("mctopd_http_shed_total",
			"Requests shed with 503 by the in-flight bound."),
		servedByTier: r.NewCounterVec("mctopd_requests_served_by_tier_total",
			"Registry lookups attributed to the tier that answered: a store tier name, \"computed\" (this request ran the computation) or \"coalesced\" (joined another request's computation).",
			"tier"),
		inferDur: r.NewHistogram("mctopd_inference_duration_seconds",
			"Wall time of executed topology inferences (cache hits not included).",
			metrics.DefDurationBuckets),
		placeDur: r.NewHistogram("mctopd_placement_duration_seconds",
			"Wall time of computed placements (cache hits not included).",
			metrics.DefDurationBuckets),
		mapDur: r.NewHistogram("mctopd_mapping_duration_seconds",
			"Wall time of computed task-graph mappings (cache hits not included).",
			metrics.DefDurationBuckets),
		regHits: r.NewCounter("mctopd_registry_hits_total",
			"Registry lookups answered from the store (any tier)."),
		regMisses: r.NewCounter("mctopd_registry_misses_total",
			"Registry lookups that computed or joined a computation."),
		regInferences: r.NewCounter("mctopd_registry_inferences_total",
			"Topology inferences actually executed."),
		regPlacements: r.NewCounter("mctopd_registry_placements_total",
			"Placements actually computed."),
		regMappings: r.NewCounter("mctopd_registry_mappings_total",
			"Task-graph mappings actually computed."),
		regEvictions: r.NewCounter("mctopd_registry_evictions_total",
			"Entries dropped by a capacity bound, summed over tiers."),
		regEntries: r.NewGauge("mctopd_registry_entries",
			"Entries resident in the fastest store tier."),
		storeGets: r.NewCounterVec("mctopd_store_gets_total",
			"Store-tier lookups, by tier, entry kind and result.",
			"tier", "kind", "result"),
		storeEvictions: r.NewCounterVec("mctopd_store_evictions_total",
			"Store-tier evictions, by tier and entry kind.",
			"tier", "kind"),
		storeEntries: r.NewGaugeVec("mctopd_store_entries",
			"Entries resident per store tier and entry kind.",
			"tier", "kind"),
		storePuts: r.NewCounterVec("mctopd_store_puts_total",
			"Store-tier writes (including tier promotions), by tier.",
			"tier"),
		storeErrors: r.NewCounterVec("mctopd_store_errors_total",
			"Entries a tier failed to read or write (each degraded to a miss or dropped write), by tier.",
			"tier"),
		ready: r.NewGauge("mctopd_ready",
			"1 when every readiness probe passes (what /readyz answers 200 on), else 0."),
		tierDegraded: r.NewGaugeVec("mctopd_tier_degraded",
			"1 while the tier's readiness probe reports degraded (spool read-only, origin backoff open), else 0.",
			"tier"),
		spoolQuarantined: r.NewGauge(
			"mctopd_spool_quarantined_files",
			"Undecodable or torn files the spool moved to its quarantine/ directory; nonzero means on-disk corruption happened."),
		remoteFetchDur: r.NewHistogramVec("mctopd_remote_fetch_duration_seconds",
			"Upstream /v1/export fetch wall time, by origin and outcome (ok, origin_fault, key_fault).",
			metrics.DefDurationBuckets, "origin", "outcome"),
		remoteBackoff: r.NewGaugeVec("mctopd_remote_backoff_active",
			"1 while the origin-level backoff window is open (fetches are skipped), else 0.",
			"origin"),
		remoteFails: r.NewGaugeVec("mctopd_remote_backoff_consecutive_failures",
			"Consecutive origin-level fetch failures (the backoff exponent).",
			"origin"),
		remoteNegEntries: r.NewGaugeVec("mctopd_remote_negative_cache_entries",
			"Live per-key negative-cache entries for the origin.",
			"origin"),
	}
	return d
}

// observeServer wires the scrape-time mirror: one registry.Stats() snapshot
// per scrape feeds the mctopd_registry_* and mctopd_store_* families, so
// /metrics and /v1/stats are two views of the same counters. It also
// installs the registry Observer feeding the compute-duration histograms,
// and the in-flight gauges.
func (d *daemonMetrics) observeServer(s *server) {
	d.reg.NewGaugeFunc("mctopd_http_inflight_requests",
		"Requests currently holding an in-flight slot.",
		func() float64 {
			if s.inflight == nil {
				return 0
			}
			return float64(len(s.inflight))
		})
	d.reg.NewGaugeFunc("mctopd_http_inflight_limit",
		"The in-flight bound beyond which requests are shed (0 = unbounded).",
		func() float64 {
			if s.inflight == nil {
				return 0
			}
			return float64(cap(s.inflight))
		})
	s.reg.Instrument(&registry.Observer{
		OnInference: func(dur time.Duration, err error) { d.inferDur.Observe(dur.Seconds()) },
		OnPlacement: func(dur time.Duration, err error) { d.placeDur.Observe(dur.Seconds()) },
		OnMapping:   func(dur time.Duration, err error) { d.mapDur.Observe(dur.Seconds()) },
	})
	d.reg.BeforeScrape(func() {
		st := s.reg.Stats()
		d.regHits.Set(st.Hits)
		d.regMisses.Set(st.Misses)
		d.regInferences.Set(st.Inferences)
		d.regPlacements.Set(st.Placements)
		d.regMappings.Set(st.Mappings)
		d.regEvictions.Set(st.Evictions)
		d.regEntries.Set(float64(st.Entries))
		var quarantined float64
		for _, tier := range st.Tiers {
			d.storePuts.With(tier.Tier).Set(tier.Puts)
			d.storeErrors.With(tier.Tier).Set(tier.Errors)
			quarantined += float64(tier.Quarantined)
			for kind, ks := range tier.Kinds {
				d.storeGets.With(tier.Tier, kind, "hit").Set(ks.Hits)
				d.storeGets.With(tier.Tier, kind, "miss").Set(ks.Misses)
				d.storeEvictions.With(tier.Tier, kind).Set(ks.Evictions)
				d.storeEntries.With(tier.Tier, kind).Set(float64(ks.Entries))
			}
		}
		d.spoolQuarantined.Set(quarantined)
		// Probe each tier so a healed tier drops back to 0 (s.readiness is
		// fixed after startup; the closure reads its current probes).
		ready := 1.0
		for _, p := range s.readiness {
			v := 0.0
			if bad, _ := p.check(); bad {
				v, ready = 1, 0
			}
			d.tierDegraded.With(p.tier).Set(v)
		}
		d.ready.Set(ready)
	})
}

// observeRemote mirrors the remote tier's backoff state under the given
// origin label (edge mode only).
func (d *daemonMetrics) observeRemote(origin string, rs *remote.Remote) {
	d.reg.BeforeScrape(func() {
		b := rs.Backoff()
		active := 0.0
		if !b.DownUntil.IsZero() && time.Now().Before(b.DownUntil) {
			active = 1
		}
		d.remoteBackoff.With(origin).Set(active)
		d.remoteFails.With(origin).Set(float64(b.ConsecutiveFails))
		d.remoteNegEntries.With(origin).Set(float64(b.NegativeKeys))
	})
}

// fetchObserver is the remote.WithObserver callback feeding the per-origin
// fetch-latency histogram.
func (d *daemonMetrics) fetchObserver(origin string) func(time.Duration, string) {
	return func(dur time.Duration, outcome string) {
		d.remoteFetchDur.With(origin, outcome).Observe(dur.Seconds())
	}
}

// routeLabel folds request paths onto the daemon's fixed route set so the
// route label stays bounded whatever clients probe for.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/readyz", "/metrics",
		"/v1/platforms", "/v1/policies", "/v1/topology", "/v1/place",
		"/v1/place/batch", "/v1/map", "/v1/export", "/v1/stats",
		"/v1/debug/traces":
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	return "other"
}

// statusRecorder captures the response status for the request counter and
// log line. It forwards Flush so the NDJSON streaming endpoint keeps its
// per-line flushes through the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument is the outermost middleware: it wraps every route (the
// backpressure layer included, so shed 503s are counted and logged like any
// response) with the per-route counter and duration histogram, the
// served-by-tier attribution, the request's root span and ID, and one
// structured log line per request.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.URL.Path)
		ctx, served := registry.ContextWithServed(r.Context())

		// Request ID: honor the caller's X-Request-ID, mint one otherwise
		// (RequestID works on a disabled tracer), and echo it on every
		// response — instrument is outermost, so the shedding layer's 503s
		// and the deadline layer's 504s carry it too.
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = s.tracer.RequestID()
		}
		w.Header().Set("X-Request-ID", reqID)

		// Root span, stitched into the caller's trace when the request
		// carries a traceparent (the edge's remote tier sends one). Probe
		// and scrape routes never open spans — a Prometheus poll must not
		// occupy ring slots or skew sampling.
		var sp *trace.Span
		if !exemptFromTracing(r.URL.Path) {
			ctx, sp = s.tracer.StartRoot(ctx, "http "+route, r.Header.Get("traceparent"))
			sp.SetAttr("route", route)
			sp.SetAttr("method", r.Method)
			sp.SetAttr("request_id", reqID)
		}

		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sr, r.WithContext(ctx))
		dur := time.Since(start)
		if sr.status == 0 {
			sr.status = http.StatusOK // handler wrote nothing; net/http sends 200
		}
		if sp != nil {
			sp.SetInt("status", int64(sr.status))
			if sr.status >= 500 {
				// 5xx marks the span failed, so the trace is kept whatever
				// the head decision said — errors are the traces worth
				// reading.
				sp.SetStatus(http.StatusText(sr.status))
			}
			if served.Tier != "" {
				sp.SetAttr("tier", served.Tier)
			}
			sp.End()
		}
		s.metrics.httpRequests.With(route, r.Method, strconv3(sr.status)).Inc()
		s.metrics.httpDuration.With(route).Observe(dur.Seconds())
		if served.Tier != "" {
			s.metrics.servedByTier.With(served.Tier).Inc()
		}
		if route != "/healthz" && route != "/readyz" && route != "/metrics" {
			attrs := []any{
				"route", route,
				"method", r.Method,
				"status", sr.status,
				"dur", dur,
				"request_id", reqID,
			}
			if sp != nil {
				attrs = append(attrs, "trace_id", sp.TraceIDString(), "span_id", sp.SpanIDString())
			}
			q := r.URL.Query()
			if v := q.Get("platform"); v != "" {
				attrs = append(attrs, "platform", v)
			}
			if v := q.Get("policy"); v != "" {
				attrs = append(attrs, "policy", v)
			}
			if v := q.Get("key"); v != "" {
				attrs = append(attrs, "key", v)
			}
			if served.Tier != "" {
				attrs = append(attrs, "tier", served.Tier)
			}
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request", slog.Group("", attrs...))
		}
	})
}

// strconv3 renders the three-digit HTTP statuses without strconv.Itoa's
// allocation on the hot path (any out-of-range status falls back).
func strconv3(status int) string {
	if status >= 100 && status < 600 {
		var b [3]byte
		b[0] = byte('0' + status/100)
		b[1] = byte('0' + status/10%10)
		b[2] = byte('0' + status%10)
		return string(b[:])
	}
	return strconv.Itoa(status)
}
