package main

// The consistent-snapshot guard for /v1/stats and /metrics: scraped
// repeatedly while request goroutines hammer the daemon, every counter in
// both views must be monotonically non-decreasing scrape over scrape —
// the observable property the fixed read order in Registry.Stats() (and
// the snapshot-then-encode handleStats) exists to provide.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestStatsMonotonicUnderLoad(t *testing.T) {
	s, release := scriptServer()
	s.inflight = nil // no shedding: the load must actually move counters
	release()
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seeds := []string{"1", "2", "3"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/topology?platform=Ivy&seed=" + seeds[(id+i)%len(seeds)])
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}(w)
	}

	prevStats := map[string]float64{}
	prevMetrics := map[string]float64{}
	for i := 0; i < 40; i++ {
		// /v1/stats: flatten the registry counters and per-tier hit/miss.
		_, body := get(t, ts, "/v1/stats")
		st := decodeStats(t, body)
		flat := map[string]float64{
			"hits":       float64(st.Hits),
			"misses":     float64(st.Misses),
			"inferences": float64(st.Inferences),
		}
		for _, tier := range st.Tiers {
			flat[tier.Tier+".hits"] = float64(tier.Hits)
			flat[tier.Tier+".misses"] = float64(tier.Misses)
		}
		for k, v := range flat {
			if prev, ok := prevStats[k]; ok && v < prev {
				t.Fatalf("scrape %d: /v1/stats %s went backwards: %g -> %g", i, k, prev, v)
			}
			prevStats[k] = v
		}

		// /metrics: every counter-typed family must be monotone too (the
		// scrape parses or scrapeMetrics fails the test).
		m := scrapeMetrics(t, ts)
		for k, v := range m {
			if !strings.Contains(k, "_total") && !strings.HasSuffix(k, "_count") &&
				!strings.Contains(k, "_count{") {
				continue // gauges may move either way
			}
			if prev, ok := prevMetrics[k]; ok && v < prev {
				t.Fatalf("scrape %d: /metrics %s went backwards: %g -> %g", i, k, prev, v)
			}
			prevMetrics[k] = v
		}
	}
	close(stop)
	wg.Wait()

	// The load moved the counters at all (the monotone check above is
	// vacuous on a dead server).
	if prevStats["hits"] == 0 {
		t.Error("no hits observed — the background load never landed")
	}
}
