package main

// Tests for the /v1/export fleet endpoint: it must serve the exact
// interchange bytes the spool would persist (a #key-headed description
// file or a .place sidecar), resolve cold keys through the registry, and
// reject keys that could never name one of this daemon's cache entries.

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"net/url"
	"testing"

	mctop "repro"
	"repro/internal/registry"
	"repro/internal/spool"
)

func exportPath(key string) string {
	return "/v1/export?key=" + url.QueryEscape(key)
}

func TestExportTopologyMatchesSpoolFormat(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	opt := mctop.NewOptions(mctop.WithReps(51))
	key := registry.TopoKey("Ivy", 42, opt)
	resp, body := get(t, ts, exportPath(key))
	if resp.StatusCode != 200 {
		t.Fatalf("export: %d %s", resp.StatusCode, body)
	}
	gotKey, top, err := spool.DecodeTopology(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exported body does not decode: %v", err)
	}
	if gotKey != key {
		t.Fatalf("exported key header %q, want %q", gotKey, key)
	}
	// The body is byte-for-byte what the spool tier would write.
	var want bytes.Buffer
	if err := spool.EncodeTopology(&want, key, top); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatal("exported body differs from the spool encoding of its own topology")
	}
	// And it matches the plain topology endpoint's .mctop rendering,
	// modulo the key header.
	_, mct := get(t, ts, "/v1/topology?platform=Ivy&seed=42&reps=51&format=mctop")
	if !bytes.HasSuffix(body, mct) {
		t.Fatal("exported description body differs from ?format=mctop")
	}
}

func TestExportPlacementSidecar(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	opt := mctop.NewOptions(mctop.WithReps(51))
	topoKey := registry.TopoKey("Ivy", 42, opt)
	key := fmt.Sprintf("place|%s|MCTOP_PLACE_RR_CORE|8", topoKey)
	resp, body := get(t, ts, exportPath(key))
	if resp.StatusCode != 200 {
		t.Fatalf("export placement: %d %s", resp.StatusCode, body)
	}
	side, err := spool.DecodeSidecar(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exported sidecar does not decode: %v", err)
	}
	if side.Key != key || side.TopoKey != topoKey || side.Policy != "MCTOP_PLACE_RR_CORE" {
		t.Fatalf("sidecar = %+v", side)
	}
	if len(side.Ctxs) != 8 {
		t.Fatalf("sidecar has %d contexts, want 8", len(side.Ctxs))
	}
}

func TestExportRejectsBadKeys(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	opt := mctop.NewOptions(mctop.WithReps(51))
	good := registry.TopoKey("Ivy", 42, opt)
	cases := []struct {
		name   string
		path   string
		status int
	}{
		{"missing key", "/v1/export", 400},
		{"garbage key", exportPath("not-a-key"), 404},
		{"truncated key", exportPath("topo|Ivy|42"), 404},
		{"non-canonical key", exportPath(good + " "), 404},
		{"unknown platform", exportPath(registry.TopoKey("VAX", 1, opt)), 404},
		{"oversized reps", exportPath(registry.TopoKey("Ivy", 42, mctop.NewOptions(mctop.WithReps(99999)))), 400},
		{"bad embedded topo key", exportPath("place|topo|junk|MCTOP_PLACE_RR_CORE|8"), 404},
		{"unknown policy", exportPath("place|" + good + "|NO_SUCH_POLICY|8"), 404},
	}
	for _, c := range cases {
		resp, body := get(t, ts, c.path)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.status)
		}
	}
}
