package main

// The chaos acceptance test: a two-daemon fleet (origin + spool-and-remote
// edge) under the closed-loop load harness while fault injection flaps the
// origin, truncates fetched bodies, tears spool writes and poisons spool
// reads. The serving contract is absolute — every 200 carries bytes
// identical to the healthy-phase goldens, failures are honest error
// statuses, nothing hangs — and the daemon must report its own damage:
// /readyz flips to 503 while tiers are degraded and back to 200 as they
// heal, and the spool's quarantine counter surfaces on /v1/stats.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	mctop "repro"
	"repro/internal/faultinject"
	"repro/internal/loadgen"
	"repro/internal/mctoperr"
	"repro/internal/remote"
	"repro/internal/spool"
)

// chaosStats decodes the readiness and quarantine view of /v1/stats.
func chaosStats(t *testing.T, ts *httptest.Server) (ready bool, degraded []string, quarantined int64) {
	t.Helper()
	resp, body := get(t, ts, "/v1/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st struct {
		Ready    bool `json:"ready"`
		Degraded []struct {
			Tier string `json:"tier"`
		} `json:"degraded"`
		Tiers []struct {
			Quarantined int64 `json:"quarantined"`
		} `json:"tiers"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	for _, d := range st.Degraded {
		degraded = append(degraded, d.Tier)
	}
	for _, tier := range st.Tiers {
		quarantined += tier.Quarantined
	}
	return st.Ready, degraded, quarantined
}

// TestChaosMapperDegradesAndHeals drives the registry.map injection point
// through the same wiring run() builds for -faults: an injected mapping
// failure is an honest 503 + Retry-After (never a wrong assignment), warm
// mappings keep serving from cache throughout, /readyz flips to 503 with
// the mapper tier listed, and the first clean compute heals it back.
func TestChaosMapperDegradesAndHeals(t *testing.T) {
	fs := faultinject.New(11)
	var mapperFailed atomic.Bool
	reg := mctop.NewRegistry(64, mctop.WithMapWrapper(func(next mctop.MapFunc) mctop.MapFunc {
		return func(ctx context.Context, top *mctop.Topology, d *mctop.TaskDAG, opt mctop.MapOptions) (*mctop.Mapping, error) {
			if o, fired := fs.Eval(faultinject.RegistryMap); fired {
				if err := o.Delay(ctx); err != nil {
					return nil, err
				}
				if o.Mode != "slow" {
					mapperFailed.Store(true)
					return nil, fmt.Errorf("%w: mapper: %v", mctoperr.ErrSaturated, o.Err(faultinject.RegistryMap))
				}
			}
			m, err := next(ctx, top, d, opt)
			if err == nil {
				mapperFailed.Store(false)
			}
			return m, err
		}
	}))
	s := newServerWith(reg, 51, 32)
	s.readiness = []readyProbe{{tier: "mapper", check: func() (bool, string) {
		if mapperFailed.Load() {
			return true, "last mapping compute failed"
		}
		return false, ""
	}}}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	warm := mapBody(t, mapRequest{Platform: "Ivy", DAG: mapTestDAG()})
	cold := func(name string) string {
		d := mapTestDAG()
		d.Name = name
		d.Nodes[0].Work += int64(len(name)) // distinct hash → cache miss
		return mapBody(t, mapRequest{Platform: "Ivy", DAG: d})
	}

	// Healthy: warm one mapping, readiness green.
	if resp, raw := postMap(t, ts, warm); resp.StatusCode != 200 {
		t.Fatalf("healthy map: %d %s", resp.StatusCode, raw)
	}
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != 200 {
		t.Fatalf("/readyz = %d before any fault", resp.StatusCode)
	}

	// Two computes fail; cache hits never touch the injection point.
	fs.Add(faultinject.Fault{Point: faultinject.RegistryMap, Mode: "fail", Count: 2})
	for i := 0; i < 2; i++ {
		resp, raw := postMap(t, ts, cold(fmt.Sprintf("miss-%d", i)))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("faulted map %d: %d %s, want 503", i, resp.StatusCode, raw)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("faulted map %d: 503 without Retry-After", i)
		}
	}
	if resp, raw := postMap(t, ts, warm); resp.StatusCode != 200 {
		t.Fatalf("warm map during faults: %d %s, want cached 200", resp.StatusCode, raw)
	}
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with failed mapper, want 503", resp.StatusCode)
	}
	if ready, degraded, _ := chaosStats(t, ts); ready || len(degraded) != 1 || degraded[0] != "mapper" {
		t.Fatalf("stats hide the mapper degradation: ready=%v degraded=%v", ready, degraded)
	}

	// The rules are spent: the next fresh compute succeeds and heals.
	if resp, raw := postMap(t, ts, cold("heal")); resp.StatusCode != 200 {
		t.Fatalf("post-fault map: %d %s", resp.StatusCode, raw)
	}
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != 200 {
		t.Fatalf("/readyz = %d after a clean compute, want 200", resp.StatusCode)
	}
}

func TestChaosFleetServesOnlyGoldenBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos integration run")
	}
	originSrv, _ := spoolServer(t, t.TempDir())
	origin := httptest.NewServer(originSrv.routes())
	defer origin.Close()

	// One fault set drives every injection point on the edge; rules are
	// added and cleared per phase.
	fs := faultinject.New(7)

	// Pre-seeded on-disk corruption: the startup scan must quarantine this
	// file, not choke on it or rescan it forever.
	edgeDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(edgeDir, "deadbeef.mctop"),
		[]byte("garbage, not a description file\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	sp, err := spool.New(edgeDir, spool.WithFaults(fs), spool.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	rs := remote.New(origin.URL,
		remote.WithHTTPClient(&http.Client{
			Transport: faultinject.Transport(fs, faultinject.RemoteFetch, http.DefaultTransport),
		}),
		// Short windows so the heal phase is seconds, not the defaults.
		remote.WithNegTTL(100*time.Millisecond),
		remote.WithBackoffMax(500*time.Millisecond),
		remote.WithRetries(1, 2*time.Millisecond),
		remote.WithLogf(t.Logf))
	reg := mctop.NewRegistry(0, mctop.WithStore(
		mctop.NewTieredStore(mctop.NewLRUStore(256, 0), sp, rs)))
	defer reg.Close()
	s := newServerWith(reg, 51, 32)
	s.readiness = []readyProbe{ // the probes run() wires for -spool-dir + -upstream
		{tier: "spool", check: sp.Degraded},
		{tier: "remote", check: func() (bool, string) {
			b := rs.Backoff()
			if !b.DownUntil.IsZero() && time.Now().Before(b.DownUntil) {
				return true, "origin backoff window open"
			}
			return false, ""
		}},
	}
	edge := httptest.NewServer(s.routes())
	defer edge.Close()

	ready, _, quarantined := chaosStats(t, edge)
	if quarantined < 1 {
		t.Fatalf("startup scan quarantined %d files, want >= 1", quarantined)
	}
	if !ready {
		t.Fatal("daemon not ready before any fault")
	}

	state := loadgen.NewChaosState()
	runLoad := func(n int64) *loadgen.Report {
		t.Helper()
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			Target:       edge.URL,
			Workers:      3,
			Duration:     2 * time.Minute, // the request bound fires first
			MaxRequests:  n,
			Mix:          loadgen.Mix{Topology: 2, Place: 2, MapDAG: 1, Batch: 1, Stream: 1},
			Platforms:    []string{"Ivy"},
			Reps:         51,
			WarmSeeds:    2,
			Policies:     []string{"RR_CORE", "RR_HWC"},
			BatchSize:    4,
			MaxThreads:   8,
			Seed:         1,
			Chaos:        true,
			ChaosTimeout: 30 * time.Second,
			ChaosState:   state,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Phase 1 — healthy: seed the goldens the later phases are held to.
	rep := runLoad(40)
	if rep.Corrupt != 0 || rep.Hangs != 0 || !rep.OK() {
		t.Fatalf("healthy phase violated the contract: corrupt=%d hangs=%d fails=%v",
			rep.Corrupt, rep.Hangs, rep.SLOFailures)
	}

	// Phase 2 — chaos: the edge must keep serving golden bytes (local
	// re-inference is the escape hatch behind every degraded tier), with
	// zero hangs. Honest 5xx are allowed; corrupt 200s are not.
	fs.Add(
		faultinject.Fault{Point: faultinject.RemoteFetch, Mode: "refused", Prob: 0.4},
		faultinject.Fault{Point: faultinject.RemoteFetch, Mode: "truncate", Prob: 0.4},
		faultinject.Fault{Point: faultinject.RemoteFetch, Mode: "status", Status: 503, Prob: 0.5},
		faultinject.Fault{Point: faultinject.SpoolWrite, Mode: "torn", Prob: 0.3},
		faultinject.Fault{Point: faultinject.SpoolRead, Mode: "fail", Prob: 0.3},
	)
	rep = runLoad(80)
	if rep.Corrupt != 0 {
		t.Fatalf("chaos phase served %d corrupt responses", rep.Corrupt)
	}
	if rep.Hangs != 0 {
		t.Fatalf("chaos phase hung %d requests", rep.Hangs)
	}

	// Deterministic degradation: exactly one failed spool write flips the
	// spool probe, and a refused fetch (or the window phase 2 left open)
	// keeps the remote probe down. A cold key misses every local tier, is
	// inferred locally, and its spool write fails; Flush is the barrier
	// guaranteeing the write-behind ran before /readyz is read.
	fs.Reset()
	fs.Add(
		faultinject.Fault{Point: faultinject.SpoolWrite, Mode: "enospc", Count: 1},
		faultinject.Fault{Point: faultinject.RemoteFetch, Mode: "refused", Count: 2},
	)
	get(t, edge, "/v1/topology?platform=Ivy&seed=9001")
	if err := reg.Flush(); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, edge, "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with degraded tiers, want 503", resp.StatusCode)
	}
	if ready, degraded, _ := chaosStats(t, edge); ready || len(degraded) == 0 {
		t.Fatalf("stats hide the degradation: ready=%v degraded=%v", ready, degraded)
	}

	// Phase 3 — heal: faults off, a good write clears the spool flag, the
	// backoff window expires, and /readyz flips back to 200.
	fs.Disable()
	get(t, edge, "/v1/topology?platform=Ivy&seed=9002")
	if err := reg.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := get(t, edge, "/readyz")
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never recovered (last status %d)", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Phase 4 — recovered: the same goldens, a clean SLO pass.
	rep = runLoad(40)
	if rep.Corrupt != 0 || rep.Hangs != 0 || !rep.OK() {
		t.Fatalf("recovery phase violated the contract: corrupt=%d hangs=%d fails=%v",
			rep.Corrupt, rep.Hangs, rep.SLOFailures)
	}
}
