package main

// The load harness as the integration test rig: an in-process origin+edge
// fleet under internal/loadgen's closed loop at a mixed workload. The bar:
// zero errors, SLO pass, every edge answer served without a local
// inference, and the /metrics mirror agreeing exactly with /v1/stats once
// the load quiesces — the same loop `mctop-bench load` runs against a real
// deployment.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/registry"
)

func decodeStats(t *testing.T, body []byte) registry.Stats {
	t.Helper()
	var st registry.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding /v1/stats: %v\n%s", err, body)
	}
	return st
}

func TestLoadHarnessDrivesFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration run")
	}
	// Origin: spool-backed, the only place inference may run.
	originSrv, originReg := spoolServer(t, t.TempDir())
	origin := httptest.NewServer(originSrv.routes())
	defer origin.Close()

	// Edge: LRU over a remote tier against the origin — the harness's
	// target, as `mctopd -upstream` would wire it.
	edgeSrv, edgeReg := edgeServer(t, origin.URL)
	edge := httptest.NewServer(edgeSrv.routes())
	defer edge.Close()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:      edge.URL,
		Workers:     4,
		Duration:    2 * time.Minute, // the request bound fires first
		MaxRequests: 160,
		Mix:         loadgen.Mix{Topology: 2, Place: 2, MapDAG: 1, Batch: 1, Stream: 1},
		Platforms:   []string{"Ivy", "Haswell"},
		Reps:        51, // keeps the origin's cold inferences fast
		WarmSeeds:   2,
		Policies:    []string{"RR_CORE", "RR_HWC"},
		BatchSize:   4,
		MaxThreads:  8,
		Seed:        7,
		SLO: loadgen.SLO{
			MaxErrorRate: 1e-9, // zero errors allowed
			P99: map[string]time.Duration{
				loadgen.RouteTopology: time.Minute,
				loadgen.RoutePlace:    time.Minute,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if rep.Errors != 0 {
		t.Fatalf("harness saw %d errors of %d requests", rep.Errors, rep.Requests)
	}
	if !rep.OK() {
		t.Fatalf("SLO failures: %v", rep.SLOFailures)
	}
	if rep.Requests != 160 {
		t.Fatalf("harness issued %d requests, want 160", rep.Requests)
	}

	// Fleet invariant under load: the edge never inferred or computed —
	// everything was a local cache hit or a fetch of the origin's entries.
	// Mappings are the exception by design: the origin has never seen these
	// DAGs (mapping keys are hash-addressed, so /v1/export cannot compute
	// one on demand), so the edge maps locally over fetched topologies.
	edgeStats := edgeReg.Stats()
	if edgeStats.Inferences != 0 || edgeStats.Placements != 0 {
		t.Fatalf("edge computed locally under load: %d inferences, %d placements",
			edgeStats.Inferences, edgeStats.Placements)
	}
	if edgeStats.Mappings == 0 {
		t.Fatal("mapdag mix drove no mapping computes on the edge")
	}
	if originReg.Stats().Inferences == 0 {
		t.Fatal("origin ran no inferences — the load never reached it")
	}

	// Quiesced, /metrics and /v1/stats must be two views of one counter
	// set: the registry mirror equal field-for-field, and the per-tier
	// per-kind gets equal to the tier snapshot's Kinds.
	_, body := get(t, edge, "/v1/stats")
	st := decodeStats(t, body)
	m := scrapeMetrics(t, edge)
	wantSample(t, m, "mctopd_registry_hits_total", float64(st.Hits))
	wantSample(t, m, "mctopd_registry_misses_total", float64(st.Misses))
	wantSample(t, m, "mctopd_registry_inferences_total", float64(st.Inferences))
	wantSample(t, m, "mctopd_registry_placements_total", float64(st.Placements))
	wantSample(t, m, "mctopd_registry_mappings_total", float64(st.Mappings))
	wantSample(t, m, "mctopd_registry_entries", float64(st.Entries))
	for _, tier := range st.Tiers {
		for kind, ks := range tier.Kinds {
			wantSample(t, m,
				`mctopd_store_gets_total{kind="`+kind+`",result="hit",tier="`+tier.Tier+`"}`,
				float64(ks.Hits))
			wantSample(t, m,
				`mctopd_store_gets_total{kind="`+kind+`",result="miss",tier="`+tier.Tier+`"}`,
				float64(ks.Misses))
		}
	}
	// And the serving-tier attribution saw the remote tier feed the edge.
	if m[`mctopd_requests_served_by_tier_total{tier="remote"}`] == 0 {
		t.Error("no requests attributed to the remote tier")
	}
	if m[`mctopd_requests_served_by_tier_total{tier="lru"}`] == 0 {
		t.Error("no requests attributed to the lru tier")
	}
}
