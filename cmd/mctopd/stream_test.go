package main

// Tests for POST /v1/place/batch?stream=1: NDJSON, one placement per line
// as each completes, per-item error objects instead of a failed batch.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postStream(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

func TestPlaceBatchStreamNDJSON(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	body := `{"platform": "Ivy", "seed": 42, "requests": [
		{"policy": "RR_CORE", "threads": 8},
		{"policy": "NO_SUCH_POLICY", "threads": 4},
		{"policy": "CON_HWC", "threads": 6}
	]}`
	resp, lines := postStream(t, ts, "/v1/place/batch?stream=1", body)
	if resp.StatusCode != 200 {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if len(lines) != 3 {
		t.Fatalf("streamed %d lines, want 3: %v", len(lines), lines)
	}

	var items []batchItemResponse
	for i, line := range lines {
		var item batchItemResponse
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("line %d is not a JSON object: %q (%v)", i, line, err)
		}
		items = append(items, item)
	}
	if items[0].Error != "" || len(items[0].Contexts) != 8 {
		t.Fatalf("item 0 = %+v, want an 8-thread RR_CORE placement", items[0])
	}
	// The bad policy fails inline, in order, without killing the stream.
	if items[1].Error == "" || items[1].Policy != "NO_SUCH_POLICY" || items[1].Contexts != nil {
		t.Fatalf("item 1 = %+v, want an inline error", items[1])
	}
	if items[2].Error != "" || len(items[2].Contexts) != 6 {
		t.Fatalf("item 2 = %+v, want a 6-thread CON_HWC placement", items[2])
	}

	// Streamed results agree with the buffered batch endpoint.
	resp2, err := http.Post(ts.URL+"/v1/place/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var batch batchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(items) {
		t.Fatalf("batch returned %d results, stream %d", len(batch.Results), len(items))
	}
	for i := range items {
		a, b := items[i], batch.Results[i]
		if a.Policy != b.Policy || (a.Error == "") != (b.Error == "") || len(a.Contexts) != len(b.Contexts) {
			t.Fatalf("item %d: stream %+v vs batch %+v", i, a, b)
		}
		for j := range a.Contexts {
			if a.Contexts[j] != b.Contexts[j] {
				t.Fatalf("item %d context %d: stream %d vs batch %d", i, j, a.Contexts[j], b.Contexts[j])
			}
		}
	}
}

func TestPlaceBatchStreamRequestLevelFailures(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	// Request-level faults (unknown platform, malformed body) still carry
	// an HTTP status: they are detected before the first line commits 200.
	resp, _ := postStream(t, ts, "/v1/place/batch?stream=1",
		`{"platform": "VAX", "requests": [{"policy": "RR_CORE", "threads": 2}]}`)
	if resp.StatusCode != 404 {
		t.Fatalf("unknown platform over stream: %d, want 404", resp.StatusCode)
	}
	resp, _ = postStream(t, ts, "/v1/place/batch?stream=1", `{"platform": "Ivy", "requests": []}`)
	if resp.StatusCode != 400 {
		t.Fatalf("empty batch over stream: %d, want 400", resp.StatusCode)
	}
}
