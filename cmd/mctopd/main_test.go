package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/topo"
)

// testServer uses few repetitions so the first (cold) request stays fast;
// every later request is a registry hit regardless.
func testServer() *server { return newServer(64, 51) }

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHealthzAndLists(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	_, body = get(t, ts, "/v1/platforms")
	var plat struct{ Platforms []string }
	if err := json.Unmarshal(body, &plat); err != nil {
		t.Fatal(err)
	}
	if len(plat.Platforms) != 5 || plat.Platforms[0] != "Ivy" {
		t.Fatalf("platforms = %v", plat.Platforms)
	}

	_, body = get(t, ts, "/v1/policies")
	var pol struct{ Policies []string }
	if err := json.Unmarshal(body, &pol); err != nil {
		t.Fatal(err)
	}
	if len(pol.Policies) != 12 {
		t.Fatalf("policies = %v", pol.Policies)
	}
}

func TestTopologyEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/topology?platform=Ivy&seed=42&reps=51")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var tr topologyResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Contexts != 40 || tr.Sockets != 2 || tr.SMTWays != 2 {
		t.Fatalf("Ivy dims wrong: %+v", tr)
	}
	if tr.Cached {
		t.Error("first query reported cached=true")
	}

	// Second query: same key, must be served from cache.
	_, body = get(t, ts, "/v1/topology?platform=Ivy&seed=42&reps=51")
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Cached {
		t.Error("second query was not a cache hit")
	}

	// The mctop format is a loadable description file.
	resp, body = get(t, ts, "/v1/topology?platform=Ivy&seed=42&reps=51&format=mctop")
	if resp.StatusCode != 200 {
		t.Fatalf("mctop format status %d", resp.StatusCode)
	}
	spec, err := topo.Decode(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("served description file does not decode: %v", err)
	}
	if spec.Contexts != 40 {
		t.Fatalf("decoded contexts = %d", spec.Contexts)
	}

	// Errors: missing platform, unknown platform, bad format.
	if resp, _ := get(t, ts, "/v1/topology"); resp.StatusCode != 400 {
		t.Errorf("missing platform: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/topology?platform=Nope&reps=51"); resp.StatusCode != 404 {
		t.Errorf("unknown platform: status %d, want 404 (ErrUnknownPlatform)", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/topology?platform=Ivy&reps=51&format=yaml"); resp.StatusCode != 400 {
		t.Errorf("bad format: status %d, want 400", resp.StatusCode)
	}
}

func TestPlaceEndpointAndStats(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/place?platform=Ivy&seed=42&reps=51&policy=CON_HWC&threads=30")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr placeResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.NThreads != 30 || pr.NCores != 15 {
		t.Fatalf("CON_HWC 30 threads: %+v", pr)
	}
	if len(pr.Contexts) != 30 {
		t.Fatalf("contexts = %v", pr.Contexts)
	}
	if !strings.Contains(pr.Report, "MCTOP_PLACE_CON_HWC") {
		t.Error("report missing policy name")
	}

	if resp, _ := get(t, ts, "/v1/place?platform=Ivy&reps=51&policy=NOPE"); resp.StatusCode != 404 {
		t.Errorf("unknown policy: status %d, want 404 (ErrUnknownPolicy)", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/place?platform=Ivy&reps=51"); resp.StatusCode != 400 {
		t.Errorf("missing policy: status %d, want 400", resp.StatusCode)
	}
	// SPARC has no power measurements: a client-correctable placement
	// error, not a server fault.
	if resp, _ := get(t, ts, "/v1/place?platform=SPARC&reps=51&policy=POWER"); resp.StatusCode != 400 {
		t.Errorf("power policy without power data: status %d, want 400", resp.StatusCode)
	}
	// Unbounded work requests are rejected up front.
	if resp, _ := get(t, ts, "/v1/topology?platform=Ivy&reps=2000000000"); resp.StatusCode != 400 {
		t.Errorf("oversized reps: status %d, want 400", resp.StatusCode)
	}

	// Stats: one inference for Ivy (shared by its place queries) and one
	// for the SPARC power probe; the rejected requests cost nothing.
	_, body = get(t, ts, "/v1/stats")
	var st struct{ Inferences, Entries int64 }
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Inferences != 2 {
		t.Errorf("inferences = %d, want 2 (placements must reuse cached topologies)", st.Inferences)
	}
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/place/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestPlaceBatchEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	resp, body := postBatch(t, ts, `{
		"platform": "Ivy", "seed": 42, "reps": 51,
		"requests": [
			{"policy": "CON_HWC", "threads": 30},
			{"policy": "RR_CORE", "threads": 8},
			{"policy": "NOPE", "threads": 4}
		]
	}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Platform != "Ivy" || br.Seed != 42 || len(br.Results) != 3 {
		t.Fatalf("batch response: %+v", br)
	}
	if br.Results[0].NThreads != 30 || br.Results[0].NCores != 15 || br.Results[0].Error != "" {
		t.Fatalf("CON_HWC item: %+v", br.Results[0])
	}
	if br.Results[1].NThreads != 8 || len(br.Results[1].Contexts) != 8 {
		t.Fatalf("RR_CORE item: %+v", br.Results[1])
	}
	if br.Results[2].Error == "" || br.Results[2].Contexts != nil {
		t.Fatalf("unknown policy must fail inline: %+v", br.Results[2])
	}

	// The batch answers must match the single-request endpoint exactly.
	_, single := get(t, ts, "/v1/place?platform=Ivy&seed=42&reps=51&policy=CON_HWC&threads=30")
	var pr placeResponse
	if err := json.Unmarshal(single, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Contexts) != len(br.Results[0].Contexts) {
		t.Fatalf("batch and single disagree: %v vs %v", br.Results[0].Contexts, pr.Contexts)
	}
	for i := range pr.Contexts {
		if pr.Contexts[i] != br.Results[0].Contexts[i] {
			t.Fatalf("batch and single disagree at %d: %v vs %v", i, br.Results[0].Contexts, pr.Contexts)
		}
	}

	// The whole batch (3 placements) plus the single request cost one
	// inference.
	_, body = get(t, ts, "/v1/stats")
	var st struct{ Inferences int64 }
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Inferences != 1 {
		t.Errorf("inferences = %d, want 1 (batch must share one topology lookup)", st.Inferences)
	}

	// An absent seed defaults to 42, like the GET endpoints.
	_, body = postBatch(t, ts, `{"platform": "Ivy", "reps": 51, "requests": [{"policy": "SEQUENTIAL"}]}`)
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Seed != 42 {
		t.Errorf("default seed = %d, want 42", br.Seed)
	}

	// Client errors: wrong method, bad JSON, unknown platform, empty and
	// oversized batches, negative threads.
	if resp, _ := get(t, ts, "/v1/place/batch"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on batch: status %d, want 405", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts, `{not json`); resp.StatusCode != 400 {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts, `{"platform": "Nope", "requests": [{"policy": "RR_CORE"}]}`); resp.StatusCode != 404 {
		t.Errorf("unknown platform: status %d, want 404 (ErrUnknownPlatform)", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts, `{"platform": "Ivy", "requests": []}`); resp.StatusCode != 400 {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts, `{"platform": "Ivy", "reps": 50000, "requests": [{"policy": "RR_CORE"}]}`); resp.StatusCode != 400 {
		t.Errorf("oversized reps: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts, `{"platform": "Ivy", "requests": [{"policy": "RR_CORE", "threads": -1}]}`); resp.StatusCode != 400 {
		t.Errorf("negative threads: status %d, want 400", resp.StatusCode)
	}
	big := `{"platform": "Ivy", "requests": [` + strings.Repeat(`{"policy": "RR_CORE"},`, 1024) + `{"policy": "RR_CORE"}]}`
	if resp, _ := postBatch(t, ts, big); resp.StatusCode != 413 {
		t.Errorf("oversized batch: status %d, want 413 (ErrTooLarge)", resp.StatusCode)
	}
}
