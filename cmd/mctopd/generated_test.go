package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTopologyGeneratedPlatform serves a generated gen: platform end to
// end: the daemon resolves the spec through sim.ByName, infers with the
// sampled mode requested per query, and a repeat request is a cache hit
// under the extended option key.
func TestTopologyGeneratedPlatform(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	const path = "/v1/topology?platform=gen:ring:s6:c2:t2&seed=7&sampling=1"
	resp, body := get(t, ts, path)
	if resp.StatusCode != 200 {
		t.Fatalf("generated topology: %d %s", resp.StatusCode, body)
	}
	var tr struct {
		Contexts int  `json:"contexts"`
		Sockets  int  `json:"sockets"`
		SMTWays  int  `json:"smt_ways"`
		Cached   bool `json:"cached"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Contexts != 24 || tr.Sockets != 6 || tr.SMTWays != 2 {
		t.Fatalf("gen:ring:s6:c2:t2 = %+v, want 24 contexts, 6 sockets, SMT 2", tr)
	}
	if tr.Cached {
		t.Fatal("first request reported cached")
	}
	resp, body = get(t, ts, path)
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !tr.Cached {
		t.Fatalf("repeat request: %d cached=%v, want a cache hit", resp.StatusCode, tr.Cached)
	}

	// Same platform without sampling is a different configuration — it must
	// not alias the sampled entry's cache key.
	resp, body = get(t, ts, "/v1/topology?platform=gen:ring:s6:c2:t2&seed=7&sampling=0")
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || tr.Cached {
		t.Fatalf("sampling=0 request: %d cached=%v, want a cold miss", resp.StatusCode, tr.Cached)
	}
}

// TestTopologyGeneratedErrors sorts the gen: failure modes: a malformed
// spec is the client's bad request (400), not an unknown platform; an
// unknown name stays 404; a bad sampling value is 400.
func TestTopologyGeneratedErrors(t *testing.T) {
	ts := httptest.NewServer(testServer().routes())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/topology?platform=gen:torus:s4:c2:t1", 400}, // unknown kind
		{"/v1/topology?platform=gen:ring:s0:c2:t1", 400},  // zero sockets
		{"/v1/topology?platform=gen:ring:c2:t1", 400},     // missing field
		{"/v1/topology?platform=NoSuchMachine", 404},      // not a gen: spec
		{"/v1/topology?platform=Ivy&seed=1&sampling=maybe", 400},
	} {
		resp, body := get(t, ts, tc.path)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.path, resp.StatusCode, body, tc.want)
		}
	}
}

// TestMaxContextsRefusal pins the -max-contexts contract: a platform over
// the bound is 413, the error names both sizes, and — unlike the 503/504
// refusals — there is no Retry-After, because retrying the same platform
// against the same daemon can never succeed.
func TestMaxContextsRefusal(t *testing.T) {
	s := testServer()
	s.maxContexts = 100
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/topology?platform=gen:circulant:s64:c8:t2") // 1024 contexts
	if resp.StatusCode != 413 {
		t.Fatalf("over-bound topology: %d %s, want 413", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "" {
		t.Fatalf("413 carried Retry-After %q; a too-large platform is not retryable", got)
	}
	if !strings.Contains(string(body), "1024") || !strings.Contains(string(body), "100") {
		t.Fatalf("413 body %s does not name the sizes", body)
	}

	// The bound applies to every platform-naming route, including batch
	// placement and export keys, and platforms under it still serve.
	resp, _ = get(t, ts, "/v1/place?platform=gen:circulant:s64:c8:t2&policy=RR_CORE&threads=4")
	if resp.StatusCode != 413 {
		t.Fatalf("over-bound place: %d, want 413", resp.StatusCode)
	}
	resp, body = get(t, ts, "/v1/topology?platform=gen:ring:s6:c2:t2&seed=1")
	if resp.StatusCode != 200 {
		t.Fatalf("under-bound topology: %d %s, want 200", resp.StatusCode, body)
	}
	resp, body = get(t, ts, "/v1/topology?platform=Ivy&seed=1")
	if resp.StatusCode != 200 {
		t.Fatalf("golden platform under bound: %d %s, want 200", resp.StatusCode, body)
	}
}
