package main

// The span plane's daemon-level contract: scrape traffic never creates
// spans, request IDs are honored and echoed on every response (shed 503s
// included), a two-daemon fleet stitches one trace across the edge/origin
// hop via traceparent, sampled inferences attribute their time to the
// algorithm's phases, and under fault injection every started span ends
// exactly once while the ring stays bounded.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"sync"
	"testing"
	"time"

	mctop "repro"
	"repro/internal/faultinject"
	"repro/internal/remote"
	"repro/internal/spool"
	"repro/internal/trace"
)

// tracedServer is newServerWith plus an armed (rate-1) tracer, the shape
// run() builds for -trace-sample 1.
func tracedServer(reg *mctop.Registry, seed uint64) *server {
	s := newServerWith(reg, 51, 4*runtime.GOMAXPROCS(0))
	s.tracer = trace.New(trace.WithSampleRate(1), trace.WithSeed(seed))
	return s
}

func findTrace(traces []trace.TraceData, spanName string) *trace.TraceData {
	for i := range traces {
		for j := range traces[i].Spans {
			if traces[i].Spans[j].Name == spanName {
				return &traces[i]
			}
		}
	}
	return nil
}

func findSpan(td *trace.TraceData, name string) *trace.SpanData {
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			return &td.Spans[i]
		}
	}
	return nil
}

func attrValue(sp *trace.SpanData, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestScrapeRoutesCreateNoSpans pins the exemption list: probe, metrics
// and trace-dump traffic must not occupy ring slots or skew sampling even
// with the tracer wide open, while a real API request does open spans.
func TestScrapeRoutesCreateNoSpans(t *testing.T) {
	s := tracedServer(mctop.NewRegistry(16), 1)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/v1/debug/traces"} {
		if resp, _ := get(t, ts, path); resp.StatusCode != 200 {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}
	if st := s.tracer.Stats(); st.Started != 0 {
		t.Fatalf("scrape traffic started %d spans, want 0", st.Started)
	}

	if resp, _ := get(t, ts, "/v1/platforms"); resp.StatusCode != 200 {
		t.Fatalf("/v1/platforms = %d", resp.StatusCode)
	}
	if st := s.tracer.Stats(); st.Started == 0 {
		t.Fatal("an API request started no spans with the tracer armed")
	}
}

// TestRequestIDEchoed covers the X-Request-ID contract: an inbound ID is
// honored verbatim, an absent one is minted, and — instrument being the
// outermost layer — even a shed 503 carries one.
func TestRequestIDEchoed(t *testing.T) {
	s := newServerWith(mctop.NewRegistry(16), 51, 1)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/platforms", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "caller-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chose-this" {
		t.Fatalf("inbound request ID not echoed: got %q", got)
	}

	resp, _ = get(t, ts, "/v1/platforms")
	if got := resp.Header.Get("X-Request-ID"); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Fatalf("generated request ID %q is not 16 hex digits", got)
	}

	// Occupy the single in-flight slot so the next request is shed; the
	// 503 must still carry a request ID.
	s.inflight <- struct{}{}
	resp, _ = get(t, ts, "/v1/platforms")
	<-s.inflight
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("shed 503 carries no X-Request-ID")
	}
}

// TestFleetTraceStitching is the tentpole's acceptance test: a cold
// topology request through a traced edge produces one trace ID spanning
// both daemons — the edge's root and its remote.fetch span, and on the
// origin a root marked remote whose parent IS that fetch span, with the
// tier-traversal spans beneath it.
func TestFleetTraceStitching(t *testing.T) {
	originSrv := tracedServer(mctop.NewRegistry(64), 2)
	origin := httptest.NewServer(originSrv.routes())
	defer origin.Close()

	rm := remote.New(origin.URL, remote.WithLogf(t.Logf))
	reg := mctop.NewRegistry(0, mctop.WithStore(
		mctop.NewTieredStore(mctop.NewLRUStore(64, 0), rm)))
	edgeSrv := tracedServer(reg, 3)
	edge := httptest.NewServer(edgeSrv.routes())
	defer edge.Close()

	if resp, body := get(t, edge, "/v1/topology?platform=Ivy&seed=4242"); resp.StatusCode != 200 {
		t.Fatalf("edge topology: %d %s", resp.StatusCode, body)
	}

	edgeTraces := edgeSrv.tracer.Snapshot()
	et := findTrace(edgeTraces, "remote.fetch")
	if et == nil {
		t.Fatalf("no edge trace contains a remote.fetch span (have %d traces)", len(edgeTraces))
	}
	if et.Spans[0].Name != "http /v1/topology" || et.Spans[0].Remote {
		t.Fatalf("edge root = %q (remote=%v), want local http /v1/topology root",
			et.Spans[0].Name, et.Spans[0].Remote)
	}
	lookup := findSpan(et, "registry.lookup")
	if lookup == nil {
		t.Fatal("edge trace has no registry.lookup span")
	}
	if tier := attrValue(lookup, "tier"); tier != "remote" {
		t.Fatalf("edge lookup tier = %q, want remote", tier)
	}
	fetch := findSpan(et, "remote.fetch")

	originTraces := originSrv.tracer.Snapshot()
	var ot *trace.TraceData
	for i := range originTraces {
		if originTraces[i].TraceID == et.TraceID {
			ot = &originTraces[i]
			break
		}
	}
	if ot == nil {
		t.Fatalf("origin has no trace with the edge's trace ID %s", et.TraceID)
	}
	root := &ot.Spans[0]
	if root.Name != "http /v1/export" || !root.Remote {
		t.Fatalf("origin root = %q (remote=%v), want remote http /v1/export", root.Name, root.Remote)
	}
	if root.Parent != fetch.SpanID {
		t.Fatalf("origin root parent = %s, want the edge's fetch span %s", root.Parent, fetch.SpanID)
	}
	if findSpan(ot, "registry.lookup") == nil || findSpan(ot, "registry.infer") == nil {
		t.Fatalf("origin trace lacks the tier-traversal spans: %+v", ot.Spans)
	}
}

// TestInferencePhaseSpans asserts a sampled inference attributes its time
// to the algorithm's phases — pilots, classify, verify, fill — as spans of
// the request's trace, never one span per measured pair.
func TestInferencePhaseSpans(t *testing.T) {
	s := tracedServer(mctop.NewRegistry(16), 4)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// 64 contexts: the smallest size the sampled mode accepts.
	resp, body := get(t, ts, "/v1/topology?platform=gen:ring:s8:c4:t2&seed=1&reps=5&sampling=1")
	if resp.StatusCode != 200 {
		t.Fatalf("sampled topology: %d %s", resp.StatusCode, body)
	}
	td := findTrace(s.tracer.Snapshot(), "infer.pilots")
	if td == nil {
		t.Fatal("no trace contains an infer.pilots span")
	}
	for _, phase := range []string{"infer.pilots", "infer.classify", "infer.verify", "infer.fill"} {
		if findSpan(td, phase) == nil {
			t.Fatalf("trace lacks the %s phase span", phase)
		}
	}
	if n := len(td.Spans); n > 16 {
		t.Fatalf("sampled inference emitted %d spans — per-pair spans would blow the hot loop", n)
	}
	pilots := findSpan(td, "infer.pilots")
	if attrValue(pilots, "pairs") == "" || attrValue(pilots, "pilots") == "" {
		t.Fatalf("infer.pilots lacks its pairs/pilots attrs: %+v", pilots.Attrs)
	}
}

// TestChaosSpanBalance is the satellite's invariant check: under torn
// spool writes, a flapping origin and injected inference faults, every
// started span ends exactly once, errored spans carry a status, the ring
// never exceeds its bound, and every exposed trace still passes the strict
// parser.
func TestChaosSpanBalance(t *testing.T) {
	originSrv, _ := spoolServer(t, t.TempDir())
	origin := httptest.NewServer(originSrv.routes())
	defer origin.Close()

	fs := faultinject.New(7)
	tracer := trace.New(trace.WithSampleRate(1), trace.WithSeed(9), trace.WithRingSize(32))
	sp, err := spool.New(t.TempDir(), spool.WithFaults(fs), spool.WithTracer(tracer), spool.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	rm := remote.New(origin.URL,
		remote.WithHTTPClient(&http.Client{
			Transport: faultinject.Transport(fs, faultinject.RemoteFetch, http.DefaultTransport),
		}),
		remote.WithNegTTL(50*time.Millisecond),
		remote.WithBackoffMax(200*time.Millisecond),
		remote.WithRetries(1, 2*time.Millisecond),
		remote.WithLogf(t.Logf))
	reg := mctop.NewRegistry(0, mctop.WithStore(
		mctop.NewTieredStore(mctop.NewLRUStore(64, 0), sp, rm)))
	defer reg.Close()
	s := newServerWith(reg, 51, 32)
	s.tracer = tracer
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	fs.Add(
		faultinject.Fault{Point: faultinject.RemoteFetch, Mode: "refused", Prob: 0.4},
		faultinject.Fault{Point: faultinject.RemoteFetch, Mode: "truncate", Prob: 0.3},
		faultinject.Fault{Point: faultinject.SpoolWrite, Mode: "torn", Prob: 0.4},
	)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				seed := 100 + w*10 + i // cold keys exercise every tier
				resp, err := http.Get(fmt.Sprintf(
					"%s/v1/topology?platform=Ivy&seed=%d", ts.URL, seed))
				if err == nil {
					resp.Body.Close()
				}
				resp, err = http.Get(fmt.Sprintf(
					"%s/v1/place?platform=Ivy&seed=%d&policy=RR_CORE&threads=4", ts.URL, seed))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	// Flush is the barrier for the spool's write-behind goroutine: after
	// it, every background spool.write span has ended.
	if err := reg.Flush(); err != nil {
		t.Fatal(err)
	}

	st := tracer.Stats()
	if st.Started != st.Ended {
		t.Fatalf("span imbalance: started %d, ended %d", st.Started, st.Ended)
	}
	if st.RingLen > 32 {
		t.Fatalf("ring holds %d traces, bound is 32", st.RingLen)
	}

	resp, body := get(t, ts, "/v1/debug/traces")
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/debug/traces = %d", resp.StatusCode)
	}
	traces, err := trace.ParseJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposed traces fail the strict parser: %v", err)
	}
	var errored int
	for i := range traces {
		for _, sp := range traces[i].Spans {
			if sp.Error != "" {
				errored++
			}
		}
	}
	if errored == 0 {
		t.Fatal("fault injection produced no errored spans — the error-keep rule went unexercised")
	}
}
