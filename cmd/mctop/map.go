package main

// The map subcommand: read task DAGs from NDJSON files (the interchange
// format of internal/graph.EncodeTaskDAG) and map each onto a platform's
// topology — locally through a (optionally spool-backed) registry, or by
// POSTing to a running mctopd's /v1/map endpoint:
//
//	mctop map -platform Ivy wordcount.dag
//	mctop map -spool /var/lib/mctop/spool -refine 5000 pipeline.dag
//	mctop map -origin http://origin:8077 wordcount.dag pipeline.dag
//	... | mctop map -platform Haswell -

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	mctop "repro"
	"repro/internal/graph"
	"repro/internal/spool"
)

func runMap(args []string) {
	fs := flag.NewFlagSet("mctop map", flag.ExitOnError)
	var (
		platform = fs.String("platform", "Ivy", "simulated platform: Ivy, Westmere, Haswell, Opteron, SPARC")
		seed     = fs.Uint64("seed", 42, "simulator noise seed")
		reps     = fs.Int("reps", 201, "repetitions per context pair")
		refine   = fs.Int("refine", 1000, "pairwise-swap refinement budget in cost probes (0 = greedy only)")
		spoolDir = fs.String("spool", "", "spool directory to read/persist mappings through (local mode)")
		origin   = fs.String("origin", "", "POST to this mctopd base URL instead of computing locally")
	)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mctop map [-platform P] [-seed N] [-reps R] [-refine B] [-spool DIR | -origin URL] dag.ndjson... (- = stdin)")
		os.Exit(2)
	}

	var dags []*graph.TaskDAG
	for _, path := range fs.Args() {
		var r io.Reader = os.Stdin
		if path != "-" {
			f, err := os.Open(path)
			fail(err)
			defer f.Close()
			r = f
		}
		d, err := graph.DecodeTaskDAG(r)
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		if d.Name == "" {
			// Display only: the name is excluded from the canonical hash,
			// so it never changes the cache key or the mapping.
			d.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		dags = append(dags, d)
	}

	if *origin != "" {
		mapViaOrigin(*origin, *platform, *seed, *reps, *refine, dags)
		return
	}

	var regOpts []mctop.RegistryOption
	if *spoolDir != "" {
		sp, err := spool.New(*spoolDir)
		fail(err)
		regOpts = append(regOpts, mctop.WithStore(
			mctop.NewTieredStore(mctop.NewLRUStore(16, 1), sp)))
	}
	reg := mctop.NewRegistry(16, regOpts...)
	opt := mctop.NewOptions(mctop.WithReps(*reps))
	for _, d := range dags {
		m, err := reg.MapDAG(*platform, *seed, opt, d, *refine)
		fail(err)
		printMapping(d.Name, *platform, *seed, m.Algo(), m.Cost(), m.Assignment(), len(d.Edges))
	}
	fail(reg.Close())
}

// mapViaOrigin sends one batch request to a running daemon — the fleet
// deployment in CLI form: the origin computes (or serves from cache) and
// this process never loads a topology.
func mapViaOrigin(origin, platform string, seed uint64, reps, refine int, dags []*graph.TaskDAG) {
	req := struct {
		Platform string           `json:"platform"`
		Seed     uint64           `json:"seed"`
		Reps     int              `json:"reps,omitempty"`
		Refine   int              `json:"refine,omitempty"`
		DAGs     []*graph.TaskDAG `json:"dags"`
	}{Platform: platform, Seed: seed, Reps: reps, Refine: refine, DAGs: dags}
	body, err := json.Marshal(req)
	fail(err)
	resp, err := http.Post(strings.TrimRight(origin, "/")+"/v1/map", "application/json", bytes.NewReader(body))
	fail(err)
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	fail(err)
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("origin returned %s: %s", resp.Status, strings.TrimSpace(string(raw))))
	}
	var mr struct {
		Results []struct {
			DAG        string `json:"dag"`
			Error      string `json:"error"`
			Algo       string `json:"algo"`
			CostCycles int64  `json:"cost_cycles"`
			Assignment []int  `json:"assignment"`
		} `json:"results"`
	}
	fail(json.Unmarshal(raw, &mr))
	failed := 0
	for i, r := range mr.Results {
		if r.Error != "" {
			fmt.Fprintf(os.Stderr, "mctop: %s: %s\n", r.DAG, r.Error)
			failed++
			continue
		}
		edges := 0
		if i < len(dags) {
			edges = len(dags[i].Edges)
		}
		printMapping(r.DAG, platform, seed, r.Algo, r.CostCycles, r.Assignment, edges)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func printMapping(name, platform string, seed uint64, algo string, cost int64, assign []int, edges int) {
	fmt.Printf("%s: %d tasks, %d edges on %s (seed %d): %s, estimated %d cycles\n",
		name, len(assign), edges, platform, seed, algo, cost)
	for task, ctx := range assign {
		fmt.Printf("  task %d -> hwc %d\n", task, ctx)
	}
}
