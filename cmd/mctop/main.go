// Command mctop infers the MCTOP topology of a machine — one of the five
// simulated platforms of the paper or, best effort, the real host — then
// prints it, optionally renders its Graphviz graphs, validates it against
// the OS view, and saves a description file.
//
// Usage:
//
//	mctop -platform Opteron -dot -out opteron.mct
//	mctop -platform Ivy -validate
//	mctop -host
//	mctop -load opteron.mct
//
// The export and import subcommands move topologies between a registry
// spool (the persistence tier mctopd's -spool-dir uses) and standalone
// description files — the interchange format between the CLI, the library
// (mctop.Load/Save) and the daemon:
//
//	mctop export -spool /var/lib/mctop/spool -platform Ivy -seed 42 -o ivy.mctop
//	mctop import -spool /var/lib/mctop/spool ivy.mctop westmere.mctop
//	mctop fetch -origin http://origin:8077 -platform Ivy -seed 42 -o ivy.mctop
//
// The map subcommand reads task DAGs from NDJSON files and maps each onto
// a platform's topology (internal/taskmap), locally or via a daemon:
//
//	mctop map -platform Ivy -refine 5000 wordcount.dag
//	mctop map -origin http://origin:8077 wordcount.dag pipeline.dag
//
// export resolves the topology through a spool-backed registry — a spool
// hit costs a file decode, a miss runs the inference and leaves the spool
// populated — and writes a description file carrying its registry key as a
// `#key` comment header. import installs description files into a spool:
// files with a key header keep it; bare files get the key of
// (-platform|spec name, -seed, -reps), the triple a daemon or library
// client would look up. fetch pulls the same file from a running mctopd's
// /v1/export endpoint instead of inferring locally — the fleet deployment
// in CLI form.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	mctop "repro"
	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/plugins"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/spool"
	"repro/internal/topo"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "export":
			runExport(os.Args[2:])
			return
		case "import":
			runImport(os.Args[2:])
			return
		case "fetch":
			runFetch(os.Args[2:])
			return
		case "map":
			runMap(os.Args[2:])
			return
		}
	}
	runInfer()
}

// runExport materializes one topology as a description file, reading
// through (and writing back to) a spool when one is given.
func runExport(args []string) {
	fs := flag.NewFlagSet("mctop export", flag.ExitOnError)
	var (
		spoolDir = fs.String("spool", "", "spool directory to read through (and populate on a miss)")
		platform = fs.String("platform", "Ivy", "simulated platform: Ivy, Westmere, Haswell, Opteron, SPARC")
		seed     = fs.Uint64("seed", 42, "simulator noise seed")
		reps     = fs.Int("reps", 201, "repetitions per context pair")
		out      = fs.String("o", "-", "output file (- = stdout)")
	)
	fs.Parse(args)
	opt := mctop.NewOptions(mctop.WithReps(*reps))

	var regOpts []mctop.RegistryOption
	if *spoolDir != "" {
		sp, err := spool.New(*spoolDir)
		fail(err)
		regOpts = append(regOpts, mctop.WithStore(
			mctop.NewTieredStore(mctop.NewLRUStore(16, 1), sp)))
	}
	reg := mctop.NewRegistry(16, regOpts...)
	top, hit, err := reg.LookupTopology(*platform, *seed, opt)
	fail(err)
	fail(reg.Close())

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		fail(err)
		defer f.Close()
		w = f
	}
	// The key header makes the file re-importable under the exact triple a
	// serving registry looks up; topo.Decode skips it as a comment.
	key := registry.TopoKey(*platform, *seed, opt)
	_, err = fmt.Fprintf(w, "#key %s\n", key)
	fail(err)
	spec := top.Spec()
	fail(topo.Encode(w, &spec))
	if *out != "-" {
		src := "inferred"
		if hit {
			src = "served from cache/spool"
		}
		fmt.Printf("exported %s (seed %d, %s) to %s\n", *platform, *seed, src, *out)
	}
}

// runFetch pulls one topology's description file from a running mctopd via
// its /v1/export endpoint — the CLI face of the fleet tier: the same
// `#key`-headed bytes an edge daemon fetches, written to a file (or
// installed straight into a local spool) without running any inference
// locally.
func runFetch(args []string) {
	fs := flag.NewFlagSet("mctop fetch", flag.ExitOnError)
	var (
		origin   = fs.String("origin", "", "base URL of the mctopd to fetch from (required, e.g. http://origin:8077)")
		platform = fs.String("platform", "Ivy", "simulated platform: Ivy, Westmere, Haswell, Opteron, SPARC")
		seed     = fs.Uint64("seed", 42, "simulator noise seed")
		reps     = fs.Int("reps", 201, "repetitions per context pair")
		out      = fs.String("o", "-", "output file (- = stdout)")
		spoolDir = fs.String("spool", "", "also install the fetched topology into this spool directory")
	)
	fs.Parse(args)
	if *origin == "" {
		fmt.Fprintln(os.Stderr, "usage: mctop fetch -origin URL [-platform P] [-seed N] [-reps R] [-o FILE] [-spool DIR]")
		os.Exit(2)
	}
	opt := mctop.NewOptions(mctop.WithReps(*reps))
	key := registry.TopoKey(*platform, *seed, opt)
	resp, err := http.Get(strings.TrimRight(*origin, "/") + "/v1/export?key=" + url.QueryEscape(key))
	fail(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	fail(err)
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("origin returned %s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	// Decode before writing anything: a torn or corrupt transfer must not
	// land as a description file.
	gotKey, top, err := spool.DecodeTopology(bytes.NewReader(body))
	fail(err)
	if gotKey != key {
		fail(fmt.Errorf("origin served key %q, requested %q", gotKey, key))
	}
	// Status lines go to stderr: with -o - the description file owns
	// stdout, and a trailing status line would corrupt the piped output.
	if *out == "-" {
		_, err = os.Stdout.Write(body)
		fail(err)
	} else {
		fail(os.WriteFile(*out, body, 0o644))
		fmt.Fprintf(os.Stderr, "fetched %s (seed %d) from %s to %s\n", *platform, *seed, *origin, *out)
	}
	if *spoolDir != "" {
		sp, err := spool.New(*spoolDir)
		fail(err)
		preErrors := sp.Stats()[0].Errors
		sp.Put(registry.KindTopology, key, top)
		fail(sp.Close())
		if sp.Stats()[0].Errors > preErrors {
			fail(fmt.Errorf("installing into spool %s failed (see log above)", *spoolDir))
		}
		fmt.Fprintf(os.Stderr, "installed into spool %s as %q\n", *spoolDir, key)
	}
}

// runImport installs description files into a spool.
func runImport(args []string) {
	fs := flag.NewFlagSet("mctop import", flag.ExitOnError)
	var (
		spoolDir = fs.String("spool", "", "spool directory to install into (required)")
		platform = fs.String("platform", "", "platform key for bare files (default: the description's name)")
		seed     = fs.Uint64("seed", 42, "seed key for bare files")
		reps     = fs.Int("reps", 201, "reps key for bare files")
	)
	fs.Parse(args)
	if *spoolDir == "" || fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mctop import -spool DIR [-platform P] [-seed N] [-reps R] file.mctop...")
		os.Exit(2)
	}
	sp, err := spool.New(*spoolDir)
	fail(err)
	// The spool's cache-tier contract degrades write failures to log
	// lines; an explicit install must fail loudly instead, so compare its
	// error counter around the imports (the scan may already have counted
	// skips for unrelated junk in the directory).
	preErrors := sp.Stats()[0].Errors
	for _, path := range fs.Args() {
		key, top, err := spool.DecodeTopologyFile(path)
		fail(err)
		if key == "" {
			name := *platform
			if name == "" {
				name = top.Name()
			}
			key = registry.TopoKey(name, *seed, mctop.NewOptions(mctop.WithReps(*reps)))
		}
		sp.Put(registry.KindTopology, key, top)
		fmt.Printf("imported %s as %q\n", path, key)
	}
	fail(sp.Close())
	if n := sp.Stats()[0].Errors - preErrors; n > 0 {
		fmt.Fprintf(os.Stderr, "mctop: %d import(s) failed to persist (see log above)\n", n)
		os.Exit(1)
	}
}

func runInfer() {
	var (
		platform = flag.String("platform", "Ivy", "simulated platform: Ivy, Westmere, Haswell, Opteron, SPARC, or a generated gen:<kind>:s<S>:c<C>:t<T> spec (e.g. gen:circulant:s64:c8:t2)")
		seed     = flag.Uint64("seed", 42, "simulator noise seed")
		reps     = flag.Int("reps", 201, "repetitions per context pair (paper default: 2000)")
		sampling = flag.Bool("sampling", false, "use the sampled sub-O(N²) measurement mode on large platforms (byte-identical results; see internal/mctopalg)")
		host     = flag.Bool("host", false, "infer the real host instead of a simulated platform")
		load     = flag.String("load", "", "load a description file instead of inferring")
		out      = flag.String("out", "", "save the description file here")
		dot      = flag.Bool("dot", false, "print the Graphviz graphs")
		heatmap  = flag.Bool("heatmap", false, "print the latency-table heatmap (Figure 6)")
		csv      = flag.Bool("csv", false, "print the raw latency table as CSV")
		validate = flag.Bool("validate", false, "compare the inferred topology against the OS view")
	)
	flag.Parse()

	var top *mctop.Topology
	var osView *machine.OSView
	var inferRes *mctopalg.Result

	switch {
	case *load != "":
		var err error
		top, err = mctop.Load(*load)
		fail(err)
		fmt.Printf("loaded %s\n", *load)
	case *host:
		fmt.Println("inferring host topology (best effort; the Go runtime is noisy)...")
		t, res, err := mctop.InferHost(mctop.Options{Reps: *reps})
		fail(err)
		top = t
		inferRes = res
		fmt.Printf("measured %d pairs, %d retries, rdtsc overhead ~%d ns\n",
			res.Pairs, res.Retries, res.RdtscOverhead)
	default:
		p, err := sim.ByName(*platform)
		fail(err)
		m, err := machine.NewSim(p, *seed)
		fail(err)
		o := mctopalg.DefaultOptions()
		o.Reps = *reps
		o.Sampling.Enabled = *sampling
		res, err := mctopalg.Infer(m, o)
		fail(err)
		enriched, err := plugins.Enrich(m, res.Topology, nil)
		fail(err)
		top = enriched
		inferRes = res
		v := m.OSView()
		osView = &v
		mode := ""
		if res.Sampled {
			mode = fmt.Sprintf(" (sampled: %d filled, %d fallback blocks)", res.FilledPairs, res.FallbackBlocks)
		}
		fmt.Printf("inferred %s: %d pairs measured%s, %d retries, %.2f simulated seconds\n",
			p.Name, res.Pairs, mode, res.Retries, m.S.SimulatedSeconds(res.Cycles))
	}

	fmt.Println()
	fmt.Print(top.String())

	if *validate && osView != nil {
		fmt.Println()
		diffs := top.CompareOS(osView.CoreOfCtx, osView.SocketOfCtx, osView.NodeOfSocket)
		if len(diffs) == 0 {
			fmt.Println("OS comparison: topologies match")
		} else {
			fmt.Println("OS comparison: DIVERGENCES FOUND (the OS may be misconfigured):")
			for _, d := range diffs {
				fmt.Println("  -", d)
			}
		}
	}

	if *heatmap && inferRes != nil {
		fmt.Println()
		fmt.Print(inferRes.Heatmap())
	}
	if *csv && inferRes != nil {
		fmt.Println()
		fmt.Print(inferRes.CSV())
	}

	if *dot {
		fmt.Println()
		fmt.Println(top.DotIntraSocket(0))
		fmt.Println(top.DotCrossSocket())
	}

	if *out != "" {
		fail(mctop.Save(*out, top))
		fmt.Printf("\ndescription file written to %s\n", *out)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctop:", err)
		os.Exit(1)
	}
}
