// Command mctop infers the MCTOP topology of a machine — one of the five
// simulated platforms of the paper or, best effort, the real host — then
// prints it, optionally renders its Graphviz graphs, validates it against
// the OS view, and saves a description file.
//
// Usage:
//
//	mctop -platform Opteron -dot -out opteron.mct
//	mctop -platform Ivy -validate
//	mctop -host
//	mctop -load opteron.mct
package main

import (
	"flag"
	"fmt"
	"os"

	mctop "repro"
	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/plugins"
	"repro/internal/sim"
)

func main() {
	var (
		platform = flag.String("platform", "Ivy", "simulated platform: Ivy, Westmere, Haswell, Opteron, SPARC")
		seed     = flag.Uint64("seed", 42, "simulator noise seed")
		reps     = flag.Int("reps", 201, "repetitions per context pair (paper default: 2000)")
		host     = flag.Bool("host", false, "infer the real host instead of a simulated platform")
		load     = flag.String("load", "", "load a description file instead of inferring")
		out      = flag.String("out", "", "save the description file here")
		dot      = flag.Bool("dot", false, "print the Graphviz graphs")
		heatmap  = flag.Bool("heatmap", false, "print the latency-table heatmap (Figure 6)")
		csv      = flag.Bool("csv", false, "print the raw latency table as CSV")
		validate = flag.Bool("validate", false, "compare the inferred topology against the OS view")
	)
	flag.Parse()

	var top *mctop.Topology
	var osView *machine.OSView
	var inferRes *mctopalg.Result

	switch {
	case *load != "":
		var err error
		top, err = mctop.Load(*load)
		fail(err)
		fmt.Printf("loaded %s\n", *load)
	case *host:
		fmt.Println("inferring host topology (best effort; the Go runtime is noisy)...")
		t, res, err := mctop.InferHost(mctop.Options{Reps: *reps})
		fail(err)
		top = t
		inferRes = res
		fmt.Printf("measured %d pairs, %d retries, rdtsc overhead ~%d ns\n",
			res.Pairs, res.Retries, res.RdtscOverhead)
	default:
		p, err := sim.ByName(*platform)
		fail(err)
		m, err := machine.NewSim(p, *seed)
		fail(err)
		o := mctopalg.DefaultOptions()
		o.Reps = *reps
		res, err := mctopalg.Infer(m, o)
		fail(err)
		enriched, err := plugins.Enrich(m, res.Topology, nil)
		fail(err)
		top = enriched
		inferRes = res
		v := m.OSView()
		osView = &v
		fmt.Printf("inferred %s: %d pairs measured, %d retries, %.2f simulated seconds\n",
			p.Name, res.Pairs, res.Retries, m.S.SimulatedSeconds(res.Cycles))
	}

	fmt.Println()
	fmt.Print(top.String())

	if *validate && osView != nil {
		fmt.Println()
		diffs := top.CompareOS(osView.CoreOfCtx, osView.SocketOfCtx, osView.NodeOfSocket)
		if len(diffs) == 0 {
			fmt.Println("OS comparison: topologies match")
		} else {
			fmt.Println("OS comparison: DIVERGENCES FOUND (the OS may be misconfigured):")
			for _, d := range diffs {
				fmt.Println("  -", d)
			}
		}
	}

	if *heatmap && inferRes != nil {
		fmt.Println()
		fmt.Print(inferRes.Heatmap())
	}
	if *csv && inferRes != nil {
		fmt.Println()
		fmt.Print(inferRes.CSV())
	}

	if *dot {
		fmt.Println()
		fmt.Println(top.DotIntraSocket(0))
		fmt.Println(top.DotCrossSocket())
	}

	if *out != "" {
		fail(mctop.Save(*out, top))
		fmt.Printf("\ndescription file written to %s\n", *out)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctop:", err)
		os.Exit(1)
	}
}
