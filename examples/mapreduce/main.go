// Metis-style MapReduce with MCTOP-PLACE (Section 7.3): Word Count and
// K-Means on worker pools pinned by high-level placement policies.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	mctop "repro"
	"repro/internal/mapreduce"
	"repro/internal/place"
)

func main() {
	top, err := mctop.InferPlatform("Ivy", 42)
	if err != nil {
		log.Fatal(err)
	}

	// Word Count with the RR placement the paper selects for it on x86.
	pl, err := place.New(top, place.RRCore, place.Options{NThreads: 8})
	if err != nil {
		log.Fatal(err)
	}
	words := []string{"topology", "latency", "bandwidth", "socket", "core", "mctop"}
	rng := rand.New(rand.NewSource(3))
	var chunks []string
	for c := 0; c < 16; c++ {
		var sb strings.Builder
		for i := 0; i < 5000; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		chunks = append(chunks, sb.String())
	}
	counts, err := mapreduce.WordCount(chunks, 0, pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("word counts (RR_CORE placement):")
	for _, w := range words {
		fmt.Printf("  %-10s %d\n", w, counts[w])
	}

	// K-Means with the compact CON_CORE_HWC placement.
	plK, err := place.New(top, place.ConCoreHWC, place.Options{NThreads: 8})
	if err != nil {
		log.Fatal(err)
	}
	var points []mapreduce.Point
	centers := []mapreduce.Point{{X: 0, Y: 0}, {X: 20, Y: 20}, {X: -15, Y: 10}}
	for i := 0; i < 30000; i++ {
		c := centers[i%3]
		points = append(points, mapreduce.Point{
			X: c.X + rng.Float64() - 0.5, Y: c.Y + rng.Float64() - 0.5})
	}
	got, iters, err := mapreduce.KMeans(points, 3, 50, 8, plK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-means converged in %d iterations (CON_CORE_HWC placement):\n", iters)
	for _, c := range got {
		fmt.Printf("  centroid (%.2f, %.2f)\n", c.X, c.Y)
	}

	// The Figure 10 model for this machine.
	rows, err := mapreduce.ModelFig10(top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 10 model (relative to stock Metis, lower is better):")
	for _, r := range rows {
		fmt.Printf("  %-12s %v: time %.3f, energy %.3f\n", r.Workload, r.Policy, r.RelTime, r.RelEnergy)
	}
}
