// MCTOP MP (Section 7.4): an OpenMP-style runtime with runtime-switchable
// placement policies and automatic policy selection, driving PageRank over
// a synthetic power-law graph.
package main

import (
	"fmt"
	"log"

	mctop "repro"
	"repro/internal/graph"
	"repro/internal/omp"
	"repro/internal/place"
)

func main() {
	top, err := mctop.InferPlatform("Ivy", 42)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := omp.New(top)
	if err != nil {
		log.Fatal(err)
	}

	g := graph.GenPowerLaw(200_000, 8, 7)
	fmt.Printf("graph: %d nodes, %d edges\n", g.N, g.NumEdges())

	// Default OpenMP behaviour: unpinned.
	fmt.Printf("default binding policy: %v, team size %d\n", rt.BindingPolicy(), rt.NumThreads())

	// The paper's omp_set_binding_policy: switch to BALANCE for the
	// bandwidth-bound PageRank region...
	if err := rt.SetBindingPolicy(place.BalanceCore, place.Options{NThreads: 8}); err != nil {
		log.Fatal(err)
	}
	ranks := graph.PageRank(g, 10, 0.85, rt.NumThreads())
	fmt.Printf("PageRank under %v: rank[0] = %.3g (hub)\n", rt.BindingPolicy(), ranks[0])

	// ...and to a compact policy for the latency-bound BFS region.
	if err := rt.SetBindingPolicy(place.ConCoreHWC, place.Options{NThreads: 8}); err != nil {
		log.Fatal(err)
	}
	dist := graph.HopDistance(g, 0, rt.NumThreads())
	reached := 0
	for _, d := range dist {
		if d >= 0 {
			reached++
		}
	}
	fmt.Printf("BFS under %v: reached %d/%d nodes\n", rt.BindingPolicy(), reached, g.N)

	// Automatic policy selection: sample the region under candidates.
	chosen, err := rt.AutoSelect(
		[]place.Policy{place.ConCoreHWC, place.BalanceCore, place.RRCore},
		place.Options{NThreads: 8},
		func() { graph.PageRank(g, 1, 0.85, rt.NumThreads()) },
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-selected policy for PageRank: %v\n", chosen)

	// The Figure 12 model for this machine.
	rows, err := omp.ModelFig12(top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 12 model (MCTOP MP / default OpenMP, lower is better):")
	for _, r := range rows {
		fmt.Printf("  %-18s %-28v %.3f\n", r.Kernel, r.Chosen, r.RelTime)
	}
}
