// Topology-aware mergesort (Section 7.2): run the real mctop_sort and its
// bitonic-kernel variant on real data, then print a Figure 9 model row.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	mctop "repro"
	"repro/internal/msort"
)

func main() {
	top, err := mctop.InferPlatform("Ivy", 42)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	data := make([]int32, 4<<20)
	for i := range data {
		data[i] = int32(rng.Int63())
	}

	run := func(name string, sortFn func([]int32) error) {
		d := append([]int32(nil), data...)
		start := time.Now()
		if err := sortFn(d); err != nil {
			log.Fatal(err)
		}
		if !msort.SortedInt32(d) {
			log.Fatalf("%s produced unsorted output", name)
		}
		fmt.Printf("%-22s %8d elements in %v\n", name, len(d), time.Since(start).Round(time.Millisecond))
	}

	run("parallel baseline", func(d []int32) error { msort.ParallelSort(d, 8); return nil })
	run("mctop_sort", func(d []int32) error { return msort.MCTOPSort(d, top, 8, 0) })
	run("mctop_sort_sse", func(d []int32) error { return msort.MCTOPSortSSE(d, top, 8, 0) })

	fmt.Println("\nFigure 9 model (1 GB of ints, full machine):")
	for _, v := range []msort.Variant{msort.VariantGNU, msort.VariantMCTOP, msort.VariantMCTOPSSE} {
		row, err := msort.ModelFig9(top, v, top.NumHWContexts())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %.2f s (seq %.2f + merge %.2f)\n",
			row.Variant, row.TotalSec(), row.SeqSec, row.MergeSec)
	}
}
