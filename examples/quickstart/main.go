// Quickstart: infer a topology, query the MCTOP abstraction, build a
// topology-aware thread allocator, and round-trip the description file —
// the complete basic workflow of the paper's Sections 2 and 5, through the
// MCTOP-LIB-shaped client API (context-aware inference, functional
// options, composable policies, Alloc).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	mctop "repro"
)

func main() {
	ctx := context.Background()

	// Infer the paper's 2-socket Ivy Bridge (simulated; seed fixes the
	// measurement noise so runs are reproducible).
	top, res, err := mctop.InferDetailed(ctx, "Ivy", 42, mctop.WithReps(201))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inferred %s: %d contexts, %d cores, %d sockets, SMT=%d\n",
		top.Name(), top.NumHWContexts(), top.NumCores(), top.NumSockets(), top.SMTWays())
	fmt.Printf("latency levels:")
	for _, c := range res.Clusters {
		fmt.Printf(" %d", c.Median)
	}
	fmt.Println(" cycles")

	// The query interface of Section 2.
	fmt.Printf("local node of context 0: node %d\n", top.GetLocalNode(0).ID)
	fmt.Printf("latency ctx0<->ctx20 (SMT siblings): %d cycles\n", top.GetLatency(0, 20))
	fmt.Printf("latency ctx0<->ctx10 (cross-socket): %d cycles\n", top.GetLatency(0, 10))
	fmt.Printf("cores on socket 0: %d\n", len(top.SocketGetCores(top.Socket(0))))
	a, b := top.MinLatencyPair()
	fmt.Printf("best-connected socket pair: %d-%d\n", a.ID, b.ID)

	// Place 30 threads compactly — the placement report of Figure 7.
	// Policies are typed values; an Alloc is the mctop_alloc-style object
	// threads pin against.
	alloc, err := mctop.NewAlloc(top, mctop.ConHWC, mctop.WithThreads(30))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(alloc.Report())
	hwc, err := alloc.Pin(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thread 0 pinned to hardware context %d\n", hwc)

	// Combinators compose new policies from the builtins: round-robin over
	// socket 0's cores, capped at 8 threads.
	capped, err := mctop.NewAlloc(top, mctop.OnSockets(mctop.RRCore, 0).Limit(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s places %d threads: %v\n", capped.PolicyName(), capped.NumHWContexts(), capped.Contexts())

	// Description files: create once, load forever (Section 2).
	dir, err := os.MkdirTemp("", "mctop")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ivy.mct")
	if err := mctop.Save(path, top); err != nil {
		log.Fatal(err)
	}
	loaded, err := mctop.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround-tripped description file: %s (max latency %d cycles)\n",
		path, loaded.MaxLatency())
}
