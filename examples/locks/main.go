// Educated lock backoffs (Sections 5 and 7.1): derive the backoff quantum
// from MCTOP's latencies, run the real Go spinlocks, and regenerate a
// Figure 8 row on the simulated Opteron's coherence fabric.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	mctop "repro"
	"repro/internal/contend"
	"repro/internal/locks"
	"repro/internal/sim"
)

func main() {
	top, err := mctop.InferPlatform("Opteron", 42)
	if err != nil {
		log.Fatal(err)
	}

	// The educated quantum: the maximum communication latency between any
	// two participating threads.
	participants := []int{0, 1, 6, 7, 12, 13, 18, 19} // sockets 0-3
	backoff := locks.EducatedBackoff(top, participants, false)
	fmt.Printf("educated backoff quantum for %v: %d cycles\n", participants, backoff.Quantum)
	fmt.Printf("whole-machine quantum: %d cycles\n", top.MaxLatency())

	// Real locks under real goroutines.
	for _, alg := range locks.Algorithms() {
		l := locks.New(alg, backoff)
		var counter int
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20000; i++ {
					l.Lock()
					counter++
					l.Unlock()
				}
			}()
		}
		wg.Wait()
		fmt.Printf("%-7s with educated backoff: %d acquisitions in %v\n",
			alg, counter, time.Since(start).Round(time.Millisecond))
	}

	// Figure 8 on the simulated coherence fabric: educated vs baseline.
	p, err := sim.ByName("Opteron")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nticket lock, educated/baseline throughput (simulated Opteron):")
	for n := 4; n <= p.NumContexts(); n *= 2 {
		threads := make([]int, n)
		for i := range threads {
			threads[i] = i
		}
		cfg := contend.Config{Platform: p, Threads: threads, Alg: locks.AlgTicket,
			CSWork: 1000, PauseWork: 100, Horizon: 3_000_000}
		_, _, ratio, err := contend.RelativeThroughput(cfg, top.MaxLatency())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d threads: %.2fx\n", n, ratio)
	}
}
