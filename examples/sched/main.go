// Co-scheduling with the effective topology (the paper's Section 9 future
// work): multiple applications share one machine; each is admitted with
// the placement that minimizes its predicted runtime given what is already
// running, and the scheduler tracks every node's remaining bandwidth.
package main

import (
	"fmt"
	"log"

	mctop "repro"
	"repro/internal/exec"
	"repro/internal/sched"
)

func main() {
	top, err := mctop.InferPlatform("Ivy", 42)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sched.New(top)
	if err != nil {
		log.Fatal(err)
	}

	// A bandwidth hog streaming from node 0.
	hog := sched.App{Name: "analytics", Threads: 6, Workload: exec.Workload{
		Name: "analytics", Phases: []exec.Phase{{Bytes: 16 << 30, Data: 0}},
	}}
	a, err := s.Admit(hog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted %s: %d threads, %s placement, predicted %.2f s\n",
		a.App, len(a.Ctxs), a.Policy, a.Predicted.Seconds)

	// A latency-sensitive service: the scheduler steers it away from the
	// contended socket.
	svc := sched.App{Name: "service", Threads: 6, Workload: exec.Workload{
		Name: "service", Phases: []exec.Phase{{
			WorkCycles: 5e9, SMTFriendly: 0.3, Bytes: 4 << 30, Data: exec.DataLocal,
		}},
	}}
	b, err := s.Admit(svc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted %s: %d threads, %s placement, predicted %.2f s\n",
		b.App, len(b.Ctxs), b.Policy, b.Predicted.Seconds)
	sock := map[int]int{}
	for _, c := range b.Ctxs {
		sock[top.Context(c).Socket.ID]++
	}
	fmt.Printf("service threads per socket: %v (steered off the hog's socket)\n", sock)

	fmt.Println()
	fmt.Print(s.String())

	// The hog finishes; its bandwidth comes back.
	if err := s.Remove("analytics"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter analytics finishes, node 0 effective bandwidth: %.1f GB/s\n",
		s.EffectiveBandwidth(0))
}
