package mctop

import (
	"context"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/sim"
)

// Policy is the composable placement-policy interface of the client API
// (internal/place.Orderer): the 12 builtin policies of Table 2 implement
// it, combinators wrap any Policy into a new one, and applications
// implement it to plug in their own mapping strategies.
type Policy = place.Orderer

// PolicyChain is a Policy with fluent combinator methods, so compositions
// read left to right: mctop.OnSockets(mctop.RRCore, 0).Limit(8).
type PolicyChain = place.Chain

// The 12 builtin placement policies of Table 2, usable wherever a Policy
// is expected (NewAlloc, combinators, Registry.PlaceWithContext).
const (
	None           = place.None
	Sequential     = place.Sequential
	ConHWC         = place.ConHWC
	ConCoreHWC     = place.ConCoreHWC
	ConCore        = place.ConCore
	BalanceHWC     = place.BalanceHWC
	BalanceCoreHWC = place.BalanceCoreHWC
	BalanceCore    = place.BalanceCore
	RRCore         = place.RRCore
	RRHWC          = place.RRHWC
	PowerPolicy    = place.PowerPolicy
	RRScale        = place.RRScale
)

// Limit caps a policy's placement order at n slots.
func Limit(p Policy, n int) PolicyChain { return place.Limit(p, n) }

// OnSockets restricts a policy to contexts on the given sockets,
// preserving the base policy's order among them.
func OnSockets(p Policy, ids ...int) PolicyChain { return place.OnSockets(p, ids...) }

// Reverse inverts a policy's order: the contexts the base policy would use
// last come first.
func Reverse(p Policy) PolicyChain { return place.Reverse(p) }

// RegisterPolicy makes a custom policy resolvable by its Name — through
// ResolvePolicy, the Registry's string-keyed placements, and mctopd's
// ?policy= parameter. See place.Register for the naming rules.
func RegisterPolicy(p Policy) error { return place.Register(p) }

// UnregisterPolicy removes a previously registered custom policy.
func UnregisterPolicy(name string) { place.Unregister(name) }

// ResolvePolicy returns the policy for a name: a Table 2 builtin (with or
// without the MCTOP_PLACE_ prefix) or a registered custom policy,
// case-insensitive. Unknown names wrap ErrUnknownPolicy.
func ResolvePolicy(name string) (Policy, error) { return place.Resolve(name) }

// Infer simulates one of the paper's machines, runs MCTOP-ALG and enriches
// the result — the context-aware successor of InferPlatform. The context
// cancels the O(N²) measurement phase between pairs; a cancelled inference
// returns ctx.Err(). Unknown platforms wrap ErrUnknownPlatform.
func Infer(ctx context.Context, platform string, seed uint64, opts ...Option) (*Topology, error) {
	t, _, err := InferDetailed(ctx, platform, seed, opts...)
	return t, err
}

// InferDetailed is Infer with access to the intermediate artifacts of the
// algorithm's four steps (everything Figure 6 shows).
func InferDetailed(ctx context.Context, platform string, seed uint64, opts ...Option) (*Topology, *InferResult, error) {
	o := NewOptions(opts...)
	if o.Reps == 0 {
		o.Reps = 201 // the facade's fast default; WithReps overrides
	}
	return inferPlatform(ctx, platform, seed, o)
}

// inferPlatform is the shared simulate → infer → enrich pipeline behind
// both the context-aware API and the deprecated InferPlatform* shims.
func inferPlatform(ctx context.Context, name string, seed uint64, opt Options) (*Topology, *InferResult, error) {
	p, err := sim.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	m, err := machine.NewSim(p, seed)
	if err != nil {
		return nil, nil, err
	}
	res, err := mctopalg.InferContext(ctx, m, opt)
	if err != nil {
		return nil, nil, err
	}
	var enriched *Topology
	if opt.ForkedEnrich {
		// Fork-per-probe enrichment: deterministic for the seed and
		// byte-identical for every Parallelism, like the measurement
		// phase (see mctopalg.Options.ForkedEnrich for why it is opt-in).
		enriched, err = plugins.EnrichForked(m, res.Topology, nil, opt.Parallelism)
	} else {
		enriched, err = plugins.Enrich(m, res.Topology, nil)
	}
	if err != nil {
		return nil, nil, err
	}
	res.Topology = enriched
	res.Enriched = true
	return enriched, res, nil
}

// InferHostContext runs MCTOP-ALG on the real host, best effort: the Go
// runtime adds far more noise than the paper's C implementation tolerates,
// so the result is illustrative (and may fail with a clustering error on
// noisy machines — retry, as Section 3.5 prescribes). Like the platform
// entry points it runs the enrichment plugins over the inferred topology;
// since host probes are noisy, enrichment is best-effort too — on plugin
// failure the raw topology is returned with Result.Enriched left false.
func InferHostContext(ctx context.Context, opts ...Option) (*Topology, *InferResult, error) {
	return inferHost(ctx, NewOptions(opts...))
}

func inferHost(ctx context.Context, opt Options) (*Topology, *InferResult, error) {
	m := machine.NewHost()
	res, err := mctopalg.InferContext(ctx, m, opt)
	if err != nil {
		return nil, nil, err
	}
	if enriched, eerr := plugins.Enrich(m, res.Topology, nil); eerr == nil {
		res.Topology = enriched
		res.Enriched = true
	}
	return res.Topology, res, nil
}
