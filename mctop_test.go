package mctop

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestPlatformsList(t *testing.T) {
	ps := Platforms()
	want := []string{"Ivy", "Westmere", "Haswell", "Opteron", "SPARC"}
	if len(ps) != len(want) {
		t.Fatalf("platforms = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("platform %d = %s, want %s", i, ps[i], want[i])
		}
	}
}

func TestEndToEndIvy(t *testing.T) {
	top, res, err := InferPlatformDetailed("Ivy", 5, Options{Reps: 51})
	if err != nil {
		t.Fatal(err)
	}
	if top.NumHWContexts() != 40 || top.NumSockets() != 2 {
		t.Fatal("wrong dims")
	}
	if len(res.Clusters) != 3 {
		t.Errorf("clusters = %v", res.Clusters)
	}
	// The query API of Section 2.
	if n := top.GetLocalNode(0); n == nil || n.ID != 0 {
		t.Error("GetLocalNode broken")
	}
	if lat := top.GetLatency(0, 20); lat < 26 || lat > 30 {
		t.Errorf("GetLatency(0,20) = %d", lat)
	}
	cores := top.SocketGetCores(top.Socket(0))
	if len(cores) != 10 {
		t.Errorf("socket 0 cores = %d", len(cores))
	}
	// Placement facade.
	pl, err := Place(top, "CON_HWC", 30)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NCores() != 15 {
		t.Errorf("Figure 7 cores = %d, want 15", pl.NCores())
	}
	report := pl.String()
	if !strings.Contains(report, "MCTOP_PLACE_CON_HWC") {
		t.Error("placement report missing policy name")
	}
	// Save/Load round trip.
	path := filepath.Join(t.TempDir(), "ivy.mct")
	if err := Save(path, top); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.GetLatency(0, 20) != top.GetLatency(0, 20) {
		t.Error("round trip changed latencies")
	}
	// Describe includes both graphs.
	d := Describe(top)
	for _, want := range []string{"MCTOP Ivy", "graph mctop_socket_0", "graph mctop_cross_socket"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	top := MustInfer("Ivy", 6)
	if _, err := Place(top, "NO_SUCH_POLICY", 4); err == nil {
		t.Error("unknown policy should fail")
	}
	if len(PolicyNames()) != 12 {
		t.Errorf("policies = %v", PolicyNames())
	}
}

func TestInferUnknownPlatform(t *testing.T) {
	if _, err := InferPlatform("VAX", 1); err == nil {
		t.Error("unknown platform should fail")
	}
}

func TestValidateFacade(t *testing.T) {
	top := MustInfer("Ivy", 7)
	coreOf := make([]int, 40)
	sockOf := make([]int, 40)
	for c := 0; c < 40; c++ {
		coreOf[c] = c % 20
		sockOf[c] = (c % 20) / 10
	}
	if diffs := Validate(top, coreOf, sockOf, []int{0, 1}); len(diffs) != 0 {
		t.Errorf("unexpected divergences: %v", diffs)
	}
	if diffs := Validate(top, coreOf, sockOf, []int{1, 0}); len(diffs) == 0 {
		t.Error("wrong node map should diverge")
	}
}
