// Package metrics is the daemon's observability core: lock-cheap counters,
// gauges and fixed-bucket histograms, collected in a Registry that renders
// the Prometheus text exposition format (version 0.0.4) — what mctopd
// serves at GET /metrics.
//
// Everything on the observation path is a single atomic operation (plus a
// read-locked map lookup for labeled children), so instrumenting the
// serving hot path costs nanoseconds and is race-clean by construction:
// counters and histogram buckets are atomics, and a scrape reads them
// without stopping writers. The trade-off is the usual one — a scrape is a
// near-point-in-time snapshot, not a globally consistent cut — but every
// individual counter is monotone, which is the invariant scrapers (and our
// monotonicity tests) rely on.
//
// The package deliberately implements the exposition subset this repo
// needs (counter, gauge, histogram; HELP/TYPE headers; escaped label
// values; cumulative le-buckets with +Inf, _sum and _count) rather than
// vendoring a client library: the container bakes in no new dependencies.
// ParseText is the strict reader for that subset, used by the tests that
// assert /metrics stays valid.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefDurationBuckets spans warm cache hits (microseconds) to cold O(N²)
// inferences (seconds) — the dynamic range of one mctopd request.
var DefDurationBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically increasing value. Set exists for mirroring an
// external monotone source (e.g. a store tier's own atomic counters) into
// the exposition at scrape time; it must never be used to decrease a value
// between scrapes.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set overwrites the value — only for mirroring a source that is itself
// monotone.
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract) with a CAS loop: concurrent Adds never
// lose updates.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: one atomic per bucket, an
// atomic sum, no locks. Bounds are upper bounds (le semantics), strictly
// increasing; an implicit +Inf bucket catches the tail.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly increasing at %d (%g after %g)",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is the le bucket the value belongs to; past every
	// bound it lands in +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus base unit).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a read of a histogram's state: Cumulative[i] counts
// observations <= Bounds[i] (the last element, beyond every bound, is the
// total, so Count == Cumulative[len-1]).
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []int64
	Count      int64
	Sum        float64
}

// Snapshot reads the histogram. Each bucket is read atomically; the
// cumulative totals are computed from that single pass, so they are
// monotone by construction even while observations land concurrently.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.counts)),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = cum
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// child is one labeled time series of a family (exactly one of c/g/h set).
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with HELP/TYPE and its labeled children.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string
	bounds []float64      // histogram families
	fn     func() float64 // gauge-func families render this at scrape

	mu       sync.RWMutex
	children map[string]*child
}

const labelSep = "\xff" // never appears in valid label values we emit

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	ch, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch = &child{values: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		ch.c = &Counter{}
	case typeGauge:
		ch.g = &Gauge{}
	case typeHistogram:
		ch.h = newHistogram(f.bounds)
	}
	f.children[key] = ch
	return ch
}

// Registry holds a fixed set of metric families and renders them. Families
// register once (duplicate names panic: two subsystems claiming one name is
// a programming error); observation methods are safe for concurrent use
// with each other and with WritePrometheus.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	hooks    []func()
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, typ metricType, labels []string, bounds []float64, fn func() float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		bounds: bounds, fn: fn,
		children: make(map[string]*child),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil, nil).child(nil).c
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil, nil).child(nil).g
}

// NewGaugeFunc registers a gauge whose value is fn(), evaluated at scrape
// time — for sampling state that already lives elsewhere (queue depths,
// backoff windows) without a write on every change.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, nil, nil, fn)
}

// NewHistogram registers an unlabeled histogram over the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, typeHistogram, nil, bounds, nil).child(nil).h
}

// CounterVec is a counter family with labels; With returns the child for
// one label-value tuple, creating it on first use.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (order matches the
// label names at registration).
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels, nil, nil)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, labels, nil, nil)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).h }

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, typeHistogram, labels, bounds, nil)}
}

// BeforeScrape registers fn to run at the start of every WritePrometheus —
// the hook mirrors state (registry tier counters, say) into metrics so the
// exposition reflects one fresh read per scrape instead of a per-update
// write path.
func (r *Registry) BeforeScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// WritePrometheus renders every family in registration order as Prometheus
// text exposition (HELP, TYPE, then samples sorted by label values).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	fams := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} including extra le pairs for buckets;
// empty when there are no pairs at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(names[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
		return err
	}
	if f.fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn()))
		return err
	}
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	for _, ch := range children {
		switch f.typ {
		case typeCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name,
				labelString(f.labels, ch.values, "", ""), ch.c.Value()); err != nil {
				return err
			}
		case typeGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
				labelString(f.labels, ch.values, "", ""), formatFloat(ch.g.Value())); err != nil {
				return err
			}
		case typeHistogram:
			s := ch.h.Snapshot()
			for i, bound := range s.Bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, ch.values, "le", formatFloat(bound)), s.Cumulative[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, ch.values, "le", "+Inf"), s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
				labelString(f.labels, ch.values, "", ""), formatFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
				labelString(f.labels, ch.values, "", ""), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
