package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fullRegistry builds one registry exercising every metric shape.
func fullRegistry() (*Registry, func()) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Total operations.")
	g := r.NewGauge("test_queue_depth", "Current queue depth.")
	r.NewGaugeFunc("test_sampled", "Sampled at scrape.", func() float64 { return 7.5 })
	h := r.NewHistogram("test_latency_seconds", "Operation latency.", []float64{0.01, 0.1, 1})
	cv := r.NewCounterVec("test_requests_total", "Requests by route and code.", "route", "code")
	hv := r.NewHistogramVec("test_route_seconds", "Latency by route.", []float64{0.001, 1}, "route")
	gv := r.NewGaugeVec("test_entries", "Entries per tier.", "tier")
	touch := func() {
		c.Inc()
		c.Add(2)
		g.Set(4)
		g.Dec()
		h.Observe(0.005)
		h.Observe(0.5)
		h.Observe(50)
		cv.With("/v1/place", "200").Add(3)
		cv.With("/v1/place", "404").Inc()
		cv.With(`/weird"route\n`, "200").Inc()
		hv.With("/v1/topology").ObserveDuration(20 * time.Millisecond)
		gv.With("lru").Set(12)
	}
	return r, touch
}

func scrape(t *testing.T, r *Registry) (string, []Sample) {
	t.Helper()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, body := httpGet(t, ts.URL+"/")
	if resp.StatusCode != 200 {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples, err := ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	return body, samples
}

func sampleMap(samples []Sample) map[string]float64 {
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[s.Key()] = s.Value
	}
	return m
}

func TestExposition(t *testing.T) {
	r, touch := fullRegistry()
	touch()
	body, samples := scrape(t, r)
	m := sampleMap(samples)

	for want, value := range map[string]float64{
		"test_ops_total":   3,
		"test_queue_depth": 3,
		"test_sampled":     7.5,
		`test_requests_total{code="200",route="/v1/place"}`: 3,
		`test_requests_total{code="404",route="/v1/place"}`: 1,
		"test_latency_seconds_count":                        3,
		`test_latency_seconds_bucket{le="0.01"}`:            1,
		`test_latency_seconds_bucket{le="1"}`:               2,
		`test_latency_seconds_bucket{le="+Inf"}`:            3,
		`test_route_seconds_count{route="/v1/topology"}`:    1,
		`test_entries{tier="lru"}`:                          12,
	} {
		if got, ok := m[want]; !ok {
			t.Errorf("missing sample %s\n%s", want, body)
		} else if got != value {
			t.Errorf("%s = %g, want %g", want, got, value)
		}
	}
	if got := m["test_latency_seconds_sum"]; math.Abs(got-50.505) > 1e-9 {
		t.Errorf("histogram sum = %g, want 50.505", got)
	}

	// Every family needs its HELP/TYPE pair (ParseText enforces HELP+TYPE
	// before samples; check the declared types here).
	for _, decl := range []string{
		"# TYPE test_ops_total counter",
		"# TYPE test_queue_depth gauge",
		"# TYPE test_sampled gauge",
		"# TYPE test_latency_seconds histogram",
		"# TYPE test_requests_total counter",
		"# TYPE test_route_seconds histogram",
		"# HELP test_ops_total Total operations.",
	} {
		if !strings.Contains(body, decl+"\n") {
			t.Errorf("missing declaration %q", decl)
		}
	}

	// Label escaping must round-trip through the parser.
	found := false
	for _, s := range samples {
		if s.Name == "test_requests_total" && s.Labels["route"] == "/weird\"route\\n" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped label value did not round-trip:\n%s", body)
	}
}

func TestHistogramBucketsMonotone(t *testing.T) {
	h := newHistogram(DefDurationBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 100) // 0..10s
	}
	s := h.Snapshot()
	prev := int64(-1)
	for i, c := range s.Cumulative {
		if c < prev {
			t.Fatalf("bucket %d cumulative %d below previous %d", i, c, prev)
		}
		prev = c
	}
	if s.Count != 1000 || s.Cumulative[len(s.Cumulative)-1] != 1000 {
		t.Fatalf("count = %d, +Inf = %d, want 1000", s.Count, s.Cumulative[len(s.Cumulative)-1])
	}
	// le semantics: a value exactly on a bound lands in that bucket.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(1)
	if s2 := h2.Snapshot(); s2.Cumulative[0] != 1 {
		t.Fatalf("observe(1) with bound 1: cumulative %v, want it in le=1", s2.Cumulative)
	}
}

func TestBeforeScrapeHook(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_mirrored_total", "Mirrored at scrape.")
	source := int64(0)
	r.BeforeScrape(func() { c.Set(source) })
	source = 41
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "test_mirrored_total 41\n") {
		t.Fatalf("hook did not run before render:\n%s", b.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	mustPanic("duplicate name", func() { r.NewGauge("dup_total", "x") })
	mustPanic("invalid name", func() { r.NewCounter("bad-name", "x") })
	mustPanic("reserved label", func() { r.NewCounterVec("c_total", "x", "le") })
	mustPanic("label arity", func() { r.NewCounterVec("d_total", "x", "a").With("1", "2") })
	mustPanic("unsorted buckets", func() { r.NewHistogram("h_seconds", "x", []float64{1, 1}) })
}

func TestParseTextRejectsInvalid(t *testing.T) {
	for name, doc := range map[string]string{
		"sample without HELP/TYPE": "orphan_total 3\n",
		"bad value":                "# HELP a x\n# TYPE a counter\na notanumber\n",
		"unterminated labels":      "# HELP a x\n# TYPE a counter\na{b=\"c 3\n",
		"garbage comment":          "# WAT a\n",
		"non-monotone buckets": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"+Inf != count": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
	} {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}
