package metrics

// The concurrency contract: every observation is atomic and scrapes run
// concurrently with observers — `go test -race ./internal/metrics/` is a
// CI step. These tests are the workload that race detector runs over.

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// exposition renders the registry to a reader for direct ParseText checks.
func exposition(t *testing.T, r *Registry) *strings.Reader {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return strings.NewReader(b.String())
}

func httpGet(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r, touch := fullRegistry()
	const (
		writers = 8
		rounds  = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				touch()
			}
		}()
	}
	// Scrape continuously while writers hammer the registry; every scrape
	// must stay a valid exposition (cumulative buckets monotone, +Inf ==
	// _count) even mid-write.
	for i := 0; i < 50; i++ {
		if _, err := ParseText(exposition(t, r)); err != nil {
			t.Fatalf("scrape %d invalid under concurrent writes: %v", i, err)
		}
	}
	wg.Wait()

	_, samples := scrape(t, r)
	m := sampleMap(samples)
	wantOps := float64(writers * rounds * 3) // Inc + Add(2) per touch
	if got := m["test_ops_total"]; got != wantOps {
		t.Errorf("test_ops_total = %g, want %g (lost updates)", got, wantOps)
	}
	wantCount := float64(writers * rounds * 3) // three Observes per touch
	if got := m["test_latency_seconds_count"]; got != wantCount {
		t.Errorf("histogram count = %g, want %g (lost observations)", got, wantCount)
	}
}

func TestConcurrentVecChildCreation(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_children_total", "x", "worker")
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			names := []string{"a", "b", "c", "d"}
			for i := 0; i < 200; i++ {
				cv.With(names[(id+i)%len(names)]).Inc()
			}
		}(w)
	}
	wg.Wait()
	var total float64
	_, samples := scrape(t, r)
	for _, s := range samples {
		if s.Name == "test_children_total" {
			total += s.Value
		}
	}
	if total != 16*200 {
		t.Errorf("summed children = %g, want %d", total, 16*200)
	}
}
