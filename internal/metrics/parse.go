package metrics

// ParseText is the strict reader for the exposition subset this package
// emits. It exists so the tests that guard GET /metrics (and the load
// harness's stats-consistency checks) validate real format invariants —
// every line parses, every sample's family carries HELP and TYPE,
// histogram buckets are cumulative and end in +Inf == _count — instead of
// grepping for substrings.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample line.
type Sample struct {
	// Name is the full sample name, including a histogram's _bucket/_sum/
	// _count suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity — name plus sorted label pairs — for
// map lookups in tests.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, s.Labels[n])
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText parses and validates a text exposition. It returns every
// sample, or an error naming the first offending line. Beyond line syntax
// it checks the structural invariants:
//
//   - each family declares # HELP and # TYPE before its first sample;
//   - histogram buckets per series are cumulative (non-decreasing in le
//     order), the +Inf bucket is present, and it equals the _count sample.
func ParseText(r io.Reader) ([]Sample, error) {
	fams := make(map[string]*familyMeta)
	var samples []Sample

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			f := fams[name]
			if f == nil {
				f = &familyMeta{}
				fams[name] = f
			}
			switch fields[1] {
			case "HELP":
				f.help = true
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = fields[3]
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suffix)
			if base != s.Name {
				if f, ok := fams[base]; ok && f.typ == "histogram" {
					fam = base
				}
				break
			}
		}
		f, ok := fams[fam]
		if !ok || !f.help || f.typ == "" {
			return nil, fmt.Errorf("line %d: sample %s lacks preceding # HELP and # TYPE", lineNo, s.Name)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := checkHistograms(samples, fams); err != nil {
		return nil, err
	}
	return samples, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value on %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, escaped := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuote:
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set on %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp field would be a second token; we never emit one.
	val := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		val = rest[:i]
	}
	var err error
	if val == "+Inf" {
		s.Value = math.Inf(1)
	} else if s.Value, err = strconv.ParseFloat(val, 64); err != nil {
		return s, fmt.Errorf("bad value %q: %v", val, err)
	}
	return s, nil
}

func parseLabels(s string, into map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label pair without '=' in %q", s)
		}
		name := s[:eq]
		if !labelRE.MatchString(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s: unquoted value", name)
		}
		var val strings.Builder
		i := 1
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return fmt.Errorf("label %s: bad escape \\%c", name, s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := into[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		into[name] = val.String()
		s = s[i+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if len(s) > 0 {
			return fmt.Errorf("trailing garbage %q after label %s", s, name)
		}
	}
	return nil
}

type familyMeta struct {
	help bool
	typ  string
}

// checkHistograms verifies cumulative bucket monotonicity and
// +Inf == _count for every histogram series.
func checkHistograms(samples []Sample, fams map[string]*familyMeta) error {
	type series struct {
		buckets map[float64]float64 // le -> cumulative count
		count   float64
		hasCnt  bool
	}
	all := make(map[string]*series)
	seriesKey := func(base string, labels map[string]string) string {
		s := Sample{Name: base, Labels: map[string]string{}}
		for k, v := range labels {
			if k != "le" {
				s.Labels[k] = v
			}
		}
		return s.Key()
	}
	for _, s := range samples {
		base, isBucket := strings.CutSuffix(s.Name, "_bucket")
		cntBase, isCount := strings.CutSuffix(s.Name, "_count")
		switch {
		case isBucket:
			if f, ok := fams[base]; !ok || f.typ != "histogram" {
				continue
			}
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", base)
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
			} else {
				var err error
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("histogram %s: bad le %q", base, le)
				}
			}
			k := seriesKey(base, s.Labels)
			sr := all[k]
			if sr == nil {
				sr = &series{buckets: map[float64]float64{}}
				all[k] = sr
			}
			sr.buckets[bound] = s.Value
		case isCount:
			if f, ok := fams[cntBase]; !ok || f.typ != "histogram" {
				continue
			}
			k := seriesKey(cntBase, s.Labels)
			sr := all[k]
			if sr == nil {
				sr = &series{buckets: map[float64]float64{}}
				all[k] = sr
			}
			sr.count, sr.hasCnt = s.Value, true
		}
	}
	for key, sr := range all {
		bounds := make([]float64, 0, len(sr.buckets))
		for b := range sr.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		if len(bounds) == 0 || !math.IsInf(bounds[len(bounds)-1], 1) {
			return fmt.Errorf("histogram series %s: no +Inf bucket", key)
		}
		prev := -1.0
		for _, b := range bounds {
			if c := sr.buckets[b]; c < prev {
				return fmt.Errorf("histogram series %s: bucket le=%g count %g below previous %g",
					key, b, c, prev)
			} else {
				prev = c
			}
		}
		if !sr.hasCnt {
			return fmt.Errorf("histogram series %s: missing _count", key)
		}
		if inf := sr.buckets[math.Inf(1)]; inf != sr.count {
			return fmt.Errorf("histogram series %s: +Inf bucket %g != _count %g", key, inf, sr.count)
		}
	}
	return nil
}
