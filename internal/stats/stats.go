// Package stats provides the small statistical toolkit used by MCTOP-ALG:
// medians, standard deviations, empirical CDFs, and the one-dimensional
// latency clustering of Section 3.2 of the MCTOP paper (EuroSys '17).
//
// All functions are deterministic and allocate at most O(n).
package stats

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Median returns the median of xs. It copies xs, so the input is not
// reordered. Median panics on an empty slice: callers in this module always
// operate on non-empty measurement sets, so an empty input is a programming
// error, not a runtime condition.
func Median(xs []int64) int64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MedianInPlace returns the median of xs, sorting xs in place instead of
// copying it. It exists for the measurement hot loop, which reuses one
// buffer across hundreds of thousands of pairs and must not allocate per
// pair; everywhere else prefer Median, which leaves its input untouched.
func MedianInPlace(xs []int64) int64 {
	if len(xs) == 0 {
		panic("stats: MedianInPlace of empty slice")
	}
	slices.Sort(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Mean returns the arithmetic mean of xs as a float64.
func Mean(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// Stdev returns the population standard deviation of xs.
func Stdev(xs []int64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := float64(x) - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []int64) (min, max int64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// CDFPoint is a single point of an empirical cumulative distribution
// function: the fraction of samples with Value <= Value.
type CDFPoint struct {
	Value int64
	Frac  float64
}

// CDF computes the empirical CDF of xs as a sequence of (value, fraction)
// points in increasing value order, one point per distinct value. This is
// the curve plotted in Figure 6 (2a) of the paper.
func CDF(xs []int64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var pts []CDFPoint
	n := float64(len(s))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		pts = append(pts, CDFPoint{Value: s[i], Frac: float64(j) / n})
		i = j
	}
	return pts
}

// Triplet summarizes a latency cluster with its minimum, median and maximum
// values, exactly as MCTOP-ALG records each detected cluster (Section 3.2).
type Triplet struct {
	Min, Median, Max int64
}

func (t Triplet) String() string {
	return fmt.Sprintf("[%d %d %d]", t.Min, t.Median, t.Max)
}

// Contains reports whether v falls in the closed interval [Min, Max].
func (t Triplet) Contains(v int64) bool { return v >= t.Min && v <= t.Max }

// ClusterOptions tunes the 1-D clustering of latency values.
type ClusterOptions struct {
	// RelGap is the minimum relative gap between consecutive sorted values
	// for a cluster boundary: a boundary is placed between a and b (a < b)
	// when (b-a) > RelGap*a and (b-a) > AbsGap. The defaults mirror the
	// separations visible on real machines (SMT vs core vs socket levels
	// differ by 3-4x, intra-cluster jitter by a few percent).
	RelGap float64
	// AbsGap is the minimum absolute gap (cycles) for a boundary, protecting
	// tiny values (e.g. the 0 diagonal) from spurious splits.
	AbsGap int64
	// MaxClusters, when > 0, caps the number of clusters; the smallest gaps
	// are merged first if the cap is exceeded.
	MaxClusters int
}

// DefaultClusterOptions returns the options used by libmctop.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{RelGap: 0.25, AbsGap: 10, MaxClusters: 0}
}

// Cluster partitions xs into latency clusters and returns one Triplet per
// cluster in increasing value order. The clustering is gap based: sorted
// values are split wherever consecutive values are separated by more than
// the configured relative and absolute gaps. This implements step 2 of
// MCTOP-ALG ("Clusters close values into groups").
func Cluster(xs []int64, opt ClusterOptions) []Triplet {
	if len(xs) == 0 {
		return nil
	}
	if opt.RelGap <= 0 {
		opt.RelGap = DefaultClusterOptions().RelGap
	}
	if opt.AbsGap <= 0 {
		opt.AbsGap = DefaultClusterOptions().AbsGap
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })

	// Find boundaries.
	var groups [][]int64
	start := 0
	for i := 1; i < len(s); i++ {
		gap := s[i] - s[i-1]
		if gap > opt.AbsGap && float64(gap) > opt.RelGap*float64(s[i-1]) {
			groups = append(groups, s[start:i])
			start = i
		}
	}
	groups = append(groups, s[start:])

	// Optionally merge smallest inter-group gaps until under the cap.
	for opt.MaxClusters > 0 && len(groups) > opt.MaxClusters {
		best := 1
		bestGap := int64(math.MaxInt64)
		for i := 1; i < len(groups); i++ {
			gap := groups[i][0] - groups[i-1][len(groups[i-1])-1]
			if gap < bestGap {
				bestGap = gap
				best = i
			}
		}
		merged := append(append([]int64(nil), groups[best-1]...), groups[best]...)
		ng := make([][]int64, 0, len(groups)-1)
		ng = append(ng, groups[:best-1]...)
		ng = append(ng, merged)
		ng = append(ng, groups[best+1:]...)
		groups = ng
	}

	out := make([]Triplet, len(groups))
	for i, g := range groups {
		out[i] = Triplet{Min: g[0], Median: Median(g), Max: g[len(g)-1]}
	}
	return out
}

// Assign maps value v to the index of the cluster whose [Min, Max] interval
// contains it, or to the nearest cluster median if no interval contains it.
// The second return value is false only when clusters is empty.
func Assign(clusters []Triplet, v int64) (int, bool) {
	if len(clusters) == 0 {
		return 0, false
	}
	for i, c := range clusters {
		if c.Contains(v) {
			return i, true
		}
	}
	best, bestDist := 0, int64(math.MaxInt64)
	for i, c := range clusters {
		d := v - c.Median
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			best = i
		}
	}
	return best, true
}

// Normalize replaces every value in table with the median of its assigned
// cluster, producing the normalized latency table of Figure 6 (2b). The
// diagonal (self-latency zero) is preserved as-is. Normalize returns a new
// table; the input is not modified.
func Normalize(table [][]int64, clusters []Triplet) [][]int64 {
	out := make([][]int64, len(table))
	for i, row := range table {
		out[i] = make([]int64, len(row))
		for j, v := range row {
			if i == j {
				out[i][j] = 0
				continue
			}
			idx, ok := Assign(clusters, v)
			if !ok {
				out[i][j] = v
				continue
			}
			out[i][j] = clusters[idx].Median
		}
	}
	return out
}
