package stats

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{1, 2, 3}, 2},
		{[]int64{3, 1, 2}, 2},
		{[]int64{1, 2, 3, 4}, 2},
		{[]int64{4, 4, 4, 4}, 4},
		{[]int64{10, 0}, 5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []int64{9, 1, 5}
	Median(in)
	if !reflect.DeepEqual(in, []int64{9, 1, 5}) {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Median of empty slice did not panic")
		}
	}()
	Median(nil)
}

func TestMeanStdev(t *testing.T) {
	xs := []int64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Stdev(xs); got != 2 {
		t.Errorf("Stdev = %v, want 2", got)
	}
	if got := Stdev([]int64{42}); got != 0 {
		t.Errorf("Stdev single = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]int64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%d,%d), want (-1,7)", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = (%d,%d), want (0,0)", min, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("P50 = %d, want 5", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %d, want 1", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("P100 = %d, want 10", got)
	}
	if got := Percentile(xs, 90); got != 9 {
		t.Errorf("P90 = %d, want 9", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]int64{1, 1, 2, 4})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1.0}}
	if !reflect.DeepEqual(pts, want) {
		t.Errorf("CDF = %v, want %v", pts, want)
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int64, 500)
	for i := range xs {
		xs[i] = rng.Int63n(1000)
	}
	pts := CDF(xs)
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Fatalf("CDF values not increasing at %d", i)
		}
		if pts[i].Frac <= pts[i-1].Frac {
			t.Fatalf("CDF fractions not increasing at %d", i)
		}
	}
	if last := pts[len(pts)-1].Frac; last != 1.0 {
		t.Errorf("final CDF fraction = %v, want 1.0", last)
	}
}

// TestClusterIvyLevels feeds the latency populations of the paper's Ivy
// example (28-cycle SMT, ~112-cycle intra-socket, ~308-cycle cross-socket)
// and expects exactly three clusters with the right medians.
func TestClusterIvyLevels(t *testing.T) {
	var xs []int64
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		xs = append(xs, 28+rng.Int63n(3)-1) // 27..29
	}
	for i := 0; i < 400; i++ {
		xs = append(xs, 112+rng.Int63n(41)-20) // 92..132
	}
	for i := 0; i < 400; i++ {
		xs = append(xs, 308+rng.Int63n(41)-20) // 288..328
	}
	cl := Cluster(xs, DefaultClusterOptions())
	if len(cl) != 3 {
		t.Fatalf("got %d clusters (%v), want 3", len(cl), cl)
	}
	if cl[0].Median < 27 || cl[0].Median > 29 {
		t.Errorf("SMT cluster median = %d", cl[0].Median)
	}
	if cl[1].Median < 100 || cl[1].Median > 124 {
		t.Errorf("intra-socket cluster median = %d", cl[1].Median)
	}
	if cl[2].Median < 296 || cl[2].Median > 320 {
		t.Errorf("cross-socket cluster median = %d", cl[2].Median)
	}
}

func TestClusterSingleValue(t *testing.T) {
	cl := Cluster([]int64{100, 100, 100}, DefaultClusterOptions())
	if len(cl) != 1 || cl[0].Median != 100 || cl[0].Min != 100 || cl[0].Max != 100 {
		t.Errorf("Cluster = %v", cl)
	}
}

func TestClusterMaxClusters(t *testing.T) {
	xs := []int64{10, 11, 50, 51, 100, 101, 500, 501}
	cl := Cluster(xs, ClusterOptions{RelGap: 0.2, AbsGap: 5, MaxClusters: 2})
	if len(cl) != 2 {
		t.Fatalf("got %d clusters, want 2 (cap)", len(cl))
	}
	// The largest gap (101 -> 500) must survive the merging.
	if cl[0].Max >= 500 || cl[1].Min < 500 {
		t.Errorf("cap merged the wrong boundary: %v", cl)
	}
}

// Property: clustering yields a partition — every input value is contained
// in exactly one cluster interval, clusters are ordered and non-overlapping.
func TestClusterPartitionProperty(t *testing.T) {
	f := func(seed int64, nLevels uint8, perLevel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		levels := int(nLevels%4) + 1
		per := int(perLevel%20) + 5
		var xs []int64
		base := int64(20)
		for l := 0; l < levels; l++ {
			for i := 0; i < per; i++ {
				xs = append(xs, base+rng.Int63n(base/10+1))
			}
			base *= 3
		}
		cl := Cluster(xs, DefaultClusterOptions())
		// Ordered, non-overlapping.
		for i := 1; i < len(cl); i++ {
			if cl[i].Min <= cl[i-1].Max {
				return false
			}
		}
		// Every value in exactly one interval.
		for _, v := range xs {
			count := 0
			for _, c := range cl {
				if c.Contains(v) {
					count++
				}
			}
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: normalization is idempotent and only emits cluster medians (or
// zero on the diagonal).
func TestNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		table := make([][]int64, n)
		var all []int64
		for i := range table {
			table[i] = make([]int64, n)
			for j := range table[i] {
				if i == j {
					continue
				}
				base := int64(100)
				if (i < n/2) != (j < n/2) {
					base = 300
				}
				v := base + rng.Int63n(11) - 5
				table[i][j] = v
				all = append(all, v)
			}
		}
		cl := Cluster(all, DefaultClusterOptions())
		norm := Normalize(table, cl)
		norm2 := Normalize(norm, cl)
		if !reflect.DeepEqual(norm, norm2) {
			return false
		}
		medians := map[int64]bool{0: true}
		for _, c := range cl {
			medians[c.Median] = true
		}
		for i := range norm {
			for j := range norm[i] {
				if !medians[norm[i][j]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAssign(t *testing.T) {
	cl := []Triplet{{25, 28, 31}, {90, 112, 140}, {290, 308, 330}}
	if idx, ok := Assign(cl, 28); !ok || idx != 0 {
		t.Errorf("Assign(28) = %d,%v", idx, ok)
	}
	if idx, ok := Assign(cl, 139); !ok || idx != 1 {
		t.Errorf("Assign(139) = %d,%v", idx, ok)
	}
	// Outside all intervals: nearest median.
	if idx, ok := Assign(cl, 200); !ok || idx != 1 {
		t.Errorf("Assign(200) = %d,%v, want 1", idx, ok)
	}
	if idx, ok := Assign(cl, 1000); !ok || idx != 2 {
		t.Errorf("Assign(1000) = %d,%v, want 2", idx, ok)
	}
	if _, ok := Assign(nil, 5); ok {
		t.Error("Assign on empty clusters should return ok=false")
	}
}

func TestNormalizePreservesDiagonal(t *testing.T) {
	table := [][]int64{{0, 100}, {100, 0}}
	cl := Cluster([]int64{100, 100}, DefaultClusterOptions())
	norm := Normalize(table, cl)
	if norm[0][0] != 0 || norm[1][1] != 0 {
		t.Errorf("diagonal not preserved: %v", norm)
	}
	if norm[0][1] != 100 || norm[1][0] != 100 {
		t.Errorf("off-diagonal wrong: %v", norm)
	}
}

func TestClusterSortedInput(t *testing.T) {
	xs := []int64{500, 20, 21, 480, 19, 510}
	cl := Cluster(xs, DefaultClusterOptions())
	if len(cl) != 2 {
		t.Fatalf("want 2 clusters, got %v", cl)
	}
	if !sort.SliceIsSorted(cl, func(i, j int) bool { return cl[i].Median < cl[j].Median }) {
		t.Errorf("clusters not sorted: %v", cl)
	}
}
