// Package machine defines the narrow interface between MCTOP-ALG and the
// hardware it measures.
//
// The paper stresses that the inference algorithm needs only three things
// from the underlying OS: the number of hardware contexts, the number of
// memory nodes, and a way to pin threads to contexts (Section 3). This
// package captures that contract — plus the raw measurement primitives
// (timestamp reads, CAS on a shared line, calibrated spin loops) — so the
// exact same algorithm code runs against the deterministic simulator
// (internal/sim) and, best-effort, against the real host.
package machine

// Thread is a software thread pinned to one hardware context. All
// measurement primitives of Figure 5 are expressed through it.
type Thread interface {
	// Ctx returns the hardware context the thread is pinned to.
	Ctx() int
	// Pin migrates the thread to another hardware context.
	Pin(ctx int) error
	// Rdtsc reads the timestamp counter. Reading has non-negligible cost
	// which callers must estimate and deduct (Section 3.5).
	Rdtsc() int64
	// CAS performs an atomic compare-and-swap on the given shared cache
	// line, bringing it into the Modified state.
	CAS(line uint64)
	// Load reads the given shared cache line.
	Load(line uint64)
	// Store writes the given shared cache line.
	Store(line uint64)
	// SpinWork busy-spins for approximately the given amount of work.
	SpinWork(units int64)
}

// Machine is what MCTOP-ALG requires from the platform it runs on.
type Machine interface {
	// Name identifies the machine (platform name or host description).
	Name() string
	// NumHWContexts is the number of schedulable hardware contexts.
	NumHWContexts() int
	// NumNodes is the number of memory nodes the OS reports.
	NumNodes() int
	// NewThread creates a thread pinned to the given context.
	NewThread(ctx int) (Thread, error)
	// Barrier synchronizes the given threads at a spin rendezvous (the
	// thread_barrier() of Figure 5).
	Barrier(ts ...Thread)
	// SpinSolo runs a calibrated spin loop on t alone and returns the
	// duration observed through the timestamp counter.
	SpinSolo(t Thread, units int64) int64
	// SpinTogether runs the calibrated loop on both threads concurrently
	// and returns both observed durations (the SMT detector's probe).
	SpinTogether(t1, t2 Thread, units int64) (int64, int64)
	// OSView returns the topology the operating system believes in, used
	// only for the optional MCTOP-vs-OS comparison of Section 3.6 — never
	// by the inference itself.
	OSView() OSView
}

// OSView is the operating system's description of the machine: the
// information libnuma/hwloc-style libraries would return. It may be wrong
// (the paper's Opteron reports an incorrect core-to-node mapping,
// footnote 1); MCTOP-ALG never consumes it.
type OSView struct {
	Contexts     int
	Nodes        int
	CoreOfCtx    []int // context -> OS core id
	SocketOfCtx  []int // context -> OS socket id
	NodeOfSocket []int // socket -> OS-claimed local memory node
}

// Forker is the optional extension implemented by machines whose
// measurements can run concurrently. ForkPair returns an independent machine
// dedicated to one measurement, named by a pair of integer tags: it shares
// no mutable state with the parent or with other forks, and its noise stream
// is a pure function of (parent seed, tag0, tag1). MCTOP-ALG forks one
// machine per (x, y) context pair to parallelize its O(N²) measurement
// phase with results byte-identical to a sequential run — pair values cannot
// depend on scheduling order because every pair observes its own
// deterministic stream. The enrichment plugins fork one machine per probe
// the same way, using tag0 values ≥ 1<<20 (far above any real context id)
// so probe streams never collide with measurement-pair streams.
//
// Real hosts must NOT implement Forker: concurrent measurements perturb
// each other through shared caches, interconnect and DVFS (Section 3.5:
// "using more threads increases variability"). The simulator, which models
// exactly one measurement at a time, can.
type Forker interface {
	ForkPair(xCtx, yCtx int) (Machine, error)
}

// MemoryProber is the optional extension used by the memory latency,
// memory bandwidth and cache plugins (Section 4). The simulator implements
// it; a host backend may not.
type MemoryProber interface {
	// MemRandomAccess performs n dependent cache-missing loads against the
	// given node from thread t and returns the consumed cycles.
	MemRandomAccess(t Thread, node, n int) int64
	// MemSequentialSweep streams bytes from the node and returns cycles.
	MemSequentialSweep(t Thread, node int, bytes int64) int64
	// CacheWorkingSetLoads performs n dependent loads within a working set
	// of the given size and returns the consumed cycles.
	CacheWorkingSetLoads(t Thread, workingSet int64, n int) int64
	// StreamBandwidth reports the aggregate bandwidth (GB/s) achieved by
	// the given contexts streaming from the node concurrently.
	StreamBandwidth(ctxs []int, node int) float64
	// CacheSizes returns the OS-reported cache sizes (the cache plugin also
	// "loads and includes the cache sizes from the operating system").
	CacheSizes() (l1, l2, llc int64)
}

// PowerProber is the optional extension used by the power plugin
// (RAPL-style measurements; Intel-only in the paper).
type PowerProber interface {
	// PowerAvailable reports whether the machine exposes power counters.
	PowerAvailable() bool
	// PowerEstimate returns per-socket package power and the total for a
	// set of active contexts, optionally including DRAM.
	PowerEstimate(ctxs []int, withDRAM bool) (perSocket []float64, total float64)
	// PowerIdle returns the whole-machine idle power.
	PowerIdle() float64
}

// FrequencyGHz is implemented by machines that know their nominal maximum
// frequency, letting tools convert cycles to seconds.
type FrequencyGHz interface {
	FreqMaxGHz() float64
}
