package machine

import (
	"fmt"

	"repro/internal/sim"
)

// SimMachine adapts a deterministic machine simulator (internal/sim) to the
// Machine interface. This is the backend every test and experiment in this
// repository runs against.
type SimMachine struct {
	S *sim.Sim
}

var (
	_ Machine      = (*SimMachine)(nil)
	_ MemoryProber = (*SimMachine)(nil)
	_ PowerProber  = (*SimMachine)(nil)
	_ FrequencyGHz = (*SimMachine)(nil)
	_ Forker       = (*SimMachine)(nil)
)

// NewSim creates a simulator-backed machine for the given platform and
// noise seed.
func NewSim(p *sim.Platform, seed uint64) (*SimMachine, error) {
	s, err := sim.New(p, seed)
	if err != nil {
		return nil, err
	}
	return &SimMachine{S: s}, nil
}

// Name returns the simulated platform's name.
func (m *SimMachine) Name() string { return m.S.Platform().Name }

// NumHWContexts returns the simulated context count.
func (m *SimMachine) NumHWContexts() int { return m.S.Platform().NumContexts() }

// NumNodes returns the simulated memory-node count.
func (m *SimMachine) NumNodes() int { return m.S.Platform().NumNodes() }

// FreqMaxGHz returns the platform's maximum frequency.
func (m *SimMachine) FreqMaxGHz() float64 { return m.S.Platform().FreqMaxGHz }

// ForkPair implements Forker: it builds a fresh simulator for the same
// platform whose noise seed is derived from (base seed, x, y), so the pair's
// measurement is independent of every other pair and of execution order. The
// platform description is shared (it is immutable after construction); all
// mutable simulator state — coherence engine, DVFS ramps, noise counter — is
// private to the fork.
func (m *SimMachine) ForkPair(xCtx, yCtx int) (Machine, error) {
	s, err := sim.New(m.S.Platform(), sim.PairSeed(m.S.Seed(), xCtx, yCtx))
	if err != nil {
		return nil, err
	}
	return &SimMachine{S: s}, nil
}

type simThread struct{ t *sim.Thread }

func (t simThread) Ctx() int             { return t.t.Ctx() }
func (t simThread) Pin(ctx int) error    { return t.t.Pin(ctx) }
func (t simThread) Rdtsc() int64         { return t.t.Rdtsc() }
func (t simThread) CAS(line uint64)      { t.t.CAS(line) }
func (t simThread) Load(line uint64)     { t.t.Load(line) }
func (t simThread) Store(line uint64)    { t.t.Store(line) }
func (t simThread) SpinWork(units int64) { t.t.SpinWork(units) }

// NewThread creates a simulated thread pinned to ctx.
func (m *SimMachine) NewThread(ctx int) (Thread, error) {
	t, err := m.S.NewThread(ctx)
	if err != nil {
		return nil, err
	}
	return simThread{t}, nil
}

func (m *SimMachine) unwrap(t Thread) *sim.Thread {
	st, ok := t.(simThread)
	if !ok {
		panic(fmt.Sprintf("machine: thread %T does not belong to SimMachine", t))
	}
	return st.t
}

// Barrier synchronizes simulated threads. The two-thread case — the
// measurement hot loop, twice per repetition — avoids the argument slice.
func (m *SimMachine) Barrier(ts ...Thread) {
	if len(ts) == 2 {
		m.S.Barrier2(m.unwrap(ts[0]), m.unwrap(ts[1]))
		return
	}
	raw := make([]*sim.Thread, len(ts))
	for i, t := range ts {
		raw[i] = m.unwrap(t)
	}
	m.S.Barrier(raw...)
}

// SpinSolo runs a calibrated spin loop on one simulated thread.
func (m *SimMachine) SpinSolo(t Thread, units int64) int64 {
	return m.S.SpinSolo(m.unwrap(t), units)
}

// SpinTogether runs the calibrated loop on two simulated threads at once.
func (m *SimMachine) SpinTogether(t1, t2 Thread, units int64) (int64, int64) {
	return m.S.SpinTogether(m.unwrap(t1), m.unwrap(t2), units)
}

// OSView reports the simulated operating system's topology view, including
// the deliberately wrong node mapping on the Opteron.
func (m *SimMachine) OSView() OSView {
	p := m.S.Platform()
	v := OSView{
		Contexts:     p.NumContexts(),
		Nodes:        p.NumNodes(),
		CoreOfCtx:    make([]int, p.NumContexts()),
		SocketOfCtx:  make([]int, p.NumContexts()),
		NodeOfSocket: make([]int, p.Sockets),
	}
	for c := 0; c < p.NumContexts(); c++ {
		v.CoreOfCtx[c] = p.CoreOf(c)
		v.SocketOfCtx[c] = p.SocketOf(c)
	}
	for s := 0; s < p.Sockets; s++ {
		v.NodeOfSocket[s] = p.OSLocalNode(s)
	}
	return v
}

// MemRandomAccess implements MemoryProber.
func (m *SimMachine) MemRandomAccess(t Thread, node, n int) int64 {
	return m.unwrap(t).MemRandomAccess(node, n)
}

// MemSequentialSweep implements MemoryProber.
func (m *SimMachine) MemSequentialSweep(t Thread, node int, bytes int64) int64 {
	return m.unwrap(t).MemSequentialSweep(node, bytes)
}

// CacheWorkingSetLoads implements MemoryProber.
func (m *SimMachine) CacheWorkingSetLoads(t Thread, workingSet int64, n int) int64 {
	return m.unwrap(t).CacheWorkingSetLoads(workingSet, n)
}

// StreamBandwidth implements MemoryProber.
func (m *SimMachine) StreamBandwidth(ctxs []int, node int) float64 {
	return m.S.StreamBandwidth(ctxs, node)
}

// CacheSizes implements MemoryProber.
func (m *SimMachine) CacheSizes() (l1, l2, llc int64) {
	p := m.S.Platform()
	return p.L1Size, p.L2Size, p.LLCSize
}

// PowerAvailable implements PowerProber.
func (m *SimMachine) PowerAvailable() bool { return m.S.Platform().Power.Available() }

// PowerEstimate implements PowerProber.
func (m *SimMachine) PowerEstimate(ctxs []int, withDRAM bool) ([]float64, float64) {
	return m.S.Platform().PowerEstimate(ctxs, withDRAM)
}

// PowerIdle implements PowerProber.
func (m *SimMachine) PowerIdle() float64 { return m.S.Platform().Power.IdleMachine }
