//go:build linux && amd64

package machine

const sysSchedSetaffinityNR = 203
