//go:build linux && (amd64 || arm64)

package machine

import (
	"syscall"
	"unsafe"
)

// setAffinity binds the calling OS thread to the given CPU using
// sched_setaffinity(2) (syscall number sysSchedSetaffinityNR, selected per
// architecture). Errors are ignored: affinity is best-effort (containers
// often restrict it), and the host backend is explicitly a demonstrator.
func setAffinity(cpu int) {
	var mask [16]uint64 // up to 1024 CPUs
	if cpu < 0 || cpu >= len(mask)*64 {
		return
	}
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, _ = syscall.RawSyscall(sysSchedSetaffinityNR,
		0, // 0 = calling thread
		uintptr(len(mask)*8),
		uintptr(unsafe.Pointer(&mask[0])))
}
