//go:build linux && arm64

package machine

const sysSchedSetaffinityNR = 122
