//go:build linux

package machine

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// sysfs topology parsing: on Linux the OS view of the host machine comes
// from /sys/devices/system/cpu/cpuN/topology/{core_id,
// physical_package_id} and /sys/devices/system/node/nodeN/cpulist. This is
// exactly the information libnuma/hwloc would expose — the view MCTOP-ALG
// deliberately does not rely on, but which the Section 3.6 comparison
// checks against.

func readIntFile(path string) (int, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return 0, false
	}
	return v, true
}

// parseCPUList expands "0-3,8,10-11" into ids.
func parseCPUList(s string) []int {
	var out []int
	for _, part := range strings.Split(strings.TrimSpace(s), ",") {
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil {
				continue
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
		} else if v, err := strconv.Atoi(part); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// hostOSView reads the kernel's topology; ok is false when sysfs is
// unavailable (containers often hide it), in which case callers fall back
// to the flat view.
func hostOSView(nctx, nodes int) (OSView, bool) {
	v := OSView{
		Contexts:     nctx,
		Nodes:        nodes,
		CoreOfCtx:    make([]int, nctx),
		SocketOfCtx:  make([]int, nctx),
		NodeOfSocket: make([]int, nodes),
	}
	found := false
	// Distinct (package, core) pairs become global core ids.
	coreID := map[[2]int]int{}
	for c := 0; c < nctx; c++ {
		base := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/topology", c)
		pkg, ok1 := readIntFile(base + "/physical_package_id")
		core, ok2 := readIntFile(base + "/core_id")
		if !ok1 || !ok2 {
			v.CoreOfCtx[c] = c
			v.SocketOfCtx[c] = 0
			continue
		}
		found = true
		key := [2]int{pkg, core}
		id, seen := coreID[key]
		if !seen {
			id = len(coreID)
			coreID[key] = id
		}
		v.CoreOfCtx[c] = id
		v.SocketOfCtx[c] = pkg
	}
	// Socket-to-node: a node is local to the socket of the CPUs it lists.
	for n := 0; n < nodes; n++ {
		data, err := os.ReadFile(fmt.Sprintf("/sys/devices/system/node/node%d/cpulist", n))
		if err != nil {
			continue
		}
		cpus := parseCPUList(string(data))
		if len(cpus) == 0 || cpus[0] >= nctx {
			continue
		}
		sock := v.SocketOfCtx[cpus[0]]
		if sock >= 0 && sock < nodes {
			v.NodeOfSocket[sock] = n
		}
	}
	return v, found
}
