package machine

import (
	"runtime"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestSimMachineBasics(t *testing.T) {
	m, err := NewSim(sim.Ivy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "Ivy" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.NumHWContexts() != 40 || m.NumNodes() != 2 {
		t.Errorf("dims = %d ctx / %d nodes", m.NumHWContexts(), m.NumNodes())
	}
	if m.FreqMaxGHz() != 2.8 {
		t.Errorf("freq = %g", m.FreqMaxGHz())
	}
	if !m.PowerAvailable() {
		t.Error("Ivy should expose power")
	}
	l1, l2, llc := m.CacheSizes()
	if l1 != 32<<10 || l2 != 256<<10 || llc != 25<<20 {
		t.Errorf("cache sizes = %d/%d/%d", l1, l2, llc)
	}
}

// TestFigure5Protocol drives the paper's lock-step measurement through the
// generic Machine interface (the path MCTOP-ALG uses) and checks that the
// medians identify the three latency levels of Ivy.
func TestFigure5Protocol(t *testing.T) {
	p := sim.Ivy()
	p.DVFS = false
	m, err := NewSim(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	x, err := m.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.NewThread(20)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(yCtx int) int64 {
		if err := y.Pin(yCtx); err != nil {
			t.Fatal(err)
		}
		const line, reps = 42, 300
		vals := make([]int64, 0, reps)
		for i := 0; i < reps; i++ {
			m.Barrier(x, y)
			y.CAS(line)
			m.Barrier(x, y)
			s := x.Rdtsc()
			x.CAS(line)
			e := x.Rdtsc()
			vals = append(vals, e-s-p.RdtscOverhead)
		}
		return stats.Median(vals)
	}
	smt := measure(20)
	intra := measure(1)
	cross := measure(10)
	if !(smt < intra && intra < cross) {
		t.Errorf("levels not ordered: smt=%d intra=%d cross=%d", smt, intra, cross)
	}
	if smt < 24 || smt > 32 {
		t.Errorf("SMT level = %d, want ~28", smt)
	}
	if cross < 290 || cross > 325 {
		t.Errorf("cross level = %d, want ~308", cross)
	}
}

func TestSimMachineOSView(t *testing.T) {
	m, _ := NewSim(sim.Opteron(), 1)
	v := m.OSView()
	if v.Contexts != 48 || v.Nodes != 8 {
		t.Errorf("OS view dims = %d/%d", v.Contexts, v.Nodes)
	}
	// The simulated Opteron OS lies about node mapping (footnote 1).
	if v.NodeOfSocket[0] == 0 {
		t.Error("Opteron OS node mapping should be wrong")
	}
	m2, _ := NewSim(sim.Ivy(), 1)
	if v2 := m2.OSView(); v2.NodeOfSocket[0] != 0 || v2.NodeOfSocket[1] != 1 {
		t.Error("Ivy OS node mapping should be identity")
	}
}

func TestSimMachineRejectsForeignThread(t *testing.T) {
	m1, _ := NewSim(sim.Ivy(), 1)
	host := NewHost()
	ht, err := host.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic passing a host thread to SimMachine")
		}
	}()
	m1.SpinSolo(ht, 10)
}

func TestHostMachineBasics(t *testing.T) {
	m := NewHost()
	if m.NumHWContexts() < 1 || m.NumNodes() < 1 {
		t.Fatalf("host dims = %d/%d", m.NumHWContexts(), m.NumNodes())
	}
	th, err := m.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	th.CAS(1)
	th.Load(1)
	th.Store(1)
	th.SpinWork(1000)
	if ts := th.Rdtsc(); ts <= 0 {
		t.Error("host Rdtsc returned non-positive timestamp")
	}
	if _, err := m.NewThread(-1); err == nil {
		t.Error("expected error for negative context")
	}
	if err := th.Pin(0); err != nil {
		t.Error(err)
	}
	if err := th.Pin(1 << 20); err == nil {
		t.Error("expected error pinning far out of range")
	}
}

func TestHostSpinPrimitives(t *testing.T) {
	m := NewHost()
	a, _ := m.NewThread(0)
	d := m.SpinSolo(a, 200_000)
	if d <= 0 {
		t.Errorf("solo spin duration = %d", d)
	}
	if m.NumHWContexts() >= 2 {
		b, _ := m.NewThread(1)
		d1, d2 := m.SpinTogether(a, b, 200_000)
		if d1 <= 0 || d2 <= 0 {
			t.Errorf("together durations = %d/%d", d1, d2)
		}
		m.Barrier(a, b)
	}
}

func TestHostMeasurePair(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("needs 2 CPUs")
	}
	m := NewHost()
	vals := m.MeasurePair(0, 1, 50)
	if len(vals) != 50 {
		t.Fatalf("got %d values", len(vals))
	}
	med := stats.Median(vals)
	if med < 0 {
		t.Errorf("median latency = %d ns", med)
	}
	// Sanity only: a CAS ping-pong between two CPUs should not appear to
	// take longer than a millisecond even on a noisy CI box.
	if med > 1_000_000 {
		t.Errorf("median latency implausibly high: %d ns", med)
	}
}

func TestHostOSView(t *testing.T) {
	m := NewHost()
	v := m.OSView()
	if v.Contexts != m.NumHWContexts() || len(v.CoreOfCtx) != v.Contexts {
		t.Error("host OS view inconsistent")
	}
}
