//go:build !linux || (!amd64 && !arm64)

package machine

// setAffinity is a no-op on platforms without a wired-up affinity syscall;
// threads still run OS-locked, they just float across CPUs.
func setAffinity(cpu int) { _ = cpu }
