//go:build !linux

package machine

// hostOSView is unavailable off Linux; the flat fallback is used.
func hostOSView(nctx, nodes int) (OSView, bool) {
	return OSView{}, false
}
