package machine

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"
)

// HostMachine is a best-effort implementation of Machine on the real host.
//
// It exists to show that MCTOP-ALG's code path is genuinely portable: the
// same algorithm that runs against the simulator can probe the machine the
// tests run on, using goroutines locked to OS threads, sched_setaffinity
// (on Linux), atomic CAS on padded cache lines, and the monotonic clock.
//
// Its precision is nowhere near the paper's C implementation — the Go
// runtime, its garbage collector and the lack of a raw rdtsc intrinsic add
// microsecond-scale noise to a nanosecond-scale signal (this is exactly why
// the experiments in this repository run on the simulator instead). Treat
// host-inferred topologies as illustrative.
type HostMachine struct {
	nctx  int
	nodes int
	// rdtscOverheadNs is the calibrated cost of one clock read.
	rdtscOverheadNs int64
}

var (
	_ Machine      = (*HostMachine)(nil)
	_ PairMeasurer = (*HostMachine)(nil)
)

// PairMeasurer is an optional fast path: the machine runs the entire
// Figure-5 lock-step loop natively and returns per-repetition latencies
// with the clock-read overhead already deducted. The host backend needs
// this because driving individual ops through an abstraction layer would
// drown the signal; the simulator deliberately does not implement it, so
// the generic protocol stays exercised.
type PairMeasurer interface {
	MeasurePair(xCtx, yCtx, reps int) []int64
}

// NewHost probes the current host.
func NewHost() *HostMachine {
	m := &HostMachine{
		nctx:  runtime.NumCPU(),
		nodes: countHostNodes(),
	}
	m.calibrateClock()
	return m
}

func countHostNodes() int {
	n := 0
	for {
		if _, err := os.Stat(fmt.Sprintf("/sys/devices/system/node/node%d", n)); err != nil {
			break
		}
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}

func (m *HostMachine) calibrateClock() {
	const n = 2000
	start := time.Now()
	for i := 0; i < n; i++ {
		_ = time.Now()
	}
	m.rdtscOverheadNs = time.Since(start).Nanoseconds() / n
}

// Name identifies the host.
func (m *HostMachine) Name() string {
	return fmt.Sprintf("host-%s-%s-%dcpu", runtime.GOOS, runtime.GOARCH, m.nctx)
}

// NumHWContexts returns the OS CPU count.
func (m *HostMachine) NumHWContexts() int { return m.nctx }

// NumNodes returns the NUMA node count reported by sysfs (1 elsewhere).
func (m *HostMachine) NumNodes() int { return m.nodes }

// OSView returns the operating system's topology: on Linux it parses
// /sys/devices/system/cpu topology files (the libnuma/hwloc information
// base), elsewhere — or when sysfs is hidden — a flat one-core-per-context
// view.
func (m *HostMachine) OSView() OSView {
	if v, ok := hostOSView(m.nctx, m.nodes); ok {
		return v
	}
	v := OSView{
		Contexts:     m.nctx,
		Nodes:        m.nodes,
		CoreOfCtx:    make([]int, m.nctx),
		SocketOfCtx:  make([]int, m.nctx),
		NodeOfSocket: make([]int, m.nodes),
	}
	for i := range v.CoreOfCtx {
		v.CoreOfCtx[i] = i
	}
	for i := range v.NodeOfSocket {
		v.NodeOfSocket[i] = i
	}
	return v
}

// paddedLine is a CAS target occupying its own cache line.
type paddedLine struct {
	_ [64]byte
	v int64
	_ [64]byte
}

// hostThread executes operations on a dedicated OS-locked goroutine.
type hostThread struct {
	m    *HostMachine
	ctx  int
	cmds chan func()
	line map[uint64]*paddedLine
}

// NewThread creates an OS-thread-backed worker pinned (best effort) to ctx.
func (m *HostMachine) NewThread(ctx int) (Thread, error) {
	if ctx < 0 || ctx >= m.nctx {
		return nil, fmt.Errorf("machine: context %d out of range [0,%d)", ctx, m.nctx)
	}
	t := &hostThread{m: m, ctx: ctx, cmds: make(chan func()), line: make(map[uint64]*paddedLine)}
	ready := make(chan struct{})
	go func() {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		setAffinity(ctx)
		close(ready)
		for f := range t.cmds {
			f()
		}
	}()
	<-ready
	return t, nil
}

func (t *hostThread) run(f func()) {
	done := make(chan struct{})
	t.cmds <- func() { f(); close(done) }
	<-done
}

func (t *hostThread) Ctx() int { return t.ctx }

func (t *hostThread) Pin(ctx int) error {
	if ctx < 0 || ctx >= t.m.nctx {
		return fmt.Errorf("machine: context %d out of range [0,%d)", ctx, t.m.nctx)
	}
	t.ctx = ctx
	t.run(func() { setAffinity(ctx) })
	return nil
}

func (t *hostThread) Rdtsc() int64 {
	var v int64
	t.run(func() { v = time.Now().UnixNano() })
	return v
}

func (t *hostThread) lineFor(line uint64) *paddedLine {
	l, ok := t.line[line]
	if !ok {
		l = hostLines.get(line)
		t.line[line] = l
	}
	return l
}

func (t *hostThread) CAS(line uint64) {
	t.run(func() {
		l := t.lineFor(line)
		for {
			old := atomic.LoadInt64(&l.v)
			if atomic.CompareAndSwapInt64(&l.v, old, old+1) {
				return
			}
		}
	})
}

func (t *hostThread) Load(line uint64) {
	t.run(func() { _ = atomic.LoadInt64(&t.lineFor(line).v) })
}

func (t *hostThread) Store(line uint64) {
	t.run(func() { atomic.StoreInt64(&t.lineFor(line).v, 1) })
}

func (t *hostThread) SpinWork(units int64) {
	t.run(func() { spin(units) })
}

func spin(units int64) {
	x := uint64(88172645463325252)
	for i := int64(0); i < units; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	if x == 0 {
		panic("unreachable")
	}
}

// hostLineTable interns shared CAS targets so two threads naming the same
// line id hit the same cache line.
type hostLineTable struct {
	mu    chan struct{} // 1-slot semaphore; avoids importing sync for one lock
	lines map[uint64]*paddedLine
}

var hostLines = &hostLineTable{mu: make(chan struct{}, 1), lines: make(map[uint64]*paddedLine)}

func (h *hostLineTable) get(line uint64) *paddedLine {
	h.mu <- struct{}{}
	defer func() { <-h.mu }()
	l, ok := h.lines[line]
	if !ok {
		l = &paddedLine{}
		h.lines[line] = l
	}
	return l
}

// Barrier rendezvouses host threads. Channel-based: precise spin barriers
// only matter inside MeasurePair, which bypasses this path.
func (m *HostMachine) Barrier(ts ...Thread) {
	done := make(chan struct{}, len(ts))
	for _, t := range ts {
		ht := t.(*hostThread)
		ht.cmds <- func() { done <- struct{}{} }
	}
	for range ts {
		<-done
	}
}

// SpinSolo measures a calibrated spin loop on one thread.
func (m *HostMachine) SpinSolo(t Thread, units int64) int64 {
	ht := t.(*hostThread)
	var d int64
	ht.run(func() {
		start := time.Now()
		spin(units)
		d = time.Since(start).Nanoseconds()
	})
	return d
}

// SpinTogether measures the calibrated loop on both threads concurrently.
func (m *HostMachine) SpinTogether(t1, t2 Thread, units int64) (int64, int64) {
	h1, h2 := t1.(*hostThread), t2.(*hostThread)
	var gate, d1, d2 int64
	done := make(chan struct{}, 2)
	body := func(out *int64) func() {
		return func() {
			atomic.AddInt64(&gate, 1)
			for atomic.LoadInt64(&gate) < 2 {
			}
			start := time.Now()
			spin(units)
			*out = time.Since(start).Nanoseconds()
			done <- struct{}{}
		}
	}
	h1.cmds <- body(&d1)
	h2.cmds <- body(&d2)
	<-done
	<-done
	return d1, d2
}

// MeasurePair runs the full lock-step loop of Figure 5 natively: two
// OS-locked threads, a sense-reversing spin barrier, CAS ping-pong on one
// padded line, per-repetition clock reads. Returns reps latencies in
// nanoseconds with the clock overhead deducted.
func (m *HostMachine) MeasurePair(xCtx, yCtx, reps int) []int64 {
	results := make([]int64, reps)
	var line paddedLine
	var phase int64
	arrive := func(target int64) {
		atomic.AddInt64(&phase, 1)
		for atomic.LoadInt64(&phase) < target {
		}
	}
	done := make(chan struct{}, 2)

	go func() { // thread y
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		setAffinity(yCtx)
		for i := 0; i < reps; i++ {
			arrive(int64(4*i + 2))
			for {
				old := atomic.LoadInt64(&line.v)
				if atomic.CompareAndSwapInt64(&line.v, old, old+1) {
					break
				}
			}
			arrive(int64(4*i + 4))
		}
		done <- struct{}{}
	}()

	go func() { // thread x
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		setAffinity(xCtx)
		for i := 0; i < reps; i++ {
			arrive(int64(4*i + 2))
			arrive(int64(4*i + 4))
			start := time.Now()
			for {
				old := atomic.LoadInt64(&line.v)
				if atomic.CompareAndSwapInt64(&line.v, old, old+1) {
					break
				}
			}
			lat := time.Since(start).Nanoseconds() - m.rdtscOverheadNs
			if lat < 0 {
				lat = 0
			}
			results[i] = lat
		}
		done <- struct{}{}
	}()

	<-done
	<-done
	return results
}
