package place

import (
	"fmt"

	"repro/internal/machine"
)

// Bind claims every slot of a placement and creates one machine thread per
// slot, pinned to its hardware context (unpinned slots get a thread on
// context 0 that simply is not re-pinned — mirroring the NONE policy).
// This is the bridge between MCTOP-PLACE's high-level policies and the
// low-level measurement/execution interface; callers must Release the
// binding when done.
func Bind(m machine.Machine, pl *Placement) (*Binding, error) {
	b := &Binding{pl: pl}
	for {
		ctx, ok := pl.PinNext()
		if !ok {
			break
		}
		target := ctx
		if target < 0 {
			target = 0
		}
		th, err := m.NewThread(target)
		if err != nil {
			b.Release()
			return nil, fmt.Errorf("place: binding context %d: %w", ctx, err)
		}
		b.Threads = append(b.Threads, th)
		b.ctxs = append(b.ctxs, ctx)
	}
	if len(b.Threads) == 0 {
		return nil, fmt.Errorf("place: placement has no slots to bind")
	}
	return b, nil
}

// Binding is a set of machine threads pinned according to a placement.
type Binding struct {
	Threads []machine.Thread
	pl      *Placement
	ctxs    []int
}

// Release returns every claimed slot to the placement.
func (b *Binding) Release() {
	for _, c := range b.ctxs {
		if c >= 0 {
			b.pl.Unpin(c)
		}
	}
	b.ctxs = nil
	b.Threads = nil
}
