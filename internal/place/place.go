// Package place implements MCTOP-PLACE, the portable thread-placement
// library of Section 6 of the MCTOP paper.
//
// A Placement maps threads to hardware contexts according to one of the 12
// high-level policies of Table 2, computed from the enriched MCTOP topology
// (local memory bandwidths, socket latencies, power model). Placements
// support pinning a thread to the next available context, unpinning it
// back, and export the derived information of Figure 7: cores used,
// bandwidth proportions, estimated maximum power with and without DRAM,
// maximum latency, and minimum aggregate bandwidth.
package place

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mctoperr"
	"repro/internal/topo"
)

// ErrInvalid is wrapped by every placement failure the caller can correct —
// an unknown policy name, the power policy on a machine without power
// measurements, unsatisfiable options. Servers use errors.Is to map these
// to client errors rather than server faults. It wraps
// mctoperr.ErrInvalidRequest, so the structured-error contract of the
// client API sees every ErrInvalid failure too.
var ErrInvalid = fmt.Errorf("place: invalid placement request: %w", mctoperr.ErrInvalidRequest)

// Policy is one of the 12 placement policies of Table 2.
type Policy int

const (
	// None does not pin threads at all.
	None Policy = iota
	// Sequential uses the sequential OS numbering.
	Sequential
	// ConHWC fills all hardware contexts of the socket with maximum local
	// memory bandwidth as compactly as possible (both SMT contexts of a
	// core together), then continues to the next best connected socket.
	ConHWC
	// ConCoreHWC fills all unique cores of the socket first, then its
	// second SMT contexts, before moving to the next socket.
	ConCoreHWC
	// ConCore uses all unique cores of all used sockets before using any
	// second SMT context.
	ConCore
	// BalanceHWC is the balanced variant of ConHWC: threads are spread
	// evenly across sockets instead of filling one before the next.
	BalanceHWC
	// BalanceCoreHWC is the balanced variant of ConCoreHWC.
	BalanceCoreHWC
	// BalanceCore is the balanced variant of ConCore.
	BalanceCore
	// RRCore places threads round-robin over sockets (maximum-bandwidth
	// sockets first), using unique cores before SMT siblings.
	RRCore
	// RRHWC places threads round-robin over sockets using all hardware
	// contexts of each core together.
	RRHWC
	// PowerPolicy places threads so that the estimated maximum power
	// consumption is minimized (Intel-only in the paper: requires power
	// measurements).
	PowerPolicy
	// RRScale is RRCore, but caps the threads per socket at the number
	// needed to saturate the bandwidth to its local memory node.
	RRScale
)

var policyNames = map[Policy]string{
	None:           "MCTOP_PLACE_NONE",
	Sequential:     "MCTOP_PLACE_SEQUENTIAL",
	ConHWC:         "MCTOP_PLACE_CON_HWC",
	ConCoreHWC:     "MCTOP_PLACE_CON_CORE_HWC",
	ConCore:        "MCTOP_PLACE_CON_CORE",
	BalanceHWC:     "MCTOP_PLACE_BALANCE_HWC",
	BalanceCoreHWC: "MCTOP_PLACE_BALANCE_CORE_HWC",
	BalanceCore:    "MCTOP_PLACE_BALANCE_CORE",
	RRCore:         "MCTOP_PLACE_RR_CORE",
	RRHWC:          "MCTOP_PLACE_RR_HWC",
	PowerPolicy:    "MCTOP_PLACE_POWER",
	RRScale:        "MCTOP_PLACE_RR_SCALE",
}

func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Policies returns all 12 policies of Table 2.
func Policies() []Policy {
	return []Policy{None, Sequential, ConHWC, ConCoreHWC, ConCore,
		BalanceHWC, BalanceCoreHWC, BalanceCore, RRCore, RRHWC, PowerPolicy, RRScale}
}

// policyByName is ParsePolicy's reverse lookup — both the full
// MCTOP_PLACE_* name and the bare suffix, uppercase — built once at package
// init: mctopd parses a policy per placement request, so the per-call
// iteration over policyNames was serving-path overhead.
var policyByName = func() map[string]Policy {
	m := make(map[string]Policy, 2*len(policyNames))
	for p, n := range policyNames {
		m[n] = p
		m[strings.TrimPrefix(n, "MCTOP_PLACE_")] = p
	}
	return m
}()

// ParsePolicy resolves a builtin policy from its name (with or without the
// MCTOP_PLACE_ prefix, case-insensitive). Unknown names wrap both
// ErrInvalid and mctoperr.ErrUnknownPolicy; use Resolve to also find
// registered custom policies.
func ParsePolicy(s string) (Policy, error) {
	if p, ok := policyByName[strings.ToUpper(strings.TrimSpace(s))]; ok {
		return p, nil
	}
	return None, fmt.Errorf("%w: %w %q", ErrInvalid, mctoperr.ErrUnknownPolicy, s)
}

// Options tunes a placement. Zero values mean "use everything".
type Options struct {
	// NThreads is the number of threads to place (default: all contexts of
	// the allowed sockets; RRScale may lower it further).
	NThreads int
	// NSockets limits how many sockets are used (default: all).
	NSockets int
}

// Placement is an immutable thread-to-context mapping plus a mutable
// pin/unpin cursor. Safe for concurrent use.
type Placement struct {
	t      *topo.Topology
	policy Policy
	name   string
	ctxs   []int // assignment order; -1 entries mean "unpinned" (None)

	mu    sync.Mutex
	taken []bool
	// free is the lowest slot that may be unclaimed: every slot below it is
	// taken, so PinNext starts scanning here instead of at 0 — O(1)
	// amortized on the pin-heavy serving path. Unpin moves it back down.
	free int
}

// Custom is the Policy() answer for placements built from a non-builtin
// Orderer (a combinator chain or a user policy); PolicyName carries the
// actual identity.
const Custom Policy = -1

// New computes a placement for a builtin policy. It fails for PowerPolicy
// on machines without power measurements, and when the options are not
// satisfiable.
func New(t *topo.Topology, policy Policy, opt Options) (*Placement, error) {
	return NewFrom(t, policy, opt)
}

// NewFrom computes a placement from any Orderer — a builtin Policy, a
// combinator chain, or a user implementation. The order is validated
// (every slot must be -1 or a context of this topology); correctable
// failures wrap ErrInvalid.
func NewFrom(t *topo.Topology, o Orderer, opt Options) (*Placement, error) {
	if o == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrInvalid)
	}
	order, err := o.Order(t, opt)
	if err != nil {
		return nil, err
	}
	for i, c := range order {
		if c < -1 || c >= t.NumHWContexts() {
			return nil, fmt.Errorf("%w: policy %s slot %d names context %d (machine has %d)",
				ErrInvalid, o.Name(), i, c, t.NumHWContexts())
		}
	}
	policy := Custom
	if p, ok := o.(Policy); ok {
		policy = p
	} else if c, ok := o.(Chain); ok {
		if p, ok := c.Orderer.(Policy); ok {
			policy = p
		}
	}
	return &Placement{
		t:      t,
		policy: policy,
		name:   o.Name(),
		ctxs:   order,
		taken:  make([]bool, len(order)),
	}, nil
}

// socketOrder returns sockets in placement priority: the socket with
// maximum local memory bandwidth first. Connection-oriented policies
// (CON_*) then chain to the best-connected unused socket; the others rank
// by bandwidth throughout.
func socketOrder(t *topo.Topology, chained bool, nSockets int) []*topo.Socket {
	byBW := t.SocketsByLocalBW()
	if !chained {
		return byBW[:nSockets]
	}
	used := map[int]bool{byBW[0].ID: true}
	order := []*topo.Socket{byBW[0]}
	for len(order) < nSockets {
		last := order[len(order)-1]
		var next *topo.Socket
		var bestLat int64
		for _, cand := range t.SocketsByLatencyFrom(last.ID) {
			if used[cand.ID] {
				continue
			}
			lat := t.SocketLatency(last.ID, cand.ID)
			if next == nil || lat < bestLat {
				next, bestLat = cand, lat
			}
		}
		if next == nil {
			break
		}
		used[next.ID] = true
		order = append(order, next)
	}
	return order
}

// hwcOrder lists a socket's contexts compactly: core by core, all SMT
// contexts of a core together.
func hwcOrder(t *topo.Topology, s *topo.Socket) []int {
	var out []int
	for _, core := range t.SocketGetCores(s) {
		for _, c := range core.Contexts {
			out = append(out, c.ID)
		}
	}
	return out
}

// coreHWCOrder lists a socket's contexts core-first: the first SMT context
// of every core, then the second of every core, and so on.
func coreHWCOrder(t *topo.Topology, s *topo.Socket) []int {
	var out []int
	cores := t.SocketGetCores(s)
	for smt := 0; smt < t.SMTWays(); smt++ {
		for _, core := range cores {
			if smt < len(core.Contexts) {
				out = append(out, core.Contexts[smt].ID)
			}
		}
	}
	return out
}

func buildOrder(t *topo.Topology, policy Policy, nSockets, nThreads int) ([]int, error) {
	switch policy {
	case None:
		// Like every other policy, None offers at most one slot per
		// hardware context (also keeps a huge nThreads from allocating a
		// huge slice).
		n := t.NumHWContexts()
		if nThreads > 0 && nThreads < n {
			n = nThreads
		}
		out := make([]int, n)
		for i := range out {
			out[i] = -1
		}
		return out, nil

	case Sequential:
		out := make([]int, t.NumHWContexts())
		for i := range out {
			out[i] = i
		}
		return out, nil

	case ConHWC, ConCoreHWC:
		sockets := socketOrder(t, true, nSockets)
		var out []int
		for _, s := range sockets {
			if policy == ConHWC {
				out = append(out, hwcOrder(t, s)...)
			} else {
				out = append(out, coreHWCOrder(t, s)...)
			}
		}
		return out, nil

	case ConCore:
		sockets := socketOrder(t, true, nSockets)
		var out []int
		for smt := 0; smt < t.SMTWays(); smt++ {
			for _, s := range sockets {
				for _, core := range t.SocketGetCores(s) {
					if smt < len(core.Contexts) {
						out = append(out, core.Contexts[smt].ID)
					}
				}
			}
		}
		return out, nil

	case BalanceHWC, BalanceCoreHWC, BalanceCore, RRCore, RRHWC:
		sockets := socketOrder(t, false, nSockets)
		perSocket := make([][]int, len(sockets))
		for i, s := range sockets {
			switch policy {
			case BalanceHWC, RRHWC:
				perSocket[i] = hwcOrder(t, s)
			default:
				perSocket[i] = coreHWCOrder(t, s)
			}
		}
		return roundRobin(perSocket, nThreads), nil

	case RRScale:
		sockets := socketOrder(t, false, nSockets)
		perSocket := make([][]int, len(sockets))
		spec := t.Spec()
		for i, s := range sockets {
			order := coreHWCOrder(t, s)
			cap := len(order)
			if spec.StreamCoreBW > 0 && s.MemBW != nil {
				need := int(s.MemBW[s.Local.ID]/spec.StreamCoreBW + 0.999)
				if need < 1 {
					need = 1
				}
				if need < cap {
					cap = need
				}
			}
			perSocket[i] = order[:cap]
		}
		return roundRobin(perSocket, nThreads), nil

	case PowerPolicy:
		return powerOrder(t, nSockets, nThreads), nil
	}
	return nil, fmt.Errorf("place: unhandled policy %v", policy)
}

// roundRobin interleaves the per-socket context lists, stopping after limit
// slots (0 = no limit): when NThreads is small there is no point building —
// and allocating — the full-machine order only for New to slice off a
// prefix. The first limit slots are identical to the unlimited interleave.
func roundRobin(perSocket [][]int, limit int) []int {
	var out []int
	idx := make([]int, len(perSocket))
	for {
		progress := false
		for s := range perSocket {
			if idx[s] < len(perSocket[s]) {
				out = append(out, perSocket[s][idx[s]])
				idx[s]++
				progress = true
				if limit > 0 && len(out) == limit {
					return out
				}
			}
		}
		if !progress {
			return out
		}
	}
}

// powerOrder greedily adds the context whose activation increases the
// estimated package power the least — SMT siblings of already active cores
// first, then new cores on active sockets, then new sockets.
//
// The pre-index implementation (powerOrderScan below) ran a full
// PowerEstimate for every remaining context at every step: O(n²) estimates,
// each O(ctxs). But a candidate's power delta depends only on its class —
// SMT sibling of an active core, first context of an inactive core on an
// active socket, or first context of an inactive socket — so each step only
// needs to evaluate the lowest-id representative of each class: at most
// three estimates per step, and the same winner the exhaustive scan finds
// (its ID-ascending strict-< scan picks the lowest-id context of the
// cheapest class). The equivalence is property-tested against the scan on
// all five golden platforms.
func powerOrder(t *topo.Topology, nSockets, nThreads int) []int {
	allowed := make([]bool, t.NumSockets())
	for _, s := range socketOrder(t, false, nSockets) {
		allowed[s.ID] = true
	}
	n := nThreads
	if n == 0 || n > t.NumHWContexts() {
		// The greedy can never choose more than one slot per context, so
		// capping n here changes nothing — except that the scratch
		// capacities below stay machine-sized even when a request asks for
		// a huge thread count (mctopd validates only threads >= 0).
		n = t.NumHWContexts()
	}
	contexts := t.Contexts()
	inUse := make([]bool, len(contexts))
	coreCt := make(map[*topo.HWCGroup]int, t.NumCores())
	sockActive := make([]bool, t.NumSockets())
	chosen := make([]int, 0, n)
	scratch := make([]int, 0, n+1)
	for len(chosen) < n {
		// Lowest-id representative of each delta class.
		repSib, repCore, repSock := -1, -1, -1
		for _, c := range contexts {
			if inUse[c.ID] || !allowed[c.Socket.ID] {
				continue
			}
			switch {
			case coreCt[c.Core] > 0:
				if repSib == -1 {
					repSib = c.ID
				}
			case sockActive[c.Socket.ID]:
				if repCore == -1 {
					repCore = c.ID
				}
			default:
				if repSock == -1 {
					repSock = c.ID
				}
			}
			if repSib >= 0 && repCore >= 0 && repSock >= 0 {
				break
			}
		}
		_, cur := t.PowerEstimate(chosen, false)
		best, bestDelta := -1, 0.0
		for _, cand := range [3]int{repSib, repCore, repSock} {
			if cand == -1 {
				continue
			}
			scratch = append(scratch[:0], chosen...)
			scratch = append(scratch, cand)
			_, with := t.PowerEstimate(scratch, false)
			delta := with - cur
			if best == -1 || delta < bestDelta || (delta == bestDelta && cand < best) {
				best, bestDelta = cand, delta
			}
		}
		if best == -1 {
			break
		}
		c := contexts[best]
		chosen = append(chosen, best)
		inUse[best] = true
		coreCt[c.Core]++
		sockActive[c.Socket.ID] = true
	}
	return chosen
}

// powerOrderScan is the pre-index powerOrder: a full PowerEstimate per
// remaining candidate per step. Kept as the reference powerOrder is
// property-tested (and benchmarked) against.
func powerOrderScan(t *topo.Topology, nSockets, nThreads int) []int {
	allowed := map[int]bool{}
	for _, s := range socketOrder(t, false, nSockets) {
		allowed[s.ID] = true
	}
	n := nThreads
	if n == 0 {
		n = t.NumHWContexts()
	}
	var chosen []int
	inUse := map[int]bool{}
	for len(chosen) < n {
		_, cur := t.PowerEstimate(chosen, false)
		best, bestDelta := -1, 0.0
		for _, c := range t.Contexts() {
			if inUse[c.ID] || !allowed[c.Socket.ID] {
				continue
			}
			_, with := t.PowerEstimate(append(chosen, c.ID), false)
			delta := with - cur
			if best == -1 || delta < bestDelta {
				best, bestDelta = c.ID, delta
			}
		}
		if best == -1 {
			break
		}
		chosen = append(chosen, best)
		inUse[best] = true
	}
	return chosen
}

// Policy returns the placement's builtin policy, or Custom when the
// placement was built from a combinator chain or a user Orderer — use
// PolicyName for the full identity.
func (p *Placement) Policy() Policy { return p.policy }

// PolicyName returns the name of the Orderer that produced this placement
// (the MCTOP_PLACE_* name for builtins, the composed name for chains, the
// registered name for custom policies).
func (p *Placement) PolicyName() string {
	if p.name != "" {
		return p.name
	}
	return p.policy.String()
}

// Topology returns the placement's topology.
func (p *Placement) Topology() *topo.Topology { return p.t }

// Contexts returns the assignment order (a copy). Entries of -1 mean the
// thread is left unpinned (None policy).
func (p *Placement) Contexts() []int {
	return append([]int(nil), p.ctxs...)
}

// NThreads returns the number of threads the placement accommodates.
func (p *Placement) NThreads() int { return len(p.ctxs) }

// PinNext claims the next available slot and returns its hardware context
// (-1 means run unpinned). ok is false when all slots are taken.
func (p *Placement) PinNext() (ctx int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.free < len(p.taken) && p.taken[p.free] {
		p.free++
	}
	if p.free == len(p.taken) {
		return -1, false
	}
	p.taken[p.free] = true
	ctx = p.ctxs[p.free]
	p.free++
	return ctx, true
}

// Unpin returns a context claimed by PinNext to the placement.
func (p *Placement) Unpin(ctx int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.ctxs {
		if p.ctxs[i] == ctx && p.taken[i] {
			p.taken[i] = false
			if i < p.free {
				p.free = i
			}
			return
		}
	}
}

// pinned returns the distinct pinned contexts (excludes -1 slots).
func (p *Placement) pinnedCtxs() []int {
	var out []int
	for _, c := range p.ctxs {
		if c >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// SocketsUsed returns the sockets the placement touches, in first-use
// order.
func (p *Placement) SocketsUsed() []*topo.Socket {
	seen := map[int]bool{}
	var out []*topo.Socket
	for _, c := range p.pinnedCtxs() {
		s := p.t.Context(c).Socket
		if !seen[s.ID] {
			seen[s.ID] = true
			out = append(out, s)
		}
	}
	return out
}

// NCores returns the number of distinct physical cores used.
func (p *Placement) NCores() int {
	seen := map[*topo.HWCGroup]bool{}
	for _, c := range p.pinnedCtxs() {
		seen[p.t.Context(c).Core] = true
	}
	return len(seen)
}

// CtxPerSocket returns, per used socket (in SocketsUsed order), how many
// hardware contexts the placement occupies there.
func (p *Placement) CtxPerSocket() []int {
	sockets := p.SocketsUsed()
	idx := map[int]int{}
	for i, s := range sockets {
		idx[s.ID] = i
	}
	counts := make([]int, len(sockets))
	for _, c := range p.pinnedCtxs() {
		counts[idx[p.t.Context(c).Socket.ID]]++
	}
	return counts
}

// CoresPerSocket returns distinct cores per used socket.
func (p *Placement) CoresPerSocket() []int {
	sockets := p.SocketsUsed()
	idx := map[int]int{}
	for i, s := range sockets {
		idx[s.ID] = i
	}
	seen := map[*topo.HWCGroup]bool{}
	counts := make([]int, len(sockets))
	for _, c := range p.pinnedCtxs() {
		core := p.t.Context(c).Core
		if !seen[core] {
			seen[core] = true
			counts[idx[core.Socket.ID]]++
		}
	}
	return counts
}

// BWProportions returns each used socket's share of the placement's
// aggregate local memory bandwidth (Figure 7's "BW proportions").
func (p *Placement) BWProportions() []float64 {
	sockets := p.SocketsUsed()
	var sum float64
	bws := make([]float64, len(sockets))
	for i, s := range sockets {
		if s.MemBW != nil {
			bws[i] = s.MemBW[s.Local.ID]
		}
		sum += bws[i]
	}
	if sum == 0 {
		return bws
	}
	for i := range bws {
		bws[i] /= sum
	}
	return bws
}

// MinBandwidth returns the aggregate local memory bandwidth of the used
// sockets — the guaranteed streaming rate when every thread stays local
// (Figure 7's "Min bandwidth").
func (p *Placement) MinBandwidth() float64 {
	var sum float64
	for _, s := range p.SocketsUsed() {
		if s.MemBW != nil {
			sum += s.MemBW[s.Local.ID]
		}
	}
	return sum
}

// MaxLatency returns the maximum communication latency between any two
// placed threads (Figure 7's "Max latency"; also the educated-backoff
// quantum of Section 5).
func (p *Placement) MaxLatency() int64 {
	return p.t.MaxLatencyBetween(p.pinnedCtxs())
}

// MaxPower estimates the placement's maximum power per used socket and in
// total (Figure 7's "Max pow" lines). Zero when power data is unavailable.
func (p *Placement) MaxPower(withDRAM bool) (perUsedSocket []float64, total float64) {
	perAll, total := p.t.PowerEstimate(p.pinnedCtxs(), withDRAM)
	for _, s := range p.SocketsUsed() {
		perUsedSocket = append(perUsedSocket, perAll[s.ID])
	}
	return perUsedSocket, total
}

// String renders the placement report of Figure 7.
func (p *Placement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## MCTOP Placement    : %s\n", p.PolicyName())
	fmt.Fprintf(&b, "#  # Cores            : %d\n", p.NCores())
	ctxs := p.Contexts()
	fmt.Fprintf(&b, "#  HW contexts (%d)   :", len(ctxs))
	for i, c := range ctxs {
		if i == 16 {
			b.WriteString(" ...")
			break
		}
		fmt.Fprintf(&b, " %d", c)
	}
	b.WriteByte('\n')
	sockets := p.SocketsUsed()
	ids := make([]string, len(sockets))
	for i, s := range sockets {
		ids[i] = fmt.Sprintf("%d", s.ID)
	}
	fmt.Fprintf(&b, "#  Sockets (%d)        : %s\n", len(sockets), strings.Join(ids, " "))
	fmt.Fprintf(&b, "#  # HW ctx / socket  : %s\n", joinInts(p.CtxPerSocket()))
	fmt.Fprintf(&b, "#  # Cores / socket   : %s\n", joinInts(p.CoresPerSocket()))
	props := p.BWProportions()
	parts := make([]string, len(props))
	for i, f := range props {
		parts[i] = fmt.Sprintf("%.3f", f)
	}
	fmt.Fprintf(&b, "#  BW proportions     : %s\n", strings.Join(parts, " "))
	if p.t.Power().Available() {
		per, total := p.MaxPower(false)
		fmt.Fprintf(&b, "#  Max pow no DRAM    : %s= %.1f Watt\n", joinWatts(per), total)
		perD, totalD := p.MaxPower(true)
		fmt.Fprintf(&b, "#  Max pow with DRAM  : %s= %.1f Watt\n", joinWatts(perD), totalD)
	}
	fmt.Fprintf(&b, "#  Max latency        : %d cycles\n", p.MaxLatency())
	fmt.Fprintf(&b, "#  Min bandwidth      : %.2f GB/s\n", p.MinBandwidth())
	return b.String()
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, " ")
}

func joinWatts(xs []float64) string {
	var b strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&b, "%.1f ", x)
	}
	return b.String()
}

// Pool offers runtime selection of placement policies (Section 6): systems
// can switch policies between execution phases, which is what the OpenMP
// extension of Section 7.4 builds on.
type Pool struct {
	t *topo.Topology

	mu  sync.Mutex
	cur *Placement
}

// NewPool creates a pool with an initial policy.
func NewPool(t *topo.Topology, policy Policy, opt Options) (*Pool, error) {
	p, err := New(t, policy, opt)
	if err != nil {
		return nil, err
	}
	return &Pool{t: t, cur: p}, nil
}

// Set switches to a new policy at runtime.
func (pl *Pool) Set(policy Policy, opt Options) error {
	p, err := New(pl.t, policy, opt)
	if err != nil {
		return err
	}
	pl.mu.Lock()
	pl.cur = p
	pl.mu.Unlock()
	return nil
}

// Current returns the active placement.
func (pl *Pool) Current() *Placement {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.cur
}

// Sorted verification helper: contexts in ascending order.
func sortedCtxs(p *Placement) []int {
	out := p.pinnedCtxs()
	sort.Ints(out)
	return out
}
