package place

import (
	"fmt"

	"repro/internal/topo"
)

// Reconstruct rebuilds a Placement from a previously computed assignment
// order without re-running its policy — how the description-file spool
// (internal/spool) revives placements persisted by an earlier process. The
// order is validated exactly like NewFrom's; policyName resolves to the
// builtin Policy when it names one (so Policy() answers as it did on the
// producing side) and to Custom otherwise, with the name preserved as
// PolicyName. The pin/unpin cursor starts fresh: pins are process state,
// not part of the persisted mapping.
func Reconstruct(t *topo.Topology, policyName string, ctxs []int) (*Placement, error) {
	if policyName == "" {
		return nil, fmt.Errorf("%w: placement has empty policy name", ErrInvalid)
	}
	for i, c := range ctxs {
		if c < -1 || c >= t.NumHWContexts() {
			return nil, fmt.Errorf("%w: saved placement %s slot %d names context %d (machine has %d)",
				ErrInvalid, policyName, i, c, t.NumHWContexts())
		}
	}
	policy := Custom
	if p, err := ParsePolicy(policyName); err == nil {
		policy = p
	}
	return &Placement{
		t:      t,
		policy: policy,
		name:   policyName,
		ctxs:   append([]int(nil), ctxs...),
		taken:  make([]bool, len(ctxs)),
	}, nil
}
