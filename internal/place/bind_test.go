package place

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestBindPinsThreads(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	m, err := machine.NewSim(sim.Ivy(), 9)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(tp, ConCoreHWC, Options{NThreads: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(m, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Threads) != 6 {
		t.Fatalf("bound %d threads", len(b.Threads))
	}
	want := pl.Contexts()
	for i, th := range b.Threads {
		if th.Ctx() != want[i] {
			t.Errorf("thread %d on ctx %d, want %d", i, th.Ctx(), want[i])
		}
	}
	// The placement is exhausted while bound.
	if _, ok := pl.PinNext(); ok {
		t.Error("placement should be fully claimed")
	}
	b.Release()
	if _, ok := pl.PinNext(); !ok {
		t.Error("release should free slots")
	}
}

func TestBindUnpinnedPolicy(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	m, _ := machine.NewSim(sim.Ivy(), 9)
	pl, _ := New(tp, None, Options{NThreads: 3})
	b, err := Bind(m, pl)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if len(b.Threads) != 3 {
		t.Fatalf("bound %d threads", len(b.Threads))
	}
	// Threads exist and can measure even though the policy does not pin.
	b.Threads[0].SpinWork(100)
}
