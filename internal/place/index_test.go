package place

// Tests for the query-index-era placement fast paths: the incremental
// power greedy must produce byte-identical orders to the exhaustive scan it
// replaced, roundRobin's limit must be a pure prefix, the PinNext free-slot
// cursor must preserve the lowest-free-slot contract under pin/unpin
// churn, and ParsePolicy's init-time reverse map must accept exactly what
// the per-call loop accepted.

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/topo"
)

var goldenPlatformFiles = []string{
	"ivy.mctop", "westmere.mctop", "haswell.mctop", "opteron.mctop", "sparc.mctop",
}

func loadGolden(t *testing.T, file string) *topo.Topology {
	t.Helper()
	top, err := topo.LoadFile(filepath.Join("..", "topo", "testdata", file))
	if err != nil {
		t.Fatalf("loading golden %s: %v", file, err)
	}
	return top
}

func TestPowerOrderMatchesScan(t *testing.T) {
	for _, file := range goldenPlatformFiles {
		top := loadGolden(t, file)
		if !top.Power().Available() {
			continue // POWER is Intel-only; Opteron and SPARC have no model
		}
		nCtx := top.NumHWContexts()
		for _, nSockets := range []int{1, 2, top.NumSockets()} {
			if nSockets > top.NumSockets() {
				continue
			}
			for _, nThreads := range []int{0, 1, 2, 3, 5, 8, nCtx / 2, nCtx - 1, nCtx, nCtx + 9} {
				got := powerOrder(top, nSockets, nThreads)
				want := powerOrderScan(top, nSockets, nThreads)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: powerOrder(nSockets=%d, nThreads=%d)\n got %v\nwant %v",
						file, nSockets, nThreads, got, want)
				}
			}
		}
	}
}

func TestRoundRobinLimitIsPrefix(t *testing.T) {
	perSocket := [][]int{{0, 1, 2, 3}, {10, 11}, {20, 21, 22, 23, 24}, {}}
	full := roundRobin(perSocket, 0)
	for limit := 1; limit <= len(full)+3; limit++ {
		got := roundRobin(perSocket, limit)
		want := full
		if limit < len(full) {
			want = full[:limit]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("roundRobin(limit=%d) = %v, want %v", limit, got, want)
		}
	}
}

// TestPinNextCursor drives random pin/unpin churn against a straightforward
// first-free-slot model.
func TestPinNextCursor(t *testing.T) {
	top := loadGolden(t, "ivy.mctop")
	pl, err := New(top, Sequential, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	model := make([]bool, pl.NThreads()) // model[i] = slot i taken
	var pinned []int
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) > 0 || len(pinned) == 0 {
			ctx, ok := pl.PinNext()
			wantSlot := -1
			for i, taken := range model {
				if !taken {
					wantSlot = i
					break
				}
			}
			if wantSlot == -1 {
				if ok {
					t.Fatalf("step %d: PinNext ok with all slots taken", step)
				}
				continue
			}
			if !ok || ctx != wantSlot { // Sequential: slot i holds context i
				t.Fatalf("step %d: PinNext = (%d, %v), want (%d, true)", step, ctx, ok, wantSlot)
			}
			model[wantSlot] = true
			pinned = append(pinned, ctx)
		} else {
			i := rng.Intn(len(pinned))
			ctx := pinned[i]
			pinned = append(pinned[:i], pinned[i+1:]...)
			pl.Unpin(ctx)
			model[ctx] = false
		}
	}
}

func TestParsePolicyReverseMap(t *testing.T) {
	for _, pol := range Policies() {
		name := pol.String()
		for _, variant := range []string{
			name,
			strings.TrimPrefix(name, "MCTOP_PLACE_"),
			strings.ToLower(name),
			"  " + strings.TrimPrefix(name, "MCTOP_PLACE_") + " ",
		} {
			got, err := ParsePolicy(variant)
			if err != nil || got != pol {
				t.Errorf("ParsePolicy(%q) = (%v, %v), want %v", variant, got, err, pol)
			}
		}
	}
	for _, bad := range []string{"", "MCTOP_PLACE_", "bogus", "MCTOP_PLACE_MCTOP_PLACE_NONE"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) unexpectedly succeeded", bad)
		}
	}
}
