package place_test

// Table-driven coverage of the full policy matrix: all 12 placement
// policies of Table 2 x the five simulated platforms, asserting the
// invariants every placement must satisfy — the requested thread count is
// honored, no hardware context is assigned twice, contexts are valid, and
// each policy family's ordering property holds (compact policies fill a
// socket before opening the next, balanced/round-robin policies spread
// evenly, core-first policies use unique cores before SMT siblings).

import (
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	matrixMu    sync.Mutex
	matrixTopos = map[string]*topo.Topology{}
)

// matrixTopo infers each platform once and shares it across the matrix.
func matrixTopo(t *testing.T, name string) *topo.Topology {
	t.Helper()
	matrixMu.Lock()
	defer matrixMu.Unlock()
	if top, ok := matrixTopos[name]; ok {
		return top
	}
	p, err := sim.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.NewSim(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mctopalg.Infer(m, mctopalg.Options{Reps: 51})
	if err != nil {
		t.Fatal(err)
	}
	top, err := plugins.Enrich(m, res.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	matrixTopos[name] = top
	return top
}

// checkInvariants verifies the policy-independent contract of a placement.
func checkInvariants(t *testing.T, top *topo.Topology, pol place.Policy, pl *place.Placement, requested int) {
	t.Helper()
	ctxs := pl.Contexts()

	if requested > 0 && pol != place.RRScale && len(ctxs) != requested {
		t.Errorf("requested %d threads, placement has %d", requested, len(ctxs))
	}
	if requested > 0 && len(ctxs) > requested {
		t.Errorf("placement overshoots: %d slots for %d requested threads", len(ctxs), requested)
	}

	seen := map[int]bool{}
	for i, c := range ctxs {
		if pol == place.None {
			if c != -1 {
				t.Fatalf("None must leave threads unpinned, slot %d = %d", i, c)
			}
			continue
		}
		if c < 0 || c >= top.NumHWContexts() {
			t.Fatalf("slot %d assigns invalid context %d", i, c)
		}
		if seen[c] {
			t.Fatalf("context %d assigned twice", c)
		}
		seen[c] = true
	}
}

// checkOrdering verifies each policy family's characteristic property over a
// full placement (every context the policy allows).
func checkOrdering(t *testing.T, top *topo.Topology, pol place.Policy, pl *place.Placement) {
	t.Helper()
	ctxs := pl.Contexts()

	switch pol {
	case place.Sequential:
		for i, c := range ctxs {
			if c != i {
				t.Fatalf("Sequential slot %d = %d", i, c)
			}
		}

	case place.ConHWC, place.ConCoreHWC:
		// Compact: once a socket is left, it never reappears.
		seenSockets := map[int]bool{}
		last := -1
		for _, c := range ctxs {
			s := top.Context(c).Socket.ID
			if s != last {
				if seenSockets[s] {
					t.Fatalf("%v returns to socket %d after leaving it", pol, s)
				}
				seenSockets[s] = true
				last = s
			}
		}
		if pol == place.ConHWC && top.HasSMT() {
			// Both SMT contexts of a core are placed back to back.
			for i := 0; i+1 < len(ctxs); i += top.SMTWays() {
				core := top.Context(ctxs[i]).Core
				for j := 1; j < top.SMTWays(); j++ {
					if top.Context(ctxs[i+j]).Core != core {
						t.Fatalf("ConHWC splits core at slot %d", i)
					}
				}
			}
		}

	case place.ConCore:
		// All unique cores of the allowed sockets come before any SMT
		// sibling reuse.
		nCores := top.NumCores()
		seenCores := map[*topo.HWCGroup]bool{}
		for i, c := range ctxs {
			core := top.Context(c).Core
			if i < nCores {
				if seenCores[core] {
					t.Fatalf("ConCore reuses a core at slot %d before all %d cores are used", i, nCores)
				}
				seenCores[core] = true
			}
		}

	case place.BalanceHWC, place.BalanceCoreHWC, place.BalanceCore, place.RRCore, place.RRHWC:
		// Spread: socket occupancies stay within one thread of each other
		// at every prefix length (round-robin interleaving).
		counts := map[int]int{}
		for i, c := range ctxs {
			counts[top.Context(c).Socket.ID]++
			if i+1 >= top.NumSockets() { // once every socket had its turn
				min, max := 1<<30, 0
				for _, n := range counts {
					if n < min {
						min = n
					}
					if n > max {
						max = n
					}
				}
				if len(counts) == top.NumSockets() && max-min > 1 {
					t.Fatalf("%v imbalanced after %d threads: per-socket counts %v", pol, i+1, counts)
				}
			}
		}

	case place.RRScale:
		// Capped at the contexts needed to saturate each socket's local
		// memory bandwidth; never more than one context per core before
		// the cap is known, and never more slots than contexts.
		if len(ctxs) > top.NumHWContexts() {
			t.Fatalf("RRScale placed %d threads on %d contexts", len(ctxs), top.NumHWContexts())
		}

	case place.PowerPolicy, place.None:
		// PowerPolicy's ordering is model-driven (checked by its own test
		// file); None has no ordering.
	}
}

func TestPolicyMatrix(t *testing.T) {
	platforms := []string{"Ivy", "Westmere", "Haswell", "Opteron", "SPARC"}
	for _, platform := range platforms {
		platform := platform
		t.Run(platform, func(t *testing.T) {
			top := matrixTopo(t, platform)
			for _, pol := range place.Policies() {
				pol := pol
				t.Run(pol.String(), func(t *testing.T) {
					if pol == place.PowerPolicy && !top.Power().Available() {
						// Power placement is Intel-only in the paper; the
						// policy must refuse, not misbehave.
						if _, err := place.New(top, pol, place.Options{}); err == nil {
							t.Fatal("PowerPolicy succeeded without power measurements")
						}
						return
					}

					// Full placement: every context the policy allows.
					full, err := place.New(top, pol, place.Options{})
					if err != nil {
						t.Fatal(err)
					}
					checkInvariants(t, top, pol, full, 0)
					checkOrdering(t, top, pol, full)
					if pol != place.None && pol != place.RRScale && full.NThreads() != top.NumHWContexts() {
						t.Errorf("full %v uses %d of %d contexts", pol, full.NThreads(), top.NumHWContexts())
					}

					// Partial placement: a thread count below one socket.
					partial, err := place.New(top, pol, place.Options{NThreads: 5})
					if err != nil {
						t.Fatal(err)
					}
					checkInvariants(t, top, pol, partial, 5)
				})
			}
		})
	}
}
