package place

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	topoCache = map[string]*topo.Topology{}
	topoMu    sync.Mutex
)

// enriched infers and enriches a platform's topology (cached per platform:
// placements never mutate it).
func enriched(t *testing.T, p *sim.Platform) *topo.Topology {
	t.Helper()
	topoMu.Lock()
	defer topoMu.Unlock()
	if tp, ok := topoCache[p.Name]; ok {
		return tp
	}
	m, err := machine.NewSim(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	o := mctopalg.DefaultOptions()
	o.Reps = 51
	res, err := mctopalg.Infer(m, o)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := plugins.Enrich(m, res.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	topoCache[p.Name] = tp
	return tp
}

// TestFig7ConHWC reproduces Figure 7: CON_HWC with 30 threads on Ivy.
func TestFig7ConHWC(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, err := New(tp, ConHWC, Options{NThreads: 30})
	if err != nil {
		t.Fatal(err)
	}
	if pl.NThreads() != 30 {
		t.Fatalf("threads = %d", pl.NThreads())
	}
	if got := pl.NCores(); got != 15 {
		t.Errorf("# Cores = %d, want 15", got)
	}
	// Compact order: core 0's two contexts first (0 then its sibling 20).
	ctxs := pl.Contexts()
	if ctxs[0] != 0 || ctxs[1] != 20 || ctxs[2] != 1 || ctxs[3] != 21 {
		t.Errorf("placement starts %v, want 0 20 1 21", ctxs[:4])
	}
	if got := pl.CtxPerSocket(); got[0] != 20 || got[1] != 10 {
		t.Errorf("HW ctx/socket = %v, want [20 10]", got)
	}
	if got := pl.CoresPerSocket(); got[0] != 10 || got[1] != 5 {
		t.Errorf("cores/socket = %v, want [10 5]", got)
	}
	props := pl.BWProportions()
	if math.Abs(props[0]-0.655) > 0.01 || math.Abs(props[1]-0.345) > 0.01 {
		t.Errorf("BW proportions = %v, want 0.655/0.345", props)
	}
	if got := pl.MaxLatency(); got < 300 || got > 316 {
		t.Errorf("max latency = %d, want ~308", got)
	}
	if got := pl.MinBandwidth(); math.Abs(got-24.27) > 0.3 {
		t.Errorf("min bandwidth = %.2f, want ~24.28", got)
	}
	per, total := pl.MaxPower(false)
	if math.Abs(per[0]-66.7) > 0.1 || math.Abs(per[1]-43.4) > 0.1 || math.Abs(total-110.1) > 0.15 {
		t.Errorf("max power = %v = %.1f, want 66.7/43.4 = 110.1", per, total)
	}
	perD, totalD := pl.MaxPower(true)
	if math.Abs(perD[0]-111.9) > 0.15 || math.Abs(perD[1]-88.7) > 0.15 || math.Abs(totalD-200.6) > 0.25 {
		t.Errorf("max power DRAM = %v = %.1f, want 111.9/88.7 = 200.6", perD, totalD)
	}
	out := pl.String()
	for _, want := range []string{"MCTOP_PLACE_CON_HWC", "# Cores            : 15", "Max latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestConCoreHWC(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, err := New(tp, ConCoreHWC, Options{NThreads: 12})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := pl.Contexts()
	// Unique cores of socket 0 first (0..9), then SMT siblings (20, 21).
	for i := 0; i < 10; i++ {
		if ctxs[i] != i {
			t.Fatalf("ctxs[%d] = %d, want %d", i, ctxs[i], i)
		}
	}
	if ctxs[10] != 20 || ctxs[11] != 21 {
		t.Errorf("ctxs[10:12] = %v, want [20 21]", ctxs[10:12])
	}
	if len(pl.SocketsUsed()) != 1 {
		t.Error("12 threads should fit one socket under CON_CORE_HWC")
	}
}

func TestConCore(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, err := New(tp, ConCore, Options{NThreads: 12})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := pl.Contexts()
	// All 10 cores of socket 0, then 2 cores of socket 1 — no SMT siblings.
	if ctxs[10] != 10 || ctxs[11] != 11 {
		t.Errorf("ctxs[10:12] = %v, want [10 11] (unique cores of socket 1)", ctxs[10:12])
	}
	if got := pl.NCores(); got != 12 {
		t.Errorf("cores = %d, want 12 (all unique)", got)
	}
	if len(pl.SocketsUsed()) != 2 {
		t.Error("CON_CORE should have spilled to socket 1")
	}
}

func TestBalanceSpreadsEvenly(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	for _, pol := range []Policy{BalanceHWC, BalanceCoreHWC, BalanceCore} {
		pl, err := New(tp, pol, Options{NThreads: 10})
		if err != nil {
			t.Fatal(err)
		}
		counts := pl.CtxPerSocket()
		if len(counts) != 2 || counts[0] != 5 || counts[1] != 5 {
			t.Errorf("%v: ctx/socket = %v, want [5 5]", pol, counts)
		}
	}
	// BalanceCore must use unique cores.
	pl, _ := New(tp, BalanceCore, Options{NThreads: 10})
	if pl.NCores() != 10 {
		t.Errorf("BalanceCore cores = %d, want 10", pl.NCores())
	}
	// BalanceHWC keeps SMT pairs together: 5 threads/socket -> 3 cores.
	pl, _ = New(tp, BalanceHWC, Options{NThreads: 10})
	cps := pl.CoresPerSocket()
	if cps[0] != 3 || cps[1] != 3 {
		t.Errorf("BalanceHWC cores/socket = %v, want [3 3]", cps)
	}
}

func TestRRAlternatesSockets(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, err := New(tp, RRCore, Options{NThreads: 6})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := pl.Contexts()
	socketSeq := make([]int, len(ctxs))
	for i, c := range ctxs {
		socketSeq[i] = tp.Context(c).Socket.ID
	}
	for i := 0; i < len(socketSeq)-1; i++ {
		if socketSeq[i] == socketSeq[i+1] {
			t.Fatalf("RRCore does not alternate sockets: %v", socketSeq)
		}
	}
	// Max-BW socket (0) first.
	if socketSeq[0] != 0 {
		t.Errorf("RR starts at socket %d, want 0 (max BW)", socketSeq[0])
	}
	// Unique cores first.
	if pl.NCores() != 6 {
		t.Errorf("RRCore cores = %d, want 6", pl.NCores())
	}
}

func TestRRScaleCapsAtSaturation(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, err := New(tp, RRScale, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Ivy: socket 0 saturates at ceil(15.9/4.0) = 4 streaming cores,
	// socket 1 at ceil(8.37/4.0) = 3.
	counts := pl.CtxPerSocket()
	if len(counts) != 2 || counts[0] != 4 || counts[1] != 3 {
		t.Errorf("RR_SCALE ctx/socket = %v, want [4 3]", counts)
	}
	if pl.NThreads() != 7 {
		t.Errorf("RR_SCALE threads = %d, want 7", pl.NThreads())
	}
}

func TestPowerPolicyCompactsSMT(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, err := New(tp, PowerPolicy, Options{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := pl.Contexts()
	// Cheapest additions: SMT sibling of an active core before a new core.
	if tp.Context(ctxs[0]).Core != tp.Context(ctxs[1]).Core {
		t.Errorf("POWER should pair SMT siblings first: %v", ctxs)
	}
	if tp.Context(ctxs[2]).Core != tp.Context(ctxs[3]).Core {
		t.Errorf("POWER third/fourth should share a core: %v", ctxs)
	}
	if len(pl.SocketsUsed()) != 1 {
		t.Error("POWER with 4 threads should stay on one socket")
	}
	// POWER uses fewer cores than a core-first policy (Figure 11's trade).
	plCore, _ := New(tp, ConCoreHWC, Options{NThreads: 4})
	if !(pl.NCores() < plCore.NCores()) {
		t.Errorf("POWER cores = %d, CON_CORE_HWC cores = %d", pl.NCores(), plCore.NCores())
	}
	// Unavailable on non-Intel platforms.
	if _, err := New(enriched(t, sim.Opteron()), PowerPolicy, Options{}); err == nil {
		t.Error("POWER must fail without power measurements")
	}
}

func TestNoneAndSequential(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, err := New(tp, None, Options{NThreads: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pl.Contexts() {
		if c != -1 {
			t.Errorf("None placement pins to %d", c)
		}
	}
	if pl.NCores() != 0 || pl.MaxLatency() != 0 {
		t.Error("None placement should have empty stats")
	}
	seq, _ := New(tp, Sequential, Options{})
	ctxs := seq.Contexts()
	for i, c := range ctxs {
		if c != i {
			t.Fatalf("Sequential ctxs[%d] = %d", i, c)
		}
	}
}

// TestAllPoliciesAllPlatforms: structural invariants of every applicable
// policy on every platform — contexts valid and distinct, thread counts
// respected.
func TestAllPoliciesAllPlatforms(t *testing.T) {
	for _, p := range sim.Platforms() {
		tp := enriched(t, p)
		for _, pol := range Policies() {
			if pol == PowerPolicy && !tp.Power().Available() {
				continue
			}
			for _, n := range []int{1, 3, p.NumContexts() / 2, 0} {
				pl, err := New(tp, pol, Options{NThreads: n})
				if err != nil {
					t.Fatalf("%s/%v/%d: %v", p.Name, pol, n, err)
				}
				ctxs := pl.Contexts()
				if n > 0 && pol != RRScale && len(ctxs) != n && len(ctxs) != p.NumContexts() {
					if len(ctxs) > n {
						t.Errorf("%s/%v: asked %d got %d", p.Name, pol, n, len(ctxs))
					}
				}
				seen := map[int]bool{}
				for _, c := range ctxs {
					if pol == None {
						continue
					}
					if c < 0 || c >= p.NumContexts() {
						t.Fatalf("%s/%v: context %d out of range", p.Name, pol, c)
					}
					if seen[c] {
						t.Fatalf("%s/%v: context %d assigned twice", p.Name, pol, c)
					}
					seen[c] = true
				}
			}
		}
	}
}

func TestNSocketsOption(t *testing.T) {
	tp := enriched(t, sim.Opteron())
	pl, err := New(tp, ConCoreHWC, Options{NSockets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.SocketsUsed()); got != 2 {
		t.Errorf("sockets used = %d, want 2", got)
	}
	// The two sockets must be an MCM pair (minimum latency chain).
	ss := pl.SocketsUsed()
	if lat := tp.SocketLatency(ss[0].ID, ss[1].ID); lat > 205 {
		t.Errorf("chained socket pair latency = %d, want the 197-cycle link", lat)
	}
}

func TestPinUnpin(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, _ := New(tp, ConCoreHWC, Options{NThreads: 3})
	a, ok := pl.PinNext()
	if !ok || a != 0 {
		t.Fatalf("first pin = %d/%v", a, ok)
	}
	b, _ := pl.PinNext()
	c, _ := pl.PinNext()
	if _, ok := pl.PinNext(); ok {
		t.Error("fourth pin should fail")
	}
	pl.Unpin(b)
	d, ok := pl.PinNext()
	if !ok || d != b {
		t.Errorf("re-pin = %d/%v, want %d", d, ok, b)
	}
	_ = c
}

func TestPinNextConcurrent(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, _ := New(tp, ConHWC, Options{NThreads: 40})
	var wg sync.WaitGroup
	got := make(chan int, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c, ok := pl.PinNext(); ok {
				got <- c
			}
		}()
	}
	wg.Wait()
	close(got)
	seen := map[int]bool{}
	count := 0
	for c := range got {
		if seen[c] {
			t.Fatalf("context %d pinned twice", c)
		}
		seen[c] = true
		count++
	}
	if count != 40 {
		t.Errorf("pinned %d, want 40", count)
	}
}

func TestPoolSwitching(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pool, err := NewPool(tp, ConHWC, Options{NThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Current().Policy() != ConHWC {
		t.Error("initial policy wrong")
	}
	if err := pool.Set(RRCore, Options{NThreads: 8}); err != nil {
		t.Fatal(err)
	}
	if pool.Current().Policy() != RRCore {
		t.Error("switch did not take effect")
	}
	if err := pool.Set(PowerPolicy, Options{}); err != nil {
		t.Fatal(err)
	}
	// Switching to an unsupported policy fails and keeps the current one.
	opt := enriched(t, sim.SPARC())
	pool2, _ := NewPool(opt, ConHWC, Options{})
	if err := pool2.Set(PowerPolicy, Options{}); err == nil {
		t.Error("POWER on SPARC should fail")
	}
	if pool2.Current().Policy() != ConHWC {
		t.Error("failed switch should preserve current placement")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePolicy("con_hwc"); err != nil || p != ConHWC {
		t.Errorf("short lowercase parse failed: %v %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy should fail")
	}
}

func TestSortedCtxsHelper(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, _ := New(tp, RRCore, Options{NThreads: 4})
	s := sortedCtxs(pl)
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("not sorted")
		}
	}
}
