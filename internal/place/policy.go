// The composable policy layer of MCTOP-PLACE: the 12 builtin policies of
// Table 2 implement the Orderer interface, combinators wrap any Orderer
// into a new one, and a process-wide registry lets applications name custom
// policies so servers (cmd/mctopd) can place with them — the MCTOP-LIB
// model where mapping strategies are pluggable, not a fixed menu.

package place

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/mctoperr"
	"repro/internal/topo"
)

// Orderer is a placement policy: it produces the slot order a Placement
// hands out — slot i is the hardware context the i-th pinned thread runs
// on (-1 means "leave unpinned"). The 12 builtin Policy values implement
// it, as do the combinators below and any user type; NewFrom turns an
// Orderer into a Placement, and registered Orderers are placeable by name
// through Resolve (and therefore through the registry and mctopd).
//
// Name must uniquely identify the ordering: caches key placements by it.
type Orderer interface {
	// Name returns the policy's stable identifier (e.g. the MCTOP_PLACE_*
	// names for builtins, "RR_CORE.ON_SOCKETS(0).LIMIT(8)" for chains).
	Name() string
	// Order computes the slot order for the topology under the options.
	// Every entry must be -1 or a valid hardware-context id. Failures the
	// caller can correct wrap ErrInvalid.
	Order(t *topo.Topology, opt Options) ([]int, error)
}

// Name implements Orderer for the builtin policies.
func (p Policy) Name() string { return p.String() }

// Order implements Orderer for the builtin policies: the full validation
// and ordering pipeline New has always run (socket clamp, power-data
// check, Table 2 order construction, NThreads truncation).
func (p Policy) Order(t *topo.Topology, opt Options) ([]int, error) {
	if opt.NSockets < 0 || opt.NThreads < 0 {
		return nil, fmt.Errorf("%w: negative options %+v", ErrInvalid, opt)
	}
	nSockets := opt.NSockets
	if nSockets == 0 || nSockets > t.NumSockets() {
		nSockets = t.NumSockets()
	}
	if p == PowerPolicy && !t.Power().Available() {
		return nil, fmt.Errorf("%w: %v requires power measurements (Intel-only)", ErrInvalid, p)
	}
	order, err := buildOrder(t, p, nSockets, opt.NThreads)
	if err != nil {
		return nil, err
	}
	n := opt.NThreads
	if n == 0 || n > len(order) {
		n = len(order)
	}
	return order[:n], nil
}

// Chain is an Orderer with fluent combinator methods, so compositions read
// left to right: OnSockets(RRCore, 0).Limit(8).
type Chain struct{ Orderer }

// Compose wraps any Orderer in a Chain.
func Compose(o Orderer) Chain { return Chain{o} }

// Limit chains a Limit combinator onto the receiver.
func (c Chain) Limit(n int) Chain { return Limit(c.Orderer, n) }

// OnSockets chains an OnSockets combinator onto the receiver.
func (c Chain) OnSockets(ids ...int) Chain { return OnSockets(c.Orderer, ids...) }

// Reverse chains a Reverse combinator onto the receiver.
func (c Chain) Reverse() Chain { return Reverse(c.Orderer) }

// Limit caps the base policy's order at n slots.
func Limit(o Orderer, n int) Chain { return Chain{limitPolicy{o, n}} }

type limitPolicy struct {
	base Orderer
	n    int
}

func (l limitPolicy) Name() string {
	return l.base.Name() + ".LIMIT(" + strconv.Itoa(l.n) + ")"
}

func (l limitPolicy) Order(t *topo.Topology, opt Options) ([]int, error) {
	if l.n < 0 {
		return nil, fmt.Errorf("%w: negative limit %d", ErrInvalid, l.n)
	}
	order, err := l.base.Order(t, opt)
	if err != nil {
		return nil, err
	}
	if l.n < len(order) {
		order = order[:l.n]
	}
	return order, nil
}

// OnSockets restricts the base policy's order to contexts on the given
// sockets, preserving the base order. The base computes its full-machine
// order first (its NThreads truncation is deferred), so the filtered order
// is "the base policy's preference among these sockets", then Options.
// NThreads applies to what survives the filter.
func OnSockets(o Orderer, ids ...int) Chain {
	return Chain{onSocketsPolicy{o, append([]int(nil), ids...)}}
}

type onSocketsPolicy struct {
	base Orderer
	ids  []int
}

func (s onSocketsPolicy) Name() string {
	parts := make([]string, len(s.ids))
	for i, id := range s.ids {
		parts[i] = strconv.Itoa(id)
	}
	return s.base.Name() + ".ON_SOCKETS(" + strings.Join(parts, ",") + ")"
}

func (s onSocketsPolicy) Order(t *topo.Topology, opt Options) ([]int, error) {
	if len(s.ids) == 0 {
		return nil, fmt.Errorf("%w: OnSockets with no sockets", ErrInvalid)
	}
	allowed := make(map[int]bool, len(s.ids))
	for _, id := range s.ids {
		if id < 0 || id >= t.NumSockets() {
			return nil, fmt.Errorf("%w: socket %d out of range [0, %d)", ErrInvalid, id, t.NumSockets())
		}
		allowed[id] = true
	}
	baseOpt := opt
	baseOpt.NThreads = 0
	order, err := s.base.Order(t, baseOpt)
	if err != nil {
		return nil, err
	}
	out := order[:0:0]
	for _, c := range order {
		if c >= 0 && c < t.NumHWContexts() && allowed[t.Context(c).Socket.ID] {
			out = append(out, c)
		}
	}
	if opt.NThreads > 0 && opt.NThreads < len(out) {
		out = out[:opt.NThreads]
	}
	return out, nil
}

// Reverse inverts the base policy's full order (least-preferred context
// first); Options.NThreads then truncates the reversed order, so a
// reversed policy hands out the contexts the base would use last.
func Reverse(o Orderer) Chain { return Chain{reversePolicy{o}} }

type reversePolicy struct{ base Orderer }

func (r reversePolicy) Name() string { return r.base.Name() + ".REVERSE" }

func (r reversePolicy) Order(t *topo.Topology, opt Options) ([]int, error) {
	baseOpt := opt
	baseOpt.NThreads = 0
	order, err := r.base.Order(t, baseOpt)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(order))
	for i, c := range order {
		out[len(order)-1-i] = c
	}
	if opt.NThreads > 0 && opt.NThreads < len(out) {
		out = out[:opt.NThreads]
	}
	return out, nil
}

// custom is the process-wide registry of named non-builtin policies,
// keyed by canonical (upper-cased, trimmed) name.
var (
	customMu sync.RWMutex
	custom   = map[string]Orderer{}
)

func canonicalName(s string) string { return strings.ToUpper(strings.TrimSpace(s)) }

// Register makes a custom policy resolvable by its Name — including
// through the registry's string-keyed Place and mctopd's ?policy=
// parameter. Names are case-insensitive; registering an empty name, a
// name that shadows a builtin policy, or a name already registered wraps
// ErrInvalid.
//
// A name permanently identifies one ordering: caches (the registry)
// memoize placements by policy name, so re-registering a *different*
// ordering under a previously used name would be served stale results.
// Unregister exists to retire a name, not to swap implementations — give
// a changed policy a new name (or version the name).
func Register(o Orderer) error {
	name := canonicalName(o.Name())
	if name == "" {
		return fmt.Errorf("%w: policy has empty name", ErrInvalid)
	}
	if _, ok := policyByName[name]; ok {
		return fmt.Errorf("%w: %q shadows a builtin policy", ErrInvalid, name)
	}
	customMu.Lock()
	defer customMu.Unlock()
	if _, ok := custom[name]; ok {
		return fmt.Errorf("%w: policy %q already registered", ErrInvalid, name)
	}
	custom[name] = o
	return nil
}

// Unregister removes a previously registered custom policy (no-op when
// absent).
func Unregister(name string) {
	customMu.Lock()
	defer customMu.Unlock()
	delete(custom, canonicalName(name))
}

// Resolve returns the policy for a name: one of the 12 builtins (with or
// without the MCTOP_PLACE_ prefix) or a registered custom policy, case-
// insensitive. Unknown names wrap both ErrInvalid and
// mctoperr.ErrUnknownPolicy.
func Resolve(name string) (Orderer, error) {
	key := canonicalName(name)
	if p, ok := policyByName[key]; ok {
		return p, nil
	}
	customMu.RLock()
	o, ok := custom[key]
	customMu.RUnlock()
	if ok {
		return o, nil
	}
	return nil, fmt.Errorf("%w: %w %q", ErrInvalid, mctoperr.ErrUnknownPolicy, name)
}

// RegisteredNames lists the registered custom policy names, sorted.
func RegisteredNames() []string {
	customMu.RLock()
	defer customMu.RUnlock()
	out := make([]string, 0, len(custom))
	for name := range custom {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
