package place

// BenchmarkQueryIndex_PowerPlacement measures the POWER-policy placement
// build — the incremental-delta greedy (three class representatives per
// step) against the pre-index exhaustive scan (a full PowerEstimate per
// remaining context per step). Haswell: 96 contexts, 4 sockets, the paper's
// largest machine with power measurements. Note the scan benchmark already
// benefits from the indexed PowerEstimate, so the true pre-index cost was
// higher still.

import (
	"path/filepath"
	"testing"

	"repro/internal/topo"
)

func benchGolden(b *testing.B, file string) *topo.Topology {
	b.Helper()
	top, err := topo.LoadFile(filepath.Join("..", "topo", "testdata", file))
	if err != nil {
		b.Fatal(err)
	}
	return top
}

func BenchmarkQueryIndex_PowerPlacement(b *testing.B) {
	top := benchGolden(b, "haswell.mctop")
	top.GetLatency(0, 1) // build the index outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(top, PowerPolicy, Options{NThreads: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryIndex_PowerPlacementPreindex(b *testing.B) {
	top := benchGolden(b, "haswell.mctop")
	top.GetLatency(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := powerOrderScan(top, top.NumSockets(), 64); len(got) != 64 {
			b.Fatal("scan produced wrong order length")
		}
	}
}

// BenchmarkQueryIndex_PlacementBuild measures the non-power placement build
// path (memoized socket/core orders; roundRobin capped at NThreads).
func BenchmarkQueryIndex_PlacementBuild(b *testing.B) {
	top := benchGolden(b, "westmere.mctop")
	top.GetLatency(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range []Policy{ConHWC, BalanceCore, RRCore} {
			if _, err := New(top, pol, Options{NThreads: 64}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkQueryIndex_PinNext measures the free-slot cursor under a full
// pin sweep (the serving pattern: every worker thread pins once).
func BenchmarkQueryIndex_PinNext(b *testing.B) {
	top := benchGolden(b, "westmere.mctop")
	pl, err := New(top, Sequential, Options{})
	if err != nil {
		b.Fatal(err)
	}
	n := pl.NThreads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			if _, ok := pl.PinNext(); !ok {
				b.Fatal("ran out of slots")
			}
		}
		b.StopTimer()
		for j := 0; j < n; j++ {
			pl.Unpin(j)
		}
		b.StartTimer()
	}
}
