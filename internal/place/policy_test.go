package place

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/mctoperr"
	"repro/internal/topo"
)

// loadPlatform pulls a golden topology fixture (shared with the topo
// package's tests) so policy tests run on realistic machines without
// paying for an inference.
func loadPlatform(t *testing.T, name string) *topo.Topology {
	t.Helper()
	top, err := topo.LoadFile("../topo/testdata/" + strings.ToLower(name) + ".mctop")
	if err != nil {
		t.Fatalf("loading %s fixture: %v", name, err)
	}
	return top
}

func TestBuiltinOrderMatchesNew(t *testing.T) {
	top := loadPlatform(t, "Ivy")
	for _, pol := range Policies() {
		order, err := pol.Order(top, Options{NThreads: 10})
		if err != nil {
			t.Fatalf("%v.Order: %v", pol, err)
		}
		pl, err := New(top, pol, Options{NThreads: 10})
		if err != nil {
			t.Fatalf("New(%v): %v", pol, err)
		}
		ctxs := pl.Contexts()
		if len(order) != len(ctxs) {
			t.Fatalf("%v: Order has %d slots, New has %d", pol, len(order), len(ctxs))
		}
		for i := range order {
			if order[i] != ctxs[i] {
				t.Fatalf("%v slot %d: Order %d, New %d", pol, i, order[i], ctxs[i])
			}
		}
		if pl.Policy() != pol {
			t.Errorf("%v: Policy() = %v", pol, pl.Policy())
		}
		if pl.PolicyName() != pol.String() {
			t.Errorf("%v: PolicyName() = %q", pol, pl.PolicyName())
		}
	}
}

func TestOnSocketsFiltersAndPreservesOrder(t *testing.T) {
	top := loadPlatform(t, "Ivy")
	full, err := RRCore.Order(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OnSockets(RRCore, 1).Order(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("empty filtered order")
	}
	// Every context is on socket 1, and the relative order matches the
	// base policy's full order.
	want := full[:0:0]
	for _, c := range full {
		if top.Context(c).Socket.ID == 1 {
			want = append(want, c)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d contexts, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestChainOnSocketsLimit(t *testing.T) {
	top := loadPlatform(t, "Ivy")
	chain := OnSockets(RRCore, 0).Limit(8)
	wantName := "MCTOP_PLACE_RR_CORE.ON_SOCKETS(0).LIMIT(8)"
	if chain.Name() != wantName {
		t.Errorf("Name() = %q, want %q", chain.Name(), wantName)
	}
	pl, err := NewFrom(top, chain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.NThreads() != 8 {
		t.Fatalf("NThreads = %d, want 8", pl.NThreads())
	}
	for _, c := range pl.Contexts() {
		if s := top.Context(c).Socket.ID; s != 0 {
			t.Fatalf("context %d is on socket %d, want 0", c, s)
		}
	}
	if pl.Policy() != Custom {
		t.Errorf("Policy() = %v, want Custom", pl.Policy())
	}
	if pl.PolicyName() != wantName {
		t.Errorf("PolicyName() = %q", pl.PolicyName())
	}
}

func TestReverseInvertsFullOrder(t *testing.T) {
	top := loadPlatform(t, "Ivy")
	full, err := ConHWC.Order(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Reverse(ConHWC).Order(top, Options{NThreads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rev) != 3 {
		t.Fatalf("len = %d, want 3", len(rev))
	}
	// The reversed order starts from the contexts the base policy would
	// use last.
	for i := 0; i < 3; i++ {
		if want := full[len(full)-1-i]; rev[i] != want {
			t.Fatalf("slot %d: got %d, want %d", i, rev[i], want)
		}
	}
}

func TestCombinatorErrors(t *testing.T) {
	top := loadPlatform(t, "Ivy")
	cases := []struct {
		name string
		o    Orderer
	}{
		{"socket out of range", OnSockets(RRCore, 99)},
		{"negative socket", OnSockets(RRCore, -1)},
		{"no sockets", OnSockets(RRCore)},
		{"negative limit", Limit(RRCore, -2)},
	}
	for _, tc := range cases {
		if _, err := tc.o.Order(top, Options{}); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", tc.name, err)
		} else if !errors.Is(err, mctoperr.ErrInvalidRequest) {
			t.Errorf("%s: err = %v does not wrap mctoperr.ErrInvalidRequest", tc.name, err)
		}
	}
}

// evenCtxs is a from-scratch Orderer implementation for the registration
// tests: every even-numbered context, ascending.
type evenCtxs struct{}

func (evenCtxs) Name() string { return "EVEN_CTXS" }
func (evenCtxs) Order(t *topo.Topology, opt Options) ([]int, error) {
	var out []int
	for c := 0; c < t.NumHWContexts(); c += 2 {
		out = append(out, c)
	}
	if opt.NThreads > 0 && opt.NThreads < len(out) {
		out = out[:opt.NThreads]
	}
	return out, nil
}

func TestRegisterResolveUnregister(t *testing.T) {
	if err := Register(evenCtxs{}); err != nil {
		t.Fatal(err)
	}
	defer Unregister("EVEN_CTXS")

	// Case-insensitive resolution.
	o, err := Resolve("even_ctxs")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "EVEN_CTXS" {
		t.Fatalf("resolved %q", o.Name())
	}
	found := false
	for _, n := range RegisteredNames() {
		if n == "EVEN_CTXS" {
			found = true
		}
	}
	if !found {
		t.Error("EVEN_CTXS not in RegisteredNames")
	}

	// Duplicate registration and builtin shadowing are rejected.
	if err := Register(evenCtxs{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("duplicate Register: %v, want ErrInvalid", err)
	}
	if err := Register(namedOrderer{"RR_CORE"}); !errors.Is(err, ErrInvalid) {
		t.Errorf("builtin shadow Register: %v, want ErrInvalid", err)
	}
	if err := Register(namedOrderer{"  "}); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty name Register: %v, want ErrInvalid", err)
	}

	// The placement built from the custom policy behaves.
	top := loadPlatform(t, "Ivy")
	pl, err := NewFrom(top, o, Options{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 2, 4, 6}; len(pl.Contexts()) != 4 {
		t.Fatalf("contexts %v, want %v", pl.Contexts(), want)
	}

	Unregister("EVEN_CTXS")
	if _, err := Resolve("EVEN_CTXS"); !errors.Is(err, mctoperr.ErrUnknownPolicy) {
		t.Errorf("after Unregister: %v, want ErrUnknownPolicy", err)
	}
}

// namedOrderer is an Orderer with a fixed name and no order, for
// registration-validation tests.
type namedOrderer struct{ name string }

func (n namedOrderer) Name() string                                 { return n.name }
func (n namedOrderer) Order(*topo.Topology, Options) ([]int, error) { return nil, nil }

func TestResolveUnknownWrapsSentinels(t *testing.T) {
	_, err := Resolve("NOT_A_POLICY")
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
	if !errors.Is(err, mctoperr.ErrUnknownPolicy) {
		t.Errorf("err = %v, want mctoperr.ErrUnknownPolicy", err)
	}
	if _, err := ParsePolicy("NOT_A_POLICY"); !errors.Is(err, mctoperr.ErrUnknownPolicy) {
		t.Errorf("ParsePolicy err = %v, want mctoperr.ErrUnknownPolicy", err)
	}
}

func TestNewFromRejectsOutOfRangeSlots(t *testing.T) {
	top := loadPlatform(t, "Ivy")
	bad := badOrderer{}
	if _, err := NewFrom(top, bad, Options{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
	if _, err := NewFrom(top, nil, Options{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("nil policy err = %v, want ErrInvalid", err)
	}
}

type badOrderer struct{}

func (badOrderer) Name() string { return "BAD" }
func (badOrderer) Order(t *topo.Topology, opt Options) ([]int, error) {
	return []int{0, t.NumHWContexts() + 5}, nil
}
