package msort

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/topo"
)

// ExportDAG models mctop_sort as a task DAG for the taskmap engine: a
// binary merge tree over `leaves` sorted runs of the Figure 9 dataset.
// Leaf tasks quicksort their chunk (kSort·chunk·log2(chunk) cycles);
// each internal task two-finger-merges its children's runs
// (kMergeScalar cycles per element) and receives each input run's bytes
// over its incoming edges. leaves must be a power of two in [2, 64].
func ExportDAG(t *topo.Topology, leaves int) (*graph.TaskDAG, error) {
	if leaves < 2 || leaves > 64 || leaves&(leaves-1) != 0 {
		return nil, fmt.Errorf("msort: leaves must be a power of two in [2,64], got %d", leaves)
	}
	chunk := int64(modelElems) / int64(leaves)
	sortWork := int64(float64(chunk) * kSort * math.Log2(float64(chunk)))
	d := &graph.TaskDAG{Name: fmt.Sprintf("msort-%d", leaves)}
	// Level 0: the sorted chunks.
	level := make([]int, leaves)
	for i := 0; i < leaves; i++ {
		d.Nodes = append(d.Nodes, graph.TaskNode{ID: i, Work: sortWork})
		level[i] = i
	}
	// Merge levels: pair adjacent runs until one remains.
	run := chunk
	for len(level) > 1 {
		next := make([]int, 0, len(level)/2)
		for i := 0; i < len(level); i += 2 {
			id := len(d.Nodes)
			d.Nodes = append(d.Nodes, graph.TaskNode{ID: id, Work: int64(kMergeScalar) * 2 * run})
			vol := run * 4 // int32 elements
			d.Edges = append(d.Edges, graph.TaskEdge{From: level[i], To: id, Volume: vol})
			d.Edges = append(d.Edges, graph.TaskEdge{From: level[i+1], To: id, Volume: vol})
			next = append(next, id)
		}
		level = next
		run *= 2
	}
	d.Normalize()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
