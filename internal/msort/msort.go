// Package msort implements the parallel sorting algorithms of Section 7.2
// of the MCTOP paper.
//
// ParallelSort is the topology-agnostic baseline (the structure of
// gnu_parallel::sort): split the array into per-thread chunks, quicksort
// them in parallel, then merge pairwise in parallel rounds. MCTOPSort takes
// the same first step but performs NUMA-aware merging: chunks are grouped
// by socket (following an MCTOP-PLACE placement), sockets first merge
// locally with all their threads cooperating, and the cross-socket rounds
// follow the bandwidth-maximizing reduction tree of internal/reduce, ending
// at the socket that must hold the result. MCTOPSortSSE swaps the scalar
// merge kernel for the branch-free 8-wide bitonic network (the paper's SSE
// variant) and gives the kernel-running contexts three times more data, as
// the paper does for the SIMD threads.
//
// On the host these run as real goroutines (the NUMA effects themselves are
// reproduced deterministically by the Figure 9 model in model.go).
package msort

import (
	"sort"
	"sync"

	"repro/internal/place"
	"repro/internal/reduce"
	"repro/internal/topo"
)

// quicksort sorts data in place: median-of-three pivots, insertion sort
// below 24 elements — the "standard sequential quicksort" of the paper's
// first phase.
func quicksort(a []int32) {
	for len(a) > 24 {
		m := medianOfThree(a)
		a[0], a[m] = a[m], a[0]
		pivot := a[0]
		i, j := 1, len(a)-1
		for {
			for i <= j && a[i] < pivot {
				i++
			}
			for i <= j && a[j] > pivot {
				j--
			}
			if i > j {
				break
			}
			a[i], a[j] = a[j], a[i]
			i++
			j--
		}
		a[0], a[j] = a[j], a[0]
		// Recurse on the smaller half, loop on the larger.
		if j < len(a)-j {
			quicksort(a[:j])
			a = a[j+1:]
		} else {
			quicksort(a[j+1:])
			a = a[:j]
		}
	}
	insertionSort(a)
}

func medianOfThree(a []int32) int {
	n := len(a)
	i, j, k := 0, n/2, n-1
	if a[i] > a[j] {
		i, j = j, i
	}
	if a[j] > a[k] {
		j = k
		if a[i] > a[j] {
			j = i
		}
	}
	return j
}

func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// rankSplit finds the merge-path split: indices (i, j) with i+j = k such
// that merging a[:i] and b[:j] yields the k smallest elements.
func rankSplit(a, b []int32, k int) (int, int) {
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		i := (lo + hi) / 2
		j := k - i
		if j > 0 && i < len(a) && b[j-1] > a[i] {
			lo = i + 1
		} else {
			hi = i
		}
	}
	return lo, k - lo
}

// mergeKernel is the sequential merge used inside parallel partitions.
type mergeKernel func(dst, a, b []int32)

// parallelMerge merges sorted a and b into dst using p workers with the
// given per-worker weights (nil = equal). Weighted partitions implement the
// paper's 3:1 data split between SIMD and scalar threads.
func parallelMerge(dst, a, b []int32, kernels []mergeKernel, weights []float64) {
	p := len(kernels)
	if p <= 1 || len(dst) < 4096 {
		k := mergeScalar
		if p >= 1 && kernels[0] != nil {
			k = kernels[0]
		}
		k(dst, a, b)
		return
	}
	total := len(dst)
	// Cumulative weighted boundaries.
	var wsum float64
	for i := 0; i < p; i++ {
		if weights == nil {
			wsum++
		} else {
			wsum += weights[i]
		}
	}
	bounds := make([]int, p+1)
	var acc float64
	for i := 0; i < p; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		acc += w
		bounds[i+1] = int(float64(total) * acc / wsum)
	}
	bounds[p] = total

	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		ai, aj := rankSplit(a, b, lo)
		bi, bj := rankSplit(a, b, hi)
		wg.Add(1)
		go func(w int, dst, pa, pb []int32) {
			defer wg.Done()
			kernels[w](dst, pa, pb)
		}(w, dst[lo:hi], a[ai:bi], b[aj:bj])
	}
	wg.Wait()
}

func scalarKernels(p int) []mergeKernel {
	ks := make([]mergeKernel, p)
	for i := range ks {
		ks[i] = mergeScalar
	}
	return ks
}

// ParallelSort is the topology-agnostic baseline: chunked parallel
// quicksort followed by pairwise parallel merge rounds.
func ParallelSort(data []int32, threads int) {
	if threads < 1 {
		threads = 1
	}
	if len(data) < 2 {
		return
	}
	chunks := splitChunks(data, threads)
	sortChunks(chunks)
	mergeRounds(data, chunks, threads, scalarKernels(threads), nil)
}

func splitChunks(data []int32, n int) [][]int32 {
	if n > len(data) {
		n = len(data)
	}
	chunks := make([][]int32, 0, n)
	for i := 0; i < n; i++ {
		lo := i * len(data) / n
		hi := (i + 1) * len(data) / n
		if lo < hi {
			chunks = append(chunks, data[lo:hi])
		}
	}
	return chunks
}

func sortChunks(chunks [][]int32) {
	var wg sync.WaitGroup
	for _, c := range chunks {
		wg.Add(1)
		go func(c []int32) {
			defer wg.Done()
			quicksort(c)
		}(c)
	}
	wg.Wait()
}

// mergeRounds repeatedly merges adjacent sorted runs until one remains,
// alternating between data and a scratch buffer.
func mergeRounds(data []int32, runs [][]int32, threads int, kernels []mergeKernel, weights []float64) {
	if len(runs) <= 1 {
		return
	}
	scratch := make([]int32, len(data))
	src := runs
	dstBuf := scratch
	srcIsData := true
	for len(src) > 1 {
		var next [][]int32
		off := 0
		for i := 0; i < len(src); i += 2 {
			if i+1 == len(src) {
				out := dstBuf[off : off+len(src[i])]
				copy(out, src[i])
				next = append(next, out)
				off += len(src[i])
				continue
			}
			n := len(src[i]) + len(src[i+1])
			out := dstBuf[off : off+n]
			parallelMerge(out, src[i], src[i+1], kernels, weights)
			next = append(next, out)
			off += n
		}
		src = next
		if srcIsData {
			dstBuf = data
		} else {
			dstBuf = scratch
		}
		srcIsData = !srcIsData
	}
	if !srcIsData {
		// The single run lives in scratch; move it home.
		copy(data, src[0])
	}
}

// MCTOPSort is the paper's mctop_sort: the same chunked quicksort first
// phase, but with threads spread across sockets (RR placement, to exploit
// every socket's LLC and memory bandwidth) and merging organized as
// socket-local merges followed by the cross-socket reduction tree, rooted
// at destSocket.
func MCTOPSort(data []int32, t *topo.Topology, threads, destSocket int) error {
	return mctopSort(data, t, threads, destSocket, false)
}

// MCTOPSortSSE is MCTOPSort with the bitonic 8-wide merge kernel on the
// first hardware context of each core and scalar merging on the rest; the
// kernel threads receive three times more data (Section 7.2).
func MCTOPSortSSE(data []int32, t *topo.Topology, threads, destSocket int) error {
	return mctopSort(data, t, threads, destSocket, true)
}

func mctopSort(data []int32, t *topo.Topology, threads, destSocket int, sse bool) error {
	if threads < 1 {
		threads = 1
	}
	if t.Socket(destSocket) == nil {
		destSocket = 0
	}
	pl, err := place.New(t, place.RRCore, place.Options{NThreads: threads})
	if err != nil {
		return err
	}
	ctxs := pl.Contexts()

	// Group thread slots by socket.
	bySocket := map[int][]int{}
	var socketOrder []int
	for _, c := range ctxs {
		s := t.Context(c).Socket.ID
		if _, ok := bySocket[s]; !ok {
			socketOrder = append(socketOrder, s)
		}
		bySocket[s] = append(bySocket[s], c)
	}
	hasDest := false
	for _, s := range socketOrder {
		if s == destSocket {
			hasDest = true
		}
	}
	if !hasDest {
		socketOrder = append(socketOrder, destSocket)
		bySocket[destSocket] = nil
	}

	// Phase 1: per-thread chunks, quicksorted in parallel (each socket gets
	// a share proportional to its thread count).
	chunks := splitChunks(data, len(ctxs))
	sortChunks(chunks)

	// Assign chunks to sockets in placement order.
	runsOf := map[int][][]int32{}
	for i, c := range ctxs {
		if i >= len(chunks) {
			break
		}
		s := t.Context(c).Socket.ID
		runsOf[s] = append(runsOf[s], chunks[i])
	}

	// Phase 2: socket-local merges — all threads of the socket cooperate on
	// each pairwise merge (parallelMerge partitions it).
	scratch := make([]int32, len(data))
	offsets := map[int]int{}
	off := 0
	for _, s := range socketOrder {
		offsets[s] = off
		for _, r := range runsOf[s] {
			off += len(r)
		}
	}
	var wg sync.WaitGroup
	merged := make(map[int][]int32)
	var mu sync.Mutex
	for _, s := range socketOrder {
		runs := runsOf[s]
		wg.Add(1)
		go func(s int, runs [][]int32) {
			defer wg.Done()
			out := localMerge(scratch[offsets[s]:], runs, kernelsFor(t, bySocket[s], sse))
			mu.Lock()
			merged[s] = out
			mu.Unlock()
		}(s, runs)
	}
	wg.Wait()

	// Phase 3: cross-socket reduction tree rooted at the destination.
	plan, err := reduce.Tree(t, socketOrder, destSocket)
	if err != nil {
		return err
	}
	for _, round := range plan.Rounds {
		var rwg sync.WaitGroup
		for _, st := range round {
			rwg.Add(1)
			go func(st reduce.Step) {
				defer rwg.Done()
				mu.Lock()
				a, b := merged[st.To], merged[st.From]
				mu.Unlock()
				if len(b) == 0 {
					return
				}
				if len(a) == 0 {
					mu.Lock()
					merged[st.To] = b
					merged[st.From] = nil
					mu.Unlock()
					return
				}
				// The pair's threads cooperate on the merge.
				workers := append(append([]int(nil), bySocket[st.To]...), bySocket[st.From]...)
				out := make([]int32, len(a)+len(b))
				parallelMerge(out, a, b, kernelsFor(t, workers, sse), weightsFor(t, workers, sse))
				mu.Lock()
				merged[st.To] = out
				merged[st.From] = nil
				mu.Unlock()
			}(st)
		}
		rwg.Wait()
	}
	copy(data, merged[destSocket])
	return nil
}

// localMerge merges a socket's runs pairwise into dst space and returns the
// final run.
func localMerge(dst []int32, runs [][]int32, kernels []mergeKernel) []int32 {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		out := dst[:len(runs[0])]
		copy(out, runs[0])
		return out
	}
	var n int
	for _, r := range runs {
		n += len(r)
	}
	cur := runs
	spare := make([]int32, n)
	target := dst[:n]
	for len(cur) > 1 {
		var next [][]int32
		off := 0
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				out := target[off : off+len(cur[i])]
				copy(out, cur[i])
				next = append(next, out)
				off += len(cur[i])
				continue
			}
			m := len(cur[i]) + len(cur[i+1])
			out := target[off : off+m]
			parallelMerge(out, cur[i], cur[i+1], kernels, nil)
			next = append(next, out)
			off += m
		}
		cur = next
		target, spare = spare, target
	}
	if &cur[0][0] != &dst[0] {
		copy(dst[:n], cur[0])
		return dst[:n]
	}
	return cur[0]
}

// kernelsFor builds one merge kernel per worker slot: with sse, the first
// hardware context of each core runs the bitonic kernel, the rest merge
// scalar (the paper's SMT division of labor).
func kernelsFor(t *topo.Topology, ctxs []int, sse bool) []mergeKernel {
	if len(ctxs) == 0 {
		return scalarKernels(1)
	}
	ks := make([]mergeKernel, len(ctxs))
	for i, c := range ctxs {
		if sse && isFirstOfCore(t, c) {
			ks[i] = mergeBitonic
		} else {
			ks[i] = mergeScalar
		}
	}
	return ks
}

// weightsFor gives bitonic-kernel workers 3x the data of scalar workers.
func weightsFor(t *topo.Topology, ctxs []int, sse bool) []float64 {
	if !sse || len(ctxs) == 0 {
		return nil
	}
	ws := make([]float64, len(ctxs))
	for i, c := range ctxs {
		if isFirstOfCore(t, c) {
			ws[i] = 3
		} else {
			ws[i] = 1
		}
	}
	return ws
}

func isFirstOfCore(t *topo.Topology, ctx int) bool {
	c := t.Context(ctx)
	if c == nil {
		return false
	}
	return c.Core.Contexts[0].ID == ctx
}

// SortedInt32 reports whether a slice is ascending (test helper exposed for
// the examples).
func SortedInt32(a []int32) bool {
	return sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] })
}
