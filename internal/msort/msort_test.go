package msort

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	topoOnce sync.Once
	ivyTopo  *topo.Topology
)

func ivy(t *testing.T) *topo.Topology {
	t.Helper()
	topoOnce.Do(func() {
		m, err := machine.NewSim(sim.Ivy(), 19)
		if err != nil {
			t.Fatal(err)
		}
		o := mctopalg.DefaultOptions()
		o.Reps = 51
		res, err := mctopalg.Infer(m, o)
		if err != nil {
			t.Fatal(err)
		}
		ivyTopo, err = plugins.Enrich(m, res.Topology, nil)
		if err != nil {
			t.Fatal(err)
		}
	})
	return ivyTopo
}

// equalInt32 compares contents, treating nil and empty as equal.
func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomData(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Int63())
	}
	return out
}

// sortedCopy is the reference result.
func sortedCopy(a []int32) []int32 {
	out := append([]int32(nil), a...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestQuicksortMatchesStdlib(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		data := randomData(int(n%5000)+1, seed)
		want := sortedCopy(data)
		quicksort(data)
		return equalInt32(data, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuicksortEdgeCases(t *testing.T) {
	cases := [][]int32{
		{},
		{1},
		{2, 1},
		{1, 1, 1, 1},
		{5, 4, 3, 2, 1},
		{1, 2, 3, 4, 5},
	}
	for _, c := range cases {
		want := sortedCopy(c)
		quicksort(c)
		if !equalInt32(c, want) {
			t.Errorf("quicksort(%v) = %v", want, c)
		}
	}
}

func TestMerge8Kernel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b [8]int32
		for i := range a {
			a[i] = int32(rng.Intn(1000))
			b[i] = int32(rng.Intn(1000))
		}
		sort.Slice(a[:], func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b[:], func(i, j int) bool { return b[i] < b[j] })
		lo, hi := merge8(a, b)
		got := append(lo[:], hi[:]...)
		want := sortedCopy(append(a[:], b[:]...))
		return equalInt32(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeBitonicEquivalence(t *testing.T) {
	f := func(seed int64, na, nb uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]int32, int(na%600))
		b := make([]int32, int(nb%600))
		for i := range a {
			a[i] = int32(rng.Intn(5000))
		}
		for i := range b {
			b[i] = int32(rng.Intn(5000))
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		got := make([]int32, len(a)+len(b))
		mergeBitonic(got, a, b)
		want := make([]int32, len(a)+len(b))
		mergeScalar(want, a, b)
		return equalInt32(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRankSplit(t *testing.T) {
	a := []int32{1, 3, 5, 7}
	b := []int32{2, 4, 6, 8}
	for k := 0; k <= 8; k++ {
		i, j := rankSplit(a, b, k)
		if i+j != k {
			t.Fatalf("k=%d: i+j = %d", k, i+j)
		}
		// Merging prefixes yields exactly the k smallest elements.
		merged := sortedCopy(append(append([]int32(nil), a[:i]...), b[:j]...))
		all := sortedCopy(append(append([]int32(nil), a...), b...))
		if !equalInt32(merged, all[:k]) {
			t.Errorf("k=%d: prefix %v, want %v", k, merged, all[:k])
		}
	}
}

func TestParallelSort(t *testing.T) {
	for _, threads := range []int{1, 2, 7, 16} {
		data := randomData(100_000, int64(threads))
		want := sortedCopy(data)
		ParallelSort(data, threads)
		if !equalInt32(data, want) {
			t.Fatalf("ParallelSort with %d threads broken", threads)
		}
	}
}

func TestMCTOPSort(t *testing.T) {
	tp := ivy(t)
	for _, threads := range []int{1, 4, 16, 40} {
		data := randomData(120_000, int64(threads)+100)
		want := sortedCopy(data)
		if err := MCTOPSort(data, tp, threads, 0); err != nil {
			t.Fatal(err)
		}
		if !equalInt32(data, want) {
			t.Fatalf("MCTOPSort with %d threads broken", threads)
		}
	}
}

func TestMCTOPSortSSE(t *testing.T) {
	tp := ivy(t)
	for _, threads := range []int{2, 8, 24} {
		data := randomData(150_000, int64(threads)+200)
		want := sortedCopy(data)
		if err := MCTOPSortSSE(data, tp, threads, 1); err != nil {
			t.Fatal(err)
		}
		if !equalInt32(data, want) {
			t.Fatalf("MCTOPSortSSE with %d threads broken", threads)
		}
	}
}

func TestMCTOPSortProperty(t *testing.T) {
	tp := ivy(t)
	f := func(seed int64, n uint16, threads uint8) bool {
		size := int(n%20000) + 1
		th := int(threads%12) + 1
		data := randomData(size, seed)
		want := sortedCopy(data)
		if err := MCTOPSort(data, tp, th, 0); err != nil {
			return false
		}
		return equalInt32(data, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortedInt32(t *testing.T) {
	if !SortedInt32([]int32{1, 2, 2, 3}) {
		t.Error("sorted slice reported unsorted")
	}
	if SortedInt32([]int32{2, 1}) {
		t.Error("unsorted slice reported sorted")
	}
}

// TestFig9Shape validates the paper's claims on the model: mctop_sort beats
// gnu on every platform, the sequential parts are comparable, the gains
// come from merging, mctop_sort_sse is at least as fast as mctop_sort, and
// the baseline's disadvantage is larger at 16 threads.
func TestFig9Shape(t *testing.T) {
	tp := ivy(t)
	for _, threads := range []int{16, 40} {
		gnu, err := ModelFig9(tp, VariantGNU, threads)
		if err != nil {
			t.Fatal(err)
		}
		mct, err := ModelFig9(tp, VariantMCTOP, threads)
		if err != nil {
			t.Fatal(err)
		}
		sse, err := ModelFig9(tp, VariantMCTOPSSE, threads)
		if err != nil {
			t.Fatal(err)
		}
		if mct.TotalSec() >= gnu.TotalSec() {
			t.Errorf("%d threads: mctop %.2fs >= gnu %.2fs", threads, mct.TotalSec(), gnu.TotalSec())
		}
		if sse.TotalSec() > mct.TotalSec()*1.001 {
			t.Errorf("%d threads: sse %.2fs > mctop %.2fs", threads, sse.TotalSec(), mct.TotalSec())
		}
		if mct.MergeSec >= gnu.MergeSec {
			t.Errorf("%d threads: merge not improved: %.2f vs %.2f", threads, mct.MergeSec, gnu.MergeSec)
		}
		// Sequential parts comparable (the first step is the same code).
		ratio := mct.SeqSec / gnu.SeqSec
		if ratio < 0.6 || ratio > 1.1 {
			t.Errorf("%d threads: seq ratio = %.2f, want comparable", threads, ratio)
		}
	}
	// The paper: benefits are larger with 16 threads than full machine.
	gnu16, _ := ModelFig9(tp, VariantGNU, 16)
	mct16, _ := ModelFig9(tp, VariantMCTOP, 16)
	gnuFull, _ := ModelFig9(tp, VariantGNU, 40)
	mctFull, _ := ModelFig9(tp, VariantMCTOP, 40)
	gain16 := gnu16.TotalSec() / mct16.TotalSec()
	gainFull := gnuFull.TotalSec() / mctFull.TotalSec()
	if gain16 <= gainFull {
		t.Errorf("gain at 16 threads (%.3f) should exceed full machine (%.3f)", gain16, gainFull)
	}
}

func TestModelValidation(t *testing.T) {
	tp := ivy(t)
	if _, err := ModelFig9(tp, VariantGNU, 0); err == nil {
		t.Error("zero threads should fail")
	}
	if _, err := ModelFig9(tp, VariantGNU, 10_000); err == nil {
		t.Error("too many threads should fail")
	}
}
