package msort

// Exported kernel entry points for the root package's ablation benchmarks
// (the kernels themselves are implementation details of the sort).

// MergeScalarForBench runs the scalar two-finger merge.
func MergeScalarForBench(dst, a, b []int32) { mergeScalar(dst, a, b) }

// MergeBitonicForBench runs the branch-free 8-wide bitonic merge.
func MergeBitonicForBench(dst, a, b []int32) { mergeBitonic(dst, a, b) }
