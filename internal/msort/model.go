package msort

import (
	"fmt"
	"math"

	"repro/internal/place"
	"repro/internal/reduce"
	"repro/internal/topo"
)

// Figure 9 model: sorting 1 GB of int32 on each platform, 16 threads and
// full machine, broken into the sequential part and the merging part.
//
// Merging two sorted runs with comparisons is latency/branch bound — "the
// aggressive out-of-order cores are not able to predict the direction of
// the merge branch" — so the per-element merge cost dominates until enough
// threads make memory bandwidth the limit. The model captures: chunked
// quicksort cost, per-round merge cost (branchy scalar vs branch-free
// bitonic kernel with the 3:1 SMT split), per-socket memory streaming with
// node contention, the cross-socket reduction tree, and the baseline's
// unpinned-thread penalty (the OS placement variance the paper observes for
// gnu_parallel::sort).

// Variant selects the Figure 9 algorithm.
type Variant int

const (
	// VariantGNU is the topology-agnostic gnu_parallel::sort baseline.
	VariantGNU Variant = iota
	// VariantMCTOP is mctop_sort.
	VariantMCTOP
	// VariantMCTOPSSE is mctop_sort_sse (bitonic kernel).
	VariantMCTOPSSE
)

func (v Variant) String() string {
	switch v {
	case VariantGNU:
		return "gnu"
	case VariantMCTOP:
		return "mctop"
	case VariantMCTOPSSE:
		return "mctop_sse"
	}
	return "Variant(?)"
}

// Model constants (cycles per element, calibrated to the paper's absolute
// times on Ivy and scaled everywhere else by the machine's own numbers).
const (
	modelElems     = 268_435_456 // 1 GB of int32
	kSort          = 9.0         // quicksort cycles per element per log2 level
	kMergeScalar   = 24.0        // branchy two-finger merge, per element per round
	kMergeBitonic  = 9.0         // branch-free 8-wide kernel with 3:1 SMT split
	smtSort        = 0.45        // SMT friendliness of the quicksort phase
	smtMerge       = 0.35        // merge is pipeline-hungry
	unpinnedComp   = 0.82        // OS-scheduled threads lose compute to migrations
	unpinnedMem    = 0.70        // and locality
	unpinnedComp16 = 0.74        // fewer threads -> more room for bad placements
	unpinnedMem16  = 0.60
)

// Fig9Row is one bar group of Figure 9.
type Fig9Row struct {
	Platform string
	Variant  Variant
	Threads  int
	SeqSec   float64
	MergeSec float64
}

// TotalSec is the bar height.
func (r Fig9Row) TotalSec() float64 { return r.SeqSec + r.MergeSec }

// ModelFig9 predicts one Figure 9 bar.
func ModelFig9(t *topo.Topology, v Variant, threads int) (Fig9Row, error) {
	if threads < 1 || threads > t.NumHWContexts() {
		return Fig9Row{}, fmt.Errorf("msort: %d threads out of range", threads)
	}
	freq := t.FreqGHz()
	if freq <= 0 {
		freq = 2.0
	}
	row := Fig9Row{Platform: t.Name(), Variant: v, Threads: threads}

	// Placement: the MCTOP variants spread round-robin (RR policy, to use
	// every socket's LLC and memory channels); the baseline is whatever the
	// OS does — modeled as sequential numbering plus the unpinned penalty.
	var ctxs []int
	var err error
	if v == VariantGNU {
		ctxs = firstN(threads)
	} else {
		var pl *place.Placement
		pl, err = place.New(t, place.RRCore, place.Options{NThreads: threads})
		if err != nil {
			return Fig9Row{}, err
		}
		ctxs = pl.Contexts()
	}
	compPenalty, memPenalty := 1.0, 1.0
	if v == VariantGNU {
		if threads <= 16 {
			compPenalty, memPenalty = unpinnedComp16, unpinnedMem16
		} else {
			compPenalty, memPenalty = unpinnedComp, unpinnedMem
		}
	}

	eff := effectiveCores(t, ctxs, smtSort) * compPenalty

	// Sequential part: quicksort of per-thread chunks.
	chunk := float64(modelElems) / float64(len(ctxs))
	sortCycles := float64(modelElems) * kSort * math.Log2(chunk) / eff
	row.SeqSec = sortCycles / (freq * 1e9)

	// Merging part.
	kMerge := kMergeScalar
	if v == VariantMCTOPSSE {
		kMerge = kMergeBitonic
	}
	effM := effectiveCores(t, ctxs, smtMerge) * compPenalty
	bytes := float64(modelElems) * 4

	var mergeSec float64
	if v == VariantGNU {
		// log2(chunks) pairwise rounds, all data rooted at node 0, threads
		// wherever the OS put them.
		rounds := math.Ceil(math.Log2(float64(len(ctxs))))
		perRoundComp := float64(modelElems) * kMerge / effM
		// Streaming: reads spread over the machine (penalized), writes
		// contend on node 0.
		agg := aggregateLocalBW(t) * memPenalty
		node0 := localBW(t, 0)
		perRoundMemSec := bytes/1e9/agg + bytes/1e9/node0
		perRoundSec := math.Max(perRoundComp/(freq*1e9), perRoundMemSec)
		mergeSec = rounds * perRoundSec
	} else {
		// Socket-local rounds: each socket merges its chunks locally.
		perSocket := socketShares(t, ctxs)
		var localSec float64
		for s, share := range perSocket {
			if share == 0 {
				continue
			}
			chunks := float64(share)
			rounds := math.Ceil(math.Log2(chunks))
			if rounds < 1 {
				rounds = 1
			}
			b := bytes * chunks / float64(len(ctxs))
			comp := b / 4 * kMerge / (effectiveCores(t, ctxsOn(t, ctxs, s), smtMerge) * 1)
			mem := 2 * b / 1e9 / localBW(t, s)
			sec := rounds * math.Max(comp/(freq*1e9), mem)
			if sec > localSec {
				localSec = sec // sockets merge in parallel
			}
		}
		// Cross-socket reduction tree rooted at socket 0.
		var sockets []int
		for s, share := range perSocket {
			if share > 0 {
				sockets = append(sockets, s)
			}
		}
		dest := 0
		if !contains(sockets, 0) {
			sockets = append(sockets, 0)
		}
		treeSec := 0.0
		if len(sockets) > 1 {
			plan, perr := reduce.Tree(t, sockets, dest)
			if perr != nil {
				return Fig9Row{}, perr
			}
			treeCycles := reduce.Cost(t, plan, int64(bytes)/int64(len(sockets)))
			// The tree streams data; merging it costs compute too.
			treeComp := bytes / 4 * kMerge * math.Log2(float64(len(sockets))) / effM
			treeSec = math.Max(float64(treeCycles), treeComp) / (freq * 1e9)
		}
		mergeSec = localSec + treeSec
	}
	row.MergeSec = mergeSec
	return row, nil
}

func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func effectiveCores(t *topo.Topology, ctxs []int, smtFriendly float64) float64 {
	perCore := map[*topo.HWCGroup]int{}
	for _, c := range ctxs {
		if hc := t.Context(c); hc != nil {
			perCore[hc.Core]++
		}
	}
	var eff float64
	for _, n := range perCore {
		eff += 1 + smtFriendly*float64(n-1)
	}
	if eff == 0 {
		eff = 1
	}
	return eff
}

func socketShares(t *topo.Topology, ctxs []int) map[int]int {
	out := map[int]int{}
	for _, c := range ctxs {
		if hc := t.Context(c); hc != nil {
			out[hc.Socket.ID]++
		}
	}
	return out
}

func ctxsOn(t *topo.Topology, ctxs []int, socket int) []int {
	var out []int
	for _, c := range ctxs {
		if hc := t.Context(c); hc != nil && hc.Socket.ID == socket {
			out = append(out, c)
		}
	}
	return out
}

func localBW(t *topo.Topology, socket int) float64 {
	s := t.Socket(socket)
	if s == nil || s.MemBW == nil {
		return 8
	}
	return s.MemBW[s.Local.ID]
}

func aggregateLocalBW(t *topo.Topology) float64 {
	var sum float64
	for _, s := range t.Sockets() {
		if s.MemBW != nil {
			sum += s.MemBW[s.Local.ID]
		} else {
			sum += 8
		}
	}
	return sum
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
