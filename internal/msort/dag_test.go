package msort

import "testing"

func TestExportDAGMergeTree(t *testing.T) {
	tp := ivy(t)
	for _, leaves := range []int{2, 8, 16} {
		d, err := ExportDAG(tp, leaves)
		if err != nil {
			t.Fatal(err)
		}
		if want := 2*leaves - 1; len(d.Nodes) != want {
			t.Fatalf("leaves=%d: %d nodes, want %d", leaves, len(d.Nodes), want)
		}
		if want := 2 * (leaves - 1); len(d.Edges) != want {
			t.Fatalf("leaves=%d: %d edges, want %d", leaves, len(d.Edges), want)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		d2, _ := ExportDAG(tp, leaves)
		if d.Hash() != d2.Hash() {
			t.Fatalf("leaves=%d: export not deterministic", leaves)
		}
	}
	for _, bad := range []int{0, 1, 3, 128} {
		if _, err := ExportDAG(tp, bad); err == nil {
			t.Errorf("leaves=%d: accepted invalid leaf count", bad)
		}
	}
}
