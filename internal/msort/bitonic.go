package msort

// Bitonic 8-wide merge kernel — the SIMD stand-in of Section 7.2.
//
// The paper's mctop_sort_sse merges with 128-bit SSE instructions arranged
// as a bitonic merge network over 8 elements at a time (after Chhugani et
// al.). Go has no portable intrinsics, so this file implements the exact
// same network on [8]int32 vectors with branch-free min/max — the compiler
// can keep the lanes in registers, and the merge loop structure (load 8,
// bitonic-merge 16, emit low half, carry high half) is identical to the
// SIMD original.

// minMax is a branch-free compare-exchange.
func minMax(a, b int32) (int32, int32) {
	if a > b {
		return b, a
	}
	return a, b
}

// bitonicClean8 sorts a bitonic 8-sequence in place (distances 4, 2, 1).
func bitonicClean8(v *[8]int32) {
	for _, d := range [...]int{4, 2, 1} {
		for i := 0; i < 8; i++ {
			if i%(2*d) < d {
				v[i], v[i+d] = minMax(v[i], v[i+d])
			}
		}
	}
}

// merge8 merges two ascending 8-element vectors into an ascending
// 16-element result, returned as (low half, high half).
func merge8(a, b [8]int32) (lo, hi [8]int32) {
	// Concatenating a with reversed b yields a bitonic 16-sequence; the
	// first butterfly (distance 8) splits it into two bitonic halves with
	// max(lo) <= min(hi); the cleanup networks sort each half.
	for i := 0; i < 8; i++ {
		lo[i], hi[i] = minMax(a[i], b[7-i])
	}
	bitonicClean8(&lo)
	bitonicClean8(&hi)
	return lo, hi
}

// mergeBitonic merges sorted a and b into dst (len(dst) = len(a)+len(b))
// using the 8-wide kernel for the bulk and a scalar drain for the tails.
func mergeBitonic(dst, a, b []int32) {
	out := 0
	ai, bi := 0, 0
	if len(a) >= 8 && len(b) >= 8 {
		var carry [8]int32
		copy(carry[:], a[:8])
		ai = 8
		for ai+8 <= len(a) && bi+8 <= len(b) {
			var next [8]int32
			// Take the block whose next head is smaller; ties prefer a.
			if a[ai] <= b[bi] {
				copy(next[:], a[ai:ai+8])
				ai += 8
			} else {
				copy(next[:], b[bi:bi+8])
				bi += 8
			}
			lo, hi := merge8(carry, next)
			copy(dst[out:], lo[:])
			out += 8
			carry = hi
		}
		// The carry holds 8 sorted elements that must still be merged with
		// both tails; fold it back as a virtual head of the shorter rest.
		rest := make([]int32, 0, 8+len(a)-ai+len(b)-bi)
		rest = append(rest, carry[:]...)
		rest = append(rest, a[ai:]...)
		// carry and a[ai:] are NOT mutually sorted in general; merge them
		// scalar first (both are individually sorted).
		tmp := make([]int32, len(rest))
		mergeScalar(tmp, carry[:], a[ai:])
		mergeScalar(dst[out:], tmp, b[bi:])
		return
	}
	mergeScalar(dst[out:], a[ai:], b[bi:])
}

// mergeScalar is the classic two-finger merge.
func mergeScalar(dst, a, b []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}
