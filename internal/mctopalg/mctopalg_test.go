package mctopalg

import (
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// testOptions returns inference options with fewer repetitions than the
// paper's n=2000 so the whole platform matrix stays fast; the medians are
// equally stable because the simulator's jitter is small and symmetric.
func testOptions() Options {
	o := DefaultOptions()
	o.Reps = 51
	return o
}

// checkAgainstGroundTruth verifies an inferred topology against the
// simulator's ground-truth platform: dimensions, SMT, the same-core and
// same-socket relations of every context pair, socket latencies, and the
// socket-to-node mapping.
func checkAgainstGroundTruth(t *testing.T, p *sim.Platform, top *topo.Topology) {
	t.Helper()
	if top.NumHWContexts() != p.NumContexts() {
		t.Fatalf("%s: contexts = %d, want %d", p.Name, top.NumHWContexts(), p.NumContexts())
	}
	if top.NumSockets() != p.Sockets {
		t.Fatalf("%s: sockets = %d, want %d", p.Name, top.NumSockets(), p.Sockets)
	}
	if top.NumCores() != p.NumCores() {
		t.Errorf("%s: cores = %d, want %d", p.Name, top.NumCores(), p.NumCores())
	}
	if top.SMTWays() != p.SMT {
		t.Errorf("%s: SMT ways = %d, want %d", p.Name, top.SMTWays(), p.SMT)
	}
	n := p.NumContexts()
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			wantCore := p.CoreOf(x) == p.CoreOf(y)
			gotCore := top.Context(x).Core == top.Context(y).Core
			if wantCore != gotCore {
				t.Fatalf("%s: core relation of (%d,%d): got %v, want %v", p.Name, x, y, gotCore, wantCore)
			}
			wantSock := p.SocketOf(x) == p.SocketOf(y)
			gotSock := top.Context(x).Socket == top.Context(y).Socket
			if wantSock != gotSock {
				t.Fatalf("%s: socket relation of (%d,%d): got %v, want %v", p.Name, x, y, gotSock, wantSock)
			}
		}
	}
	// Socket latencies: compare through representative contexts, allowing
	// the clustering's small normalization shift.
	for s1 := 0; s1 < p.Sockets; s1++ {
		for s2 := s1 + 1; s2 < p.Sockets; s2++ {
			x := p.ContextOf(s1*p.Cores, 0)
			y := p.ContextOf(s2*p.Cores, 0)
			want := p.SocketLatency(s1, s2)
			got := top.GetLatency(x, y)
			if d := got - want; d < -12 || d > 12 {
				t.Errorf("%s: socket latency (%d,%d) = %d, want ~%d", p.Name, s1, s2, got, want)
			}
		}
	}
	// Node mapping: MCTOP must infer the hardware truth (not the OS view).
	for s := 0; s < p.Sockets; s++ {
		x := p.ContextOf(s*p.Cores, 0)
		want := p.LocalNode(s)
		if got := top.GetLocalNode(x); got == nil || got.ID != want {
			t.Errorf("%s: local node of socket %d inferred as %v, want %d", p.Name, s, got, want)
		}
	}
}

func TestInferAllPlatforms(t *testing.T) {
	for _, p := range sim.Platforms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m, err := machine.NewSim(p, 42)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Infer(m, testOptions())
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstGroundTruth(t, p, res.Topology)
		})
	}
}

// TestIvyPipelineStages walks the four steps of Figure 6 on Ivy: a 40x40
// table, exactly 3 latency clusters (~28 / ~112 / ~308), a normalized
// table using only cluster medians, and SMT detection.
func TestIvyPipelineStages(t *testing.T) {
	m, _ := machine.NewSim(sim.Ivy(), 7)
	res, err := Infer(m, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RawTable) != 40 {
		t.Fatalf("raw table is %dx?", len(res.RawTable))
	}
	if res.Pairs != 40*39/2 {
		t.Errorf("measured %d pairs, want %d", res.Pairs, 40*39/2)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %v, want 3 levels", res.Clusters)
	}
	if c := res.Clusters[0].Median; c < 26 || c > 30 {
		t.Errorf("SMT cluster median = %d, want ~28", c)
	}
	if c := res.Clusters[1].Median; c < 104 || c > 120 {
		t.Errorf("intra cluster median = %d, want ~112", c)
	}
	if c := res.Clusters[2].Median; c < 300 || c > 316 {
		t.Errorf("cross cluster median = %d, want ~308", c)
	}
	if !res.SMT || res.SMTWays != 2 {
		t.Errorf("SMT = %v/%d, want true/2", res.SMT, res.SMTWays)
	}
	// The raw table must show the heat-map structure: ctx 0 vs 20 in the
	// SMT cluster, 0 vs 1 intra, 0 vs 10 cross.
	if v := res.RawTable[0][20]; !res.Clusters[0].Contains(v) {
		t.Errorf("raw[0][20] = %d not in SMT cluster", v)
	}
	if v := res.RawTable[0][1]; !res.Clusters[1].Contains(v) {
		t.Errorf("raw[0][1] = %d not in intra cluster", v)
	}
	if v := res.RawTable[0][10]; !res.Clusters[2].Contains(v) {
		t.Errorf("raw[0][10] = %d not in cross cluster", v)
	}
	// Normalized table symmetric and quantized to medians.
	medians := map[int64]bool{0: true}
	for _, c := range res.Clusters {
		medians[c.Median] = true
	}
	for i := range res.NormTable {
		for j := range res.NormTable[i] {
			if res.NormTable[i][j] != res.NormTable[j][i] {
				t.Fatalf("normalized table asymmetric at (%d,%d)", i, j)
			}
			if !medians[res.NormTable[i][j]] {
				t.Fatalf("normalized[%d][%d] = %d is not a cluster median", i, j, res.NormTable[i][j])
			}
		}
	}
	// Two grouping levels: cores then sockets.
	if len(res.LevelGroups) != 2 {
		t.Fatalf("grouping levels = %d, want 2", len(res.LevelGroups))
	}
	if len(res.LevelGroups[0]) != 20 || len(res.LevelGroups[0][0]) != 2 {
		t.Errorf("core level: %d groups of %d", len(res.LevelGroups[0]), len(res.LevelGroups[0][0]))
	}
	if len(res.LevelGroups[1]) != 2 || len(res.LevelGroups[1][0]) != 20 {
		t.Errorf("socket level: %d groups of %d", len(res.LevelGroups[1]), len(res.LevelGroups[1][0]))
	}
	if res.RdtscOverhead < 20 || res.RdtscOverhead > 30 {
		t.Errorf("rdtsc overhead estimate = %d, want ~24", res.RdtscOverhead)
	}
	if res.Cycles <= 0 {
		t.Error("no cycle accounting")
	}
}

// TestOpteronLevels: the Opteron must expose three cross-socket levels
// (197 / 217 / 300 cycles — Figure 1b) and no SMT.
func TestOpteronLevels(t *testing.T) {
	m, _ := machine.NewSim(sim.Opteron(), 11)
	res, err := Infer(m, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SMT {
		t.Error("Opteron must not report SMT")
	}
	if len(res.Clusters) != 4 {
		t.Fatalf("clusters = %v, want 4 (117/197/217/300)", res.Clusters)
	}
	wantMedians := []int64{117, 197, 217, 300}
	for i, w := range wantMedians {
		if d := res.Clusters[i].Median - w; d < -4 || d > 4 {
			t.Errorf("cluster %d median = %d, want ~%d", i, res.Clusters[i].Median, w)
		}
	}
	levels := res.Topology.Levels()
	if len(levels) != 4 {
		t.Fatalf("topology levels = %d", len(levels))
	}
	if levels[0].Kind != topo.LevelSocket {
		t.Errorf("first level kind = %v, want socket", levels[0].Kind)
	}
	for _, l := range levels[1:] {
		if l.Kind != topo.LevelCross {
			t.Errorf("level %q kind = %v, want cross", l.Name, l.Kind)
		}
	}
}

// TestOpteronNodeMappingBeatsOS reproduces footnote 1: the OS's node
// mapping is wrong, MCTOP-ALG infers the truth, and the OS comparison
// check reports the divergence.
func TestOpteronNodeMappingBeatsOS(t *testing.T) {
	p := sim.Opteron()
	m, _ := machine.NewSim(p, 13)
	res, err := Infer(m, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < p.Sockets; s++ {
		ctx := p.ContextOf(s*p.Cores, 0)
		inferred := res.Topology.GetLocalNode(ctx).ID
		if inferred != p.LocalNode(s) {
			t.Errorf("socket %d: inferred node %d, truth %d", s, inferred, p.LocalNode(s))
		}
		if inferred == p.OSLocalNode(s) {
			t.Errorf("socket %d: inference matches the (wrong) OS view", s)
		}
	}
	v := m.OSView()
	diffs := res.Topology.CompareOS(v.CoreOfCtx, v.SocketOfCtx, v.NodeOfSocket)
	if len(diffs) == 0 {
		t.Fatal("OS comparison should flag the node mapping")
	}
	// On Ivy the OS agrees completely.
	mi, _ := machine.NewSim(sim.Ivy(), 13)
	ri, err := Infer(mi, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	vi := mi.OSView()
	if diffs := ri.Topology.CompareOS(vi.CoreOfCtx, vi.SocketOfCtx, vi.NodeOfSocket); len(diffs) != 0 {
		t.Errorf("Ivy OS comparison should agree, got %v", diffs)
	}
}

// TestWestmereLevel4: 8 sockets, direct links at ~341 and a two-hop "lvl 4"
// at ~458 (Figure 2b); local node of socket 0 is node 4 (Figure 2a).
func TestWestmereLevel4(t *testing.T) {
	p := sim.Westmere()
	m, _ := machine.NewSim(p, 17)
	res, err := Infer(m, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 4 {
		t.Fatalf("clusters = %v, want 4 (28/116/341/458)", res.Clusters)
	}
	if d := res.Clusters[2].Median - 341; d < -4 || d > 4 {
		t.Errorf("direct cross median = %d", res.Clusters[2].Median)
	}
	if d := res.Clusters[3].Median - 458; d < -4 || d > 4 {
		t.Errorf("two-hop median = %d", res.Clusters[3].Median)
	}
	// Socket containing context 0 must be local to node 4.
	if n := res.Topology.GetLocalNode(0); n.ID != 4 {
		t.Errorf("local node of ctx 0 = %d, want 4", n.ID)
	}
}

// TestInferDeterminism: same machine seed, same inferred spec.
func TestInferDeterminism(t *testing.T) {
	run := func() *topo.Topology {
		m, _ := machine.NewSim(sim.Ivy(), 23)
		res, err := Infer(m, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.Topology
	}
	a, b := run(), run()
	for x := 0; x < 40; x++ {
		for y := 0; y < 40; y++ {
			if a.GetLatency(x, y) != b.GetLatency(x, y) {
				t.Fatalf("non-deterministic latency at (%d,%d)", x, y)
			}
		}
	}
}

// TestInferCustomShapes: property-style sweep over synthetic machines with
// random socket/core/SMT shapes and latency scales — the inferred topology
// must always match the ground truth.
func TestInferCustomShapes(t *testing.T) {
	shapes := []struct {
		sockets, cores, smt int
		scale               int64
		numbering           sim.Numbering
	}{
		{1, 4, 2, 1, sim.NumberingIntelHalves},
		{1, 8, 1, 2, sim.NumberingConsecutive},
		{2, 2, 2, 1, sim.NumberingConsecutive},
		{2, 6, 1, 3, sim.NumberingConsecutive},
		{3, 4, 4, 1, sim.NumberingConsecutive},
		{4, 2, 2, 2, sim.NumberingIntelHalves},
		{4, 6, 1, 1, sim.NumberingConsecutive},
		{2, 10, 2, 1, sim.NumberingIntelHalves},
	}
	for i, sh := range shapes {
		p := sim.Custom("custom", sh.sockets, sh.cores, sh.smt, sh.scale, sh.numbering)
		m, err := machine.NewSim(p, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Infer(m, testOptions())
		if err != nil {
			t.Fatalf("shape %+v: %v", sh, err)
		}
		checkAgainstGroundTruth(t, p, res.Topology)
	}
}

// TestInferRejectsHeavyNoise: with absurd noise the symmetry validation
// must fail with ErrClustering instead of returning a wrong topology
// (Section 3.6, "unsuccessful clustering of latency values").
func TestInferRejectsHeavyNoise(t *testing.T) {
	p := sim.Ivy()
	p.DVFS = false
	p.NoiseAmp = 120 // jitter comparable to the level separations
	p.SpuriousRate = 0.30
	p.SpuriousAmp = 400
	m, _ := machine.NewSim(p, 3)
	o := testOptions()
	o.Reps = 7
	o.MaxRetries = 1
	_, err := Infer(m, o)
	if err == nil {
		t.Fatal("expected inference to fail under heavy noise")
	}
	if !errors.Is(err, ErrClustering) {
		t.Errorf("error should wrap ErrClustering, got %v", err)
	}
}

// TestRetryOnUnstableMeasurements: moderate spurious noise triggers the
// stdev-based retry logic but still converges to the right topology.
func TestRetryOnUnstableMeasurements(t *testing.T) {
	p := sim.Ivy()
	p.DVFS = false
	p.SpuriousRate = 0.08
	p.SpuriousAmp = 2500
	m, _ := machine.NewSim(p, 31)
	o := testOptions()
	o.Reps = 41
	res, err := Infer(m, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Error("expected at least one stdev-triggered retry")
	}
	checkAgainstGroundTruth(t, p, res.Topology)
}

func TestInferTooFewContexts(t *testing.T) {
	p := sim.Custom("tiny", 1, 1, 1, 1, sim.NumberingConsecutive)
	m, err := machine.NewSim(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Infer(m, testOptions()); err == nil {
		t.Error("expected error for a single-context machine")
	}
}

// TestSpecRoundTripAfterInference: an inferred topology survives the
// description-file round trip.
func TestSpecRoundTripAfterInference(t *testing.T) {
	m, _ := machine.NewSim(sim.Haswell(), 5)
	res, err := Infer(m, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	spec := res.Topology.Spec()
	rebuilt, err := topo.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumSockets() != 4 || rebuilt.NumCores() != 48 {
		t.Error("rebuilt topology differs")
	}
}

// TestInferenceCostOrdering: simulated inference cycles must grow with
// machine size and DVFS (Section 3.5: Ivy ~3 s, Westmere 96 s).
func TestInferenceCostOrdering(t *testing.T) {
	cost := func(p *sim.Platform) float64 {
		m, _ := machine.NewSim(p, 1)
		o := testOptions()
		o.Reps = 9
		res, err := Infer(m, o)
		if err != nil {
			t.Fatal(err)
		}
		return m.S.SimulatedSeconds(res.Cycles)
	}
	ivy := cost(sim.Ivy())
	wes := cost(sim.Westmere())
	if !(ivy < wes) {
		t.Errorf("inference cost: Ivy %.2f s should be below Westmere %.2f s", ivy, wes)
	}
}
