package mctopalg

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// encodeTopo serializes a topology to its description-file bytes — the
// strongest equality the format offers.
func encodeTopo(t *testing.T, top *topo.Topology) []byte {
	t.Helper()
	var buf bytes.Buffer
	spec := top.Spec()
	if err := topo.Encode(&buf, &spec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func inferWithParallelism(t *testing.T, p *sim.Platform, seed uint64, par int) *Result {
	t.Helper()
	m, err := machine.NewSim(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Parallelism = par
	res, err := Infer(m, opt)
	if err != nil {
		t.Fatalf("%s (parallelism %d): %v", p.Name, par, err)
	}
	return res
}

// TestParallelEqualsSequential is the determinism contract of the forked
// measurement phase: for a fixed seed, the raw latency table and the
// serialized topology must be byte-identical whether pairs are measured by
// one worker or many.
func TestParallelEqualsSequential(t *testing.T) {
	for _, p := range sim.Platforms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			seq := inferWithParallelism(t, p, 42, 1)
			par := inferWithParallelism(t, p, 42, 8)

			if !reflect.DeepEqual(seq.RawTable, par.RawTable) {
				t.Fatal("raw latency tables differ between sequential and parallel measurement")
			}
			if !reflect.DeepEqual(seq.Clusters, par.Clusters) {
				t.Fatalf("clusters differ: %v vs %v", seq.Clusters, par.Clusters)
			}
			if seq.Retries != par.Retries || seq.Cycles != par.Cycles {
				t.Errorf("bookkeeping differs: retries %d/%d, cycles %d/%d",
					seq.Retries, par.Retries, seq.Cycles, par.Cycles)
			}
			sb := encodeTopo(t, seq.Topology)
			pb := encodeTopo(t, par.Topology)
			if !bytes.Equal(sb, pb) {
				t.Fatal("serialized topologies differ between sequential and parallel inference")
			}
		})
	}
}

// TestParallelismInvariantAcrossWidths checks a range of pool widths,
// including widths larger than the pair count, on the smallest platform.
func TestParallelismInvariantAcrossWidths(t *testing.T) {
	p, err := sim.ByName("Ivy")
	if err != nil {
		t.Fatal(err)
	}
	ref := encodeTopo(t, inferWithParallelism(t, p, 7, 1).Topology)
	for _, par := range []int{2, 3, 16, 4096} {
		got := encodeTopo(t, inferWithParallelism(t, p, 7, par).Topology)
		if !bytes.Equal(ref, got) {
			t.Fatalf("parallelism %d changed the inferred topology", par)
		}
	}
}

// failingForker makes the nth fork fail, to exercise error propagation and
// fail-fast in the forked measurement phase.
type failingForker struct {
	machine.Machine
	failAt int32
	n      int32
}

func (f *failingForker) ForkPair(x, y int) (machine.Machine, error) {
	if atomic.AddInt32(&f.n, 1) == f.failAt {
		return nil, errors.New("fork failed")
	}
	return f.Machine.(machine.Forker).ForkPair(x, y)
}

func TestForkFailurePropagates(t *testing.T) {
	p, err := sim.ByName("Ivy")
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.NewSim(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Parallelism = 8
	_, err = Infer(&failingForker{Machine: m, failAt: 3}, opt)
	if err == nil || !strings.Contains(err.Error(), "fork failed") {
		t.Fatalf("err = %v, want the fork failure", err)
	}
}

// TestInferRace runs two concurrent inferences on independent machines under
// the race detector: the forks must not share mutable state.
func TestInferRace(t *testing.T) {
	p, err := sim.ByName("Ivy")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		seed := uint64(40 + i)
		go func() {
			m, err := machine.NewSim(p, seed)
			if err != nil {
				done <- err
				return
			}
			opt := testOptions()
			opt.Parallelism = 8
			_, err = Infer(m, opt)
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
