package mctopalg

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// forkedPairFixture builds a per-pair forked machine with both threads
// created and a warmed scratch, mirroring the steady state of a
// measurement worker between pairs.
func forkedPairFixture(tb testing.TB) (machine.Machine, machine.Thread, machine.Thread, *Options, *scratch) {
	tb.Helper()
	p, err := sim.ByName("gen:ring:s8:c4:t2")
	if err != nil {
		tb.Fatal(err)
	}
	m, err := machine.NewSim(p, 17)
	if err != nil {
		tb.Fatal(err)
	}
	fm, err := m.ForkPair(2, 19)
	if err != nil {
		tb.Fatal(err)
	}
	x, err := fm.NewThread(2)
	if err != nil {
		tb.Fatal(err)
	}
	y, err := fm.NewThread(19)
	if err != nil {
		tb.Fatal(err)
	}
	opt := testOptions()
	opt.fillDefaults()
	sc := newScratch(&opt)
	return fm, x, y, &opt, sc
}

// TestMeasurePairSteadyStateAllocs pins the hot loop's allocation behavior:
// once a worker's scratch buffers are warm, measuring a pair must not
// allocate at all. Step 1 runs this path hundreds of thousands of times on
// large platforms, so any per-pair allocation multiplies into real GC
// pressure.
func TestMeasurePairSteadyStateAllocs(t *testing.T) {
	fm, x, y, opt, sc := forkedPairFixture(t)
	overhead := sc.rdtscOverhead(x)
	retries := 0
	measurePair(fm, opt, x, y, overhead, &retries, sc) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		measurePair(fm, opt, x, y, overhead, &retries, sc)
	})
	if allocs != 0 {
		t.Fatalf("measurePair allocates %.1f objects per pair in steady state, want 0", allocs)
	}
	ovAllocs := testing.AllocsPerRun(100, func() {
		sc.rdtscOverhead(x) // memoized: same thread, no re-estimation
	})
	if ovAllocs != 0 {
		t.Fatalf("rdtscOverhead allocates %.1f objects per call in steady state, want 0", ovAllocs)
	}
}

// BenchmarkMeasurePair is the per-pair cost of step 1's inner loop; its
// allocs/op riding BENCH_ci.json keeps the zero-allocation property under
// the CI benchmark gate as well.
func BenchmarkMeasurePair(b *testing.B) {
	fm, x, y, opt, sc := forkedPairFixture(b)
	overhead := sc.rdtscOverhead(x)
	retries := 0
	measurePair(fm, opt, x, y, overhead, &retries, sc) // warm the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measurePair(fm, opt, x, y, overhead, &retries, sc)
	}
}
