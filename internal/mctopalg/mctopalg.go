// Package mctopalg implements MCTOP-ALG, the topology-inference algorithm
// of the MCTOP paper (Section 3).
//
// MCTOP-ALG infers the topology of a cache-coherent machine from nothing
// but communication-latency measurements, exploiting two observations:
// cache-coherence protocols are deterministic in the absence of contention,
// and communication latencies characterize the topology. It needs only
// three things from the OS — the number of hardware contexts, the number of
// memory nodes, and thread pinning — which is exactly the machine.Machine
// interface this package is written against. The same code infers simulated
// platforms (internal/sim) and, best-effort, the real host.
//
// The four steps (Figure 6):
//
//  1. collect a context-to-context latency table with two lock-step
//     threads (Figure 5);
//  2. cluster the values (the CDF's plateaus) and normalize the table;
//  3. recursively group contexts into components per latency level;
//  4. assign roles (cores, sockets, cross-socket levels) to components.
package mctopalg

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Options tunes the inference. The defaults match the paper's Section 3.5.
type Options struct {
	// Reps is the number of repetitions per context pair (n = 2000).
	Reps int
	// StdevThreshold is the acceptable stdev as a fraction of the median
	// (0.07); on a retry it grows up to StdevThresholdMax (0.14).
	StdevThreshold    float64
	StdevThresholdMax float64
	// MaxRetries bounds per-pair re-measurement.
	MaxRetries int
	// Cluster configures latency clustering (step 2).
	Cluster stats.ClusterOptions
	// SpinUnit is the calibrated spin-loop length (cycles) used by the
	// DVFS wait and the SMT detector.
	SpinUnit int64
	// SkipMemoryProbe disables the local-node assignment probe even when
	// the machine supports it (sockets then map to nodes by index).
	SkipMemoryProbe bool
	// Parallelism bounds the worker pool of the measurement phase on
	// machines implementing machine.Forker (0 = GOMAXPROCS, 1 = one
	// worker). The inferred topology is byte-identical for every value:
	// each pair is measured on its own fork whose noise stream depends
	// only on (seed, x, y), and results merge in canonical pair order —
	// a Forker machine takes the forked path even at Parallelism 1.
	// Machines without Forker always measure sequentially through the
	// parent's single noise stream.
	Parallelism int
	// Sampling configures the sub-O(N²) sampled measurement mode for large
	// Forker machines (see sampled.go). Like ForkedEnrich — and unlike
	// Parallelism — it can in principle select different (fallback) work,
	// so it is part of the registry's cache key.
	Sampling SamplingOptions
	// ForkedEnrich selects the fork-per-probe plugin enrichment phase
	// (plugins.EnrichForked) at the facade level — Infer itself never
	// reads it. Deterministic for a fixed seed and independent of
	// Parallelism, but its probes observe per-probe noise streams, so the
	// enriched values differ from the sequential default by the noise
	// amplitude — which is why it is opt-in: description files and golden
	// fixtures are generated with sequential enrichment. Unlike
	// Parallelism, this option changes results and is therefore part of
	// the registry's cache key.
	ForkedEnrich bool
}

// DefaultOptions returns the paper's default parameters.
func DefaultOptions() Options {
	return Options{
		Reps:              2000,
		StdevThreshold:    0.07,
		StdevThresholdMax: 0.14,
		MaxRetries:        3,
		Cluster:           stats.ClusterOptions{RelGap: 0.04, AbsGap: 10},
		SpinUnit:          1_000_000,
	}
}

func (o *Options) fillDefaults() {
	d := DefaultOptions()
	if o.Reps <= 0 {
		o.Reps = d.Reps
	}
	if o.StdevThreshold <= 0 {
		o.StdevThreshold = d.StdevThreshold
	}
	if o.StdevThresholdMax < o.StdevThreshold {
		o.StdevThresholdMax = 2 * o.StdevThreshold
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = d.MaxRetries
	}
	if o.Cluster.RelGap <= 0 {
		o.Cluster.RelGap = d.Cluster.RelGap
	}
	if o.Cluster.AbsGap <= 0 {
		o.Cluster.AbsGap = d.Cluster.AbsGap
	}
	if o.SpinUnit <= 0 {
		o.SpinUnit = d.SpinUnit
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	o.Sampling.fillDefaults()
}

// Normalized returns the options with every zero field replaced by its
// default — the exact configuration Infer will run with. Callers that key
// caches by options must normalize first, so that e.g. the zero value and
// an explicit DefaultOptions() share one entry.
func (o Options) Normalized() Options {
	o.fillDefaults()
	return o
}

// Result carries the inferred topology plus the intermediate artifacts of
// every algorithm step, so tools can render Figure 6.
type Result struct {
	Topology *topo.Topology

	// Enriched reports whether Topology carries the plugin measurements
	// (Section 4). Infer itself never enriches; the facade sets this after
	// running the plugins, and leaves it false when best-effort host
	// enrichment fails — the typed "unenriched" marker callers check
	// instead of probing for zeroed bandwidth fields.
	Enriched bool

	// RawTable is the N x N median latency table (step 1).
	RawTable [][]int64
	// Clusters are the detected latency clusters, ascending (step 2).
	Clusters []stats.Triplet
	// NormTable is the normalized latency table (step 2).
	NormTable [][]int64
	// LevelGroups[l] is the context partition of grouping level l (step 3).
	LevelGroups [][][]int

	// SMT reports whether simultaneous multi-threading was detected, and
	// SMTWays the contexts per core.
	SMT     bool
	SMTWays int

	// RdtscOverhead is the estimated cost of one timestamp read.
	RdtscOverhead int64
	// Pairs is the number of context pairs measured; Retries counts
	// re-measurements due to unstable stdev.
	Pairs   int
	Retries int
	// Sampled reports whether the sampled measurement mode ran (it needs a
	// Forker machine and at least Options.Sampling.MinContexts contexts).
	// FilledPairs counts table entries filled from a verified class
	// representative instead of measured; FallbackBlocks counts class-pair
	// blocks that failed verification and were measured exhaustively.
	Sampled        bool
	FilledPairs    int
	FallbackBlocks int
	// Cycles is the total virtual/real cycles consumed by the measuring
	// thread — the inference cost reported in Section 3.5.
	Cycles int64
}

// ErrClustering is wrapped by all step-2/3/4 failures: the cases where
// libmctop "is not able to infer the topology, an error message is printed
// and the user must retry" (Section 3.5).
var ErrClustering = errors.New("mctopalg: unable to infer topology from latency clusters")

func clusterErr(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrClustering, fmt.Sprintf(format, args...))
}

// Infer runs MCTOP-ALG on a machine with no cancellation; it is
// InferContext with a background context.
func Infer(m machine.Machine, opt Options) (*Result, error) {
	return InferContext(context.Background(), m, opt)
}

// InferContext runs MCTOP-ALG on a machine. The context cancels the
// measurement phase between context pairs — the dominant cost, O(N²) pair
// measurements — so a server can abandon an inference whose client went
// away; a cancelled run returns ctx.Err().
func InferContext(ctx context.Context, m machine.Machine, opt Options) (*Result, error) {
	opt.fillDefaults()
	n := m.NumHWContexts()
	if n < 2 {
		return nil, fmt.Errorf("mctopalg: machine has %d hardware contexts; need at least 2", n)
	}
	nodes := m.NumNodes()
	if nodes < 1 {
		return nil, fmt.Errorf("mctopalg: machine reports %d nodes", nodes)
	}

	res := &Result{}

	// Step 1: latency table.
	if err := collectTable(ctx, m, &opt, res); err != nil {
		return nil, err
	}
	// Steps 2-4 are in-memory transforms, cheap next to the measurement
	// phase; one check here keeps a cancelled run from doing them at all.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 2: cluster and normalize.
	var offDiag []int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			offDiag = append(offDiag, res.RawTable[i][j])
		}
	}
	res.Clusters = stats.Cluster(offDiag, opt.Cluster)
	if len(res.Clusters) == 0 {
		return nil, clusterErr("no latency clusters")
	}
	res.NormTable = stats.Normalize(res.RawTable, res.Clusters)

	// Step 3: component creation.
	levels, sockGroups, sockTable, err := buildComponents(res.NormTable, res.Clusters, n, nodes)
	if err != nil {
		return nil, err
	}
	res.LevelGroups = levels

	// Step 4: role assignment.
	spec, err := assignRoles(m, &opt, res, levels, sockGroups, sockTable, nodes)
	if err != nil {
		return nil, err
	}
	t, err := topo.FromSpec(*spec)
	if err != nil {
		return nil, fmt.Errorf("%w: inferred spec rejected: %v", ErrClustering, err)
	}
	res.Topology = t
	return res, nil
}

// collectTable fills res.RawTable using the lock-step protocol of Figure 5.
// Machines implementing machine.Forker measure pairs on independent forks,
// fanned out over Options.Parallelism workers; everything else measures
// sequentially through the parent machine.
func collectTable(ctx context.Context, m machine.Machine, opt *Options, res *Result) error {
	n := m.NumHWContexts()
	res.RawTable = make([][]int64, n)
	for i := range res.RawTable {
		res.RawTable[i] = make([]int64, n)
	}

	if fk, ok := m.(machine.Forker); ok {
		if opt.Sampling.Enabled && n >= opt.Sampling.MinContexts {
			return collectTableSampled(ctx, fk, m, opt, res)
		}
		return collectTableForked(ctx, fk, m, opt, res)
	}

	x, err := m.NewThread(0)
	if err != nil {
		return err
	}
	y, err := m.NewThread(1)
	if err != nil {
		return err
	}
	start := x.Rdtsc()

	sc := newScratch(opt)
	dvfsWait(m, opt, x)
	res.RdtscOverhead = sc.rdtscOverhead(x)

	fast, _ := m.(machine.PairMeasurer)

	for xi := 0; xi < n-1; xi++ {
		if err := x.Pin(xi); err != nil {
			return err
		}
		dvfsWait(m, opt, x)
		for yi := xi + 1; yi < n; yi++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := y.Pin(yi); err != nil {
				return err
			}
			dvfsWait(m, opt, y)
			var med int64
			if fast != nil {
				vals := fast.MeasurePair(xi, yi, opt.Reps)
				med = acceptOrRetryRaw(vals, opt, &res.Retries, func() []int64 {
					return fast.MeasurePair(xi, yi, opt.Reps)
				})
			} else {
				med = measurePair(m, opt, x, y, res.RdtscOverhead, &res.Retries, sc)
			}
			res.RawTable[xi][yi] = med
			res.RawTable[yi][xi] = med
			res.Pairs++
		}
	}
	res.Cycles = x.Rdtsc() - start
	return nil
}

// pairOutcome is one pair's contribution to the latency table, produced by a
// worker and merged in canonical pair order.
type pairOutcome struct {
	med     int64
	cycles  int64
	retries int
	err     error
}

// ctxPair is one (x, y) context pair, x < y.
type ctxPair struct{ x, y int }

// allPairs enumerates every context pair in the canonical (x, y) order the
// sequential loop uses.
func allPairs(n int) []ctxPair {
	pairs := make([]ctxPair, 0, n*(n-1)/2)
	for x := 0; x < n-1; x++ {
		for y := x + 1; y < n; y++ {
			pairs = append(pairs, ctxPair{x, y})
		}
	}
	return pairs
}

// collectTableForked measures every context pair on its own forked machine.
// The workers only decide *when* a pair is measured, never *what* it
// observes: each fork's noise stream is a pure function of (seed, x, y), and
// the merge walks pairs in the same (x, y) order the sequential loop uses,
// so the resulting table — and hence the inferred topology — is
// byte-identical for every Parallelism, including 1.
func collectTableForked(ctx context.Context, fk machine.Forker, m machine.Machine, opt *Options, res *Result) error {
	// The reported rdtsc overhead comes from the parent machine, like the
	// sequential path's; the forks estimate and deduct their own.
	t0, err := m.NewThread(0)
	if err != nil {
		return err
	}
	dvfsWait(m, opt, t0)
	res.RdtscOverhead = estimateRdtscOverhead(t0, newScratch(opt))

	pairs := allPairs(m.NumHWContexts())
	outcomes, err := runPairsForked(ctx, fk, opt, pairs)
	if err != nil {
		return err
	}
	for i, p := range pairs {
		o := outcomes[i]
		res.RawTable[p.x][p.y] = o.med
		res.RawTable[p.y][p.x] = o.med
		res.Pairs++
		res.Retries += o.retries
		res.Cycles += o.cycles
	}
	return nil
}

// runPairsForked measures a list of pairs over an Options.Parallelism worker
// pool, each pair on its own fork, and returns the outcomes indexed like the
// input. Each worker owns one scratch buffer set for its whole run — the
// hot-loop allocations happen once per worker, not once per pair.
func runPairsForked(ctx context.Context, fk machine.Forker, opt *Options, pairs []ctxPair) ([]pairOutcome, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	workers := opt.Parallelism
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	outcomes := make([]pairOutcome, len(pairs))
	var next int64
	var failed atomic.Bool // fail fast: don't measure O(N²) pairs past a doomed run
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newScratch(opt)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(pairs) || failed.Load() || ctx.Err() != nil {
					return
				}
				outcomes[i] = measurePairForked(fk, opt, pairs[i].x, pairs[i].y, sc)
				if outcomes[i].err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	// A cancelled run reports ctx.Err() even if a pair also failed: the
	// caller asked to stop, and the partial table is unusable either way.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if failed.Load() {
		for i := range pairs {
			if outcomes[i].err != nil {
				return nil, outcomes[i].err
			}
		}
	}
	return outcomes, nil
}

// measurePairForked runs one pair's full measurement — DVFS wait, overhead
// estimation, the Figure 5 lock-step loop — on a private fork.
func measurePairForked(fk machine.Forker, opt *Options, xi, yi int, sc *scratch) pairOutcome {
	fm, err := fk.ForkPair(xi, yi)
	if err != nil {
		return pairOutcome{err: err}
	}
	x, err := fm.NewThread(xi)
	if err != nil {
		return pairOutcome{err: err}
	}
	y, err := fm.NewThread(yi)
	if err != nil {
		return pairOutcome{err: err}
	}
	start := x.Rdtsc()
	dvfsWait(fm, opt, x)
	dvfsWait(fm, opt, y)
	overhead := sc.rdtscOverhead(x)
	var o pairOutcome
	o.med = measurePair(fm, opt, x, y, overhead, &o.retries, sc)
	o.cycles = x.Rdtsc() - start
	return o
}

// dvfsWait spins until consecutive calibrated loops take the same time,
// i.e. the core reached its maximum frequency (Section 3.5: "libmctop
// explicitly waits for the frequency of both cores to reach its maximum").
func dvfsWait(m machine.Machine, opt *Options, t machine.Thread) {
	const maxIters = 64
	prev := m.SpinSolo(t, opt.SpinUnit)
	stable := 0
	for i := 0; i < maxIters; i++ {
		cur := m.SpinSolo(t, opt.SpinUnit)
		diff := cur - prev
		if diff < 0 {
			diff = -diff
		}
		if diff*100 <= prev {
			stable++
			if stable >= 2 {
				return
			}
		} else {
			stable = 0
		}
		prev = cur
	}
}

// overheadReps is the number of back-to-back timestamp reads used to
// estimate the rdtsc overhead.
const overheadReps = 101

// scratch is the per-worker buffer set of the measurement hot loop. The
// loop runs once per pair — hundreds of thousands of times on large
// platforms — and with a scratch it allocates nothing per pair: the sample
// buffers are reused across pairs, the barrier argument slice is built
// once, and the rdtsc-overhead estimate is memoized per thread.
type scratch struct {
	vals []int64 // measurement samples, capacity Options.Reps
	ovh  []int64 // overhead samples, capacity overheadReps
	barr []machine.Thread

	// Per-thread overhead memo. Each fork estimates on a fresh thread (a
	// miss, preserving its noise stream); repeat estimates on one thread
	// return the cached value. Thread implementations must be comparable.
	ovhThread machine.Thread
	ovhVal    int64
}

func newScratch(opt *Options) *scratch {
	return &scratch{
		vals: make([]int64, 0, opt.Reps),
		ovh:  make([]int64, 0, overheadReps),
		barr: make([]machine.Thread, 2),
	}
}

// rdtscOverhead returns the thread's timestamp-read overhead, estimating it
// on first sight and serving repeats from the memo.
func (sc *scratch) rdtscOverhead(t machine.Thread) int64 {
	if sc.ovhThread == t {
		return sc.ovhVal
	}
	v := estimateRdtscOverhead(t, sc)
	sc.ovhThread, sc.ovhVal = t, v
	return v
}

// estimateRdtscOverhead measures back-to-back timestamp reads and takes the
// median.
func estimateRdtscOverhead(t machine.Thread, sc *scratch) int64 {
	vals := sc.ovh[:0]
	for i := 0; i < overheadReps; i++ {
		s := t.Rdtsc()
		e := t.Rdtsc()
		vals = append(vals, e-s)
	}
	return stats.MedianInPlace(vals)
}

// measurePair runs the lock-step loop of Figure 5 through the generic
// thread interface and returns the accepted median, deducting the given
// timestamp-read overhead and counting re-measurements into retries. The
// acceptance rule is acceptOrRetryRaw's, inlined over the scratch buffer so
// the loop is allocation-free (asserted by TestMeasurePairSteadyStateAllocs).
func measurePair(m machine.Machine, opt *Options, x, y machine.Thread, rdtscOverhead int64, retries *int, sc *scratch) int64 {
	const line = 0x6c0c6 // arbitrary shared-line id
	threshold := opt.StdevThreshold
	sc.barr[0], sc.barr[1] = x, y
	for retry := 0; ; retry++ {
		vals := sc.vals[:0]
		for i := 0; i < opt.Reps; i++ {
			m.Barrier(sc.barr...)
			y.CAS(line)
			m.Barrier(sc.barr...)
			s := x.Rdtsc()
			x.CAS(line)
			e := x.Rdtsc()
			v := e - s - rdtscOverhead
			if v < 0 {
				v = 0
			}
			vals = append(vals, v)
		}
		sc.vals = vals[:0]
		sd := stats.Stdev(vals)
		med := stats.MedianInPlace(vals)
		if med <= 0 {
			med = 1
		}
		if sd <= threshold*float64(med) || retry >= opt.MaxRetries {
			return med
		}
		*retries++
		threshold += (opt.StdevThresholdMax - opt.StdevThreshold) / float64(opt.MaxRetries)
		if threshold > opt.StdevThresholdMax {
			threshold = opt.StdevThresholdMax
		}
	}
}

// acceptOrRetryRaw applies the stability rule of Section 3.5: accept the
// median if the standard deviation is below the threshold; otherwise
// re-measure with a widened threshold (7% -> 14% by default).
func acceptOrRetryRaw(vals []int64, opt *Options, retries *int, again func() []int64) int64 {
	threshold := opt.StdevThreshold
	for retry := 0; ; retry++ {
		med := stats.Median(vals)
		if med <= 0 {
			med = 1
		}
		if stats.Stdev(vals) <= threshold*float64(med) || retry >= opt.MaxRetries {
			return med
		}
		*retries++
		threshold += (opt.StdevThresholdMax - opt.StdevThreshold) / float64(opt.MaxRetries)
		if threshold > opt.StdevThresholdMax {
			threshold = opt.StdevThresholdMax
		}
		vals = again()
	}
}

// buildComponents implements step 3: starting from singleton components,
// repeatedly merge components connected at the next latency level, checking
// the symmetry rules of Section 3.6, until components reach socket size
// (#contexts / #nodes). Returns the per-level partitions, the socket-level
// partition and the reduced socket-to-socket latency table.
func buildComponents(norm [][]int64, clusters []stats.Triplet, n, nodes int) (
	levels [][][]int, sockGroups [][]int, sockTable [][]int64, err error) {

	if n%nodes != 0 {
		return nil, nil, nil, clusterErr("%d contexts not divisible by %d nodes", n, nodes)
	}
	ctxPerSocket := n / nodes
	if ctxPerSocket < 2 {
		return nil, nil, nil, clusterErr("sockets of %d context are not inferable", ctxPerSocket)
	}

	// components[i] = sorted ctx ids; table = reduced latency table.
	components := make([][]int, n)
	for i := range components {
		components[i] = []int{i}
	}
	table := norm

	for li := 0; li < len(clusters); li++ {
		if len(components[0]) == ctxPerSocket {
			break // socket level reached; remaining clusters are cross levels
		}
		if len(components[0]) > ctxPerSocket {
			return nil, nil, nil, clusterErr(
				"components grew to %d contexts, past socket size %d", len(components[0]), ctxPerSocket)
		}
		lat := clusters[li].Median
		groups, reduced, gerr := groupAtLatency(components, table, lat)
		if gerr != nil {
			return nil, nil, nil, gerr
		}
		components = groups
		table = reduced
		// Record this level's partition.
		part := make([][]int, len(components))
		for i, c := range components {
			part[i] = append([]int(nil), c...)
		}
		levels = append(levels, part)
	}

	if len(components[0]) != ctxPerSocket {
		return nil, nil, nil, clusterErr(
			"no level yields socket-sized components (%d contexts per node); got %d",
			ctxPerSocket, len(components[0]))
	}
	return levels, components, table, nil
}

// groupAtLatency merges components communicating at exactly lat and reduces
// the table, enforcing: every component joins exactly one group, groups are
// uniform in size, groups are internally complete at lat, and members of a
// group have identical latencies to every other group.
func groupAtLatency(components [][]int, table [][]int64, lat int64) ([][]int, [][]int64, error) {
	k := len(components)
	// Union-find over components connected at lat.
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if table[i][j] == lat {
				union(i, j)
			}
		}
	}
	groupsByRoot := make(map[int][]int)
	for i := 0; i < k; i++ {
		r := find(i)
		groupsByRoot[r] = append(groupsByRoot[r], i)
	}
	var memberSets [][]int
	for _, members := range groupsByRoot {
		memberSets = append(memberSets, members)
	}
	sort.Slice(memberSets, func(a, b int) bool { return memberSets[a][0] < memberSets[b][0] })

	size := len(memberSets[0])
	if size == 1 {
		return nil, nil, clusterErr("latency level %d groups nothing", lat)
	}
	for _, ms := range memberSets {
		if len(ms) != size {
			return nil, nil, clusterErr(
				"latency level %d produces groups of size %d and %d", lat, size, len(ms))
		}
		// Internal completeness: every pair inside the group must be lat.
		for a := 0; a < len(ms); a++ {
			for b := a + 1; b < len(ms); b++ {
				if table[ms[a]][ms[b]] != lat {
					return nil, nil, clusterErr(
						"components %d and %d grouped at level %d but communicate at %d",
						ms[a], ms[b], lat, table[ms[a]][ms[b]])
				}
			}
		}
	}

	// Reduce the table, verifying external uniformity.
	g := len(memberSets)
	reduced := make([][]int64, g)
	for i := range reduced {
		reduced[i] = make([]int64, g)
	}
	for gi := 0; gi < g; gi++ {
		for gj := gi + 1; gj < g; gj++ {
			ref := table[memberSets[gi][0]][memberSets[gj][0]]
			for _, a := range memberSets[gi] {
				for _, b := range memberSets[gj] {
					if table[a][b] != ref {
						return nil, nil, clusterErr(
							"group (%d,%d) has non-uniform external latency: %d vs %d",
							gi, gj, table[a][b], ref)
					}
				}
			}
			reduced[gi][gj] = ref
			reduced[gj][gi] = ref
		}
	}

	// Merge the context sets.
	merged := make([][]int, g)
	for gi, ms := range memberSets {
		for _, ci := range ms {
			merged[gi] = append(merged[gi], components[ci]...)
		}
		sort.Ints(merged[gi])
	}
	return merged, reduced, nil
}

// assignRoles implements step 4: detect SMT (deciding whether the first
// level's components are cores), classify the socket level, turn remaining
// clusters into cross-socket levels, and assign memory nodes to sockets.
func assignRoles(m machine.Machine, opt *Options, res *Result,
	levels [][][]int, sockGroups [][]int, sockTable [][]int64, nodes int) (*topo.Spec, error) {

	n := m.NumHWContexts()

	// SMT detection (Section 3.5): run the calibrated loop solo and then on
	// the two contexts with minimum latency; SMT sharing dilates it.
	res.SMT = false
	res.SMTWays = 1
	if len(levels) > 0 {
		a, b := minLatencyPair(res.RawTable, n)
		ta, err := m.NewThread(a)
		if err != nil {
			return nil, err
		}
		tb, err := m.NewThread(b)
		if err != nil {
			return nil, err
		}
		dvfsWait(m, opt, ta)
		dvfsWait(m, opt, tb)
		solo := m.SpinSolo(ta, opt.SpinUnit)
		d1, d2 := m.SpinTogether(ta, tb, opt.SpinUnit)
		together := d1
		if d2 > together {
			together = d2
		}
		if float64(together) > 1.4*float64(solo) {
			res.SMT = true
			res.SMTWays = len(levels[0][0])
		}
	}

	// Sort socket groups by smallest member for stable socket ids.
	ordered := make([][]int, len(sockGroups))
	copy(ordered, sockGroups)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i][0] < ordered[j][0] })

	// Cluster bookkeeping: which cluster fed which grouping level.
	nGroupLevels := len(levels)
	crossClusters := res.Clusters[nGroupLevels:]

	// Permute the reduced socket table to the ordered socket ids.
	perm := make([]int, len(ordered))
	for newID, g := range ordered {
		for oldID, og := range sockGroups {
			if og[0] == g[0] {
				perm[newID] = oldID
				break
			}
		}
	}
	nS := len(ordered)
	socketLat := make([][]int64, nS)
	for i := range socketLat {
		socketLat[i] = make([]int64, nS)
		for j := range socketLat[i] {
			if i == j {
				continue
			}
			socketLat[i][j] = sockTable[perm[i]][perm[j]]
		}
	}

	// Validate: every cross latency belongs to a cross cluster.
	for i := 0; i < nS; i++ {
		for j := i + 1; j < nS; j++ {
			found := false
			for _, c := range crossClusters {
				if c.Contains(socketLat[i][j]) {
					found = true
					break
				}
			}
			if !found {
				return nil, clusterErr("socket latency %d not in any cross-socket cluster", socketLat[i][j])
			}
		}
	}

	// Build levels for the spec.
	var specLevels []topo.Level
	for li, part := range levels {
		c := res.Clusters[li]
		name := fmt.Sprintf("group-%d", li+1)
		kind := topo.LevelGroup
		if li == 0 && res.SMT {
			name = "core"
		}
		if li == nGroupLevels-1 {
			name = "socket"
			kind = topo.LevelSocket
		}
		specLevels = append(specLevels, topo.Level{
			Name: name, Kind: kind, Min: c.Min, Median: c.Median, Max: c.Max,
			Groups: part,
		})
	}
	// Socket groups must appear in the ordered arrangement.
	specLevels[nGroupLevels-1].Groups = ordered
	for ci, c := range crossClusters {
		specLevels = append(specLevels, topo.Level{
			Name: fmt.Sprintf("cross-%d", ci+1), Kind: topo.LevelCross,
			Min: c.Min, Median: c.Median, Max: c.Max,
		})
	}
	// Intra-socket latency on the diagonal.
	intra := specLevels[nGroupLevels-1].Median
	for i := 0; i < nS; i++ {
		socketLat[i][i] = intra
	}

	// Node assignment: measure which node each socket reaches fastest —
	// this is how MCTOP gets the mapping right when the OS has it wrong
	// (footnote 1). Fall back to identity without a memory prober.
	nodeOf := make([]int, nS)
	prober, hasProber := m.(machine.MemoryProber)
	if hasProber && !opt.SkipMemoryProbe && nodes > 1 {
		th, err := m.NewThread(0)
		if err != nil {
			return nil, err
		}
		for s := 0; s < nS; s++ {
			if err := th.Pin(ordered[s][0]); err != nil {
				return nil, err
			}
			dvfsWait(m, opt, th)
			best, bestLat := -1, int64(0)
			for node := 0; node < nodes; node++ {
				const probes = 64
				lat := prober.MemRandomAccess(th, node, probes) / probes
				if best == -1 || lat < bestLat {
					best, bestLat = node, lat
				}
			}
			nodeOf[s] = best
		}
		if nS == nodes {
			seen := make([]bool, nodes)
			for _, nd := range nodeOf {
				if seen[nd] {
					return nil, clusterErr("two sockets measured node %d as local", nd)
				}
				seen[nd] = true
			}
		}
	} else {
		if nS != nodes {
			return nil, clusterErr("%d sockets vs %d nodes and no memory prober to map them", nS, nodes)
		}
		for s := range nodeOf {
			nodeOf[s] = s
		}
	}

	spec := &topo.Spec{
		Name:         m.Name(),
		Contexts:     n,
		Nodes:        nodes,
		SMTWays:      res.SMTWays,
		Levels:       specLevels,
		NodeOfSocket: nodeOf,
		SocketLat:    socketLat,
	}
	if f, ok := m.(machine.FrequencyGHz); ok {
		spec.FreqGHz = f.FreqMaxGHz()
	}
	return spec, nil
}

// CheckStale reports whether a previously inferred topology still matches
// the machine it was inferred on. libmctop does not track dynamic changes
// (Section 3.5: "if, after the execution of MCTOP-ALG, SMT is disabled
// through BIOS, or a hardware context is disabled via the OS, MCTOP-ALG
// must be re-executed"); this check is how callers find out a re-run is
// needed. A nil error means the cheap invariants still hold — it is not
// proof that latencies are unchanged.
func CheckStale(m machine.Machine, t *topo.Topology) error {
	if n := m.NumHWContexts(); n != t.NumHWContexts() {
		return fmt.Errorf("mctopalg: machine now has %d hardware contexts, topology has %d — re-run MCTOP-ALG",
			n, t.NumHWContexts())
	}
	if n := m.NumNodes(); n != t.NumNodes() {
		return fmt.Errorf("mctopalg: machine now has %d memory nodes, topology has %d — re-run MCTOP-ALG",
			n, t.NumNodes())
	}
	return nil
}

// minLatencyPair returns the context pair with the smallest non-zero raw
// latency.
func minLatencyPair(table [][]int64, n int) (int, int) {
	ba, bb := 0, 1
	best := table[0][1]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if table[i][j] < best {
				best = table[i][j]
				ba, bb = i, j
			}
		}
	}
	return ba, bb
}
