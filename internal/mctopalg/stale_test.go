package mctopalg

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// TestCheckStale: a topology inferred on one machine is flagged when the
// machine's visible resources change (the paper's dynamic-changes
// limitation: SMT disabled, contexts offlined).
func TestCheckStale(t *testing.T) {
	m, err := machine.NewSim(sim.Ivy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Reps = 31
	res, err := Infer(m, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStale(m, res.Topology); err != nil {
		t.Errorf("fresh topology flagged stale: %v", err)
	}
	// "Disable SMT": the machine now exposes half the contexts.
	smaller := sim.Ivy()
	smaller.SMT = 1
	m2, err := machine.NewSim(smaller, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStale(m2, res.Topology); err == nil {
		t.Error("halved context count should be flagged")
	}
	// A machine with a different node count is also stale.
	other, err := machine.NewSim(sim.Haswell(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStale(other, res.Topology); err == nil {
		t.Error("different node count should be flagged")
	}
}
