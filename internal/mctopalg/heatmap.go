package mctopalg

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Heatmap renders the latency table the way Figure 6 (1) visualizes it: a
// character per context pair, one shade per latency cluster — the white
// diagonal, the light SMT diagonals, and the intra-/cross-socket blocks
// become immediately visible in a terminal.
//
// Shades are assigned per cluster, light to dark: '.' (self), then
// ' ', '░', '▒', '▓', '█' in cluster order.
func (r *Result) Heatmap() string {
	if r.RawTable == nil {
		return ""
	}
	shades := []rune{' ', '░', '▒', '▓', '█', '@', '#', '%'}
	var b strings.Builder
	n := len(r.RawTable)
	fmt.Fprintf(&b, "%d x %d latency table, %d clusters:", n, n, len(r.Clusters))
	for i, c := range r.Clusters {
		fmt.Fprintf(&b, "  %c=%d", shades[min(i, len(shades)-1)], c.Median)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				b.WriteByte('.')
				continue
			}
			idx, ok := stats.Assign(r.Clusters, r.RawTable[i][j])
			if !ok {
				b.WriteByte('?')
				continue
			}
			b.WriteRune(shades[min(idx, len(shades)-1)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the raw latency table as comma-separated values, matching
// the tables printed in the paper's Figure 6 — loadable into any plotting
// tool.
func (r *Result) CSV() string {
	var b strings.Builder
	for i, row := range r.RawTable {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		if i < len(r.RawTable)-1 {
			b.WriteByte('\n')
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
