package mctopalg

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestHeatmapAndCSV(t *testing.T) {
	m, err := machine.NewSim(sim.Ivy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Reps = 31
	res, err := Infer(m, o)
	if err != nil {
		t.Fatal(err)
	}
	hm := res.Heatmap()
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 41 { // header + 40 rows
		t.Fatalf("heatmap has %d lines", len(lines))
	}
	// The diagonal is '.'; the header names the clusters.
	if !strings.Contains(lines[0], "3 clusters") {
		t.Errorf("header: %s", lines[0])
	}
	row0 := []rune(lines[1])
	if row0[0] != '.' {
		t.Errorf("diagonal = %q", row0[0])
	}
	// Context (0,20) is the SMT cluster (shade 0 = ' '), (0,10) the cross
	// cluster (darkest of the three).
	if row0[20] != ' ' {
		t.Errorf("SMT cell = %q, want ' '", row0[20])
	}
	if row0[10] == ' ' || row0[10] == '.' {
		t.Errorf("cross cell = %q, want a dark shade", row0[10])
	}

	csv := res.CSV()
	rows := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(rows) != 40 {
		t.Fatalf("CSV has %d rows", len(rows))
	}
	if got := len(strings.Split(rows[0], ",")); got != 40 {
		t.Fatalf("CSV row width %d", got)
	}
	if !strings.HasPrefix(rows[0], "0,") {
		t.Errorf("CSV diagonal should start with 0: %s", rows[0][:16])
	}
	// Empty result renders empty.
	if (&Result{}).Heatmap() != "" {
		t.Error("empty result should render empty heatmap")
	}
}
