package mctopalg

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// sampledOptions returns test options with the sampled mode switched on and
// its size floor lowered so that the small platforms used in tests actually
// take the sampled path.
func sampledOptions() Options {
	o := testOptions()
	o.Sampling.Enabled = true
	o.Sampling.MinContexts = 8
	return o
}

func inferWith(t *testing.T, p *sim.Platform, seed uint64, opt Options) *Result {
	t.Helper()
	m, err := machine.NewSim(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Infer(m, opt)
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res
}

// requireSampledEqual asserts the exhaustive-equality guarantee: the raw
// latency table, the clusters, the normalized table, and the serialized
// topology of a sampled inference must be byte-identical to the exhaustive
// inference of the same (platform, seed).
func requireSampledEqual(t *testing.T, p *sim.Platform, seed uint64, exh, smp *Result) {
	t.Helper()
	if !smp.Sampled {
		t.Fatalf("%s: sampled run did not take the sampled path", p.Name)
	}
	if exh.Sampled {
		t.Fatalf("%s: exhaustive run took the sampled path", p.Name)
	}
	if !reflect.DeepEqual(exh.RawTable, smp.RawTable) {
		t.Fatalf("%s: raw tables differ between exhaustive and sampled", p.Name)
	}
	if !reflect.DeepEqual(exh.Clusters, smp.Clusters) {
		t.Fatalf("%s: clusters differ: exhaustive %v, sampled %v", p.Name, exh.Clusters, smp.Clusters)
	}
	if !reflect.DeepEqual(exh.NormTable, smp.NormTable) {
		t.Fatalf("%s: normalized tables differ", p.Name)
	}
	eb := encodeTopo(t, exh.Topology)
	sb := encodeTopo(t, smp.Topology)
	if !bytes.Equal(eb, sb) {
		t.Fatalf("%s: serialized topologies differ (exhaustive %d bytes, sampled %d bytes)",
			p.Name, len(eb), len(sb))
	}
}

// TestSampledEqualsExhaustiveGolden runs the guarantee on all five golden
// platforms. Their deterministic in-level latency spreads trip the noise
// gate, so the sampled mode must detect that fills would be inexact and
// measure every pair — ending up byte-identical the hard way.
func TestSampledEqualsExhaustiveGolden(t *testing.T) {
	for _, p := range sim.Platforms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			const seed = 42
			exh := inferWith(t, p, seed, testOptions())
			smp := inferWith(t, p, seed, sampledOptions())
			requireSampledEqual(t, p, seed, exh, smp)
			if smp.Pairs != exh.Pairs {
				t.Fatalf("%s: golden platforms must fall back to full measurement: sampled %d pairs, exhaustive %d",
					p.Name, smp.Pairs, exh.Pairs)
			}
			if smp.Retries != exh.Retries || smp.Cycles != exh.Cycles {
				t.Fatalf("%s: retry/cycle totals differ on a full-fallback run: retries %d/%d, cycles %d/%d",
					p.Name, smp.Retries, exh.Retries, smp.Cycles, exh.Cycles)
			}
		})
	}
}

// TestSampledEqualsExhaustiveGenerated runs the guarantee on generated
// mesh, ring and circulant platforms up to 256 contexts, with fixed seeds.
// These are noise-free, so the sampled mode must engage its fast path —
// the larger cases assert it actually measured fewer pairs and filled the
// rest by class.
func TestSampledEqualsExhaustiveGenerated(t *testing.T) {
	cases := []struct {
		name     string
		wantFill bool // large enough that fills must happen
	}{
		{"gen:mesh:s9:c4:t1", false},
		{"gen:mesh:s12:c2:t2", false},
		{"gen:mesh:s25:c2:t2:v7", true},
		{"gen:ring:s8:c4:t2", false},
		{"gen:ring:s16:c8:t2:v3", true},
		{"gen:circulant:s16:c4:t2:v11", true},
		{"gen:circulant:s32:c4:t2", true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p, err := sim.ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			const seed = 7
			exh := inferWith(t, p, seed, testOptions())
			smp := inferWith(t, p, seed, sampledOptions())
			requireSampledEqual(t, p, seed, exh, smp)
			if tc.wantFill {
				if smp.FilledPairs == 0 {
					t.Fatalf("%s: expected the fast path to fill pairs, measured all %d", tc.name, smp.Pairs)
				}
				if smp.Pairs >= exh.Pairs {
					t.Fatalf("%s: sampled measured %d pairs, exhaustive %d — no savings", tc.name, smp.Pairs, exh.Pairs)
				}
			}
			if got, want := smp.Pairs+smp.FilledPairs, exh.Pairs; got != want {
				t.Fatalf("%s: measured+filled = %d, want %d", tc.name, got, want)
			}
		})
	}
}

// TestSampledParallelismInvariance checks that the sampled mode, like the
// exhaustive mode, produces byte-identical results regardless of worker
// count: probe selection and class formation must not depend on
// measurement completion order.
func TestSampledParallelismInvariance(t *testing.T) {
	p, err := sim.ByName("gen:circulant:s16:c4:t2:v11")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 99
	var base *Result
	for _, par := range []int{1, 4, 16} {
		opt := sampledOptions()
		opt.Parallelism = par
		res := inferWith(t, p, seed, opt)
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base.RawTable, res.RawTable) {
			t.Fatalf("parallelism %d: raw table differs from parallelism 1", par)
		}
		if base.Pairs != res.Pairs || base.FilledPairs != res.FilledPairs ||
			base.FallbackBlocks != res.FallbackBlocks ||
			base.Retries != res.Retries || base.Cycles != res.Cycles {
			t.Fatalf("parallelism %d: counters differ: %+v vs %+v", par,
				[5]int64{int64(base.Pairs), int64(base.FilledPairs), int64(base.FallbackBlocks), int64(base.Retries), base.Cycles},
				[5]int64{int64(res.Pairs), int64(res.FilledPairs), int64(res.FallbackBlocks), int64(res.Retries), res.Cycles})
		}
		if !bytes.Equal(encodeTopo(t, base.Topology), encodeTopo(t, res.Topology)) {
			t.Fatalf("parallelism %d: serialized topology differs from parallelism 1", par)
		}
	}
}

// TestSampledBelowFloorStaysExhaustive checks the MinContexts floor: small
// machines ignore the sampling option entirely.
func TestSampledBelowFloorStaysExhaustive(t *testing.T) {
	p, err := sim.ByName("gen:ring:s4:c2:t2") // 16 contexts
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Sampling.Enabled = true // MinContexts defaults to 64 > 16
	res := inferWith(t, p, 1, opt)
	if res.Sampled {
		t.Fatalf("machine with %d contexts took the sampled path below the %d-context floor",
			p.NumContexts(), 64)
	}
}

// TestSampledGroundTruthGenerated cross-checks the sampled inference result
// against the generator's ground truth on a platform large enough that the
// fast path engages.
func TestSampledGroundTruthGenerated(t *testing.T) {
	p, err := sim.ByName("gen:mesh:s25:c2:t2:v7") // 100 contexts
	if err != nil {
		t.Fatal(err)
	}
	res := inferWith(t, p, 5, sampledOptions())
	if res.FilledPairs == 0 {
		t.Fatal("fast path did not engage")
	}
	checkAgainstGroundTruth(t, p, res.Topology)
}

// TestSampledSpeedupBar pins the headline claim at the 1024-context scale:
// the sampled mode must measure at most a tenth of the N(N-1)/2 pairs the
// exhaustive mode would. (The wall-clock counterpart lives in
// BenchmarkInferSampled1024 and is gated in CI by benchdelta.)
func TestSampledSpeedupBar(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-context inference in -short mode")
	}
	p, err := sim.ByName("gen:circulant:s64:c8:t2") // 1024 contexts
	if err != nil {
		t.Fatal(err)
	}
	opt := sampledOptions()
	opt.Reps = 15
	res := inferWith(t, p, 3, opt)
	n := p.NumContexts()
	total := n * (n - 1) / 2
	if res.Pairs*10 > total {
		t.Fatalf("sampled mode measured %d of %d pairs — less than the required 10x reduction", res.Pairs, total)
	}
	t.Logf("measured %d of %d pairs (%.1fx reduction), filled %d, fallback blocks %d",
		res.Pairs, total, float64(total)/float64(res.Pairs), res.FilledPairs, res.FallbackBlocks)
}

// TestSampledLargeSmoke is the CI large-platform smoke: full sampled vs
// exhaustive equality at 1024 contexts. The exhaustive side measures half a
// million pairs, so the test only runs when MCTOP_LARGE_SMOKE is set.
func TestSampledLargeSmoke(t *testing.T) {
	if os.Getenv("MCTOP_LARGE_SMOKE") == "" {
		t.Skip("set MCTOP_LARGE_SMOKE=1 to run the 1024-context equality smoke")
	}
	p, err := sim.ByName("gen:circulant:s64:c8:t2")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 3
	exh := testOptions()
	exh.Reps = 15
	smp := sampledOptions()
	smp.Reps = 15
	exhRes := inferWith(t, p, seed, exh)
	smpRes := inferWith(t, p, seed, smp)
	requireSampledEqual(t, p, seed, exhRes, smpRes)
	t.Logf("equality held: exhaustive %d pairs, sampled %d measured + %d filled",
		exhRes.Pairs, smpRes.Pairs, smpRes.FilledPairs)
}

func benchmarkInfer(b *testing.B, name string, sampled bool) {
	p, err := sim.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Reps = 15
	opt.SkipMemoryProbe = true
	if sampled {
		opt.Sampling.Enabled = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := machine.NewSim(p, 3)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Infer(m, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sampled != sampled && p.NumContexts() >= 64 {
			b.Fatalf("Sampled = %v, want %v", res.Sampled, sampled)
		}
	}
}

// The size sweep behind the >=10x cold-inference speedup claim. The 256-
// context pair shows the crossover region; at 1024 contexts sampled must
// win by an order of magnitude (compare the two 1024 results in
// BENCH_ci.json).
func BenchmarkInferExhaustive256(b *testing.B)  { benchmarkInfer(b, "gen:circulant:s16:c8:t1", false) }
func BenchmarkInferSampled256(b *testing.B)     { benchmarkInfer(b, "gen:circulant:s16:c8:t1", true) }
func BenchmarkInferExhaustive1024(b *testing.B) { benchmarkInfer(b, "gen:circulant:s64:c8:t2", false) }
func BenchmarkInferSampled1024(b *testing.B)    { benchmarkInfer(b, "gen:circulant:s64:c8:t2", true) }

// BenchmarkGenerate tracks the generator itself: building a ~2.5k-context
// circulant platform, matrices included.
func BenchmarkGenerate(b *testing.B) {
	spec, err := sim.ParseGenName("gen:circulant:s160:c8:t2:v5")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleSamplingOptions() {
	p, _ := sim.ByName("gen:circulant:s32:c4:t2") // 256 contexts, noise-free
	m, _ := machine.NewSim(p, 1)
	opt := DefaultOptions()
	opt.Reps = 15
	opt.Sampling.Enabled = true
	res, _ := Infer(m, opt)
	n := p.NumContexts()
	fmt.Printf("sampled=%v measured+filled=%d total=%d\n",
		res.Sampled, res.Pairs+res.FilledPairs, n*(n-1)/2)
	// Output: sampled=true measured+filled=32640 total=32640
}
