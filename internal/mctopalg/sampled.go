// Sampled (sub-O(N²)) measurement for large Forker machines.
//
// The exhaustive step 1 measures all N(N-1)/2 context pairs; at the 1k-10k
// context scale of generated platforms (internal/sim's Generate) that loop
// is the entire cost of a cold inference. Large interconnects are highly
// regular, though, which this mode exploits in three phases:
//
//  1. Pilot phase: measure every pair involving a small, evenly spaced
//     pilot context set. Each context's vector of latencies to the pilots
//     is its *signature*; contexts with byte-equal signatures are
//     indistinguishable to the pilots and form a class.
//  2. Verification phase: for every pair of classes, measure one
//     representative pair plus a deterministic set of probe pairs (the
//     block's corners and seeded interior picks).
//  3. Fill or fall back: if every probe agrees with the representative,
//     the remaining pairs of the block take its value; any disagreement
//     falls back to measuring the block exhaustively. Same-class
//     (diagonal) blocks are always exhaustive — SMT siblings share
//     signatures, so same-core pairs hide inside classes where probes
//     could not catch them.
//
// Exhaustive-equality: every measured pair goes through the same
// measurePairForked path as the exhaustive mode, and a fork's noise stream
// depends only on (seed, x, y) — measured values are byte-identical by
// construction, regardless of which other pairs were measured. Filled
// values are exact on noise-free generated platforms, where a pair's median
// is a pure function of its latency level. Platforms with per-measurement
// jitter or deterministic in-level spread (all five golden machines) are
// detected up front — their pilot medians do not form exact plateaus — and
// fall back to measuring everything, trading the speedup for exactness.
// The equality is property-tested against the exhaustive mode on the golden
// five and on generated mesh/ring/circulant platforms (sampled_test.go).
package mctopalg

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"repro/internal/machine"
	"repro/internal/trace"
)

// SamplingOptions configures the sampled measurement mode. The zero value
// disables it; enabling it with zero parameters uses the defaults below.
type SamplingOptions struct {
	// Enabled turns the mode on for Forker machines with at least
	// MinContexts contexts. Machines without Forker always measure
	// sequentially and ignore this option.
	Enabled bool
	// Pilots is the pilot-set size (0 = auto: n/64 clamped to [8, 64]).
	Pilots int
	// MinContexts is the size below which inference stays exhaustive —
	// under it the pilot phase would measure most pairs anyway (0 = 64).
	MinContexts int
	// VerifyPerBlock is the number of probe pairs measured per class-pair
	// block on top of the representative (0 = 6). Higher values widen the
	// net for irregular platforms at the cost of speedup.
	VerifyPerBlock int
}

func (s *SamplingOptions) fillDefaults() {
	if !s.Enabled {
		// Normalize every disabled spelling to one zero value, so cache
		// keys of non-sampled inferences agree.
		*s = SamplingOptions{}
		return
	}
	if s.Pilots < 0 {
		s.Pilots = 0
	}
	if s.MinContexts <= 0 {
		s.MinContexts = 64
	}
	if s.VerifyPerBlock <= 0 {
		s.VerifyPerBlock = 6
	}
}

// pilotCount resolves the pilot-set size for n contexts.
func (s SamplingOptions) pilotCount(n int) int {
	k := s.Pilots
	if k <= 0 {
		k = n / 64
		if k < 8 {
			k = 8
		}
		if k > 64 {
			k = 64
		}
	}
	if k > n {
		k = n
	}
	return k
}

// noiseGapMin is the plateau-separation rule of the noise gate: on a
// noise-free platform, distinct pilot-phase medians belong to distinct
// latency levels and sit at least one interconnect-hop step apart (67+
// cycles on generated platforms); two distinct medians this close or
// closer are measurement jitter or in-level spread, and the whole run
// falls back to exhaustive measurement.
const noiseGapMin = 8

// collectTableSampled fills res.RawTable measuring only a subset of pairs
// (see the package comment above). An unmeasured entry is 0 until filled;
// measured medians are always >= 1.
func collectTableSampled(ctx context.Context, fk machine.Forker, m machine.Machine, opt *Options, res *Result) error {
	n := m.NumHWContexts()
	res.Sampled = true

	t0, err := m.NewThread(0)
	if err != nil {
		return err
	}
	dvfsWait(m, opt, t0)
	res.RdtscOverhead = estimateRdtscOverhead(t0, newScratch(opt))

	record := func(pairs []ctxPair, outs []pairOutcome) {
		for i, p := range pairs {
			o := outs[i]
			res.RawTable[p.x][p.y] = o.med
			res.RawTable[p.y][p.x] = o.med
			res.Pairs++
			res.Retries += o.retries
			res.Cycles += o.cycles
		}
	}
	measure := func(pairs []ctxPair) error {
		outs, err := runPairsForked(ctx, fk, opt, pairs)
		if err != nil {
			return err
		}
		record(pairs, outs)
		return nil
	}

	// Phase 1: pilots. Evenly spaced pilot contexts, every pair touching
	// one of them, in canonical (x, y) order. Each phase below is one span
	// on a traced request — never one per pair; the measurement hot loop
	// stays allocation-free.
	_, pilotSpan := trace.Start(ctx, "infer.pilots")
	k := opt.Sampling.pilotCount(n)
	stride := n / k
	pilots := make([]int, k)
	isPilot := make([]bool, n)
	for i := range pilots {
		pilots[i] = i * stride
		isPilot[i*stride] = true
	}
	wave1 := make([]ctxPair, 0, k*n)
	for x := 0; x < n-1; x++ {
		if isPilot[x] {
			for y := x + 1; y < n; y++ {
				wave1 = append(wave1, ctxPair{x, y})
			}
		} else {
			for _, p := range pilots {
				if p > x {
					wave1 = append(wave1, ctxPair{x, p})
				}
			}
		}
	}
	pilotSpan.SetInt("pilots", int64(k))
	pilotSpan.SetInt("pairs", int64(len(wave1)))
	if err := measure(wave1); err != nil {
		pilotSpan.SetError(err)
		pilotSpan.End()
		return err
	}
	pilotSpan.End()

	// Classes: non-pilot contexts grouped by their latency signature to the
	// pilots. Pilot contexts are fully measured already and join no class.
	_, classSpan := trace.Start(ctx, "infer.classify")
	classIdx := map[string]int{}
	var classes [][]int
	var sigb strings.Builder
	for x := 0; x < n; x++ {
		if isPilot[x] {
			continue
		}
		sigb.Reset()
		for _, p := range pilots {
			sigb.WriteString(strconv.FormatInt(res.RawTable[x][p], 10))
			sigb.WriteByte(',')
		}
		sig := sigb.String()
		ci, ok := classIdx[sig]
		if !ok {
			ci = len(classes)
			classIdx[sig] = ci
			classes = append(classes, nil)
		}
		classes[ci] = append(classes[ci], x)
	}

	// Noise gate: exact plateaus only. Any two distinct pilot medians
	// closer than noiseGapMin mean in-level spread, so class fills would
	// not be exact — measure everything instead.
	distinct := make([]int64, 0, 64)
	seen := map[int64]bool{}
	for _, p := range wave1 {
		if v := res.RawTable[p.x][p.y]; !seen[v] {
			seen[v] = true
			distinct = append(distinct, v)
		}
	}
	slices.Sort(distinct)
	noisy := false
	for i := 1; i < len(distinct); i++ {
		if distinct[i]-distinct[i-1] <= noiseGapMin {
			noisy = true
			break
		}
	}
	classSpan.SetInt("classes", int64(len(classes)))
	classSpan.SetBool("noisy", noisy)
	classSpan.End()

	// Phase 2: per class-pair block, decide representative + probes, or
	// exhaustive fallback.
	_, verifySpan := trace.Start(ctx, "infer.verify")
	V := opt.Sampling.VerifyPerBlock
	type block struct {
		pairs    []ctxPair // unmeasured pairs, canonical order
		probeIdx []int     // indices into pairs measured for verification
	}
	var blocks []block
	var exhaustNow []ctxPair // diagonal, small, or noisy-run blocks
	for ci := 0; ci < len(classes); ci++ {
		for cj := ci; cj < len(classes); cj++ {
			var bp []ctxPair
			if ci == cj {
				members := classes[ci]
				for i := 0; i < len(members)-1; i++ {
					for j := i + 1; j < len(members); j++ {
						bp = append(bp, ctxPair{members[i], members[j]})
					}
				}
			} else {
				for _, a := range classes[ci] {
					for _, b := range classes[cj] {
						x, y := a, b
						if x > y {
							x, y = y, x
						}
						bp = append(bp, ctxPair{x, y})
					}
				}
			}
			sort.Slice(bp, func(i, j int) bool {
				return bp[i].x < bp[j].x || bp[i].x == bp[j].x && bp[i].y < bp[j].y
			})
			if noisy || ci == cj || len(bp) <= V+1 {
				exhaustNow = append(exhaustNow, bp...)
				continue
			}
			blocks = append(blocks, block{pairs: bp, probeIdx: probeIndices(bp, V)})
		}
	}
	if noisy {
		res.FallbackBlocks = len(classes) * (len(classes) + 1) / 2
	}

	wave2 := append([]ctxPair(nil), exhaustNow...)
	for _, b := range blocks {
		for _, pi := range b.probeIdx {
			wave2 = append(wave2, b.pairs[pi])
		}
	}
	verifySpan.SetInt("pairs", int64(len(wave2)))
	verifySpan.SetInt("blocks", int64(len(blocks)))
	if err := measure(wave2); err != nil {
		verifySpan.SetError(err)
		verifySpan.End()
		return err
	}
	verifySpan.End()

	// Phase 3: fill verified blocks, exhaustively measure the rest.
	_, fillSpan := trace.Start(ctx, "infer.fill")
	var wave3 []ctxPair
	for _, b := range blocks {
		rep := res.RawTable[b.pairs[b.probeIdx[0]].x][b.pairs[b.probeIdx[0]].y]
		agree := true
		for _, pi := range b.probeIdx[1:] {
			if res.RawTable[b.pairs[pi].x][b.pairs[pi].y] != rep {
				agree = false
				break
			}
		}
		if !agree {
			res.FallbackBlocks++
			for _, p := range b.pairs {
				if res.RawTable[p.x][p.y] == 0 {
					wave3 = append(wave3, p)
				}
			}
			continue
		}
		for _, p := range b.pairs {
			if res.RawTable[p.x][p.y] == 0 {
				res.RawTable[p.x][p.y] = rep
				res.RawTable[p.y][p.x] = rep
				res.FilledPairs++
			}
		}
	}
	fillSpan.SetInt("filled", int64(res.FilledPairs))
	fillSpan.SetInt("fallback_blocks", int64(res.FallbackBlocks))
	if err := measure(wave3); err != nil {
		fillSpan.SetError(err)
		fillSpan.End()
		return err
	}
	fillSpan.End()

	// Every off-diagonal entry must now be measured or filled.
	for x := 0; x < n-1; x++ {
		for y := x + 1; y < n; y++ {
			if res.RawTable[x][y] == 0 {
				return fmt.Errorf("mctopalg: internal error: sampled measurement left pair (%d,%d) unset", x, y)
			}
		}
	}
	return nil
}

// probeIndices returns the verification probes of a block: its first and
// last pair (the corners of the sorted order) plus deterministic seeded
// interior picks, v+1 indices in total, ascending. The selection is a pure
// function of the block's pairs, so it is independent of measurement order
// and parallelism.
func probeIndices(bp []ctxPair, v int) []int {
	idx := []int{0, len(bp) - 1}
	h := uint64(bp[0].x)<<32 | uint64(bp[0].y)
	for len(idx) < v+1 && len(idx) < len(bp) {
		h = splitmix64(h)
		cand := int(h % uint64(len(bp)))
		if !slices.Contains(idx, cand) {
			idx = append(idx, cand)
		}
	}
	sort.Ints(idx)
	return idx
}

// splitmix64 is the SplitMix64 mixing function (public domain; same stream
// derivation the simulator uses for per-pair noise seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d49b133aa8ef4b
	return z ^ (z >> 31)
}
