package taskmap

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	topoCache = map[string]*topo.Topology{}
	topoMu    sync.Mutex
)

// enriched infers and enriches a platform's topology (cached per
// platform: mappings never mutate it).
func enriched(t *testing.T, p *sim.Platform) *topo.Topology {
	t.Helper()
	topoMu.Lock()
	defer topoMu.Unlock()
	if tp, ok := topoCache[p.Name]; ok {
		return tp
	}
	m, err := machine.NewSim(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	o := mctopalg.DefaultOptions()
	o.Reps = 51
	res, err := mctopalg.Infer(m, o)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := plugins.Enrich(m, res.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	topoCache[p.Name] = tp
	return tp
}

// testCtxs picks a small deterministic candidate set spanning the
// topology — first context, a near neighbor, mid (usually cross-socket),
// and last — so brute force stays 4^8 at most.
func testCtxs(tp *topo.Topology) []int {
	n := tp.NumHWContexts()
	ctxs := []int{0}
	for _, c := range []int{1, n / 2, n - 1} {
		if c > 0 && c < n && c != ctxs[len(ctxs)-1] {
			ctxs = append(ctxs, c)
		}
	}
	return ctxs
}

// fingerprint serializes a mapping for byte-stability comparison.
func fingerprint(m *Mapping) string {
	return fmt.Sprintf("%s|%x|%d|%v", m.Algo(), m.DAGHash(), m.Cost(), m.Assignment())
}

// TestGreedyWithinGapOfBrute is the optimality-gap property test: on all
// five golden platforms, for a batch of seeded random DAGs of at most 8
// nodes, brute ≤ greedy ≤ 1.5·brute, refinement never hurts, and every
// result is stable across repeated runs.
func TestGreedyWithinGapOfBrute(t *testing.T) {
	ctx := context.Background()
	for _, p := range sim.Platforms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tp := enriched(t, p)
			ctxs := testCtxs(tp)
			for seed := uint64(1); seed <= 10; seed++ {
				d := graph.GenTaskDAG(graph.DAGParams{Layers: 4, Width: 2}, seed)
				if len(d.Nodes) > 8 {
					t.Fatalf("seed %d: generator exceeded 8 nodes (%d)", seed, len(d.Nodes))
				}
				opt := Options{Ctxs: ctxs}
				brute, err := BruteForce(ctx, tp, d, opt)
				if err != nil {
					t.Fatalf("seed %d: brute: %v", seed, err)
				}
				g, err := Map(ctx, tp, d, opt)
				if err != nil {
					t.Fatalf("seed %d: greedy: %v", seed, err)
				}
				if g.Cost() < brute.Cost() {
					t.Fatalf("seed %d: greedy %d beat exhaustive brute %d — cost models diverge",
						seed, g.Cost(), brute.Cost())
				}
				if g.Cost()*2 > brute.Cost()*3 { // greedy > 1.5×brute
					t.Errorf("seed %d: greedy %d exceeds 1.5x brute %d", seed, g.Cost(), brute.Cost())
				}
				r, err := Map(ctx, tp, d, Options{Ctxs: ctxs, RefineBudget: 2000})
				if err != nil {
					t.Fatalf("seed %d: refine: %v", seed, err)
				}
				if r.Cost() > g.Cost() {
					t.Errorf("seed %d: refinement worsened cost %d -> %d", seed, g.Cost(), r.Cost())
				}
				if r.Cost() < brute.Cost() {
					t.Fatalf("seed %d: refined %d beat brute %d", seed, r.Cost(), brute.Cost())
				}
				// Byte-stability: a second run must reproduce each result
				// exactly.
				g2, _ := Map(ctx, tp, d, opt)
				r2, _ := Map(ctx, tp, d, Options{Ctxs: ctxs, RefineBudget: 2000})
				if fingerprint(g) != fingerprint(g2) || fingerprint(r) != fingerprint(r2) {
					t.Fatalf("seed %d: mapping not byte-stable", seed)
				}
				// The recorded cost must be the canonical Estimate of the
				// assignment — never a private metric.
				for _, m := range []*Mapping{brute, g, r} {
					est, err := Estimate(tp, d, m.Assignment())
					if err != nil {
						t.Fatal(err)
					}
					if est != m.Cost() {
						t.Fatalf("seed %d: %s cost %d != Estimate %d", seed, m.Algo(), m.Cost(), est)
					}
				}
			}
		})
	}
}

// TestExactOnChains: on a pure chain the optimum is co-location (cost =
// total work) and greedy must find it on every platform.
func TestExactOnChains(t *testing.T) {
	ctx := context.Background()
	d := &graph.TaskDAG{Name: "chain8"}
	for i := 0; i < 8; i++ {
		d.Nodes = append(d.Nodes, graph.TaskNode{ID: i, Work: int64(100 * (i + 1))})
		if i > 0 {
			d.Edges = append(d.Edges, graph.TaskEdge{From: i - 1, To: i, Volume: 1 << 14})
		}
	}
	for _, p := range sim.Platforms() {
		tp := enriched(t, p)
		opt := Options{Ctxs: testCtxs(tp)}
		brute, err := BruteForce(ctx, tp, d, opt)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Map(ctx, tp, d, opt)
		if err != nil {
			t.Fatal(err)
		}
		if g.Cost() != brute.Cost() {
			t.Errorf("%s: chain greedy %d != brute %d", p.Name, g.Cost(), brute.Cost())
		}
		if g.Cost() != d.TotalWork() {
			t.Errorf("%s: chain cost %d != total work %d (should co-locate)", p.Name, g.Cost(), d.TotalWork())
		}
	}
}

// TestExactOnIndependent: with as many candidate contexts as (edge-free)
// tasks, the optimum is one task per context — makespan = max work — and
// greedy must match brute exactly.
func TestExactOnIndependent(t *testing.T) {
	ctx := context.Background()
	d := &graph.TaskDAG{Name: "indep4"}
	for i, w := range []int64{700, 400, 900, 300} {
		d.Nodes = append(d.Nodes, graph.TaskNode{ID: i, Work: w})
	}
	for _, p := range sim.Platforms() {
		tp := enriched(t, p)
		ctxs := testCtxs(tp)
		if len(ctxs) < len(d.Nodes) {
			t.Fatalf("%s: need %d candidate ctxs, have %d", p.Name, len(d.Nodes), len(ctxs))
		}
		opt := Options{Ctxs: ctxs}
		brute, err := BruteForce(ctx, tp, d, opt)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Map(ctx, tp, d, opt)
		if err != nil {
			t.Fatal(err)
		}
		if g.Cost() != brute.Cost() || g.Cost() != 900 {
			t.Errorf("%s: independent greedy %d, brute %d, want 900", p.Name, g.Cost(), brute.Cost())
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	d := graph.GenTaskDAG(graph.DAGParams{}, 1)
	if _, err := Estimate(tp, d, make([]int, len(d.Nodes)+1)); err == nil {
		t.Error("Estimate accepted a wrong-length assignment")
	}
	bad := make([]int, len(d.Nodes))
	bad[0] = tp.NumHWContexts()
	if _, err := Estimate(tp, d, bad); err == nil {
		t.Error("Estimate accepted an out-of-range context")
	}
	if _, err := Map(context.Background(), tp, d, Options{Ctxs: []int{0, 0}}); err == nil {
		t.Error("Map accepted duplicate candidate contexts")
	}
	if _, err := Map(context.Background(), tp, d, Options{Ctxs: []int{-1}}); err == nil {
		t.Error("Map accepted a negative candidate context")
	}
}

func TestBruteForceBudget(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	d := graph.GenTaskDAG(graph.DAGParams{Layers: 6, Width: 4, MinWork: 1}, 3)
	if len(d.Nodes) < 12 {
		t.Skip("generator produced a small DAG") // params make this unreachable
	}
	_, err := BruteForce(context.Background(), tp, d, Options{})
	if err == nil {
		t.Fatal("BruteForce accepted a search space beyond its budget")
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	d := graph.GenTaskDAG(graph.DAGParams{}, 9)
	m, err := Map(context.Background(), tp, d, Options{RefineBudget: 500})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reconstruct(tp, m.DAGName(), m.DAGHash(), m.NumNodes(), m.NumEdges(), m.Algo(), m.Cost(), m.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(r) != fingerprint(m) {
		t.Fatalf("reconstructed mapping differs: %s vs %s", fingerprint(r), fingerprint(m))
	}
	if _, err := Reconstruct(tp, "", 0, 2, 0, "greedy", 1, []int{0}); err == nil {
		t.Error("Reconstruct accepted a wrong-length assignment")
	}
	if _, err := Reconstruct(tp, "", 0, 1, 0, "greedy", 1, []int{tp.NumHWContexts()}); err == nil {
		t.Error("Reconstruct accepted an out-of-range context")
	}
	if _, err := Reconstruct(tp, "", 0, 1, 0, "greedy", -1, []int{0}); err == nil {
		t.Error("Reconstruct accepted a negative cost")
	}
}

func TestMapCancellation(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	d := graph.GenTaskDAG(graph.DAGParams{Layers: 5, Width: 4}, 2)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map(cctx, tp, d, Options{RefineBudget: 1 << 20}); err == nil {
		t.Error("Map with a huge refine budget ignored cancellation")
	}
	if _, err := BruteForce(cctx, tp, graph.GenTaskDAG(graph.DAGParams{Layers: 4, Width: 2}, 1),
		Options{Ctxs: testCtxs(tp)}); err == nil {
		t.Error("BruteForce ignored cancellation")
	}
}

func BenchmarkMapDAG_Greedy(b *testing.B) {
	tp := benchTopo(b)
	d := graph.GenTaskDAG(graph.DAGParams{Layers: 6, Width: 6}, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), tp, d, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapDAG_Refine(b *testing.B) {
	tp := benchTopo(b)
	d := graph.GenTaskDAG(graph.DAGParams{Layers: 6, Width: 6}, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), tp, d, Options{RefineBudget: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapDAG_Estimate(b *testing.B) {
	tp := benchTopo(b)
	d := graph.GenTaskDAG(graph.DAGParams{Layers: 6, Width: 6}, 11)
	m, err := Map(context.Background(), tp, d, Options{})
	if err != nil {
		b.Fatal(err)
	}
	assign := m.Assignment()
	s, err := newSim(tp, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cost(assign)
	}
}

func benchTopo(b *testing.B) *topo.Topology {
	b.Helper()
	topoMu.Lock()
	defer topoMu.Unlock()
	if tp, ok := topoCache["bench-ivy"]; ok {
		return tp
	}
	m, err := machine.NewSim(sim.Ivy(), 21)
	if err != nil {
		b.Fatal(err)
	}
	o := mctopalg.DefaultOptions()
	o.Reps = 51
	res, err := mctopalg.Infer(m, o)
	if err != nil {
		b.Fatal(err)
	}
	tp, err := plugins.Enrich(m, res.Topology, nil)
	if err != nil {
		b.Fatal(err)
	}
	topoCache["bench-ivy"] = tp
	return tp
}
