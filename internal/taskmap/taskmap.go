// Package taskmap maps weighted task DAGs onto hardware contexts of an
// MCTOP topology — the AMTHA direction (De Giusti et al.): node weights
// are compute cycles, edge weights are communication volumes in bytes,
// and the mapper minimizes estimated completion time under the
// topology's O(1) ctx×ctx latency index.
//
// The engine is three layers, all deterministic for fixed inputs:
//
//   - Estimate: a list-scheduling simulator that prices an assignment —
//     tasks execute in the DAG's canonical topological order, an edge
//     crossing contexts costs ceil(volume/64) cache-line transfers at the
//     measured pairwise latency, and the cost is the makespan in cycles.
//   - Greedy (AMTHA-style): ready tasks picked by priority = compute
//     weight + pending communication, each assigned to the context that
//     finishes it earliest; ties break to the lowest task then context ID.
//   - Refine: a bounded-budget hill-climb over single-task moves and
//     pairwise swaps, strict improvements only.
//
// BruteForce is the exhaustive reference the property tests compare
// against. Reconstruct rebuilds a Mapping from persisted fields (spool
// sidecars, /v1/export bodies) without re-running the mapper.
package taskmap

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/topo"
)

// CacheLine is the transfer granularity of the cost model: an edge of V
// bytes between contexts x≠y costs ceil(V/CacheLine)·GetLatency(x,y)
// cycles, zero when co-located.
const CacheLine = 64

// Options tunes a mapping run.
type Options struct {
	// RefineBudget bounds the refinement pass: the maximum number of
	// candidate assignments the hill-climb may price. 0 disables
	// refinement (pure greedy).
	RefineBudget int
	// Ctxs restricts the candidate hardware contexts; nil means every
	// context of the topology. Must be duplicate-free and in range.
	Ctxs []int
}

// Mapping is a task→context assignment with its priced cost. Mappings are
// immutable once built and safe for concurrent use.
type Mapping struct {
	t      *topo.Topology
	name   string
	hash   uint64 // canonical DAG hash (graph.TaskDAG.Hash)
	nodes  int
	edges  int
	algo   string
	cost   int64
	assign []int
}

// Topology returns the topology the mapping was computed against.
func (m *Mapping) Topology() *topo.Topology { return m.t }

// DAGName returns the (non-canonical) name of the mapped DAG, if any.
func (m *Mapping) DAGName() string { return m.name }

// DAGHash returns the canonical hash of the mapped DAG.
func (m *Mapping) DAGHash() uint64 { return m.hash }

// NumNodes returns the mapped DAG's node count.
func (m *Mapping) NumNodes() int { return m.nodes }

// NumEdges returns the mapped DAG's edge count.
func (m *Mapping) NumEdges() int { return m.edges }

// Algo names the algorithm that produced the assignment.
func (m *Mapping) Algo() string { return m.algo }

// Cost returns the estimated completion time in cycles.
func (m *Mapping) Cost() int64 { return m.cost }

// Assignment returns a copy of the task→context assignment, indexed by
// task ID.
func (m *Mapping) Assignment() []int {
	return append([]int(nil), m.assign...)
}

// pricer prices assignments for one (topology, DAG) pair. Building it once
// amortizes the Kahn order and predecessor index across the thousands of
// Estimate calls a refinement pass or brute-force sweep makes.
type pricer struct {
	t      *topo.Topology
	d      *graph.TaskDAG
	order  []int   // canonical topological order
	preds  [][]int // per node: incoming edge indexes
	lines  []int64 // per edge: ceil(volume/CacheLine)
	finish []int64 // scratch, indexed by node
	free   []int64 // scratch, indexed by context
}

func newSim(t *topo.Topology, d *graph.TaskDAG) (*pricer, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	lines := make([]int64, len(d.Edges))
	for i, e := range d.Edges {
		lines[i] = (e.Volume + CacheLine - 1) / CacheLine
	}
	return &pricer{
		t:      t,
		d:      d,
		order:  order,
		preds:  d.Preds(),
		lines:  lines,
		finish: make([]int64, len(d.Nodes)),
		free:   make([]int64, t.NumHWContexts()),
	}, nil
}

// cost prices an assignment: tasks run in canonical topological order,
// each starting at max(its context's free time, latest predecessor data
// arrival) where data from a different context arrives comm-cost cycles
// after the predecessor finishes. Returns the makespan.
func (s *pricer) cost(assign []int) int64 {
	for i := range s.free {
		s.free[i] = 0
	}
	var makespan int64
	for _, v := range s.order {
		c := assign[v]
		start := s.free[c]
		for _, ei := range s.preds[v] {
			e := s.d.Edges[ei]
			arrive := s.finish[e.From]
			if cu := assign[e.From]; cu != c {
				arrive += s.lines[ei] * s.t.GetLatency(cu, c)
			}
			if arrive > start {
				start = arrive
			}
		}
		fin := start + s.d.Nodes[v].Work
		s.finish[v] = fin
		s.free[c] = fin
		if fin > makespan {
			makespan = fin
		}
	}
	return makespan
}

// Estimate prices an assignment for the given topology and DAG under the
// canonical cost model. Deterministic: same inputs, same cost, on every
// platform.
func Estimate(t *topo.Topology, d *graph.TaskDAG, assign []int) (int64, error) {
	if err := checkAssign(t, d, assign); err != nil {
		return 0, err
	}
	s, err := newSim(t, d)
	if err != nil {
		return 0, err
	}
	return s.cost(assign), nil
}

func checkAssign(t *topo.Topology, d *graph.TaskDAG, assign []int) error {
	if len(assign) != len(d.Nodes) {
		return fmt.Errorf("taskmap: assignment has %d entries for %d tasks", len(assign), len(d.Nodes))
	}
	n := t.NumHWContexts()
	for v, c := range assign {
		if c < 0 || c >= n {
			return fmt.Errorf("taskmap: task %d assigned to context %d of %d", v, c, n)
		}
	}
	return nil
}

// candidates resolves Options.Ctxs to a sorted duplicate-free slice.
func candidates(t *topo.Topology, opt Options) ([]int, error) {
	n := t.NumHWContexts()
	if len(opt.Ctxs) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	ctxs := append([]int(nil), opt.Ctxs...)
	sort.Ints(ctxs)
	for i, c := range ctxs {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("taskmap: candidate context %d out of range [0,%d)", c, n)
		}
		if i > 0 && ctxs[i-1] == c {
			return nil, fmt.Errorf("taskmap: duplicate candidate context %d", c)
		}
	}
	return ctxs, nil
}

// priorities computes the AMTHA-style list-scheduling priority per task:
// its compute weight plus the communication it still owes its successors
// (in cache-line·max-latency cycles, so compute and comm are commensurate).
func priorities(t *topo.Topology, d *graph.TaskDAG) []int64 {
	maxLat := t.MaxLatency()
	if maxLat <= 0 {
		maxLat = 1
	}
	pri := make([]int64, len(d.Nodes))
	for i, n := range d.Nodes {
		pri[i] = n.Work
	}
	for _, e := range d.Edges {
		pri[e.From] += (e.Volume + CacheLine - 1) / CacheLine * maxLat
	}
	return pri
}

// greedy runs the list scheduler over the candidate contexts and returns
// the assignment. Decisions replay the same simulation Estimate uses, but
// in priority order; the returned assignment is finally priced with the
// canonical Estimate so greedy, refined and brute-force costs are always
// comparable.
func greedy(t *topo.Topology, d *graph.TaskDAG, ctxs []int) []int {
	n := len(d.Nodes)
	pri := priorities(t, d)
	indeg := make([]int, n)
	for _, e := range d.Edges {
		indeg[e.To]++
	}
	preds := d.Preds()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	finish := make([]int64, n)
	free := make([]int64, t.NumHWContexts())
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	for len(ready) > 0 {
		// Highest priority first, ties to the lowest task ID.
		best := 0
		for i := 1; i < len(ready); i++ {
			v, b := ready[i], ready[best]
			if pri[v] > pri[b] || (pri[v] == pri[b] && v < b) {
				best = i
			}
		}
		v := ready[best]
		ready = append(ready[:best], ready[best+1:]...)

		// Earliest-finish context, ties to the lowest context ID.
		bestCtx, bestFin := -1, int64(0)
		for _, c := range ctxs {
			start := free[c]
			for _, ei := range preds[v] {
				e := d.Edges[ei]
				arrive := finish[e.From]
				if cu := assign[e.From]; cu != c {
					arrive += (e.Volume + CacheLine - 1) / CacheLine * t.GetLatency(cu, c)
				}
				if arrive > start {
					start = arrive
				}
			}
			fin := start + d.Nodes[v].Work
			if bestCtx < 0 || fin < bestFin {
				bestCtx, bestFin = c, fin
			}
		}
		assign[v] = bestCtx
		finish[v] = bestFin
		free[bestCtx] = bestFin

		for _, e := range d.Edges {
			if e.From == v {
				if indeg[e.To]--; indeg[e.To] == 0 {
					ready = append(ready, e.To)
				}
			}
		}
	}
	return assign
}

// Map computes a task→context mapping for the DAG on the topology:
// greedy list scheduling, then (with a positive RefineBudget) a bounded
// hill-climb. The result is byte-stable for fixed inputs. ctx cancels
// between refinement rounds.
func Map(ctx context.Context, t *topo.Topology, d *graph.TaskDAG, opt Options) (*Mapping, error) {
	if t == nil {
		return nil, fmt.Errorf("taskmap: nil topology")
	}
	s, err := newSim(t, d)
	if err != nil {
		return nil, err
	}
	ctxs, err := candidates(t, opt)
	if err != nil {
		return nil, err
	}
	assign := greedy(t, d, ctxs)
	cost := s.cost(assign)
	// Earliest-finish list scheduling is myopic about downstream
	// communication: on comm-dominant DAGs it spreads tasks whose children
	// then pay cross-context transfers. Serial execution on one context
	// always prices at exactly the total work, so keep whichever the
	// canonical model says is cheaper — that bounds greedy at 1x serial
	// while preserving EFT's wins on compute-parallel DAGs.
	serial := make([]int, len(d.Nodes))
	for i := range serial {
		serial[i] = ctxs[0]
	}
	if sc := s.cost(serial); sc < cost {
		assign, cost = serial, sc
	}
	algo := "greedy"
	if opt.RefineBudget > 0 {
		assign, cost, err = refine(ctx, s, ctxs, assign, cost, opt.RefineBudget)
		if err != nil {
			return nil, err
		}
		algo = "greedy+refine"
	}
	return &Mapping{
		t:      t,
		name:   d.Name,
		hash:   d.Hash(),
		nodes:  len(d.Nodes),
		edges:  len(d.Edges),
		algo:   algo,
		cost:   cost,
		assign: assign,
	}, nil
}

// Reconstruct rebuilds a Mapping from persisted fields — the spool
// sidecar / export interchange path. The recorded cost is trusted, not
// recomputed (the origin priced it; edges must serve it byte-identically).
func Reconstruct(t *topo.Topology, name string, hash uint64, nodes, edges int, algo string, cost int64, assign []int) (*Mapping, error) {
	if t == nil {
		return nil, fmt.Errorf("taskmap: nil topology")
	}
	if nodes <= 0 || len(assign) != nodes {
		return nil, fmt.Errorf("taskmap: assignment has %d entries for %d tasks", len(assign), nodes)
	}
	if edges < 0 {
		return nil, fmt.Errorf("taskmap: negative edge count %d", edges)
	}
	if cost < 0 {
		return nil, fmt.Errorf("taskmap: negative cost %d", cost)
	}
	n := t.NumHWContexts()
	for v, c := range assign {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("taskmap: task %d assigned to context %d of %d", v, c, n)
		}
	}
	return &Mapping{
		t:      t,
		name:   name,
		hash:   hash,
		nodes:  nodes,
		edges:  edges,
		algo:   algo,
		cost:   cost,
		assign: append([]int(nil), assign...),
	}, nil
}
