package taskmap

import "context"

// refine hill-climbs the assignment: rounds of single-task moves then
// pairwise swaps, scanned in ascending (task, context) order, accepting
// strict improvements immediately. budget bounds the total number of
// candidate assignments priced; the climb also stops at a local optimum
// (a full round with no improvement). Fully deterministic.
func refine(ctx context.Context, s *pricer, ctxs []int, assign []int, cost int64, budget int) ([]int, int64, error) {
	cur := append([]int(nil), assign...)
	n := len(cur)
	for budget > 0 {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		improved := false

		// Single-task moves.
	moves:
		for v := 0; v < n; v++ {
			for _, c := range ctxs {
				if c == cur[v] {
					continue
				}
				if budget <= 0 {
					break moves
				}
				budget--
				old := cur[v]
				cur[v] = c
				if nc := s.cost(cur); nc < cost {
					cost = nc
					improved = true
				} else {
					cur[v] = old
				}
			}
		}

		// Pairwise swaps between tasks on different contexts.
	swaps:
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if cur[a] == cur[b] {
					continue
				}
				if budget <= 0 {
					break swaps
				}
				budget--
				cur[a], cur[b] = cur[b], cur[a]
				if nc := s.cost(cur); nc < cost {
					cost = nc
					improved = true
				} else {
					cur[a], cur[b] = cur[b], cur[a]
				}
			}
		}

		if !improved {
			break
		}
	}
	return cur, cost, nil
}
