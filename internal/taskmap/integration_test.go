package taskmap

import (
	"context"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/place"
	"repro/internal/sim"
)

// TestBeatsPlacePoliciesOnCommBoundDAG is the tentpole integration test:
// on the comm-bound shuffle DAG exported from the Metis Word Count model,
// the taskmap assignment must achieve a strictly lower estimated
// completion time than round-robining the tasks over ANY builtin place
// policy's contexts. Latency-only placement picks good contexts but still
// spreads the shuffle across them; the mapper sees the edge volumes and
// co-locates the comm-heavy subgraphs.
func TestBeatsPlacePoliciesOnCommBoundDAG(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	d, err := mapreduce.ExportDAG(mapreduce.WLWordCount, tp, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(context.Background(), tp, d, Options{RefineBudget: 5000})
	if err != nil {
		t.Fatal(err)
	}

	compared := 0
	for _, pol := range place.Policies() {
		pl, err := place.New(tp, pol, place.Options{NThreads: len(d.Nodes)})
		if err != nil {
			// Policies that cannot produce this thread count are not
			// placement competitors.
			continue
		}
		ctxs := pl.Contexts()
		if len(ctxs) == 0 {
			continue
		}
		valid := true
		for _, c := range ctxs {
			if c < 0 || c >= tp.NumHWContexts() {
				valid = false // None leaves threads unpinned (-1 slots)
				break
			}
		}
		if !valid {
			continue
		}
		assign := make([]int, len(d.Nodes))
		for i := range assign {
			assign[i] = ctxs[i%len(ctxs)]
		}
		cost, err := Estimate(tp, d, assign)
		if err != nil {
			t.Fatalf("%s: %v", pl.PolicyName(), err)
		}
		compared++
		if m.Cost() >= cost {
			t.Errorf("taskmap cost %d does not beat policy %s cost %d", m.Cost(), pl.PolicyName(), cost)
		}
	}
	if compared < 8 {
		t.Fatalf("only compared against %d policies, want at least 8", compared)
	}
}
