package taskmap

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/topo"
)

// bruteBudget caps the assignments BruteForce may enumerate
// (len(ctxs)^nodes). ~4M keeps the reference mapper test-speed even on
// 8-node DAGs over 4 candidate contexts.
const bruteBudget = 1 << 22

// BruteForce enumerates every assignment of tasks to the candidate
// contexts and returns the cheapest under Estimate — the optimality
// reference for the property tests. Errors when the search space exceeds
// bruteBudget. Ties resolve to the lexicographically smallest assignment
// (in candidate order), so the result is deterministic. ctx cancels the
// sweep between assignments.
func BruteForce(ctx context.Context, t *topo.Topology, d *graph.TaskDAG, opt Options) (*Mapping, error) {
	if t == nil {
		return nil, fmt.Errorf("taskmap: nil topology")
	}
	s, err := newSim(t, d)
	if err != nil {
		return nil, err
	}
	ctxs, err := candidates(t, opt)
	if err != nil {
		return nil, err
	}
	n := len(d.Nodes)
	total := 1
	for i := 0; i < n; i++ {
		total *= len(ctxs)
		if total > bruteBudget {
			return nil, fmt.Errorf("taskmap: brute force over %d^%d assignments exceeds budget %d", len(ctxs), n, bruteBudget)
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	idx := make([]int, n)    // per task: index into ctxs
	assign := make([]int, n) // per task: context ID
	for v := range assign {
		assign[v] = ctxs[0]
	}
	best := append([]int(nil), assign...)
	bestCost := s.cost(assign)
	for i := 1; i < total; i++ {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Odometer increment over candidate indexes: enumeration is
		// lexicographic, so the first minimum seen is the smallest tie.
		for p := n - 1; p >= 0; p-- {
			idx[p]++
			if idx[p] < len(ctxs) {
				assign[p] = ctxs[idx[p]]
				break
			}
			idx[p] = 0
			assign[p] = ctxs[0]
		}
		if c := s.cost(assign); c < bestCost {
			bestCost = c
			copy(best, assign)
		}
	}
	return &Mapping{
		t:      t,
		name:   d.Name,
		hash:   d.Hash(),
		nodes:  n,
		edges:  len(d.Edges),
		algo:   "brute",
		cost:   bestCost,
		assign: best,
	}, nil
}
