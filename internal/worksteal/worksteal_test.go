package worksteal

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	topoOnce sync.Once
	ivyTopo  *topo.Topology
)

func ivy(t *testing.T) *topo.Topology {
	t.Helper()
	topoOnce.Do(func() {
		m, err := machine.NewSim(sim.Ivy(), 61)
		if err != nil {
			t.Fatal(err)
		}
		o := mctopalg.DefaultOptions()
		o.Reps = 51
		res, err := mctopalg.Infer(m, o)
		if err != nil {
			t.Fatal(err)
		}
		ivyTopo, err = plugins.Enrich(m, res.Topology, nil)
		if err != nil {
			t.Fatal(err)
		}
	})
	return ivyTopo
}

func pool(t *testing.T, n int) *Pool {
	t.Helper()
	tp := ivy(t)
	pl, err := place.New(tp, place.ConHWC, place.Options{NThreads: n})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(tp, pl)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestVictimOrderLatency: worker 0 (ctx 0) must prefer its SMT sibling
// (ctx 20, slot 1 under CON_HWC) and only then other cores; cross-socket
// victims come last.
func TestVictimOrderLatency(t *testing.T) {
	tp := ivy(t)
	pl, _ := place.New(tp, place.ConHWC, place.Options{NThreads: 30})
	p, _ := New(tp, pl)
	ctxs := pl.Contexts()
	order := p.VictimOrder(0)
	if len(order) != 29 {
		t.Fatalf("victim count = %d", len(order))
	}
	// First victim shares the core with worker 0.
	if tp.Context(ctxs[order[0]]).Core != tp.Context(ctxs[0]).Core {
		t.Errorf("first victim ctx %d not the SMT sibling", ctxs[order[0]])
	}
	// All same-socket victims precede all cross-socket victims.
	crossSeen := false
	for _, v := range order {
		cross := tp.Context(ctxs[v]).Socket != tp.Context(ctxs[0]).Socket
		if cross {
			crossSeen = true
		} else if crossSeen {
			t.Fatalf("same-socket victim after cross-socket one: %v", order)
		}
	}
}

func TestAllTasksRun(t *testing.T) {
	p := pool(t, 8)
	var counter int64
	var tasks []Task
	for i := 0; i < 5000; i++ {
		tasks = append(tasks, func() { atomic.AddInt64(&counter, 1) })
	}
	if err := p.Run(p.Distribute(tasks)); err != nil {
		t.Fatal(err)
	}
	if counter != 5000 {
		t.Errorf("ran %d tasks, want 5000", counter)
	}
}

// TestImbalanceTriggersSteals: all work seeded into one worker forces the
// others to steal, and the closest victims serve the most thieves.
func TestImbalanceTriggersSteals(t *testing.T) {
	p := pool(t, 8)
	var counter int64
	initial := make([][]Task, p.NumWorkers())
	for i := 0; i < 4000; i++ {
		initial[0] = append(initial[0], func() {
			atomic.AddInt64(&counter, 1)
			// Enough work per task that thieves get a chance.
			s := 0
			for k := 0; k < 2000; k++ {
				s += k
			}
			_ = s
		})
	}
	if err := p.Run(initial); err != nil {
		t.Fatal(err)
	}
	if counter != 4000 {
		t.Fatalf("ran %d tasks", counter)
	}
	if p.TotalSteals() == 0 {
		t.Error("expected steals under total imbalance")
	}
	// Every successful steal by a non-owner must have victim 0 (the only
	// worker that ever had work).
	for w := 1; w < p.NumWorkers(); w++ {
		for v, c := range p.Steals[w] {
			if c > 0 && v != 0 {
				t.Errorf("worker %d stole %d tasks from %d (only 0 had work)", w, c, v)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	p := pool(t, 4)
	if err := p.Run(make([][]Task, 2)); err == nil {
		t.Error("mismatched initial lists should fail")
	}
	tp := ivy(t)
	pl, _ := place.New(tp, place.None, place.Options{NThreads: 0})
	empty, _ := place.New(tp, place.ConHWC, place.Options{NThreads: 1})
	if _, err := New(tp, empty); err != nil {
		t.Errorf("single worker pool: %v", err)
	}
	_ = pl
}

func TestUnpinnedPlacement(t *testing.T) {
	tp := ivy(t)
	pl, _ := place.New(tp, place.None, place.Options{NThreads: 4})
	p, err := New(tp, pl)
	if err != nil {
		t.Fatal(err)
	}
	var counter int64
	var tasks []Task
	for i := 0; i < 100; i++ {
		tasks = append(tasks, func() { atomic.AddInt64(&counter, 1) })
	}
	if err := p.Run(p.Distribute(tasks)); err != nil {
		t.Fatal(err)
	}
	if counter != 100 {
		t.Errorf("ran %d", counter)
	}
}
