// Package worksteal implements the topology-aware work-stealing policy of
// Section 5 of the MCTOP paper: "if the local work queue is empty, steal
// from the queue of worker threads that are the closest in terms of
// latency; if unsuccessful, continue with the contexts that are the next
// closest."
//
// Victims are therefore ordered per worker by MCTOP's measured
// communication latencies — SMT sibling first, then the cores of the same
// socket, then ever more remote sockets.
package worksteal

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/place"
	"repro/internal/topo"
)

// Task is one unit of work.
type Task func()

// Pool is a work-stealing executor whose workers are pinned by an
// MCTOP-PLACE placement and steal in latency order.
type Pool struct {
	t       *topo.Topology
	ctxs    []int
	victims [][]int // per worker: other worker indices, closest first

	// Steals counts successful steals per (thief, victim) pair.
	Steals [][]int64
}

// New builds a pool with one worker per slot of the placement.
func New(t *topo.Topology, pl *place.Placement) (*Pool, error) {
	ctxs := pl.Contexts()
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("worksteal: empty placement")
	}
	p := &Pool{t: t, ctxs: ctxs}
	p.victims = make([][]int, len(ctxs))
	p.Steals = make([][]int64, len(ctxs))
	for w := range ctxs {
		p.victims[w] = victimOrder(t, ctxs, w)
		p.Steals[w] = make([]int64, len(ctxs))
	}
	return p, nil
}

// victimOrder returns the other workers ordered by communication latency
// from worker w (closest first); unpinned slots fall to the end in index
// order.
func victimOrder(t *topo.Topology, ctxs []int, w int) []int {
	type cand struct {
		idx int
		lat int64
	}
	var cs []cand
	for i, c := range ctxs {
		if i == w {
			continue
		}
		lat := int64(1 << 50)
		if ctxs[w] >= 0 && c >= 0 {
			lat = t.GetLatency(ctxs[w], c)
		}
		cs = append(cs, cand{i, lat})
	}
	// Insertion sort by (latency, index): tiny n, deterministic.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && (cs[j].lat < cs[j-1].lat ||
			(cs[j].lat == cs[j-1].lat && cs[j].idx < cs[j-1].idx)); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.idx
	}
	return out
}

// VictimOrder exposes worker w's steal order (worker indices).
func (p *Pool) VictimOrder(w int) []int {
	return append([]int(nil), p.victims[w]...)
}

// NumWorkers returns the pool size.
func (p *Pool) NumWorkers() int { return len(p.ctxs) }

// deque is a mutex-protected work queue: owner pops from the tail, thieves
// steal from the head.
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *deque) push(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) popTail() Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil
	}
	t := d.tasks[n-1]
	d.tasks = d.tasks[:n-1]
	return t
}

func (d *deque) stealHead() Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t
}

// Run executes all tasks. initial[w] lists the tasks seeded into worker
// w's deque (use Distribute for an even split). Run returns when every
// task has finished.
func (p *Pool) Run(initial [][]Task) error {
	if len(initial) != len(p.ctxs) {
		return fmt.Errorf("worksteal: %d task lists for %d workers", len(initial), len(p.ctxs))
	}
	deques := make([]*deque, len(p.ctxs))
	var remaining int64
	for w := range deques {
		deques[w] = &deque{}
		for _, t := range initial[w] {
			deques[w].push(t)
			remaining++
		}
	}
	var wg sync.WaitGroup
	for w := range deques {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for atomic.LoadInt64(&remaining) > 0 {
				if t := deques[w].popTail(); t != nil {
					t()
					atomic.AddInt64(&remaining, -1)
					continue
				}
				// Local queue empty: steal in latency order.
				stole := false
				for _, v := range p.victims[w] {
					if t := deques[v].stealHead(); t != nil {
						atomic.AddInt64(&p.Steals[w][v], 1)
						t()
						atomic.AddInt64(&remaining, -1)
						stole = true
						break
					}
				}
				if !stole {
					// Nothing to steal anywhere right now; if work is
					// still in flight elsewhere, yield and retry.
					if atomic.LoadInt64(&remaining) <= 0 {
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// Distribute splits tasks across the pool's workers round-robin.
func (p *Pool) Distribute(tasks []Task) [][]Task {
	out := make([][]Task, len(p.ctxs))
	for i, t := range tasks {
		w := i % len(p.ctxs)
		out[w] = append(out[w], t)
	}
	return out
}

// TotalSteals sums all successful steals.
func (p *Pool) TotalSteals() int64 {
	var sum int64
	for _, row := range p.Steals {
		for _, v := range row {
			sum += atomic.LoadInt64(&v)
		}
	}
	return sum
}
