package loadgen

// Chaos mode: the closed loop doubles as a correctness monitor. Every 200
// response is checked against a golden answer captured on first sighting
// (or seeded by a healthy pre-run sharing the ChaosState), so a daemon
// under fault injection is held to the serving contract — correct bytes
// or an honest error status, never silently corrupt data, and never a
// hang past the per-request budget. Topology requests switch to
// format=mctop so the comparison is on the exact description-file bytes
// the tiers shuttle around; placements compare the context assignment,
// keyed by (platform, seed, policy, n_threads) so the single, batch and
// streaming routes must all agree with each other.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
)

// ChaosState is the golden-answer store a chaos run validates against.
// Answers are recorded the first time a (platform, seed, ...) shape is
// seen and must match byte-for-byte (topologies) or context-for-context
// (placements) ever after. Share one state across runs — e.g. a healthy
// warmup run followed by a fault-injected run — to pin the goldens before
// any fault can fire. Safe for concurrent use.
type ChaosState struct {
	mu sync.Mutex
	// topo: "platform|seed" → the format=mctop response body.
	topo map[string][]byte
	// place: "platform|seed|policy|nthreads" → fmt.Sprint of the contexts.
	place map[string]string
	// mapg: "platform|seed" → fmt.Sprint of (assignment, cost). One golden
	// per pair is sound because the generator derives the DAG from the seed.
	mapg map[string]string
}

// NewChaosState returns an empty golden store.
func NewChaosState() *ChaosState {
	return &ChaosState{
		topo:  make(map[string][]byte),
		place: make(map[string]string),
		mapg:  make(map[string]string),
	}
}

// checkTopology records body as golden on first sighting and compares on
// every later one; false means corruption.
func (c *ChaosState) checkTopology(platform string, seed uint64, body []byte) bool {
	k := fmt.Sprintf("%s|%d", platform, seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	golden, ok := c.topo[k]
	if !ok {
		c.topo[k] = bytes.Clone(body)
		return true
	}
	return bytes.Equal(golden, body)
}

// checkPlace is checkTopology for one placement answer. Keying by the
// response's own (policy, n_threads) makes every route that can produce
// the placement — /v1/place, batch, stream — accountable to one golden.
func (c *ChaosState) checkPlace(platform string, seed uint64, policy string, nThreads int, ctxs []int) bool {
	k := fmt.Sprintf("%s|%d|%s|%d", platform, seed, policy, nThreads)
	v := fmt.Sprint(ctxs)
	c.mu.Lock()
	defer c.mu.Unlock()
	golden, ok := c.place[k]
	if !ok {
		c.place[k] = v
		return true
	}
	return golden == v
}

// checkMap is checkTopology for one mapping answer: the assignment and its
// priced cost must match the first-seen golden for (platform, seed).
func (c *ChaosState) checkMap(platform string, seed uint64, assign []int, cost int64) bool {
	k := fmt.Sprintf("%s|%d", platform, seed)
	v := fmt.Sprintf("%v@%d", assign, cost)
	c.mu.Lock()
	defer c.mu.Unlock()
	golden, ok := c.mapg[k]
	if !ok {
		c.mapg[k] = v
		return true
	}
	return golden == v
}

// chaosPlaceItem is the placement shape shared (modulo omitted fields) by
// the /v1/place response, the batch results array and the NDJSON stream
// lines — everything the golden comparison needs.
type chaosPlaceItem struct {
	Policy   string `json:"policy"`
	Error    string `json:"error"`
	NThreads int    `json:"n_threads"`
	Contexts []int  `json:"contexts"`
}

// verify checks one 200 response body against the goldens; false means
// the daemon served corrupt data. An undecodable 200 body is corruption
// by definition — the contract allows broken answers only behind an
// honest error status. Placement items carrying inline errors are honest
// refusals, not corruption.
func (c *ChaosState) verify(route, platform string, seed uint64, body []byte) bool {
	switch route {
	case RouteTopology:
		return c.checkTopology(platform, seed, body)
	case RoutePlace:
		var item chaosPlaceItem
		if err := json.Unmarshal(body, &item); err != nil {
			return false
		}
		return c.checkPlace(platform, seed, item.Policy, item.NThreads, item.Contexts)
	case RouteBatch:
		var resp struct {
			Results []chaosPlaceItem `json:"results"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			return false
		}
		for _, item := range resp.Results {
			if item.Error != "" {
				continue
			}
			if !c.checkPlace(platform, seed, item.Policy, item.NThreads, item.Contexts) {
				return false
			}
		}
		return true
	case RouteMap:
		var resp struct {
			Result *struct {
				Error      string `json:"error"`
				CostCycles int64  `json:"cost_cycles"`
				Assignment []int  `json:"assignment"`
			} `json:"result"`
		}
		if err := json.Unmarshal(body, &resp); err != nil || resp.Result == nil {
			return false
		}
		if resp.Result.Error != "" {
			return true // honest inline refusal, not corruption
		}
		return c.checkMap(platform, seed, resp.Result.Assignment, resp.Result.CostCycles)
	case RouteStream:
		for _, line := range bytes.Split(body, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var item chaosPlaceItem
			if err := json.Unmarshal(line, &item); err != nil {
				return false
			}
			if item.Error != "" {
				continue
			}
			if !c.checkPlace(platform, seed, item.Policy, item.NThreads, item.Contexts) {
				return false
			}
		}
		return true
	}
	return true
}
