// Package loadgen is a closed-loop load generator for mctopd: N workers
// each drive one request at a time against a target daemon (the next
// request is issued only after the previous response completes), so the
// offered load self-regulates to what the daemon sustains instead of
// piling an open-loop backlog onto its in-flight bound. The mix of routes
// (topology / place / batch / stream), the warm-seed pool and the cold-key
// ratio are configurable, and the run reports throughput and exact
// p50/p95/p99 latency per route plus SLO pass/fail.
//
// The same loop is both the `mctop-bench load` CLI and the integration
// test rig: cmd/mctopd's tests point it at an in-process httptest fleet
// and assert on the Report, so the harness that operators run against a
// deployment is the code path CI exercises on every change.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/trace"
)

// Route names the five request shapes the generator issues.
const (
	RouteTopology = "/v1/topology"
	RoutePlace    = "/v1/place"
	RouteBatch    = "/v1/place/batch"
	RouteStream   = "/v1/place/batch?stream=1"
	RouteMap      = "/v1/map"
)

// Mix weights the request shapes; a zero weight disables the shape. The
// zero Mix defaults to {Topology: 1, Place: 1}.
type Mix struct {
	Topology int
	Place    int
	MapDAG   int
	Batch    int
	Stream   int
}

func (m Mix) normalized() Mix {
	if m.Topology <= 0 && m.Place <= 0 && m.MapDAG <= 0 && m.Batch <= 0 && m.Stream <= 0 {
		return Mix{Topology: 1, Place: 1}
	}
	return m
}

func (m Mix) total() int { return m.Topology + m.Place + m.MapDAG + m.Batch + m.Stream }

// SLO bounds a run: a Report lists every violated bound in SLOFailures.
// Zero-valued fields are unchecked.
type SLO struct {
	// MaxErrorRate bounds errors/requests (transport failures and HTTP
	// status >= 400). Note the zero value means "unchecked"; pass a tiny
	// epsilon to demand zero errors.
	MaxErrorRate float64
	// P99 bounds the 99th-percentile latency per route (keys are the
	// Route constants); routes not listed are unchecked.
	P99 map[string]time.Duration
	// MinThroughput bounds the overall requests/second from below.
	MinThroughput float64
}

// Config parameterizes one run. Target is required; every other zero value
// has a usable default.
type Config struct {
	// Target is the daemon's base URL (e.g. "http://127.0.0.1:8077").
	Target string
	// Workers is the closed-loop concurrency (default 4).
	Workers int
	// Duration stops the run on the clock (default 10s); MaxRequests, when
	// > 0, stops it after that many requests, whichever comes first —
	// tests use MaxRequests for bounded, timing-independent runs.
	Duration    time.Duration
	MaxRequests int64
	// Warmup discards observations made before it elapses, so cold-start
	// inferences do not dominate the percentiles (default 0).
	Warmup time.Duration
	// Mix weights the request shapes (zero value: topology + place).
	Mix Mix
	// Platforms to query (default all five; pass explicit names to pin).
	Platforms []string
	// Reps is the inference repetitions parameter sent with every request
	// (0 = daemon default; tests pass small odd values to keep cold
	// inferences fast).
	Reps int
	// Sampling sends &sampling=1 with every request, driving the daemon's
	// sampled measurement mode — the knob for load-testing large gen:
	// platforms whose exhaustive cold inference would dominate the run.
	Sampling bool
	// WarmSeeds is the size of the warm seed pool: warm requests draw
	// seeds from [1, WarmSeeds], so after each (platform, seed) pair's
	// first inference every later request is a cache hit (default 2).
	WarmSeeds int
	// ColdRatio is the fraction of requests issued with a never-repeated
	// seed, forcing a miss through every tier (default 0).
	ColdRatio float64
	// Policies for place/batch/stream requests (default RR_CORE, RR_HWC).
	Policies []string
	// BatchSize is the number of {policy, threads} items per batch/stream
	// request (default 8).
	BatchSize int
	// MaxThreads bounds the random per-request thread count (default 16).
	MaxThreads int
	// Seed makes worker randomness reproducible (default 1).
	Seed int64
	// Client overrides the HTTP client (default: one with sane timeouts).
	Client *http.Client
	// SLO is checked into Report.SLOFailures after the run.
	SLO SLO
	// Chaos turns the loop into a correctness monitor (see ChaosState):
	// 200 bodies are verified against first-seen goldens, requests get a
	// per-request hang budget (ChaosTimeout, default 15s), and any corrupt
	// response or hang fails the run's SLO regardless of other bounds.
	// Honest error statuses are tolerated (bound them with MaxErrorRate).
	Chaos        bool
	ChaosTimeout time.Duration
	// ChaosState carries goldens across runs; nil gets a fresh store. Pass
	// the same state to a healthy run first to pin goldens before faults.
	ChaosState *ChaosState
	// Traces scrapes the target's /v1/debug/traces after the run and
	// aggregates per-span latency attribution into Report.Spans — where
	// the request time went (tier lookups, inference phases, spool and
	// remote I/O), not just that it was spent. Only meaningful against a
	// daemon running with -trace-sample > 0; scrape failures leave
	// Report.Spans empty rather than failing the run.
	Traces bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if len(c.Platforms) == 0 {
		c.Platforms = []string{"Ivy", "Westmere", "Haswell", "Opteron", "SPARC"}
	}
	if c.WarmSeeds <= 0 {
		c.WarmSeeds = 2
	}
	if len(c.Policies) == 0 {
		c.Policies = []string{"RR_CORE", "RR_HWC"}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	if c.ChaosTimeout <= 0 {
		c.ChaosTimeout = 15 * time.Second
	}
	if c.Chaos && c.ChaosState == nil {
		c.ChaosState = NewChaosState()
	}
	c.Mix = c.Mix.normalized()
	return c
}

// obs is one completed request's record.
type obs struct {
	route string
	dur   time.Duration
	err   bool
	// corrupt and hang are chaos-mode verdicts: a 200 whose body failed
	// golden verification, and a request that outlived the per-request
	// budget while the run was still live.
	corrupt bool
	hang    bool
}

// SpanStats is one span name's aggregate over every trace scraped from
// the target after a run — the per-operation latency attribution behind
// the route-level percentiles.
type SpanStats struct {
	Name   string        `json:"name"`
	Count  int64         `json:"count"`
	Errors int64         `json:"errors"`
	Mean   time.Duration `json:"mean"`
	Max    time.Duration `json:"max"`
}

// RouteStats is one route's share of a Report.
type RouteStats struct {
	Route    string        `json:"route"`
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"`
	Mean     time.Duration `json:"mean"`
	P50      time.Duration `json:"p50"`
	P95      time.Duration `json:"p95"`
	P99      time.Duration `json:"p99"`
	Max      time.Duration `json:"max"`
}

// Report is the outcome of one run.
type Report struct {
	Target     string        `json:"target"`
	Workers    int           `json:"workers"`
	Elapsed    time.Duration `json:"elapsed"`
	Requests   int64         `json:"requests"`
	Errors     int64         `json:"errors"`
	Throughput float64       `json:"throughput_rps"`
	Routes     []RouteStats  `json:"routes"`
	// Corrupt and Hangs are chaos-mode contract violations: 200 responses
	// whose bodies failed golden verification, and requests that outlived
	// the per-request budget. Either being nonzero fails the run.
	Corrupt int64 `json:"corrupt,omitempty"`
	Hangs   int64 `json:"hangs,omitempty"`
	// SLOFailures lists every violated SLO bound, empty on a pass.
	SLOFailures []string `json:"slo_failures,omitempty"`
	// Spans is the per-span latency attribution scraped from the target's
	// /v1/debug/traces (Config.Traces; empty when tracing is off).
	Spans []SpanStats `json:"spans,omitempty"`
}

// OK reports whether the run met every configured SLO bound.
func (r *Report) OK() bool { return len(r.SLOFailures) == 0 }

// Run drives the closed loop until the configured duration, request bound
// or ctx ends, then aggregates. The only error return is a config-level
// one (bad target); request failures are counted, not returned — a
// saturated daemon shedding load is data, not a harness failure.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: Config.Target is required")
	}
	if _, err := url.Parse(cfg.Target); err != nil {
		return nil, fmt.Errorf("loadgen: bad target: %w", err)
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var (
		issued   atomic.Int64 // requests started, for the MaxRequests bound
		coldSeed atomic.Uint64
		wg       sync.WaitGroup
		perW     = make([][]obs, cfg.Workers)
	)
	coldSeed.Store(1 << 32) // disjoint from any warm pool
	start := time.Now()
	warmUntil := start.Add(cfg.Warmup)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			for ctx.Err() == nil {
				if cfg.MaxRequests > 0 && issued.Add(1) > cfg.MaxRequests {
					return
				}
				o := issueOne(ctx, cfg, rng, &coldSeed)
				if o.route == "" {
					return // ctx ended mid-request
				}
				if time.Now().After(warmUntil) {
					perW[id] = append(perW[id], o)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := aggregate(cfg, perW, elapsed)
	if cfg.Traces {
		rep.Spans = scrapeSpans(cfg)
	}
	return rep, nil
}

// scrapeSpans pulls the target's finished traces and folds every span into
// per-name aggregates, sorted by total time descending so the dominant
// operation leads. Best effort: any scrape or parse failure returns nil —
// a daemon without tracing armed is not a load-run failure.
func scrapeSpans(cfg Config) []SpanStats {
	resp, err := cfg.Client.Get(cfg.Target + "/v1/debug/traces?format=ndjson")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	traces, err := trace.ParseNDJSON(resp.Body)
	if err != nil {
		return nil
	}
	type agg struct{ count, errs, sum, max int64 }
	byName := make(map[string]*agg)
	for _, td := range traces {
		for _, sp := range td.Spans {
			a := byName[sp.Name]
			if a == nil {
				a = &agg{}
				byName[sp.Name] = a
			}
			a.count++
			if sp.Error != "" {
				a.errs++
			}
			a.sum += sp.Duration
			if sp.Duration > a.max {
				a.max = sp.Duration
			}
		}
	}
	out := make([]SpanStats, 0, len(byName))
	for name, a := range byName {
		out = append(out, SpanStats{
			Name:   name,
			Count:  a.count,
			Errors: a.errs,
			Mean:   time.Duration(a.sum / a.count),
			Max:    time.Duration(a.max),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Mean*time.Duration(out[i].Count), out[j].Mean*time.Duration(out[j].Count)
		if ti != tj {
			return ti > tj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// issueOne picks a shape by mix weight, issues it, and records wall time.
// A request cut short by ctx cancellation returns a zero obs (the run is
// over; a truncated sample would skew the tail).
func issueOne(ctx context.Context, cfg Config, rng *rand.Rand, coldSeed *atomic.Uint64) obs {
	platform := cfg.Platforms[rng.Intn(len(cfg.Platforms))]
	seed := uint64(1 + rng.Intn(cfg.WarmSeeds))
	if cfg.ColdRatio > 0 && rng.Float64() < cfg.ColdRatio {
		seed = coldSeed.Add(1)
	}

	// Chaos mode bounds every request individually: a response that
	// outlives the budget while the run context is still live is a hang —
	// the contract violation the budget exists to catch.
	reqCtx := ctx
	if cfg.Chaos {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(ctx, cfg.ChaosTimeout)
		defer cancel()
	}

	n := rng.Intn(cfg.Mix.total())
	var route string
	var req *http.Request
	var err error
	switch {
	case n < cfg.Mix.Topology:
		route = RouteTopology
		q := commonQuery(cfg, platform, seed)
		if cfg.Chaos {
			// Golden-compare the exact description-file bytes, not a JSON
			// rendering with volatile fields (served_in, cached).
			q += "&format=mctop"
		}
		req, err = http.NewRequestWithContext(reqCtx, http.MethodGet,
			cfg.Target+"/v1/topology?"+q, nil)
	case n < cfg.Mix.Topology+cfg.Mix.Place:
		route = RoutePlace
		q := commonQuery(cfg, platform, seed) +
			"&policy=" + url.QueryEscape(cfg.Policies[rng.Intn(len(cfg.Policies))]) +
			"&threads=" + strconv.Itoa(1+rng.Intn(cfg.MaxThreads))
		req, err = http.NewRequestWithContext(reqCtx, http.MethodGet,
			cfg.Target+"/v1/place?"+q, nil)
	case n < cfg.Mix.Topology+cfg.Mix.Place+cfg.Mix.MapDAG:
		route = RouteMap
		req, err = http.NewRequestWithContext(reqCtx, http.MethodPost,
			cfg.Target+"/v1/map", bytes.NewReader(mapDAGBody(cfg, platform, seed)))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	default:
		stream := n >= cfg.Mix.Topology+cfg.Mix.Place+cfg.Mix.MapDAG+cfg.Mix.Batch
		route = RouteBatch
		path := "/v1/place/batch"
		if stream {
			route = RouteStream
			path += "?stream=1"
		}
		req, err = http.NewRequestWithContext(reqCtx, http.MethodPost,
			cfg.Target+path, bytes.NewReader(batchBody(cfg, rng, platform, seed)))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return obs{route: route, err: true}
	}

	hung := func() bool {
		return cfg.Chaos && ctx.Err() == nil && reqCtx.Err() == context.DeadlineExceeded
	}
	start := time.Now()
	resp, err := cfg.Client.Do(req)
	if err != nil {
		if hung() {
			return obs{route: route, dur: time.Since(start), err: true, hang: true}
		}
		if ctx.Err() != nil {
			return obs{}
		}
		return obs{route: route, dur: time.Since(start), err: true}
	}
	// Drain fully (streamed lines included) so the duration covers the
	// whole response and the connection is reusable. Chaos keeps the bytes
	// for golden verification.
	var body []byte
	var copyErr error
	if cfg.Chaos {
		body, copyErr = io.ReadAll(resp.Body)
	} else {
		_, copyErr = io.Copy(io.Discard, resp.Body)
	}
	resp.Body.Close()
	if copyErr != nil && hung() {
		return obs{route: route, dur: time.Since(start), err: true, hang: true}
	}
	if ctx.Err() != nil && (copyErr != nil || resp.StatusCode >= 400) {
		return obs{}
	}
	o := obs{
		route: route,
		dur:   time.Since(start),
		err:   copyErr != nil || resp.StatusCode >= 400,
	}
	if cfg.Chaos && !o.err && resp.StatusCode == http.StatusOK {
		o.corrupt = !cfg.ChaosState.verify(route, platform, seed, body)
		if o.corrupt {
			o.err = true
		}
	}
	return o
}

func commonQuery(cfg Config, platform string, seed uint64) string {
	q := "platform=" + url.QueryEscape(platform) + "&seed=" + strconv.FormatUint(seed, 10)
	if cfg.Reps > 0 {
		q += "&reps=" + strconv.Itoa(cfg.Reps)
	}
	if cfg.Sampling {
		q += "&sampling=1"
	}
	return q
}

// mapDAGBody builds one /v1/map request. The DAG is generated from the
// request's own seed, so the warm-seed pool memoizes mappings exactly like
// topologies (same seed → same DAG → registry cache hit) and the chaos
// golden key "platform|seed" pins one deterministic answer per pair.
func mapDAGBody(cfg Config, platform string, seed uint64) []byte {
	d := graph.GenTaskDAG(graph.DAGParams{}, seed)
	body := struct {
		Platform string         `json:"platform"`
		Seed     *uint64        `json:"seed"`
		Reps     int            `json:"reps,omitempty"`
		Refine   int            `json:"refine,omitempty"`
		DAG      *graph.TaskDAG `json:"dag"`
	}{Platform: platform, Seed: &seed, Reps: cfg.Reps, Refine: 200, DAG: d}
	b, _ := json.Marshal(body)
	return b
}

func batchBody(cfg Config, rng *rand.Rand, platform string, seed uint64) []byte {
	type item struct {
		Policy  string `json:"policy"`
		Threads int    `json:"threads"`
	}
	body := struct {
		Platform string  `json:"platform"`
		Seed     *uint64 `json:"seed"`
		Reps     int     `json:"reps,omitempty"`
		Sampling *bool   `json:"sampling,omitempty"`
		Requests []item  `json:"requests"`
	}{Platform: platform, Seed: &seed, Reps: cfg.Reps}
	if cfg.Sampling {
		body.Sampling = &cfg.Sampling
	}
	for i := 0; i < cfg.BatchSize; i++ {
		body.Requests = append(body.Requests, item{
			Policy:  cfg.Policies[rng.Intn(len(cfg.Policies))],
			Threads: 1 + rng.Intn(cfg.MaxThreads),
		})
	}
	b, _ := json.Marshal(body)
	return b
}

// aggregate merges the per-worker observation slices into the Report —
// exact percentiles from the full sorted sample, no binning.
func aggregate(cfg Config, perW [][]obs, elapsed time.Duration) *Report {
	byRoute := make(map[string][]time.Duration)
	errs := make(map[string]int64)
	var total, totalErrs int64
	var corrupt, hangs int64
	for _, ws := range perW {
		for _, o := range ws {
			total++
			if o.err {
				totalErrs++
				errs[o.route]++
			}
			if o.corrupt {
				corrupt++
			}
			if o.hang {
				hangs++
			}
			byRoute[o.route] = append(byRoute[o.route], o.dur)
		}
	}
	rep := &Report{
		Target:   cfg.Target,
		Workers:  cfg.Workers,
		Elapsed:  elapsed,
		Requests: total,
		Errors:   totalErrs,
		Corrupt:  corrupt,
		Hangs:    hangs,
	}
	if elapsed > 0 {
		rep.Throughput = float64(total) / elapsed.Seconds()
	}
	routes := make([]string, 0, len(byRoute))
	for r := range byRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		ds := byRoute[r]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		rep.Routes = append(rep.Routes, RouteStats{
			Route:    r,
			Requests: int64(len(ds)),
			Errors:   errs[r],
			Mean:     sum / time.Duration(len(ds)),
			P50:      percentile(ds, 0.50),
			P95:      percentile(ds, 0.95),
			P99:      percentile(ds, 0.99),
			Max:      ds[len(ds)-1],
		})
	}
	rep.SLOFailures = checkSLO(cfg.SLO, rep)
	if cfg.Chaos {
		// The chaos contract is absolute, not a tunable bound: any corrupt
		// byte or hang fails the run even with no SLO configured.
		if rep.Corrupt > 0 {
			rep.SLOFailures = append(rep.SLOFailures,
				fmt.Sprintf("%d corrupt responses (chaos contract demands 0)", rep.Corrupt))
		}
		if rep.Hangs > 0 {
			rep.SLOFailures = append(rep.SLOFailures,
				fmt.Sprintf("%d hung requests past %s (chaos contract demands 0)", rep.Hangs, cfg.ChaosTimeout))
		}
	}
	return rep
}

// percentile returns the exact q-quantile of the sorted sample (nearest-
// rank method).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.9999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func checkSLO(slo SLO, rep *Report) []string {
	var fails []string
	if slo.MaxErrorRate > 0 && rep.Requests > 0 {
		rate := float64(rep.Errors) / float64(rep.Requests)
		if rate > slo.MaxErrorRate {
			fails = append(fails, fmt.Sprintf("error rate %.4f > %.4f (%d/%d)",
				rate, slo.MaxErrorRate, rep.Errors, rep.Requests))
		}
	}
	if slo.MinThroughput > 0 && rep.Throughput < slo.MinThroughput {
		fails = append(fails, fmt.Sprintf("throughput %.1f rps < %.1f rps",
			rep.Throughput, slo.MinThroughput))
	}
	for _, rs := range rep.Routes {
		if bound, ok := slo.P99[rs.Route]; ok && bound > 0 && rs.P99 > bound {
			fails = append(fails, fmt.Sprintf("%s p99 %s > %s", rs.Route, rs.P99, bound))
		}
	}
	return fails
}
