package loadgen

// Chaos-mode verification against scripted fake daemons: golden capture
// and mismatch detection per route, hang classification under the
// per-request budget, and the honest-5xx carve-out.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// chaosServer answers every route consistently from deterministic fakes,
// flipping to corrupt bodies when corrupt is set.
func chaosServer(corrupt *atomic.Bool) http.Handler {
	topoBody := func(r *http.Request) string {
		return fmt.Sprintf("mctop fake\nplatform %s seed %s\nend\n",
			r.URL.Query().Get("platform"), r.URL.Query().Get("seed"))
	}
	item := func(threads int) string {
		ctxs := make([]string, threads)
		for i := range ctxs {
			ctxs[i] = fmt.Sprint(i)
		}
		return fmt.Sprintf(`{"policy":"RR_CORE","n_threads":%d,"contexts":[%s]}`,
			threads, strings.Join(ctxs, ","))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/topology", func(w http.ResponseWriter, r *http.Request) {
		body := topoBody(r)
		if corrupt.Load() {
			body = "mctop fake\ncorrupted\nend\n"
		}
		fmt.Fprint(w, body)
	})
	mux.HandleFunc("/v1/place", func(w http.ResponseWriter, r *http.Request) {
		if corrupt.Load() {
			// Same golden key (policy, n_threads), different contexts.
			fmt.Fprint(w, `{"policy":"RR_CORE","n_threads":4,"contexts":[9,9,9,9]}`)
			return
		}
		fmt.Fprint(w, item(4))
	})
	mux.HandleFunc("/v1/place/batch", func(w http.ResponseWriter, r *http.Request) {
		line := item(4)
		if corrupt.Load() {
			line = `{"policy":"RR_CORE","n_threads":4,"contexts":[8,8,8,8]}`
		}
		if r.URL.Query().Get("stream") == "1" {
			fmt.Fprintf(w, "%s\n%s\n", line, line)
			return
		}
		fmt.Fprintf(w, `{"results":[%s]}`, line)
	})
	return mux
}

// fixedConfig pins the workload to one (platform, seed) so every request
// after the first compares against a recorded golden.
func fixedConfig(target string, mix Mix, n int64) Config {
	return Config{
		Target:      target,
		Workers:     2,
		Duration:    30 * time.Second,
		MaxRequests: n,
		Mix:         mix,
		Platforms:   []string{"Ivy"},
		WarmSeeds:   1,
		MaxThreads:  1, // place requests always ask threads=1; fakes answer a fixed shape
		BatchSize:   2,
		Chaos:       true,
	}
}

func TestChaosDetectsCorruptionPerRoute(t *testing.T) {
	for _, tc := range []struct {
		name string
		mix  Mix
	}{
		{"topology", Mix{Topology: 1}},
		{"place", Mix{Place: 1}},
		{"batch", Mix{Batch: 1}},
		{"stream", Mix{Stream: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var corrupt atomic.Bool
			srv := httptest.NewServer(chaosServer(&corrupt))
			defer srv.Close()

			state := NewChaosState()
			// Healthy pass: goldens recorded, contract clean.
			cfg := fixedConfig(srv.URL, tc.mix, 6)
			cfg.ChaosState = state
			rep, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Corrupt != 0 || rep.Hangs != 0 || !rep.OK() {
				t.Fatalf("healthy pass flagged: corrupt=%d hangs=%d fails=%v",
					rep.Corrupt, rep.Hangs, rep.SLOFailures)
			}

			// Corrupt pass against the same goldens: every 200 must be
			// flagged and the run must fail.
			corrupt.Store(true)
			rep, err = Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Corrupt == 0 {
				t.Fatal("corrupted responses not detected")
			}
			if rep.OK() {
				t.Fatalf("chaos contract passed despite %d corrupt responses", rep.Corrupt)
			}
			if rep.Errors < rep.Corrupt {
				t.Fatalf("corrupt responses not counted as errors (%d errors, %d corrupt)",
					rep.Errors, rep.Corrupt)
			}
		})
	}
}

func TestChaosUndecodable200IsCorrupt(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "this is not JSON")
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), fixedConfig(srv.URL, Mix{Place: 1}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 4 || rep.OK() {
		t.Fatalf("undecodable 200s: corrupt=%d fails=%v, want 4 and a failed run",
			rep.Corrupt, rep.SLOFailures)
	}
}

func TestChaosFlagsHangs(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // a wedged daemon: accepted, never answers
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	cfg := fixedConfig(srv.URL, Mix{Topology: 1}, 2)
	cfg.Workers = 1
	cfg.ChaosTimeout = 50 * time.Millisecond
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hangs != 2 {
		t.Fatalf("hangs = %d, want 2", rep.Hangs)
	}
	if rep.OK() {
		t.Fatal("chaos contract passed despite hangs")
	}
}

func TestChaosToleratesHonest5xx(t *testing.T) {
	var n atomic.Int64
	var corrupt atomic.Bool
	inner := chaosServer(&corrupt)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"degraded"}`, http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	// No MaxErrorRate bound: honest refusals are errors but not contract
	// violations, so the chaos run passes.
	rep, err := Run(context.Background(), fixedConfig(srv.URL, Mix{Topology: 1, Place: 1}, 12))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Fatal("the 5xx carve-out was never exercised")
	}
	if rep.Corrupt != 0 || rep.Hangs != 0 {
		t.Fatalf("honest 5xx flagged as corruption: corrupt=%d hangs=%d", rep.Corrupt, rep.Hangs)
	}
	if !rep.OK() {
		t.Fatalf("chaos run failed on honest errors: %v", rep.SLOFailures)
	}
}
