package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms sorted
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	} {
		if got := percentile(ds, tc.q); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	if got := percentile(ds[:1], 0.99); got != 1*time.Millisecond {
		t.Errorf("percentile(single) = %v, want 1ms", got)
	}
}

// TestRunBounded drives the closed loop against a stub daemon for a fixed
// request count and checks the report's accounting.
func TestRunBounded(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Target:      srv.URL,
		Workers:     3,
		Duration:    30 * time.Second, // the request bound fires first
		MaxRequests: 60,
		Mix:         Mix{Topology: 1, Place: 1, Batch: 1, Stream: 1},
		Platforms:   []string{"Ivy"},
		SLO:         SLO{MaxErrorRate: 1e-9, MinThroughput: 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 60 {
		t.Errorf("report counts %d requests, want 60", rep.Requests)
	}
	if got := hits.Load(); got != 60 {
		t.Errorf("server saw %d requests, want 60", got)
	}
	if rep.Errors != 0 {
		t.Errorf("unexpected errors: %d", rep.Errors)
	}
	if !rep.OK() {
		t.Errorf("SLO failures on a clean run: %v", rep.SLOFailures)
	}
	var total int64
	for _, rs := range rep.Routes {
		total += rs.Requests
		if rs.P50 > rs.P95 || rs.P95 > rs.P99 || rs.P99 > rs.Max {
			t.Errorf("%s: percentiles not ordered: p50=%v p95=%v p99=%v max=%v",
				rs.Route, rs.P50, rs.P95, rs.P99, rs.Max)
		}
	}
	if total != rep.Requests {
		t.Errorf("route requests sum to %d, want %d", total, rep.Requests)
	}
}

// TestRunCountsErrors: HTTP statuses >= 400 are errors, and the error-rate
// SLO trips.
func TestRunCountsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"nope"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Target:      srv.URL,
		Workers:     2,
		Duration:    30 * time.Second,
		MaxRequests: 20,
		SLO:         SLO{MaxErrorRate: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != rep.Requests || rep.Requests == 0 {
		t.Fatalf("errors = %d of %d requests, want all", rep.Errors, rep.Requests)
	}
	if rep.OK() {
		t.Error("SLO passed despite 100% errors")
	}
}

// TestWriteBenchJSON asserts the emitted document decodes with the exact
// struct shapes cmd/bench2json writes and cmd/benchdelta reads.
func TestWriteBenchJSON(t *testing.T) {
	rep := &Report{
		Target:     "http://x",
		Workers:    2,
		Elapsed:    2 * time.Second,
		Requests:   100,
		Errors:     1,
		Throughput: 50,
		Routes: []RouteStats{
			{Route: RouteTopology, Requests: 60, Mean: 2 * time.Millisecond,
				P50: time.Millisecond, P95: 3 * time.Millisecond, P99: 4 * time.Millisecond},
			{Route: RoutePlace, Requests: 40, Errors: 1, Mean: time.Millisecond,
				P50: time.Millisecond, P95: time.Millisecond, P99: time.Millisecond},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteBenchJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The decoder below is cmd/benchdelta's document shape, verbatim.
	var doc struct {
		Results []struct {
			Pkg     string  `json:"pkg"`
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("benchdelta-shaped decode failed: %v", err)
	}
	if len(doc.Results) != 3 { // two routes + overall
		t.Fatalf("got %d results, want 3", len(doc.Results))
	}
	byName := map[string]float64{}
	for _, r := range doc.Results {
		if r.Pkg != "cmd/mctop-bench" {
			t.Errorf("result %q has pkg %q", r.Name, r.Pkg)
		}
		byName[r.Name] = r.NsPerOp
	}
	if byName["Load"+RouteTopology] != 2e6 {
		t.Errorf("Load%s ns_per_op = %g, want 2e6", RouteTopology, byName["Load"+RouteTopology])
	}
	// Overall mean is request-weighted: (2ms*60 + 1ms*40) / 100 = 1.6ms.
	if byName["LoadOverall"] != 1.6e6 {
		t.Errorf("LoadOverall ns_per_op = %g, want 1.6e6", byName["LoadOverall"])
	}
	if !strings.Contains(rep.String(), "SLO: pass") {
		t.Errorf("human report missing SLO line:\n%s", rep.String())
	}
}

func TestSLOP99Bound(t *testing.T) {
	rep := &Report{
		Requests:   10,
		Throughput: 100,
		Routes: []RouteStats{
			{Route: RouteTopology, Requests: 10, P99: 50 * time.Millisecond},
		},
	}
	fails := checkSLO(SLO{P99: map[string]time.Duration{RouteTopology: 10 * time.Millisecond}}, rep)
	if len(fails) != 1 {
		t.Fatalf("p99 bound did not trip: %v", fails)
	}
	fails = checkSLO(SLO{P99: map[string]time.Duration{RouteTopology: 100 * time.Millisecond}}, rep)
	if len(fails) != 0 {
		t.Fatalf("p99 bound tripped under the limit: %v", fails)
	}
}
