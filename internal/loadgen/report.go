package loadgen

// Report rendering: a human table for terminals, and the bench2json
// document shape for machines — `mctop-bench load -json` output feeds the
// same cmd/benchdelta comparisons as the microbenchmark JSON, so a load
// regression gates CI exactly like an ns/op regression.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// String renders the human report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "target %s: %d requests in %s (%.1f rps, %d workers, %d errors)\n",
		r.Target, r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Workers, r.Errors)
	if r.Corrupt > 0 || r.Hangs > 0 {
		fmt.Fprintf(&b, "chaos: %d corrupt responses, %d hangs\n", r.Corrupt, r.Hangs)
	}
	fmt.Fprintf(&b, "%-26s %8s %7s %10s %10s %10s %10s %10s\n",
		"route", "reqs", "errs", "mean", "p50", "p95", "p99", "max")
	for _, rs := range r.Routes {
		fmt.Fprintf(&b, "%-26s %8d %7d %10s %10s %10s %10s %10s\n",
			rs.Route, rs.Requests, rs.Errors,
			round(rs.Mean), round(rs.P50), round(rs.P95), round(rs.P99), round(rs.Max))
	}
	if len(r.Spans) > 0 {
		fmt.Fprintf(&b, "span attribution (scraped from /v1/debug/traces):\n")
		fmt.Fprintf(&b, "%-26s %8s %7s %10s %10s\n", "span", "count", "errs", "mean", "max")
		for _, ss := range r.Spans {
			fmt.Fprintf(&b, "%-26s %8d %7d %10s %10s\n",
				ss.Name, ss.Count, ss.Errors, round(ss.Mean), round(ss.Max))
		}
	}
	if len(r.SLOFailures) == 0 {
		b.WriteString("SLO: pass\n")
	} else {
		for _, f := range r.SLOFailures {
			fmt.Fprintf(&b, "SLO FAIL: %s\n", f)
		}
	}
	return b.String()
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}

// benchResult mirrors cmd/bench2json's Result so benchdelta can diff a
// load run against a previous one by (pkg, name) on ns_per_op.
type benchResult struct {
	Pkg     string             `json:"pkg,omitempty"`
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type benchDocument struct {
	Results []benchResult `json:"results"`
}

// WriteBenchJSON emits the run in the bench2json document shape: one
// result per route named "Load<route>", ns_per_op = mean latency, with
// the tail and error data as custom metrics.
func (r *Report) WriteBenchJSON(w io.Writer) error {
	doc := benchDocument{}
	for _, rs := range r.Routes {
		doc.Results = append(doc.Results, benchResult{
			Pkg:     "cmd/mctop-bench",
			Name:    "Load" + rs.Route,
			Iters:   rs.Requests,
			NsPerOp: float64(rs.Mean.Nanoseconds()),
			Metrics: map[string]float64{
				"p50_ms":  ms(rs.P50),
				"p95_ms":  ms(rs.P95),
				"p99_ms":  ms(rs.P99),
				"errors":  float64(rs.Errors),
				"rps_est": perSec(rs.Requests, r.Elapsed),
			},
		})
	}
	doc.Results = append(doc.Results, benchResult{
		Pkg:     "cmd/mctop-bench",
		Name:    "LoadOverall",
		Iters:   r.Requests,
		NsPerOp: weightedMeanNs(r),
		Metrics: map[string]float64{
			"rps":     r.Throughput,
			"errors":  float64(r.Errors),
			"corrupt": float64(r.Corrupt),
			"hangs":   float64(r.Hangs),
		},
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func perSec(n int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

func weightedMeanNs(r *Report) float64 {
	var sum float64
	var n int64
	for _, rs := range r.Routes {
		sum += float64(rs.Mean.Nanoseconds()) * float64(rs.Requests)
		n += rs.Requests
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
