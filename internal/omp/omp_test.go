package omp

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	topoMu    sync.Mutex
	topoCache = map[string]*topo.Topology{}
)

func enriched(t *testing.T, p *sim.Platform) *topo.Topology {
	t.Helper()
	topoMu.Lock()
	defer topoMu.Unlock()
	if tp, ok := topoCache[p.Name]; ok {
		return tp
	}
	m, err := machine.NewSim(p, 55)
	if err != nil {
		t.Fatal(err)
	}
	o := mctopalg.DefaultOptions()
	o.Reps = 51
	res, err := mctopalg.Infer(m, o)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := plugins.Enrich(m, res.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	topoCache[p.Name] = tp
	return tp
}

func TestParallelForCoversRange(t *testing.T) {
	rt, err := New(enriched(t, sim.Ivy()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetBindingPolicy(place.ConCoreHWC, place.Options{NThreads: 8}); err != nil {
		t.Fatal(err)
	}
	n := 10000
	var hits = make([]int32, n)
	rt.ParallelFor(n, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}

func TestParallelBindsTeam(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	rt, _ := New(tp)
	if err := rt.SetBindingPolicy(place.ConCoreHWC, place.Options{NThreads: 10}); err != nil {
		t.Fatal(err)
	}
	if rt.NumThreads() != 10 {
		t.Fatalf("team size = %d", rt.NumThreads())
	}
	seen := make([]int, 0, 10)
	var mu sync.Mutex
	rt.Parallel(func(tid, nt, hwctx int) {
		mu.Lock()
		seen = append(seen, hwctx)
		mu.Unlock()
	})
	if len(seen) != 10 {
		t.Fatalf("team ran %d members", len(seen))
	}
	// All contexts valid, distinct, on socket 0 (CON_CORE_HWC with 10
	// threads = socket 0's unique cores).
	set := map[int]bool{}
	for _, c := range seen {
		if c < 0 || set[c] {
			t.Fatalf("bad binding %v", seen)
		}
		set[c] = true
		if tp.Context(c).Socket.ID != 0 {
			t.Errorf("ctx %d not on socket 0", c)
		}
	}
	// Bindings are released: a second region must succeed.
	rt.Parallel(func(tid, nt, hwctx int) {})
	if got := rt.LastBinding(); len(got) != 10 {
		t.Errorf("LastBinding = %v", got)
	}
}

// TestPolicySwitchBetweenRegions is the paper's headline capability:
// placement policies change at runtime between parallel regions.
func TestPolicySwitchBetweenRegions(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	rt, _ := New(tp)
	if err := rt.SetBindingPolicy(place.ConCoreHWC, place.Options{NThreads: 4}); err != nil {
		t.Fatal(err)
	}
	rt.Parallel(func(_, _, _ int) {})
	first := rt.LastBinding()

	if err := rt.SetBindingPolicy(place.RRCore, place.Options{NThreads: 4}); err != nil {
		t.Fatal(err)
	}
	rt.Parallel(func(_, _, _ int) {})
	second := rt.LastBinding()

	// CON_CORE_HWC keeps 4 threads on socket 0; RR spreads them 2/2.
	sockets := func(ctxs []int) map[int]int {
		m := map[int]int{}
		for _, c := range ctxs {
			m[tp.Context(c).Socket.ID]++
		}
		return m
	}
	if len(sockets(first)) != 1 {
		t.Errorf("CON region spanned %v", sockets(first))
	}
	if len(sockets(second)) != 2 {
		t.Errorf("RR region spanned %v", sockets(second))
	}
}

func TestDefaultIsUnpinned(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	rt, _ := New(tp)
	if rt.BindingPolicy() != place.None {
		t.Error("default policy should be NONE (libgomp behaviour)")
	}
	rt.Parallel(func(tid, nt, hwctx int) {
		if hwctx != -1 {
			t.Errorf("default region pinned to %d", hwctx)
		}
	})
}

func TestAutoSelectPicksAndInstalls(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	rt, _ := New(tp)
	g := graph.GenPowerLaw(2000, 6, 1)
	pol, err := rt.AutoSelect(
		[]place.Policy{place.ConCoreHWC, place.BalanceCore},
		place.Options{NThreads: 4},
		func() { graph.PageRank(g, 2, 0.85, rt.NumThreads()) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if pol != rt.BindingPolicy() {
		t.Error("chosen policy not installed")
	}
	if _, err := rt.AutoSelect(nil, place.Options{}, func() {}); err == nil {
		t.Error("empty candidates should fail")
	}
}

// TestFig12Shape: MCTOP MP beats default OpenMP on the four x86 platforms
// (average ~22% in the paper), PageRank selects a Balance policy, the
// others a compact-cores one.
func TestFig12Shape(t *testing.T) {
	platforms := []*sim.Platform{sim.Ivy(), sim.Opteron(), sim.Haswell(), sim.Westmere()}
	var sum float64
	var count int
	for _, p := range platforms {
		tp := enriched(t, p)
		rows, err := ModelFig12(tp)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 6 {
			t.Fatalf("%s: %d rows", p.Name, len(rows))
		}
		for _, r := range rows {
			if r.RelTime > 1.10 {
				t.Errorf("%s/%s: rel time %.3f too high", r.Platform, r.Kernel, r.RelTime)
			}
			sum += r.RelTime
			count++
			if r.Kernel == KPageRank && r.Threads < p.NumContexts() {
				// Sub-machine PageRank selections must spread for
				// bandwidth; at full machine all policies coincide.
				if r.Chosen != place.BalanceCore && r.Chosen != place.BalanceHWC {
					t.Errorf("%s: PageRank picked %v, want a Balance policy", r.Platform, r.Chosen)
				}
			}
			if r.Kernel == KHopDistance || r.Kernel == KPotentialFr {
				// When the winner uses the whole machine, every policy
				// produces the identical context set and the label carries
				// no information — only check sub-machine selections.
				if r.Threads < p.NumContexts() &&
					(r.Chosen == place.BalanceCore || r.Chosen == place.BalanceHWC || r.Chosen == place.RRCore) {
					t.Errorf("%s/%s picked spread policy %v, want compact", r.Platform, r.Kernel, r.Chosen)
				}
			}
		}
	}
	avg := sum / float64(count)
	if avg > 0.95 || avg < 0.5 {
		t.Errorf("average rel time = %.3f, want roughly 0.6-0.9 (paper: ~0.78)", avg)
	}
}

// TestCombinationSwitchBeatsFixed: no single fixed placement for the
// Combination workload matches per-region re-binding.
func TestCombinationSwitchBeatsFixed(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	fixed, err := BestFixed(tp)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := AdaptiveCombination(tp)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive >= fixed {
		t.Errorf("adaptive %d cycles >= best fixed %d", adaptive, fixed)
	}
}

func TestModelValidation(t *testing.T) {
	if PaperPolicy(KPageRank) == PaperPolicy(KCommunities) {
		t.Error("PageRank and Communities should differ in paper policy")
	}
	tp := enriched(t, sim.Ivy())
	wl := KernelProfile(KCombination, tp)
	if wl.Name != "" {
		t.Error("Combination has no single profile")
	}
}

func TestParallelForDynamic(t *testing.T) {
	rt, err := New(enriched(t, sim.Ivy()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetBindingPolicy(place.RRCore, place.Options{NThreads: 6}); err != nil {
		t.Fatal(err)
	}
	n := 12345
	hits := make([]int32, n)
	rt.ParallelForDynamic(n, 7, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
	// Chunk larger than n still covers everything exactly once.
	small := make([]int32, 5)
	rt.ParallelForDynamic(5, 100, func(i int) { atomic.AddInt32(&small[i], 1) })
	for i, h := range small {
		if h != 1 {
			t.Fatalf("small index %d executed %d times", i, h)
		}
	}
}
