// Package omp implements MCTOP MP, the paper's extended OpenMP-style
// runtime (Section 7.4).
//
// GNU libgomp's placement controls are offline (environment variables),
// inflexible (fixed at initialization) and low-level. MCTOP MP adds what
// the paper's omp_set_binding_policy provides: choosing MCTOP-PLACE
// policies at runtime, switching them between parallel regions, and an
// automatic policy-selection mechanism that tries candidate policies on a
// small sample of the workload and keeps the best.
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/place"
	"repro/internal/topo"
)

// Runtime is an OpenMP-like parallel runtime bound to an MCTOP topology.
type Runtime struct {
	topo *topo.Topology

	mu       sync.Mutex
	pool     *place.Pool
	nThreads int
	lastCtxs []int
}

// New creates a runtime with libgomp's default behaviour: threads are not
// pinned (the NONE policy) and the team size is the machine's context
// count.
func New(t *topo.Topology) (*Runtime, error) {
	pool, err := place.NewPool(t, place.None, place.Options{})
	if err != nil {
		return nil, err
	}
	return &Runtime{topo: t, pool: pool, nThreads: t.NumHWContexts()}, nil
}

// Topology returns the runtime's topology.
func (r *Runtime) Topology() *topo.Topology { return r.topo }

// SetBindingPolicy is the paper's omp_set_binding_policy: it installs a
// placement policy (and optional thread/socket limits) that takes effect at
// the next parallel region. It may be called between regions at any time.
func (r *Runtime) SetBindingPolicy(p place.Policy, opt place.Options) error {
	if err := r.pool.Set(p, opt); err != nil {
		return err
	}
	r.mu.Lock()
	r.nThreads = r.pool.Current().NThreads()
	r.mu.Unlock()
	return nil
}

// NumThreads returns the team size of the next parallel region.
func (r *Runtime) NumThreads() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nThreads
}

// BindingPolicy returns the active policy.
func (r *Runtime) BindingPolicy() place.Policy { return r.pool.Current().Policy() }

// LastBinding returns the hardware contexts the last parallel region's team
// was pinned to (-1 entries mean unpinned).
func (r *Runtime) LastBinding() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.lastCtxs...)
}

// Parallel runs body on every team member, like "#pragma omp parallel".
// Each invocation claims contexts from the current placement and releases
// them at the end of the region.
func (r *Runtime) Parallel(body func(tid, nThreads, hwctx int)) {
	pl := r.pool.Current()
	n := r.NumThreads()
	ctxs := make([]int, n)
	for i := range ctxs {
		ctx, ok := pl.PinNext()
		if !ok {
			ctx = -1
		}
		ctxs[i] = ctx
	}
	var wg sync.WaitGroup
	for tid := 0; tid < n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			body(tid, n, ctxs[tid])
		}(tid)
	}
	wg.Wait()
	for _, c := range ctxs {
		if c >= 0 {
			pl.Unpin(c)
		}
	}
	r.mu.Lock()
	r.lastCtxs = ctxs
	r.mu.Unlock()
}

// ParallelFor runs body over [0, n) with static scheduling, like
// "#pragma omp parallel for schedule(static)".
func (r *Runtime) ParallelFor(n int, body func(i int)) {
	r.Parallel(func(tid, nt, _ int) {
		lo := tid * n / nt
		hi := (tid + 1) * n / nt
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ParallelForDynamic runs body over [0, n) with dynamic scheduling, like
// "#pragma omp parallel for schedule(dynamic, chunk)": team members pull
// chunks from a shared counter, so irregular iterations balance
// automatically.
func (r *Runtime) ParallelForDynamic(n, chunk int, body func(i int)) {
	if chunk < 1 {
		chunk = 1
	}
	var next int64
	r.Parallel(func(_, _, _ int) {
		for {
			lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				body(i)
			}
		}
	})
}

// AutoSelect implements the paper's proof-of-concept automatic
// policy-selection: it runs sample() under each candidate policy, measures
// it, installs the fastest policy and returns it. sample should execute a
// small representative part of the next region's work (the paper's
// "pre-processing" overhead is exactly these sample runs).
func (r *Runtime) AutoSelect(candidates []place.Policy, opt place.Options, sample func()) (place.Policy, error) {
	if len(candidates) == 0 {
		return place.None, fmt.Errorf("omp: no candidate policies")
	}
	best := candidates[0]
	bestD := time.Duration(-1)
	for _, cand := range candidates {
		if err := r.SetBindingPolicy(cand, opt); err != nil {
			continue // e.g. POWER on a machine without power data
		}
		start := time.Now()
		sample()
		d := time.Since(start)
		if bestD < 0 || d < bestD {
			bestD = d
			best = cand
		}
	}
	if bestD < 0 {
		return place.None, fmt.Errorf("omp: no candidate policy was applicable")
	}
	err := r.SetBindingPolicy(best, opt)
	return best, err
}
