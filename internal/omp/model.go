package omp

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/place"
	"repro/internal/topo"
)

// Figure 12 model: MCTOP MP with model-driven automatic policy selection
// versus default OpenMP (libgomp: unpinned threads, one thread per
// context) on the Green-Marl graph workloads. The paper evaluates the four
// x86 platforms (Green-Marl does not support SPARC) plus the Combination
// workload, where OpenMP must keep one placement across two kernels that
// want different ones while MCTOP MP re-binds between regions.

// Kernel names one Figure 12 workload.
type Kernel string

// The Figure 12 workloads in paper order.
const (
	KCommunities  Kernel = "Communities"
	KHopDistance  Kernel = "Hop Distance"
	KPageRank     Kernel = "PageRank"
	KPotentialFr  Kernel = "Potential Friends"
	KRandDegrSamp Kernel = "Rand Degr. Samp."
	KCombination  Kernel = "Combination"
)

// Kernels returns the six workloads.
func Kernels() []Kernel {
	return []Kernel{KCommunities, KHopDistance, KPageRank, KPotentialFr, KRandDegrSamp, KCombination}
}

// PaperPolicy is the policy Figure 12's captions report per workload.
func PaperPolicy(k Kernel) place.Policy {
	if k == KPageRank {
		return place.BalanceCore
	}
	return place.ConCoreHWC
}

// KernelProfile models one kernel's execution on a 100M-node-class graph,
// scaled by machine size.
func KernelProfile(k Kernel, t *topo.Topology) exec.Workload {
	c := int64(t.NumCores())
	switch k {
	case KCommunities:
		// Label propagation: neighbour scans with per-round convergence
		// checks; locality-sensitive.
		return exec.Workload{Name: string(k), Phases: []exec.Phase{{
			Name: "propagate", WorkCycles: 2.5e8 * c, SMTFriendly: 0.35,
			Bytes: 3e7 * c, Data: exec.DataLocal, SyncOps: 120_000,
		}}, Iterations: 4}
	case KHopDistance:
		// Level-synchronous BFS: little work, a barrier per level, very
		// latency-sensitive — compact placements win decisively.
		return exec.Workload{Name: string(k), Phases: []exec.Phase{{
			Name: "bfs", WorkCycles: 2e7 * c, SMTFriendly: 0.4,
			Bytes: 1e7 * c, Data: exec.DataLocal, SyncOps: 1_200_000,
		}}}
	case KPageRank:
		// Streaming over the whole edge array every iteration: bandwidth
		// everywhere (the graph is interleaved across nodes), plus enough
		// rank arithmetic that SMT contexts help.
		return exec.Workload{Name: string(k), Phases: []exec.Phase{{
			Name: "rank", WorkCycles: 2e9 * c, SMTFriendly: 0.6,
			Bytes: 4.5e8 * c, Data: exec.DataStriped, SyncOps: 2_000,
		}}, Iterations: 1}
	case KPotentialFr:
		// Two-hop scans: compute-dense and cache-hungry — an SMT sibling
		// thrashes the shared L1/L2, so unique cores win.
		return exec.Workload{Name: string(k), Phases: []exec.Phase{{
			Name: "fof", WorkCycles: 9e8 * c, SMTFriendly: -0.1,
			Bytes: 2e7 * c, Data: exec.DataLocal, SyncOps: 60_000,
		}}}
	case KRandDegrSamp:
		// Random edge-endpoint probes: latency-bound pointer chasing with
		// frequent short regions.
		return exec.Workload{Name: string(k), Phases: []exec.Phase{{
			Name: "sample", WorkCycles: 1.5e8 * c, SMTFriendly: 0.55,
			Bytes: 2e7 * c, Data: exec.DataLocal, SyncOps: 250_000,
		}}}
	}
	return exec.Workload{}
}

// CandidatePolicies is the set the auto-selector tries. Compact policies
// come first: exact ties (identical context sets) keep the earlier
// candidate, and the bandwidth tie-break below still lets spread policies
// win memory-dominated regions.
func CandidatePolicies() []place.Policy {
	return []place.Policy{
		place.ConCoreHWC, place.ConCore, place.ConHWC,
		place.BalanceCore, place.BalanceHWC,
		place.RRCore,
	}
}

// Fig12Row is one bar of Figure 12.
type Fig12Row struct {
	Kernel   Kernel
	Platform string
	// Chosen is the policy the auto-selection picked.
	Chosen  place.Policy
	Threads int
	// RelTime is MCTOP MP / default OpenMP, including the pre-processing
	// overhead of the policy sampling; lower is better.
	RelTime float64
}

// preprocessOverhead is the sampling cost of automatic policy selection
// (the paper observes up to 9% loss from it on some workloads).
const preprocessOverhead = 0.05

func threadCandidates(t *topo.Topology) []int {
	c := t.NumCores()
	n := t.NumHWContexts()
	perSocket := c / t.NumSockets()
	seen := map[int]bool{}
	var out []int
	for _, v := range []int{perSocket, c / 2, c, n} {
		if v >= 1 && v <= n && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// selectPolicy runs the model-driven policy selection for one kernel.
// Near-ties (several policies produce the same context set) are broken the
// way the paper reasons about placements: bandwidth-dominated regions
// prefer the placement with more aggregate local bandwidth, others the one
// with the lowest communication latency.
func selectPolicy(t *topo.Topology, wl exec.Workload) (place.Policy, int, exec.Report, error) {
	var best exec.Report
	var bestPol place.Policy
	var bestPl *place.Placement
	bestThreads := 0
	for _, pol := range CandidatePolicies() {
		for _, n := range threadCandidates(t) {
			pl, err := place.New(t, pol, place.Options{NThreads: n})
			if err != nil {
				return place.None, 0, exec.Report{}, err
			}
			r, err := exec.Estimate(t, pl.Contexts(), wl)
			if err != nil {
				return place.None, 0, exec.Report{}, err
			}
			better := bestThreads == 0 || float64(r.Cycles) < 0.995*float64(best.Cycles)
			if !better && bestThreads != 0 && float64(r.Cycles) <= 1.005*float64(best.Cycles) {
				// Near-tie: apply the secondary criterion.
				if memDominant(r) {
					better = pl.MinBandwidth() > bestPl.MinBandwidth()
				} else {
					better = pl.MaxLatency() < bestPl.MaxLatency()
				}
			}
			if better {
				best, bestPol, bestPl, bestThreads = r, pol, pl, n
			}
		}
	}
	return bestPol, bestThreads, best, nil
}

func memDominant(r exec.Report) bool {
	var mem, total int64
	for _, p := range r.PerPhase {
		mem += p.MemoryCycles
		total += p.TotalCycles
	}
	return total > 0 && float64(mem) >= 0.5*float64(total)
}

// unpinnedPenalty is the efficiency unpinned teams retain: libgomp does
// not bind threads, so the OS migrates them across cores and sockets,
// costing locality and warm caches (the same effect the paper observes for
// gnu_parallel::sort's placement variance).
const unpinnedPenalty = 0.85

// defaultOpenMP models libgomp's default: one thread per context, no
// pinning — a sequential fill degraded by the migration penalty.
func defaultOpenMP(t *topo.Topology, wl exec.Workload) (exec.Report, error) {
	pl, err := place.New(t, place.Sequential, place.Options{})
	if err != nil {
		return exec.Report{}, err
	}
	r, err := exec.Estimate(t, pl.Contexts(), wl)
	if err != nil {
		return exec.Report{}, err
	}
	r.Cycles = int64(float64(r.Cycles) / unpinnedPenalty)
	r.Seconds /= unpinnedPenalty
	return r, nil
}

// ModelFig12 predicts all Figure 12 bars for one platform.
func ModelFig12(t *topo.Topology) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, k := range Kernels() {
		if k == KCombination {
			row, err := modelCombination(t)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			continue
		}
		wl := KernelProfile(k, t)
		pol, n, best, err := selectPolicy(t, wl)
		if err != nil {
			return nil, err
		}
		base, err := defaultOpenMP(t, wl)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12Row{
			Kernel: k, Platform: t.Name(), Chosen: pol, Threads: n,
			RelTime: float64(best.Cycles) * (1 + preprocessOverhead) / float64(base.Cycles),
		})
	}
	return rows, nil
}

// modelCombination runs PageRank and Potential Friends back to back.
// MCTOP MP re-binds between the two regions; OpenMP cannot, so it keeps
// its default placement for both (and even a hand-tuned fixed placement
// must sacrifice one of the kernels — see BestFixed).
func modelCombination(t *topo.Topology) (Fig12Row, error) {
	pr := KernelProfile(KPageRank, t)
	pf := KernelProfile(KPotentialFr, t)

	// MCTOP MP: per-kernel selection, overhead applied to both.
	_, _, bestPR, err := selectPolicy(t, pr)
	if err != nil {
		return Fig12Row{}, err
	}
	polPF, nPF, bestPF, err := selectPolicy(t, pf)
	if err != nil {
		return Fig12Row{}, err
	}
	mctop := float64(bestPR.Cycles+bestPF.Cycles) * (1 + preprocessOverhead)

	basePR, err := defaultOpenMP(t, pr)
	if err != nil {
		return Fig12Row{}, err
	}
	basePF, err := defaultOpenMP(t, pf)
	if err != nil {
		return Fig12Row{}, err
	}
	base := float64(basePR.Cycles + basePF.Cycles)

	return Fig12Row{
		Kernel: KCombination, Platform: t.Name(), Chosen: polPF, Threads: nPF,
		RelTime: mctop / base,
	}, nil
}

// BestFixed returns the total cycles of the best SINGLE placement covering
// both Combination kernels — what a hand-tuned but non-adaptive OpenMP
// could at most achieve. Used by tests to show that switching policies
// between regions (MCTOP MP) beats any fixed choice.
func BestFixed(t *topo.Topology) (int64, error) {
	pr := KernelProfile(KPageRank, t)
	pf := KernelProfile(KPotentialFr, t)
	best := int64(-1)
	for _, pol := range CandidatePolicies() {
		for _, n := range threadCandidates(t) {
			pl, err := place.New(t, pol, place.Options{NThreads: n})
			if err != nil {
				return 0, err
			}
			a, err := exec.Estimate(t, pl.Contexts(), pr)
			if err != nil {
				return 0, err
			}
			b, err := exec.Estimate(t, pl.Contexts(), pf)
			if err != nil {
				return 0, err
			}
			total := a.Cycles + b.Cycles
			if best < 0 || total < best {
				best = total
			}
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("omp: no fixed placement found")
	}
	return best, nil
}

// AdaptiveCombination returns MCTOP MP's total cycles for the Combination
// workload without the sampling overhead (for the fixed-vs-adaptive
// comparison).
func AdaptiveCombination(t *topo.Topology) (int64, error) {
	_, _, bestPR, err := selectPolicy(t, KernelProfile(KPageRank, t))
	if err != nil {
		return 0, err
	}
	_, _, bestPF, err := selectPolicy(t, KernelProfile(KPotentialFr, t))
	if err != nil {
		return 0, err
	}
	return bestPR.Cycles + bestPF.Cycles, nil
}
