package spool

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/topo"
)

// testTopo infers a small enriched Ivy topology once and shares it.
var testTopo = sync.OnceValue(func() *topo.Topology {
	p, err := sim.ByName("Ivy")
	if err != nil {
		panic(err)
	}
	m, err := machine.NewSim(p, 1)
	if err != nil {
		panic(err)
	}
	res, err := mctopalg.Infer(m, mctopalg.Options{Reps: 51})
	if err != nil {
		panic(err)
	}
	t, err := plugins.Enrich(m, res.Topology, nil)
	if err != nil {
		panic(err)
	}
	return t
})

func encodeTopo(t *testing.T, top *topo.Topology) []byte {
	t.Helper()
	var buf bytes.Buffer
	spec := top.Spec()
	if err := topo.Encode(&buf, &spec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestSpool(t *testing.T) *Spool {
	t.Helper()
	s, err := New(t.TempDir(), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTopologyRoundTripThroughSpool(t *testing.T) {
	top := testTopo()
	opt := mctopalg.Options{Reps: 51}
	key := registry.TopoKey("Ivy", 1, opt)

	s := newTestSpool(t)
	s.Put(registry.KindTopology, key, top)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after one put, want 1", s.Len())
	}

	// Same process: Get decodes the file back.
	v, ok := s.Get(registry.KindTopology, key)
	if !ok {
		t.Fatal("spooled topology missed")
	}
	if got := encodeTopo(t, v.(*topo.Topology)); !bytes.Equal(got, encodeTopo(t, top)) {
		t.Fatal("spooled topology is not byte-identical to the original")
	}

	// Fresh process: a new Spool over the same dir scans the file in.
	s2, err := New(s.Dir(), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("fresh spool scanned %d entries, want 1", s2.Len())
	}
	v2, ok := s2.Get(registry.KindTopology, key)
	if !ok {
		t.Fatal("fresh spool missed the scanned topology")
	}
	if got := encodeTopo(t, v2.(*topo.Topology)); !bytes.Equal(got, encodeTopo(t, top)) {
		t.Fatal("fresh-spool topology is not byte-identical to the original")
	}

	// Wrong kind and unknown keys miss.
	if _, ok := s2.Get(registry.KindPlacement, key); ok {
		t.Fatal("topology key served as a placement")
	}
	if _, ok := s2.Get(registry.KindTopology, key+"x"); ok {
		t.Fatal("unknown key hit")
	}
}

func TestPlacementSidecarRoundTrip(t *testing.T) {
	top := testTopo()
	opt := mctopalg.Options{Reps: 51}
	tk := registry.TopoKey("Ivy", 1, opt)

	pl, err := place.NewFrom(top, place.RRCore, place.Options{NThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	pk := fmt.Sprintf("place|%s|%s|%d", tk, pl.PolicyName(), 8)

	s := newTestSpool(t)
	s.Put(registry.KindTopology, tk, top)
	s.Put(registry.KindPlacement, pk, pl)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// A fresh spool rebuilds the placement from the sidecar + topology.
	s2, err := New(s.Dir(), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok := s2.Get(registry.KindPlacement, pk)
	if !ok {
		t.Fatal("spooled placement missed")
	}
	got := v.(*place.Placement)
	if got.PolicyName() != pl.PolicyName() || got.Policy() != place.RRCore {
		t.Fatalf("policy identity lost: %s/%v", got.PolicyName(), got.Policy())
	}
	wantCtxs := fmt.Sprint(pl.Contexts())
	if fmt.Sprint(got.Contexts()) != wantCtxs {
		t.Fatalf("contexts %v, want %v", got.Contexts(), pl.Contexts())
	}
	if got.String() != pl.String() {
		t.Fatalf("Figure 7 report differs:\n%s\nvs\n%s", got.String(), pl.String())
	}
}

// TestScanSkipsUndecodableFiles: torn, corrupt, foreign and stale-temp
// files must be logged and skipped, never fail startup or a read.
func TestScanSkipsUndecodableFiles(t *testing.T) {
	dir := t.TempDir()
	top := testTopo()
	opt := mctopalg.Options{Reps: 51}
	good := registry.TopoKey("Ivy", 1, opt)

	{
		s, err := New(dir, WithLogf(t.Logf))
		if err != nil {
			t.Fatal(err)
		}
		s.Put(registry.KindTopology, good, top)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// A torn description file (valid header, truncated body).
	tornKey := registry.TopoKey("Ivy", 2, opt)
	torn := fmt.Sprintf("#key %s\nmctop 1\nname Ivy\ncontexts 16\n", tornKey)
	if err := os.WriteFile(filepath.Join(dir, fileName(tornKey, topoExt)), []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	// A file with no key header.
	if err := os.WriteFile(filepath.Join(dir, "foreign-0000000000000000.mctop"), []byte("mctop 1\nend\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Garbage under a .place name, and a stale temp file.
	if err := os.WriteFile(filepath.Join(dir, "junk-0000000000000000.place"), []byte("#key junk\nnot a sidecar\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "whatever.mctop.12345.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logged atomic.Int64
	s, err := New(dir, WithLogf(func(format string, args ...any) {
		logged.Add(1)
		t.Logf("spool: "+format, args...)
	}))
	if err != nil {
		t.Fatalf("startup failed on a dirty spool: %v", err)
	}
	defer s.Close()
	if logged.Load() == 0 {
		t.Fatal("dirty spool produced no skip logs")
	}
	// The stale temp file is cleaned up.
	if _, err := os.Stat(filepath.Join(dir, "whatever.mctop.12345.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived the scan")
	}
	// The good entry still serves.
	if _, ok := s.Get(registry.KindTopology, good); !ok {
		t.Fatal("good entry lost among the junk")
	}
	// The torn entry scanned (its header is fine) but degrades to a miss
	// at read time, with an error counted.
	if _, ok := s.Get(registry.KindTopology, tornKey); ok {
		t.Fatal("torn description file served a topology")
	}
	st := s.Stats()[0]
	if st.Errors == 0 {
		t.Fatalf("stats show no errors after reading a torn file: %+v", st)
	}
}

// TestTieredWarmStart is the tentpole behavior at store level: a fresh
// LRU over a populated spool serves without a single inference, and the
// served bytes match the inferring run's.
func TestTieredWarmStart(t *testing.T) {
	dir := t.TempDir()
	opt := mctopalg.Options{Reps: 51}
	var inferences atomic.Int64
	infer := func(platform string, seed uint64, o mctopalg.Options) (*topo.Topology, error) {
		inferences.Add(1)
		p, err := sim.ByName(platform)
		if err != nil {
			return nil, err
		}
		m, err := machine.NewSim(p, seed)
		if err != nil {
			return nil, err
		}
		res, err := mctopalg.Infer(m, o)
		if err != nil {
			return nil, err
		}
		return plugins.Enrich(m, res.Topology, nil)
	}

	newReg := func() *registry.Registry {
		sp, err := New(dir, WithLogf(t.Logf))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sp.Close() })
		return registry.New(registry.Options{
			Infer: infer,
			Store: registry.NewTiered(registry.NewLRU(64, 0), sp),
		})
	}

	// Process 1: infer, place, flush.
	r1 := newReg()
	top1, err := r1.Topology("Ivy", 42, opt)
	if err != nil {
		t.Fatal(err)
	}
	pl1, err := r1.Place("Ivy", 42, opt, "CON_HWC", 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := inferences.Load(); n != 1 {
		t.Fatalf("process 1 ran %d inferences, want 1", n)
	}

	// Process 2: fresh LRU, same spool dir — zero inferences.
	r2 := newReg()
	pl2, err := r2.Place("Ivy", 42, opt, "CON_HWC", 30)
	if err != nil {
		t.Fatal(err)
	}
	top2, err := r2.Topology("Ivy", 42, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := inferences.Load(); n != 1 {
		t.Fatalf("warm start ran %d extra inference(s), want 0", n-1)
	}
	if st := r2.Stats(); st.Inferences != 0 {
		t.Fatalf("warm registry Stats().Inferences = %d, want 0", st.Inferences)
	}
	if !bytes.Equal(encodeTopo(t, top2), encodeTopo(t, top1)) {
		t.Fatal("warm-start topology is not byte-identical")
	}
	if pl2.String() != pl1.String() || fmt.Sprint(pl2.Contexts()) != fmt.Sprint(pl1.Contexts()) {
		t.Fatal("warm-start placement differs from the inferring run's")
	}

	// The warm topology was promoted into the LRU tier: a re-read is a
	// pure memory hit returning the same instance.
	again, err := r2.Topology("Ivy", 42, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again != top2 {
		t.Fatal("second warm read was not served from the promoted LRU entry")
	}

	// Registry stats expose both tiers.
	st := r2.Stats()
	if len(st.Tiers) != 2 || st.Tiers[0].Tier != "lru" || st.Tiers[1].Tier != "spool" {
		t.Fatalf("tier stats = %+v", st.Tiers)
	}
}

// TestSpoolConcurrent hammers Put/Get/Flush from many goroutines (run
// with -race).
func TestSpoolConcurrent(t *testing.T) {
	s := newTestSpool(t)
	top := testTopo()
	opt := mctopalg.Options{Reps: 51}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := registry.TopoKey("Ivy", uint64((g+i)%5), opt)
				switch i % 3 {
				case 0:
					s.Put(registry.KindTopology, key, top)
				case 1:
					s.Get(registry.KindTopology, key)
				case 2:
					s.Flush()
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5 distinct keys", s.Len())
	}
	// Close is idempotent and Puts after Close are dropped, not panics.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Put(registry.KindTopology, "late", top)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestPurgeRemovesFiles(t *testing.T) {
	s := newTestSpool(t)
	opt := mctopalg.Options{Reps: 51}
	s.Put(registry.KindTopology, registry.TopoKey("Ivy", 1, opt), testTopo())
	s.Purge()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after purge", s.Len())
	}
	des, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), topoExt) || strings.HasSuffix(de.Name(), placeExt) {
			t.Fatalf("purge left %s behind", de.Name())
		}
	}
}
