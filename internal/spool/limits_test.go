package spool

// Spool hygiene tests: the WithMaxBytes/WithMaxAge bounds evict
// oldest-mtime files first, at the startup scan and after Flush, and the
// evictions surface in StoreStats.

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/place"
	"repro/internal/registry"
)

// putTopo spools testTopo under key and flushes so the file is on disk.
func putTopo(t *testing.T, s *Spool, key string) string {
	t.Helper()
	s.Put(registry.KindTopology, key, testTopo())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(s.dir, fileName(key, topoExt))
}

// backdate sets a spool file's mtime age seconds into the past.
func backdate(t *testing.T, path string, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

func TestMaxBytesEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	p1 := putTopo(t, s, "topo|A|1|r51")
	p2 := putTopo(t, s, "topo|B|1|r51")
	p3 := putTopo(t, s, "topo|C|1|r51")
	backdate(t, p1, 3*time.Hour)
	backdate(t, p2, 2*time.Hour)
	backdate(t, p3, time.Hour)
	fi, err := os.Stat(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a budget that fits two files: the startup scan must
	// evict exactly the oldest.
	s2, err := New(dir, WithLogf(t.Logf), WithMaxBytes(2*fi.Size()+fi.Size()/2))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("after scan with byte bound: %d entries, want 2", s2.Len())
	}
	if _, err := os.Stat(p1); !os.IsNotExist(err) {
		t.Fatalf("oldest file survived the byte bound: %v", err)
	}
	for _, p := range []string{p2, p3} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("newer file evicted: %v", err)
		}
	}
	st := s2.Stats()[0]
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestMaxAgeEvictsAfterFlush(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, WithLogf(t.Logf), WithMaxAge(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pOld := putTopo(t, s, "topo|old|1|r51")
	backdate(t, pOld, 2*time.Hour)
	pNew := putTopo(t, s, "topo|new|1|r51") // Flush enforces the bound

	if _, err := os.Stat(pOld); !os.IsNotExist(err) {
		t.Fatalf("stale file survived Flush: %v", err)
	}
	if _, err := os.Stat(pNew); err != nil {
		t.Fatalf("fresh file evicted: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// The evicted entry must also be gone from the index: a Get degrades
	// to a miss, not an error.
	if _, ok := s.Get(registry.KindTopology, "topo|old|1|r51"); ok {
		t.Fatal("evicted entry still served")
	}
	if st := s.Stats()[0]; st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestEvictionCascadesToDependentSidecars(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, WithLogf(t.Logf), WithMaxAge(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	topoKey := "topo|Ivy|1|r51"
	placeKey := "place|" + topoKey + "|MCTOP_PLACE_RR_CORE|4"
	pTopo := putTopo(t, s, topoKey)
	pl, err := place.NewFrom(testTopo(), place.RRCore, place.Options{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(registry.KindPlacement, placeKey, pl)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Only the topology is stale — but evicting it must cascade to the
	// sidecar, which could never load again without it.
	backdate(t, pTopo, 2*time.Hour)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after cascading eviction, want 0", s.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, fileName(placeKey, placeExt))); !os.IsNotExist(err) {
		t.Fatalf("orphaned sidecar survived its topology's eviction: %v", err)
	}
	if st := s.Stats()[0]; st.Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2 (topology + cascaded sidecar)", st.Evictions)
	}
}

// TestPlacementPutPersistsItsTopology: a sidecar is only loadable through
// its referenced .mctop file, so a placement Put that arrives alone (the
// remote-tier promotion path — the edge never Puts the topology) must
// persist the topology alongside, or a restarted edge re-infers.
func TestPlacementPutPersistsItsTopology(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	topoKey := "topo|Ivy|1|r51"
	placeKey := "place|" + topoKey + "|MCTOP_PLACE_RR_CORE|4"
	pl, err := place.NewFrom(testTopo(), place.RRCore, place.Options{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(registry.KindPlacement, placeKey, pl)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{fileName(topoKey, topoExt), fileName(placeKey, placeExt)} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s after a lone placement Put: %v", f, err)
		}
	}
	// A fresh spool over the directory serves the placement on its own.
	s2, err := New(dir, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(registry.KindPlacement, placeKey); !ok {
		t.Fatal("restarted spool cannot serve the lone-Put placement")
	}
}

func TestUnboundedSpoolNeverEvicts(t *testing.T) {
	s := newTestSpool(t)
	p := putTopo(t, s, "topo|A|1|r51")
	backdate(t, p, 24*time.Hour)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("unbounded spool evicted: %v", err)
	}
	if st := s.Stats()[0]; st.Evictions != 0 {
		t.Fatalf("Evictions = %d, want 0", st.Evictions)
	}
}
