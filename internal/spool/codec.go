package spool

// The spool's interchange codec, factored out of the file-backed tier so
// every carrier of the on-disk format — the spool itself, `mctop
// export/import/fetch`, mctopd's /v1/export endpoint and the remote store
// tier that consumes it — encodes and decodes the exact same bytes. A
// topology travels as a `#key`-headed description file; a placement as the
// compact sidecar documented on EncodeSidecar. Everything here works on
// io.Reader/io.Writer: the spool wraps files around it, the fleet tier
// wraps HTTP bodies.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/place"
	"repro/internal/taskmap"
	"repro/internal/topo"
)

// EncodeTopology writes a topology as a `#key`-headed MCTOP description
// file: the interchange format of the spool, `mctop export` and mctopd's
// /v1/export. The header is a comment, so any .mctop reader decodes the
// body; key may be empty for a bare description file.
func EncodeTopology(w io.Writer, key string, t *topo.Topology) error {
	if key != "" {
		if _, err := fmt.Fprintf(w, "%s%s\n", keyHeader, key); err != nil {
			return err
		}
	}
	spec := t.Spec()
	return topo.Encode(w, &spec)
}

// DecodeTopology reads a description file — spooled, fetched or bare — and
// returns its registry key (empty when the stream has no `#key` header) and
// the topology.
func DecodeTopology(r io.Reader) (key string, t *topo.Topology, err error) {
	br := bufio.NewReader(r)
	// Peel leading `#key` headers by hand; topo.Decode skips all comments,
	// but the key must be surfaced, not skipped.
	for {
		peek, err := br.Peek(1)
		if err != nil {
			return "", nil, err
		}
		if peek[0] != '#' {
			break
		}
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return "", nil, err
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, keyHeader) {
			key = strings.TrimSpace(strings.TrimPrefix(line, keyHeader))
		}
		if err == io.EOF {
			return "", nil, fmt.Errorf("only comments")
		}
	}
	spec, err := topo.Decode(br)
	if err != nil {
		return "", nil, err
	}
	t, err = topo.FromSpec(*spec)
	if err != nil {
		return "", nil, err
	}
	return key, t, nil
}

// DecodeTopologyFile is DecodeTopology over a file — the interchange entry
// point behind `mctop import`.
func DecodeTopologyFile(path string) (key string, t *topo.Topology, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	key, t, err = DecodeTopology(f)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	return key, t, nil
}

// Sidecar is the decoded form of a .place file: everything needed to
// rebuild the placement (via place.Reconstruct on the referenced topology)
// without re-running the policy.
type Sidecar struct {
	// Key is the registry placement key (from the #key header; may be
	// empty on hand-written files).
	Key string
	// TopoKey is the registry key of the topology the placement was
	// computed on.
	TopoKey string
	// Policy is the policy name recorded by the placement.
	Policy string
	// Ctxs is the assignment order (hardware context per thread slot).
	Ctxs []int
}

// EncodeSidecar writes the .place sidecar format:
//
//	#key <placement key>
//	mctop-place 1
//	topokey <topology key>
//	policy <name>
//	nthreads <n>
//	ctxs <id...>           (omitted when the placement has no slots)
//	end
func EncodeSidecar(w io.Writer, key, topoKey string, p *place.Placement) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s%s\n", keyHeader, key)
	fmt.Fprintln(bw, placeMagic)
	fmt.Fprintf(bw, "topokey %s\n", topoKey)
	fmt.Fprintf(bw, "policy %s\n", p.PolicyName())
	ctxs := p.Contexts()
	fmt.Fprintf(bw, "nthreads %d\n", len(ctxs))
	if len(ctxs) > 0 {
		bw.WriteString("ctxs")
		for _, c := range ctxs {
			fmt.Fprintf(bw, " %d", c)
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// MapSidecar is the decoded form of a .map file: everything needed to
// rebuild the mapping (via taskmap.Reconstruct on the referenced topology)
// without re-running the mapper.
type MapSidecar struct {
	// Key is the registry mapping key (from the #key header; may be empty
	// on hand-written files).
	Key string
	// TopoKey is the registry key of the topology the mapping was computed
	// on.
	TopoKey string
	// DAGName is the (display-only) name of the mapped DAG; may be empty.
	DAGName string
	// DAGHash / Nodes / Edges identify the DAG structurally, matching the
	// fields embedded in the mapping key.
	DAGHash uint64
	Nodes   int
	Edges   int
	// Algo and Cost record how the assignment was produced and its
	// estimated completion time in cycles.
	Algo string
	Cost int64
	// Assign is the task → hardware-context assignment, one per node.
	Assign []int
}

// EncodeMapSidecar writes the .map sidecar format:
//
//	#key <mapping key>
//	mctop-map 1
//	topokey <topology key>
//	dagname <name>                 (omitted when the DAG is unnamed)
//	dag <hash16hex> <nodes> <edges>
//	algo <name>
//	cost <cycles>
//	assign <ctx...>
//	end
func EncodeMapSidecar(w io.Writer, key, topoKey string, m *taskmap.Mapping) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s%s\n", keyHeader, key)
	fmt.Fprintln(bw, mapMagic)
	fmt.Fprintf(bw, "topokey %s\n", topoKey)
	if name := m.DAGName(); name != "" {
		fmt.Fprintf(bw, "dagname %s\n", name)
	}
	fmt.Fprintf(bw, "dag %016x %d %d\n", m.DAGHash(), m.NumNodes(), m.NumEdges())
	fmt.Fprintf(bw, "algo %s\n", m.Algo())
	fmt.Fprintf(bw, "cost %d\n", m.Cost())
	bw.WriteString("assign")
	for _, c := range m.Assignment() {
		fmt.Fprintf(bw, " %d", c)
	}
	bw.WriteByte('\n')
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// DecodeMapSidecar parses a .map sidecar.
func DecodeMapSidecar(r io.Reader) (*MapSidecar, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	side := &MapSidecar{Nodes: -1, Cost: -1}
	sawMagic, sawEnd, sawAlgo := false, false, false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, keyHeader) {
				side.Key = strings.TrimSpace(strings.TrimPrefix(line, keyHeader))
			}
			continue
		}
		if !sawMagic {
			if line != mapMagic {
				return nil, fmt.Errorf("bad magic %q", line)
			}
			sawMagic = true
			continue
		}
		if line == "end" {
			sawEnd = true
			break
		}
		directive, rest, _ := strings.Cut(line, " ")
		switch directive {
		case "topokey":
			side.TopoKey = strings.TrimSpace(rest)
		case "dagname":
			side.DAGName = strings.TrimSpace(rest)
		case "dag":
			flds := strings.Fields(rest)
			if len(flds) != 3 {
				return nil, fmt.Errorf("bad dag directive %q", rest)
			}
			if len(flds[0]) != 16 || strings.ToLower(flds[0]) != flds[0] {
				return nil, fmt.Errorf("bad DAG hash %q", flds[0])
			}
			h, err := strconv.ParseUint(flds[0], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("bad DAG hash %q", flds[0])
			}
			n, err := strconv.Atoi(flds[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad node count %q", flds[1])
			}
			e, err := strconv.Atoi(flds[2])
			if err != nil || e < 0 {
				return nil, fmt.Errorf("bad edge count %q", flds[2])
			}
			side.DAGHash, side.Nodes, side.Edges = h, n, e
		case "algo":
			side.Algo = strings.TrimSpace(rest)
			sawAlgo = true
		case "cost":
			c, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil || c < 0 {
				return nil, fmt.Errorf("bad cost %q", rest)
			}
			side.Cost = c
		case "assign":
			for _, fld := range strings.Fields(rest) {
				v, err := strconv.Atoi(fld)
				if err != nil {
					return nil, fmt.Errorf("bad assign ctx %q", fld)
				}
				side.Assign = append(side.Assign, v)
			}
		default:
			return nil, fmt.Errorf("unknown directive %q", directive)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	switch {
	case !sawMagic:
		return nil, fmt.Errorf("empty sidecar")
	case !sawEnd:
		return nil, fmt.Errorf("missing end marker")
	case side.TopoKey == "":
		return nil, fmt.Errorf("missing topokey")
	case side.Nodes < 0:
		return nil, fmt.Errorf("missing dag directive")
	case !sawAlgo || side.Algo == "":
		return nil, fmt.Errorf("missing algo")
	case side.Cost < 0:
		return nil, fmt.Errorf("missing cost")
	case len(side.Assign) != side.Nodes:
		return nil, fmt.Errorf("%d nodes but %d assignments", side.Nodes, len(side.Assign))
	}
	return side, nil
}

// DecodeSidecar parses a .place sidecar.
func DecodeSidecar(r io.Reader) (*Sidecar, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	side := &Sidecar{}
	sawMagic, sawEnd := false, false
	nThreads := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, keyHeader) {
				side.Key = strings.TrimSpace(strings.TrimPrefix(line, keyHeader))
			}
			continue
		}
		if !sawMagic {
			if line != placeMagic {
				return nil, fmt.Errorf("bad magic %q", line)
			}
			sawMagic = true
			continue
		}
		if line == "end" {
			sawEnd = true
			break
		}
		directive, rest, _ := strings.Cut(line, " ")
		switch directive {
		case "topokey":
			side.TopoKey = strings.TrimSpace(rest)
		case "policy":
			side.Policy = strings.TrimSpace(rest)
		case "nthreads":
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad nthreads %q", rest)
			}
			nThreads = n
		case "ctxs":
			for _, fld := range strings.Fields(rest) {
				v, err := strconv.Atoi(fld)
				if err != nil {
					return nil, fmt.Errorf("bad ctx %q", fld)
				}
				side.Ctxs = append(side.Ctxs, v)
			}
		default:
			return nil, fmt.Errorf("unknown directive %q", directive)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	switch {
	case !sawMagic:
		return nil, fmt.Errorf("empty sidecar")
	case !sawEnd:
		return nil, fmt.Errorf("missing end marker")
	case side.TopoKey == "":
		return nil, fmt.Errorf("missing topokey")
	case side.Policy == "":
		return nil, fmt.Errorf("missing policy")
	case nThreads != len(side.Ctxs):
		return nil, fmt.Errorf("nthreads %d but %d ctxs", nThreads, len(side.Ctxs))
	}
	return side, nil
}
