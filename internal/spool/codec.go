package spool

// The spool's interchange codec, factored out of the file-backed tier so
// every carrier of the on-disk format — the spool itself, `mctop
// export/import/fetch`, mctopd's /v1/export endpoint and the remote store
// tier that consumes it — encodes and decodes the exact same bytes. A
// topology travels as a `#key`-headed description file; a placement as the
// compact sidecar documented on EncodeSidecar. Everything here works on
// io.Reader/io.Writer: the spool wraps files around it, the fleet tier
// wraps HTTP bodies.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/place"
	"repro/internal/topo"
)

// EncodeTopology writes a topology as a `#key`-headed MCTOP description
// file: the interchange format of the spool, `mctop export` and mctopd's
// /v1/export. The header is a comment, so any .mctop reader decodes the
// body; key may be empty for a bare description file.
func EncodeTopology(w io.Writer, key string, t *topo.Topology) error {
	if key != "" {
		if _, err := fmt.Fprintf(w, "%s%s\n", keyHeader, key); err != nil {
			return err
		}
	}
	spec := t.Spec()
	return topo.Encode(w, &spec)
}

// DecodeTopology reads a description file — spooled, fetched or bare — and
// returns its registry key (empty when the stream has no `#key` header) and
// the topology.
func DecodeTopology(r io.Reader) (key string, t *topo.Topology, err error) {
	br := bufio.NewReader(r)
	// Peel leading `#key` headers by hand; topo.Decode skips all comments,
	// but the key must be surfaced, not skipped.
	for {
		peek, err := br.Peek(1)
		if err != nil {
			return "", nil, err
		}
		if peek[0] != '#' {
			break
		}
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return "", nil, err
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, keyHeader) {
			key = strings.TrimSpace(strings.TrimPrefix(line, keyHeader))
		}
		if err == io.EOF {
			return "", nil, fmt.Errorf("only comments")
		}
	}
	spec, err := topo.Decode(br)
	if err != nil {
		return "", nil, err
	}
	t, err = topo.FromSpec(*spec)
	if err != nil {
		return "", nil, err
	}
	return key, t, nil
}

// DecodeTopologyFile is DecodeTopology over a file — the interchange entry
// point behind `mctop import`.
func DecodeTopologyFile(path string) (key string, t *topo.Topology, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	key, t, err = DecodeTopology(f)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	return key, t, nil
}

// Sidecar is the decoded form of a .place file: everything needed to
// rebuild the placement (via place.Reconstruct on the referenced topology)
// without re-running the policy.
type Sidecar struct {
	// Key is the registry placement key (from the #key header; may be
	// empty on hand-written files).
	Key string
	// TopoKey is the registry key of the topology the placement was
	// computed on.
	TopoKey string
	// Policy is the policy name recorded by the placement.
	Policy string
	// Ctxs is the assignment order (hardware context per thread slot).
	Ctxs []int
}

// EncodeSidecar writes the .place sidecar format:
//
//	#key <placement key>
//	mctop-place 1
//	topokey <topology key>
//	policy <name>
//	nthreads <n>
//	ctxs <id...>           (omitted when the placement has no slots)
//	end
func EncodeSidecar(w io.Writer, key, topoKey string, p *place.Placement) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s%s\n", keyHeader, key)
	fmt.Fprintln(bw, placeMagic)
	fmt.Fprintf(bw, "topokey %s\n", topoKey)
	fmt.Fprintf(bw, "policy %s\n", p.PolicyName())
	ctxs := p.Contexts()
	fmt.Fprintf(bw, "nthreads %d\n", len(ctxs))
	if len(ctxs) > 0 {
		bw.WriteString("ctxs")
		for _, c := range ctxs {
			fmt.Fprintf(bw, " %d", c)
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// DecodeSidecar parses a .place sidecar.
func DecodeSidecar(r io.Reader) (*Sidecar, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	side := &Sidecar{}
	sawMagic, sawEnd := false, false
	nThreads := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, keyHeader) {
				side.Key = strings.TrimSpace(strings.TrimPrefix(line, keyHeader))
			}
			continue
		}
		if !sawMagic {
			if line != placeMagic {
				return nil, fmt.Errorf("bad magic %q", line)
			}
			sawMagic = true
			continue
		}
		if line == "end" {
			sawEnd = true
			break
		}
		directive, rest, _ := strings.Cut(line, " ")
		switch directive {
		case "topokey":
			side.TopoKey = strings.TrimSpace(rest)
		case "policy":
			side.Policy = strings.TrimSpace(rest)
		case "nthreads":
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad nthreads %q", rest)
			}
			nThreads = n
		case "ctxs":
			for _, fld := range strings.Fields(rest) {
				v, err := strconv.Atoi(fld)
				if err != nil {
					return nil, fmt.Errorf("bad ctx %q", fld)
				}
				side.Ctxs = append(side.Ctxs, v)
			}
		default:
			return nil, fmt.Errorf("unknown directive %q", directive)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	switch {
	case !sawMagic:
		return nil, fmt.Errorf("empty sidecar")
	case !sawEnd:
		return nil, fmt.Errorf("missing end marker")
	case side.TopoKey == "":
		return nil, fmt.Errorf("missing topokey")
	case side.Policy == "":
		return nil, fmt.Errorf("missing policy")
	case nThreads != len(side.Ctxs):
		return nil, fmt.Errorf("nthreads %d but %d ctxs", nThreads, len(side.Ctxs))
	}
	return side, nil
}
