// Package spool is the registry's persistent cache tier: a directory of
// MCTOP description files. The paper's deployment model is that a topology
// is "created once, then used to load the topology" from disk thereafter
// (Section 2) — the spool turns that artifact into a cache level, so a
// restarted daemon warm-starts from the files a previous process inferred
// instead of re-running the O(N²) measurement phase.
//
// On-disk layout (one file per entry, flat in the spool directory):
//
//   - topologies: <sanitized-key>-<fnv64>.mctop — a `#key <registry key>`
//     header line followed by a standard description file (topo.Encode).
//     The header is a comment, so any .mctop reader decodes the file.
//   - placements: <sanitized-key>-<fnv64>.place — a compact sidecar
//     (format below) holding the policy name and assignment order plus the
//     key of the topology it was computed on; loading one decodes that
//     topology file and rebuilds the placement via place.Reconstruct,
//     without re-running the policy.
//
// Writes are write-behind: Put enqueues to a background writer (falling
// back to a synchronous write when the queue is full, so nothing is ever
// dropped), every file lands via write-temp-then-rename so a crash can
// never leave a torn file under a spool name, and Flush/Close drain the
// queue — what mctopd calls on SIGTERM. Reads that hit an undecodable or
// foreign file log, count an error, and report a miss: a broken disk
// degrades to re-inference, never to a serving failure.
package spool

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/place"
	"repro/internal/registry"
	"repro/internal/topo"
)

const (
	topoExt      = ".mctop"
	placeExt     = ".place"
	keyHeader    = "#key "
	placeMagic   = "mctop-place 1"
	writeBacklog = 64
)

// Spool is a registry.Store persisting entries as description files.
type Spool struct {
	dir  string
	logf func(format string, args ...any)

	mu      sync.Mutex
	entries map[string]registry.Kind // keys with a durable file on disk

	// sendMu serializes Put/Flush senders against Close closing the
	// channel; closed flips first so late senders degrade to no-ops.
	sendMu  sync.RWMutex
	closed  bool
	pending chan writeOp
	done    chan struct{} // writer goroutine exited

	// lastMu/lastKey/lastTopo memoize the most recently decoded topology:
	// a warm-start burst loads many .place sidecars referencing one
	// topology, and without the memo each would re-decode the same
	// description file.
	lastMu   sync.Mutex
	lastKey  string
	lastTopo *topo.Topology

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
	errors atomic.Int64
}

// writeOp is one queued write, or a flush barrier (flush != nil).
type writeOp struct {
	kind  registry.Kind
	key   string
	val   any
	flush chan struct{}
}

// Option configures a Spool.
type Option func(*Spool)

// WithLogf redirects the spool's skip-and-log messages (default:
// log.Printf with a "spool: " prefix).
func WithLogf(logf func(format string, args ...any)) Option {
	return func(s *Spool) { s.logf = logf }
}

// New opens (creating if needed) a spool directory and scans it: files
// with a readable key header become servable entries; undecodable,
// foreign, or leftover temporary files are logged and skipped — a torn or
// corrupt spool must never fail a daemon's startup.
func New(dir string, opts ...Option) (*Spool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	s := &Spool{
		dir:     dir,
		logf:    func(format string, args ...any) { log.Printf("spool: "+format, args...) },
		entries: make(map[string]registry.Kind),
		pending: make(chan writeOp, writeBacklog),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	go s.writer()
	return s, nil
}

// Dir returns the spool directory.
func (s *Spool) Dir() string { return s.dir }

// scan indexes the directory by each file's key header. Only the header is
// read here — full decoding (and its skip-and-log handling) happens on
// Get, so startup stays O(files), not O(bytes).
func (s *Spool) scan() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		var kind registry.Kind
		switch filepath.Ext(name) {
		case topoExt:
			kind = registry.KindTopology
		case placeExt:
			kind = registry.KindPlacement
		default:
			// Leftover temp files from a crashed writer are dead weight:
			// renames are atomic, so nothing references them.
			if strings.HasSuffix(name, ".tmp") {
				if err := os.Remove(filepath.Join(s.dir, name)); err == nil {
					s.logf("removed stale temp file %s", name)
				}
			}
			continue
		}
		key, err := readKeyHeader(filepath.Join(s.dir, name))
		if err != nil {
			s.logf("skipping %s: %v", name, err)
			s.errors.Add(1)
			continue
		}
		if fileName(key, extOf(kind)) != name {
			s.logf("skipping %s: key header does not match file name", name)
			s.errors.Add(1)
			continue
		}
		s.entries[key] = kind
	}
	return nil
}

func extOf(kind registry.Kind) string {
	if kind == registry.KindPlacement {
		return placeExt
	}
	return topoExt
}

// fileName maps a registry key to its spool file: a sanitized, truncated
// prefix for humans listing the directory, plus the full FNV-64a of the
// key so sanitization can never make two keys collide.
func fileName(key, ext string) string {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 80 {
			break
		}
	}
	return fmt.Sprintf("%s-%016x%s", b.String(), h, ext)
}

// readKeyHeader returns the `#key ` header of a spool file.
func readKeyHeader(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, keyHeader) {
			key := strings.TrimSpace(strings.TrimPrefix(line, keyHeader))
			if key == "" {
				return "", fmt.Errorf("empty key header")
			}
			return key, nil
		}
		// Headers lead the file; the first non-comment line ends them.
		if !strings.HasPrefix(line, "#") {
			return "", fmt.Errorf("no key header")
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("no key header")
}

// Get implements registry.Store: decode the entry's file, degrading every
// failure to a logged miss.
func (s *Spool) Get(kind registry.Kind, key string) (any, bool) {
	s.mu.Lock()
	k, ok := s.entries[key]
	s.mu.Unlock()
	if !ok || k != kind {
		s.misses.Add(1)
		return nil, false
	}
	var (
		v   any
		err error
	)
	switch kind {
	case registry.KindTopology:
		v, err = s.loadTopology(key)
	case registry.KindPlacement:
		v, err = s.loadPlacement(key)
	default:
		err = fmt.Errorf("unknown entry kind %v", kind)
	}
	if err != nil {
		s.logf("skipping %s: %v", fileName(key, extOf(kind)), err)
		s.errors.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return v, true
}

func (s *Spool) loadTopology(key string) (*topo.Topology, error) {
	s.lastMu.Lock()
	if s.lastKey == key && s.lastTopo != nil {
		t := s.lastTopo
		s.lastMu.Unlock()
		return t, nil
	}
	s.lastMu.Unlock()
	path := filepath.Join(s.dir, fileName(key, topoExt))
	gotKey, t, err := DecodeTopologyFile(path)
	if err != nil {
		return nil, err
	}
	if gotKey != "" && gotKey != key {
		return nil, fmt.Errorf("key header names %q", gotKey)
	}
	s.lastMu.Lock()
	s.lastKey, s.lastTopo = key, t
	s.lastMu.Unlock()
	return t, nil
}

func (s *Spool) loadPlacement(key string) (*place.Placement, error) {
	path := filepath.Join(s.dir, fileName(key, placeExt))
	side, err := decodePlacementFile(path)
	if err != nil {
		return nil, err
	}
	if side.key != "" && side.key != key {
		return nil, fmt.Errorf("key header names %q", side.key)
	}
	t, err := s.loadTopology(side.topoKey)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", side.topoKey, err)
	}
	return place.Reconstruct(t, side.policy, side.ctxs)
}

// Put implements registry.Store: enqueue a write-behind, falling back to a
// synchronous write when the queue is full so no accepted entry is ever
// dropped. Puts after Close are dropped (and logged): the spool is no
// longer durable once closed.
func (s *Spool) Put(kind registry.Kind, key string, val any) {
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		s.logf("dropping write of %q: spool is closed", key)
		s.errors.Add(1)
		return
	}
	select {
	case s.pending <- writeOp{kind: kind, key: key, val: val}:
		s.sendMu.RUnlock()
	default:
		s.sendMu.RUnlock()
		s.write(writeOp{kind: kind, key: key, val: val})
	}
}

// writer is the write-behind goroutine: it drains the queue, turning each
// op into an atomic file write, and acknowledges flush barriers in FIFO
// order (every write accepted before the Flush is durable when it fires).
func (s *Spool) writer() {
	defer close(s.done)
	for op := range s.pending {
		if op.flush != nil {
			close(op.flush)
			continue
		}
		s.write(op)
	}
}

// write persists one entry: encode to a temp file in the spool directory,
// then rename over the final name — the atomicity that guarantees a crash
// can never leave a torn file where a reader looks.
func (s *Spool) write(op writeOp) {
	var encode func(w io.Writer) error
	switch v := op.val.(type) {
	case *topo.Topology:
		if op.kind != registry.KindTopology {
			s.logf("dropping write of %q: topology under kind %v", op.key, op.kind)
			s.errors.Add(1)
			return
		}
		spec := v.Spec()
		encode = func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "%s%s\n", keyHeader, op.key); err != nil {
				return err
			}
			return topo.Encode(w, &spec)
		}
	case *place.Placement:
		if op.kind != registry.KindPlacement {
			s.logf("dropping write of %q: placement under kind %v", op.key, op.kind)
			s.errors.Add(1)
			return
		}
		topoKey, ok := topoKeyOfPlaceKey(op.key)
		if !ok {
			s.logf("dropping write of %q: not a placement key", op.key)
			s.errors.Add(1)
			return
		}
		encode = func(w io.Writer) error {
			return encodePlacement(w, op.key, topoKey, v)
		}
	default:
		s.logf("dropping write of %q: unsupported value %T", op.key, op.val)
		s.errors.Add(1)
		return
	}
	path := filepath.Join(s.dir, fileName(op.key, extOf(op.kind)))
	if err := topo.WriteFileAtomic(path, encode); err != nil {
		s.logf("writing %q: %v", op.key, err)
		s.errors.Add(1)
		return
	}
	s.puts.Add(1)
	s.mu.Lock()
	s.entries[op.key] = op.kind
	s.mu.Unlock()
}

// Len implements registry.Store.
func (s *Spool) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Purge implements registry.Store: flush pending writes, then remove every
// spool file. (Registry.Purge on a tiered store purges the disk tier too —
// callers that only want to drop memory purge the LRU tier directly.)
func (s *Spool) Purge() {
	s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, kind := range s.entries {
		if err := os.Remove(filepath.Join(s.dir, fileName(key, extOf(kind)))); err != nil {
			s.logf("purging %q: %v", key, err)
			s.errors.Add(1)
		}
	}
	s.entries = make(map[string]registry.Kind)
	s.lastMu.Lock()
	s.lastKey, s.lastTopo = "", nil
	s.lastMu.Unlock()
}

// Stats implements registry.Store.
func (s *Spool) Stats() []registry.StoreStats {
	st := registry.StoreStats{
		Tier:   "spool",
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Puts:   s.puts.Load(),
		Errors: s.errors.Load(),
	}
	s.mu.Lock()
	for _, kind := range s.entries {
		switch kind {
		case registry.KindTopology:
			st.Topologies++
		case registry.KindPlacement:
			st.Placements++
		}
		st.Entries++
	}
	s.mu.Unlock()
	return []registry.StoreStats{st}
}

// Flush implements registry.Flusher: block until every Put accepted so far
// is durable on disk.
func (s *Spool) Flush() error {
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		<-s.done // writer drains the queue before exiting
		return nil
	}
	barrier := make(chan struct{})
	s.pending <- writeOp{flush: barrier}
	s.sendMu.RUnlock()
	<-barrier
	return nil
}

// Close implements registry.Closer: flush and stop the writer. Gets keep
// working; later Puts are dropped with a log line.
func (s *Spool) Close() error {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	close(s.pending)
	s.sendMu.Unlock()
	<-s.done
	return nil
}

// DecodeTopologyFile reads a description file — spooled or bare — and
// returns its registry key (empty when the file has no `#key` header) and
// the topology. The interchange entry point behind `mctop import`.
func DecodeTopologyFile(path string) (key string, t *topo.Topology, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	// Peel leading `#key` headers by hand; topo.Decode skips all comments,
	// but the key must be surfaced, not skipped.
	for {
		peek, err := br.Peek(1)
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", path, err)
		}
		if peek[0] != '#' {
			break
		}
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return "", nil, fmt.Errorf("%s: %w", path, err)
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, keyHeader) {
			key = strings.TrimSpace(strings.TrimPrefix(line, keyHeader))
		}
		if err == io.EOF {
			return "", nil, fmt.Errorf("%s: only comments", path)
		}
	}
	spec, err := topo.Decode(br)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	t, err = topo.FromSpec(*spec)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	return key, t, nil
}

// topoKeyOfPlaceKey extracts the embedded topology key from a registry
// placement key: "place|<topo key>|<policy>|<threads>" — trim the prefix
// and the last two fields. A custom policy whose name contains '|' would
// mis-split here; the extracted key then misses in the spool and that
// placement degrades to a recompute on warm start — never a wrong result.
func topoKeyOfPlaceKey(placeKey string) (string, bool) {
	rest, ok := strings.CutPrefix(placeKey, "place|")
	if !ok {
		return "", false
	}
	i := strings.LastIndexByte(rest, '|') // before <threads>
	if i < 0 {
		return "", false
	}
	j := strings.LastIndexByte(rest[:i], '|') // before <policy>
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// placementSidecar is the parsed .place file.
type placementSidecar struct {
	key     string // registry placement key (from the #key header)
	topoKey string // registry key of the topology it was computed on
	policy  string
	ctxs    []int
}

// encodePlacement writes the sidecar format:
//
//	#key <placement key>
//	mctop-place 1
//	topokey <topology key>
//	policy <name>
//	nthreads <n>
//	ctxs <id...>           (omitted when the placement has no slots)
//	end
func encodePlacement(w io.Writer, key, topoKey string, p *place.Placement) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s%s\n", keyHeader, key)
	fmt.Fprintln(bw, placeMagic)
	fmt.Fprintf(bw, "topokey %s\n", topoKey)
	fmt.Fprintf(bw, "policy %s\n", p.PolicyName())
	ctxs := p.Contexts()
	fmt.Fprintf(bw, "nthreads %d\n", len(ctxs))
	if len(ctxs) > 0 {
		bw.WriteString("ctxs")
		for _, c := range ctxs {
			fmt.Fprintf(bw, " %d", c)
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// decodePlacementFile parses a .place sidecar.
func decodePlacementFile(path string) (*placementSidecar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	side := &placementSidecar{}
	sawMagic, sawEnd := false, false
	nThreads := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, keyHeader) {
				side.key = strings.TrimSpace(strings.TrimPrefix(line, keyHeader))
			}
			continue
		}
		if !sawMagic {
			if line != placeMagic {
				return nil, fmt.Errorf("%s: bad magic %q", path, line)
			}
			sawMagic = true
			continue
		}
		if line == "end" {
			sawEnd = true
			break
		}
		directive, rest, _ := strings.Cut(line, " ")
		switch directive {
		case "topokey":
			side.topoKey = strings.TrimSpace(rest)
		case "policy":
			side.policy = strings.TrimSpace(rest)
		case "nthreads":
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%s: bad nthreads %q", path, rest)
			}
			nThreads = n
		case "ctxs":
			for _, fld := range strings.Fields(rest) {
				v, err := strconv.Atoi(fld)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ctx %q", path, fld)
				}
				side.ctxs = append(side.ctxs, v)
			}
		default:
			return nil, fmt.Errorf("%s: unknown directive %q", path, directive)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case !sawMagic:
		return nil, fmt.Errorf("%s: empty sidecar", path)
	case !sawEnd:
		return nil, fmt.Errorf("%s: missing end marker", path)
	case side.topoKey == "":
		return nil, fmt.Errorf("%s: missing topokey", path)
	case side.policy == "":
		return nil, fmt.Errorf("%s: missing policy", path)
	case nThreads != len(side.ctxs):
		return nil, fmt.Errorf("%s: nthreads %d but %d ctxs", path, nThreads, len(side.ctxs))
	}
	return side, nil
}
