// Package spool is the registry's persistent cache tier: a directory of
// MCTOP description files. The paper's deployment model is that a topology
// is "created once, then used to load the topology" from disk thereafter
// (Section 2) — the spool turns that artifact into a cache level, so a
// restarted daemon warm-starts from the files a previous process inferred
// instead of re-running the O(N²) measurement phase.
//
// On-disk layout (one file per entry, flat in the spool directory):
//
//   - topologies: <sanitized-key>-<fnv64>.mctop — a `#key <registry key>`
//     header line followed by a standard description file (topo.Encode).
//     The header is a comment, so any .mctop reader decodes the file.
//   - placements: <sanitized-key>-<fnv64>.place — a compact sidecar
//     (format below) holding the policy name and assignment order plus the
//     key of the topology it was computed on; loading one decodes that
//     topology file and rebuilds the placement via place.Reconstruct,
//     without re-running the policy.
//   - mappings: <sanitized-key>-<fnv64>.map — the task-graph analogue of a
//     placement sidecar: DAG identity, algorithm, cost and per-task
//     assignment plus the topology key, rebuilt via taskmap.Reconstruct
//     without re-running the mapper.
//
// Writes are write-behind: Put enqueues to a background writer (falling
// back to a synchronous write when the queue is full, so nothing is ever
// dropped), every file lands via write-temp-then-rename so a crash can
// never leave a torn file under a spool name, and Flush/Close drain the
// queue — what mctopd calls on SIGTERM. Reads that hit an undecodable or
// foreign file count an error, quarantine the file (moved under
// quarantine/ so it is never rescanned, with the original bytes kept for
// forensics), and report a miss: a broken disk degrades to re-inference,
// never to a serving failure. A failed write flips the spool to a
// degraded (effectively read-only) state — see Degraded — until a write
// succeeds again; mctopd's /readyz reports it.
package spool

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/place"
	"repro/internal/registry"
	"repro/internal/taskmap"
	"repro/internal/topo"
	"repro/internal/trace"
)

const (
	topoExt      = ".mctop"
	placeExt     = ".place"
	mapExt       = ".map"
	keyHeader    = "#key "
	placeMagic   = "mctop-place 1"
	mapMagic     = "mctop-map 1"
	writeBacklog = 64
	// quarantineDir, under the spool directory, receives undecodable
	// files. It is excluded from the startup scan (scan skips
	// directories) and from the size/age bounds; Purge leaves it alone —
	// quarantined files are corruption evidence, removed by operators.
	quarantineDir = "quarantine"
)

// Spool is a registry.Store persisting entries as description files.
type Spool struct {
	dir  string
	logf func(format string, args ...any)

	// maxBytes / maxAge bound the directory (0 = unlimited): enforced at
	// the startup scan and after every Flush/Close, evicting
	// oldest-mtime files first. See enforceLimits.
	maxBytes int64
	maxAge   time.Duration

	mu      sync.Mutex
	entries map[string]registry.Kind // keys with a durable file on disk

	// sendMu serializes Put/Flush senders against Close closing the
	// channel; closed flips first so late senders degrade to no-ops.
	sendMu  sync.RWMutex
	closed  bool
	pending chan writeOp
	done    chan struct{} // writer goroutine exited

	// lastMu/lastKey/lastTopo memoize the most recently decoded topology:
	// a warm-start burst loads many .place sidecars referencing one
	// topology, and without the memo each would re-decode the same
	// description file.
	lastMu   sync.Mutex
	lastKey  string
	lastTopo *topo.Topology

	hits        atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	errors      atomic.Int64
	evictions   atomic.Int64
	quarantined atomic.Int64
	kinds       kindCounters

	// writeFailed flips on a failed file write and clears on the next
	// success: while set, the spool is effectively read-only (new entries
	// are not durable) and Degraded reports it.
	writeFailed atomic.Bool

	// faults, when non-nil, hosts the spool's injection points
	// (faultinject.SpoolWrite/SpoolRead/SpoolScan). nil in production.
	faults *faultinject.Set

	// tracer, when set, opens root spans for the write-behind path — the
	// background writer has no request context to parent onto. Read-path
	// spans ride the request context instead (GetContext) and need no
	// tracer here. nil means untraced.
	tracer *trace.Tracer
}

// TierName implements registry's TierNamer extension.
func (s *Spool) TierName() string { return "spool" }

// kindCounters mirrors the per-kind breakdown the in-memory tier keeps, so
// /metrics can chart hit ratios per entry kind for the disk tier too.
type kindCounters struct {
	hits      [3]atomic.Int64
	misses    [3]atomic.Int64
	evictions [3]atomic.Int64
}

func kindIndex(k registry.Kind) int {
	switch k {
	case registry.KindPlacement:
		return 1
	case registry.KindMapping:
		return 2
	}
	return 0
}

// writeOp is one queued write, or a flush barrier (flush != nil).
type writeOp struct {
	kind  registry.Kind
	key   string
	val   any
	flush chan struct{}
}

// Option configures a Spool.
type Option func(*Spool)

// WithLogf redirects the spool's skip-and-log messages (default:
// log.Printf with a "spool: " prefix).
func WithLogf(logf func(format string, args ...any)) Option {
	return func(s *Spool) { s.logf = logf }
}

// WithMaxBytes bounds the spool directory's total size (<= 0 = unlimited).
// The bound is enforced at the startup scan and after every Flush/Close by
// evicting oldest-mtime files first — the hygiene bound for long-lived
// daemons whose spool would otherwise only grow. A single entry larger
// than the bound is itself evicted.
func WithMaxBytes(n int64) Option {
	return func(s *Spool) { s.maxBytes = n }
}

// WithMaxAge evicts spool files whose mtime is older than d (<= 0 =
// unlimited), on the same schedule as WithMaxBytes. A topology this stale
// re-infers (and re-spools, refreshing its mtime) on next use.
func WithMaxAge(d time.Duration) Option {
	return func(s *Spool) { s.maxAge = d }
}

// WithFaults arms the spool's fault-injection points (see
// faultinject.SpoolWrite/SpoolRead/SpoolScan). A nil set is valid and
// means no injection — the production default.
func WithFaults(fs *faultinject.Set) Option {
	return func(s *Spool) { s.faults = fs }
}

// WithTracer traces the spool's background work: each write-behind persist
// and each quarantine becomes a root span of its own trace (there is no
// request context to join by the time the writer goroutine runs). Failed
// writes and quarantines carry error status, so they are kept even when
// unsampled. A nil tracer is valid and means untraced.
func WithTracer(tr *trace.Tracer) Option {
	return func(s *Spool) { s.tracer = tr }
}

// New opens (creating if needed) a spool directory and scans it: files
// with a readable key header become servable entries; undecodable or
// foreign files are quarantined once (moved under quarantine/) and
// leftover temporary files removed — a torn or corrupt spool must never
// fail a daemon's startup, and must never be rescanned every restart.
func New(dir string, opts ...Option) (*Spool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	s := &Spool{
		dir:     dir,
		logf:    func(format string, args ...any) { log.Printf("spool: "+format, args...) },
		entries: make(map[string]registry.Kind),
		pending: make(chan writeOp, writeBacklog),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.enforceLimits()
	go s.writer()
	return s, nil
}

// Dir returns the spool directory.
func (s *Spool) Dir() string { return s.dir }

// scan indexes the directory by each file's key header. Only the header is
// read here — full decoding (and its skip-and-log handling) happens on
// Get, so startup stays O(files), not O(bytes).
func (s *Spool) scan() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		var kind registry.Kind
		switch filepath.Ext(name) {
		case topoExt:
			kind = registry.KindTopology
		case placeExt:
			kind = registry.KindPlacement
		case mapExt:
			kind = registry.KindMapping
		default:
			// Leftover temp files from a crashed writer are dead weight:
			// renames are atomic, so nothing references them.
			if strings.HasSuffix(name, ".tmp") {
				if err := os.Remove(filepath.Join(s.dir, name)); err == nil {
					s.logf("removed stale temp file %s", name)
				}
			}
			continue
		}
		key, err := readKeyHeader(filepath.Join(s.dir, name))
		if _, fired := s.faults.Eval(faultinject.SpoolScan); fired && err == nil {
			err = fmt.Errorf("unreadable header (injected)")
		}
		if err != nil {
			s.quarantine(name, err)
			continue
		}
		if fileName(key, extOf(kind)) != name {
			s.quarantine(name, fmt.Errorf("key header names %q", key))
			continue
		}
		s.entries[key] = kind
	}
	return nil
}

// quarantine moves one undecodable spool file under quarantine/, counting
// it in both the error and quarantine counters. The move is what keeps a
// corrupt file from being re-skipped on every restart (and, on the Get
// path, from being re-decoded on every miss) while preserving its bytes
// for inspection. If the move itself fails the file stays put — the old
// skip-and-log behavior, just slower.
func (s *Spool) quarantine(name string, reason error) {
	if s.tracer.Enabled() {
		// Quarantines are corruption evidence: a root span with error
		// status, so every one survives sampling.
		_, sp := s.tracer.Start(context.Background(), "spool.quarantine")
		sp.SetAttr("file", name)
		sp.SetError(reason)
		sp.End()
	}
	s.errors.Add(1)
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		s.logf("quarantining %s: %v (file left in place)", name, err)
		return
	}
	if err := os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name)); err != nil {
		s.logf("quarantining %s: %v (file left in place)", name, err)
		return
	}
	s.quarantined.Add(1)
	s.logf("quarantined %s: %v", name, reason)
}

func extOf(kind registry.Kind) string {
	switch kind {
	case registry.KindPlacement:
		return placeExt
	case registry.KindMapping:
		return mapExt
	}
	return topoExt
}

// fileName maps a registry key to its spool file: a sanitized, truncated
// prefix for humans listing the directory, plus the full FNV-64a of the
// key so sanitization can never make two keys collide.
func fileName(key, ext string) string {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 80 {
			break
		}
	}
	return fmt.Sprintf("%s-%016x%s", b.String(), h, ext)
}

// readKeyHeader returns the `#key ` header of a spool file.
func readKeyHeader(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, keyHeader) {
			key := strings.TrimSpace(strings.TrimPrefix(line, keyHeader))
			if key == "" {
				return "", fmt.Errorf("empty key header")
			}
			return key, nil
		}
		// Headers lead the file; the first non-comment line ends them.
		if !strings.HasPrefix(line, "#") {
			return "", fmt.Errorf("no key header")
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("no key header")
}

// Get implements registry.Store: decode the entry's file, degrading every
// failure to a logged miss.
func (s *Spool) Get(kind registry.Kind, key string) (any, bool) {
	return s.GetContext(context.Background(), kind, key)
}

// GetContext implements registry's CtxGetter extension: Get with the
// request context threaded through so a traced request sees the decode as
// a span — including the decode failures that degrade to misses, which
// keep the span (and its quarantine event) even when the trace is
// unsampled.
func (s *Spool) GetContext(ctx context.Context, kind registry.Kind, key string) (any, bool) {
	s.mu.Lock()
	k, ok := s.entries[key]
	s.mu.Unlock()
	if !ok || k != kind {
		s.misses.Add(1)
		s.kinds.misses[kindIndex(kind)].Add(1)
		return nil, false
	}
	_, sp := trace.Start(ctx, "spool.read")
	sp.SetAttr("kind", kind.String())
	defer sp.End()
	var (
		v   any
		err error
	)
	if o, fired := s.faults.Eval(faultinject.SpoolRead); fired {
		err = o.Err(faultinject.SpoolRead)
	} else {
		switch kind {
		case registry.KindTopology:
			v, err = s.loadTopology(key)
		case registry.KindPlacement:
			v, err = s.loadPlacement(key)
		case registry.KindMapping:
			v, err = s.loadMapping(key)
		default:
			err = fmt.Errorf("unknown entry kind %v", kind)
		}
	}
	if err != nil {
		// An entry that indexed at scan but fails to decode is corrupt
		// (or, for a sidecar, references a corrupt topology): quarantine
		// the requested entry's file so the next Get is a clean miss
		// instead of another decode of the same broken bytes. The caller
		// re-infers/fetches and re-Puts, restoring a good file.
		sp.SetError(err)
		sp.AddEvent("quarantine")
		s.dropEntry(key)
		s.quarantine(fileName(key, extOf(kind)), err)
		s.misses.Add(1)
		s.kinds.misses[kindIndex(kind)].Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.kinds.hits[kindIndex(kind)].Add(1)
	return v, true
}

// dropEntry removes one key from the index and the decode memo.
func (s *Spool) dropEntry(key string) {
	s.mu.Lock()
	delete(s.entries, key)
	s.mu.Unlock()
	s.lastMu.Lock()
	if s.lastKey == key {
		s.lastKey, s.lastTopo = "", nil
	}
	s.lastMu.Unlock()
}

func (s *Spool) loadTopology(key string) (*topo.Topology, error) {
	s.lastMu.Lock()
	if s.lastKey == key && s.lastTopo != nil {
		t := s.lastTopo
		s.lastMu.Unlock()
		return t, nil
	}
	s.lastMu.Unlock()
	path := filepath.Join(s.dir, fileName(key, topoExt))
	gotKey, t, err := DecodeTopologyFile(path)
	if err != nil {
		return nil, err
	}
	if gotKey != "" && gotKey != key {
		return nil, fmt.Errorf("key header names %q", gotKey)
	}
	s.lastMu.Lock()
	s.lastKey, s.lastTopo = key, t
	s.lastMu.Unlock()
	return t, nil
}

func (s *Spool) loadPlacement(key string) (*place.Placement, error) {
	path := filepath.Join(s.dir, fileName(key, placeExt))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	side, err := DecodeSidecar(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if side.Key != "" && side.Key != key {
		return nil, fmt.Errorf("key header names %q", side.Key)
	}
	t, err := s.loadTopology(side.TopoKey)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", side.TopoKey, err)
	}
	return place.Reconstruct(t, side.Policy, side.Ctxs)
}

func (s *Spool) loadMapping(key string) (*taskmap.Mapping, error) {
	path := filepath.Join(s.dir, fileName(key, mapExt))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	side, err := DecodeMapSidecar(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if side.Key != "" && side.Key != key {
		return nil, fmt.Errorf("key header names %q", side.Key)
	}
	t, err := s.loadTopology(side.TopoKey)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", side.TopoKey, err)
	}
	return taskmap.Reconstruct(t, side.DAGName, side.DAGHash, side.Nodes, side.Edges, side.Algo, side.Cost, side.Assign)
}

// Put implements registry.Store: enqueue a write-behind, falling back to a
// synchronous write when the queue is full so no accepted entry is ever
// dropped. Puts after Close are dropped (and logged): the spool is no
// longer durable once closed.
func (s *Spool) Put(kind registry.Kind, key string, val any) {
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		s.logf("dropping write of %q: spool is closed", key)
		s.errors.Add(1)
		return
	}
	select {
	case s.pending <- writeOp{kind: kind, key: key, val: val}:
		s.sendMu.RUnlock()
	default:
		s.sendMu.RUnlock()
		s.writeTraced(writeOp{kind: kind, key: key, val: val})
	}
}

// writer is the write-behind goroutine: it drains the queue, turning each
// op into an atomic file write, and acknowledges flush barriers in FIFO
// order (every write accepted before the Flush is durable when it fires).
func (s *Spool) writer() {
	defer close(s.done)
	for op := range s.pending {
		if op.flush != nil {
			close(op.flush)
			continue
		}
		s.writeTraced(op)
	}
}

// writeTraced runs one write-behind persist under a root span: the writer
// goroutine has no request context, so each persist is its own
// single-span trace — dropped when clean and unsampled, kept when it
// fails.
func (s *Spool) writeTraced(op writeOp) {
	if !s.tracer.Enabled() {
		s.write(op)
		return
	}
	_, sp := s.tracer.Start(context.Background(), "spool.write")
	sp.SetAttr("kind", op.kind.String())
	sp.SetError(s.write(op))
	sp.End()
}

// write persists one entry: encode to a temp file in the spool directory,
// then rename over the final name — the atomicity that guarantees a crash
// can never leave a torn file where a reader looks. The returned error
// reports the failure for tracing; counters and logs are already handled
// here, so callers need not act on it.
func (s *Spool) write(op writeOp) error {
	var encode func(w io.Writer) error
	switch v := op.val.(type) {
	case *topo.Topology:
		if op.kind != registry.KindTopology {
			s.logf("dropping write of %q: topology under kind %v", op.key, op.kind)
			s.errors.Add(1)
			return fmt.Errorf("topology under kind %v", op.kind)
		}
		encode = func(w io.Writer) error {
			return EncodeTopology(w, op.key, v)
		}
	case *place.Placement:
		if op.kind != registry.KindPlacement {
			s.logf("dropping write of %q: placement under kind %v", op.key, op.kind)
			s.errors.Add(1)
			return fmt.Errorf("placement under kind %v", op.kind)
		}
		topoKey, ok := topoKeyOfPlaceKey(op.key)
		if !ok {
			s.logf("dropping write of %q: not a placement key", op.key)
			s.errors.Add(1)
			return fmt.Errorf("not a placement key")
		}
		// Invariant: a durable sidecar implies a durable topology —
		// loading the sidecar needs the referenced .mctop file. The
		// normal daemon flow Puts the topology first, but a placement
		// promoted from a remote tier arrives alone; persist its
		// topology alongside or the sidecar is dead weight on restart.
		s.mu.Lock()
		_, haveTopo := s.entries[topoKey]
		s.mu.Unlock()
		if !haveTopo {
			if t := v.Topology(); t != nil {
				s.write(writeOp{kind: registry.KindTopology, key: topoKey, val: t})
			}
		}
		encode = func(w io.Writer) error {
			return EncodeSidecar(w, op.key, topoKey, v)
		}
	case *taskmap.Mapping:
		if op.kind != registry.KindMapping {
			s.logf("dropping write of %q: mapping under kind %v", op.key, op.kind)
			s.errors.Add(1)
			return fmt.Errorf("mapping under kind %v", op.kind)
		}
		topoKey, ok := topoKeyOfMapKey(op.key)
		if !ok {
			s.logf("dropping write of %q: not a mapping key", op.key)
			s.errors.Add(1)
			return fmt.Errorf("not a mapping key")
		}
		// Same durable-topology invariant as placements: a .map sidecar is
		// only loadable if the .mctop file it references is on disk too.
		s.mu.Lock()
		_, haveTopo := s.entries[topoKey]
		s.mu.Unlock()
		if !haveTopo {
			if t := v.Topology(); t != nil {
				s.write(writeOp{kind: registry.KindTopology, key: topoKey, val: t})
			}
		}
		encode = func(w io.Writer) error {
			return EncodeMapSidecar(w, op.key, topoKey, v)
		}
	default:
		s.logf("dropping write of %q: unsupported value %T", op.key, op.val)
		s.errors.Add(1)
		return fmt.Errorf("unsupported value %T", op.val)
	}
	path := filepath.Join(s.dir, fileName(op.key, extOf(op.kind)))
	if o, fired := s.faults.Eval(faultinject.SpoolWrite); fired {
		return s.failWrite(op, path, encode, o)
	}
	if err := topo.WriteFileAtomic(path, encode); err != nil {
		s.logf("writing %q: %v", op.key, err)
		s.errors.Add(1)
		s.writeFailed.Store(true)
		return err
	}
	s.writeFailed.Store(false)
	s.puts.Add(1)
	s.mu.Lock()
	s.entries[op.key] = op.kind
	s.mu.Unlock()
	return nil
}

// failWrite executes an injected spool.write fault. Modes "enospc",
// "eperm" and the default fail the write outright — the disk-full /
// permission-lost shape, flipping the spool degraded. Mode "torn" lands a
// half-written file directly under the final spool name and indexes it:
// the shape of a crash mid-write on a filesystem without atomic rename,
// which the quarantine path must absorb on the next Get or restart scan.
func (s *Spool) failWrite(op writeOp, path string, encode func(io.Writer) error, o faultinject.Outcome) error {
	switch o.Mode {
	case "torn", "short":
		var buf bytes.Buffer
		if err := encode(&buf); err != nil {
			s.logf("writing %q: %v", op.key, err)
			s.errors.Add(1)
			return err
		}
		torn := buf.Bytes()[:buf.Len()/2]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			s.logf("writing %q: %v", op.key, err)
			s.errors.Add(1)
			s.writeFailed.Store(true)
			return err
		}
		s.logf("writing %q: torn write injected (%d of %d bytes)", op.key, len(torn), buf.Len())
		s.errors.Add(1)
		// Index the torn file like a completed write would: serving it is
		// exactly the corruption the read path's quarantine must catch.
		s.mu.Lock()
		s.entries[op.key] = op.kind
		s.mu.Unlock()
		s.lastMu.Lock()
		if s.lastKey == op.key {
			s.lastKey, s.lastTopo = "", nil
		}
		s.lastMu.Unlock()
		return fmt.Errorf("torn write injected")
	default: // "enospc", "eperm", "fail", ...
		err := o.Err(faultinject.SpoolWrite)
		s.logf("writing %q: %v", op.key, err)
		s.errors.Add(1)
		s.writeFailed.Store(true)
		return err
	}
}

// Degraded reports whether the spool is effectively read-only: the most
// recent file write failed (disk full, permissions, ...), so new entries
// are not landing durably. It self-heals — the next successful write
// clears it. mctopd's /readyz surfaces this as a degraded spool tier.
func (s *Spool) Degraded() (bool, string) {
	if s.writeFailed.Load() {
		return true, "last write failed; spool is effectively read-only"
	}
	return false, ""
}

// Len implements registry.Store.
func (s *Spool) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Purge implements registry.Store: flush pending writes, then remove every
// spool file. (Registry.Purge on a tiered store purges the disk tier too —
// callers that only want to drop memory purge the LRU tier directly.)
func (s *Spool) Purge() {
	s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, kind := range s.entries {
		if err := os.Remove(filepath.Join(s.dir, fileName(key, extOf(kind)))); err != nil {
			s.logf("purging %q: %v", key, err)
			s.errors.Add(1)
		}
	}
	s.entries = make(map[string]registry.Kind)
	s.lastMu.Lock()
	s.lastKey, s.lastTopo = "", nil
	s.lastMu.Unlock()
}

// Stats implements registry.Store.
func (s *Spool) Stats() []registry.StoreStats {
	st := registry.StoreStats{
		Tier:        "spool",
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Errors:      s.errors.Load(),
		Evictions:   s.evictions.Load(),
		Quarantined: s.quarantined.Load(),
	}
	s.mu.Lock()
	for _, kind := range s.entries {
		switch kind {
		case registry.KindTopology:
			st.Topologies++
		case registry.KindPlacement:
			st.Placements++
		case registry.KindMapping:
			st.Mappings++
		}
		st.Entries++
	}
	s.mu.Unlock()
	st.Kinds = map[string]registry.KindStats{
		registry.KindTopology.String(): {
			Hits:      s.kinds.hits[0].Load(),
			Misses:    s.kinds.misses[0].Load(),
			Evictions: s.kinds.evictions[0].Load(),
			Entries:   st.Topologies,
		},
		registry.KindPlacement.String(): {
			Hits:      s.kinds.hits[1].Load(),
			Misses:    s.kinds.misses[1].Load(),
			Evictions: s.kinds.evictions[1].Load(),
			Entries:   st.Placements,
		},
		registry.KindMapping.String(): {
			Hits:      s.kinds.hits[2].Load(),
			Misses:    s.kinds.misses[2].Load(),
			Evictions: s.kinds.evictions[2].Load(),
			Entries:   st.Mappings,
		},
	}
	return []registry.StoreStats{st}
}

// Flush implements registry.Flusher: block until every Put accepted so far
// is durable on disk, then enforce the size/age bounds — the one point
// where every accepted write has landed and the directory's true size is
// knowable.
func (s *Spool) Flush() error {
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		<-s.done // writer drains the queue before exiting
		s.enforceLimits()
		return nil
	}
	barrier := make(chan struct{})
	s.pending <- writeOp{flush: barrier}
	s.sendMu.RUnlock()
	<-barrier
	s.enforceLimits()
	return nil
}

// Close implements registry.Closer: flush and stop the writer. Gets keep
// working; later Puts are dropped with a log line.
func (s *Spool) Close() error {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	close(s.pending)
	s.sendMu.Unlock()
	<-s.done
	s.enforceLimits()
	return nil
}

// enforceLimits applies the WithMaxBytes/WithMaxAge bounds: stat every
// entry, then evict oldest-mtime first while any file is past the age
// bound or the directory is over the byte budget. Both walks stop at the
// first file that satisfies the bounds — mtime-sorted, everything after it
// does too. Files a queued write has not landed yet stat to ENOENT and are
// skipped (the next Flush sweeps them).
func (s *Spool) enforceLimits() {
	if s.maxBytes <= 0 && s.maxAge <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	type entry struct {
		key   string
		kind  registry.Kind
		size  int64
		mtime time.Time
	}
	ents := make([]entry, 0, len(s.entries))
	var total int64
	for key, kind := range s.entries {
		fi, err := os.Stat(filepath.Join(s.dir, fileName(key, extOf(kind))))
		if err != nil {
			continue
		}
		ents = append(ents, entry{key, kind, fi.Size(), fi.ModTime()})
		total += fi.Size()
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].mtime.Before(ents[j].mtime) })
	cutoff := time.Now().Add(-s.maxAge)
	evictedTopos := map[string]bool{}
	for _, e := range ents {
		expired := s.maxAge > 0 && e.mtime.Before(cutoff)
		over := s.maxBytes > 0 && total > s.maxBytes
		if !expired && !over {
			break
		}
		if s.evictLocked(e.key, e.kind, e.size, e.mtime) {
			total -= e.size
			if e.kind == registry.KindTopology {
				evictedTopos[e.key] = true
			}
		}
	}
	if len(evictedTopos) == 0 {
		return
	}
	// Cascade: a sidecar whose topology was just evicted can never load
	// again (every Get would fail to a logged miss) yet would keep its
	// index slot and its share of the byte budget. Drop them now.
	for _, e := range ents {
		if s.entries[e.key] != e.kind {
			continue
		}
		var tk string
		var ok bool
		switch e.kind {
		case registry.KindPlacement:
			tk, ok = topoKeyOfPlaceKey(e.key)
		case registry.KindMapping:
			tk, ok = topoKeyOfMapKey(e.key)
		default:
			continue
		}
		if ok && evictedTopos[tk] {
			s.evictLocked(e.key, e.kind, e.size, e.mtime)
		}
	}
}

// evictLocked removes one entry's file and index slot (s.mu held).
func (s *Spool) evictLocked(key string, kind registry.Kind, size int64, mtime time.Time) bool {
	name := fileName(key, extOf(kind))
	if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
		s.logf("evicting %s: %v", name, err)
		s.errors.Add(1)
		return false
	}
	delete(s.entries, key)
	s.evictions.Add(1)
	s.kinds.evictions[kindIndex(kind)].Add(1)
	s.logf("evicted %s (%d bytes, mtime %s)", name, size, mtime.Format(time.RFC3339))
	s.lastMu.Lock()
	if s.lastKey == key {
		s.lastKey, s.lastTopo = "", nil
	}
	s.lastMu.Unlock()
	return true
}

// topoKeyOfPlaceKey extracts the embedded topology key from a registry
// placement key: "place|<topo key>|<policy>|<threads>" — trim the prefix
// and the last two fields. A custom policy whose name contains '|' would
// mis-split here; the extracted key then misses in the spool and that
// placement degrades to a recompute on warm start — never a wrong result.
func topoKeyOfPlaceKey(placeKey string) (string, bool) {
	rest, ok := strings.CutPrefix(placeKey, "place|")
	if !ok {
		return "", false
	}
	i := strings.LastIndexByte(rest, '|') // before <threads>
	if i < 0 {
		return "", false
	}
	j := strings.LastIndexByte(rest[:i], '|') // before <policy>
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// topoKeyOfMapKey extracts the embedded topology key from a registry
// mapping key. Mapping keys are strictly parseable (registry.ParseMapKey),
// so unlike placement keys there is no ambiguity to tolerate: an
// unparsable key is simply not a mapping key.
func topoKeyOfMapKey(mapKey string) (string, bool) {
	tk, _, _, _, _, err := registry.ParseMapKey(mapKey)
	if err != nil {
		return "", false
	}
	return tk, true
}
