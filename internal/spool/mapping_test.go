package spool

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mctopalg"
	"repro/internal/registry"
	"repro/internal/taskmap"
)

// testMapping computes a small mapping on the shared test topology.
func testMapping(t *testing.T) (*taskmap.Mapping, string) {
	t.Helper()
	d := graph.GenTaskDAG(graph.DAGParams{}, 7)
	m, err := taskmap.Map(context.Background(), testTopo(), d, taskmap.Options{RefineBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	key := registry.MapKey("Ivy", 1, mctopalg.Options{Reps: 51}, d, 100)
	return m, key
}

func encodeMapping(t *testing.T, key, topoKey string, m *taskmap.Mapping) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeMapSidecar(&buf, key, topoKey, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMapSidecarCodecRoundTrip(t *testing.T) {
	m, key := testMapping(t)
	topoKey, ok := topoKeyOfMapKey(key)
	if !ok {
		t.Fatalf("topoKeyOfMapKey(%q) failed", key)
	}
	raw := encodeMapping(t, key, topoKey, m)
	side, err := DecodeMapSidecar(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if side.Key != key || side.TopoKey != topoKey || side.DAGName != m.DAGName() ||
		side.DAGHash != m.DAGHash() || side.Nodes != m.NumNodes() ||
		side.Edges != m.NumEdges() || side.Algo != m.Algo() || side.Cost != m.Cost() {
		t.Fatalf("decoded sidecar %+v does not match mapping", side)
	}
	rebuilt, err := taskmap.Reconstruct(testTopo(), side.DAGName, side.DAGHash,
		side.Nodes, side.Edges, side.Algo, side.Cost, side.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeMapping(t, key, topoKey, rebuilt); !bytes.Equal(got, raw) {
		t.Fatal("reconstructed mapping does not re-encode byte-identically")
	}
}

func TestDecodeMapSidecarRejectsMalformed(t *testing.T) {
	m, key := testMapping(t)
	topoKey, _ := topoKeyOfMapKey(key)
	good := string(encodeMapping(t, key, topoKey, m))
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad magic", strings.Replace(good, mapMagic, "mctop-place 1", 1)},
		{"missing end", strings.Replace(good, "end\n", "", 1)},
		{"missing topokey", strings.Replace(good, "topokey "+topoKey+"\n", "", 1)},
		{"missing dag", regexReplaceLine(good, "dag ")},
		{"missing algo", regexReplaceLine(good, "algo ")},
		{"missing cost", regexReplaceLine(good, "cost ")},
		{"missing assign", regexReplaceLine(good, "assign")},
		{"junk directive", strings.Replace(good, "end\n", "bogus 1\nend\n", 1)},
		{"bad assign ctx", strings.Replace(good, "assign ", "assign x", 1)},
		{"negative cost", regexSwapLine(good, "cost ", "cost -5")},
		{"bad hash", regexSwapLine(good, "dag ", "dag zzzz 3 2")},
	}
	for _, c := range cases {
		if _, err := DecodeMapSidecar(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}
}

// regexReplaceLine drops the first line starting with prefix.
func regexReplaceLine(s, prefix string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
	dropped := false
	for _, l := range lines {
		if !dropped && strings.HasPrefix(l, prefix) {
			dropped = true
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// regexSwapLine replaces the first line starting with prefix.
func regexSwapLine(s, prefix, repl string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, prefix) {
			lines[i] = repl
			break
		}
	}
	return strings.Join(lines, "\n")
}

func TestMappingRoundTripThroughSpool(t *testing.T) {
	m, key := testMapping(t)
	topoKey, _ := topoKeyOfMapKey(key)

	s := newTestSpool(t)
	// Put only the mapping: the durable-topology invariant must persist
	// the referenced topology alongside it.
	s.Put(registry.KindMapping, key, m)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after one mapping put, want 2 (mapping + topology)", s.Len())
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), fileName(topoKey, topoExt))); err != nil {
		t.Fatalf("referenced topology not persisted: %v", err)
	}

	v, ok := s.Get(registry.KindMapping, key)
	if !ok {
		t.Fatal("spooled mapping missed")
	}
	if got := encodeMapping(t, key, topoKey, v.(*taskmap.Mapping)); !bytes.Equal(got, encodeMapping(t, key, topoKey, m)) {
		t.Fatal("spooled mapping is not byte-identical to the original")
	}

	// Fresh process: warm-start scan picks the sidecar up.
	s2, err := New(s.Dir(), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("fresh spool scanned %d entries, want 2", s2.Len())
	}
	v2, ok := s2.Get(registry.KindMapping, key)
	if !ok {
		t.Fatal("fresh spool missed the scanned mapping")
	}
	if got := encodeMapping(t, key, topoKey, v2.(*taskmap.Mapping)); !bytes.Equal(got, encodeMapping(t, key, topoKey, m)) {
		t.Fatal("fresh-spool mapping is not byte-identical to the original")
	}

	st := s2.Stats()[0]
	if st.Mappings != 1 || st.Topologies != 1 {
		t.Fatalf("stats = %+v, want 1 mapping + 1 topology", st)
	}
	ks, ok := st.Kinds[registry.KindMapping.String()]
	if !ok || ks.Entries != 1 || ks.Hits != 1 {
		t.Fatalf("per-kind mapping stats = %+v", st.Kinds)
	}
}

func TestCorruptMapSidecarQuarantined(t *testing.T) {
	m, key := testMapping(t)

	s := newTestSpool(t)
	s.Put(registry.KindMapping, key, m)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the sidecar body (keep the key header so scan still indexes
	// it) and reopen: the Get must degrade to a miss and quarantine.
	path := filepath.Join(s.Dir(), fileName(key, mapExt))
	if err := os.WriteFile(path, []byte(keyHeader+key+"\ngarbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := New(s.Dir(), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(registry.KindMapping, key); ok {
		t.Fatal("corrupt mapping sidecar served")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), quarantineDir, fileName(key, mapExt))); err != nil {
		t.Fatalf("corrupt sidecar not quarantined: %v", err)
	}
	// A second Get is a clean miss, not another decode attempt.
	if _, ok := s2.Get(registry.KindMapping, key); ok {
		t.Fatal("quarantined mapping served")
	}
}
