package spool

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/plugins"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/topo"
)

func realInfer(platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
	p, err := sim.ByName(platform)
	if err != nil {
		return nil, err
	}
	m, err := machine.NewSim(p, seed)
	if err != nil {
		return nil, err
	}
	res, err := mctopalg.Infer(m, opt)
	if err != nil {
		return nil, err
	}
	return plugins.Enrich(m, res.Topology, nil)
}

// benchSpoolDir returns the benchmarks' spool directory: MCTOP_SPOOL_DIR
// when set (CI shares and caches it between the test and bench steps, so
// a cached run never pays the priming inference), a temp dir otherwise.
// Only benchmarks use it — correctness tests always start from an empty
// spool so their cold measurements stay cold.
func benchSpoolDir(b *testing.B) string {
	b.Helper()
	if d := os.Getenv("MCTOP_SPOOL_DIR"); d != "" {
		sub := filepath.Join(d, "bench")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			b.Fatal(err)
		}
		return sub
	}
	return b.TempDir()
}

// benchSpoolRegistry builds a spool-backed registry over dir and returns
// it with its LRU tier (so benchmarks can evict memory and force the
// disk path).
func benchSpoolRegistry(b *testing.B, dir string) (*registry.Registry, *registry.LRU) {
	b.Helper()
	sp, err := New(dir, WithLogf(b.Logf))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sp.Close() })
	lru := registry.NewLRU(64, 0)
	return registry.New(registry.Options{
		Infer: realInfer,
		Store: registry.NewTiered(lru, sp),
	}), lru
}

// BenchmarkWarmStartTopologyLookup is the cost of serving a topology from
// a populated spool with a cold memory tier — what every entry of a
// restarted daemon pays once. Compare against the registry package's
// BenchmarkColdInfer: the acceptance bar is >= 50x cheaper than inferring
// (in practice the decode is ~10^2-10^3x cheaper).
func BenchmarkWarmStartTopologyLookup(b *testing.B) {
	opt := mctopalg.Options{Reps: 51}
	r, lru := benchSpoolRegistry(b, benchSpoolDir(b))
	if _, err := r.Topology("Ivy", 42, opt); err != nil {
		b.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lru.Purge() // every iteration is a cold-memory, warm-disk lookup
		if _, err := r.Topology("Ivy", 42, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmStartPlacementLookup is the disk path for placements: the
// sidecar decode plus the topology decode it references.
func BenchmarkWarmStartPlacementLookup(b *testing.B) {
	opt := mctopalg.Options{Reps: 51}
	r, lru := benchSpoolRegistry(b, benchSpoolDir(b))
	if _, err := r.Place("Ivy", 42, opt, "RR_CORE", 8); err != nil {
		b.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lru.Purge()
		if _, err := r.Place("Ivy", 42, opt, "RR_CORE", 8); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWarmStartSpeedup is the PR's acceptance check, the restart analogue
// of the registry's TestCachedLookupSpeedup: a warm-start lookup (cold
// memory, populated spool) must be at least 50x faster than a cold
// inference. The margin in practice is two to three orders of magnitude,
// so the assertion is far from flaky.
func TestWarmStartSpeedup(t *testing.T) {
	dir := t.TempDir()
	opt := mctopalg.Options{Reps: 51}
	sp, err := New(dir, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	lru := registry.NewLRU(64, 0)
	r := registry.New(registry.Options{
		Infer: realInfer,
		Store: registry.NewTiered(lru, sp),
	})

	coldStart := time.Now()
	if _, err := r.Topology("Ivy", 42, opt); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	const lookups = 20
	warmStart := time.Now()
	for i := 0; i < lookups; i++ {
		lru.Purge()
		if _, err := r.Topology("Ivy", 42, opt); err != nil {
			t.Fatal(err)
		}
	}
	warm := time.Since(warmStart) / lookups
	if warm == 0 {
		warm = 1
	}
	speedup := float64(cold) / float64(warm)
	t.Logf("cold infer %v, warm-start lookup %v, speedup %.0fx", cold, warm, speedup)
	if speedup < 50 {
		t.Fatalf("warm-start lookup only %.1fx faster than cold inference, want >= 50x", speedup)
	}
	if st := r.Stats(); st.Inferences != 1 {
		t.Fatalf("warm-start lookups ran %d extra inference(s)", st.Inferences-1)
	}
}
