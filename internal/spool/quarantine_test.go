package spool

// Quarantine and fault-injection behavior: undecodable files move to
// quarantine/ exactly once (scan- and read-time), injected write faults
// flip the spool degraded and heal on the next good write, and a torn
// write is absorbed by the read path — corruption degrades to a miss,
// never to wrong bytes or a boot failure.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/mctopalg"
	"repro/internal/registry"
)

func TestScanQuarantinesUndecodableFilesOnce(t *testing.T) {
	dir := t.TempDir()
	// Two undecodable spool files: one with no key header, one whose
	// header names a different key than its file name encodes.
	if err := os.WriteFile(filepath.Join(dir, "foreign-0000000000000000.mctop"), []byte("mctop 1\nend\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lying := fileName("topo|Ivy|1|r51", topoExt)
	if err := os.WriteFile(filepath.Join(dir, lying), []byte("#key topo|Other|9|r11\nmctop 1\nend\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(dir, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()[0]
	if st.Quarantined != 2 {
		t.Fatalf("Quarantined = %d after scanning 2 bad files, want 2", st.Quarantined)
	}
	if st.Errors != 2 {
		t.Fatalf("Errors = %d, want 2", st.Errors)
	}
	for _, name := range []string{"foreign-0000000000000000.mctop", lying} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s still in the spool directory", name)
		}
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, name)); err != nil {
			t.Errorf("%s not preserved under quarantine/: %v", name, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The second restart must not see (or re-log) the bad files: the
	// whole point of quarantining over skip-and-log.
	s2, err := New(dir, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2 := s2.Stats()[0]
	if st2.Quarantined != 0 || st2.Errors != 0 {
		t.Fatalf("second scan re-processed quarantined files: %+v", st2)
	}
}

func TestGetQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	top := testTopo()
	key := registry.TopoKey("Ivy", 1, mctopalg.Options{Reps: 51})
	{
		s, err := New(dir, WithLogf(t.Logf))
		if err != nil {
			t.Fatal(err)
		}
		s.Put(registry.KindTopology, key, top)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the body but keep the key header, so the restart scan
	// indexes the entry and only Get discovers the damage.
	name := fileName(key, topoExt)
	corrupt := fmt.Sprintf("#key %s\nmctop 1\nname Ivy\n", key)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(dir, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("scan indexed %d entries, want 1", s.Len())
	}
	if _, ok := s.Get(registry.KindTopology, key); ok {
		t.Fatal("corrupt entry served")
	}
	st := s.Stats()[0]
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d after a corrupt Get, want 1", st.Quarantined)
	}
	if s.Len() != 0 {
		t.Fatalf("corrupt entry still indexed (Len = %d)", s.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, name)); err != nil {
		t.Fatalf("corrupt file not preserved under quarantine/: %v", err)
	}
	// The slot is reusable: a fresh Put restores a servable entry.
	s.Put(registry.KindTopology, key, top)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(registry.KindTopology, key); !ok {
		t.Fatal("re-Put after quarantine did not serve")
	}
}

func TestInjectedWriteFaultDegradesAndHeals(t *testing.T) {
	fs := faultinject.New(1, faultinject.Fault{Point: faultinject.SpoolWrite, Mode: "enospc", Count: 1})
	s, err := New(t.TempDir(), WithLogf(t.Logf), WithFaults(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if deg, _ := s.Degraded(); deg {
		t.Fatal("fresh spool reports degraded")
	}
	key := registry.TopoKey("Ivy", 1, mctopalg.Options{Reps: 51})
	s.Put(registry.KindTopology, key, testTopo())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if deg, reason := s.Degraded(); !deg || reason == "" {
		t.Fatal("spool not degraded after an injected ENOSPC write")
	}
	if _, ok := s.Get(registry.KindTopology, key); ok {
		t.Fatal("failed write still served")
	}
	// The fault's count is spent: the next write lands and heals.
	s.Put(registry.KindTopology, key, testTopo())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("spool still degraded after a successful write")
	}
	if _, ok := s.Get(registry.KindTopology, key); !ok {
		t.Fatal("healed spool does not serve")
	}
	if fs.Fires(faultinject.SpoolWrite) != 1 {
		t.Fatalf("fault fired %d times, want 1", fs.Fires(faultinject.SpoolWrite))
	}
}

func TestInjectedTornWriteIsQuarantinedOnRead(t *testing.T) {
	fs := faultinject.New(1, faultinject.Fault{Point: faultinject.SpoolWrite, Mode: "torn", Count: 1})
	dir := t.TempDir()
	s, err := New(dir, WithLogf(t.Logf), WithFaults(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := registry.TopoKey("Ivy", 1, mctopalg.Options{Reps: 51})
	s.Put(registry.KindTopology, key, testTopo())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// The torn file is indexed — the dangerous state — and the read path
	// must turn it into a quarantined miss, not a decode of half a file.
	if s.Len() != 1 {
		t.Fatalf("torn write not indexed (Len = %d)", s.Len())
	}
	if _, ok := s.Get(registry.KindTopology, key); ok {
		t.Fatal("torn file served a topology")
	}
	if st := s.Stats()[0]; st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d after reading a torn file, want 1", st.Quarantined)
	}
	// Recovery: the next Put (fault spent) restores a good file.
	s.Put(registry.KindTopology, key, testTopo())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(registry.KindTopology, key); !ok {
		t.Fatal("spool did not recover after the torn write was quarantined")
	}
}

func TestInjectedReadFaultQuarantines(t *testing.T) {
	fs := faultinject.New(1, faultinject.Fault{Point: faultinject.SpoolRead, Mode: "corrupt", Count: 1})
	s, err := New(t.TempDir(), WithLogf(t.Logf), WithFaults(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := registry.TopoKey("Ivy", 1, mctopalg.Options{Reps: 51})
	s.Put(registry.KindTopology, key, testTopo())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(registry.KindTopology, key); ok {
		t.Fatal("injected read fault did not miss")
	}
	if st := s.Stats()[0]; st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}
