// Package contend is a deterministic discrete-event simulator of spinlock
// contention over a machine's coherence fabric. It regenerates Figure 8 of
// the MCTOP paper: the throughput of TAS, TTAS and ticket locks with and
// without MCTOP's educated backoffs, across thread counts and platforms.
//
// The model is built on the same observation as MCTOP-ALG itself: a lock
// word is a cache line, and every probe of it is a coherence transaction
// whose cost is the communication latency between the prober and the
// line's current holder. The line serializes its accesses, so a holder
// trying to release a contended lock queues behind the spinners hammering
// it — exactly the pathology educated backoffs mitigate.
package contend

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/sim"
)

// Config describes one contention experiment.
type Config struct {
	// Platform supplies the ground-truth communication latencies (the
	// "hardware" the locks run on).
	Platform *sim.Platform
	// Threads lists the hardware contexts running lock/unlock loops.
	Threads []int
	// Alg selects the lock algorithm.
	Alg locks.Algorithm
	// Quantum is the educated-backoff quantum in cycles (0 = baseline:
	// a pause-instruction-sized breath between probes).
	Quantum int64
	// CSWork is the critical-section length in cycles (the paper uses
	// 1000).
	CSWork int64
	// PauseWork is the non-critical pause after each iteration ("threads
	// pause after each iteration to avoid long runs").
	PauseWork int64
	// Horizon is the simulated duration in cycles.
	Horizon int64
	// ReadOccupancy and WriteOccupancy are how long one probe keeps the
	// line's home (LLC slice or directory) busy. Coherence requests
	// pipeline: a requester waits the full communication latency for its
	// answer, but the fabric can serve the next request much sooner.
	// Defaults: 40 and 90 cycles.
	ReadOccupancy, WriteOccupancy int64
}

// Result reports an experiment's outcome.
type Result struct {
	// Acquisitions is the total number of lock acquisitions.
	Acquisitions int64
	// Throughput is acquisitions per million cycles.
	Throughput float64
	// PerThread is each thread's acquisition count (fairness analysis).
	PerThread []int64
	// Transfers counts coherence transfers on the lock line(s).
	Transfers int64
}

// phase is a thread's position in its lock/unlock loop.
type phase int

const (
	phTryAcquire phase = iota // TAS: CAS probe; TTAS: test read; Ticket: take ticket
	phTTASCas                 // TTAS: saw free, attempt the CAS
	phCheckGrant              // Ticket: read the grant counter
	phUnlock
	phWaiting // subscribed to a line's next invalidation
)

// line models one cache line as a serially reusable resource.
type line struct {
	freeAt    int64
	holder    int // hardware context of the last accessor, -1 if cold
	version   int64
	value     int64 // lock state / ticket counter / grant counter
	waiters   []int // thread indices subscribed to the next write
	transfers int64
}

type thread struct {
	ctx      int
	ready    int64
	ph       phase
	after    phase // phase to enter after a subscription wakes us
	myTicket int64
	// cachedVersion lets TTAS distinguish a local re-read from a fetch.
	cachedVersion int64
	acq           int64
}

type simState struct {
	cfg     Config
	p       *sim.Platform
	threads []*thread
	lockL   line // TAS/TTAS lock word; Ticket: ticket counter
	grantL  line // Ticket: grant counter
}

// access runs a probe on a line: the line's home serves requests in
// arrival order, each occupying it for the (short) service slot, while the
// requester itself waits the full communication latency for its answer.
// Returns the time the requester has its result.
func (s *simState) access(l *line, t *thread, now int64, write bool) int64 {
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	var cost, occ int64
	switch {
	case l.holder == -1:
		cost = s.p.MemLat[s.p.SocketOf(t.ctx)][s.p.LocalNode(s.p.SocketOf(t.ctx))]
		occ = s.cfg.WriteOccupancy
	case l.holder == t.ctx:
		cost = s.p.HitCASLat
		occ = 10 // local hit barely touches the fabric
	default:
		cost = s.p.PairLatency(l.holder, t.ctx)
		if write {
			occ = s.cfg.WriteOccupancy
		} else {
			occ = s.cfg.ReadOccupancy
		}
		l.transfers++
	}
	done := start + cost
	l.freeAt = start + occ
	l.holder = t.ctx
	if write {
		l.version++
		// Wake every subscriber: their cached copies are invalidated.
		for _, wi := range l.waiters {
			w := s.threads[wi]
			if w.ph == phWaiting {
				w.ph = w.after
				if w.ready < done {
					w.ready = done
				}
			}
		}
		l.waiters = l.waiters[:0]
	}
	return done
}

func (s *simState) subscribe(l *line, ti int, after phase) {
	t := s.threads[ti]
	t.ph = phWaiting
	t.after = after
	l.waiters = append(l.waiters, ti)
}

// backoffWait is the time a thread waits before re-probing.
func (s *simState) backoffWait(position int64) int64 {
	if s.cfg.Quantum <= 0 {
		return 35 // the pause-instruction baseline
	}
	q := s.cfg.Quantum
	if position > 1 {
		q *= position
	}
	return q
}

// Run executes the experiment. It is fully deterministic.
func Run(cfg Config) (Result, error) {
	if cfg.Platform == nil || len(cfg.Threads) == 0 {
		return Result{}, fmt.Errorf("contend: platform and threads required")
	}
	if cfg.CSWork <= 0 {
		cfg.CSWork = 1000
	}
	if cfg.PauseWork < 0 {
		cfg.PauseWork = 0
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 5_000_000
	}
	if cfg.ReadOccupancy <= 0 {
		cfg.ReadOccupancy = 40
	}
	if cfg.WriteOccupancy <= 0 {
		cfg.WriteOccupancy = 90
	}
	for _, c := range cfg.Threads {
		if c < 0 || c >= cfg.Platform.NumContexts() {
			return Result{}, fmt.Errorf("contend: context %d out of range on %s", c, cfg.Platform.Name)
		}
	}

	s := &simState{cfg: cfg, p: cfg.Platform}
	s.lockL = line{holder: -1}
	s.grantL = line{holder: -1}
	for i, c := range cfg.Threads {
		// Skew start times so threads do not arrive in artificial lockstep.
		s.threads = append(s.threads, &thread{ctx: c, ready: int64(i) * 13})
	}

	for {
		// Pick the earliest runnable thread (lowest index breaks ties).
		ti := -1
		for i, t := range s.threads {
			if t.ph == phWaiting {
				continue
			}
			if ti == -1 || t.ready < s.threads[ti].ready {
				ti = i
			}
		}
		if ti == -1 || s.threads[ti].ready >= cfg.Horizon {
			break
		}
		s.step(ti)
	}

	var res Result
	res.PerThread = make([]int64, len(s.threads))
	for i, t := range s.threads {
		res.PerThread[i] = t.acq
		res.Acquisitions += t.acq
	}
	res.Throughput = float64(res.Acquisitions) / float64(cfg.Horizon) * 1e6
	res.Transfers = s.lockL.transfers + s.grantL.transfers
	return res, nil
}

func (s *simState) step(ti int) {
	t := s.threads[ti]
	now := t.ready
	switch s.cfg.Alg {
	case locks.AlgTAS:
		s.stepTAS(ti, t, now)
	case locks.AlgTTAS:
		s.stepTTAS(ti, t, now)
	case locks.AlgTicket:
		s.stepTicket(ti, t, now)
	}
}

func (s *simState) stepTAS(ti int, t *thread, now int64) {
	switch t.ph {
	case phTryAcquire:
		done := s.access(&s.lockL, t, now, true)
		if s.lockL.value == 0 {
			s.lockL.value = 1
			t.ph = phUnlock
			t.ready = done + s.cfg.CSWork
		} else {
			t.ready = done + s.backoffWait(1)
		}
	case phUnlock:
		done := s.access(&s.lockL, t, now, true)
		s.lockL.value = 0
		t.acq++
		t.ph = phTryAcquire
		t.ready = done + s.cfg.PauseWork
	}
}

func (s *simState) stepTTAS(ti int, t *thread, now int64) {
	switch t.ph {
	case phTryAcquire: // test: read the lock word
		if t.cachedVersion == s.lockL.version && s.lockL.holder != t.ctx && s.lockL.value == 1 {
			// Valid cached copy, still locked: spin locally.
			if s.cfg.Quantum > 0 {
				// Educated: check again one quantum later.
				t.ready = now + s.backoffWait(1)
			} else {
				// Baseline: camp on the cached copy until invalidated.
				s.subscribe(&s.lockL, ti, phTryAcquire)
			}
			return
		}
		done := s.access(&s.lockL, t, now, false)
		t.cachedVersion = s.lockL.version
		if s.lockL.value == 0 {
			t.ph = phTTASCas
			t.ready = done
		} else if s.cfg.Quantum > 0 {
			t.ready = done + s.backoffWait(1)
		} else {
			s.subscribe(&s.lockL, ti, phTryAcquire)
		}
	case phTTASCas:
		done := s.access(&s.lockL, t, now, true)
		if s.lockL.value == 0 {
			s.lockL.value = 1
			t.ph = phUnlock
			t.ready = done + s.cfg.CSWork
		} else {
			t.ph = phTryAcquire
			t.ready = done + s.backoffWait(1)
		}
	case phUnlock:
		done := s.access(&s.lockL, t, now, true)
		s.lockL.value = 0
		t.acq++
		t.ph = phTryAcquire
		t.ready = done + s.cfg.PauseWork
	}
}

func (s *simState) stepTicket(ti int, t *thread, now int64) {
	switch t.ph {
	case phTryAcquire: // fetch-and-increment the ticket counter
		done := s.access(&s.lockL, t, now, true)
		t.myTicket = s.lockL.value
		s.lockL.value++
		t.ph = phCheckGrant
		t.ready = done
	case phCheckGrant:
		done := s.access(&s.grantL, t, now, false)
		dist := t.myTicket - s.grantL.value
		switch {
		case dist == 0:
			t.ph = phUnlock
			t.ready = done + s.cfg.CSWork
		case s.cfg.Quantum > 0:
			// Educated, proportional: sleep roughly until our turn.
			t.ready = done + s.backoffWait(dist)
		default:
			// Baseline: camp on the grant line; every release floods all
			// waiters with re-reads.
			s.subscribe(&s.grantL, ti, phCheckGrant)
		}
	case phUnlock:
		done := s.access(&s.grantL, t, now, true)
		s.grantL.value++
		t.acq++
		t.ph = phTryAcquire
		t.ready = done + s.cfg.PauseWork
	}
}

// RelativeThroughput runs baseline and educated variants of one experiment
// and returns educated/baseline — the y-axis of Figure 8.
func RelativeThroughput(cfg Config, quantum int64) (baseline, educated Result, ratio float64, err error) {
	base := cfg
	base.Quantum = 0
	baseline, err = Run(base)
	if err != nil {
		return
	}
	edu := cfg
	edu.Quantum = quantum
	educated, err = Run(edu)
	if err != nil {
		return
	}
	if baseline.Throughput > 0 {
		ratio = educated.Throughput / baseline.Throughput
	}
	return
}
