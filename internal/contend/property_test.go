package contend

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/locks"
	"repro/internal/sim"
)

// Simulator invariants that must hold for any configuration: the results
// are meaningless otherwise.

// Property: per-thread acquisitions sum to the total; nothing is lost.
func TestAcquisitionConservation(t *testing.T) {
	f := func(seed int64, algN, nThreads uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := locks.Algorithms()[int(algN)%3]
		n := int(nThreads%16) + 1
		threads := make([]int, n)
		for i := range threads {
			threads[i] = rng.Intn(40)
			// Distinct contexts (the paper's threads are pinned uniquely).
			for j := 0; j < i; j++ {
				if threads[j] == threads[i] {
					threads[i] = (threads[i] + 1) % 40
					j = -1
				}
			}
		}
		res, err := Run(Config{Platform: sim.Ivy(), Threads: threads, Alg: alg,
			CSWork: 500, PauseWork: 50, Horizon: 500_000})
		if err != nil {
			return false
		}
		var sum int64
		for _, v := range res.PerThread {
			sum += v
		}
		return sum == res.Acquisitions && res.Acquisitions > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the horizon bounds the work — doubling it roughly doubles
// acquisitions (never shrinks them).
func TestHorizonMonotone(t *testing.T) {
	threads := seqThreads(8)
	for _, alg := range locks.Algorithms() {
		short, err := Run(Config{Platform: sim.Ivy(), Threads: threads, Alg: alg,
			CSWork: 1000, PauseWork: 100, Horizon: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		long, err := Run(Config{Platform: sim.Ivy(), Threads: threads, Alg: alg,
			CSWork: 1000, PauseWork: 100, Horizon: 4_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if long.Acquisitions < short.Acquisitions {
			t.Errorf("%v: longer horizon produced fewer acquisitions", alg)
		}
		ratio := float64(long.Acquisitions) / float64(short.Acquisitions)
		if ratio < 3.0 || ratio > 5.0 {
			t.Errorf("%v: 4x horizon gave %.2fx acquisitions", alg, ratio)
		}
	}
}

// Property: longer critical sections never increase throughput.
func TestCSWorkMonotone(t *testing.T) {
	threads := seqThreads(8)
	prev := 1e18
	for _, cs := range []int64{200, 1000, 5000} {
		res, err := Run(Config{Platform: sim.Ivy(), Threads: threads,
			Alg: locks.AlgTicket, Quantum: 308, CSWork: cs, PauseWork: 100,
			Horizon: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput > prev {
			t.Errorf("CS %d: throughput rose with longer critical sections", cs)
		}
		prev = res.Throughput
	}
}

// Property: the platform's latencies matter — the same experiment on a
// machine with slower cross-socket links yields lower cross-socket
// contended throughput.
func TestLatencySensitivity(t *testing.T) {
	mk := func(p *sim.Platform) float64 {
		// Two threads on different sockets.
		threads := []int{0, 10}
		res, err := Run(Config{Platform: p, Threads: threads, Alg: locks.AlgTAS,
			CSWork: 1000, PauseWork: 100, Horizon: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	fast := sim.Ivy()
	slow := sim.Ivy()
	slow.Links[0].Lat = 900
	if mk(slow) >= mk(fast) {
		t.Error("slower interconnect did not reduce contended throughput")
	}
}
