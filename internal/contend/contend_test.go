package contend

import (
	"testing"

	"repro/internal/locks"
	"repro/internal/sim"
)

func seqThreads(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleThreadNoContention(t *testing.T) {
	p := sim.Ivy()
	for _, alg := range locks.Algorithms() {
		cfg := Config{
			Platform: p, Threads: []int{0}, Alg: alg,
			CSWork: 1000, PauseWork: 100, Horizon: 1_000_000,
		}
		res := run(t, cfg)
		if res.Acquisitions < 500 {
			t.Errorf("%v: only %d acquisitions single-threaded", alg, res.Acquisitions)
		}
		// Roughly horizon / (CS + pause + a few line hits).
		if res.Acquisitions > 1_000_000/1100 {
			t.Errorf("%v: %d acquisitions too many", alg, res.Acquisitions)
		}
	}
}

func TestThroughputDropsUnderContention(t *testing.T) {
	p := sim.Ivy()
	for _, alg := range locks.Algorithms() {
		one := run(t, Config{Platform: p, Threads: seqThreads(1), Alg: alg,
			CSWork: 1000, PauseWork: 100, Horizon: 2_000_000})
		many := run(t, Config{Platform: p, Threads: seqThreads(20), Alg: alg,
			CSWork: 1000, PauseWork: 100, Horizon: 2_000_000})
		// Aggregate throughput under heavy contention must not beat the
		// uncontended single thread (the lock serializes everything and
		// adds transfer overhead).
		if many.Throughput > one.Throughput*1.05 {
			t.Errorf("%v: contended throughput %f > solo %f", alg, many.Throughput, one.Throughput)
		}
		if many.Transfers == 0 {
			t.Errorf("%v: no coherence transfers under contention?", alg)
		}
	}
}

func TestDeterministic(t *testing.T) {
	p := sim.Opteron()
	cfg := Config{Platform: p, Threads: seqThreads(12), Alg: locks.AlgTicket,
		CSWork: 1000, PauseWork: 100, Horizon: 2_000_000, Quantum: 300}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Acquisitions != b.Acquisitions || a.Transfers != b.Transfers {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestTicketIsFair(t *testing.T) {
	p := sim.Ivy()
	res := run(t, Config{Platform: p, Threads: seqThreads(10), Alg: locks.AlgTicket,
		CSWork: 1000, PauseWork: 100, Horizon: 4_000_000, Quantum: 308})
	min, max := res.PerThread[0], res.PerThread[0]
	for _, v := range res.PerThread {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// FIFO: nobody starves.
	if min == 0 || float64(max) > 1.5*float64(min) {
		t.Errorf("ticket unfair: per-thread %v", res.PerThread)
	}
}

// TestEducatedBackoffHelpsTicket is the core of Figure 8: with many
// threads, the proportional educated backoff must clearly beat the
// baseline that floods the grant line.
func TestEducatedBackoffHelpsTicket(t *testing.T) {
	p := sim.Ivy()
	cfg := Config{Platform: p, Threads: seqThreads(40), Alg: locks.AlgTicket,
		CSWork: 1000, PauseWork: 100, Horizon: 4_000_000}
	_, _, ratio, err := RelativeThroughput(cfg, 308)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.10 {
		t.Errorf("educated ticket backoff ratio = %.3f, want clearly > 1.1", ratio)
	}
}

func TestEducatedBackoffHelpsTAS(t *testing.T) {
	p := sim.Ivy()
	cfg := Config{Platform: p, Threads: seqThreads(40), Alg: locks.AlgTAS,
		CSWork: 1000, PauseWork: 100, Horizon: 4_000_000}
	_, _, ratio, err := RelativeThroughput(cfg, 308)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.02 {
		t.Errorf("educated TAS backoff ratio = %.3f, want > 1", ratio)
	}
}

// TestTTASGainShrinksWithContention reproduces the paper's observation:
// "With TTAS, as contention increases, backing off does not make a
// difference, since most threads are still bashing the cache line."
func TestTTASGainShrinksWithContention(t *testing.T) {
	p := sim.Westmere()
	cfg := Config{Platform: p, Threads: seqThreads(160), Alg: locks.AlgTTAS,
		CSWork: 1000, PauseWork: 100, Horizon: 4_000_000}
	_, _, ratio, err := RelativeThroughput(cfg, 458)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.8 || ratio > 1.35 {
		t.Errorf("TTAS high-contention ratio = %.3f, want near 1", ratio)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := Run(Config{Platform: sim.Ivy(), Threads: []int{999}}); err == nil {
		t.Error("out-of-range context should fail")
	}
}

// TestFig8ShapeAcrossPlatforms: on every platform, the average educated
// gain over the thread sweep must be positive for TICKET and non-ruinous
// for TAS/TTAS — the aggregate claims of Section 7.1 (TAS +12%, TTAS +11%,
// TICKET +39% on average).
func TestFig8ShapeAcrossPlatforms(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, p := range []*sim.Platform{sim.Ivy(), sim.Opteron()} {
		quantum := int64(308)
		if p.Name == "Opteron" {
			quantum = 300
		}
		for _, alg := range locks.Algorithms() {
			var sum float64
			var count int
			for n := 4; n <= p.NumContexts(); n *= 2 {
				cfg := Config{Platform: p, Threads: seqThreads(n), Alg: alg,
					CSWork: 1000, PauseWork: 100, Horizon: 3_000_000}
				_, _, ratio, err := RelativeThroughput(cfg, quantum)
				if err != nil {
					t.Fatal(err)
				}
				sum += ratio
				count++
			}
			avg := sum / float64(count)
			switch alg {
			case locks.AlgTicket:
				if avg < 1.05 {
					t.Errorf("%s/%v: average ratio %.3f, want > 1.05", p.Name, alg, avg)
				}
			default:
				if avg < 0.95 {
					t.Errorf("%s/%v: average ratio %.3f, want >= ~1", p.Name, alg, avg)
				}
			}
		}
	}
}
