package contend

import (
	"fmt"
	"testing"

	"repro/internal/locks"
	"repro/internal/sim"
)

func TestProbeFig8(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, p := range []*sim.Platform{sim.Ivy(), sim.Opteron(), sim.SPARC()} {
		q := p.TwoHopLat
		if q == 0 {
			q = p.Links[0].Lat
		}
		for _, alg := range locks.Algorithms() {
			line := fmt.Sprintf("%-9s %-7s:", p.Name, alg)
			var sum float64
			var c int
			for n := 2; n <= p.NumContexts(); n *= 2 {
				cfg := Config{Platform: p, Threads: seqThreads(n), Alg: alg, CSWork: 1000, PauseWork: 100, Horizon: 3_000_000}
				_, _, r, _ := RelativeThroughput(cfg, q)
				line += fmt.Sprintf(" %d:%.2f", n, r)
				sum += r
				c++
			}
			t.Logf("%s  avg=%.3f", line, sum/float64(c))
		}
	}
}
