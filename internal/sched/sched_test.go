package sched

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	topoOnce sync.Once
	ivyTopo  *topo.Topology
)

func ivy(t *testing.T) *topo.Topology {
	t.Helper()
	topoOnce.Do(func() {
		m, err := machine.NewSim(sim.Ivy(), 71)
		if err != nil {
			t.Fatal(err)
		}
		o := mctopalg.DefaultOptions()
		o.Reps = 51
		res, err := mctopalg.Infer(m, o)
		if err != nil {
			t.Fatal(err)
		}
		ivyTopo, err = plugins.Enrich(m, res.Topology, nil)
		if err != nil {
			t.Fatal(err)
		}
	})
	return ivyTopo
}

func computeApp(name string, threads int) App {
	return App{Name: name, Threads: threads, Workload: exec.Workload{
		Name: name, Phases: []exec.Phase{{WorkCycles: 1e9, SMTFriendly: 0.3}},
	}}
}

func streamApp(name string, threads int, node int) App {
	return App{Name: name, Threads: threads, Workload: exec.Workload{
		Name: name, Phases: []exec.Phase{{Bytes: 8 << 30, Data: node}},
	}}
}

func TestAdmitDisjointPlacements(t *testing.T) {
	s, err := New(ivy(t))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := s.Admit(computeApp("a1", 10))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Admit(computeApp("a2", 10))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range append(append([]int(nil), a1.Ctxs...), a2.Ctxs...) {
		if seen[c] {
			t.Fatalf("context %d assigned twice", c)
		}
		seen[c] = true
	}
	if len(s.FreeContexts()) != 40-20 {
		t.Errorf("free contexts = %d, want 20", len(s.FreeContexts()))
	}
	if got := s.Running(); len(got) != 2 || got[0] != "a1" || got[1] != "a2" {
		t.Errorf("running = %v", got)
	}
}

func TestOverSubscriptionRejected(t *testing.T) {
	s, _ := New(ivy(t))
	if _, err := s.Admit(computeApp("big", 41)); err == nil {
		t.Error("should reject more threads than contexts")
	}
	if _, err := s.Admit(computeApp("a", 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(computeApp("b", 20)); err == nil {
		t.Error("should reject when not enough contexts remain")
	}
	if _, err := s.Admit(computeApp("a", 2)); err == nil {
		t.Error("should reject duplicate app name")
	}
	if _, err := s.Admit(App{Name: "", Threads: 1}); err == nil {
		t.Error("should reject empty name")
	}
}

func TestRemoveFreesResources(t *testing.T) {
	s, _ := New(ivy(t))
	if _, err := s.Admit(computeApp("a", 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(computeApp("b", 1)); err == nil {
		t.Fatal("machine should be full")
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if len(s.FreeContexts()) != 40 {
		t.Error("removal did not free contexts")
	}
	if _, err := s.Admit(computeApp("b", 40)); err != nil {
		t.Errorf("after removal: %v", err)
	}
	if err := s.Remove("nope"); err == nil {
		t.Error("removing unknown app should fail")
	}
}

// TestEffectiveBandwidthDegrades: a streaming app reduces its node's
// effective bandwidth for later arrivals.
func TestEffectiveBandwidthDegrades(t *testing.T) {
	tp := ivy(t)
	s, _ := New(tp)
	nominal := s.EffectiveBandwidth(0)
	if nominal != tp.Node(0).BW {
		t.Fatalf("idle effective BW = %g, want nominal %g", nominal, tp.Node(0).BW)
	}
	if _, err := s.Admit(streamApp("hog", 8, 0)); err != nil {
		t.Fatal(err)
	}
	after := s.EffectiveBandwidth(0)
	if after >= nominal {
		t.Errorf("effective BW after hog = %g, want < %g", after, nominal)
	}
	// Never below the floor.
	if _, err := s.Admit(streamApp("hog2", 8, 0)); err != nil {
		t.Fatal(err)
	}
	if s.EffectiveBandwidth(0) < tp.Node(0).BW*0.1-1e-9 {
		t.Error("effective BW fell below the floor")
	}
}

// TestInterferenceAwarePlacement: with node 0 saturated by a running app,
// a new bandwidth-bound app (local traffic) should be steered toward the
// other socket.
func TestInterferenceAwarePlacement(t *testing.T) {
	tp := ivy(t)
	s, _ := New(tp)
	// Saturate node 0 with a pinned stream (compact placement lands on
	// socket 0, the max-BW socket).
	hog, err := s.Admit(streamApp("hog", 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	hogSockets := map[int]bool{}
	for _, c := range hog.Ctxs {
		hogSockets[tp.Context(c).Socket.ID] = true
	}
	if len(hogSockets) != 1 || !hogSockets[0] {
		t.Fatalf("hog not compact on socket 0: %v", hogSockets)
	}
	// A local-streaming app now sees socket 0's node derated; the compact
	// candidate starts from the socket with the most *effective* local
	// bandwidth.
	app := App{Name: "victim", Threads: 4, Workload: exec.Workload{
		Name: "victim", Phases: []exec.Phase{{Bytes: 8 << 30, Data: exec.DataLocal}},
	}}
	victim, err := s.Admit(app)
	if err != nil {
		t.Fatal(err)
	}
	onSocket1 := 0
	for _, c := range victim.Ctxs {
		if tp.Context(c).Socket.ID == 1 {
			onSocket1++
		}
	}
	if onSocket1 < len(victim.Ctxs)/2 {
		t.Errorf("victim placed %d/%d threads on the loaded socket's side: %v",
			len(victim.Ctxs)-onSocket1, len(victim.Ctxs), victim.Ctxs)
	}
}

// TestPredictionAccountsForInterference: the same app admitted onto a
// loaded machine must predict a longer runtime than onto an idle one.
func TestPredictionAccountsForInterference(t *testing.T) {
	tp := ivy(t)
	idle, _ := New(tp)
	// Force the app to stream from node 0 explicitly.
	mk := func(name string) App { return streamApp(name, 4, 0) }
	base, err := idle.Admit(mk("solo"))
	if err != nil {
		t.Fatal(err)
	}

	loaded, _ := New(tp)
	if _, err := loaded.Admit(streamApp("hog", 8, 0)); err != nil {
		t.Fatal(err)
	}
	contended, err := loaded.Admit(mk("later"))
	if err != nil {
		t.Fatal(err)
	}
	if contended.Predicted.Cycles <= base.Predicted.Cycles {
		t.Errorf("contended prediction %d <= idle prediction %d",
			contended.Predicted.Cycles, base.Predicted.Cycles)
	}
}

func TestCompactVsSpreadSelection(t *testing.T) {
	tp := ivy(t)
	s, _ := New(tp)
	// A sync-heavy app should pick the compact candidate.
	syncApp := App{Name: "sync", Threads: 8, Workload: exec.Workload{
		Name: "sync", Phases: []exec.Phase{{WorkCycles: 1e8, SyncOps: 500_000}},
	}}
	a, err := s.Admit(syncApp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Policy != "compact" {
		t.Errorf("sync-heavy app placed %s, want compact", a.Policy)
	}
	sockets := map[int]bool{}
	for _, c := range a.Ctxs {
		sockets[tp.Context(c).Socket.ID] = true
	}
	if len(sockets) != 1 {
		t.Errorf("compact placement spans %d sockets", len(sockets))
	}
}

func TestSchedulerString(t *testing.T) {
	s, _ := New(ivy(t))
	if _, err := s.Admit(computeApp("app", 4)); err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{"4/40 contexts", "app", "node 0:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestNewRequiresEnrichment(t *testing.T) {
	// A bare (un-enriched) topology lacks bandwidths.
	spec := ivy(t).Spec()
	spec.MemBW = nil
	bare, err := topo.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(bare); err == nil {
		t.Error("scheduler should require bandwidth measurements")
	}
}
