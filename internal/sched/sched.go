// Package sched prototypes the future work of the MCTOP paper's Section 9:
// thread scheduling built on top of MCTOP.
//
// The paper identifies what such a scheduler needs beyond MCTOP-PLACE's
// static placements: (i) dynamically determining a good policy for an
// application instead of asking the user, and (ii) scheduling applications
// that co-execute and interfere — which requires tracking the *effective*
// topology: "if an application is already executing, the effective memory
// bandwidth for another application is less than the total bandwidth
// reported by MCTOP."
//
// Scheduler does exactly that: it admits applications described by their
// execution profiles (internal/exec workloads), places each on the
// machine's remaining hardware contexts using the placement policy that
// minimizes its predicted runtime on the *effective* topology — the MCTOP
// with every node's bandwidth reduced by what already-running applications
// consume — and releases resources when applications finish.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/topo"
)

// App is an application requesting admission.
type App struct {
	Name string
	// Workload is the application's execution profile.
	Workload exec.Workload
	// Threads it wants. Must be >= 1.
	Threads int
}

// Assignment records a running application's placement and prediction.
type Assignment struct {
	App  string
	Ctxs []int
	// Policy is a human-readable description of the placement shape chosen.
	Policy string
	// Predicted is the model's estimate on the effective topology at
	// admission time.
	Predicted exec.Report
	// BWDemand is the application's estimated bandwidth draw per node
	// (GB/s), used to derate the topology for later arrivals.
	BWDemand map[int]float64
}

// Scheduler co-schedules applications on one machine.
type Scheduler struct {
	base    *topo.Topology
	running map[string]*Assignment
	taken   map[int]string // hardware context -> app
}

// New creates a scheduler over an enriched topology (memory bandwidths
// must be measured: the effective-topology computation needs them).
func New(t *topo.Topology) (*Scheduler, error) {
	if t.Socket(0) == nil || t.Socket(0).MemBW == nil {
		return nil, fmt.Errorf("sched: topology lacks bandwidth measurements (run the plugins)")
	}
	return &Scheduler{
		base:    t,
		running: make(map[string]*Assignment),
		taken:   make(map[int]string),
	}, nil
}

// FreeContexts returns the unassigned hardware contexts, ascending.
func (s *Scheduler) FreeContexts() []int {
	var out []int
	for _, c := range s.base.Contexts() {
		if _, busy := s.taken[c.ID]; !busy {
			out = append(out, c.ID)
		}
	}
	return out
}

// Running returns the names of admitted applications, sorted.
func (s *Scheduler) Running() []string {
	var out []string
	for name := range s.running {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EffectiveBandwidth returns a node's bandwidth after subtracting the
// demand of running applications (never below 10% of nominal — memory
// controllers keep serving, just slower).
func (s *Scheduler) EffectiveBandwidth(node int) float64 {
	n := s.base.Node(node)
	if n == nil {
		return 0
	}
	bw := n.BW
	for _, a := range s.running {
		bw -= a.BWDemand[node]
	}
	if min := n.BW * 0.1; bw < min {
		bw = min
	}
	return bw
}

// effectiveTopology rebuilds the MCTOP with every socket-to-node bandwidth
// scaled by the nodes' current load — the "effective topology
// characteristics" of Section 9.
func (s *Scheduler) effectiveTopology() (*topo.Topology, error) {
	spec := s.base.Spec()
	if spec.MemBW == nil {
		return s.base, nil
	}
	scaled := make([][]float64, len(spec.MemBW))
	for sock := range spec.MemBW {
		scaled[sock] = make([]float64, len(spec.MemBW[sock]))
		for node, bw := range spec.MemBW[sock] {
			nominal := s.base.Node(node).BW
			factor := 1.0
			if nominal > 0 {
				factor = s.EffectiveBandwidth(node) / nominal
			}
			scaled[sock][node] = bw * factor
		}
	}
	spec.MemBW = scaled
	return topo.FromSpec(spec)
}

// candidate placements over the free contexts: compact (fill socket by
// socket, unique cores first) and spread (round-robin over sockets).
func (s *Scheduler) candidates(threads int) map[string][]int {
	free := s.FreeContexts()
	if len(free) < threads {
		return nil
	}
	bySocket := map[int][]int{}
	var socketOrder []int
	for _, c := range free {
		sid := s.base.Context(c).Socket.ID
		if _, ok := bySocket[sid]; !ok {
			socketOrder = append(socketOrder, sid)
		}
		bySocket[sid] = append(bySocket[sid], c)
	}
	// Order sockets by free local bandwidth, best first.
	sort.SliceStable(socketOrder, func(i, j int) bool {
		bi := s.EffectiveBandwidth(s.base.Socket(socketOrder[i]).Local.ID)
		bj := s.EffectiveBandwidth(s.base.Socket(socketOrder[j]).Local.ID)
		if bi != bj {
			return bi > bj
		}
		return socketOrder[i] < socketOrder[j]
	})
	// Within a socket: unique cores first, SMT siblings after.
	for sid, ctxs := range bySocket {
		bySocket[sid] = coreFirst(s.base, ctxs)
	}

	out := map[string][]int{}
	// Compact: fill sockets in order.
	var compact []int
	for _, sid := range socketOrder {
		compact = append(compact, bySocket[sid]...)
	}
	out["compact"] = compact[:threads]
	// Spread: round-robin over sockets.
	var spread []int
	idx := map[int]int{}
	for len(spread) < len(compact) {
		progress := false
		for _, sid := range socketOrder {
			if idx[sid] < len(bySocket[sid]) {
				spread = append(spread, bySocket[sid][idx[sid]])
				idx[sid]++
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	out["spread"] = spread[:threads]
	return out
}

// coreFirst orders contexts so that distinct cores come before SMT
// siblings.
func coreFirst(t *topo.Topology, ctxs []int) []int {
	perCore := map[*topo.HWCGroup][]int{}
	var coreOrder []*topo.HWCGroup
	for _, c := range ctxs {
		core := t.Context(c).Core
		if _, ok := perCore[core]; !ok {
			coreOrder = append(coreOrder, core)
		}
		perCore[core] = append(perCore[core], c)
	}
	var out []int
	for round := 0; ; round++ {
		progress := false
		for _, core := range coreOrder {
			if round < len(perCore[core]) {
				out = append(out, perCore[core][round])
				progress = true
			}
		}
		if !progress {
			return out
		}
	}
}

// Admit places app on the remaining resources: it evaluates the candidate
// placements against the effective topology and installs the fastest.
func (s *Scheduler) Admit(app App) (*Assignment, error) {
	if app.Name == "" || app.Threads < 1 {
		return nil, fmt.Errorf("sched: app needs a name and >= 1 threads")
	}
	if _, dup := s.running[app.Name]; dup {
		return nil, fmt.Errorf("sched: app %q already running", app.Name)
	}
	if free := len(s.FreeContexts()); free < app.Threads {
		return nil, fmt.Errorf("sched: %q wants %d threads, only %d contexts free",
			app.Name, app.Threads, free)
	}
	eff, err := s.effectiveTopology()
	if err != nil {
		return nil, err
	}
	// Evaluate candidates in name order: map iteration would break
	// predicted-cycle ties at random (an app straddling sockets on one run
	// and not the next); the strict < below keeps the alphabetically first
	// candidate — "compact" — on a tie.
	cands := s.candidates(app.Threads)
	names := make([]string, 0, len(cands))
	for name := range cands {
		names = append(names, name)
	}
	sort.Strings(names)
	var best *Assignment
	for _, name := range names {
		ctxs := cands[name]
		r, err := exec.Estimate(eff, ctxs, app.Workload)
		if err != nil {
			return nil, err
		}
		if best == nil || r.Cycles < best.Predicted.Cycles {
			best = &Assignment{App: app.Name, Ctxs: ctxs, Policy: name, Predicted: r}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("sched: no feasible placement for %q", app.Name)
	}
	best.BWDemand = s.bwDemand(best.Ctxs, app.Workload, best.Predicted)
	for _, c := range best.Ctxs {
		s.taken[c] = app.Name
	}
	s.running[app.Name] = best
	return best, nil
}

// bwDemand estimates the application's steady-state bandwidth draw per
// node: its memory bytes spread over its predicted runtime, attributed to
// the nodes its placement touches.
func (s *Scheduler) bwDemand(ctxs []int, wl exec.Workload, rep exec.Report) map[int]float64 {
	out := map[int]float64{}
	if rep.Seconds <= 0 {
		return out
	}
	iters := wl.Iterations
	if iters <= 0 {
		iters = 1
	}
	perSocketThreads := map[int]int{}
	for _, c := range ctxs {
		perSocketThreads[s.base.Context(c).Socket.ID]++
	}
	total := len(ctxs)
	for _, ph := range wl.Phases {
		if ph.Bytes <= 0 {
			continue
		}
		bytesPerSec := float64(ph.Bytes*int64(iters)) / rep.Seconds / 1e9 // GB/s
		for sock, n := range perSocketThreads {
			share := bytesPerSec * float64(n) / float64(total)
			switch {
			case ph.Data == exec.DataLocal:
				out[s.base.Socket(sock).Local.ID] += share
			case ph.Data == exec.DataStriped:
				per := share / float64(s.base.NumNodes())
				for node := 0; node < s.base.NumNodes(); node++ {
					out[node] += per
				}
			default:
				out[ph.Data] += share
			}
		}
	}
	return out
}

// Remove releases a finished application's resources.
func (s *Scheduler) Remove(name string) error {
	a, ok := s.running[name]
	if !ok {
		return fmt.Errorf("sched: app %q not running", name)
	}
	for _, c := range a.Ctxs {
		delete(s.taken, c)
	}
	delete(s.running, name)
	return nil
}

// String summarizes the schedule.
func (s *Scheduler) String() string {
	out := fmt.Sprintf("scheduler on %s: %d/%d contexts in use\n",
		s.base.Name(), len(s.taken), s.base.NumHWContexts())
	for _, name := range s.Running() {
		a := s.running[name]
		out += fmt.Sprintf("  %-12s %2d threads (%s), predicted %.3f s\n",
			a.App, len(a.Ctxs), a.Policy, a.Predicted.Seconds)
	}
	for node := 0; node < s.base.NumNodes(); node++ {
		out += fmt.Sprintf("  node %d: %.1f / %.1f GB/s effective\n",
			node, s.EffectiveBandwidth(node), s.base.Node(node).BW)
	}
	return out
}
