// Package graph provides the graph-analytics substrate for the OpenMP
// evaluation of Section 7.4 of the MCTOP paper: a CSR graph representation,
// a deterministic synthetic power-law graph generator (standing in for the
// paper's 100M-node/800M-edge datasets, scaled down), and parallel
// implementations of the Green-Marl workloads — PageRank, Communities
// (label propagation), Hop Distance (BFS), Potential Friends and Random
// Degree Sampling.
package graph

import (
	"fmt"
	"sync"
)

// Graph is a compact CSR (compressed sparse row) directed graph; for the
// kernels below edges are treated as undirected when noted.
type Graph struct {
	N    int
	Offs []int32 // N+1 offsets into Adj
	Adj  []int32
}

// Degree returns a node's out-degree.
func (g *Graph) Degree(v int) int {
	return int(g.Offs[v+1] - g.Offs[v])
}

// Neighbors returns a node's adjacency slice (do not modify).
func (g *Graph) Neighbors(v int) []int32 {
	return g.Adj[g.Offs[v]:g.Offs[v+1]]
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Adj) }

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	if len(g.Offs) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d for %d nodes", len(g.Offs), g.N)
	}
	if g.Offs[0] != 0 || int(g.Offs[g.N]) != len(g.Adj) {
		return fmt.Errorf("graph: offset bounds corrupt")
	}
	for v := 0; v < g.N; v++ {
		if g.Offs[v] > g.Offs[v+1] {
			return fmt.Errorf("graph: negative degree at %d", v)
		}
	}
	for _, w := range g.Adj {
		if w < 0 || int(w) >= g.N {
			return fmt.Errorf("graph: edge to invalid node %d", w)
		}
	}
	return nil
}

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// GenPowerLaw builds a deterministic scale-free-ish graph with n nodes and
// roughly avgDeg edges per node: half the endpoints are drawn uniformly,
// half preferentially toward low node ids (a Zipf-like skew), mimicking the
// degree distribution of social graphs. Self-loops are skipped.
func GenPowerLaw(n, avgDeg int, seed uint64) *Graph {
	if n < 1 {
		n = 1
	}
	if avgDeg < 1 {
		avgDeg = 1
	}
	adjLists := make([][]int32, n)
	ctr := seed
	next := func() uint64 {
		ctr++
		return splitmix(ctr * 0x9E3779B97F4A7C15)
	}
	for v := 0; v < n; v++ {
		deg := avgDeg
		// Hubs: the first ~1% of nodes get 8x degree.
		if v < n/100+1 {
			deg *= 8
		}
		for e := 0; e < deg; e++ {
			var w int
			r := next()
			if r&1 == 0 {
				w = int(r % uint64(n))
			} else {
				// Preferential: squash toward low ids.
				u := float64(r%1_000_000) / 1_000_000
				w = int(u * u * float64(n))
			}
			if w == v || w >= n {
				continue
			}
			adjLists[v] = append(adjLists[v], int32(w))
		}
	}
	g := &Graph{N: n, Offs: make([]int32, n+1)}
	total := 0
	for v, l := range adjLists {
		total += len(l)
		g.Offs[v+1] = int32(total)
	}
	g.Adj = make([]int32, 0, total)
	for _, l := range adjLists {
		g.Adj = append(g.Adj, l...)
	}
	return g
}

// parallelNodes runs body over [0, n) split across workers.
func parallelNodes(n, workers int, body func(lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// PageRank runs the classic damped power iteration and returns the ranks.
func PageRank(g *Graph, iters int, damping float64, workers int) []float64 {
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		// Contribution push via pull: next[v] = sum over in-edges — with CSR
		// out-edges we accumulate per-worker partials to stay race-free.
		parts := make([][]float64, workers)
		parallelWorkers(workers, func(w int) {
			part := make([]float64, n)
			lo := w * n / workers
			hi := (w + 1) * n / workers
			for v := lo; v < hi; v++ {
				deg := g.Degree(v)
				if deg == 0 {
					continue
				}
				share := rank[v] / float64(deg)
				for _, u := range g.Neighbors(v) {
					part[u] += share
				}
			}
			parts[w] = part
		})
		base := (1 - damping) / float64(n)
		parallelNodes(n, workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				var s float64
				for _, p := range parts {
					if p != nil {
						s += p[v]
					}
				}
				next[v] = base + damping*s
			}
		})
		rank, next = next, rank
	}
	return rank
}

func parallelWorkers(workers int, body func(w int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body(w)
		}(w)
	}
	wg.Wait()
}

// HopDistance computes BFS hop counts from src (-1 for unreachable),
// level-synchronous and parallel per level.
func HopDistance(g *Graph, src, workers int) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N {
		return dist
	}
	dist[src] = 0
	frontier := []int32{int32(src)}
	level := int32(0)
	for len(frontier) > 0 {
		level++
		// Workers only read dist and collect candidates; the (sequential)
		// dedup phase below is the only writer — race-free by phases.
		nexts := make([][]int32, workers)
		parallelWorkers(workers, func(w int) {
			var local []int32
			lo := w * len(frontier) / workers
			hi := (w + 1) * len(frontier) / workers
			for _, v := range frontier[lo:hi] {
				for _, u := range g.Neighbors(int(v)) {
					if dist[u] == -1 {
						local = append(local, u)
					}
				}
			}
			nexts[w] = local
		})
		frontier = frontier[:0]
		for _, l := range nexts {
			for _, u := range l {
				if dist[u] == -1 {
					dist[u] = level
					frontier = append(frontier, u)
				}
			}
		}
	}
	return dist
}

// Communities runs synchronous label propagation for the given number of
// rounds and returns the final label of every node (initial label = id).
func Communities(g *Graph, rounds, workers int) []int32 {
	labels := make([]int32, g.N)
	for i := range labels {
		labels[i] = int32(i)
	}
	next := make([]int32, g.N)
	for r := 0; r < rounds; r++ {
		parallelNodes(g.N, workers, func(lo, hi int) {
			counts := map[int32]int{}
			for v := lo; v < hi; v++ {
				ns := g.Neighbors(v)
				if len(ns) == 0 {
					next[v] = labels[v]
					continue
				}
				for k := range counts {
					delete(counts, k)
				}
				for _, u := range ns {
					counts[labels[u]]++
				}
				best, bestN := labels[v], 0
				for l, c := range counts {
					if c > bestN || (c == bestN && l < best) {
						best, bestN = l, c
					}
				}
				next[v] = best
			}
		})
		labels, next = next, labels
	}
	return labels
}

// PotentialFriends counts, for every node, its two-hop neighbours that are
// not already direct neighbours (capped per node to bound the quadratic
// blow-up on hubs) — the friend-recommendation kernel.
func PotentialFriends(g *Graph, capPerNode, workers int) []int32 {
	out := make([]int32, g.N)
	parallelNodes(g.N, workers, func(lo, hi int) {
		direct := map[int32]bool{}
		cand := map[int32]bool{}
		for v := lo; v < hi; v++ {
			for k := range direct {
				delete(direct, k)
			}
			for k := range cand {
				delete(cand, k)
			}
			for _, u := range g.Neighbors(v) {
				direct[u] = true
			}
			count := 0
		scan:
			for _, u := range g.Neighbors(v) {
				for _, w := range g.Neighbors(int(u)) {
					if int(w) == v || direct[w] || cand[w] {
						continue
					}
					cand[w] = true
					count++
					if count >= capPerNode {
						break scan
					}
				}
			}
			out[v] = int32(count)
		}
	})
	return out
}

// RandDegreeSampling draws samples nodes with probability proportional to
// degree (edge-endpoint sampling) and returns the sampled ids —
// deterministic for a fixed seed.
func RandDegreeSampling(g *Graph, samples int, seed uint64, workers int) []int32 {
	out := make([]int32, samples)
	if len(g.Adj) == 0 {
		return out
	}
	parallelNodes(samples, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := splitmix(seed + uint64(i)*0x9E3779B97F4A7C15)
			// Picking a uniform edge endpoint == degree-proportional node.
			out[i] = g.Adj[r%uint64(len(g.Adj))]
		}
	})
	return out
}
