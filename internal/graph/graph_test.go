package graph

import (
	"math"
	"testing"
	"testing/quick"
)

// line builds a path graph 0-1-2-...-n-1 (undirected: both directions).
func line(n int) *Graph {
	g := &Graph{N: n, Offs: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		if v > 0 {
			g.Adj = append(g.Adj, int32(v-1))
		}
		if v < n-1 {
			g.Adj = append(g.Adj, int32(v+1))
		}
		g.Offs[v+1] = int32(len(g.Adj))
	}
	return g
}

func TestGenPowerLawValid(t *testing.T) {
	g := GenPowerLaw(5000, 8, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 5000 {
		t.Errorf("N = %d", g.N)
	}
	avg := float64(g.NumEdges()) / float64(g.N)
	if avg < 6 || avg > 10 {
		t.Errorf("average degree = %.1f, want ~8", avg)
	}
	// Hubs: first nodes must have clearly above-average degree.
	hubAvg := 0.0
	for v := 0; v < 50; v++ {
		hubAvg += float64(g.Degree(v))
	}
	hubAvg /= 50
	if hubAvg < 2*avg {
		t.Errorf("hub average degree %.1f not above 2x overall %.1f", hubAvg, avg)
	}
	// Determinism.
	g2 := GenPowerLaw(5000, 8, 42)
	if g2.NumEdges() != g.NumEdges() || g2.Adj[123] != g.Adj[123] {
		t.Error("generator not deterministic")
	}
	g3 := GenPowerLaw(5000, 8, 43)
	if g3.NumEdges() == g.NumEdges() && g3.Adj[123] == g.Adj[123] && g3.Adj[777] == g.Adj[777] {
		t.Error("different seeds should differ")
	}
}

func TestPageRankUniformOnRegular(t *testing.T) {
	// On a symmetric ring every node must end up with rank 1/n.
	n := 64
	g := &Graph{N: n, Offs: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		g.Adj = append(g.Adj, int32((v+1)%n), int32((v+n-1)%n))
		g.Offs[v+1] = int32(len(g.Adj))
	}
	ranks := PageRank(g, 30, 0.85, 4)
	for v, r := range ranks {
		if math.Abs(r-1.0/float64(n)) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, r, 1.0/float64(n))
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := GenPowerLaw(2000, 6, 7)
	ranks := PageRank(g, 20, 0.85, 8)
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	// Dangling nodes leak a little mass; the sum stays near 1.
	if sum < 0.5 || sum > 1.01 {
		t.Errorf("rank sum = %g", sum)
	}
	// Hubs should outrank the median node.
	if ranks[0] <= ranks[1500] {
		t.Errorf("hub rank %g <= tail rank %g", ranks[0], ranks[1500])
	}
}

func TestPageRankWorkerInvariance(t *testing.T) {
	g := GenPowerLaw(1000, 5, 3)
	r1 := PageRank(g, 10, 0.85, 1)
	r8 := PageRank(g, 10, 0.85, 8)
	for v := range r1 {
		if math.Abs(r1[v]-r8[v]) > 1e-12 {
			t.Fatalf("rank[%d] differs by worker count: %g vs %g", v, r1[v], r8[v])
		}
	}
}

func TestHopDistanceLine(t *testing.T) {
	g := line(10)
	d := HopDistance(g, 0, 4)
	for v := 0; v < 10; v++ {
		if d[v] != int32(v) {
			t.Errorf("dist[%d] = %d, want %d", v, d[v], v)
		}
	}
	// Unreachable nodes stay -1.
	iso := &Graph{N: 3, Offs: []int32{0, 1, 2, 2}, Adj: []int32{1, 0}}
	d = HopDistance(iso, 0, 2)
	if d[2] != -1 {
		t.Errorf("isolated node dist = %d, want -1", d[2])
	}
	// Bad source.
	d = HopDistance(g, -1, 2)
	for _, v := range d {
		if v != -1 {
			t.Error("bad source should leave all -1")
		}
	}
}

func TestHopDistanceWorkerInvariance(t *testing.T) {
	g := GenPowerLaw(3000, 6, 11)
	d1 := HopDistance(g, 0, 1)
	d8 := HopDistance(g, 0, 8)
	for v := range d1 {
		if d1[v] != d8[v] {
			t.Fatalf("dist[%d]: %d vs %d", v, d1[v], d8[v])
		}
	}
}

func TestCommunitiesTwoCliques(t *testing.T) {
	// Two 5-cliques joined by one edge: labels must collapse within each
	// clique.
	n := 10
	g := &Graph{N: n, Offs: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		base, end := 0, 5
		if v >= 5 {
			base, end = 5, 10
		}
		for u := base; u < end; u++ {
			if u != v {
				g.Adj = append(g.Adj, int32(u))
			}
		}
		if v == 4 {
			g.Adj = append(g.Adj, 5)
		}
		if v == 5 {
			g.Adj = append(g.Adj, 4)
		}
		g.Offs[v+1] = int32(len(g.Adj))
	}
	labels := Communities(g, 10, 4)
	for v := 1; v < 5; v++ {
		if labels[v] != labels[0] {
			t.Errorf("clique 1 not uniform: labels[%d]=%d vs %d", v, labels[v], labels[0])
		}
	}
	for v := 6; v < 10; v++ {
		if labels[v] != labels[5] {
			t.Errorf("clique 2 not uniform: labels[%d]=%d vs %d", v, labels[v], labels[5])
		}
	}
}

func TestPotentialFriendsTriangleFree(t *testing.T) {
	// Path 0-1-2: node 0's only 2-hop non-neighbour is 2.
	g := line(3)
	pf := PotentialFriends(g, 100, 2)
	if pf[0] != 1 || pf[2] != 1 {
		t.Errorf("pf = %v, want ends = 1", pf)
	}
	if pf[1] != 0 {
		t.Errorf("middle node pf = %d, want 0 (knows everyone)", pf[1])
	}
}

func TestPotentialFriendsCap(t *testing.T) {
	g := GenPowerLaw(2000, 10, 5)
	pf := PotentialFriends(g, 50, 8)
	for v, c := range pf {
		if c > 50 {
			t.Fatalf("node %d exceeds cap: %d", v, c)
		}
	}
}

func TestRandDegreeSampling(t *testing.T) {
	g := GenPowerLaw(5000, 8, 21)
	s := RandDegreeSampling(g, 20000, 9, 8)
	if len(s) != 20000 {
		t.Fatalf("samples = %d", len(s))
	}
	// Determinism across worker counts.
	s1 := RandDegreeSampling(g, 20000, 9, 1)
	for i := range s {
		if s[i] != s1[i] {
			t.Fatal("sampling not worker-invariant")
		}
	}
	// Degree bias: hubs (low ids, preferential targets) must be sampled
	// far more often than uniform.
	hubHits := 0
	for _, v := range s {
		if int(v) < 250 { // top 5% of ids
			hubHits++
		}
	}
	if frac := float64(hubHits) / float64(len(s)); frac < 0.10 {
		t.Errorf("hub sample fraction = %.3f, want > 0.10 (degree bias)", frac)
	}
	// Empty graph.
	empty := &Graph{N: 2, Offs: []int32{0, 0, 0}}
	if out := RandDegreeSampling(empty, 5, 1, 2); len(out) != 5 {
		t.Error("empty graph sampling should still return the requested count")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := line(5)
	g.Adj[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("invalid edge target should fail")
	}
	g = line(5)
	g.Offs[2] = 100
	if err := g.Validate(); err == nil {
		t.Error("corrupt offsets should fail")
	}
}

// Property: generated graphs always validate.
func TestGenAlwaysValid(t *testing.T) {
	f := func(seed uint64, n uint16, deg uint8) bool {
		g := GenPowerLaw(int(n%3000)+1, int(deg%12)+1, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
