package graph

// Task DAGs: the application side of the task-graph mapping service
// (internal/taskmap). A TaskDAG is a weighted directed acyclic graph —
// node weights are compute cycles, edge weights are communication volumes
// in bytes — the input AMTHA-style mappers pair with a hardware topology.
// The package also carries the deterministic layered random-DAG generator
// the property tests and the loadgen `mapdag` mix share, and the NDJSON
// file codec `mctop map` reads.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// TaskNode is one task: ID is its position (IDs are dense, 0..N-1) and
// Work its compute weight in cycles.
type TaskNode struct {
	ID   int   `json:"id"`
	Work int64 `json:"work"`
}

// TaskEdge is one precedence/communication edge: To cannot start before
// From finishes, and Volume bytes move between their assigned hardware
// contexts (free when both run on the same context).
type TaskEdge struct {
	From   int   `json:"from"`
	To     int   `json:"to"`
	Volume int64 `json:"volume"`
}

// TaskDAG is a weighted task graph. Nodes are ordered by ID; Edges are in
// canonical (From, To) order after Validate. The zero Name is fine — the
// canonical hash covers structure only, so two identically shaped DAGs
// share cache entries whatever they are called.
type TaskDAG struct {
	Name  string     `json:"name,omitempty"`
	Nodes []TaskNode `json:"nodes"`
	Edges []TaskEdge `json:"edges,omitempty"`
}

// Validate checks structural invariants: dense IDs in order, non-negative
// weights, edge endpoints in range, no self-edges or duplicate edges, and
// acyclicity (TopoOrder). Mappers call it once up front so the scheduling
// inner loops can trust the shape.
func (d *TaskDAG) Validate() error {
	if len(d.Nodes) == 0 {
		return fmt.Errorf("taskdag: no nodes")
	}
	for i, n := range d.Nodes {
		if n.ID != i {
			return fmt.Errorf("taskdag: node %d has id %d (ids must be dense and ordered)", i, n.ID)
		}
		if n.Work < 0 {
			return fmt.Errorf("taskdag: node %d has negative work %d", i, n.Work)
		}
	}
	seen := make(map[[2]int]bool, len(d.Edges))
	for i, e := range d.Edges {
		if e.From < 0 || e.From >= len(d.Nodes) || e.To < 0 || e.To >= len(d.Nodes) {
			return fmt.Errorf("taskdag: edge %d (%d->%d) out of range", i, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("taskdag: edge %d is a self-loop on %d", i, e.From)
		}
		if e.Volume < 0 {
			return fmt.Errorf("taskdag: edge %d has negative volume %d", i, e.Volume)
		}
		k := [2]int{e.From, e.To}
		if seen[k] {
			return fmt.Errorf("taskdag: duplicate edge %d->%d", e.From, e.To)
		}
		seen[k] = true
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Normalize sorts the edges into canonical (From, To) order, so DAGs that
// differ only in edge listing order hash (and therefore cache) the same.
func (d *TaskDAG) Normalize() {
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i].From != d.Edges[j].From {
			return d.Edges[i].From < d.Edges[j].From
		}
		return d.Edges[i].To < d.Edges[j].To
	})
}

// Hash is the DAG's canonical FNV-64a fingerprint over its normalized
// structure (nodes, works, edges, volumes — not the Name), the
// DAG-identity component of taskmap registry keys. Stable across processes
// and platforms: pure integer arithmetic over a fixed serialization.
func (d *TaskDAG) Hash() uint64 {
	edges := make([]TaskEdge, len(d.Edges))
	copy(edges, d.Edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	var b []byte
	for _, n := range d.Nodes {
		b = b[:0]
		b = append(b, 'n')
		b = strconv.AppendInt(b, int64(n.ID), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, n.Work, 10)
		b = append(b, '\n')
		mix(string(b))
	}
	for _, e := range edges {
		b = b[:0]
		b = append(b, 'e')
		b = strconv.AppendInt(b, int64(e.From), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(e.To), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, e.Volume, 10)
		b = append(b, '\n')
		mix(string(b))
	}
	return h
}

// TopoOrder returns a deterministic topological order (Kahn's algorithm,
// smallest ready ID first) or an error naming a cycle. The order is what
// the taskmap cost model simulates in, so determinism here is part of the
// byte-stability contract.
func (d *TaskDAG) TopoOrder() ([]int, error) {
	n := len(d.Nodes)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range d.Edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	// Small graphs (the service bounds them): a sorted ready slice beats a
	// heap for clarity, and re-sorting on insert keeps min-ID-first exact.
	var ready []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range succ[v] {
			if indeg[w]--; indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("taskdag: cycle detected (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// Preds returns, per node, the incoming edges (as indexes into Edges) —
// the adjacency view the cost model walks.
func (d *TaskDAG) Preds() [][]int {
	preds := make([][]int, len(d.Nodes))
	for i, e := range d.Edges {
		preds[e.To] = append(preds[e.To], i)
	}
	return preds
}

// TotalWork sums the node weights.
func (d *TaskDAG) TotalWork() int64 {
	var s int64
	for _, n := range d.Nodes {
		s += n.Work
	}
	return s
}

// DAGParams parameterizes GenTaskDAG. Zero fields take the defaults noted
// per field.
type DAGParams struct {
	// Layers is the DAG depth (default 3).
	Layers int
	// Width is the maximum tasks per layer (default 3); actual widths are
	// drawn in [1, Width].
	Width int
	// MinWork/MaxWork bound node compute weights (defaults 100/10000).
	MinWork, MaxWork int64
	// MinVolume/MaxVolume bound edge communication volumes
	// (defaults 0/65536).
	MinVolume, MaxVolume int64
}

func (p DAGParams) withDefaults() DAGParams {
	if p.Layers <= 0 {
		p.Layers = 3
	}
	if p.Width <= 0 {
		p.Width = 3
	}
	if p.MaxWork <= 0 {
		p.MinWork, p.MaxWork = 100, 10000
	}
	if p.MaxVolume <= 0 {
		p.MaxVolume = 65536
	}
	if p.MinWork < 0 {
		p.MinWork = 0
	}
	if p.MinWork > p.MaxWork {
		p.MinWork = p.MaxWork
	}
	if p.MinVolume < 0 {
		p.MinVolume = 0
	}
	if p.MinVolume > p.MaxVolume {
		p.MinVolume = p.MaxVolume
	}
	return p
}

// GenTaskDAG builds a deterministic layered random DAG: Layers layers of
// [1, Width] tasks each, every task wired to one or more tasks of the
// previous layer (so the graph is connected layer to layer and acyclic by
// construction), with works and volumes drawn uniformly from the
// configured ranges. The same counter-based splitmix64 stream as
// GenPowerLaw: one seed, one DAG, bit-for-bit, on every platform.
func GenTaskDAG(p DAGParams, seed uint64) *TaskDAG {
	p = p.withDefaults()
	ctr := seed
	next := func() uint64 {
		ctr++
		return splitmix(ctr * 0x9E3779B97F4A7C15)
	}
	draw := func(lo, hi int64) int64 { // uniform in [lo, hi]
		if hi <= lo {
			return lo
		}
		return lo + int64(next()%uint64(hi-lo+1))
	}
	d := &TaskDAG{Name: fmt.Sprintf("gen-%d", seed)}
	var prev []int // node IDs of the previous layer
	for l := 0; l < p.Layers; l++ {
		width := 1 + int(next()%uint64(p.Width))
		layer := make([]int, 0, width)
		for i := 0; i < width; i++ {
			id := len(d.Nodes)
			d.Nodes = append(d.Nodes, TaskNode{ID: id, Work: draw(p.MinWork, p.MaxWork)})
			layer = append(layer, id)
		}
		for _, id := range layer {
			added := false
			for _, src := range prev {
				// Each (prev, cur) pair gets an edge with probability 1/2;
				// every task is then guaranteed at least one parent below.
				if next()&1 == 0 {
					d.Edges = append(d.Edges, TaskEdge{From: src, To: id, Volume: draw(p.MinVolume, p.MaxVolume)})
					added = true
				}
			}
			if len(prev) > 0 && !added {
				src := prev[int(next()%uint64(len(prev)))]
				d.Edges = append(d.Edges, TaskEdge{From: src, To: id, Volume: draw(p.MinVolume, p.MaxVolume)})
			}
		}
		prev = layer
	}
	d.Normalize()
	return d
}

// dagLine is the NDJSON wire shape: exactly one of the three sections per
// line. A "dag" header line is optional and carries the name.
type dagLine struct {
	DAG    *string `json:"dag,omitempty"`
	Node   *int    `json:"node,omitempty"`
	Work   *int64  `json:"work,omitempty"`
	Edge   *[2]int `json:"edge,omitempty"`
	Volume *int64  `json:"volume,omitempty"`
}

// EncodeTaskDAG writes the NDJSON task-DAG interchange format `mctop map`
// reads — one JSON object per line:
//
//	{"dag":"wordcount"}
//	{"node":0,"work":1000}
//	{"node":1,"work":2000}
//	{"edge":[0,1],"volume":4096}
func EncodeTaskDAG(w io.Writer, d *TaskDAG) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if d.Name != "" {
		name := d.Name
		if err := enc.Encode(dagLine{DAG: &name}); err != nil {
			return err
		}
	}
	for i := range d.Nodes {
		n := d.Nodes[i]
		if err := enc.Encode(dagLine{Node: &n.ID, Work: &n.Work}); err != nil {
			return err
		}
	}
	for i := range d.Edges {
		e := d.Edges[i]
		pair := [2]int{e.From, e.To}
		if err := enc.Encode(dagLine{Edge: &pair, Volume: &e.Volume}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeTaskDAG reads the NDJSON format back, validates the DAG and
// normalizes its edge order. Blank lines and #-comments are skipped.
func DecodeTaskDAG(r io.Reader) (*TaskDAG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	d := &TaskDAG{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		trimmed := 0
		for trimmed < len(line) && (line[trimmed] == ' ' || line[trimmed] == '\t') {
			trimmed++
		}
		line = line[trimmed:]
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var l dagLine
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, fmt.Errorf("taskdag: line %d: %w", lineNo, err)
		}
		switch {
		case l.DAG != nil:
			d.Name = *l.DAG
		case l.Node != nil:
			work := int64(0)
			if l.Work != nil {
				work = *l.Work
			}
			d.Nodes = append(d.Nodes, TaskNode{ID: *l.Node, Work: work})
		case l.Edge != nil:
			vol := int64(0)
			if l.Volume != nil {
				vol = *l.Volume
			}
			d.Edges = append(d.Edges, TaskEdge{From: l.Edge[0], To: l.Edge[1], Volume: vol})
		default:
			return nil, fmt.Errorf("taskdag: line %d: neither dag, node nor edge", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	d.Normalize()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
