package graph

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestGenTaskDAGDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := GenTaskDAG(DAGParams{Layers: 4, Width: 4}, seed)
		b := GenTaskDAG(DAGParams{Layers: 4, Width: 4}, seed)
		if a.Hash() != b.Hash() {
			t.Fatalf("seed %d: same seed produced different DAGs", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated DAG invalid: %v", seed, err)
		}
		if seed > 1 {
			prev := GenTaskDAG(DAGParams{Layers: 4, Width: 4}, seed-1)
			if prev.Hash() == a.Hash() {
				t.Fatalf("seeds %d and %d produced identical DAGs", seed-1, seed)
			}
		}
	}
}

func TestGenTaskDAGConnected(t *testing.T) {
	// Every non-root task must have at least one parent: the layered
	// generator guarantees a parent in the previous layer.
	d := GenTaskDAG(DAGParams{Layers: 5, Width: 5}, 7)
	hasParent := make([]bool, len(d.Nodes))
	for _, e := range d.Edges {
		hasParent[e.To] = true
	}
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	// The first layer has no parents; find its width from the first
	// nodes that lack one.
	roots := 0
	for i := range d.Nodes {
		if !hasParent[i] {
			roots++
		}
	}
	if roots == len(d.Nodes) && len(d.Nodes) > 1 {
		t.Fatalf("no edges generated at all")
	}
	if len(order) != len(d.Nodes) {
		t.Fatalf("topo order has %d of %d nodes", len(order), len(d.Nodes))
	}
}

func TestTaskDAGHashIgnoresNameAndEdgeOrder(t *testing.T) {
	a := &TaskDAG{
		Name:  "alpha",
		Nodes: []TaskNode{{0, 10}, {1, 20}, {2, 30}},
		Edges: []TaskEdge{{0, 2, 5}, {0, 1, 7}},
	}
	b := &TaskDAG{
		Name:  "beta",
		Nodes: []TaskNode{{0, 10}, {1, 20}, {2, 30}},
		Edges: []TaskEdge{{0, 1, 7}, {0, 2, 5}},
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("hash should ignore name and edge order: %x vs %x", a.Hash(), b.Hash())
	}
	c := &TaskDAG{
		Nodes: []TaskNode{{0, 10}, {1, 20}, {2, 31}},
		Edges: []TaskEdge{{0, 1, 7}, {0, 2, 5}},
	}
	if a.Hash() == c.Hash() {
		t.Fatalf("hash should see the changed work weight")
	}
}

func TestTaskDAGValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		d    TaskDAG
	}{
		{"empty", TaskDAG{}},
		{"sparse ids", TaskDAG{Nodes: []TaskNode{{0, 1}, {2, 1}}}},
		{"negative work", TaskDAG{Nodes: []TaskNode{{0, -1}}}},
		{"edge out of range", TaskDAG{Nodes: []TaskNode{{0, 1}}, Edges: []TaskEdge{{0, 3, 1}}}},
		{"self loop", TaskDAG{Nodes: []TaskNode{{0, 1}}, Edges: []TaskEdge{{0, 0, 1}}}},
		{"negative volume", TaskDAG{Nodes: []TaskNode{{0, 1}, {1, 1}}, Edges: []TaskEdge{{0, 1, -1}}}},
		{"duplicate edge", TaskDAG{Nodes: []TaskNode{{0, 1}, {1, 1}}, Edges: []TaskEdge{{0, 1, 1}, {0, 1, 2}}}},
		{"cycle", TaskDAG{Nodes: []TaskNode{{0, 1}, {1, 1}}, Edges: []TaskEdge{{0, 1, 1}, {1, 0, 1}}}},
	}
	for _, tc := range cases {
		if err := tc.d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid DAG", tc.name)
		}
	}
}

func TestTaskDAGTopoOrderDeterministic(t *testing.T) {
	d := &TaskDAG{
		Nodes: []TaskNode{{0, 1}, {1, 1}, {2, 1}, {3, 1}},
		Edges: []TaskEdge{{2, 0, 1}, {3, 1, 1}},
	}
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	// After 2 is placed, 0 becomes ready and beats 3 on the min-id rule.
	want := []int{2, 0, 3, 1}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("topo order = %v, want %v (smallest ready id first)", order, want)
	}
}

func TestTaskDAGNDJSONRoundTrip(t *testing.T) {
	d := GenTaskDAG(DAGParams{Layers: 3, Width: 3}, 42)
	d.Name = "roundtrip"
	var buf bytes.Buffer
	if err := EncodeTaskDAG(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTaskDAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name {
		t.Fatalf("name = %q, want %q", got.Name, d.Name)
	}
	if got.Hash() != d.Hash() {
		t.Fatalf("round-trip changed the DAG: %x vs %x", got.Hash(), d.Hash())
	}
}

func TestDecodeTaskDAGCommentsAndErrors(t *testing.T) {
	src := strings.Join([]string{
		"# a comment",
		`{"dag":"demo"}`,
		"",
		`{"node":0,"work":100}`,
		`{"node":1,"work":200}`,
		`  {"edge":[0,1],"volume":4096}`,
	}, "\n")
	d, err := DecodeTaskDAG(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "demo" || len(d.Nodes) != 2 || len(d.Edges) != 1 {
		t.Fatalf("decoded %+v", d)
	}
	if _, err := DecodeTaskDAG(strings.NewReader(`{"bogus":1}`)); err == nil {
		t.Fatal("decoder accepted a line with no section")
	}
	if _, err := DecodeTaskDAG(strings.NewReader(`{"node":0,"work":1` + "\n")); err == nil {
		t.Fatal("decoder accepted malformed JSON")
	}
}
