package mapreduce

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/place"
	"repro/internal/topo"
)

// Figure 10 / Figure 11 models: Metis with MCTOP-PLACE policies versus
// stock Metis. Stock Metis pins worker threads to hardware contexts
// sequentially and, by default, uses every context; the MCTOP version runs
// the paper's per-workload policy with the best thread count (always fewer
// or as many threads as the default, as the paper notes).

// WorkloadName identifies one of the four evaluated Metis workloads.
type WorkloadName string

// The four workloads of Figure 10.
const (
	WLKMeans     WorkloadName = "K-Means"
	WLMean       WorkloadName = "Mean"
	WLWordCount  WorkloadName = "Word Count"
	WLMatrixMult WorkloadName = "Matrix Mult"
)

// Workloads returns the Figure 10 workloads in paper order.
func Workloads() []WorkloadName {
	return []WorkloadName{WLKMeans, WLMean, WLWordCount, WLMatrixMult}
}

// PaperPolicy returns the placement policy the paper selected for each
// workload (Figure 10's captions); Word Count uses CON_CORE on SPARC.
func PaperPolicy(wl WorkloadName, platform string) place.Policy {
	switch wl {
	case WLKMeans:
		return place.ConCoreHWC
	case WLMean:
		return place.ConHWC
	case WLWordCount:
		if platform == "SPARC" {
			return place.ConCore
		}
		return place.RRCore
	case WLMatrixMult:
		return place.ConCore
	}
	return place.Sequential
}

// Profile builds the execution-model description of a workload, scaled by
// the machine's size so predicted times stay in the seconds range.
func Profile(wl WorkloadName, t *topo.Topology) exec.Workload {
	c := int64(t.NumCores())
	switch wl {
	case WLKMeans:
		// Iterative: point-assignment compute plus a large streaming pass
		// over the (locally allocated) points each round, with centroid
		// reductions. SMT helps the load-heavy assignment loop.
		return exec.Workload{
			Name: string(WLKMeans),
			Phases: []exec.Phase{{
				Name: "assign+reduce", WorkCycles: 3e8 * c, SMTFriendly: 0.68,
				Bytes: 1.5e8 * c, Data: exec.DataLocal, SyncOps: 30_000,
			}},
			Iterations: 8,
		}
	case WLMean:
		// Streaming aggregation of a matrix that lives on node 0:
		// bandwidth-bound on the data's home node.
		return exec.Workload{
			Name: string(WLMean),
			Phases: []exec.Phase{{
				Name: "scan", WorkCycles: 3e7 * c, SMTFriendly: 0.7,
				Bytes: 3e8 * c, Data: 0, SyncOps: 64,
			}},
		}
	case WLWordCount:
		// Heavy memory allocation and synchronization (the paper's own
		// analysis). On the x86 machines the intermediate traffic
		// dominates, so spreading for aggregate bandwidth pays; on the
		// 256-context SPARC the allocator and hash-bucket synchronization
		// is the bottleneck ("benefits from intra-socket locality") — the
		// measured behaviour Figure 10's footnote reports.
		syncOps := int64(30_000)
		bytes := int64(1.5e8) * c
		if t.NumHWContexts() >= 128 {
			syncOps = 600_000
			bytes = 2e7 * c
		}
		return exec.Workload{
			Name: string(WLWordCount),
			Phases: []exec.Phase{{
				Name: "map+reduce", WorkCycles: 3e7 * c, SMTFriendly: 0.5,
				Bytes: bytes, Data: exec.DataLocal, SyncOps: syncOps,
				SerialCycles: 4e8,
			}},
		}
	case WLMatrixMult:
		// Cache-blocked compute kernel: on 2-way Intel/AMD SMT the sibling
		// thrashes the blocked working set; the SPARC T4's barrel cores
		// are designed for many threads and still profit from them.
		smt := -0.15
		if t.SMTWays() >= 4 {
			smt = 0.3
		}
		return exec.Workload{
			Name: string(WLMatrixMult),
			Phases: []exec.Phase{{
				Name: "multiply", WorkCycles: 1.5e9 * c, SMTFriendly: smt,
				Bytes: 1e6 * c, Data: exec.DataLocal, SyncOps: 16,
			}},
		}
	}
	return exec.Workload{}
}

// Fig10Row is one bar pair of Figure 10.
type Fig10Row struct {
	Workload WorkloadName
	Platform string
	Policy   place.Policy
	// Threads chosen for the MCTOP version vs the stock default.
	Threads, DefaultThreads int
	// RelTime and RelEnergy are MCTOP/stock; lower is better. RelEnergy is
	// 0 on platforms without power measurements.
	RelTime   float64
	RelEnergy float64
}

// threadCandidates is the sweep both Metis versions could use; stock Metis'
// default is all contexts.
func threadCandidates(t *topo.Topology) []int {
	c := t.NumCores()
	n := t.NumHWContexts()
	perSocket := c / t.NumSockets()
	set := map[int]bool{}
	var out []int
	for _, v := range []int{perSocket, c / 2, c, c + c/2, n} {
		if v >= 1 && v <= n && !set[v] {
			set[v] = true
			out = append(out, v)
		}
	}
	return out
}

// ModelFig10 predicts the four Figure 10 bars for one platform.
func ModelFig10(t *topo.Topology) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, wl := range Workloads() {
		row, err := modelWorkload(t, wl)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func modelWorkload(t *topo.Topology, wl WorkloadName) (Fig10Row, error) {
	prof := Profile(wl, t)
	policy := PaperPolicy(wl, t.Name())

	// Stock Metis: sequential pinning, all hardware contexts.
	base, err := estimateWith(t, place.Sequential, t.NumHWContexts(), prof)
	if err != nil {
		return Fig10Row{}, err
	}

	// MCTOP Metis: the paper's policy, best thread count from the sweep.
	var best exec.Report
	bestThreads := 0
	for _, n := range threadCandidates(t) {
		r, err := estimateWith(t, policy, n, prof)
		if err != nil {
			return Fig10Row{}, err
		}
		if bestThreads == 0 || r.Cycles < best.Cycles {
			best = r
			bestThreads = n
		}
	}

	row := Fig10Row{
		Workload: wl, Platform: t.Name(), Policy: policy,
		Threads: bestThreads, DefaultThreads: t.NumHWContexts(),
		RelTime: float64(best.Cycles) / float64(base.Cycles),
	}
	if base.EnergyJ > 0 {
		row.RelEnergy = best.EnergyJ / base.EnergyJ
	}
	return row, nil
}

func sameCtxSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[int]bool{}
	for _, c := range a {
		set[c] = true
	}
	for _, c := range b {
		if !set[c] {
			return false
		}
	}
	return true
}

func estimateWith(t *topo.Topology, policy place.Policy, threads int, wl exec.Workload) (exec.Report, error) {
	pl, err := place.New(t, policy, place.Options{NThreads: threads})
	if err != nil {
		return exec.Report{}, err
	}
	return exec.Estimate(t, pl.Contexts(), wl)
}

// Fig11Row is one line of Figure 11: the energy-oriented POWER placement
// relative to the performance-oriented one on Ivy.
type Fig11Row struct {
	Workload WorkloadName
	// RelTime, RelEnergy: POWER placement / performance placement.
	RelTime   float64
	RelEnergy float64
	// EnergyEfficiency is 1/(RelTime*RelEnergy) — the paper's metric;
	// > 1 means the trade pays off.
	EnergyEfficiency float64
}

// ModelFig11 compares the POWER policy against the performance-oriented
// policy for K-Means and Mean (the paper's Figure 11, Ivy only — requires
// power measurements).
func ModelFig11(t *topo.Topology) ([]Fig11Row, error) {
	if !t.Power().Available() {
		return nil, fmt.Errorf("mapreduce: %s has no power measurements", t.Name())
	}
	var rows []Fig11Row
	for _, wl := range []WorkloadName{WLKMeans, WLMean} {
		prof := Profile(wl, t)
		policy := PaperPolicy(wl, t.Name())
		// Performance-oriented: best thread count under the paper policy.
		var perf exec.Report
		perfThreads := 0
		for _, n := range threadCandidates(t) {
			r, err := estimateWith(t, policy, n, prof)
			if err != nil {
				return nil, err
			}
			if perfThreads == 0 || r.Cycles < perf.Cycles {
				perf = r
				perfThreads = n
			}
		}
		// Energy-oriented: the POWER policy at the performance thread
		// count ("using fewer physical cores", Figure 11). When the two
		// policies happen to produce the very same contexts, step the
		// thread count down until the placements actually differ.
		powerThreads := perfThreads
		var power exec.Report
		for {
			perfPl, err := place.New(t, policy, place.Options{NThreads: perfThreads})
			if err != nil {
				return nil, err
			}
			powerPl, err := place.New(t, place.PowerPolicy, place.Options{NThreads: powerThreads})
			if err != nil {
				return nil, err
			}
			if powerThreads > 1 && sameCtxSet(perfPl.Contexts(), powerPl.Contexts()) {
				powerThreads = powerThreads * 3 / 4
				if powerThreads < 1 {
					powerThreads = 1
				}
				continue
			}
			power, err = exec.Estimate(t, powerPl.Contexts(), prof)
			if err != nil {
				return nil, err
			}
			break
		}
		row := Fig11Row{
			Workload: wl,
			RelTime:  float64(power.Cycles) / float64(perf.Cycles),
		}
		if perf.EnergyJ > 0 {
			row.RelEnergy = power.EnergyJ / perf.EnergyJ
		}
		if row.RelTime > 0 && row.RelEnergy > 0 {
			row.EnergyEfficiency = 1 / (row.RelTime * row.RelEnergy)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
