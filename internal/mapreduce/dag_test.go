package mapreduce

import (
	"testing"

	"repro/internal/sim"
)

func TestExportDAGShape(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	d, err := ExportDAG(WLWordCount, tp, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 12 || len(d.Edges) != 32 {
		t.Fatalf("got %d nodes, %d edges; want 12 nodes, 32 edges", len(d.Nodes), len(d.Edges))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic: exporting twice yields the same canonical hash.
	d2, err := ExportDAG(WLWordCount, tp, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Hash() != d2.Hash() {
		t.Fatal("ExportDAG is not deterministic")
	}
	// Every shuffle edge carries traffic.
	for _, e := range d.Edges {
		if e.Volume < 1 {
			t.Fatalf("edge %d->%d has volume %d", e.From, e.To, e.Volume)
		}
	}
}

func TestExportDAGErrors(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	if _, err := ExportDAG(WLWordCount, tp, 0, 4); err == nil {
		t.Error("accepted zero map tasks")
	}
	if _, err := ExportDAG(WorkloadName("bogus"), tp, 4, 2); err == nil {
		t.Error("accepted an unknown workload")
	}
}
