package mapreduce

import (
	"math"
	"strings"

	"repro/internal/place"
)

// The four Metis workloads the paper evaluates in Figure 10: K-Means,
// Mean, Word Count and Matrix Multiply — real implementations over the
// MapReduce engine.

// WordCount counts word occurrences across text chunks.
func WordCount(chunks []string, workers int, pl placementArg) (map[string]int, error) {
	res, err := Run(Job[string, string, int, int]{
		Inputs: chunks,
		Map: func(chunk string, emit func(string, int)) {
			for _, w := range strings.Fields(chunk) {
				w = strings.ToLower(strings.Trim(w, ".,;:!?\"'()"))
				if w != "" {
					emit(w, 1)
				}
			}
		},
		Reduce: func(_ string, vs []int) int {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			return sum
		},
		Workers:   workers,
		Placement: pl,
	})
	if err != nil {
		return nil, err
	}
	return res.Out, nil
}

// Point is a 2-D sample for K-Means.
type Point struct{ X, Y float64 }

type kmAccum struct {
	sx, sy float64
	n      int
}

// KMeans clusters points around k centroids, iterating MapReduce rounds
// until assignment stabilizes or maxIters passes. Returns the centroids.
func KMeans(points []Point, k, maxIters, workers int, pl placementArg) ([]Point, int, error) {
	if k < 1 {
		k = 1
	}
	centroids := make([]Point, k)
	copy(centroids, points) // deterministic init: first k points
	split := splitPoints(points, workers*4)

	iters := 0
	for ; iters < maxIters; iters++ {
		cs := centroids
		res, err := Run(Job[[]Point, int, kmAccum, kmAccum]{
			Inputs: split,
			Map: func(ps []Point, emit func(int, kmAccum)) {
				// Local combining: one accumulator per centroid per split.
				acc := make([]kmAccum, len(cs))
				for _, p := range ps {
					best, bestD := 0, math.MaxFloat64
					for ci, c := range cs {
						d := (p.X-c.X)*(p.X-c.X) + (p.Y-c.Y)*(p.Y-c.Y)
						if d < bestD {
							best, bestD = ci, d
						}
					}
					acc[best].sx += p.X
					acc[best].sy += p.Y
					acc[best].n++
				}
				for ci, a := range acc {
					if a.n > 0 {
						emit(ci, a)
					}
				}
			},
			Reduce: func(_ int, vs []kmAccum) kmAccum {
				var t kmAccum
				for _, v := range vs {
					t.sx += v.sx
					t.sy += v.sy
					t.n += v.n
				}
				return t
			},
			Workers:   workers,
			Placement: pl,
		})
		if err != nil {
			return nil, iters, err
		}
		next := make([]Point, k)
		copy(next, centroids)
		moved := 0.0
		for ci, a := range res.Out {
			if a.n == 0 {
				continue
			}
			nc := Point{a.sx / float64(a.n), a.sy / float64(a.n)}
			moved += math.Abs(nc.X-centroids[ci].X) + math.Abs(nc.Y-centroids[ci].Y)
			next[ci] = nc
		}
		centroids = next
		if moved < 1e-9 {
			iters++
			break
		}
	}
	return centroids, iters, nil
}

// Mean computes per-column means of a row-major matrix.
func Mean(rows [][]float64, workers int, pl placementArg) ([]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	cols := len(rows[0])
	type acc struct {
		sum float64
		n   int
	}
	res, err := Run(Job[[][]float64, int, acc, acc]{
		Inputs: splitRows(rows, workers*4),
		Map: func(part [][]float64, emit func(int, acc)) {
			sums := make([]acc, cols)
			for _, row := range part {
				for c, v := range row {
					sums[c].sum += v
					sums[c].n++
				}
			}
			for c, a := range sums {
				if a.n > 0 {
					emit(c, a)
				}
			}
		},
		Reduce: func(_ int, vs []acc) acc {
			var t acc
			for _, v := range vs {
				t.sum += v.sum
				t.n += v.n
			}
			return t
		},
		Workers:   workers,
		Placement: pl,
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, cols)
	for c, a := range res.Out {
		if a.n > 0 {
			out[c] = a.sum / float64(a.n)
		}
	}
	return out, nil
}

// MatrixMult multiplies square row-major matrices (C = A x B) with map
// tasks over row blocks; Reduce stitches the blocks.
func MatrixMult(a, b [][]float64, workers int, pl placementArg) ([][]float64, error) {
	n := len(a)
	type rowBlock struct {
		lo, hi int
	}
	var blocks []rowBlock
	blockRows := n/(workers*2) + 1
	for lo := 0; lo < n; lo += blockRows {
		hi := lo + blockRows
		if hi > n {
			hi = n
		}
		blocks = append(blocks, rowBlock{lo, hi})
	}
	type rowsOut struct {
		lo   int
		rows [][]float64
	}
	res, err := Run(Job[rowBlock, int, rowsOut, rowsOut]{
		Inputs: blocks,
		Map: func(bl rowBlock, emit func(int, rowsOut)) {
			out := make([][]float64, bl.hi-bl.lo)
			for i := bl.lo; i < bl.hi; i++ {
				row := make([]float64, n)
				for k := 0; k < n; k++ {
					aik := a[i][k]
					if aik == 0 {
						continue
					}
					bk := b[k]
					for j := 0; j < n; j++ {
						row[j] += aik * bk[j]
					}
				}
				out[i-bl.lo] = row
			}
			emit(bl.lo, rowsOut{bl.lo, out})
		},
		Reduce:    func(_ int, vs []rowsOut) rowsOut { return vs[0] },
		Workers:   workers,
		Placement: pl,
	})
	if err != nil {
		return nil, err
	}
	c := make([][]float64, n)
	for _, blk := range res.Out {
		copy(c[blk.lo:], blk.rows)
	}
	return c, nil
}

// placementArg keeps workload signatures readable.
type placementArg = *place.Placement

func splitPoints(points []Point, parts int) [][]Point {
	if parts < 1 {
		parts = 1
	}
	var out [][]Point
	for i := 0; i < parts; i++ {
		lo := i * len(points) / parts
		hi := (i + 1) * len(points) / parts
		if lo < hi {
			out = append(out, points[lo:hi])
		}
	}
	return out
}

func splitRows(rows [][]float64, parts int) [][][]float64 {
	if parts < 1 {
		parts = 1
	}
	var out [][][]float64
	for i := 0; i < parts; i++ {
		lo := i * len(rows) / parts
		hi := (i + 1) * len(rows) / parts
		if lo < hi {
			out = append(out, rows[lo:hi])
		}
	}
	return out
}
