// Package mapreduce is a Metis-style in-memory MapReduce library for
// multi-cores (Section 7.3 of the MCTOP paper).
//
// Like Metis, it runs map tasks over input splits on a fixed pool of
// worker threads, partitions intermediate pairs by key hash, and reduces
// each partition independently. Unlike stock Metis — which pins workers to
// hardware contexts sequentially — the pool takes an MCTOP-PLACE placement,
// so any of the 12 policies of Table 2 drives where workers run; this is
// exactly the modification the paper evaluates in Figure 10.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/place"
)

// Job describes a MapReduce computation. In is the input-split type, K/V
// the intermediate key/value types, R the per-key result type.
type Job[In any, K comparable, V any, R any] struct {
	// Inputs are the map tasks.
	Inputs []In
	// Map processes one split, emitting intermediate pairs.
	Map func(in In, emit func(K, V))
	// Reduce folds all values of one key.
	Reduce func(key K, values []V) R
	// Workers is the pool size (default: placement capacity, or NumCPU-ish
	// 4 without a placement).
	Workers int
	// Placement optionally pins the pool with an MCTOP-PLACE policy; nil
	// reproduces stock Metis' behaviour of taking threads as they come.
	Placement *place.Placement
	// Partition overrides the key partitioner (default: FNV of the key's
	// string form).
	Partition func(K) uint64
}

// Result carries the reduced output and pool statistics.
type Result[K comparable, R any] struct {
	Out map[K]R
	// WorkerCtxs records which hardware context each worker was pinned to
	// (-1 = unpinned).
	WorkerCtxs []int
}

// Run executes the job. It is deterministic for deterministic Map/Reduce
// functions: the output is key-complete regardless of worker count.
func Run[In any, K comparable, V any, R any](job Job[In, K, V, R]) (Result[K, R], error) {
	if job.Map == nil || job.Reduce == nil {
		return Result[K, R]{}, fmt.Errorf("mapreduce: Map and Reduce are required")
	}
	workers := job.Workers
	if workers <= 0 {
		if job.Placement != nil {
			workers = job.Placement.NThreads()
		} else {
			workers = 4
		}
	}
	if workers < 1 {
		workers = 1
	}
	part := job.Partition
	if part == nil {
		part = func(k K) uint64 {
			h := fnv.New64a()
			fmt.Fprintf(h, "%v", k)
			return h.Sum64()
		}
	}

	res := Result[K, R]{WorkerCtxs: make([]int, workers)}

	// Pin workers through the placement.
	for w := 0; w < workers; w++ {
		res.WorkerCtxs[w] = -1
		if job.Placement != nil {
			if ctx, ok := job.Placement.PinNext(); ok {
				res.WorkerCtxs[w] = ctx
			}
		}
	}
	defer func() {
		if job.Placement != nil {
			for _, c := range res.WorkerCtxs {
				if c >= 0 {
					job.Placement.Unpin(c)
				}
			}
		}
	}()

	// Map phase: workers pull splits; each keeps per-partition buffers.
	type kv struct {
		k K
		v V
	}
	buffers := make([][][]kv, workers) // [worker][partition][]kv
	for w := range buffers {
		buffers[w] = make([][]kv, workers)
	}
	tasks := make(chan int, len(job.Inputs))
	for i := range job.Inputs {
		tasks <- i
	}
	close(tasks)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			emit := func(k K, v V) {
				p := int(part(k) % uint64(workers))
				buffers[w][p] = append(buffers[w][p], kv{k, v})
			}
			for i := range tasks {
				job.Map(job.Inputs[i], emit)
			}
		}(w)
	}
	wg.Wait()

	// Reduce phase: worker p owns partition p across all map buffers.
	shards := make([]map[K]R, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			grouped := make(map[K][]V)
			for w := 0; w < workers; w++ {
				for _, e := range buffers[w][p] {
					grouped[e.k] = append(grouped[e.k], e.v)
				}
			}
			shard := make(map[K]R, len(grouped))
			for k, vs := range grouped {
				shard[k] = job.Reduce(k, vs)
			}
			shards[p] = shard
		}(w)
	}
	wg.Wait()

	// Merge shards (disjoint by construction).
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	res.Out = make(map[K]R, total)
	for _, s := range shards {
		for k, r := range s {
			res.Out[k] = r
		}
	}
	return res, nil
}

// SortedKeys returns a result's keys in sorted string order (test helper).
func SortedKeys[K comparable, R any](m map[K]R) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, fmt.Sprintf("%v", k))
	}
	sort.Strings(out)
	return out
}
