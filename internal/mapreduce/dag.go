package mapreduce

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/topo"
)

// ExportDAG models a Metis job as a task DAG for the taskmap engine: nMap
// map tasks shuffling all-to-all into nReduce reduce tasks. Compute
// weights come from the workload's execution profile (map tasks split the
// bulk of the phase work, reduce tasks the remainder), and every shuffle
// edge carries an equal share of the phase's memory traffic — so the
// exported DAG is communication-bound exactly when the workload is, which
// is what makes topology-aware mapping beat latency-only placement on it.
func ExportDAG(wl WorkloadName, t *topo.Topology, nMap, nReduce int) (*graph.TaskDAG, error) {
	if nMap < 1 || nReduce < 1 {
		return nil, fmt.Errorf("mapreduce: need at least one map and one reduce task (got %d, %d)", nMap, nReduce)
	}
	prof := Profile(wl, t)
	if len(prof.Phases) == 0 {
		return nil, fmt.Errorf("mapreduce: unknown workload %q", wl)
	}
	ph := prof.Phases[0]
	// 70/30 work split between the map and reduce sides, the usual Metis
	// shape (map parses and hashes; reduce merges buckets).
	mapWork := ph.WorkCycles * 7 / 10 / int64(nMap)
	redWork := ph.WorkCycles * 3 / 10 / int64(nReduce)
	if mapWork < 1 {
		mapWork = 1
	}
	if redWork < 1 {
		redWork = 1
	}
	shuffle := ph.Bytes / int64(nMap) / int64(nReduce)
	if shuffle < 1 {
		shuffle = 1
	}
	d := &graph.TaskDAG{Name: fmt.Sprintf("%s-%dx%d", prof.Name, nMap, nReduce)}
	for i := 0; i < nMap; i++ {
		d.Nodes = append(d.Nodes, graph.TaskNode{ID: i, Work: mapWork})
	}
	for j := 0; j < nReduce; j++ {
		d.Nodes = append(d.Nodes, graph.TaskNode{ID: nMap + j, Work: redWork})
	}
	for i := 0; i < nMap; i++ {
		for j := 0; j < nReduce; j++ {
			d.Edges = append(d.Edges, graph.TaskEdge{From: i, To: nMap + j, Volume: shuffle})
		}
	}
	d.Normalize()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
