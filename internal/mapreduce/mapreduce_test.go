package mapreduce

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	topoMu    sync.Mutex
	topoCache = map[string]*topo.Topology{}
)

func enriched(t *testing.T, p *sim.Platform) *topo.Topology {
	t.Helper()
	topoMu.Lock()
	defer topoMu.Unlock()
	if tp, ok := topoCache[p.Name]; ok {
		return tp
	}
	m, err := machine.NewSim(p, 33)
	if err != nil {
		t.Fatal(err)
	}
	o := mctopalg.DefaultOptions()
	o.Reps = 51
	res, err := mctopalg.Infer(m, o)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := plugins.Enrich(m, res.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	topoCache[p.Name] = tp
	return tp
}

func TestWordCount(t *testing.T) {
	text := "the quick brown fox jumps over the lazy dog The END. the?"
	chunks := []string{text, "fox fox", ""}
	counts, err := WordCount(chunks, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts["the"] != 4 {
		t.Errorf("the = %d, want 4", counts["the"])
	}
	if counts["fox"] != 3 {
		t.Errorf("fox = %d, want 3", counts["fox"])
	}
	if counts["end"] != 1 {
		t.Errorf("end = %d, want 1 (trimmed, lowered)", counts["end"])
	}
}

func TestWordCountWorkerInvariance(t *testing.T) {
	var sb strings.Builder
	rng := rand.New(rand.NewSource(5))
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 5000; i++ {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	var chunks []string
	s := sb.String()
	for i := 0; i < len(s); i += 1000 {
		end := i + 1000
		if end > len(s) {
			end = len(s)
		}
		// Split on word boundary to keep words intact.
		for end < len(s) && s[end-1] != ' ' {
			end++
		}
		chunks = append(chunks, s[i:end])
		i = end - 1000
	}
	ref, _ := WordCount([]string{s}, 1, nil)
	for _, w := range []int{2, 5, 16} {
		got, err := WordCount([]string{s}, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%d workers: %d keys vs %d", w, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("%d workers: %s = %d, want %d", w, k, got[k], v)
			}
		}
	}
}

func TestKMeansConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var points []Point
	centers := []Point{{0, 0}, {10, 10}, {-10, 5}}
	for i := 0; i < 3000; i++ {
		c := centers[i%3]
		points = append(points, Point{c.X + rng.Float64() - 0.5, c.Y + rng.Float64() - 0.5})
	}
	got, iters, err := KMeans(points, 3, 50, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iters >= 50 {
		t.Errorf("did not converge in %d iterations", iters)
	}
	// Every true center must have a centroid within 1.0.
	for _, c := range centers {
		found := false
		for _, g := range got {
			if math.Hypot(g.X-c.X, g.Y-c.Y) < 1.0 {
				found = true
			}
		}
		if !found {
			t.Errorf("no centroid near %v: %v", c, got)
		}
	}
}

func TestMean(t *testing.T) {
	rows := [][]float64{
		{1, 10},
		{2, 20},
		{3, 30},
		{4, 40},
	}
	means, err := Mean(rows, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(means[0]-2.5) > 1e-12 || math.Abs(means[1]-25) > 1e-12 {
		t.Errorf("means = %v, want [2.5 25]", means)
	}
	if m, err := Mean(nil, 2, nil); err != nil || m != nil {
		t.Errorf("empty input: %v, %v", m, err)
	}
}

func TestMatrixMult(t *testing.T) {
	n := 17
	rng := rand.New(rand.NewSource(11))
	a := make([][]float64, n)
	b := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		b[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = rng.Float64()
			b[i][j] = rng.Float64()
		}
	}
	got, err := MatrixMult(a, b, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += a[i][k] * b[k][j]
			}
			if math.Abs(got[i][j]-want) > 1e-9 {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, got[i][j], want)
			}
		}
	}
}

func TestRunWithPlacement(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	pl, err := place.New(tp, place.ConCoreHWC, place.Options{NThreads: 6})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := WordCount([]string{"a b a", "b a"}, 0, pl)
	if err != nil {
		t.Fatal(err)
	}
	if counts["a"] != 3 || counts["b"] != 2 {
		t.Errorf("counts = %v", counts)
	}
	// All placement slots must be released again.
	for i := 0; i < 6; i++ {
		if _, ok := pl.PinNext(); !ok {
			t.Fatal("placement slot leaked")
		}
	}
}

func TestRunValidation(t *testing.T) {
	_, err := Run(Job[int, int, int, int]{Inputs: []int{1}})
	if err == nil {
		t.Error("missing Map/Reduce should fail")
	}
}

// TestFig10Shape: the MCTOP-placed Metis must beat the stock sequential
// all-context default on every platform and workload; energy must improve
// on the Intel machines (the paper: 17% faster on average, 14% less
// energy on Intel).
func TestFig10Shape(t *testing.T) {
	var rel []float64
	for _, p := range sim.Platforms() {
		tp := enriched(t, p)
		rows, err := ModelFig10(tp)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("%s: %d rows", p.Name, len(rows))
		}
		for _, r := range rows {
			if r.RelTime >= 1.02 {
				t.Errorf("%s/%s: rel time %.3f, want <= ~1", r.Platform, r.Workload, r.RelTime)
			}
			if r.Threads > r.DefaultThreads {
				t.Errorf("%s/%s: MCTOP uses more threads (%d) than default (%d)",
					r.Platform, r.Workload, r.Threads, r.DefaultThreads)
			}
			if tp.Power().Available() && (r.RelEnergy <= 0 || r.RelEnergy >= 1.1) {
				t.Errorf("%s/%s: rel energy %.3f", r.Platform, r.Workload, r.RelEnergy)
			}
			rel = append(rel, r.RelTime)
		}
	}
	var sum float64
	for _, r := range rel {
		sum += r
	}
	avg := sum / float64(len(rel))
	// Paper: 17% average improvement (rel time ~0.83). Our model is more
	// conservative — stock Metis' sequential all-context pinning is close
	// to optimal for several workload/platform pairs — so accept any
	// clearly-positive average gain (see EXPERIMENTS.md for the numbers).
	if avg > 0.97 || avg < 0.55 {
		t.Errorf("average rel time = %.3f, want < 0.97 (paper: 0.83)", avg)
	}
}

// TestWordCountSPARCPolicy: the paper's cross-platform exception — Word
// Count on SPARC is best with intra-socket locality (CON_CORE), not RR.
func TestWordCountSPARCPolicy(t *testing.T) {
	tp := enriched(t, sim.SPARC())
	prof := Profile(WLWordCount, tp)
	conCore, err := estimateWith(tp, place.ConCore, tp.NumCores()/4, prof)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := estimateWith(tp, place.RRCore, tp.NumCores()/4, prof)
	if err != nil {
		t.Fatal(err)
	}
	if conCore.Cycles >= rr.Cycles {
		t.Errorf("SPARC WordCount: CON_CORE %d >= RR %d cycles", conCore.Cycles, rr.Cycles)
	}
	// And on Ivy the preference flips to RR.
	ivy := enriched(t, sim.Ivy())
	profI := Profile(WLWordCount, ivy)
	conCoreI, _ := estimateWith(ivy, place.ConCore, ivy.NumCores()/2, profI)
	rrI, _ := estimateWith(ivy, place.RRCore, ivy.NumCores()/2, profI)
	if rrI.Cycles > conCoreI.Cycles {
		t.Errorf("Ivy WordCount: RR %d > CON_CORE %d cycles", rrI.Cycles, conCoreI.Cycles)
	}
}

// TestFig11Shape: the POWER trade on Ivy — slower, less energy, better
// energy efficiency (paper: K-Means 1.186/0.774/1.089).
func TestFig11Shape(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	rows, err := ModelFig11(tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.RelTime < 0.999 {
			t.Errorf("%s: POWER should not be faster, rel = %.3f", r.Workload, r.RelTime)
		}
		if r.RelEnergy >= 1.0 || r.RelEnergy <= 0 {
			t.Errorf("%s: POWER should save energy, rel = %.3f", r.Workload, r.RelEnergy)
		}
		if r.EnergyEfficiency <= 1.0 {
			t.Errorf("%s: energy efficiency %.3f, want > 1", r.Workload, r.EnergyEfficiency)
		}
	}
	// Not available off-Intel.
	if _, err := ModelFig11(enriched(t, sim.SPARC())); err == nil {
		t.Error("Fig 11 on SPARC should fail (no power)")
	}
}
