package trace

// Exposition and its strict inverse. The daemon serves the ring as JSON
// ({"traces":[...]}) or NDJSON (one trace per line); the parsers reject
// unknown fields, malformed IDs and dangling parents so tests that assert
// on /v1/debug/traces fail loudly on drift, the same bargain
// metrics.ParseText strikes for the Prometheus exposition.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes traces as a single JSON document: {"traces":[...]}.
func WriteJSON(w io.Writer, traces []TraceData) error {
	if traces == nil {
		traces = []TraceData{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Traces []TraceData `json:"traces"`
	}{traces})
}

// WriteNDJSON writes one trace per line.
func WriteNDJSON(w io.Writer, traces []TraceData) error {
	enc := json.NewEncoder(w)
	for i := range traces {
		if err := enc.Encode(&traces[i]); err != nil {
			return err
		}
	}
	return nil
}

// ParseJSON strictly parses WriteJSON output.
func ParseJSON(r io.Reader) ([]TraceData, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc struct {
		Traces []TraceData `json:"traces"`
	}
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trace: parse: trailing data after document")
	}
	for i := range doc.Traces {
		if err := validateTrace(&doc.Traces[i]); err != nil {
			return nil, fmt.Errorf("trace: parse: trace %d: %w", i, err)
		}
	}
	return doc.Traces, nil
}

// ParseNDJSON strictly parses WriteNDJSON output.
func ParseNDJSON(r io.Reader) ([]TraceData, error) {
	var out []TraceData
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var td TraceData
		if err := dec.Decode(&td); err != nil {
			return nil, fmt.Errorf("trace: parse: line %d: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("trace: parse: line %d: trailing data", line)
		}
		if err := validateTrace(&td); err != nil {
			return nil, fmt.Errorf("trace: parse: line %d: %w", line, err)
		}
		out = append(out, td)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	return out, nil
}

// validateTrace enforces the structural invariants the tracer guarantees:
// well-formed non-zero IDs, every span on the trace's ID, the local root
// first, non-negative durations, and no dangling in-trace parents — a
// non-root span's parent must be another span of the trace; only the root
// may reference a remote parent, and then only when marked remote.
func validateTrace(td *TraceData) error {
	var tid TraceID
	if !decodeLowerHex(tid[:], td.TraceID) || tid.IsZero() {
		return fmt.Errorf("bad trace ID %q", td.TraceID)
	}
	if len(td.Spans) == 0 {
		return fmt.Errorf("trace %s has no spans", td.TraceID)
	}
	if td.Dropped < 0 {
		return fmt.Errorf("trace %s: negative droppedSpans", td.TraceID)
	}
	ids := make(map[string]bool, len(td.Spans))
	for i := range td.Spans {
		sp := &td.Spans[i]
		var sid SpanID
		if !decodeLowerHex(sid[:], sp.SpanID) || sid.IsZero() {
			return fmt.Errorf("span %d: bad span ID %q", i, sp.SpanID)
		}
		if ids[sp.SpanID] {
			return fmt.Errorf("span %d: duplicate span ID %s", i, sp.SpanID)
		}
		ids[sp.SpanID] = true
		if sp.TraceID != td.TraceID {
			return fmt.Errorf("span %d: trace ID %q != %q", i, sp.TraceID, td.TraceID)
		}
		if sp.Name == "" {
			return fmt.Errorf("span %d: empty name", i)
		}
		if sp.Duration < 0 {
			return fmt.Errorf("span %d: negative duration", i)
		}
		if sp.Parent != "" {
			var pid SpanID
			if !decodeLowerHex(pid[:], sp.Parent) || pid.IsZero() {
				return fmt.Errorf("span %d: bad parent ID %q", i, sp.Parent)
			}
		}
		for _, a := range sp.Attrs {
			if a.Key == "" {
				return fmt.Errorf("span %d: attr with empty key", i)
			}
		}
		for _, e := range sp.Events {
			if e.Name == "" {
				return fmt.Errorf("span %d: event with empty name", i)
			}
		}
	}
	root := &td.Spans[0]
	if root.Parent != "" && !root.Remote {
		return fmt.Errorf("root span %s has parent %s but is not marked remote", root.SpanID, root.Parent)
	}
	for i := 1; i < len(td.Spans); i++ {
		sp := &td.Spans[i]
		if sp.Parent == "" {
			return fmt.Errorf("span %d (%s) is not the root but has no parent", i, sp.Name)
		}
		if !ids[sp.Parent] {
			return fmt.Errorf("span %d (%s): dangling parent %s", i, sp.Name, sp.Parent)
		}
	}
	return nil
}
