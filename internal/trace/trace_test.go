package trace

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDeterministicIDs(t *testing.T) {
	mk := func() (string, string, string) {
		tr := New(WithSampleRate(1), WithSeed(42))
		_, root := tr.StartRoot(context.Background(), "root", "")
		return root.TraceIDString(), root.SpanIDString(), tr.RequestID()
	}
	t1, s1, r1 := mk()
	t2, s2, r2 := mk()
	if t1 != t2 || s1 != s2 || r1 != r2 {
		t.Fatalf("same seed produced different IDs: %s/%s/%s vs %s/%s/%s", t1, s1, r1, t2, s2, r2)
	}
	tr := New(WithSampleRate(1), WithSeed(43))
	_, root := tr.StartRoot(context.Background(), "root", "")
	if root.TraceIDString() == t1 {
		t.Fatal("different seeds produced the same trace ID")
	}
	if len(t1) != 32 || len(s1) != 16 || len(r1) != 16 {
		t.Fatalf("bad ID lengths: %d/%d/%d", len(t1), len(s1), len(r1))
	}
}

func TestDisabledTracerCreatesNoSpans(t *testing.T) {
	tr := New(WithSampleRate(0), WithSeed(1))
	ctx, root := tr.StartRoot(context.Background(), "root", "")
	if root != nil {
		t.Fatal("disabled tracer returned a span")
	}
	if _, child := Start(ctx, "child"); child != nil {
		t.Fatal("child span created without a parent")
	}
	// Everything is nil-safe.
	root.SetAttr("k", "v")
	root.SetInt("n", 1)
	root.AddEvent("e")
	root.SetStatus("boom")
	root.End()
	if st := tr.Stats(); st.Started != 0 || st.Ended != 0 || st.Kept != 0 {
		t.Fatalf("disabled tracer has stats %+v", st)
	}
	if id := tr.RequestID(); len(id) != 16 {
		t.Fatalf("disabled tracer RequestID = %q", id)
	}
}

func TestSampledTraceReachesRing(t *testing.T) {
	tr := New(WithSampleRate(1), WithSeed(7))
	ctx, root := tr.StartRoot(context.Background(), "http /v1/topology", "")
	root.SetAttr("route", "/v1/topology")
	ctx2, child := Start(ctx, "registry.lookup")
	child.SetAttr("tier", "lru")
	child.AddEvent("singleflight.owner")
	if _, grand := Start(ctx2, "registry.infer"); grand != nil {
		grand.SetInt("pairs", 120)
		grand.End()
	}
	child.End()
	root.End()

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(traces))
	}
	td := traces[0]
	if len(td.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(td.Spans))
	}
	if td.Spans[0].Name != "http /v1/topology" {
		t.Fatalf("root span is %q", td.Spans[0].Name)
	}
	if td.Spans[0].Parent != "" {
		t.Fatalf("fresh root has parent %q", td.Spans[0].Parent)
	}
	for _, sp := range td.Spans[1:] {
		if sp.Parent == "" {
			t.Fatalf("span %q has no parent", sp.Name)
		}
	}
	if st := tr.Stats(); st.Started != 3 || st.Ended != 3 || st.Kept != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// unsampledTracer returns a tracer whose head decision for the next root is
// false: an enabled rate so small the seeded stream never clears it.
func unsampledTracer(opts ...Option) *Tracer {
	return New(append([]Option{WithSampleRate(1e-12), WithSeed(5)}, opts...)...)
}

func TestErrorKeepsUnsampledTrace(t *testing.T) {
	tr := unsampledTracer()
	// A clean unsampled trace is dropped...
	ctx, root := tr.StartRoot(context.Background(), "ok", "")
	_, child := Start(ctx, "child")
	child.End()
	root.End()
	if n := len(tr.Snapshot()); n != 0 {
		t.Fatalf("clean unsampled trace was kept (%d in ring)", n)
	}
	// ...but any errored span forces a keep, even a child's error.
	ctx, root = tr.StartRoot(context.Background(), "bad", "")
	_, child = Start(ctx, "child")
	child.SetStatus("torn write")
	child.End()
	root.End()
	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("errored trace not kept (%d in ring)", len(traces))
	}
	if traces[0].Spans[1].Error != "torn write" {
		t.Fatalf("child error lost: %+v", traces[0].Spans[1])
	}
}

func TestSlowThresholdKeepsUnsampledTrace(t *testing.T) {
	now := time.Unix(100, 0)
	clock := func() time.Time { return now }
	tr := unsampledTracer(WithSlowThreshold(50*time.Millisecond), WithClock(clock))
	_, root := tr.StartRoot(context.Background(), "fast", "")
	now = now.Add(10 * time.Millisecond)
	root.End()
	if n := len(tr.Snapshot()); n != 0 {
		t.Fatalf("fast trace kept (%d)", n)
	}
	_, root = tr.StartRoot(context.Background(), "slow", "")
	now = now.Add(60 * time.Millisecond)
	root.End()
	traces := tr.Snapshot()
	if len(traces) != 1 || traces[0].Spans[0].Name != "slow" {
		t.Fatalf("slow trace not kept: %+v", traces)
	}
	if got := traces[0].Spans[0].Duration; got != (60 * time.Millisecond).Nanoseconds() {
		t.Fatalf("slow root duration %d", got)
	}
}

func TestRingIsBoundedAndOrdered(t *testing.T) {
	tr := New(WithSampleRate(1), WithSeed(9), WithRingSize(4))
	var want []string
	for i := 0; i < 10; i++ {
		_, root := tr.StartRoot(context.Background(), "r", "")
		want = append(want, root.TraceIDString())
		root.End()
	}
	traces := tr.Snapshot()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(traces))
	}
	for i, td := range traces {
		if td.TraceID != want[6+i] {
			t.Fatalf("ring[%d] = %s, want %s (oldest-first order)", i, td.TraceID, want[6+i])
		}
	}
	if st := tr.Stats(); st.Kept != 10 || st.RingLen != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(WithSampleRate(1), WithSeed(11))
	_, root := tr.StartRoot(context.Background(), "edge", "")
	h := root.Traceparent()
	tid, pid, sampled, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent %q does not parse", h)
	}
	if tid.String() != root.TraceIDString() || pid.String() != root.SpanIDString() || !sampled {
		t.Fatalf("round trip lost fields: %s %s %v from %q", tid, pid, sampled, h)
	}

	// A second daemon stitches onto the inbound header.
	tr2 := New(WithSampleRate(1e-12), WithSeed(12)) // would not self-sample
	_, origin := tr2.StartRoot(context.Background(), "origin", h)
	if origin.TraceIDString() != root.TraceIDString() {
		t.Fatal("remote root did not adopt the inbound trace ID")
	}
	if !origin.Sampled() {
		t.Fatal("remote root ignored the inbound sampled flag")
	}
	origin.End()
	traces := tr2.Snapshot()
	if len(traces) != 1 || !traces[0].Spans[0].Remote || traces[0].Spans[0].Parent != root.SpanIDString() {
		t.Fatalf("stitched trace wrong: %+v", traces)
	}

	for _, bad := range []string{
		"",
		"01-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01", // wrong version
		"00-" + strings.Repeat("AB", 16) + "-" + strings.Repeat("cd", 8) + "-01", // uppercase
		"00-" + strings.Repeat("00", 16) + "-" + strings.Repeat("cd", 8) + "-01", // zero trace ID
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("00", 8) + "-01", // zero span ID
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-1",  // short flags
		"00-" + strings.Repeat("ab", 16) + "_" + strings.Repeat("cd", 8) + "-01", // bad separator
	} {
		if _, _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent accepted %q", bad)
		}
	}
}

func TestExportParseRoundTrip(t *testing.T) {
	tr := New(WithSampleRate(1), WithSeed(13))
	for i := 0; i < 3; i++ {
		ctx, root := tr.StartRoot(context.Background(), "root", "")
		root.SetAttr("route", "/v1/place")
		_, child := Start(ctx, "spool.read")
		child.SetInt("bytes", 512)
		child.AddEvent("decode")
		if i == 2 {
			child.SetStatus("checksum mismatch")
		}
		child.End()
		root.End()
	}
	orig := tr.Snapshot()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(orig) {
		t.Fatalf("JSON round trip: %d traces, want %d", len(parsed), len(orig))
	}

	buf.Reset()
	if err := WriteNDJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err = ParseNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(orig) || parsed[2].Spans[1].Error != "checksum mismatch" {
		t.Fatalf("NDJSON round trip lost data: %+v", parsed)
	}
	if parsed[0].Spans[1].Events[0].Name != "decode" {
		t.Fatalf("events lost: %+v", parsed[0].Spans[1])
	}
}

func TestParserIsStrict(t *testing.T) {
	const tid = "0123456789abcdef0123456789abcdef"
	root := `{"traceID":"` + tid + `","spanID":"1111111111111111","name":"r","startUnixNano":1,"durationNano":2}`
	for name, doc := range map[string]string{
		"unknown field":   `{"traces":[{"traceID":"` + tid + `","bogus":1,"spans":[` + root + `]}]}`,
		"no spans":        `{"traces":[{"traceID":"` + tid + `","spans":[]}]}`,
		"bad trace id":    `{"traces":[{"traceID":"xyz","spans":[` + root + `]}]}`,
		"dangling parent": `{"traces":[{"traceID":"` + tid + `","spans":[` + root + `,{"traceID":"` + tid + `","spanID":"2222222222222222","parent":"3333333333333333","name":"c","startUnixNano":1,"durationNano":1}]}]}`,
		"orphan non-root": `{"traces":[{"traceID":"` + tid + `","spans":[` + root + `,{"traceID":"` + tid + `","spanID":"2222222222222222","name":"c","startUnixNano":1,"durationNano":1}]}]}`,
		"foreign root parent, not remote": `{"traces":[{"traceID":"` + tid + `","spans":[` +
			`{"traceID":"` + tid + `","spanID":"1111111111111111","parent":"4444444444444444","name":"r","startUnixNano":1,"durationNano":2}]}]}`,
		"mismatched span trace id": `{"traces":[{"traceID":"` + tid + `","spans":[` +
			`{"traceID":"ffffffffffffffffffffffffffffffff","spanID":"1111111111111111","name":"r","startUnixNano":1,"durationNano":2}]}]}`,
	} {
		if _, err := ParseJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parser accepted %s", name, doc)
		}
	}
	// The valid skeleton itself parses, so the rejections above are real.
	if _, err := ParseJSON(strings.NewReader(`{"traces":[{"traceID":"` + tid + `","spans":[` + root + `]}]}`)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestSpanBalanceConcurrent(t *testing.T) {
	tr := New(WithSampleRate(1), WithSeed(17), WithRingSize(8))
	const roots, children = 16, 32
	var wg sync.WaitGroup
	for r := 0; r < roots; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx, root := tr.StartRoot(context.Background(), "root", "")
			var cw sync.WaitGroup
			for c := 0; c < children; c++ {
				cw.Add(1)
				go func(c int) {
					defer cw.Done()
					_, sp := Start(ctx, "child")
					sp.SetInt("c", int64(c))
					if c%7 == 0 {
						sp.SetStatus("injected")
					}
					sp.End()
					sp.End() // double End is a no-op
				}(c)
			}
			cw.Wait()
			root.End()
		}(r)
	}
	wg.Wait()
	st := tr.Stats()
	if st.Started != st.Ended {
		t.Fatalf("span imbalance: started %d, ended %d", st.Started, st.Ended)
	}
	if want := int64(roots * (children + 1)); st.Started != want {
		t.Fatalf("started %d, want %d", st.Started, want)
	}
	if st.RingLen > 8 {
		t.Fatalf("ring overflow: %d", st.RingLen)
	}
}

func TestLateChildAfterRootEndIsDropped(t *testing.T) {
	tr := New(WithSampleRate(1), WithSeed(19))
	ctx, root := tr.StartRoot(context.Background(), "root", "")
	_, late := Start(ctx, "late")
	root.End()
	late.End()
	st := tr.Stats()
	if st.Started != 2 || st.Ended != 2 {
		t.Fatalf("balance broken: %+v", st)
	}
	if st.Dropped != 1 {
		t.Fatalf("late span not counted dropped: %+v", st)
	}
	traces := tr.Snapshot()
	if len(traces) != 1 || len(traces[0].Spans) != 1 {
		t.Fatalf("late span leaked into the kept trace: %+v", traces)
	}
}

func TestPerTraceSpanBound(t *testing.T) {
	tr := New(WithSampleRate(1), WithSeed(23))
	ctx, root := tr.StartRoot(context.Background(), "root", "")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := Start(ctx, "c")
		sp.End()
	}
	root.End()
	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatal("trace not kept")
	}
	if got := len(traces[0].Spans); got != maxSpansPerTrace {
		t.Fatalf("trace holds %d spans, want the %d bound", got, maxSpansPerTrace)
	}
	if traces[0].Dropped != 11 {
		t.Fatalf("dropped = %d, want 11", traces[0].Dropped)
	}
	if st := tr.Stats(); st.Started != st.Ended {
		t.Fatalf("balance broken: %+v", st)
	}
}

func TestBackgroundRootViaTracerStart(t *testing.T) {
	// The spool's write-behind path: no span in ctx, tracer-level Start
	// makes a root; an error keeps it even when unsampled.
	tr := unsampledTracer()
	_, sp := tr.Start(context.Background(), "spool.write")
	sp.SetStatus("enospc")
	sp.End()
	traces := tr.Snapshot()
	if len(traces) != 1 || traces[0].Spans[0].Name != "spool.write" {
		t.Fatalf("background write trace missing: %+v", traces)
	}
	// With a span already in ctx, tracer Start defers to the child path.
	tr2 := New(WithSampleRate(1), WithSeed(29))
	ctx, root := tr2.StartRoot(context.Background(), "root", "")
	_, child := tr2.Start(ctx, "child")
	if child.TraceIDString() != root.TraceIDString() {
		t.Fatal("tracer Start ignored the ambient span")
	}
	child.End()
	root.End()
}
