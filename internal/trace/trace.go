// Package trace is a dependency-free span plane for the serving stack, in
// the spirit of internal/metrics: no third-party imports, atomics and plain
// mutexes, and a strict parser (export.go) so tests can round-trip what the
// daemon exposes.
//
// The model is deliberately small. A Tracer hands out Spans; the first span
// of a request is its local root, children ride the context. IDs come from
// a seeded splitmix64 stream, never the wall clock, so chaos tests replay
// identically. Sampling is head-based — the keep/drop decision is made when
// the root starts and propagates downstream via the W3C traceparent header —
// but a trace that turns out to contain an error, or to run past the slow
// threshold, is kept retroactively regardless of the head decision.
// Finished traces land in a bounded ring the daemon serves at
// /v1/debug/traces.
//
// Everything is nil-safe: a nil *Tracer and a nil *Span accept every call
// and do nothing, so instrumented code never guards call sites.
package trace

import (
	"context"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace ID shared by every span of one trace,
// across daemons.
type TraceID [16]byte

// SpanID is the 8-byte W3C span ID.
type SpanID [8]byte

func (id TraceID) String() string { return hex.EncodeToString(id[:]) }
func (id TraceID) IsZero() bool   { return id == TraceID{} }
func (id SpanID) String() string  { return hex.EncodeToString(id[:]) }
func (id SpanID) IsZero() bool    { return id == SpanID{} }

// Attr is one key/value annotation on a span. Values are strings —
// SetInt/SetBool format for you — which keeps the exposition and its strict
// parser trivial.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Event is a point-in-time marker inside a span, stored as an offset from
// the span's start.
type Event struct {
	Name       string `json:"name"`
	OffsetNano int64  `json:"offsetNano"`
}

// SpanData is one finished span as exposed at /v1/debug/traces.
type SpanData struct {
	TraceID  string  `json:"traceID"`
	SpanID   string  `json:"spanID"`
	Parent   string  `json:"parent,omitempty"`
	Name     string  `json:"name"`
	Remote   bool    `json:"remote,omitempty"`
	Start    int64   `json:"startUnixNano"`
	Duration int64   `json:"durationNano"`
	Error    string  `json:"error,omitempty"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Events   []Event `json:"events,omitempty"`
}

// TraceData is one finished, kept trace: the local root first, then its
// descendants in the order they ended.
type TraceData struct {
	TraceID string     `json:"traceID"`
	Dropped int        `json:"droppedSpans,omitempty"`
	Spans   []SpanData `json:"spans"`
}

// maxSpansPerTrace bounds one trace's span collection; past it spans still
// balance Start/End but their data is dropped and counted.
const maxSpansPerTrace = 256

// TracerStats is the balance sheet chaos tests assert on.
type TracerStats struct {
	// Started and Ended count spans; a healthy run ends every span it
	// starts exactly once.
	Started int64 `json:"started"`
	Ended   int64 `json:"ended"`
	// Kept counts traces that reached the ring; Dropped counts spans lost
	// to the per-trace bound or ended after their root.
	Kept    int64 `json:"kept"`
	Dropped int64 `json:"dropped"`
	// RingLen is the current number of traces held, never above the
	// configured ring size.
	RingLen int `json:"ringLen"`
}

// Tracer owns ID generation, the sampling decision and the finished-trace
// ring. The zero value is unusable; construct with New.
type Tracer struct {
	rate float64
	slow time.Duration
	size int
	now  func() time.Time

	idState atomic.Uint64

	started atomic.Int64
	ended   atomic.Int64
	kept    atomic.Int64
	dropped atomic.Int64

	mu   sync.Mutex
	ring []TraceData // circular once full
	next int         // write index
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithSampleRate sets the head-sampling rate in [0, 1]. 0 disables the
// tracer entirely — no spans are created, Start returns nil — which is the
// contract behind "tracing off costs nothing". 1 keeps everything.
func WithSampleRate(r float64) Option { return func(t *Tracer) { t.rate = r } }

// WithSlowThreshold keeps any trace whose root runs at least d, regardless
// of the head decision. 0 disables the slow keep rule.
func WithSlowThreshold(d time.Duration) Option { return func(t *Tracer) { t.slow = d } }

// WithRingSize bounds the finished-trace ring (default 128).
func WithRingSize(n int) Option { return func(t *Tracer) { t.size = n } }

// WithSeed seeds the splitmix64 ID stream, making trace/span IDs a pure
// function of the seed and the call sequence.
func WithSeed(s uint64) Option { return func(t *Tracer) { t.idState.Store(s) } }

// WithClock substitutes the wall clock (tests).
func WithClock(now func() time.Time) Option { return func(t *Tracer) { t.now = now } }

// New builds a Tracer. With no options it is disabled (sample rate 0) but
// still generates request IDs.
func New(opts ...Option) *Tracer {
	t := &Tracer{size: 128, now: time.Now}
	t.idState.Store(1)
	for _, o := range opts {
		o(t)
	}
	if t.size < 1 {
		t.size = 1
	}
	return t
}

// Enabled reports whether this tracer creates spans at all.
func (t *Tracer) Enabled() bool { return t != nil && t.rate > 0 }

// next64 advances the seeded splitmix64 stream — the same generator the
// measurement noise and remote jitter use, so IDs are deterministic and
// cheap (one atomic add).
func (t *Tracer) next64() uint64 {
	x := t.idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() { // all-zero is invalid per W3C; practically one loop
		hi, lo := t.next64(), t.next64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (56 - 8*i))
			id[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := t.next64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (56 - 8*i))
		}
	}
	return id
}

// RequestID returns a fresh 16-hex-digit ID from the seeded stream. It
// works on a disabled tracer — request IDs outlive the sampling decision —
// and on a nil one (constant fallback, tests only).
func (t *Tracer) RequestID() string {
	if t == nil {
		return "0000000000000000"
	}
	var b [8]byte
	v := t.next64()
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
	return hex.EncodeToString(b[:])
}

// sample makes the head decision for a fresh root.
func (t *Tracer) sample() bool {
	if t.rate >= 1 {
		return true
	}
	return float64(t.next64()>>11)/(1<<53) < t.rate
}

// Stats snapshots the balance counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	n := len(t.ring)
	t.mu.Unlock()
	return TracerStats{
		Started: t.started.Load(),
		Ended:   t.ended.Load(),
		Kept:    t.kept.Load(),
		Dropped: t.dropped.Load(),
		RingLen: n,
	}
}

// Snapshot copies the ring, oldest trace first.
func (t *Tracer) Snapshot() []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceData, 0, len(t.ring))
	if len(t.ring) == t.size {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

func (t *Tracer) keepTrace(td TraceData) {
	t.kept.Add(1)
	t.mu.Lock()
	if len(t.ring) < t.size {
		t.ring = append(t.ring, td)
		t.next = len(t.ring) % t.size
	} else {
		t.ring[t.next] = td
		t.next = (t.next + 1) % t.size
	}
	t.mu.Unlock()
}

// rootState is the per-local-root collector every span of the request
// shares: finished children accumulate here until the root ends and the
// keep decision is made.
type rootState struct {
	mu       sync.Mutex
	done     bool
	anyError bool
	spans    []SpanData
	dropped  int
}

// Span is one timed operation. All methods are nil-safe and, after Start,
// safe for concurrent use.
type Span struct {
	tracer  *Tracer
	root    *rootState
	traceID TraceID
	id      SpanID
	parent  SpanID
	name    string
	start   time.Time
	sampled bool
	remote  bool
	isRoot  bool

	mu     sync.Mutex
	ended  bool
	errmsg string
	attrs  []Attr
	events []Event
}

type ctxKey struct{}

// ContextWithSpan returns ctx carrying s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of the span in ctx. With no span in ctx it is a
// no-op returning (ctx, nil) — instrumented packages call it
// unconditionally and pay one context lookup when tracing is off.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tracer.newSpan(name, parent.traceID, parent.id, parent.root, parent.sampled)
	return ContextWithSpan(ctx, s), s
}

// Start opens a span: a child when ctx already carries one, otherwise a
// fresh local root (the spool's background writer uses this — its work has
// no request context). Returns (ctx, nil) when the tracer is disabled.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if s := SpanFromContext(ctx); s != nil {
		return Start(ctx, name)
	}
	if !t.Enabled() {
		return ctx, nil
	}
	s := t.newSpan(name, t.newTraceID(), SpanID{}, nil, t.sample())
	s.isRoot = true
	s.root = &rootState{}
	return ContextWithSpan(ctx, s), s
}

// StartRoot opens the local root for an incoming request, honoring an
// inbound W3C traceparent header when one parses: the remote trace ID and
// parent span ID stitch this daemon's spans into the caller's trace, and
// the remote sampled flag overrides the local head decision. With an empty
// or malformed header the root gets a fresh trace ID and a local decision.
func (t *Tracer) StartRoot(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	var s *Span
	if tid, pid, sampled, ok := ParseTraceparent(traceparent); ok {
		s = t.newSpan(name, tid, pid, nil, sampled)
		s.remote = true
	} else {
		s = t.newSpan(name, t.newTraceID(), SpanID{}, nil, t.sample())
	}
	s.isRoot = true
	s.root = &rootState{}
	return ContextWithSpan(ctx, s), s
}

func (t *Tracer) newSpan(name string, tid TraceID, parent SpanID, root *rootState, sampled bool) *Span {
	t.started.Add(1)
	return &Span{
		tracer:  t,
		root:    root,
		traceID: tid,
		id:      t.newSpanID(),
		parent:  parent,
		name:    name,
		start:   t.now(),
		sampled: sampled,
	}
}

// TraceIDString returns the span's trace ID in hex ("" on nil).
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.traceID.String()
}

// SpanIDString returns the span's ID in hex ("" on nil).
func (s *Span) SpanIDString() string {
	if s == nil {
		return ""
	}
	return s.id.String()
}

// Sampled reports the propagated head decision.
func (s *Span) Sampled() bool { return s != nil && s.sampled }

// Traceparent renders the header to send downstream so the next daemon's
// spans join this trace.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.traceID, s.id, s.sampled)
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) { s.SetAttr(key, strconv.FormatInt(v, 10)) }

// SetBool annotates the span with a boolean value.
func (s *Span) SetBool(key string, v bool) { s.SetAttr(key, strconv.FormatBool(v)) }

// AddEvent records a point-in-time marker at now, as an offset from the
// span's start.
func (s *Span) AddEvent(name string) {
	if s == nil {
		return
	}
	off := s.tracer.now().Sub(s.start).Nanoseconds()
	s.mu.Lock()
	if !s.ended {
		s.events = append(s.events, Event{Name: name, OffsetNano: off})
	}
	s.mu.Unlock()
}

// SetError marks the span failed. A nil error is a no-op, so call sites
// pass their return error unconditionally. An errored span forces its whole
// trace to be kept.
func (s *Span) SetError(err error) {
	if err != nil {
		s.SetStatus(err.Error())
	}
}

// SetStatus marks the span failed with a message ("" is a no-op).
func (s *Span) SetStatus(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.errmsg = msg
	}
	s.mu.Unlock()
}

// End finishes the span. The first call wins; later calls (and calls on
// nil) do nothing, so every code path may End defensively. Ending the local
// root seals the trace: the keep rule runs (head-sampled, any error
// anywhere in the trace, or root duration past the slow threshold) and a
// kept trace enters the ring. Children ending after their root balance the
// counters but their data is dropped.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	t := s.tracer
	dur := t.now().Sub(s.start)
	if dur < 0 {
		dur = 0
	}
	data := SpanData{
		TraceID:  s.traceID.String(),
		SpanID:   s.id.String(),
		Name:     s.name,
		Remote:   s.remote,
		Start:    s.start.UnixNano(),
		Duration: dur.Nanoseconds(),
		Error:    s.errmsg,
		Attrs:    s.attrs,
		Events:   s.events,
	}
	if !s.parent.IsZero() {
		data.Parent = s.parent.String()
	}
	s.mu.Unlock()
	t.ended.Add(1)

	rs := s.root
	rs.mu.Lock()
	if rs.done {
		rs.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	if data.Error != "" {
		rs.anyError = true
	}
	if !s.isRoot {
		if len(rs.spans) < maxSpansPerTrace-1 {
			rs.spans = append(rs.spans, data)
		} else {
			rs.dropped++
			t.dropped.Add(1)
		}
		rs.mu.Unlock()
		return
	}
	rs.done = true
	anyErr := rs.anyError
	droppedHere := rs.dropped
	spans := make([]SpanData, 0, len(rs.spans)+1)
	spans = append(spans, data)
	spans = append(spans, rs.spans...)
	rs.mu.Unlock()

	keep := s.sampled || anyErr || (t.slow > 0 && dur >= t.slow)
	if keep {
		t.keepTrace(TraceData{TraceID: data.TraceID, Dropped: droppedHere, Spans: spans})
	}
}

const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2 // 00-<trace>-<span>-<flags>

// FormatTraceparent renders a version-00 W3C traceparent header.
func FormatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tid.String() + "-" + sid.String() + "-" + flags
}

// ParseTraceparent strictly parses a version-00 traceparent header:
// lowercase hex, exact lengths, non-zero IDs. ok is false on anything else.
func ParseTraceparent(h string) (tid TraceID, sid SpanID, sampled bool, ok bool) {
	if len(h) != traceparentLen || h[0:3] != "00-" || h[35] != '-' || h[52] != '-' {
		return tid, sid, false, false
	}
	if !decodeLowerHex(tid[:], h[3:35]) || !decodeLowerHex(sid[:], h[36:52]) {
		return tid, sid, false, false
	}
	if tid.IsZero() || sid.IsZero() {
		return tid, sid, false, false
	}
	var flags [1]byte
	if !decodeLowerHex(flags[:], h[53:55]) {
		return tid, sid, false, false
	}
	return tid, sid, flags[0]&1 == 1, true
}

// decodeLowerHex decodes exactly len(dst)*2 lowercase hex digits.
func decodeLowerHex(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := lowerHexVal(s[2*i])
		lo, ok2 := lowerHexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func lowerHexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// String implements fmt.Stringer for debugging; it is not the exposition
// format (see WriteJSON/WriteNDJSON).
func (s *Span) String() string {
	if s == nil {
		return "<nil span>"
	}
	return fmt.Sprintf("span %s/%s %q", s.traceID, s.id, s.name)
}
