package remote

// Failure-mode coverage for the fleet tier. The Store contract is that the
// tier never fails — every broken-origin scenario (down, slow, corrupt
// bodies, unknown keys) must degrade to a miss, which at the registry
// level degrades to a local re-inference. The singleflight test runs under
// -race in CI and asserts a concurrent wave of Gets for one key reaches
// the origin exactly once.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/spool"
	"repro/internal/topo"
)

// testTopo infers a small enriched Ivy topology once and shares it.
var testTopo = sync.OnceValue(func() *topo.Topology {
	p, err := sim.ByName("Ivy")
	if err != nil {
		panic(err)
	}
	m, err := machine.NewSim(p, 1)
	if err != nil {
		panic(err)
	}
	res, err := mctopalg.Infer(m, mctopalg.Options{Reps: 51})
	if err != nil {
		panic(err)
	}
	t, err := plugins.Enrich(m, res.Topology, nil)
	if err != nil {
		panic(err)
	}
	return t
})

const testKey = "topo|Ivy|1|r51"

// encodeBody renders testTopo as the origin would serve it under key.
func encodeBody(t *testing.T, key string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := spool.EncodeTopology(&buf, key, testTopo()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newRemote builds a tier over base with fast test timeouts. Retries are
// off (the fetch-count assertions below want one dial per miss) and the
// retry sleep is free — the retry tests opt back in explicitly.
func newRemote(t *testing.T, base string, opts ...Option) *Remote {
	t.Helper()
	rm := New(base, append([]Option{
		WithTimeout(2 * time.Second),
		WithNegTTL(100 * time.Millisecond),
		WithRetries(0, 0),
		WithLogf(t.Logf),
	}, opts...)...)
	rm.sleep = func(time.Duration) {}
	return rm
}

// edgeRegistry wraps a store chain in a registry whose local inference
// serves testTopo and counts how often it ran — the "degrade to local
// re-inference" assertion of every failure-mode test.
func edgeRegistry(store registry.Store) (*registry.Registry, *atomic.Int64) {
	var inferences atomic.Int64
	reg := registry.New(registry.Options{
		Store: store,
		InferCtx: func(ctx context.Context, platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
			inferences.Add(1)
			return testTopo(), nil
		},
	})
	return reg, &inferences
}

func TestFetchTopologyHit(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if got := r.URL.Query().Get("key"); got != testKey {
			t.Errorf("origin asked for key %q, want %q", got, testKey)
		}
		w.Write(encodeBody(t, testKey))
	}))
	defer ts.Close()

	rm := newRemote(t, ts.URL)
	v, ok := rm.Get(registry.KindTopology, testKey)
	if !ok {
		t.Fatal("expected a hit from a healthy origin")
	}
	got := v.(*topo.Topology)
	var a, b bytes.Buffer
	sa, sb := got.Spec(), testTopo().Spec()
	topo.Encode(&a, &sa)
	topo.Encode(&b, &sb)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("fetched topology does not re-encode byte-identically")
	}
	st := rm.Stats()[0]
	if st.Tier != "remote" || st.Hits != 1 || st.Misses != 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want remote tier with 1 hit", st)
	}
	if requests.Load() != 1 {
		t.Fatalf("origin saw %d requests, want 1", requests.Load())
	}
}

func TestOriginDownDegradesToLocalInference(t *testing.T) {
	// A server started and immediately closed yields a port that refuses
	// connections — the down-origin case.
	ts := httptest.NewServer(http.NewServeMux())
	ts.Close()

	rm := newRemote(t, ts.URL)
	reg, inferences := edgeRegistry(registry.NewTiered(registry.NewLRU(16, 1), rm))
	top, err := reg.Topology("Ivy", 1, mctopalg.Options{Reps: 51})
	if err != nil {
		t.Fatalf("a down origin must not fail a lookup: %v", err)
	}
	if top == nil || inferences.Load() != 1 {
		t.Fatalf("want exactly one local inference, got %d", inferences.Load())
	}
	st := rm.Stats()[0]
	if st.Errors == 0 || st.Hits != 0 {
		t.Fatalf("remote stats = %+v, want errors and no hits", st)
	}
}

func TestOriginDownBackoffSkipsDials(t *testing.T) {
	ts := httptest.NewServer(http.NewServeMux())
	ts.Close()

	rm := newRemote(t, ts.URL, WithNegTTL(time.Minute))
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("down origin produced a hit")
	}
	dials := rm.Fetches()
	if dials != 1 {
		t.Fatalf("first miss issued %d fetches, want 1", dials)
	}
	// Inside the backoff window, further Gets — any key — must not dial.
	for i := 0; i < 10; i++ {
		if _, ok := rm.Get(registry.KindTopology, testKey); ok {
			t.Fatal("hit during backoff")
		}
		if _, ok := rm.Get(registry.KindTopology, "topo|Westmere|1|r51"); ok {
			t.Fatal("hit during backoff")
		}
	}
	if got := rm.Fetches(); got != dials {
		t.Fatalf("backoff window still dialed the origin: %d fetches, want %d", got, dials)
	}
}

func TestBackoffExpiresAndOriginRecovers(t *testing.T) {
	healthy := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		w.Write(encodeBody(t, testKey))
	}))
	defer ts.Close()

	now := time.Now()
	var clock atomic.Pointer[time.Time]
	clock.Store(&now)
	rm := newRemote(t, ts.URL, WithNegTTL(time.Second),
		WithClock(func() time.Time { return *clock.Load() }))

	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("5xx produced a hit")
	}
	healthy.Store(true)
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("expected the backoff window to mask the recovery")
	}
	later := now.Add(5 * time.Second)
	clock.Store(&later)
	if _, ok := rm.Get(registry.KindTopology, testKey); !ok {
		t.Fatal("expected a hit once the backoff expired")
	}
}

func TestOriginSlowTimesOutAndDegrades(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // an origin stuck on a cold inference
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()

	rm := newRemote(t, ts.URL, WithTimeout(50*time.Millisecond))
	reg, inferences := edgeRegistry(registry.NewTiered(registry.NewLRU(16, 1), rm))
	start := time.Now()
	if _, err := reg.Topology("Ivy", 1, mctopalg.Options{Reps: 51}); err != nil {
		t.Fatalf("a slow origin must not fail a lookup: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lookup blocked %v behind a slow origin", elapsed)
	}
	if inferences.Load() != 1 {
		t.Fatalf("want one local inference, got %d", inferences.Load())
	}
}

func TestCorruptBodyNegativeCachesKeyOnly(t *testing.T) {
	// The key a registry lookup of ("Ivy", 1, Reps:51) actually fetches.
	corruptKey := registry.TopoKey("Ivy", 1, mctopalg.Options{Reps: 51})
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if r.URL.Query().Get("key") == corruptKey {
			w.Write([]byte("#key " + corruptKey + "\nthis is not a description file\n"))
			return
		}
		w.Write(encodeBody(t, r.URL.Query().Get("key")))
	}))
	defer ts.Close()

	rm := newRemote(t, ts.URL, WithNegTTL(time.Minute))
	reg, inferences := edgeRegistry(registry.NewTiered(registry.NewLRU(16, 1), rm))
	if _, err := reg.Topology("Ivy", 1, mctopalg.Options{Reps: 51}); err != nil {
		t.Fatalf("a corrupt body must not fail a lookup: %v", err)
	}
	if inferences.Load() != 1 {
		t.Fatalf("want one local inference, got %d", inferences.Load())
	}
	// The corrupt key is negative-cached: no refetch within the TTL.
	after := requests.Load()
	if _, ok := rm.Get(registry.KindTopology, corruptKey); ok || requests.Load() != after {
		t.Fatal("negative-cached key was re-fetched or served")
	}
	// ...but the origin is not marked down: other keys still fetch.
	if _, ok := rm.Get(registry.KindTopology, "topo|Other|1|r51"); !ok {
		t.Fatal("healthy key missed after an unrelated corrupt body")
	}
}

func TestTornBodyDegrades(t *testing.T) {
	body := encodeBody(t, testKey)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body[:len(body)/2]) // a torn transfer
	}))
	defer ts.Close()
	rm := newRemote(t, ts.URL)
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("torn body served as a hit")
	}
	if st := rm.Stats()[0]; st.Errors != 1 {
		t.Fatalf("stats = %+v, want one error", st)
	}
}

func TestMislabeledBodyRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(encodeBody(t, "topo|SomethingElse|7|r51"))
	}))
	defer ts.Close()
	rm := newRemote(t, ts.URL)
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("a body labeled with another key must not land under this key")
	}
}

func Test404NegativeCachesKey(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()
	rm := newRemote(t, ts.URL, WithNegTTL(time.Minute))
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("404 served as a hit")
	}
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("404 served as a hit")
	}
	if requests.Load() != 1 {
		t.Fatalf("negative cache did not hold: %d requests, want 1", requests.Load())
	}
}

// TestConcurrentFetchesCollapse is the -race singleflight test: a wave of
// concurrent Gets for one key must reach the origin exactly once, and
// every caller shares the fetched value.
func TestConcurrentFetchesCollapse(t *testing.T) {
	var requests atomic.Int64
	gate := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		<-gate // hold the fetch open until the whole wave is waiting
		w.Write(encodeBody(t, testKey))
	}))
	defer ts.Close()

	rm := newRemote(t, ts.URL)
	const waiters = 32
	var wg sync.WaitGroup
	results := make([]*topo.Topology, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, ok := rm.Get(registry.KindTopology, testKey)
			if !ok {
				t.Errorf("waiter %d missed", i)
				return
			}
			results[i] = v.(*topo.Topology)
		}(i)
	}
	// Let the wave pile up behind the in-flight fetch, then release it.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := requests.Load(); got != 1 {
		t.Fatalf("%d concurrent Gets issued %d upstream requests, want 1", waiters, got)
	}
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("waiter %d got a different topology instance", i)
		}
	}
	if st := rm.Stats()[0]; st.Hits != waiters {
		t.Fatalf("hits = %d, want %d", st.Hits, waiters)
	}
}

func TestPlacementFetchReconstructsViaTopology(t *testing.T) {
	top := testTopo()
	pl, err := place.NewFrom(top, place.RRCore, place.Options{NThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	placeKey := "place|" + testKey + "|MCTOP_PLACE_RR_CORE|8"
	var sidecars sync.Map // placement key -> *place.Placement
	sidecars.Store(placeKey, pl)
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		key := r.URL.Query().Get("key")
		if key == testKey {
			w.Write(encodeBody(t, testKey))
			return
		}
		if v, ok := sidecars.Load(key); ok {
			var buf bytes.Buffer
			if err := spool.EncodeSidecar(&buf, key, testKey, v.(*place.Placement)); err != nil {
				t.Error(err)
			}
			w.Write(buf.Bytes())
			return
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()

	rm := newRemote(t, ts.URL)
	v, ok := rm.Get(registry.KindPlacement, placeKey)
	if !ok {
		t.Fatal("placement fetch missed")
	}
	got := v.(*place.Placement).Contexts()
	want := pl.Contexts()
	if len(got) != len(want) {
		t.Fatalf("reconstructed %d contexts, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("context %d = %d, want %d", i, got[i], want[i])
		}
	}
	// The sidecar fetch pulled its topology too: exactly 2 requests.
	if requests.Load() != 2 {
		t.Fatalf("placement fetch issued %d requests, want 2 (sidecar + topology)", requests.Load())
	}
	// A second placement referencing the same topology rides the
	// topology memo: one more request, not two.
	placeKey16 := "place|" + testKey + "|MCTOP_PLACE_RR_CORE|16"
	pl16, err := place.NewFrom(top, place.RRCore, place.Options{NThreads: 16})
	if err != nil {
		t.Fatal(err)
	}
	sidecars.Store(placeKey16, pl16)
	if _, ok := rm.Get(registry.KindPlacement, placeKey16); !ok {
		t.Fatal("second placement fetch missed")
	}
	if requests.Load() != 3 {
		t.Fatalf("second placement issued %d total requests, want 3 (topology memoized)", requests.Load())
	}
}

// TestRetryRidesOutOriginBlip: one origin-level failure followed by a
// healthy answer must hit on the first Get — the retry absorbs the blip
// instead of opening the down window.
func TestRetryRidesOutOriginBlip(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) == 1 {
			http.Error(w, "blip", http.StatusInternalServerError)
			return
		}
		w.Write(encodeBody(t, testKey))
	}))
	defer ts.Close()

	var slept []time.Duration
	rm := newRemote(t, ts.URL, WithRetries(1, 10*time.Millisecond))
	rm.sleep = func(d time.Duration) { slept = append(slept, d) }

	if _, ok := rm.Get(registry.KindTopology, testKey); !ok {
		t.Fatal("retry did not ride out a single 5xx")
	}
	if requests.Load() != 2 {
		t.Fatalf("origin saw %d requests, want 2 (failed + retried)", requests.Load())
	}
	if bs := rm.Backoff(); !bs.DownUntil.IsZero() || bs.ConsecutiveFails != 0 {
		t.Fatalf("successful retry left backoff state %+v", bs)
	}
	// The jittered delay stays inside [base/2, 3*base/2) — well under one
	// origin-down window.
	if len(slept) != 1 || slept[0] < 5*time.Millisecond || slept[0] >= 15*time.Millisecond {
		t.Fatalf("retry slept %v, want one jittered delay near 10ms", slept)
	}
}

// TestRetriesBoundedThenBackoff: a hard-down origin is retried exactly
// the configured number of times, then the miss opens the backoff window
// as before — retries delay the window, they do not replace it.
func TestRetriesBoundedThenBackoff(t *testing.T) {
	ts := httptest.NewServer(http.NewServeMux())
	ts.Close()

	rm := newRemote(t, ts.URL, WithNegTTL(time.Minute), WithRetries(2, time.Millisecond))
	rm.sleep = func(time.Duration) {}
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("down origin produced a hit")
	}
	if got := rm.Fetches(); got != 3 {
		t.Fatalf("down origin saw %d fetch attempts, want 3 (1 + 2 retries)", got)
	}
	if bs := rm.Backoff(); bs.DownUntil.IsZero() || bs.ConsecutiveFails == 0 {
		t.Fatalf("exhausted retries did not open the backoff window: %+v", bs)
	}
	// Inside the window nothing dials — retries included.
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("hit during backoff")
	}
	if got := rm.Fetches(); got != 3 {
		t.Fatalf("backoff window still dialed: %d fetches", got)
	}
}

// TestKeyFaultsAreNotRetried: a 404 is the origin's answer, not a fault —
// retrying it would only double the load on a healthy origin.
func TestKeyFaultsAreNotRetried(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()

	rm := newRemote(t, ts.URL, WithRetries(3, time.Millisecond))
	rm.sleep = func(time.Duration) {}
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("404 produced a hit")
	}
	if requests.Load() != 1 {
		t.Fatalf("origin saw %d requests for a 404, want 1 (no retries)", requests.Load())
	}
}

// TestInjectedClockDrivesWindowsWithoutSleeping: the WithClock seam walks
// negative-cache expiry — no real time passes anywhere in the test.
func TestInjectedClockDrivesWindowsWithoutSleeping(t *testing.T) {
	var serve atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !serve.Load() {
			http.NotFound(w, r)
			return
		}
		w.Write(encodeBody(t, testKey))
	}))
	defer ts.Close()

	now := time.Now()
	var clock atomic.Pointer[time.Time]
	clock.Store(&now)
	rm := newRemote(t, ts.URL, WithNegTTL(time.Hour),
		WithClock(func() time.Time { return *clock.Load() }))

	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("404 produced a hit")
	}
	serve.Store(true)
	if _, ok := rm.Get(registry.KindTopology, testKey); ok {
		t.Fatal("negative cache did not mask the recovery")
	}
	if dials := rm.Fetches(); dials != 1 {
		t.Fatalf("negative-cached key dialed anyway (%d fetches)", dials)
	}
	later := now.Add(2 * time.Hour)
	clock.Store(&later)
	if _, ok := rm.Get(registry.KindTopology, testKey); !ok {
		t.Fatal("expired negative-cache entry did not refetch")
	}
}
