// Package remote is the fleet tier of the registry's tiered store: a
// registry.Store backed by an upstream mctopd's /v1/export endpoint.
//
// The paper's deployment model — a topology is "created once, then used to
// load the topology" (Section 2) — distributed: one origin daemon runs the
// O(N²) inference, and every edge daemon chains this tier under its LRU
// (and spool) so a local miss fetches the origin's description file
// instead of re-measuring. The wire format is exactly the spool's
// interchange format (`#key`-headed .mctop description files, .place
// sidecars), so a fetched entry is byte-identical to what the origin would
// spool — and is write-through-promoted into the edge's own spool by the
// tier chain.
//
// The Store contract shapes every failure path: a store never fails, it
// misses. Concretely:
//
//   - timeouts, connection errors and 5xx responses are retried a bounded
//     number of times with jittered backoff (a single blip must not open
//     the down window), then degrade to a miss (the edge re-infers
//     locally) and open an origin-level backoff window, exponential up to
//     a bound, so a down origin costs one failed fetch per window instead
//     of one per request;
//   - 4xx responses and undecodable bodies degrade to a miss and a
//     per-key negative-cache entry, so a key the origin cannot serve is
//     not re-requested on every lookup;
//   - concurrent Gets for one key collapse into a single upstream fetch
//     (singleflight) — a thundering herd on a cold edge costs the origin
//     one request.
//
// Put is a no-op: edges never push to the origin; the origin populates
// itself through its own registry.
package remote

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/place"
	"repro/internal/registry"
	"repro/internal/spool"
	"repro/internal/taskmap"
	"repro/internal/topo"
	"repro/internal/trace"
)

const (
	// DefaultTimeout bounds one upstream fetch (the Store interface is
	// synchronous, so this is also how long a cold Get can block a
	// serving request). A warm origin answers in milliseconds; an origin
	// that has to infer first may exceed this, in which case the edge
	// infers locally too and the origin's entry lands on the next miss.
	DefaultTimeout = 15 * time.Second
	// defaultNegTTL is the per-key negative-cache window and the base of
	// the origin-down backoff.
	defaultNegTTL = 2 * time.Second
	// defaultBackoffMax caps the origin-down exponential backoff.
	defaultBackoffMax = 30 * time.Second
	// maxBodyBytes bounds one fetched description file (the largest
	// golden platform is well under 1 MiB).
	maxBodyBytes = 8 << 20
	// maxNegEntries bounds the per-key negative cache on edges with a
	// varied key stream; past it, expired entries are swept on insert.
	maxNegEntries = 1024
	// defaultRetries is how many times an origin-level fetch failure is
	// retried before degrading to a miss, and defaultRetryBase the base of
	// the jittered delay between attempts. One retry at tens of
	// milliseconds rides out a connection blip or a rolling restart
	// without stretching a serving request, and stays well inside the
	// origin-down window the final failure opens.
	defaultRetries   = 1
	defaultRetryBase = 25 * time.Millisecond
)

// Remote is a registry.Store that reads through an upstream mctopd.
type Remote struct {
	base       string
	client     *http.Client
	timeout    time.Duration
	negTTL     time.Duration
	backoffMax time.Duration
	logf       func(format string, args ...any)
	// now is the tier's clock: every negative-cache/backoff decision and
	// every observed fetch duration reads it, never time.Now directly, so
	// fault tests inject a clock (WithClock) and step through backoff
	// windows instantly.
	now func() time.Time

	// retries/retryBase bound the in-call retry loop on origin faults;
	// sleep and jitterState are the injectable delay machinery (tests make
	// the sleep free; the jitter stream is seeded, not wall-clock).
	retries     int
	retryBase   time.Duration
	sleep       func(d time.Duration)
	jitterState uint64

	mu       sync.Mutex
	inflight map[string]*call
	neg      map[string]time.Time // per-key: no refetch before this instant
	down     time.Time            // origin-level: no fetch at all before this
	fails    int                  // consecutive origin-level failures

	// lastMu/lastKey/lastTopo memoize the most recently fetched topology:
	// a placement sidecar references its topology by key, and a burst of
	// placement fetches against one topology must not re-fetch (or
	// re-decode) it per sidecar.
	lastMu   sync.Mutex
	lastKey  string
	lastTopo *topo.Topology

	hits    atomic.Int64
	misses  atomic.Int64
	errors  atomic.Int64
	fetches atomic.Int64 // upstream requests actually issued

	kindHits   [3]atomic.Int64
	kindMisses [3]atomic.Int64

	// observe, when set, receives one callback per upstream fetch attempt
	// with its wall duration and outcome ("ok", "origin_fault",
	// "key_fault") — the feed behind mctopd's per-origin fetch-latency
	// histogram. Runs on the fetching goroutine; must be cheap.
	observe func(d time.Duration, outcome string)
}

// TierName implements registry's TierNamer extension.
func (r *Remote) TierName() string { return "remote" }

func kindIndex(k registry.Kind) int {
	switch k {
	case registry.KindPlacement:
		return 1
	case registry.KindMapping:
		return 2
	}
	return 0
}

// call is one in-flight upstream fetch; concurrent Gets for the key wait
// on done and share the outcome.
type call struct {
	done chan struct{}
	val  any
	ok   bool
}

// Option configures a Remote.
type Option func(*Remote)

// WithTimeout bounds each upstream fetch (default DefaultTimeout).
func WithTimeout(d time.Duration) Option {
	return func(r *Remote) { r.timeout = d }
}

// WithNegTTL sets the per-key negative-cache window and the base of the
// origin-down backoff (default 2s).
func WithNegTTL(d time.Duration) Option {
	return func(r *Remote) { r.negTTL = d }
}

// WithBackoffMax caps the origin-down exponential backoff (default 30s).
func WithBackoffMax(d time.Duration) Option {
	return func(r *Remote) { r.backoffMax = d }
}

// WithLogf redirects the tier's degradation log lines (default log.Printf
// with a "remote: " prefix).
func WithLogf(logf func(format string, args ...any)) Option {
	return func(r *Remote) { r.logf = logf }
}

// WithHTTPClient substitutes the HTTP client (the per-fetch timeout still
// comes from WithTimeout, via the request context). This is also the seam
// fault injection uses: a client whose Transport is a
// faultinject.Transport makes the origin flap on demand.
func WithHTTPClient(c *http.Client) Option {
	return func(r *Remote) { r.client = c }
}

// WithClock substitutes the tier's clock (default time.Now). Every
// negative-cache and backoff window decision reads it, so a test can hold
// or step time and walk the tier through down/recovered transitions
// deterministically, without sleeping through real windows.
func WithClock(now func() time.Time) Option {
	return func(r *Remote) { r.now = now }
}

// WithRetries bounds the in-call retry loop on origin-level fetch
// failures (default 1; 0 disables retries). Retries are spaced by a
// jittered multiple of base (default 25ms) — kept deliberately small so
// the total retry budget stays inside one origin-down window.
func WithRetries(n int, base time.Duration) Option {
	return func(r *Remote) {
		r.retries = n
		if base > 0 {
			r.retryBase = base
		}
	}
}

// WithObserver attaches a per-fetch callback: one call per upstream fetch
// attempt with its wall duration and outcome — "ok", "origin_fault" (dial
// error, timeout, 5xx: the failures that open the backoff window) or
// "key_fault" (4xx, undecodable body: negative-cached per key). The
// callback runs on the fetching goroutine and must be cheap and
// concurrency-safe.
func WithObserver(fn func(d time.Duration, outcome string)) Option {
	return func(r *Remote) { r.observe = fn }
}

// New creates a remote tier reading through the mctopd at base (e.g.
// "http://origin:8077"). The origin's availability is probed lazily — a
// Remote over an unreachable origin constructs fine and simply misses.
func New(base string, opts ...Option) *Remote {
	r := &Remote{
		base:        strings.TrimRight(base, "/"),
		client:      &http.Client{},
		timeout:     DefaultTimeout,
		negTTL:      defaultNegTTL,
		backoffMax:  defaultBackoffMax,
		logf:        func(format string, args ...any) { log.Printf("remote: "+format, args...) },
		now:         time.Now,
		retries:     defaultRetries,
		retryBase:   defaultRetryBase,
		sleep:       time.Sleep,
		jitterState: 0x9E3779B97F4A7C15,
		inflight:    make(map[string]*call),
		neg:         make(map[string]time.Time),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Base returns the upstream base URL.
func (r *Remote) Base() string { return r.base }

// Get implements registry.Store: fetch the entry's description file from
// the origin, degrading every failure to a miss.
func (r *Remote) Get(kind registry.Kind, key string) (any, bool) {
	return r.GetContext(context.Background(), kind, key)
}

// GetContext implements registry's CtxGetter extension: Get with the
// request context threaded through. The context carries tracing only —
// each upstream attempt becomes a span, and the traceparent header it
// emits stitches the origin's spans into this trace. It deliberately does
// NOT carry cancellation: the fetch keeps its own timeout-from-Background
// context, so a fetch shared by singleflight waiters survives the first
// caller hanging up (see fetch).
func (r *Remote) GetContext(ctx context.Context, kind registry.Kind, key string) (any, bool) {
	now := r.now()
	r.mu.Lock()
	if until, ok := r.neg[key]; ok && !now.Before(until) {
		delete(r.neg, key) // expired; drop eagerly so the map tracks live entries
	}
	if now.Before(r.down) || now.Before(r.neg[key]) {
		r.mu.Unlock()
		// No fetch happens, so no span: note the skip on the enclosing
		// lookup span instead — the trace of a request served by local
		// re-inference should say why the origin was not consulted.
		trace.SpanFromContext(ctx).AddEvent("remote.backoff_skip")
		r.misses.Add(1)
		r.kindMisses[kindIndex(kind)].Add(1)
		return nil, false
	}
	if c, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		trace.SpanFromContext(ctx).AddEvent("remote.coalesced_wait")
		<-c.done
		if c.ok {
			r.hits.Add(1)
			r.kindHits[kindIndex(kind)].Add(1)
			return c.val, true
		}
		r.misses.Add(1)
		r.kindMisses[kindIndex(kind)].Add(1)
		return nil, false
	}
	c := &call{done: make(chan struct{})}
	r.inflight[key] = c
	r.mu.Unlock()

	v, err, originFault := r.fetchObserved(ctx, kind, key, 0, 0)
	// Bounded retries on origin faults only: a connection blip or one 5xx
	// is retried after a short jittered delay instead of immediately
	// opening the origin-down window; key-level faults (4xx, undecodable
	// bodies) retry nothing — the origin answered, the answer won't change.
	for attempt := 0; err != nil && originFault && attempt < r.retries; attempt++ {
		delay := r.jitteredDelay(attempt)
		r.sleep(delay)
		v, err, originFault = r.fetchObserved(ctx, kind, key, attempt+1, delay)
	}
	now = r.now()
	r.mu.Lock()
	delete(r.inflight, key)
	switch {
	case err == nil:
		r.fails = 0
		delete(r.neg, key)
		c.val, c.ok = v, true
	case originFault:
		// Exponential origin-level backoff: a down origin costs one
		// failed dial per window, not one per request.
		if r.fails < 16 { // cap the shift; the backoff is bounded anyway
			r.fails++
		}
		backoff := r.negTTL << (r.fails - 1)
		if backoff > r.backoffMax || backoff <= 0 {
			backoff = r.backoffMax
		}
		r.down = now.Add(backoff)
	default:
		// The origin answered but cannot serve this key (or served bytes
		// we cannot decode): negative-cache the key alone. The map is
		// bounded: keys that are never looked up again would otherwise
		// accumulate forever on an edge with a varied key stream, so past
		// the bound expired entries are swept — and if every entry is
		// live, the cache is dropped wholesale (it is an optimization;
		// the cost is refetches, never wrong results).
		if len(r.neg) >= maxNegEntries {
			for k, until := range r.neg {
				if !now.Before(until) {
					delete(r.neg, k)
				}
			}
			if len(r.neg) >= maxNegEntries {
				r.neg = make(map[string]time.Time)
			}
		}
		r.neg[key] = now.Add(r.negTTL)
	}
	r.mu.Unlock()
	close(c.done)

	if err != nil {
		r.logf("fetching %q: %v (degrading to a miss)", key, err)
		r.errors.Add(1)
		r.misses.Add(1)
		r.kindMisses[kindIndex(kind)].Add(1)
		return nil, false
	}
	r.hits.Add(1)
	r.kindHits[kindIndex(kind)].Add(1)
	return v, true
}

// fetchObserved is one fetch attempt plus its observer callback — each
// retry attempt is observed individually, so the fetch-latency histogram
// and outcome counters see every upstream request, not just the last.
// attempt and backoff annotate the attempt's span: which retry this is and
// how long the jittered pause before it was.
func (r *Remote) fetchObserved(ctx context.Context, kind registry.Kind, key string, attempt int, backoff time.Duration) (val any, err error, originFault bool) {
	start := r.now()
	val, err, originFault = r.fetch(ctx, kind, key, attempt, backoff)
	if r.observe != nil {
		outcome := "ok"
		switch {
		case err != nil && originFault:
			outcome = "origin_fault"
		case err != nil:
			outcome = "key_fault"
		}
		r.observe(r.now().Sub(start), outcome)
	}
	return val, err, originFault
}

// jitteredDelay is the pause before retry attempt n: retryBase * 2^n,
// scaled by a deterministic jitter in [0.5, 1.5) drawn from a seeded
// stream (splitmix64) — never from the wall clock, so two runs with the
// same fetch sequence delay identically.
func (r *Remote) jitteredDelay(attempt int) time.Duration {
	base := r.retryBase << attempt
	r.mu.Lock()
	r.jitterState += 0x9E3779B97F4A7C15
	z := r.jitterState
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	frac := float64(z>>11) / (1 << 53) // [0, 1)
	return time.Duration(float64(base) * (0.5 + frac))
}

// fetch performs one upstream GET and decodes the body per entry kind.
// originFault distinguishes origin-level failures (dial errors, timeouts,
// 5xx — back off from the origin) from per-key ones (4xx, undecodable
// bodies — negative-cache the key).
//
// The HTTP request runs under its own timeout-from-Background context —
// NOT the caller's — so a fetch whose result singleflight waiters share is
// never cancelled by the first caller hanging up. The caller's context
// contributes tracing only: this attempt's span, and the traceparent
// header that makes the origin's handler a child of it.
func (r *Remote) fetch(ctx context.Context, kind registry.Kind, key string, attempt int, backoff time.Duration) (val any, err error, originFault bool) {
	ctx, sp := trace.Start(ctx, "remote.fetch")
	sp.SetInt("attempt", int64(attempt))
	if backoff > 0 {
		sp.SetAttr("backoff", backoff.String())
	}
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	reqCtx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet,
		r.base+"/v1/export?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, err, false
	}
	if h := sp.Traceparent(); h != "" {
		req.Header.Set("traceparent", h)
	}
	r.fetches.Add(1)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err, true
	}
	defer resp.Body.Close()
	body := io.LimitReader(resp.Body, maxBodyBytes)
	if resp.StatusCode != http.StatusOK {
		// Drain a little for connection reuse; the error carries the code.
		io.CopyN(io.Discard, body, 4096)
		return nil, fmt.Errorf("origin returned %s", resp.Status), resp.StatusCode >= 500
	}
	switch kind {
	case registry.KindTopology:
		t, err := r.decodeTopology(key, body)
		return t, err, false
	case registry.KindPlacement:
		p, err := r.decodePlacement(ctx, key, body)
		return p, err, false
	case registry.KindMapping:
		m, err := r.decodeMapping(ctx, key, body)
		return m, err, false
	default:
		return nil, fmt.Errorf("unknown entry kind %v", kind), false
	}
}

func (r *Remote) decodeTopology(key string, body io.Reader) (*topo.Topology, error) {
	gotKey, t, err := spool.DecodeTopology(body)
	if err != nil {
		return nil, err
	}
	if gotKey != "" && gotKey != key {
		// A mislabeled body must never land in the cache under this key.
		return nil, fmt.Errorf("key header names %q", gotKey)
	}
	r.lastMu.Lock()
	r.lastKey, r.lastTopo = key, t
	r.lastMu.Unlock()
	return t, nil
}

func (r *Remote) decodePlacement(ctx context.Context, key string, body io.Reader) (*place.Placement, error) {
	side, err := spool.DecodeSidecar(body)
	if err != nil {
		return nil, err
	}
	if side.Key != "" && side.Key != key {
		return nil, fmt.Errorf("key header names %q", side.Key)
	}
	t, err := r.topologyFor(ctx, side.TopoKey)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", side.TopoKey, err)
	}
	return place.Reconstruct(t, side.Policy, side.Ctxs)
}

func (r *Remote) decodeMapping(ctx context.Context, key string, body io.Reader) (*taskmap.Mapping, error) {
	side, err := spool.DecodeMapSidecar(body)
	if err != nil {
		return nil, err
	}
	if side.Key != "" && side.Key != key {
		return nil, fmt.Errorf("key header names %q", side.Key)
	}
	t, err := r.topologyFor(ctx, side.TopoKey)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", side.TopoKey, err)
	}
	return taskmap.Reconstruct(t, side.DAGName, side.DAGHash, side.Nodes, side.Edges, side.Algo, side.Cost, side.Assign)
}

// topologyFor resolves the topology a sidecar references: the memo first,
// then a recursive Get — which rides the tier's own singleflight and
// negative cache, so many sidecars of one topology fetch it once. The
// context parents the nested fetch's span under the sidecar attempt.
func (r *Remote) topologyFor(ctx context.Context, topoKey string) (*topo.Topology, error) {
	r.lastMu.Lock()
	if r.lastKey == topoKey && r.lastTopo != nil {
		t := r.lastTopo
		r.lastMu.Unlock()
		return t, nil
	}
	r.lastMu.Unlock()
	v, ok := r.GetContext(ctx, registry.KindTopology, topoKey)
	if !ok {
		return nil, fmt.Errorf("not fetchable")
	}
	return v.(*topo.Topology), nil
}

// Put implements registry.Store as a no-op: the fleet is pull-only — an
// edge never pushes what it inferred to the origin (the origin computes or
// spools its own entries). Tiered write-through therefore stops here.
func (r *Remote) Put(kind registry.Kind, key string, val any) {}

// Len implements registry.Store: a remote tier holds nothing locally.
func (r *Remote) Len() int { return 0 }

// Purge implements registry.Store: drop the negative caches and the
// origin backoff, so the next Get probes the origin again.
func (r *Remote) Purge() {
	r.mu.Lock()
	r.neg = make(map[string]time.Time)
	r.down = time.Time{}
	r.fails = 0
	r.mu.Unlock()
	r.lastMu.Lock()
	r.lastKey, r.lastTopo = "", nil
	r.lastMu.Unlock()
}

// Stats implements registry.Store.
func (r *Remote) Stats() []registry.StoreStats {
	return []registry.StoreStats{{
		Tier:   "remote",
		Hits:   r.hits.Load(),
		Misses: r.misses.Load(),
		Errors: r.errors.Load(),
		Kinds: map[string]registry.KindStats{
			registry.KindTopology.String(): {
				Hits:   r.kindHits[0].Load(),
				Misses: r.kindMisses[0].Load(),
			},
			registry.KindPlacement.String(): {
				Hits:   r.kindHits[1].Load(),
				Misses: r.kindMisses[1].Load(),
			},
			registry.KindMapping.String(): {
				Hits:   r.kindHits[2].Load(),
				Misses: r.kindMisses[2].Load(),
			},
		},
	}}
}

// BackoffState is a point-in-time snapshot of the tier's failure-handling
// machinery, exposed for /metrics gauges.
type BackoffState struct {
	// DownUntil is the end of the current origin-level backoff window
	// (zero when the origin is not being backed off).
	DownUntil time.Time
	// ConsecutiveFails counts origin-level failures since the last
	// successful fetch (the backoff exponent).
	ConsecutiveFails int
	// NegativeKeys is the number of per-key negative-cache entries.
	NegativeKeys int
}

// Backoff snapshots the backoff/negative-cache state.
func (r *Remote) Backoff() BackoffState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return BackoffState{
		DownUntil:        r.down,
		ConsecutiveFails: r.fails,
		NegativeKeys:     len(r.neg),
	}
}

// Fetches reports how many upstream requests were actually issued —
// what the singleflight and the negative caches exist to minimize.
func (r *Remote) Fetches() int64 { return r.fetches.Load() }
