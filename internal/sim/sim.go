package sim

import (
	"fmt"
	"sort"

	"repro/internal/mesi"
)

// Sim simulates one machine. It owns a MESI coherence engine, per-core DVFS
// state, a seeded noise source and a virtual clock per thread. All methods
// are deterministic for a fixed (platform, seed, call sequence).
//
// Sim is not safe for concurrent use: MCTOP-ALG is single-threaded by
// design ("using more threads increases variability", Section 3.5), and the
// lock-step protocol is expressed through explicit barriers rather than
// real goroutines.
type Sim struct {
	p   *Platform
	coh *mesi.System

	cores    []coreDVFS
	seed     uint64
	opCtr    uint64
	lineHome map[uint64]int

	// TotalThreadCycles accumulates the virtual cycles consumed by all
	// threads; used to report simulated inference runtimes (Section 3.5).
	TotalThreadCycles int64
}

type coreDVFS struct {
	busy int64 // accumulated busy work toward the frequency ramp
}

// topoAdapter exposes the platform's ground truth as a mesi.Topology.
type topoAdapter struct{ p *Platform }

func (t topoAdapter) NumContexts() int     { return t.p.NumContexts() }
func (t topoAdapter) CoreOf(ctx int) int   { return t.p.CoreOf(ctx) }
func (t topoAdapter) SocketOf(ctx int) int { return t.p.SocketOf(ctx) }

// costAdapter derives the MESI transition costs from the platform.
type costAdapter struct{ s *Sim }

func (c costAdapter) HitCost(op mesi.Op) int64 {
	if op == mesi.Load {
		return c.s.p.L1Lat
	}
	return c.s.p.HitCASLat
}

func (c costAdapter) SameCoreTransfer(mesi.Op) int64 { return c.s.p.SameCoreLat }

func (c costAdapter) SameSocketTransfer(_ mesi.Op, _, fromCore, toCore int) int64 {
	p := c.s.p
	return p.IntraSocketLat + p.intraOffset(fromCore%p.Cores, toCore%p.Cores)
}

func (c costAdapter) CrossSocketTransfer(_ mesi.Op, fromSocket, fromCore, toSocket, toCore int) int64 {
	p := c.s.p
	lc1, lc2 := 0, 0
	if fromCore >= 0 {
		lc1 = fromCore % p.Cores
	}
	if toCore >= 0 {
		lc2 = toCore % p.Cores
	}
	return p.SocketLatency(fromSocket, toSocket) + p.crossOffset(lc1, lc2)
}

func (c costAdapter) MemoryAccess(_ mesi.Op, socket int, line uint64) int64 {
	return c.s.p.MemLat[socket][c.s.homeOf(line)]
}

func (c costAdapter) UpgradeCost(_ mesi.Op, crossSocket bool) int64 {
	p := c.s.p
	if !crossSocket {
		return p.IntraSocketLat
	}
	// Worst cross-socket latency, memoized by Validate (which always runs
	// before the first operation) so the hot coherence path never rescans
	// the link list.
	return p.maxCrossLat
}

// New creates a simulator for the platform with the given noise seed.
func New(p *Platform, seed uint64) (*Sim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		p:        p,
		cores:    make([]coreDVFS, p.NumCores()),
		seed:     seed,
		lineHome: make(map[uint64]int),
	}
	s.coh = mesi.New(topoAdapter{p}, costAdapter{s})
	return s, nil
}

// Platform returns the simulated machine's ground-truth description.
func (s *Sim) Platform() *Platform { return s.p }

// Seed returns the simulator's noise seed, so callers can derive seeds for
// independent forks (see PairSeed).
func (s *Sim) Seed() uint64 { return s.seed }

// PairSeed derives the noise seed of an independent per-pair measurement
// simulator from a base seed and an (x, y) context pair. The derivation is a
// pure function of its inputs, so per-pair forks observe the same noise
// stream no matter how many of them run, in which order, or on how many OS
// threads — the property that lets the parallel MCTOP-ALG measurement phase
// stay byte-identical to the sequential one.
func PairSeed(seed uint64, x, y int) uint64 {
	return splitmix64(splitmix64(seed^(uint64(x)<<32)) ^ uint64(y))
}

// Coherence exposes the underlying MESI engine (used by the lock-contention
// simulator, which shares the machine's coherence state).
func (s *Sim) Coherence() *mesi.System { return s.coh }

// SetLineHome places a cache line's backing memory on a node, the way
// first-touch or explicit NUMA allocation would.
func (s *Sim) SetLineHome(line uint64, node int) {
	if node < 0 || node >= s.p.NumNodes() {
		panic(fmt.Sprintf("sim: node %d out of range", node))
	}
	s.lineHome[line] = node
}

func (s *Sim) homeOf(line uint64) int {
	if n, ok := s.lineHome[line]; ok {
		return n
	}
	return int(line % uint64(s.p.NumNodes()))
}

// splitmix64 is the SplitMix64 mixing function — a tiny, high-quality,
// counter-based PRNG that keeps the simulator deterministic without any
// global state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (s *Sim) rand() uint64 {
	s.opCtr++
	return splitmix64(s.seed ^ (s.opCtr * 0x9E3779B97F4A7C15))
}

// noise returns the measurement jitter for one operation: small symmetric
// jitter plus occasional large positive spikes (the "spurious measurements"
// of Section 3.5: OS background processes, interrupts).
func (s *Sim) noise() int64 {
	r := s.rand()
	amp := s.p.NoiseAmp
	var n int64
	if amp > 0 {
		n = int64(r%uint64(2*amp+1)) - amp
	}
	if s.p.SpuriousRate > 0 {
		if float64(splitmix64(r)%1_000_000)/1_000_000 < s.p.SpuriousRate {
			n += s.p.SpuriousAmp
		}
	}
	return n
}

// freqFactor returns the core's current frequency as a fraction of maximum.
// The core steps through discrete P-states as it accumulates busy cycles.
func (s *Sim) freqFactor(core int) float64 {
	if !s.p.DVFS || s.p.RampCycles <= 0 {
		return 1.0
	}
	states := s.p.DVFSStates
	if states <= 0 {
		states = 16
	}
	dwell := s.p.RampCycles / int64(states)
	if dwell <= 0 {
		dwell = 1
	}
	state := s.cores[core].busy / dwell
	if state >= int64(states) {
		return 1.0
	}
	min := s.p.FreqMinGHz / s.p.FreqMaxGHz
	return min + (1-min)*float64(state)/float64(states)
}

// scale converts a cost expressed in max-frequency cycles into observed
// timestamp-counter cycles at the core's current frequency.
func (s *Sim) scale(cost int64, core int) int64 {
	f := s.freqFactor(core)
	if f >= 1 {
		return cost
	}
	return int64(float64(cost)/f + 0.5)
}

func (s *Sim) burn(core int, units int64) {
	s.cores[core].busy += units
}

// Thread is a simulated software thread pinned to one hardware context. It
// advances its own virtual clock with every operation.
type Thread struct {
	s   *Sim
	ctx int
	now int64
}

// NewThread creates a thread pinned to hardware context ctx.
func (s *Sim) NewThread(ctx int) (*Thread, error) {
	t := &Thread{s: s, ctx: -1}
	if err := t.Pin(ctx); err != nil {
		return nil, err
	}
	return t, nil
}

// Ctx returns the context the thread is currently pinned to.
func (t *Thread) Ctx() int { return t.ctx }

// Now returns the thread's virtual clock in cycles. Harness-only; the
// inference algorithm must use Rdtsc like real code would.
func (t *Thread) Now() int64 { return t.now }

// Pin moves the thread to another hardware context. On DVFS machines the
// target core starts cold (minimum frequency): real cores enter low-power
// states the moment they idle, which is why libmctop re-runs its frequency
// wait after every migration.
func (t *Thread) Pin(ctx int) error {
	if ctx < 0 || ctx >= t.s.p.NumContexts() {
		return fmt.Errorf("sim: cannot pin to context %d on %s (%d contexts)",
			ctx, t.s.p.Name, t.s.p.NumContexts())
	}
	if ctx == t.ctx {
		return nil
	}
	t.ctx = ctx
	if t.s.p.DVFS {
		t.s.cores[t.s.p.CoreOf(ctx)].busy = 0
	}
	t.advance(200) // migration cost
	return nil
}

func (t *Thread) advance(cycles int64) {
	t.now += cycles
	t.s.TotalThreadCycles += cycles
}

// Rdtsc returns the thread's timestamp counter and pays the read overhead,
// like the rdtsc instruction (Section 3.5: "reading the timestamp counter
// has a non-negligible latency which must be deducted").
func (t *Thread) Rdtsc() int64 {
	v := t.now
	core := t.s.p.CoreOf(t.ctx)
	t.advance(t.s.scale(t.s.p.RdtscOverhead, core))
	t.s.burn(core, t.s.p.RdtscOverhead)
	return v
}

func (t *Thread) access(line uint64, op mesi.Op) {
	core := t.s.p.CoreOf(t.ctx)
	base := t.s.coh.Access(t.ctx, line, op)
	cost := t.s.scale(base, core) + t.s.noise()
	if cost < 1 {
		cost = 1
	}
	t.advance(cost)
	t.s.burn(core, base)
}

// CAS performs an atomic compare-and-swap on a shared cache line, the probe
// operation of Figure 5 (full fence, brings the line to Modified).
func (t *Thread) CAS(line uint64) { t.access(line, mesi.CAS) }

// Load performs a plain read of a shared cache line.
func (t *Thread) Load(line uint64) { t.access(line, mesi.Load) }

// Store performs a plain write of a shared cache line.
func (t *Thread) Store(line uint64) { t.access(line, mesi.Store) }

// SpinWork busy-spins for the given number of work units (cycles at max
// frequency). Under DVFS the observed duration shrinks as the core ramps.
func (t *Thread) SpinWork(units int64) {
	core := t.s.p.CoreOf(t.ctx)
	t.advance(t.s.scale(units, core))
	t.s.burn(core, units)
}

// MemRandomAccess performs n dependent cache-missing loads (a random
// linked-list traversal, as the memory-latency plugin allocates) against
// the given node and returns the consumed cycles.
func (t *Thread) MemRandomAccess(node, n int) int64 {
	if node < 0 || node >= t.s.p.NumNodes() {
		panic(fmt.Sprintf("sim: node %d out of range", node))
	}
	core := t.s.p.CoreOf(t.ctx)
	sock := t.s.p.SocketOf(t.ctx)
	var total int64
	for i := 0; i < n; i++ {
		c := t.s.scale(t.s.p.MemLat[sock][node], core) + t.s.noise()
		if c < 1 {
			c = 1
		}
		total += c
	}
	t.advance(total)
	t.s.burn(core, total)
	return total
}

// MemSequentialSweep streams the given number of bytes from a node (the
// memory-bandwidth plugin's access pattern) and returns the consumed
// cycles.
func (t *Thread) MemSequentialSweep(node int, bytes int64) int64 {
	if node < 0 || node >= t.s.p.NumNodes() {
		panic(fmt.Sprintf("sim: node %d out of range", node))
	}
	p := t.s.p
	sock := p.SocketOf(t.ctx)
	bw := p.MemBW[sock][node]
	if p.CoreStreamBW > 0 && p.CoreStreamBW < bw {
		bw = p.CoreStreamBW // one core cannot saturate the node
	}
	cycles := int64(float64(bytes) * p.FreqMaxGHz / bw)
	core := p.CoreOf(t.ctx)
	cycles = t.s.scale(cycles, core)
	t.advance(cycles)
	t.s.burn(core, cycles)
	return cycles
}

// CacheWorkingSetLoads performs n dependent loads over a working set of the
// given size, returning the consumed cycles. The per-load latency steps
// through L1/L2/LLC/memory as the working set outgrows each level — the
// signal the cache plugin detects.
func (t *Thread) CacheWorkingSetLoads(workingSet int64, n int) int64 {
	p := t.s.p
	var lat int64
	switch {
	case workingSet <= p.L1Size:
		lat = p.L1Lat
	case workingSet <= p.L2Size:
		lat = p.L2Lat
	case workingSet <= p.LLCSize:
		lat = p.LLCLat
	default:
		lat = p.MemLat[p.SocketOf(t.ctx)][p.LocalNode(p.SocketOf(t.ctx))]
	}
	core := p.CoreOf(t.ctx)
	var total int64
	for i := 0; i < n; i++ {
		c := t.s.scale(lat, core) + t.s.noise()/2
		if c < 1 {
			c = 1
		}
		total += c
	}
	t.advance(total)
	t.s.burn(core, total)
	return total
}

// Barrier synchronizes threads at a spin-based rendezvous: every clock
// advances to the maximum plus a small constant. Waiting threads keep their
// cores busy (libmctop uses spin barriers precisely to keep DVFS ramping).
func (s *Sim) Barrier(ts ...*Thread) {
	const barrierCost = 60
	var max int64
	for _, t := range ts {
		if t.now > max {
			max = t.now
		}
	}
	for _, t := range ts {
		core := s.p.CoreOf(t.ctx)
		wait := max - t.now
		s.burn(core, wait+barrierCost)
		t.advance(wait + s.scale(barrierCost, core))
	}
}

// Barrier2 is Barrier for exactly two threads without the variadic slice —
// the measurement loop calls it twice per repetition, and the allocation
// was the dominant garbage source of large-platform inference.
func (s *Sim) Barrier2(t1, t2 *Thread) {
	const barrierCost = 60
	max := t1.now
	if t2.now > max {
		max = t2.now
	}
	for _, t := range [...]*Thread{t1, t2} {
		core := s.p.CoreOf(t.ctx)
		wait := max - t.now
		s.burn(core, wait+barrierCost)
		t.advance(wait + s.scale(barrierCost, core))
	}
}

// SpinSolo runs a calibrated spin loop on the thread alone and returns its
// observed duration in timestamp cycles — the building block of both the
// DVFS wait and SMT detection (Section 3.5).
func (s *Sim) SpinSolo(t *Thread, units int64) int64 {
	core := s.p.CoreOf(t.ctx)
	d := s.scale(units, core) + s.noise()/2
	if d < 1 {
		d = 1
	}
	t.advance(d)
	s.burn(core, units)
	return d
}

// SpinTogether runs the same calibrated spin loop on both threads
// concurrently and returns the two observed durations. If the threads share
// a core, SMT resource sharing dilates both (the paper's SMT detector).
func (s *Sim) SpinTogether(t1, t2 *Thread, units int64) (int64, int64) {
	s.Barrier(t1, t2)
	sameCore := s.p.CoreOf(t1.ctx) == s.p.CoreOf(t2.ctx) && t1.ctx != t2.ctx
	run := func(t *Thread) int64 {
		core := s.p.CoreOf(t.ctx)
		d := s.scale(units, core)
		if sameCore {
			d = int64(float64(d) * s.p.SMTSlowdown)
		}
		d += s.noise() / 2
		if d < 1 {
			d = 1
		}
		t.advance(d)
		s.burn(core, units)
		return d
	}
	return run(t1), run(t2)
}

// StreamBandwidth returns the aggregate bandwidth (GB/s) the given hardware
// contexts achieve streaming from one node concurrently: per-core stream
// limits, per-socket paths (local bus or interconnect link) and the node's
// own bandwidth all cap the total.
func (s *Sim) StreamBandwidth(ctxs []int, node int) float64 {
	if node < 0 || node >= s.p.NumNodes() {
		panic(fmt.Sprintf("sim: node %d out of range", node))
	}
	coresBySocket := make(map[int]map[int]bool)
	for _, c := range ctxs {
		sock := s.p.SocketOf(c)
		if coresBySocket[sock] == nil {
			coresBySocket[sock] = make(map[int]bool)
		}
		coresBySocket[sock][s.p.CoreOf(c)] = true
	}
	socks := make([]int, 0, len(coresBySocket))
	for sock := range coresBySocket {
		socks = append(socks, sock)
	}
	sort.Ints(socks) // float addition is order-sensitive; keep the sum stable
	var total float64
	for _, sock := range socks {
		demand := float64(len(coresBySocket[sock])) * s.p.CoreStreamBW
		path := s.p.MemBW[sock][node]
		if demand > path {
			demand = path
		}
		total += demand
	}
	owner := s.p.NodeOwner(node)
	if owner >= 0 {
		if cap := s.p.MemBW[owner][node]; total > cap {
			total = cap
		}
	}
	return total
}

// SimulatedSeconds converts virtual cycles to seconds of machine time at
// the platform's maximum frequency (the TSC is invariant).
func (s *Sim) SimulatedSeconds(cycles int64) float64 {
	return float64(cycles) / (s.p.FreqMaxGHz * 1e9)
}

// PowerEstimate returns per-socket package power (Watts) for a set of
// active hardware contexts, plus the total, optionally including DRAM.
// This is the model behind Figure 7's "Max pow" lines and the POWER policy.
func (p *Platform) PowerEstimate(ctxs []int, withDRAM bool) (perSocket []float64, total float64) {
	perSocket = make([]float64, p.Sockets)
	if !p.Power.Available() {
		return perSocket, 0
	}
	ctxPerCore := make(map[int]int)
	socketActive := make([]bool, p.Sockets)
	for _, c := range ctxs {
		ctxPerCore[p.CoreOf(c)]++
		socketActive[p.SocketOf(c)] = true
	}
	for s := 0; s < p.Sockets; s++ {
		if socketActive[s] {
			perSocket[s] = p.Power.PkgBase
		}
	}
	for core, n := range ctxPerCore {
		sock := core / p.Cores
		perSocket[sock] += p.Power.FirstCtxCore + float64(n-1)*p.Power.ExtraCtx
	}
	for s := 0; s < p.Sockets; s++ {
		if withDRAM && socketActive[s] {
			perSocket[s] += p.Power.DRAMMax
		}
		total += perSocket[s]
	}
	return perSocket, total
}
