// Package sim provides a deterministic simulator of cache-coherent
// multi-core machines.
//
// The MCTOP paper measures five physical platforms (Intel Ivy Bridge,
// Westmere and Haswell Xeons, an 8-socket AMD Opteron, and an Oracle SPARC
// T4-4). This package encodes those machines as parameter sets — socket,
// core and SMT structure, interconnect graph, per-level communication
// latencies, per-node memory latencies and bandwidths, DVFS behaviour and a
// power model — and simulates the primitives MCTOP-ALG needs: pinned
// threads with virtual cycle clocks, rdtsc, CAS on shared cache lines
// (backed by the MESI engine of internal/mesi), spin loops, and barriers.
//
// The simulator is the paper-mandated substitution for hardware we do not
// have: all randomness is seeded, so every experiment in this repository is
// exactly reproducible.
package sim

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/mctoperr"
)

// Numbering describes how an operating system enumerates hardware contexts.
type Numbering int

const (
	// NumberingIntelHalves mirrors Linux on Intel machines: context i and
	// i + (#sockets * #cores) are the two SMT siblings of core i. This is
	// the numbering visible in the paper's Figure 6 latency table, where
	// contexts 0 and 20 share a core on the 40-context Ivy.
	NumberingIntelHalves Numbering = iota
	// NumberingConsecutive mirrors Solaris on SPARC: the T SMT contexts of
	// a core are numbered consecutively (Figure 3: contexts 0..7 on core 0).
	NumberingConsecutive
)

func (n Numbering) String() string {
	switch n {
	case NumberingIntelHalves:
		return "intel-halves"
	case NumberingConsecutive:
		return "consecutive"
	}
	return fmt.Sprintf("Numbering(%d)", int(n))
}

// Link is a direct interconnect link between two sockets.
type Link struct {
	A, B int
	// Lat is the context-to-context communication latency over this link in
	// cycles (what a CAS ping-pong between the two sockets observes).
	Lat int64
	// BW is the data bandwidth of the link in GB/s.
	BW float64
}

// Power holds the platform's power model (Watts). The model matches what
// libmctop derives from Intel RAPL: a per-socket package base cost, a cost
// for waking the first context of a core, a smaller cost for each extra SMT
// context, and a per-socket DRAM cost under memory-intensive load.
// A zero Power means the platform exposes no energy interface (the paper's
// POWER policy is Intel-only).
type Power struct {
	IdleMachine  float64 // whole machine, nothing running
	PkgBase      float64 // per socket with >= 1 active context
	FirstCtxCore float64 // first active context of a core
	ExtraCtx     float64 // each additional SMT context of an active core
	DRAMMax      float64 // per-socket DRAM power under full memory load
}

// Available reports whether the platform exposes power measurements.
func (p Power) Available() bool { return p.PkgBase > 0 }

// Platform is the ground-truth description of a simulated machine. It
// plays the role of the physical processor: MCTOP-ALG never reads these
// fields — it only observes latencies through the simulator — and the test
// suite then validates the inferred topology against this ground truth.
type Platform struct {
	Name    string
	Sockets int
	Cores   int // per socket
	SMT     int // hardware contexts per core (1 = no SMT)

	Numbering Numbering

	// Frequency and DVFS.
	FreqMinGHz, FreqMaxGHz float64
	DVFS                   bool
	// RampCycles is how many busy cycles a cold core needs to reach its
	// maximum frequency. This dominates inference time on DVFS machines
	// (Section 3.5: 96 s on Westmere vs 3 s on Ivy).
	RampCycles int64
	// DVFSStates is the number of discrete P-states between minimum and
	// maximum frequency. Real cores step through P-states rather than
	// ramping continuously; discreteness is what makes the spin-loop
	// stability test sound (a slow continuous drift would look stable
	// before reaching the maximum). 0 means 16.
	DVFSStates int

	RdtscOverhead int64 // cycles consumed by one timestamp read

	// Cache hierarchy (per core: L1/L2; per socket: LLC). Sizes in bytes.
	L1Size, L2Size, LLCSize int64
	L1Lat, L2Lat, LLCLat    int64
	HitCASLat               int64 // CAS hit on an owned line

	// Communication latencies (cycles, at max frequency).
	SameCoreLat     int64 // between SMT siblings of one core
	IntraSocketLat  int64 // between cores of one socket (band midpoint)
	IntraSocketBand int64 // deterministic on-die distance spread (+/-)
	CrossSocketBand int64 // deterministic spread around link latencies
	TwoHopLat       int64 // for socket pairs with no direct link (level 4)

	Links []Link

	// LocalNodeOf maps each socket to its directly attached memory node.
	// nil means identity. (On the paper's Westmere the local node of socket
	// 0 is node 4 — Figure 2a.)
	LocalNodeOf []int
	// OSNodeOf is the *operating system's* view of the socket-to-node
	// mapping. nil means it equals LocalNodeOf. On the paper's Opteron the
	// OS view is wrong (footnote 1) while MCTOP-ALG infers the truth.
	OSNodeOf []int

	// Memory system: MemLat[s][n] is the load latency (cycles) from a core
	// of socket s to node n; MemBW[s][n] the achievable bandwidth (GB/s).
	MemLat [][]int64
	MemBW  [][]float64
	// CoreStreamBW is the bandwidth one streaming core can draw (GB/s);
	// saturating a node takes ceil(nodeBW/CoreStreamBW) cores.
	CoreStreamBW float64

	Power Power

	// Noise model.
	NoiseAmp     int64   // per-measurement jitter amplitude (cycles)
	SpuriousRate float64 // probability of a large outlier per measurement
	SpuriousAmp  int64   // outlier magnitude (cycles)

	// SMTSlowdown is the factor by which a spin loop slows down when the
	// core's sibling context is busy (used by SMT detection, Section 3.5).
	SMTSlowdown float64

	// SocketLatMatrix and SocketHopMatrix, when non-nil, describe an
	// interconnect of arbitrary diameter: entry [a][b] is the ground-truth
	// cross-socket latency (respectively hop count) between sockets a and b.
	// The five golden platforms leave them nil and use Links + TwoHopLat
	// (diameter <= 2); the synthetic generator (Generate) fills them for
	// mesh/ring/circulant interconnects whose diameter routinely exceeds 2.
	SocketLatMatrix [][]int64
	SocketHopMatrix [][]int

	// validateOnce/validateErr memoize the first Validate so per-fork
	// simulators do not re-pay the O(Sockets^2) consistency scan. Top-level
	// sims may be built concurrently from one shared Platform (the parallel
	// measurement pool does), so the memo must be a real Once, not a flag.
	validateOnce sync.Once
	validateErr  error

	// maxCrossLat memoizes the worst cross-socket latency (set by Validate)
	// so MESI upgrade costs do not rescan Links per operation.
	maxCrossLat int64
}

// NumContexts returns the total number of hardware contexts.
func (p *Platform) NumContexts() int { return p.Sockets * p.Cores * p.SMT }

// NumCores returns the total number of physical cores.
func (p *Platform) NumCores() int { return p.Sockets * p.Cores }

// NumNodes returns the number of memory nodes (one per socket on all
// modeled machines).
func (p *Platform) NumNodes() int { return p.Sockets }

// CoreOf returns the global core id (0..NumCores-1) of a hardware context.
func (p *Platform) CoreOf(ctx int) int {
	switch p.Numbering {
	case NumberingIntelHalves:
		return ctx % p.NumCores()
	case NumberingConsecutive:
		return ctx / p.SMT
	}
	panic("sim: unknown numbering")
}

// SMTIndexOf returns which SMT context of its core ctx is (0-based).
func (p *Platform) SMTIndexOf(ctx int) int {
	switch p.Numbering {
	case NumberingIntelHalves:
		return ctx / p.NumCores()
	case NumberingConsecutive:
		return ctx % p.SMT
	}
	panic("sim: unknown numbering")
}

// SocketOf returns the socket id of a hardware context.
func (p *Platform) SocketOf(ctx int) int { return p.CoreOf(ctx) / p.Cores }

// ContextOf is the inverse of (CoreOf, SMTIndexOf): it returns the hardware
// context id for a global core and SMT index.
func (p *Platform) ContextOf(core, smt int) int {
	switch p.Numbering {
	case NumberingIntelHalves:
		return smt*p.NumCores() + core
	case NumberingConsecutive:
		return core*p.SMT + smt
	}
	panic("sim: unknown numbering")
}

// LocalNode returns the memory node attached to a socket (ground truth).
func (p *Platform) LocalNode(socket int) int {
	if p.LocalNodeOf == nil {
		return socket
	}
	return p.LocalNodeOf[socket]
}

// OSLocalNode returns the node the operating system *claims* is local to a
// socket — possibly wrong (Opteron).
func (p *Platform) OSLocalNode(socket int) int {
	if p.OSNodeOf == nil {
		return p.LocalNode(socket)
	}
	return p.OSNodeOf[socket]
}

// NodeOwner returns the socket a memory node is attached to.
func (p *Platform) NodeOwner(node int) int {
	for s := 0; s < p.Sockets; s++ {
		if p.LocalNode(s) == node {
			return s
		}
	}
	return -1
}

// DirectLink returns the direct link between two sockets, if any.
func (p *Platform) DirectLink(s1, s2 int) (Link, bool) {
	for _, l := range p.Links {
		if (l.A == s1 && l.B == s2) || (l.A == s2 && l.B == s1) {
			return l, true
		}
	}
	return Link{}, false
}

// SocketDistance returns the number of interconnect hops between sockets
// (0 for the same socket, 1 for a direct link, 2 otherwise on the golden
// platforms, whose diameter is <= 2; generated platforms carry an explicit
// hop matrix and may be arbitrarily deep).
func (p *Platform) SocketDistance(s1, s2 int) int {
	if s1 == s2 {
		return 0
	}
	if p.SocketHopMatrix != nil {
		return p.SocketHopMatrix[s1][s2]
	}
	if _, ok := p.DirectLink(s1, s2); ok {
		return 1
	}
	return 2
}

// SocketLatency is the ground-truth context-to-context communication
// latency between (cores of) two sockets, before per-pair spread.
func (p *Platform) SocketLatency(s1, s2 int) int64 {
	if s1 == s2 {
		return p.IntraSocketLat
	}
	if p.SocketLatMatrix != nil {
		return p.SocketLatMatrix[s1][s2]
	}
	switch p.SocketDistance(s1, s2) {
	case 1:
		l, _ := p.DirectLink(s1, s2)
		return l.Lat
	default:
		return p.TwoHopLat
	}
}

// intraOffset is the deterministic on-die distance component of the
// intra-socket latency between two local core indices: cores far apart on
// the ring/mesh communicate slightly slower, cores close together slightly
// faster, spanning [-band, +band]. This reproduces the structured variation
// visible inside the gray blocks of the paper's Figure 6 heatmap.
func (p *Platform) intraOffset(c1, c2 int) int64 {
	if c1 == c2 {
		return 0
	}
	slots := p.Cores/2 - 1
	if slots <= 0 || p.IntraSocketBand == 0 {
		return 0
	}
	d := c1 - c2
	if d < 0 {
		d = -d
	}
	if rd := p.Cores - d; rd < d {
		d = rd // ring distance
	}
	// d in [1, Cores/2] -> offset in [-band, +band].
	return p.IntraSocketBand * int64(2*(d-1)-slots) / int64(slots)
}

// crossOffset is the deterministic spread of cross-socket latencies for a
// pair of local core indices.
func (p *Platform) crossOffset(c1, c2 int) int64 {
	if p.CrossSocketBand == 0 {
		return 0
	}
	span := 2 * p.CrossSocketBand
	step := span / 4
	if step == 0 {
		step = 1
	}
	return int64((c1+c2)%5)*step - p.CrossSocketBand
}

// PairLatency returns the ground-truth communication latency between two
// hardware contexts — the value an ideal, noise-free measurement converges
// to. It is the reference used by tests to validate MCTOP-ALG.
func (p *Platform) PairLatency(x, y int) int64 {
	if x == y {
		return 0
	}
	cx, cy := p.CoreOf(x), p.CoreOf(y)
	if cx == cy {
		return p.SameCoreLat
	}
	sx, sy := p.SocketOf(x), p.SocketOf(y)
	lcx, lcy := cx%p.Cores, cy%p.Cores
	if sx == sy {
		return p.IntraSocketLat + p.intraOffset(lcx, lcy)
	}
	return p.SocketLatency(sx, sy) + p.crossOffset(lcx, lcy)
}

// Validate checks the internal consistency of a platform definition. The
// first run is memoized (verdict included): simulators are forked once per
// measured pair (hundreds of thousands of times on large platforms), and
// each fork shares the already-validated Platform of its parent. A mutated
// Platform needs a fresh copy to be re-validated.
func (p *Platform) Validate() error {
	p.validateOnce.Do(func() { p.validateErr = p.validate() })
	return p.validateErr
}

func (p *Platform) validate() error {
	if p.Sockets < 1 || p.Cores < 1 || p.SMT < 1 {
		return fmt.Errorf("sim: %s: non-positive dimensions %dx%dx%d", p.Name, p.Sockets, p.Cores, p.SMT)
	}
	if p.FreqMaxGHz <= 0 || p.FreqMinGHz <= 0 || p.FreqMinGHz > p.FreqMaxGHz {
		return fmt.Errorf("sim: %s: bad frequency range [%g, %g]", p.Name, p.FreqMinGHz, p.FreqMaxGHz)
	}
	if p.SMT > 1 && p.SameCoreLat <= 0 {
		return fmt.Errorf("sim: %s: SMT machine without SameCoreLat", p.Name)
	}
	if p.Sockets > 1 && len(p.Links) == 0 {
		return fmt.Errorf("sim: %s: multi-socket machine without links", p.Name)
	}
	for _, l := range p.Links {
		if l.A < 0 || l.A >= p.Sockets || l.B < 0 || l.B >= p.Sockets || l.A == l.B {
			return fmt.Errorf("sim: %s: bad link %d-%d", p.Name, l.A, l.B)
		}
		if l.Lat <= p.IntraSocketLat {
			return fmt.Errorf("sim: %s: link %d-%d latency %d <= intra-socket %d",
				p.Name, l.A, l.B, l.Lat, p.IntraSocketLat)
		}
	}
	if (p.SocketLatMatrix == nil) != (p.SocketHopMatrix == nil) {
		return fmt.Errorf("sim: %s: SocketLatMatrix and SocketHopMatrix must be set together", p.Name)
	}
	if p.SocketLatMatrix != nil {
		// Explicit interconnect matrices: square, symmetric, zero diagonal,
		// cross latencies strictly above the intra-socket level, hop counts
		// consistent with latencies being nonzero.
		if len(p.SocketLatMatrix) != p.Sockets || len(p.SocketHopMatrix) != p.Sockets {
			return fmt.Errorf("sim: %s: socket matrices must be %d x %d", p.Name, p.Sockets, p.Sockets)
		}
		for a := 0; a < p.Sockets; a++ {
			if len(p.SocketLatMatrix[a]) != p.Sockets || len(p.SocketHopMatrix[a]) != p.Sockets {
				return fmt.Errorf("sim: %s: socket matrix row %d has wrong width", p.Name, a)
			}
			if p.SocketLatMatrix[a][a] != 0 || p.SocketHopMatrix[a][a] != 0 {
				return fmt.Errorf("sim: %s: socket matrix diagonal must be zero (socket %d)", p.Name, a)
			}
			for b := 0; b < p.Sockets; b++ {
				if a == b {
					continue
				}
				lat, hops := p.SocketLatMatrix[a][b], p.SocketHopMatrix[a][b]
				if lat != p.SocketLatMatrix[b][a] || hops != p.SocketHopMatrix[b][a] {
					return fmt.Errorf("sim: %s: socket matrices not symmetric at (%d,%d)", p.Name, a, b)
				}
				if hops < 1 {
					return fmt.Errorf("sim: %s: sockets %d and %d are disconnected", p.Name, a, b)
				}
				if lat <= p.IntraSocketLat {
					return fmt.Errorf("sim: %s: cross latency %d between sockets %d and %d <= intra-socket %d",
						p.Name, lat, a, b, p.IntraSocketLat)
				}
				if lat > p.maxCrossLat {
					p.maxCrossLat = lat
				}
			}
		}
	} else {
		// Interconnect diameter must be <= 2 (the golden machines use a flat
		// "level 4" two-hop latency).
		needTwoHop := false
		for a := 0; a < p.Sockets; a++ {
			for b := a + 1; b < p.Sockets; b++ {
				if p.SocketDistance(a, b) == 2 {
					needTwoHop = true
				}
			}
		}
		if needTwoHop && p.TwoHopLat == 0 {
			return fmt.Errorf("sim: %s: disconnected socket pairs but no TwoHopLat", p.Name)
		}
		for _, l := range p.Links {
			if l.Lat > p.maxCrossLat {
				p.maxCrossLat = l.Lat
			}
		}
		if p.TwoHopLat > p.maxCrossLat {
			p.maxCrossLat = p.TwoHopLat
		}
	}
	if len(p.MemLat) != p.Sockets || len(p.MemBW) != p.Sockets {
		return fmt.Errorf("sim: %s: memory matrices must be %d x %d", p.Name, p.Sockets, p.NumNodes())
	}
	for s := 0; s < p.Sockets; s++ {
		if len(p.MemLat[s]) != p.NumNodes() || len(p.MemBW[s]) != p.NumNodes() {
			return fmt.Errorf("sim: %s: memory row %d has wrong width", p.Name, s)
		}
		for n := 0; n < p.NumNodes(); n++ {
			if p.MemLat[s][n] <= 0 || p.MemBW[s][n] <= 0 {
				return fmt.Errorf("sim: %s: non-positive memory figures for socket %d node %d", p.Name, s, n)
			}
		}
	}
	if p.LocalNodeOf != nil {
		seen := make([]bool, p.Sockets)
		for s, n := range p.LocalNodeOf {
			if n < 0 || n >= p.NumNodes() || seen[n] {
				return fmt.Errorf("sim: %s: LocalNodeOf is not a permutation (socket %d -> %d)", p.Name, s, n)
			}
			seen[n] = true
		}
	}
	// The local node must be the lowest-latency node for every socket —
	// that is how MCTOP-ALG assigns nodes to sockets.
	for s := 0; s < p.Sockets; s++ {
		local := p.LocalNode(s)
		for n := 0; n < p.NumNodes(); n++ {
			if n != local && p.MemLat[s][n] <= p.MemLat[s][local] {
				return fmt.Errorf("sim: %s: node %d not slower than local node %d from socket %d",
					p.Name, n, local, s)
			}
		}
	}
	return nil
}

// memMatrices builds MemLat/MemBW from hop distances, with small
// deterministic per-node variation so graphs look like the paper's.
func memMatrices(p *Platform, localLat, hop1Lat, hop2Lat int64, localBW, hop1BW, hop2BW float64) {
	n := p.NumNodes()
	p.MemLat = make([][]int64, p.Sockets)
	p.MemBW = make([][]float64, p.Sockets)
	for s := 0; s < p.Sockets; s++ {
		p.MemLat[s] = make([]int64, n)
		p.MemBW[s] = make([]float64, n)
		for node := 0; node < n; node++ {
			owner := p.NodeOwner(node)
			vary := int64((s+3*node)%5) - 2 // deterministic, in [-2, 2]
			switch p.SocketDistance(s, owner) {
			case 0:
				p.MemLat[s][node] = localLat
				p.MemBW[s][node] = localBW
			case 1:
				p.MemLat[s][node] = hop1Lat + 2*vary
				p.MemBW[s][node] = hop1BW + 0.3*float64(vary)
			default:
				p.MemLat[s][node] = hop2Lat + 2*vary
				p.MemBW[s][node] = hop2BW + 0.3*float64(vary)
			}
		}
	}
}

func defaultNoise(p *Platform) {
	p.NoiseAmp = 2
	p.SpuriousRate = 0.004
	p.SpuriousAmp = 1800
	p.SMTSlowdown = 1.9
}

// Ivy models the paper's 2-socket, 20-core, 40-context Intel Xeon E5-2680
// v2 (Ivy Bridge), 1.2-2.8 GHz: SMT latency 28 cycles, intra-socket ~112,
// cross-socket ~308 (Figure 6), cache latencies 4/12/42 cycles.
func Ivy() *Platform {
	p := &Platform{
		Name: "Ivy", Sockets: 2, Cores: 10, SMT: 2,
		Numbering:  NumberingIntelHalves,
		FreqMinGHz: 1.2, FreqMaxGHz: 2.8, DVFS: true, RampCycles: 3_600_000,
		RdtscOverhead: 24,
		L1Size:        32 << 10, L2Size: 256 << 10, LLCSize: 25 << 20,
		L1Lat: 4, L2Lat: 12, LLCLat: 42, HitCASLat: 12,
		SameCoreLat: 28, IntraSocketLat: 112, IntraSocketBand: 16, CrossSocketBand: 8,
		Links:        []Link{{A: 0, B: 1, Lat: 308, BW: 16.0}},
		CoreStreamBW: 4.0,
		Power: Power{
			IdleMachine: 40, PkgBase: 20.1, FirstCtxCore: 3.2, ExtraCtx: 1.46, DRAMMax: 45.25,
		},
	}
	// Asymmetric DIMM population: socket 0 reaches 15.9 GB/s locally,
	// socket 1 only 8.37 GB/s. This reproduces the placement report of the
	// paper's Figure 7 (bandwidth proportions 0.655/0.345, aggregate
	// 24.28 GB/s).
	p.MemLat = [][]int64{{280, 430}, {430, 280}}
	p.MemBW = [][]float64{{15.9, 7.5}, {12.0, 8.37}}
	defaultNoise(p)
	return p
}

// Westmere models the paper's 8-socket, 80-core, 160-context Intel Xeon
// E7-8867L (Westmere), 1.1-2.1 GHz: SMT 28, intra-socket 116, direct
// cross-socket 341, two-hop 458 cycles (Figure 2). The interconnect is a
// degree-3 Möbius ladder (diameter 2), and the local node of socket s is
// node (s+4) mod 8 — on the paper's machine socket 0's local node is node 4.
func Westmere() *Platform {
	p := &Platform{
		Name: "Westmere", Sockets: 8, Cores: 10, SMT: 2,
		Numbering:  NumberingIntelHalves,
		FreqMinGHz: 1.1, FreqMaxGHz: 2.1, DVFS: true, RampCycles: 5_600_000,
		RdtscOverhead: 28,
		L1Size:        32 << 10, L2Size: 256 << 10, LLCSize: 30 << 20,
		L1Lat: 4, L2Lat: 13, LLCLat: 46, HitCASLat: 14,
		SameCoreLat: 28, IntraSocketLat: 116, IntraSocketBand: 16, CrossSocketBand: 8,
		TwoHopLat:    458,
		CoreStreamBW: 3.5,
	}
	for s := 0; s < 8; s++ {
		p.Links = append(p.Links, Link{A: s, B: (s + 1) % 8, Lat: 341, BW: 10.9})
	}
	for s := 0; s < 4; s++ {
		p.Links = append(p.Links, Link{A: s, B: s + 4, Lat: 341, BW: 10.9})
	}
	p.LocalNodeOf = []int{4, 5, 6, 7, 0, 1, 2, 3}
	memMatrices(p, 369, 497, 600, 13.1, 9.5, 5.5)
	defaultNoise(p)
	return p
}

// Haswell models the paper's 4-socket, 48-core, 96-context Intel Xeon
// E7-4830 v3 (Haswell), 1.2-2.7 GHz, fully connected QPI. The paper shows
// no graph for it (space); latencies here follow the same structure as the
// other Intel machines.
func Haswell() *Platform {
	p := &Platform{
		Name: "Haswell", Sockets: 4, Cores: 12, SMT: 2,
		Numbering:  NumberingIntelHalves,
		FreqMinGHz: 1.2, FreqMaxGHz: 2.7, DVFS: true, RampCycles: 4_500_000,
		RdtscOverhead: 24,
		L1Size:        32 << 10, L2Size: 256 << 10, LLCSize: 30 << 20,
		L1Lat: 4, L2Lat: 12, LLCLat: 44, HitCASLat: 12,
		SameCoreLat: 28, IntraSocketLat: 120, IntraSocketBand: 16, CrossSocketBand: 8,
		CoreStreamBW: 4.5,
		Power: Power{
			IdleMachine: 75, PkgBase: 25.0, FirstCtxCore: 3.0, ExtraCtx: 1.3, DRAMMax: 50.0,
		},
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			p.Links = append(p.Links, Link{A: a, B: b, Lat: 330, BW: 12.0})
		}
	}
	memMatrices(p, 310, 460, 0, 19.0, 10.5, 0)
	defaultNoise(p)
	return p
}

// Opteron models the paper's 8-socket (4 MCM x 2 dies), 48-core AMD Opteron
// 6172 at a fixed 2.1 GHz, no SMT: intra-socket 117 cycles, 197 to the MCM
// sibling die, 217 over a direct HT link, ~300 for two hops (Figure 1).
// Even dies form a clique, odd dies form a clique, and each die links to
// its MCM sibling. The OS's socket-to-node mapping is deliberately wrong
// (rotated by one) to reproduce footnote 1 of the paper: MCTOP-ALG infers
// the correct mapping, the OS does not.
func Opteron() *Platform {
	p := &Platform{
		Name: "Opteron", Sockets: 8, Cores: 6, SMT: 1,
		Numbering:  NumberingConsecutive,
		FreqMinGHz: 2.1, FreqMaxGHz: 2.1, DVFS: false, RampCycles: 0,
		RdtscOverhead: 30,
		L1Size:        64 << 10, L2Size: 512 << 10, LLCSize: 5 << 20,
		L1Lat: 3, L2Lat: 14, LLCLat: 40, HitCASLat: 14,
		SameCoreLat: 0, IntraSocketLat: 117, IntraSocketBand: 8, CrossSocketBand: 3,
		TwoHopLat:    300,
		CoreStreamBW: 2.8,
	}
	for m := 0; m < 4; m++ {
		p.Links = append(p.Links, Link{A: 2 * m, B: 2*m + 1, Lat: 197, BW: 5.3})
	}
	evens := []int{0, 2, 4, 6}
	odds := []int{1, 3, 5, 7}
	for i := 0; i < len(evens); i++ {
		for j := i + 1; j < len(evens); j++ {
			p.Links = append(p.Links, Link{A: evens[i], B: evens[j], Lat: 217, BW: 2.9})
			p.Links = append(p.Links, Link{A: odds[i], B: odds[j], Lat: 217, BW: 2.9})
		}
	}
	memMatrices(p, 143, 262, 343, 10.9, 2.9, 2.0)
	// The MCM-sibling node is reached over the fast 197-cycle link: closer
	// and faster than generic one-hop nodes (Figure 1a: node 1 at 247
	// cycles, 5.3 GB/s from socket 0).
	for s := 0; s < 8; s++ {
		sib := s ^ 1
		p.MemLat[s][sib] = 247
		p.MemBW[s][sib] = 5.3
	}
	p.OSNodeOf = []int{1, 2, 3, 4, 5, 6, 7, 0} // wrong, on purpose
	defaultNoise(p)
	p.SpuriousRate = 0.002 // no SMT: fewer background-process collisions
	return p
}

// SPARC models the paper's Oracle SPARC T4-4: 4 sockets x 8 cores x 8
// hardware contexts at 3.0 GHz, fully connected. Same-core latency is 101
// cycles (Figure 3), intra-socket 207, local memory at 479 cycles and
// 28.2 GB/s, remote at ~685 cycles and ~15.2 GB/s. The paper shows no
// cross-socket context latency for this machine; 660 cycles is our
// synthetic choice, consistent with the memory figures.
func SPARC() *Platform {
	p := &Platform{
		Name: "SPARC", Sockets: 4, Cores: 8, SMT: 8,
		Numbering:  NumberingConsecutive,
		FreqMinGHz: 3.0, FreqMaxGHz: 3.0, DVFS: false, RampCycles: 0,
		RdtscOverhead: 34,
		L1Size:        16 << 10, L2Size: 256 << 10, LLCSize: 4 << 20,
		L1Lat: 5, L2Lat: 18, LLCLat: 60, HitCASLat: 20,
		SameCoreLat: 101, IntraSocketLat: 207, IntraSocketBand: 12, CrossSocketBand: 8,
		CoreStreamBW: 5.5,
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			p.Links = append(p.Links, Link{A: a, B: b, Lat: 660, BW: 14.0})
		}
	}
	memMatrices(p, 479, 685, 0, 28.2, 15.2, 0)
	defaultNoise(p)
	return p
}

// Platforms returns the five machines of the paper's evaluation, in the
// order they appear in Section 2.1.
func Platforms() []*Platform {
	return []*Platform{Ivy(), Westmere(), Haswell(), Opteron(), SPARC()}
}

// ByName returns the named platform: one of the case-sensitive short names
// used throughout the paper (Ivy, Westmere, Haswell, Opteron, SPARC), or a
// "gen:" spec naming a synthetic generated platform (see ParseGenName) —
// e.g. "gen:ring:s16:c8:t2". Generated platforms are built on the fly, so
// any component that resolves platforms by name (registry keys, the daemon,
// the CLIs, the load harness) works on them unchanged.
func ByName(name string) (*Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	if strings.HasPrefix(name, GenPrefix) {
		spec, err := ParseGenName(name)
		if err != nil {
			return nil, err
		}
		return Generate(spec)
	}
	return nil, fmt.Errorf("sim: %w %q (one of Ivy, Westmere, Haswell, Opteron, SPARC, or a gen: spec)", mctoperr.ErrUnknownPlatform, name)
}

// Custom builds a synthetic fully connected machine for property tests:
// sockets x cores x smt contexts with scaled latency levels. The latency
// scale must be positive; level separations follow the paper's platforms.
func Custom(name string, sockets, cores, smt int, scale int64, numbering Numbering) *Platform {
	if scale <= 0 {
		scale = 1
	}
	p := &Platform{
		Name: name, Sockets: sockets, Cores: cores, SMT: smt,
		Numbering:  numbering,
		FreqMinGHz: 2.0, FreqMaxGHz: 2.0, DVFS: false,
		RdtscOverhead: 20,
		L1Size:        32 << 10, L2Size: 256 << 10, LLCSize: 16 << 20,
		L1Lat: 4, L2Lat: 12, LLCLat: 40, HitCASLat: 12,
		SameCoreLat:     30 * scale,
		IntraSocketLat:  110 * scale,
		CrossSocketBand: 0,
		CoreStreamBW:    4.0,
	}
	if cores >= 6 {
		// Unscaled: the band must stay well inside the clustering gap.
		p.IntraSocketBand = 8
	}
	for a := 0; a < sockets; a++ {
		for b := a + 1; b < sockets; b++ {
			p.Links = append(p.Links, Link{A: a, B: b, Lat: 320 * scale, BW: 10})
		}
	}
	memMatrices(p, 300*scale, 450*scale, 0, 12, 7, 0)
	defaultNoise(p)
	p.SpuriousRate = 0
	return p
}
