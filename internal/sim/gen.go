// Synthetic large-platform generator.
//
// The five golden platforms top out at 256 hardware contexts; the ROADMAP's
// north star needs machines two orders of magnitude larger to exercise the
// scale path (sampled inference, daemon size guards, fleet warm-up). This
// file generates parametric mesh, ring and multiplicative-circulant
// interconnects — the regular structures of large NoC designs — as ordinary
// Platforms: valid under Validate, usable as machine.Forker machines, and
// addressable by name everywhere a golden platform is (registry keys, the
// daemon, the CLIs) via the "gen:" prefix understood by ByName.
//
// Generated platforms are noise-free by default: every per-pair latency is
// a pure function of the pair's relation (same core / same socket / hop
// distance), which is what makes the sampled inference mode's class fills
// exact. Pass Noise to generate a golden-style noisy machine instead (the
// sampled mode then detects the jitter and falls back to exhaustive
// measurement).
package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mctoperr"
)

// GenPrefix starts the name of every generated platform.
const GenPrefix = "gen:"

// GenKind selects the cross-socket interconnect of a generated platform.
type GenKind string

const (
	// GenMesh arranges sockets in a 2-D grid (rows x cols chosen as the
	// most square factorization) with 4-neighbor links and no wraparound.
	GenMesh GenKind = "mesh"
	// GenRing connects socket i to socket (i+1) mod Sockets.
	GenRing GenKind = "ring"
	// GenCirculant is the circulant graph C(Sockets; g1, g2, ...): socket i
	// links to i +/- g mod Sockets for each generator g. The default
	// generator set is multiplicative (1, q, q^2, ... with q=3), the
	// low-diameter family of the circulant-NoC literature.
	GenCirculant GenKind = "circulant"
)

// Latency/memory constants of generated platforms. One interconnect hop
// costs genHopLat cycles on top of the base cross-socket latency; the step
// is large enough that adjacent hop-count plateaus never fall inside one
// clustering gap at small distances, and merging at large distances is
// harmless (the levels stay ascending).
const (
	genSameCoreLat  = 30
	genIntraLat     = 110
	genCrossBaseLat = 300
	genHopLat       = 90
	genMemLocalLat  = 300
	genMemHop0Lat   = 420
	genMemHopLat    = 60
)

// genMaxContexts bounds a single generated platform (the daemon has its own
// request-time -max-contexts guard; this is the hard library-level sanity
// cap).
const genMaxContexts = 1 << 20

// GenSpec parametrizes one synthetic platform. The zero value is invalid;
// Kind, Sockets, Cores and SMT are required.
type GenSpec struct {
	Kind    GenKind
	Sockets int
	Cores   int // per socket
	SMT     int // contexts per core (1 = no SMT)

	// Gens are the circulant generators (GenCirculant only). Empty means
	// the multiplicative default 1, 3, 9, ... < Sockets/2.
	Gens []int

	// Seed adds a deterministic per-hop-distance latency jitter so two
	// specs differing only by seed are distinguishable platforms. 0 means
	// the plain distance-linear latencies.
	Seed uint64

	// Noise enables the golden platforms' noise model (per-measurement
	// jitter + spurious outliers). Generated platforms default to
	// noise-free, which is what makes sampled inference exact on them.
	Noise bool
}

// Name returns the canonical "gen:" name of the spec; ParseGenName inverts
// it. Two specs with the same canonical name generate identical platforms.
func (g GenSpec) Name() string {
	var b strings.Builder
	b.WriteString(GenPrefix)
	b.WriteString(string(g.Kind))
	fmt.Fprintf(&b, ":s%d:c%d:t%d", g.Sockets, g.Cores, g.SMT)
	if len(g.Gens) > 0 {
		b.WriteString(":g")
		for i, gen := range g.Gens {
			if i > 0 {
				b.WriteByte('-')
			}
			b.WriteString(strconv.Itoa(gen))
		}
	}
	if g.Seed != 0 {
		fmt.Fprintf(&b, ":v%d", g.Seed)
	}
	if g.Noise {
		b.WriteString(":n1")
	}
	return b.String()
}

// ParseGenName parses a canonical generated-platform name, e.g.
// "gen:ring:s16:c8:t2", "gen:circulant:s64:c8:t2:g1-9:v7:n1". Malformed
// specs wrap mctoperr.ErrInvalidRequest (a client error, not an unknown
// platform).
func ParseGenName(name string) (GenSpec, error) {
	bad := func(format string, args ...any) (GenSpec, error) {
		return GenSpec{}, fmt.Errorf("sim: %w: bad gen spec %q: %s",
			mctoperr.ErrInvalidRequest, name, fmt.Sprintf(format, args...))
	}
	rest, ok := strings.CutPrefix(name, GenPrefix)
	if !ok {
		return bad("missing %q prefix", GenPrefix)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 4 {
		return bad("want gen:<kind>:s<sockets>:c<cores>:t<smt>[:g...][:v...][:n1]")
	}
	spec := GenSpec{Kind: GenKind(parts[0])}
	switch spec.Kind {
	case GenMesh, GenRing, GenCirculant:
	default:
		return bad("unknown kind %q", parts[0])
	}
	intField := func(s string, tag byte) (int, error) {
		if len(s) < 2 || s[0] != tag {
			return 0, fmt.Errorf("want %c<int>, got %q", tag, s)
		}
		return strconv.Atoi(s[1:])
	}
	var err error
	if spec.Sockets, err = intField(parts[1], 's'); err != nil {
		return bad("%v", err)
	}
	if spec.Cores, err = intField(parts[2], 'c'); err != nil {
		return bad("%v", err)
	}
	if spec.SMT, err = intField(parts[3], 't'); err != nil {
		return bad("%v", err)
	}
	for _, part := range parts[4:] {
		if len(part) < 2 {
			return bad("empty field %q", part)
		}
		switch part[0] {
		case 'g':
			for _, s := range strings.Split(part[1:], "-") {
				gen, err := strconv.Atoi(s)
				if err != nil {
					return bad("bad generator %q", s)
				}
				spec.Gens = append(spec.Gens, gen)
			}
		case 'v':
			if spec.Seed, err = strconv.ParseUint(part[1:], 10, 64); err != nil {
				return bad("bad seed %q", part[1:])
			}
		case 'n':
			if part != "n1" {
				return bad("noise field must be n1, got %q", part)
			}
			spec.Noise = true
		default:
			return bad("unknown field %q", part)
		}
	}
	if got := spec.Name(); got != name {
		return bad("not canonical (canonical spelling is %q)", got)
	}
	return spec, nil
}

// Generate builds the platform described by spec. The result is
// deterministic (same spec, byte-identical platform), passes Validate, and
// carries explicit SocketLatMatrix/SocketHopMatrix interconnect matrices
// since mesh/ring/circulant diameters routinely exceed the golden machines'
// 2.
func Generate(spec GenSpec) (*Platform, error) {
	bad := func(format string, args ...any) (*Platform, error) {
		return nil, fmt.Errorf("sim: %w: gen spec %q: %s",
			mctoperr.ErrInvalidRequest, spec.Name(), fmt.Sprintf(format, args...))
	}
	if spec.Sockets < 1 || spec.Cores < 1 || spec.SMT < 1 {
		return bad("non-positive dimensions %dx%dx%d", spec.Sockets, spec.Cores, spec.SMT)
	}
	if n := spec.Sockets * spec.Cores * spec.SMT; n > genMaxContexts {
		return bad("%d contexts exceeds the generator cap %d", n, genMaxContexts)
	}

	adj, err := genAdjacency(spec)
	if err != nil {
		return nil, err
	}
	hops, diameter, err := hopMatrix(spec, adj)
	if err != nil {
		return nil, err
	}

	// Latency per hop count: linear in the distance plus an optional
	// seeded per-distance jitter small enough to keep the plateaus
	// strictly increasing (min inter-plateau gap genHopLat - 24 cycles).
	latOf := make([]int64, diameter+1)
	for d := 1; d <= diameter; d++ {
		latOf[d] = genCrossBaseLat + genHopLat*int64(d-1)
		if spec.Seed != 0 {
			latOf[d] += int64(splitmix64(spec.Seed+uint64(d)) % 24)
		}
	}

	s := spec.Sockets
	latMat := make([][]int64, s)
	for a := 0; a < s; a++ {
		latMat[a] = make([]int64, s)
		for b := 0; b < s; b++ {
			if a != b {
				latMat[a][b] = latOf[hops[a][b]]
			}
		}
	}

	p := &Platform{
		Name: spec.Name(), Sockets: s, Cores: spec.Cores, SMT: spec.SMT,
		Numbering:  NumberingConsecutive,
		FreqMinGHz: 2.0, FreqMaxGHz: 2.0, DVFS: false,
		RdtscOverhead: 20,
		L1Size:        32 << 10, L2Size: 256 << 10, LLCSize: 16 << 20,
		L1Lat: 4, L2Lat: 12, LLCLat: 40, HitCASLat: 12,
		SameCoreLat:    genSameCoreLat,
		IntraSocketLat: genIntraLat,
		CoreStreamBW:   4.0,
		// Deterministic SMT dilation is part of the machine model, not the
		// noise model: detection needs it even on noise-free platforms.
		SMTSlowdown:     1.9,
		SocketLatMatrix: latMat,
		SocketHopMatrix: hops,
	}
	for a := 0; a < s; a++ {
		for _, b := range adj[a] {
			if b > a {
				p.Links = append(p.Links, Link{A: a, B: b, Lat: latOf[1], BW: 12.0})
			}
		}
	}

	// Memory: one node per socket, local strictly fastest, remote cost
	// linear in hop distance.
	p.MemLat = make([][]int64, s)
	p.MemBW = make([][]float64, s)
	for a := 0; a < s; a++ {
		p.MemLat[a] = make([]int64, s)
		p.MemBW[a] = make([]float64, s)
		for b := 0; b < s; b++ {
			if a == b {
				p.MemLat[a][b] = genMemLocalLat
				p.MemBW[a][b] = 12.0
				continue
			}
			d := int64(hops[a][b])
			p.MemLat[a][b] = genMemHop0Lat + genMemHopLat*(d-1)
			bw := 12.0 / float64(d+1)
			if bw < 1.0 {
				bw = 1.0
			}
			p.MemBW[a][b] = bw
		}
	}

	if spec.Noise {
		defaultNoise(p)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sim: generated platform invalid: %w", err)
	}
	return p, nil
}

// genAdjacency returns the socket adjacency lists of the spec's
// interconnect, each list sorted ascending.
func genAdjacency(spec GenSpec) ([][]int, error) {
	s := spec.Sockets
	adj := make([][]int, s)
	link := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	switch spec.Kind {
	case GenMesh:
		if len(spec.Gens) > 0 {
			return nil, fmt.Errorf("sim: %w: gen spec %q: generators are circulant-only", mctoperr.ErrInvalidRequest, spec.Name())
		}
		rows, cols := meshFactor(s)
		at := func(r, c int) int { return r*cols + c }
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c+1 < cols {
					link(at(r, c), at(r, c+1))
				}
				if r+1 < rows {
					link(at(r, c), at(r+1, c))
				}
			}
		}
	case GenRing:
		if len(spec.Gens) > 0 {
			return nil, fmt.Errorf("sim: %w: gen spec %q: generators are circulant-only", mctoperr.ErrInvalidRequest, spec.Name())
		}
		if s == 2 {
			link(0, 1)
			break
		}
		for a := 0; a < s; a++ {
			link(a, (a+1)%s)
		}
	case GenCirculant:
		gens := spec.Gens
		if len(gens) == 0 && s > 1 {
			// Multiplicative default: powers of 3 up to half the cycle.
			for g := 1; g <= s/2; g *= 3 {
				gens = append(gens, g)
			}
			if len(gens) == 0 {
				gens = []int{1} // s == 2 or 3: plain ring
			}
		}
		seen := map[int]bool{}
		for _, g := range gens {
			if g < 1 || g > s/2 {
				return nil, fmt.Errorf("sim: %w: gen spec %q: generator %d out of range [1, %d]",
					mctoperr.ErrInvalidRequest, spec.Name(), g, s/2)
			}
			if seen[g] {
				continue
			}
			seen[g] = true
			// The chords {a, a+g} for a in [0, s) each appear once, except
			// when g == s/2: then a and a+g name the same chord twice.
			m := s
			if 2*g == s {
				m = s / 2
			}
			for a := 0; a < m; a++ {
				link(a, (a+g)%s)
			}
		}
	default:
		return nil, fmt.Errorf("sim: %w: gen spec %q: unknown kind", mctoperr.ErrInvalidRequest, spec.Name())
	}
	for a := range adj {
		sort.Ints(adj[a])
		adj[a] = dedupSorted(adj[a])
	}
	return adj, nil
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// meshFactor returns the most square rows x cols factorization of n
// (rows <= cols); a prime n degenerates to a 1 x n line, which is still a
// valid mesh.
func meshFactor(n int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return rows, n / rows
}

// hopMatrix runs a BFS from every socket and returns the all-pairs hop
// matrix plus the interconnect diameter.
func hopMatrix(spec GenSpec, adj [][]int) (hops [][]int, diameter int, err error) {
	s := len(adj)
	hops = make([][]int, s)
	queue := make([]int, 0, s)
	for from := 0; from < s; from++ {
		dist := make([]int, s)
		for i := range dist {
			dist[i] = -1
		}
		dist[from] = 0
		queue = append(queue[:0], from)
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			for _, b := range adj[a] {
				if dist[b] < 0 {
					dist[b] = dist[a] + 1
					if dist[b] > diameter {
						diameter = dist[b]
					}
					queue = append(queue, b)
				}
			}
		}
		for i, d := range dist {
			if d < 0 {
				return nil, 0, fmt.Errorf("sim: %w: gen spec %q: sockets %d and %d are disconnected",
					mctoperr.ErrInvalidRequest, spec.Name(), from, i)
			}
		}
		hops[from] = dist
	}
	return hops, diameter, nil
}
